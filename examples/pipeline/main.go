// The pipeline example is the "production deployment" walk-through: it
// exercises every operational feature of the library in the order a real
// service would —
//
//  1. learn the Bayesian network from the incomplete table's complete
//     rows (no ground-truth model available in production),
//  2. persist it as JSON and reload it (preprocessing is the expensive
//     offline step),
//  3. recruit a heterogeneous worker pool with an accuracy threshold,
//  4. run a budgeted query with variable task pricing (comparing two
//     unknown values costs more than checking one against a constant)
//     and a per-round progress callback.
//
// Run it with:
//
//	go run ./examples/pipeline
package main

import (
	"bytes"
	"fmt"
	"math/rand"

	"bayescrowd"
	"bayescrowd/internal/dataset"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// In production only the incomplete table exists; the hidden truth
	// here powers the simulated workers.
	truth := dataset.GenNBA(rng, 1500)
	incomplete := truth.InjectMissing(rng, 0.08)

	// 1. Learn the preprocessing model from the data itself.
	net, err := bayescrowd.LearnBayesNet(incomplete)
	if err != nil {
		panic(err)
	}
	fmt.Printf("learned Bayesian network: %d nodes, %d edges\n",
		net.NumNodes(), len(net.Edges()))

	// 2. Persist and reload (stand-in for writing to disk).
	var stored bytes.Buffer
	if err := net.WriteJSON(&stored); err != nil {
		panic(err)
	}
	size := stored.Len()
	reloaded, err := bayescrowd.ReadBayesNet(&stored)
	if err != nil {
		panic(err)
	}
	fmt.Printf("network serialised to %d bytes and reloaded\n\n", size)

	// 3. A 200-worker marketplace; recruit only the >= 0.9 segment.
	pool := bayescrowd.NewWorkerPool(truth, 200, 0.55, 1.0, rand.New(rand.NewSource(8)))
	pool.MinAccuracy = 0.9
	fmt.Printf("recruited %d of %d workers (mean accuracy %.3f)\n\n",
		len(pool.Eligible()), len(pool.Workers), pool.MeanEligibleAccuracy())

	// 4. Budgeted query: unknown-vs-unknown comparisons cost 3 units.
	res, err := bayescrowd.Run(incomplete, pool, bayescrowd.Options{
		Alpha:    0.02,
		Budget:   90,
		Latency:  6,
		Strategy: bayescrowd.HHS,
		M:        8,
		Net:      reloaded,
		TaskCost: func(t bayescrowd.Task) int {
			if bayescrowd.IsTwoVariableTask(t) { // both operands unknown
				return 3
			}
			return 1
		},
		OnRound: func(round, tasks, undecided int) {
			fmt.Printf("  round %d: %d tasks, %d objects still undecided\n",
				round, tasks, undecided)
		},
		Rng: rand.New(rand.NewSource(9)),
	})
	if err != nil {
		panic(err)
	}

	want := bayescrowd.Skyline(truth)
	p, r, f1 := bayescrowd.PRF1(res.Answers, want)
	fmt.Printf("\nspent %d budget units on %d tasks over %d rounds\n",
		res.BudgetSpent, res.TasksPosted, res.Rounds)
	fmt.Printf("precision %.3f  recall %.3f  F1 %.3f (skyline size %d)\n",
		p, r, f1, len(want))
	fmt.Printf("busiest workers: %v\n", pool.TopWorkers(3))
}
