// The nba example mirrors the paper's real-data evaluation: a scout wants
// the skyline of player seasons over eleven box-score statistics, but the
// stat sheet has gaps. The example runs a budgeted crowd skyline query
// over the NBA-like dataset (sampled from the same ground-truth Bayesian
// network the benchmarks use), prints the spend, and lists a few answer
// seasons.
//
// Run it with:
//
//	go run ./examples/nba
package main

import (
	"fmt"
	"math/rand"
	"time"

	"bayescrowd"
	"bayescrowd/internal/dataset"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 2,000 player seasons × 11 stats; 10% of the cells are missing, as
	// in the paper's default setting.
	truth := dataset.GenNBA(rng, 2000)
	incomplete := truth.InjectMissing(rng, 0.10)
	want := bayescrowd.Skyline(truth)

	fmt.Printf("dataset: %d player seasons × %d stats, %.1f%% missing\n",
		incomplete.Len(), incomplete.NumAttrs(), incomplete.MissingRate()*100)
	fmt.Printf("true skyline: %d seasons\n\n", len(want))

	// The scout can afford 50 micro-tasks spread over 5 rounds (the
	// paper's NBA defaults), answered by 95%-accurate workers.
	platform := bayescrowd.NewSimulatedCrowd(truth, 0.95, rand.New(rand.NewSource(1)))
	start := time.Now()
	res, err := bayescrowd.Run(incomplete, platform, bayescrowd.Options{
		Alpha:    0.01,
		Budget:   50,
		Latency:  5,
		Strategy: bayescrowd.HHS,
		M:        15,
		// The generator's network doubles as the preprocessing model;
		// omit Net to learn one from the data instead.
		Net: dataset.NBANet(),
		Rng: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		panic(err)
	}

	p, r, f1 := bayescrowd.PRF1(res.Answers, want)
	fmt.Printf("spent %d tasks in %d rounds (%v)\n", res.TasksPosted, res.Rounds,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("precision %.3f  recall %.3f  F1 %.3f\n\n", p, r, f1)

	fmt.Println("first answer seasons:")
	for i, idx := range res.Answers {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(res.Answers)-8)
			break
		}
		o := incomplete.Objects[idx]
		certain := "certain"
		if pr, ok := res.Probs[idx]; ok {
			certain = fmt.Sprintf("Pr=%.2f", pr)
		}
		fmt.Printf("  %-8s (%s)\n", o.ID, certain)
	}
}
