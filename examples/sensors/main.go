// The sensors example exercises two aspects the other examples do not:
// continuous raw measurements that must be discretized (the paper's §3
// preprocessing), and a smaller-is-better preference order.
//
// A fleet of environmental sensor stations reports latency, error rate,
// power draw and packet loss; unstable radio links leave holes in the
// report (the paper's §1 motivates incompleteness with exactly this
// "instable sensor networks" case). Operations wants the skyline of
// stations — those not worse than some other station on every metric —
// asking field technicians (the "crowd") to check individual missing
// readings.
//
// Since every metric here is smaller-is-better while the library's
// dominance order prefers larger codes, the discretized datasets are
// flipped with bayescrowd.InvertAttrs.
//
// Run it with:
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"math"
	"math/rand"

	"bayescrowd"
)

const (
	numStations = 400
	levels      = 12
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Raw continuous measurements; NaN marks a reading the station failed
	// to deliver. Hidden truth keeps every reading for the technicians.
	rawTruth, rawHoles := genReadings(rng)

	discs := []bayescrowd.Discretizer{
		bayescrowd.EqualWidth(0, 200, levels),  // latency ms
		bayescrowd.EqualWidth(0, 0.1, levels),  // error rate
		bayescrowd.EqualWidth(0, 20, levels),   // power draw W
		bayescrowd.EqualWidth(0, 0.25, levels), // packet loss
	}

	truth, err := discretizeInverted(rawTruth, discs)
	if err != nil {
		panic(err)
	}
	incomplete, err := discretizeInverted(rawHoles, discs)
	if err != nil {
		panic(err)
	}

	want := bayescrowd.Skyline(truth)
	fmt.Printf("%d stations × %d metrics (smaller is better), %.1f%% readings lost\n",
		incomplete.Len(), incomplete.NumAttrs(), incomplete.MissingRate()*100)
	fmt.Printf("true skyline: %d stations\n\n", len(want))

	// Field technicians are nearly always right; each check is expensive,
	// so the budget is tight: 24 checks in 4 dispatch waves.
	platform := bayescrowd.NewSimulatedCrowd(truth, 0.98, rand.New(rand.NewSource(5)))
	res, err := bayescrowd.Run(incomplete, platform, bayescrowd.Options{
		Alpha:    0.3,
		Budget:   24,
		Latency:  4,
		Strategy: bayescrowd.UBS, // tight budget: buy the most informative checks
		Rng:      rand.New(rand.NewSource(6)),
	})
	if err != nil {
		panic(err)
	}

	p, r, f1 := bayescrowd.PRF1(res.Answers, want)
	fmt.Printf("dispatched %d checks in %d waves\n", res.TasksPosted, res.Rounds)
	fmt.Printf("precision %.3f  recall %.3f  F1 %.3f\n\n", p, r, f1)
	fmt.Println("skyline stations:")
	for i, idx := range res.Answers {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(res.Answers)-10)
			break
		}
		fmt.Printf("  %s\n", incomplete.Objects[idx].ID)
	}
}

// genReadings synthesises correlated station metrics (an overloaded
// station is slow AND lossy) and pokes radio holes into a copy.
func genReadings(rng *rand.Rand) (truth, holes *bayescrowd.RawTable) {
	names := []string{"latency_ms", "error_rate", "power_w", "packet_loss"}
	truth = &bayescrowd.RawTable{Names: names}
	holes = &bayescrowd.RawTable{Names: names}
	for i := 0; i < numStations; i++ {
		load := rng.Float64() // latent congestion
		row := []float64{
			200 * clamp01(0.7*load+0.3*rng.Float64()),
			0.1 * clamp01(0.6*load+0.4*rng.Float64()),
			20 * clamp01(0.4*load+0.6*rng.Float64()),
			0.25 * clamp01(0.7*load+0.3*rng.Float64()),
		}
		id := fmt.Sprintf("station-%03d", i+1)
		truth.Rows = append(truth.Rows, row)
		truth.IDs = append(truth.IDs, id)

		holed := append([]float64(nil), row...)
		for j := range holed {
			if rng.Float64() < 0.12 {
				holed[j] = math.NaN()
			}
		}
		holes.Rows = append(holes.Rows, holed)
		holes.IDs = append(holes.IDs, id)
	}
	return truth, holes
}

// discretizeInverted bins the raw values and flips the codes so that
// smaller raw measurements get larger (better) codes.
func discretizeInverted(raw *bayescrowd.RawTable, discs []bayescrowd.Discretizer) (*bayescrowd.Dataset, error) {
	d, err := bayescrowd.Discretize(raw, discs)
	if err != nil {
		return nil, err
	}
	return bayescrowd.InvertAttrs(d, 0, 1, 2, 3), nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
