// The quickstart example walks the paper's running example end to end:
// the five-movie dataset of Table 1, its dominator sets (Table 4) and
// c-table (Table 3), and a full crowdsourced skyline query with budget 6
// and latency 3 — the scenario of Example 4.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"bayescrowd"
)

func main() {
	// The incomplete dataset of Table 1: five movies rated by five
	// audiences, with five ratings missing.
	incomplete := bayescrowd.SampleMovies()

	fmt.Println("Incomplete dataset (paper Table 1):")
	for _, o := range incomplete.Objects {
		fmt.Printf("  %-25s", o.ID)
		for _, c := range o.Cells {
			if c.Missing {
				fmt.Print("  ?")
			} else {
				fmt.Printf("  %d", c.Value)
			}
		}
		fmt.Println()
	}

	// The modeling phase alone: the c-table of the paper's Table 3.
	fmt.Println("\nInitial c-table (paper Table 3):")
	for i, cond := range bayescrowd.Conditions(incomplete, 1) {
		fmt.Printf("  φ(%s) = %s\n", incomplete.Objects[i].ID, cond)
	}

	// The hidden ground truth the simulated crowd consults. A real
	// deployment would post the tasks to a marketplace instead; anything
	// implementing bayescrowd.Platform plugs in here.
	truth := incomplete.Clone()
	truth.Objects[1].Cells[1] = bayescrowd.Known(4) // Se7en, audience 2
	truth.Objects[2].Cells[2] = bayescrowd.Known(2) // The Godfather, audience 3
	truth.Objects[4].Cells[1] = bayescrowd.Known(3) // Star Wars, audience 2
	truth.Objects[4].Cells[2] = bayescrowd.Known(3) // Star Wars, audience 3
	truth.Objects[4].Cells[3] = bayescrowd.Known(3) // Star Wars, audience 4
	platform := bayescrowd.NewSimulatedCrowd(truth, 1.0, nil)

	// Run BayesCrowd: budget 6 tasks, 3 rounds, HHS selection with m=2 —
	// the configuration of the paper's Example 4.
	res, err := bayescrowd.Run(incomplete, platform, bayescrowd.Options{
		Alpha:    1, // the 5-object example needs no pruning
		Budget:   6,
		Latency:  3,
		Strategy: bayescrowd.HHS,
		M:        2,
		Rng:      rand.New(rand.NewSource(1)),
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("\nFinal c-table conditions:")
	for i, cond := range res.CTable.Conds {
		fmt.Printf("  φ(%s) = %v\n", incomplete.Objects[i].ID, cond)
	}

	fmt.Println("\nSkyline answers:")
	for _, i := range res.Answers {
		fmt.Printf("  %s\n", incomplete.Objects[i].ID)
	}
	fmt.Printf("\nCost: %d tasks in %d rounds (budget 6, latency 3)\n",
		res.TasksPosted, res.Rounds)

	want := bayescrowd.Skyline(truth)
	fmt.Printf("F1 against the complete-data skyline: %.3f\n",
		bayescrowd.F1(res.Answers, want))
}
