// The movies example plays out the paper's motivating scenario (§1) at a
// realistic size: a movie-recommendation service holds audience ratings
// with many gaps — nobody has watched everything — and wants the skyline
// of movies ("not rated worse than some other movie by every audience
// segment") without paying the crowd to fill in every blank.
//
// It compares the three task-selection strategies under the same budget,
// showing the paper's FBS/UBS/HHS trade-off: FBS is fastest, UBS squeezes
// the most accuracy out of the budget, HHS sits between.
//
// Run it with:
//
//	go run ./examples/movies
package main

import (
	"fmt"
	"math/rand"
	"time"

	"bayescrowd"
)

const (
	numMovies   = 600
	numSegments = 6  // audience segments = attributes
	levels      = 10 // rating scale 0..9
	missingRate = 0.15
	budget      = 60
	latency     = 6
)

func main() {
	rng := rand.New(rand.NewSource(2026))

	// Ground truth: ratings correlate across segments (a good movie tends
	// to be rated well by everyone), which is exactly what BayesCrowd's
	// Bayesian network exploits.
	truth := genRatings(rng)
	incomplete := truth.InjectMissing(rng, missingRate)
	wantSkyline := bayescrowd.Skyline(truth)

	fmt.Printf("%d movies × %d audience segments, %.0f%% of ratings missing\n",
		numMovies, numSegments, missingRate*100)
	fmt.Printf("true skyline size: %d movies\n\n", len(wantSkyline))
	fmt.Printf("%-8s  %8s  %6s  %6s  %6s\n", "strategy", "time", "tasks", "rounds", "F1")

	for _, strat := range []bayescrowd.Strategy{bayescrowd.FBS, bayescrowd.UBS, bayescrowd.HHS} {
		// Workers are imperfect (90% accurate); three of them vote on
		// each task.
		platform := bayescrowd.NewSimulatedCrowd(truth, 0.9, rand.New(rand.NewSource(7)))

		start := time.Now()
		res, err := bayescrowd.Run(incomplete, platform, bayescrowd.Options{
			Alpha:    0.05,
			Budget:   budget,
			Latency:  latency,
			Strategy: strat,
			M:        5,
			Rng:      rand.New(rand.NewSource(3)),
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8v  %8v  %6d  %6d  %.3f\n",
			strat, time.Since(start).Round(time.Millisecond),
			res.TasksPosted, res.Rounds,
			bayescrowd.F1(res.Answers, wantSkyline))
	}

	fmt.Println("\nWithout crowdsourcing, only the certainly-undominated movies are")
	fmt.Println("returned; the budget buys back the uncertain candidates.")
}

// genRatings synthesises correlated movie ratings: a latent quality plus
// per-segment taste noise.
func genRatings(rng *rand.Rand) *bayescrowd.Dataset {
	attrs := make([]bayescrowd.Attribute, numSegments)
	for j := range attrs {
		attrs[j] = bayescrowd.Attribute{Name: fmt.Sprintf("segment%d", j+1), Levels: levels}
	}
	d := bayescrowd.NewDataset(attrs)
	for i := 0; i < numMovies; i++ {
		quality := rng.Float64()
		cells := make([]bayescrowd.Cell, numSegments)
		for j := range cells {
			x := 0.6*quality + 0.4*rng.Float64()
			v := int(x * levels)
			if v >= levels {
				v = levels - 1
			}
			cells[j] = bayescrowd.Known(v)
		}
		if err := d.Append(bayescrowd.Object{ID: fmt.Sprintf("movie-%03d", i+1), Cells: cells}); err != nil {
			panic(err)
		}
	}
	return d
}
