package bayescrowd_test

import (
	"fmt"
	"math/rand"

	"bayescrowd"
)

// Example runs the paper's five-movie example end to end with a perfect
// simulated crowd and prints the answer set.
func Example() {
	incomplete := bayescrowd.SampleMovies()

	// Hidden ground truth the simulated workers consult.
	truth := incomplete.Clone()
	truth.Objects[1].Cells[1] = bayescrowd.Known(4)
	truth.Objects[2].Cells[2] = bayescrowd.Known(2)
	truth.Objects[4].Cells[1] = bayescrowd.Known(3)
	truth.Objects[4].Cells[2] = bayescrowd.Known(3)
	truth.Objects[4].Cells[3] = bayescrowd.Known(3)

	platform := bayescrowd.NewSimulatedCrowd(truth, 1.0, nil)
	res, err := bayescrowd.Run(incomplete, platform, bayescrowd.Options{
		Alpha:    1,
		Budget:   6,
		Latency:  3,
		Strategy: bayescrowd.HHS,
		M:        2,
		Rng:      rand.New(rand.NewSource(1)),
	})
	if err != nil {
		panic(err)
	}
	for _, i := range res.Answers {
		fmt.Println(incomplete.Objects[i].ID)
	}
	// Output:
	// Schindler's List (1993)
	// Se7en (1995)
	// The Godfather (1972)
	// Star Wars (1977)
}

// ExampleSkyline computes the classic complete-data skyline of the
// paper's three-movie introduction example.
func ExampleSkyline() {
	d := bayescrowd.NewDataset([]bayescrowd.Attribute{
		{Name: "r1", Levels: 5}, {Name: "r2", Levels: 5}, {Name: "r3", Levels: 5},
	})
	for _, m := range [][]int{{3, 2, 1}, {4, 2, 3}, {2, 3, 2}} {
		cells := make([]bayescrowd.Cell, len(m))
		for j, v := range m {
			cells[j] = bayescrowd.Known(v)
		}
		if err := d.Append(bayescrowd.Object{ID: fmt.Sprintf("m%d", d.Len()+1), Cells: cells}); err != nil {
			panic(err)
		}
	}
	for _, i := range bayescrowd.Skyline(d) {
		fmt.Println(d.Objects[i].ID)
	}
	// Output:
	// m2
	// m3
}

// ExamplePRF1 scores a result set against the ground truth.
func ExamplePRF1() {
	p, r, f1 := bayescrowd.PRF1([]int{1, 2}, []int{1, 3})
	fmt.Printf("precision=%.2f recall=%.2f f1=%.2f\n", p, r, f1)
	// Output:
	// precision=0.50 recall=0.50 f1=0.50
}
