module bayescrowd

go 1.22
