package bayescrowd_test

import (
	"math"
	"strings"
	"testing"

	"bayescrowd"
)

func TestFacadeDiscretization(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	eq := bayescrowd.EqualFrequency(sample, 4)
	if eq.Levels() != 4 {
		t.Fatalf("EqualFrequency levels = %d", eq.Levels())
	}
	ew := bayescrowd.EqualWidth(0, 8, 4)
	if ew.Code(7.9) != 3 {
		t.Fatalf("EqualWidth code = %d", ew.Code(7.9))
	}
	raw := &bayescrowd.RawTable{
		Names: []string{"x"},
		Rows:  [][]float64{{1}, {math.NaN()}, {7}},
	}
	d, err := bayescrowd.Discretize(raw, []bayescrowd.Discretizer{ew})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Objects[1].Cells[0].Missing {
		t.Fatal("NaN did not discretize to missing")
	}
}

func TestFacadeRelConstants(t *testing.T) {
	if bayescrowd.LessThan.String() != "<" ||
		bayescrowd.EqualTo.String() != "=" ||
		bayescrowd.LargerThan.String() != ">" {
		t.Fatal("Rel constants broken")
	}
}

func TestFacadeLearnBayesNetTooFewRows(t *testing.T) {
	d := bayescrowd.SampleMovies() // 3 complete rows only
	if _, err := bayescrowd.LearnBayesNet(d); err == nil {
		t.Fatal("LearnBayesNet accepted a 5-row dataset")
	}
}

func TestFacadeReadBayesNetRejectsGarbage(t *testing.T) {
	if _, err := bayescrowd.ReadBayesNet(strings.NewReader("nope")); err == nil {
		t.Fatal("ReadBayesNet accepted garbage")
	}
}

func TestFacadeStrategyNames(t *testing.T) {
	if bayescrowd.FBS.String() != "FBS" || bayescrowd.UBS.String() != "UBS" || bayescrowd.HHS.String() != "HHS" {
		t.Fatal("strategy names broken")
	}
}

func TestFacadeTrainAutoencoderTooFewRows(t *testing.T) {
	if _, err := bayescrowd.TrainAutoencoder(bayescrowd.SampleMovies()); err == nil {
		t.Fatal("TrainAutoencoder accepted a 5-row dataset")
	}
}

func TestFacadeIsTwoVariableTask(t *testing.T) {
	// The sample dataset's φ(o5) contains a var-vs-var expression; route a
	// real task through the predicate via a tiny run with a recording
	// platform would be heavy — construct directly instead.
	var zero bayescrowd.Task
	if bayescrowd.IsTwoVariableTask(zero) {
		t.Fatal("zero task misclassified as two-variable")
	}
}

func TestFacadeConditionsMatchesTable3(t *testing.T) {
	conds := bayescrowd.Conditions(bayescrowd.SampleMovies(), 1)
	want := []string{
		"Var(o5,a2) < 2 ∨ Var(o5,a3) < 3 ∨ Var(o5,a4) < 4",
		"true",
		"true",
		"Var(o2,a2) < 3 ∧ [Var(o5,a2) < 3 ∨ Var(o5,a3) < 1 ∨ Var(o5,a4) < 2]",
		"[Var(o5,a2) > 2 ∨ Var(o5,a3) > 3 ∨ Var(o5,a4) > 4] ∧ [Var(o5,a2) > Var(o2,a2) ∨ Var(o5,a3) > 2 ∨ Var(o5,a4) > 2]",
	}
	if len(conds) != len(want) {
		t.Fatalf("got %d conditions", len(conds))
	}
	for i := range want {
		if conds[i] != want[i] {
			t.Errorf("φ(o%d) = %q, want %q", i+1, conds[i], want[i])
		}
	}
}

func TestFacadeInvertAttrs(t *testing.T) {
	d := bayescrowd.NewDataset([]bayescrowd.Attribute{{Name: "lat", Levels: 4}})
	if err := d.Append(bayescrowd.Object{ID: "s1", Cells: []bayescrowd.Cell{bayescrowd.Known(1)}}); err != nil {
		t.Fatal(err)
	}
	inv := bayescrowd.InvertAttrs(d, 0)
	if inv.Objects[0].Cells[0].Value != 2 {
		t.Fatalf("inverted value = %d, want 2", inv.Objects[0].Cells[0].Value)
	}
}
