package bayescrowd_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd"
)

// completeSample fills the paper's 5-movie sample with ground truth whose
// skyline is {o1, o2, o3, o5}.
func completeSample() *bayescrowd.Dataset {
	d := bayescrowd.SampleMovies().Clone()
	d.Objects[1].Cells[1] = bayescrowd.Known(4)
	d.Objects[2].Cells[2] = bayescrowd.Known(2)
	d.Objects[4].Cells[1] = bayescrowd.Known(3)
	d.Objects[4].Cells[2] = bayescrowd.Known(3)
	d.Objects[4].Cells[3] = bayescrowd.Known(3)
	return d
}

func TestPublicAPIQuickstart(t *testing.T) {
	incomplete := bayescrowd.SampleMovies()
	truth := completeSample()

	platform := bayescrowd.NewSimulatedCrowd(truth, 1.0, nil)
	res, err := bayescrowd.Run(incomplete, platform, bayescrowd.Options{
		Alpha:    1,
		Budget:   20,
		Latency:  5,
		Strategy: bayescrowd.HHS,
		M:        2,
		Rng:      rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bayescrowd.Skyline(truth)
	if !reflect.DeepEqual(res.Answers, want) {
		t.Fatalf("Answers = %v, want %v", res.Answers, want)
	}
	if f1 := bayescrowd.F1(res.Answers, want); f1 != 1 {
		t.Fatalf("F1 = %v, want 1", f1)
	}
	p, r, f1 := bayescrowd.PRF1(res.Answers, want)
	if p != 1 || r != 1 || f1 != 1 {
		t.Fatalf("PRF1 = %v,%v,%v", p, r, f1)
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := bayescrowd.WriteCSV(&buf, bayescrowd.SampleMovies()); err != nil {
		t.Fatal(err)
	}
	back, err := bayescrowd.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 5 || back.NumAttrs() != 5 {
		t.Fatalf("shape %dx%d", back.Len(), back.NumAttrs())
	}
}

func TestPublicDatasetConstruction(t *testing.T) {
	d := bayescrowd.NewDataset([]bayescrowd.Attribute{
		{Name: "speed", Levels: 5},
		{Name: "range", Levels: 5},
	})
	if err := d.Append(bayescrowd.Object{ID: "car1", Cells: []bayescrowd.Cell{
		bayescrowd.Known(3), bayescrowd.Unknown(),
	}}); err != nil {
		t.Fatal(err)
	}
	if d.MissingRate() != 0.5 { // 1 of 2 cells missing
		t.Fatalf("MissingRate = %v", d.MissingRate())
	}
}
