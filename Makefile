# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race cover bench fuzz examples figures figures-paper

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

fuzz:
	go test -fuzz FuzzReadCSV -fuzztime 30s ./internal/dataset/
	go test -fuzz FuzzReadJSON -fuzztime 30s ./internal/bayesnet/

examples:
	go run ./examples/quickstart
	go run ./examples/movies
	go run ./examples/nba
	go run ./examples/sensors
	go run ./examples/pipeline

figures:
	go run ./cmd/benchfig -all

figures-paper:
	go run ./cmd/benchfig -all -scale paper
