# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race cover bench bench-smoke fuzz examples figures figures-paper ci fmt-check lint docs-check

all: build test

# ci mirrors .github/workflows/ci.yml exactly (plus the gofmt gate), so a
# local `make ci` reproduces what the pipeline enforces.
ci: fmt-check lint docs-check build test race

# lint runs the repo's own invariant analyzers (cmd/bayeslint): the
# determinism, single-writer, error-handling, goroutine-hygiene,
# float-comparison, doc-comment, hot-path-allocation, lock-discipline,
# lock-copy, and ledger-conservation contracts from DESIGN.md "Enforced
# invariants".
lint:
	go run ./cmd/bayeslint ./...

# docs-check keeps the prose honest: README layout table vs. the
# filesystem, markdown links resolve, ```go snippets are gofmt-clean.
docs-check:
	go test ./internal/docscheck/

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# bench-smoke is the nightly workflow's one-iteration pass: benchmarks
# must at least compile and run on every PR.
bench-smoke:
	go test -bench=. -benchtime=1x ./...

fuzz:
	go test -fuzz FuzzReadCSV -fuzztime 30s ./internal/dataset/
	go test -fuzz FuzzReadJSON -fuzztime 30s ./internal/bayesnet/

examples:
	go run ./examples/quickstart
	go run ./examples/movies
	go run ./examples/nba
	go run ./examples/sensors
	go run ./examples/pipeline

figures:
	go run ./cmd/benchfig -all

figures-paper:
	go run ./cmd/benchfig -all -scale paper
