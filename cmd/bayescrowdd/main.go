// Command bayescrowdd is the long-running multi-query skyline daemon:
// it serves the bayescrowd pipeline over HTTP/JSON, running many
// skyline queries concurrently over shared registered datasets with a
// fair round-robin scheduler, cross-query crowd-task deduplication and
// exact budget splitting. docs/SERVICE.md is the full API reference;
// docs/OPERATIONS.md §"Running the daemon" is the runbook.
//
// The crowd phase is an event loop: the daemon posts tasks to its task
// hub and parks the querying goroutine until answers arrive as
// POST /v1/answers/{taskid} callbacks. Without -truth the daemon is a
// pure callback server — an external bridge (or an operator with curl)
// answers the open tasks listed at GET /v1/tasks. With -truth the
// daemon drives itself: a loopback worker answers every opened task
// from the complete CSV through simulated workers (with optional fault
// injection) and delivers the answers back through the same HTTP
// callback path a real marketplace bridge would use.
//
// Examples:
//
//	bayescrowdd -addr :8080
//	bayescrowdd -addr :8080 -data holes.csv -name nba -truth full.csv
//	bayescrowdd -addr :8080 -truth full.csv -accuracy 0.9 -dropprob 0.05 -taskdeadline 5s
//
// On SIGINT/SIGTERM the daemon drains gracefully: admissions stop,
// open crowd tasks fail over with full refunds, in-flight queries
// finish or degrade to their best-effort result, and the HTTP server
// shuts down once every query goroutine has exited (bounded by
// -draintimeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/obs"
	"bayescrowd/internal/service"
)

func main() {
	os.Exit(run())
}

// run is main's testable body; it returns the process exit code.
func run() int {
	var (
		addr          = flag.String("addr", ":8080", "HTTP listen address (host:port; port 0 picks a free port)")
		workers       = flag.Int("workers", 0, "default per-query worker count; 0 = one per CPU (a query may override)")
		maxConcurrent = flag.Int("maxconcurrent", 2, "queries executing machine work simultaneously (compute tokens)")
		taskDeadline  = flag.Duration("taskdeadline", 0, "open crowd tasks expire (with full refund) after this long; 0 = never")
		drainTimeout  = flag.Duration("draintimeout", 30*time.Second, "how long a shutdown waits for in-flight queries before giving up")
		traceLimit    = flag.Int("tracelimit", 0, "per-query trace buffer cap in bytes; 0 = 4 MiB")

		dataPath  = flag.String("data", "", "incomplete CSV to pre-register at startup (optional; datasets can also be registered over HTTP)")
		name      = flag.String("name", "default", "registry name for the -data dataset")
		marginals = flag.Bool("marginals", false, "model the -data dataset's missing values by empirical marginals (skip Bayesian-network learning)")

		truthPath  = flag.String("truth", "", "complete CSV enabling the loopback crowd: every open task is answered from it")
		accuracy   = flag.Float64("accuracy", 1.0, "loopback worker accuracy in [0,1] (three workers per task, majority vote)")
		dropProb   = flag.Float64("dropprob", 0, "loopback fault injection: per-task probability the answer is dropped")
		outageProb = flag.Float64("outageprob", 0, "loopback fault injection: per-task probability the platform call fails outright")
		spamProb   = flag.Float64("spamprob", 0, "loopback fault injection: per-task probability the answer is replaced by a random relation")
		seed       = flag.Int64("seed", 1, "loopback crowd RNG seed")
	)
	flag.Parse()

	reg := obs.NewRegistry()

	// The loopback (if any) must exist before the service config that
	// references it; its endpoint is filled in once the listener is up.
	var loop *service.Loopback
	if *truthPath != "" {
		truth, err := readCSV(*truthPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bayescrowdd: -truth: %v\n", err)
			return 1
		}
		rng := rand.New(rand.NewSource(*seed))
		var platform crowd.Platform = crowd.NewSimulated(truth, *accuracy, rng)
		if *dropProb > 0 || *outageProb > 0 || *spamProb > 0 {
			platform = crowd.NewUnreliable(platform, *dropProb, *outageProb, *spamProb, rng)
		}
		loop = service.NewLoopback(platform, "")
	}

	cfg := service.Config{
		Workers:       *workers,
		MaxConcurrent: *maxConcurrent,
		TaskDeadline:  *taskDeadline,
		Metrics:       reg,
		TraceLimit:    *traceLimit,
	}
	if loop != nil {
		cfg.Sink = loop
	}
	srv := service.New(cfg)

	if *dataPath != "" {
		d, err := readCSV(*dataPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bayescrowdd: -data: %v\n", err)
			return 1
		}
		info, err := srv.RegisterDataset(datasetRequest(*name, d, *marginals))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bayescrowdd: register %q: %v\n", *name, err)
			return 1
		}
		fmt.Printf("bayescrowdd: registered dataset %q: %d objects, %d attrs, %.1f%% missing\n",
			info.Name, info.Objects, info.Attrs, 100*info.MissingRate)
	}

	hs, err := obs.StartServer(*addr, srv.Handler())
	if err != nil {
		fmt.Fprintf(os.Stderr, "bayescrowdd: listen %s: %v\n", *addr, err)
		return 1
	}
	fmt.Printf("bayescrowdd: serving on http://%s (API reference: docs/SERVICE.md)\n", hs.Addr())

	srv.Start()
	if loop != nil {
		loop.SetEndpoint("http://" + hs.Addr())
		loop.Start()
		fmt.Printf("bayescrowdd: loopback crowd enabled (accuracy %.2f, drop %.2f, outage %.2f, spam %.2f)\n",
			*accuracy, *dropProb, *outageProb, *spamProb)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("bayescrowdd: %v — draining (timeout %s)\n", got, *drainTimeout)

	code := 0
	// Stop the loopback first so every queued answer is delivered before
	// the hub fails what remains open.
	if loop != nil {
		loop.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "bayescrowdd: drain: %v\n", err)
		code = 1
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "bayescrowdd: http shutdown: %v\n", err)
		code = 1
	}
	if loop != nil {
		answered, dropped, failed, lastErr := loop.Stats()
		fmt.Printf("bayescrowdd: loopback delivered %d answers (%d dropped, %d failed callbacks)\n",
			answered, dropped, failed)
		if lastErr != nil {
			fmt.Printf("bayescrowdd: last callback error: %v\n", lastErr)
		}
	}
	fmt.Println("bayescrowdd: stopped")
	return code
}

// readCSV loads a dataset CSV in the bayescrowd format (see
// bayescrowd.WriteCSV).
func readCSV(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	d, err := dataset.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return d, err
}

// datasetRequest converts a parsed dataset into the wire registration
// request, preserving missing cells.
func datasetRequest(name string, d *dataset.Dataset, marginalsOnly bool) service.DatasetRequest {
	req := service.DatasetRequest{Name: name, MarginalsOnly: marginalsOnly}
	for _, a := range d.Attrs {
		req.Attrs = append(req.Attrs, service.AttrSpec{Name: a.Name, Levels: a.Levels})
	}
	for _, o := range d.Objects {
		row := make([]*int, len(o.Cells))
		for j, c := range o.Cells {
			if !c.Missing {
				v := c.Value
				row[j] = &v
			}
		}
		req.Rows = append(req.Rows, row)
	}
	return req
}
