// Command bnlearn runs BayesCrowd's preprocessing step standalone: it
// learns a Bayesian network over a dataset's attributes from its complete
// rows and writes the result as JSON (reloadable via Options.Net through
// bayescrowd.ReadBayesNet) and optionally as a Graphviz DOT drawing.
//
// Examples:
//
//	bnlearn -data full.csv -out net.json -dot net.dot
//	bnlearn -data holes.csv -method anneal -out net.json
//
// Two structure searches are available, mirroring the modes of the Banjo
// framework the paper used: greedy BIC hill climbing with restarts
// (default) and simulated annealing.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"bayescrowd"
	"bayescrowd/internal/bayesnet"
	"bayescrowd/internal/core"
)

func main() {
	var (
		dataPath = flag.String("data", "", "dataset CSV (incomplete rows are skipped for training)")
		outPath  = flag.String("out", "", "output network JSON path (required)")
		dotPath  = flag.String("dot", "", "optional Graphviz DOT output path")
		method   = flag.String("method", "hillclimb", "structure search: hillclimb or anneal")
		maxPar   = flag.Int("max-parents", 3, "maximum parents per node")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if *dataPath == "" || *outPath == "" {
		fail("need -data and -out")
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		fail("%v", err)
	}
	d, err := bayescrowd.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fail("%v", err)
	}

	var net *bayescrowd.BayesNet
	switch *method {
	case "hillclimb":
		net, err = core.LearnNetwork(d, bayesnet.LearnOptions{
			MaxParents: *maxPar,
			Rng:        rand.New(rand.NewSource(*seed)),
		})
	case "anneal":
		names, levels := d.Schema()
		rows := d.CompleteRows()
		if len(rows) < 50 {
			fail("too few complete rows (%d) for structure learning", len(rows))
		}
		net, err = bayesnet.LearnStructureAnnealed(names, levels, rows, bayesnet.AnnealOptions{
			MaxParents: *maxPar,
			Rng:        rand.New(rand.NewSource(*seed)),
		})
	default:
		fail("unknown method %q", *method)
	}
	if err != nil {
		fail("%v", err)
	}

	if err := writeTo(*outPath, net.WriteJSON); err != nil {
		fail("%v", err)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges\n", *outPath, net.NumNodes(), len(net.Edges()))

	if *dotPath != "" {
		if err := writeTo(*dotPath, net.WriteDOT); err != nil {
			fail("%v", err)
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bnlearn: "+format+"\n", args...)
	os.Exit(2)
}
