// Command bayescrowd answers a skyline query over an incomplete CSV
// dataset with crowdsourcing.
//
// Two crowd backends are available:
//
//   - simulated: -truth points at the complete CSV; simulated workers with
//     -accuracy answer from it (three per task, majority vote).
//   - interactive: -interactive prompts the operator on the terminal —
//     you are the crowd.
//
// Examples:
//
//	bayescrowd -data holes.csv -truth full.csv -budget 50 -latency 5 -strategy HHS -m 15
//	bayescrowd -data holes.csv -truth full.csv -net net.json   # reuse a learned network
//	bayescrowd -data holes.csv -interactive -budget 10 -latency 2
//	bayescrowd -data holes.csv -truth full.csv -trace run.jsonl -obs :6060
//	bayescrowd -data holes.csv -stream -window 200 -topk 5
//	bayescrowd -data holes.csv -truth full.csv -stream -window 200 -crowdbudget 100 -latency 2 -taskdeadline 4
//
// -stream replays the CSV rows as an arrival stream through the
// incremental sliding-window engine instead of running the crowdsourcing
// loop: each tick feeds -arrivals rows into a window bounded by -window
// (count) and/or -span (ticks of age), maintains the c-table and the
// probability cache by delta, and keeps the window's skyline
// probabilities current. By default no crowd backend is involved
// (missing cells keep uniform priors), so -truth/-interactive are not
// required.
//
// -crowdbudget attaches the asynchronous crowd loop to the stream: each
// tick posts up to -taskspertick tasks to a simulated crowd answering
// from -truth (required; the interactive crowd cannot straggle ticks
// behind and is not supported here), and answers arrive -latency ticks
// later — possibly after their task's -taskdeadline has expired or
// after the object they describe has left the window. Lost work is
// detected, discarded and refunded; the run prints the staleness ledger
// next to the final skyline. The fault-injection flags (-dropprob,
// -outageprob, -spamprob) compose with the crowd loop.
//
// -trace writes a deterministic JSONL event log of the run (byte-identical
// across -workers settings for a fixed -seed); -obs serves live /metrics
// and /debug/pprof endpoints and dumps the metrics registry at exit. See
// docs/OPERATIONS.md for the full event and counter reference.
//
// CSV format: first line "id,<attr names>", second line
// "levels,<domain sizes>", then one row per object with "?" for missing
// cells (see bayescrowd.WriteCSV). Larger values are better.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"bayescrowd"
	"bayescrowd/internal/stream"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "incomplete dataset CSV (required)")
		truthPath   = flag.String("truth", "", "complete ground-truth CSV for the simulated crowd")
		interactive = flag.Bool("interactive", false, "answer tasks yourself on the terminal")
		accuracy    = flag.Float64("accuracy", 1.0, "simulated worker accuracy in [0,1]")
		budget      = flag.Int("budget", 50, "task budget B")
		latency     = flag.Int("latency", 5, "latency constraint L (rounds); with -stream -crowdbudget: constant crowd answer delay in ticks")
		strategy    = flag.String("strategy", "HHS", "task selection strategy: FBS, UBS or HHS")
		m           = flag.Int("m", 15, "HHS early-stop parameter")
		alpha       = flag.Float64("alpha", 0.01, "Get-CTable pruning threshold (0 disables)")
		netPath     = flag.String("net", "", "Bayesian network JSON from cmd/bnlearn (default: learn from the data)")
		workers     = flag.Int("workers", 0, "goroutines for the parallel phases; 0 = one per CPU, 1 = sequential (results are identical either way)")
		nocache     = flag.Bool("nocache", false, "disable the component probability cache (results are identical either way)")
		cacheSize   = flag.Int("cachesize", 0, "max memoized components; 0 = default bound")
		approxThr   = flag.Int("approxthreshold", 0, "estimate components with more than this many variables by sampling (deterministic, ~0.05 absolute error); 0 = always exact")
		dropProb    = flag.Float64("dropprob", 0, "fault injection: per-task probability the answer is dropped")
		outageProb  = flag.Float64("outageprob", 0, "fault injection: per-round probability the platform fails outright")
		spamProb    = flag.Float64("spamprob", 0, "fault injection: per-task probability the answer is replaced by a random relation")
		maxRetries  = flag.Int("maxretries", 3, "retries per failed round (capped exponential backoff) before degrading")
		backoff     = flag.Duration("backoff", 0, "base retry backoff delay (doubles per attempt, capped at 32x); 0 retries immediately")
		reask       = flag.Int("reask", 0, "re-post a conflicting task this many times and absorb the majority; 0 discards conflicts")
		chargePost  = flag.Bool("chargeonpost", false, "charge the budget on posting instead of on answer arrival")
		tracePath   = flag.String("trace", "", "write a JSONL trace of the run's events to this file (deterministic under -seed)")
		obsAddr     = flag.String("obs", "", "serve /metrics and /debug/pprof on this address (e.g. :6060)")
		streamMode  = flag.Bool("stream", false, "replay the CSV as an arrival stream through the sliding-window engine (no crowd backend)")
		window      = flag.Int("window", 100, "stream mode: maximum live objects in the window (0 = unbounded)")
		span        = flag.Int64("span", 0, "stream mode: maximum object age in ticks (0 = no age bound)")
		arrivals    = flag.Int("arrivals", 1, "stream mode: rows arriving per tick")
		topk        = flag.Int("topk", 5, "stream mode: report the k highest-probability objects (0 disables)")
		crowdBudget = flag.Int("crowdbudget", 0, "stream mode: total crowd task budget; 0 keeps the stream machine-only")
		deadline    = flag.Int("taskdeadline", 2, "stream mode: ticks an unanswered crowd task stays in flight before expiring (refunded)")
		perTick     = flag.Int("taskspertick", 1, "stream mode: maximum crowd tasks posted per tick")
		seed        = flag.Int64("seed", 1, "random seed")
		verbose     = flag.Bool("v", false, "print per-round progress")
	)
	flag.Parse()

	if *dataPath == "" {
		fail("missing -data")
	}
	if !*streamMode && (*truthPath == "") == !*interactive {
		fail("pass exactly one of -truth or -interactive")
	}
	if *streamMode && *crowdBudget > 0 {
		if *truthPath == "" {
			fail("-stream with -crowdbudget needs -truth (the simulated crowd answers from it)")
		}
		if *interactive {
			fail("-interactive cannot back the asynchronous stream crowd loop")
		}
	}

	var strat bayescrowd.Strategy
	switch strings.ToUpper(*strategy) {
	case "FBS":
		strat = bayescrowd.FBS
	case "UBS":
		strat = bayescrowd.UBS
	case "HHS":
		strat = bayescrowd.HHS
	default:
		fail("unknown strategy %q", *strategy)
	}

	data, err := readCSV(*dataPath)
	if err != nil {
		fail("%v", err)
	}

	// Observability: one recorder is shared by the framework and the
	// fault injector (one logical clock per run); the registry feeds the
	// -obs endpoint and the end-of-run metrics dump.
	var (
		rec       *bayescrowd.TraceRecorder
		traceSink *bayescrowd.JSONLTrace
		traceFile *os.File
		registry  *bayescrowd.MetricsRegistry
	)
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fail("%v", err)
		}
		traceSink = bayescrowd.NewJSONLTrace(traceFile)
		rec = bayescrowd.NewTraceRecorder(traceSink)
	}
	if *obsAddr != "" {
		registry = bayescrowd.NewMetricsRegistry()
		bayescrowd.SetPoolMetrics(registry)
		addr, err := bayescrowd.ServeObs(*obsAddr, registry)
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "bayescrowd: serving /metrics and /debug/pprof on http://%s\n", addr)
	}

	if *streamMode {
		if *arrivals < 1 {
			fail("-arrivals must be at least 1")
		}
		var crowdPlatform *bayescrowd.UnreliableCrowd
		if *crowdBudget > 0 {
			if *latency < 0 {
				fail("-latency must be non-negative in stream mode")
			}
			truth, err := readCSV(*truthPath)
			if err != nil {
				fail("%v", err)
			}
			sim := bayescrowd.NewSimulatedCrowd(truth, *accuracy, rand.New(rand.NewSource(*seed)))
			crowdPlatform = bayescrowd.NewUnreliableCrowd(sim, *dropProb, *outageProb, *spamProb,
				rand.New(rand.NewSource(*seed+2)))
			crowdPlatform.MinDelay, crowdPlatform.MaxDelay = *latency, *latency
			crowdPlatform.Obs = rec
		}
		err := runStream(data, streamFlags{
			window: *window, span: *span, arrivals: *arrivals, topk: *topk,
			workers: *workers, noCache: *nocache, cacheSize: *cacheSize,
			verbose: *verbose,
			budget:  *crowdBudget, deadline: *deadline, perTick: *perTick,
			strategy: strat, m: *m,
		}, crowdPlatform, rand.New(rand.NewSource(*seed+1)), rec, registry)
		if err != nil {
			fail("%v", err)
		}
		if traceSink != nil {
			if err := traceSink.Flush(); err != nil {
				fail("trace: %v", err)
			}
			if err := traceFile.Close(); err != nil {
				fail("trace: %v", err)
			}
		}
		if registry != nil {
			fmt.Fprintln(os.Stderr, "\nmetrics:")
			if err := registry.WriteJSON(os.Stderr); err != nil {
				fail("metrics: %v", err)
			}
		}
		return
	}

	var platform bayescrowd.Platform
	if *interactive {
		platform = &terminalCrowd{in: bufio.NewScanner(os.Stdin), data: data}
	} else {
		truth, err := readCSV(*truthPath)
		if err != nil {
			fail("%v", err)
		}
		platform = bayescrowd.NewSimulatedCrowd(truth, *accuracy, rand.New(rand.NewSource(*seed)))
	}
	if *dropProb > 0 || *outageProb > 0 || *spamProb > 0 {
		u := bayescrowd.NewUnreliableCrowd(platform, *dropProb, *outageProb, *spamProb,
			rand.New(rand.NewSource(*seed+2)))
		u.Obs = rec // injected faults show up in the trace
		platform = u
	}

	opts := bayescrowd.Options{
		Alpha:           *alpha,
		Budget:          *budget,
		Latency:         *latency,
		Strategy:        strat,
		M:               *m,
		Workers:         *workers,
		NoCache:         *nocache,
		CacheSize:       *cacheSize,
		ApproxThreshold: *approxThr,
		MaxRetries:      *maxRetries,
		RetryBackoff:    *backoff,
		ReaskConflicts:  *reask,
		ChargeOnPost:    *chargePost,
		Trace:           rec,
		Metrics:         registry,
		Rng:             rand.New(rand.NewSource(*seed + 1)),
	}
	if *netPath != "" {
		f, err := os.Open(*netPath)
		if err != nil {
			fail("%v", err)
		}
		net, err := bayescrowd.ReadBayesNet(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail("%v", err)
		}
		opts.Net = net
	}
	if *verbose {
		opts.OnRound = func(round, tasks, undecided int) {
			fmt.Fprintf(os.Stderr, "round %d: %d tasks posted, %d objects undecided\n", round, tasks, undecided)
		}
	}
	res, err := bayescrowd.Run(data, platform, opts)
	if err != nil {
		fail("%v", err)
	}
	if traceSink != nil {
		if err := traceSink.Flush(); err != nil {
			fail("trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fail("trace: %v", err)
		}
	}

	fmt.Printf("posted %d tasks in %d rounds (%d budget units spent)\n", res.TasksPosted, res.Rounds, res.BudgetSpent)
	if res.ApproxComponents > 0 {
		fmt.Printf("approximated %d components (threshold %d variables, ~0.05 absolute error)\n",
			res.ApproxComponents, *approxThr)
	}
	if res.TasksDropped > 0 || res.FailedRounds > 0 || res.ConflictingAnswers > 0 || res.TasksReasked > 0 {
		fmt.Printf("robustness: %d dropped, %d re-queued, %d round failures (%d retried, %v backoff), %d conflicts (%d re-asked copies, %d resolved)\n",
			res.TasksDropped, res.TasksRequeued, res.FailedRounds, res.RoundRetries, res.BackoffTime,
			res.ConflictingAnswers, res.TasksReasked, res.ConflictsResolved)
	}
	if res.Degraded {
		fmt.Printf("WARNING: degraded result — %s\n", res.DegradedReason)
	}
	fmt.Println()
	fmt.Println("skyline answers:")
	for _, i := range res.Answers {
		conf := "certain"
		if p, ok := res.Probs[i]; ok {
			conf = fmt.Sprintf("Pr=%.2f", p)
		}
		fmt.Printf("  %s (%s)\n", data.Objects[i].ID, conf)
	}

	// Undecided non-answers, most promising first — what more budget
	// would buy.
	type cand struct {
		i int
		p float64
	}
	// Gather in object-index order, not map-iteration order, so equal
	// probabilities print identically on every run (the stable sort keeps
	// index order among ties).
	var maybes []cand
	for i := range data.Objects {
		if p, ok := res.Probs[i]; ok && p <= 0.5 {
			maybes = append(maybes, cand{i, p})
		}
	}
	if len(maybes) > 0 {
		sort.SliceStable(maybes, func(a, b int) bool { return maybes[a].p > maybes[b].p })
		fmt.Println("\nstill uncertain (excluded, Pr <= 0.5):")
		for k, c := range maybes {
			if k == 5 {
				fmt.Printf("  ... and %d more\n", len(maybes)-5)
				break
			}
			fmt.Printf("  %s (Pr=%.2f)\n", data.Objects[c.i].ID, c.p)
		}
	}

	// A short run outlives its debug endpoint almost immediately, so the
	// registry is also dumped once at exit.
	if registry != nil {
		fmt.Fprintln(os.Stderr, "\nmetrics:")
		if err := registry.WriteJSON(os.Stderr); err != nil {
			fail("metrics: %v", err)
		}
	}
}

// streamFlags bundles the -stream mode's knobs.
type streamFlags struct {
	window    int
	span      int64
	arrivals  int
	topk      int
	workers   int
	noCache   bool
	cacheSize int
	verbose   bool
	// Crowd loop knobs; budget 0 keeps the stream machine-only.
	budget   int
	deadline int
	perTick  int
	strategy bayescrowd.Strategy
	m        int
}

// runStream replays the dataset's rows, in file order, as an arrival
// stream through the incremental sliding-window engine and prints the
// final window's skyline. Stream ids coincide with row indices (every row
// is inserted exactly once, in order), which is how answers map back to
// the CSV's object ids. With a positive crowd budget the asynchronous
// crowd loop runs interleaved with the ticks (a zero budget ticks
// bit-identically to the machine-only engine), and the run ends with the
// staleness ledger.
func runStream(data *bayescrowd.Dataset, f streamFlags, platform *bayescrowd.UnreliableCrowd, rng *rand.Rand, rec *bayescrowd.TraceRecorder, registry *bayescrowd.MetricsRegistry) error {
	cfg := stream.CrowdConfig{
		Config: stream.Config{
			Attrs:     data.Attrs,
			Window:    stream.Window{Count: f.window, Span: f.span},
			TopK:      f.topk,
			Workers:   f.workers,
			NoCache:   f.noCache,
			CacheSize: f.cacheSize,
			Obs:       rec,
			Metrics:   registry,
		},
		Budget:       f.budget,
		TasksPerTick: f.perTick,
		TaskDeadline: f.deadline,
		Strategy:     f.strategy,
		M:            f.m,
		Rng:          rng,
	}
	if platform != nil {
		cfg.Platform = platform
	}
	eng, err := stream.NewCrowd(cfg)
	if err != nil {
		return err
	}

	var last stream.CrowdTickResult
	now := int64(0)
	for i := 0; i < len(data.Objects); i += f.arrivals {
		end := i + f.arrivals
		if end > len(data.Objects) {
			end = len(data.Objects)
		}
		batch := make([][]bayescrowd.Cell, 0, end-i)
		for _, o := range data.Objects[i:end] {
			batch = append(batch, o.Cells)
		}
		last = eng.Tick(now, batch)
		if f.verbose {
			line := fmt.Sprintf("tick %d: +%d -%d, %d conditions re-solved, %d skyline answers",
				now, len(last.Inserted), len(last.Evicted), last.Recomputed, len(last.Answers))
			if f.budget > 0 {
				line += fmt.Sprintf("; crowd: %d posted, %d arrived, %d in flight", last.Crowd.Posted, last.Crowd.Arrived, last.InFlight)
				if last.Lagging {
					line += " (lagging)"
				}
			}
			fmt.Fprintln(os.Stderr, line)
		}
		now++
	}

	fmt.Printf("streamed %d objects in %d ticks; final window holds %d\n",
		len(data.Objects), now, eng.Len())
	if f.budget > 0 {
		tot := eng.Totals()
		fmt.Printf("crowd: posted %d tasks, absorbed %d answers (%d conflicts), spent %d/%d units (%d still reserved)\n",
			tot.Posted, tot.Absorbed, tot.Conflicts, eng.Spent(), f.budget, eng.Reserved())
		if lost := tot.Expired + tot.Stale + tot.Late + tot.PostFailed; lost > 0 {
			fmt.Printf("crowd lag: %d tasks expired, %d answers stale, %d late, %d post failures (%d units refunded)\n",
				tot.Expired, tot.Stale, tot.Late, tot.PostFailed, tot.Refunded)
		}
	}
	fmt.Println("\nskyline of the final window (Pr > 0.5):")
	for _, id := range last.Answers {
		fmt.Printf("  %s\n", data.Objects[id].ID)
	}
	if len(last.Answers) == 0 {
		fmt.Println("  (none)")
	}
	if f.topk > 0 {
		fmt.Printf("\ntop-%d by skyline probability:\n", f.topk)
		for _, r := range last.TopK {
			fmt.Printf("  %s (Pr=%.2f)\n", data.Objects[r.ID].ID, r.P)
		}
	}
	return nil
}

func readCSV(path string) (*bayescrowd.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bayescrowd.ReadCSV(f)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bayescrowd: "+format+"\n", args...)
	os.Exit(2)
}

// terminalCrowd asks the operator each task on stdin.
type terminalCrowd struct {
	in   *bufio.Scanner
	data *bayescrowd.Dataset
}

func (t *terminalCrowd) Post(tasks []bayescrowd.Task) ([]bayescrowd.Answer, error) {
	answers := make([]bayescrowd.Answer, 0, len(tasks))
	for _, task := range tasks {
		fmt.Printf("%v  [</=/>/skip] ", task)
		for {
			if !t.in.Scan() {
				// Closed stdin is a round-level failure: hand back whatever
				// was answered so far and let the framework degrade.
				fmt.Println()
				return answers, fmt.Errorf("stdin closed with %d tasks unanswered", len(tasks)-len(answers))
			}
			switch strings.TrimSpace(t.in.Text()) {
			case "<":
				answers = append(answers, bayescrowd.Answer{Task: task, Rel: bayescrowd.LessThan})
			case "=":
				answers = append(answers, bayescrowd.Answer{Task: task, Rel: bayescrowd.EqualTo})
			case ">":
				answers = append(answers, bayescrowd.Answer{Task: task, Rel: bayescrowd.LargerThan})
			case "skip", "s":
				// The operator declines the task — a deliberate drop; the
				// framework re-queues it.
			default:
				fmt.Print("please answer <, = or > (or skip): ")
				continue
			}
			break
		}
	}
	return answers, nil
}
