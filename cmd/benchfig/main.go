// Command benchfig regenerates the paper's evaluation tables and figures
// (Figures 2-11, Table 6) over the simulated substrates.
//
// Usage:
//
//	benchfig -all                 # every experiment at quick scale
//	benchfig -exp fig4            # one experiment
//	benchfig -exp fig5 -scale paper
//	benchfig -list                # available experiment ids
//
// The quick scale (default) shrinks cardinalities so the suite finishes in
// seconds while preserving the experimental shapes; the paper scale
// matches §7's dataset sizes and takes much longer.
package main

import (
	"flag"
	"fmt"
	"os"

	"bayescrowd/internal/bench"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "experiment id to run (see -list)")
		scaleFlag = flag.String("scale", "quick", `experiment scale: "quick" or "paper"`)
		allFlag   = flag.Bool("all", false, "run every experiment")
		listFlag  = flag.Bool("list", false, "list experiment ids and exit")
		noCache   = flag.Bool("nocache", false, "disable the component probability cache in measured runs (the cache experiment always measures both modes)")
	)
	flag.Parse()

	if *listFlag {
		for _, name := range bench.Names() {
			fmt.Printf("%-14s %s\n", name, bench.Descriptions[name])
		}
		return
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.Quick()
	case "paper":
		scale = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "benchfig: unknown scale %q (want quick or paper)\n", *scaleFlag)
		os.Exit(2)
	}
	scale.NoCache = *noCache

	switch {
	case *allFlag:
		if err := bench.RunAll(os.Stdout, scale); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(2)
		}
	case *expFlag != "":
		if err := bench.Run(os.Stdout, *expFlag, scale); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchfig: pass -all, -exp <id>, or -list")
		os.Exit(2)
	}
}
