// Command benchfig regenerates the paper's evaluation tables and figures
// (Figures 2-11, Table 6) over the simulated substrates, plus the repo's
// own ablations and the raw-speed "scale" experiment the CI regression
// gate watches.
//
// Usage:
//
//	benchfig -all                 # every experiment at quick scale
//	benchfig -exp fig4            # one experiment
//	benchfig -exp scale,cache     # several, comma-separated
//	benchfig -exp fig5 -scale paper
//	benchfig -list                # available experiment ids
//
//	benchfig -exp scale,cache -json report.json
//	benchfig -exp scale,cache -baseline BENCH_baseline.json -tolerance 0.2
//
// The quick scale (default) shrinks cardinalities so the suite finishes in
// seconds while preserving the experimental shapes; the paper scale
// matches §7's dataset sizes (the scale experiment's build sweep reaches
// 1,000,000 objects there) and takes much longer.
//
// -json writes the run's machine-readable metrics as a bench.Report.
// -baseline compares the run against a committed report with a relative
// tolerance band and the absolute floors recorded in the baseline; any
// regression, any metric below its floor, and any experiment error exits
// non-zero — that is the CI gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bayescrowd/internal/bench"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "experiment id(s) to run, comma-separated (see -list)")
		scaleFlag = flag.String("scale", "quick", `experiment scale: "quick" or "paper"`)
		allFlag   = flag.Bool("all", false, "run every experiment")
		listFlag  = flag.Bool("list", false, "list experiment ids and exit")
		noCache   = flag.Bool("nocache", false, "disable the component probability cache in measured runs (the cache experiment always measures both modes)")
		jsonFlag  = flag.String("json", "", "write the run's metrics as a JSON report to this file")
		baseFlag  = flag.String("baseline", "", "compare the run's metrics against this committed report; regressions exit non-zero")
		tolFlag   = flag.Float64("tolerance", 0.20, "relative tolerance band for -baseline (0.20 = fail below 80% of baseline)")
		maxNFlag  = flag.Int("maxn", 0, "cap the scale experiment's build-sweep cardinalities (0 = no cap)")
	)
	flag.Parse()

	if *listFlag {
		for _, name := range bench.Names() {
			fmt.Printf("%-14s %s\n", name, bench.Descriptions[name])
		}
		return
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.Quick()
	case "paper":
		scale = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "benchfig: unknown scale %q (want quick or paper)\n", *scaleFlag)
		os.Exit(2)
	}
	scale.NoCache = *noCache
	if *maxNFlag > 0 {
		var ns []int
		for _, n := range scale.ScaleNs {
			if n <= *maxNFlag {
				ns = append(ns, n)
			}
		}
		scale.ScaleNs = ns
	}

	var names []string
	switch {
	case *allFlag:
		names = bench.Names()
	case *expFlag != "":
		for _, n := range strings.Split(*expFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "benchfig: pass -all, -exp <id>[,<id>...], or -list")
		os.Exit(2)
	}

	report := bench.NewReport(scale.Name)
	for _, name := range names {
		tables, err := bench.RunTables(name, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("# %s (scale=%s)\n\n", name, scale.Name)
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		report.Add(name, tables)
	}

	if *jsonFlag != "" {
		data, err := report.MarshalIndent()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(2)
		}
	}

	if *baseFlag != "" {
		data, err := os.ReadFile(*baseFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(2)
		}
		base, err := bench.ParseReport(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(2)
		}
		problems := bench.Compare(report, base, *tolFlag)
		if len(problems) > 0 {
			fmt.Fprintf(os.Stderr, "benchfig: %d regression(s) vs %s:\n", len(problems), *baseFlag)
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "  %s\n", p)
			}
			os.Exit(1)
		}
		fmt.Printf("regression gate: %d baseline metric(s) checked against %s, all within tolerance\n",
			len(base.Metrics), *baseFlag)
	}
}
