// Command bayeslint runs the repo's invariant linter: six analyzers
// enforcing the determinism, single-writer, error-handling, goroutine-
// hygiene, float-comparison, and doc-comment contracts the repo's PRs
// introduced (see DESIGN.md "Enforced invariants" and package
// internal/analysis).
//
// Usage:
//
//	bayeslint ./...                # lint every package (the CI gate)
//	bayeslint ./internal/prob      # lint one package
//	bayeslint -tests ./...         # include in-package _test.go files
//	bayeslint -list                # list analyzers and exit
//
// Diagnostics print as file:line:col: message (analyzer). Suppress one
// finding with a justified directive on the flagged line or the line
// above it:
//
//	//lint:ignore <analyzer> <reason>
//
// Unused and malformed directives are diagnostics themselves, so the
// clean-repo gate stays exact. Exit status: 0 clean, 1 findings,
// 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"bayescrowd/internal/analysis"
)

func main() {
	var (
		listFlag  = flag.Bool("list", false, "list analyzers and exit")
		testsFlag = flag.Bool("tests", false, "also lint in-package _test.go files")
		rootFlag  = flag.String("root", "", "module root (default: nearest go.mod at or above the working directory)")
	)
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root := *rootFlag
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fail("%v", err)
		}
	}

	prog, err := analysis.Load(root, patterns, *testsFlag)
	if err != nil {
		fail("load: %v", err)
	}
	diags, err := analysis.Run(prog, analysis.RepoConfig(prog.ModulePath), analysis.Analyzers())
	if err != nil {
		fail("%v", err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bayeslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:max(0, lastSlash(dir))]
		if parent == "" || parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bayeslint: "+format+"\n", args...)
	os.Exit(2)
}
