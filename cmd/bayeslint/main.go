// Command bayeslint runs the repo's invariant linter: ten analyzers
// enforcing the determinism, single-writer, error-handling, goroutine-
// hygiene, float-comparison, doc-comment, hot-path-allocation,
// lock-discipline, lock-copy, and ledger-conservation contracts the
// repo's PRs introduced (see DESIGN.md "Enforced invariants" and
// package internal/analysis). The lockcheck, ledger, and
// interprocedural errdrop/hotalloc tiers run on a whole-module call
// graph with fixpoint summaries, so they follow contracts through
// wrappers, closures, method values, and pool-submitted thunks.
//
// Usage:
//
//	bayeslint ./...                   # lint every package (the CI gate)
//	bayeslint ./internal/prob         # lint one package
//	bayeslint -tests ./...            # include in-package _test.go files
//	bayeslint -analyzer lockcheck,ledger ./...   # run a subset
//	bayeslint -sarif lint.sarif ./... # also write SARIF 2.1.0 for upload
//	bayeslint -v ./...                # report load/analysis wall time
//	bayeslint -list                   # list analyzers and exit
//
// Diagnostics print as file:line:col: message (analyzer). Suppress one
// finding with a justified directive on the flagged line or the line
// above it:
//
//	//lint:ignore <analyzer> <reason>
//
// Unused and malformed directives are diagnostics themselves, so the
// clean-repo gate stays exact. Exit status: 0 clean, 1 findings,
// 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bayescrowd/internal/analysis"
)

func main() {
	var (
		listFlag     = flag.Bool("list", false, "list analyzers and exit")
		testsFlag    = flag.Bool("tests", false, "also lint in-package _test.go files")
		rootFlag     = flag.String("root", "", "module root (default: nearest go.mod at or above the working directory)")
		analyzerFlag = flag.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
		sarifFlag    = flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file ('-' for stdout)")
		verboseFlag  = flag.Bool("v", false, "report load and analysis wall time on stderr")
		workersFlag  = flag.Int("workers", 0, "per-package analysis workers (<=0: one per CPU)")
	)
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analysis.Select(analysis.Analyzers(), *analyzerFlag)
	if err != nil {
		fail("%v", err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root := *rootFlag
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fail("%v", err)
		}
	}

	loadStart := time.Now()
	prog, err := analysis.Load(root, patterns, *testsFlag)
	if err != nil {
		fail("load: %v", err)
	}
	loadTime := time.Since(loadStart)

	runStart := time.Now()
	diags, err := analysis.Run(prog, analysis.RepoConfig(prog.ModulePath), analyzers, *workersFlag)
	if err != nil {
		fail("%v", err)
	}
	runTime := time.Since(runStart)

	if *verboseFlag {
		fmt.Fprintf(os.Stderr, "bayeslint: load %s (stdlib via %s), analysis %s, total %s\n",
			loadTime.Round(time.Millisecond), prog.StdlibImportMode(),
			runTime.Round(time.Millisecond), (loadTime + runTime).Round(time.Millisecond))
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if *sarifFlag != "" {
		out := os.Stdout
		if *sarifFlag != "-" {
			f, err := os.Create(*sarifFlag)
			if err != nil {
				fail("sarif: %v", err)
			}
			defer f.Close()
			out = f
		}
		if err := analysis.WriteSARIF(out, root, diags, analyzers); err != nil {
			fail("sarif: %v", err)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bayeslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:max(0, lastSlash(dir))]
		if parent == "" || parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bayeslint: "+format+"\n", args...)
	os.Exit(2)
}
