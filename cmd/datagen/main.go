// Command datagen generates the evaluation datasets as CSV files: the
// complete ground truth (for the simulated crowd) and an incomplete copy
// with randomly deleted cells (the query input).
//
// Examples:
//
//	datagen -kind nba -n 10000 -missing 0.1 -out holes.csv -truth-out full.csv
//	datagen -kind synthetic -n 100000 -missing 0.1 -out syn.csv
//	datagen -kind independent -n 1000 -attrs 5 -levels 10 -out ind.csv
//
// Kinds: nba (11 correlated box-score stats), synthetic (9 Adult-like
// attributes), independent, correlated, anticorrelated.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"bayescrowd"
	"bayescrowd/internal/dataset"
)

func main() {
	var (
		kind     = flag.String("kind", "nba", "nba | synthetic | independent | correlated | anticorrelated")
		n        = flag.Int("n", 10000, "number of objects")
		attrs    = flag.Int("attrs", 5, "attributes (independent/correlated/anticorrelated only)")
		levels   = flag.Int("levels", 10, "domain size (independent/correlated/anticorrelated only)")
		corr     = flag.Float64("corr", 0.7, "latent share (correlated only)")
		missing  = flag.Float64("missing", 0.1, "missing rate injected into -out")
		seed     = flag.Int64("seed", 1, "random seed")
		outPath  = flag.String("out", "", "incomplete dataset CSV path (required)")
		truthOut = flag.String("truth-out", "", "optional complete ground-truth CSV path")
	)
	flag.Parse()

	if *outPath == "" {
		fmt.Fprintln(os.Stderr, "datagen: missing -out")
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	var truth *bayescrowd.Dataset
	switch *kind {
	case "nba":
		truth = dataset.GenNBA(rng, *n)
	case "synthetic":
		truth = dataset.GenAdultSynthetic(rng, *n)
	case "independent":
		truth = dataset.GenIndependent(rng, *n, *attrs, *levels)
	case "correlated":
		truth = dataset.GenCorrelated(rng, *n, *attrs, *levels, *corr)
	case "anticorrelated":
		truth = dataset.GenAntiCorrelated(rng, *n, *attrs, *levels)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	incomplete := truth.InjectMissing(rng, *missing)
	if err := writeCSV(*outPath, incomplete); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d objects × %d attributes, %.1f%% missing\n",
		*outPath, incomplete.Len(), incomplete.NumAttrs(), incomplete.MissingRate()*100)

	if *truthOut != "" {
		if err := writeCSV(*truthOut, truth); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: complete ground truth (skyline size %d)\n",
			*truthOut, len(bayescrowd.Skyline(truth)))
	}
}

func writeCSV(path string, d *bayescrowd.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bayescrowd.WriteCSV(f, d); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
