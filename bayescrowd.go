// Package bayescrowd answers skyline queries over incomplete data with
// crowdsourcing, reproducing the BayesCrowd framework of Miao, Gao, Guo,
// Chen, Yin and Li ("Answering Skyline Queries over Incomplete Data with
// Crowdsourcing", ICDE 2020).
//
// # Overview
//
// A skyline query returns the objects not dominated by any other object.
// When attribute values are missing, the true skyline cannot be computed
// by machine alone; BayesCrowd asks crowd workers targeted micro-questions
// about individual missing values instead, prioritising the questions that
// reduce result uncertainty the most.
//
// The pipeline has three stages:
//
//  1. Preprocessing — a Bayesian network over the attributes (learned from
//     the data or supplied) yields a posterior distribution for every
//     missing cell given the object's observed cells.
//  2. Modeling — every object receives a c-table condition φ(o) in CNF: o
//     is a skyline answer iff φ(o) holds. Conditions are built from
//     dominator sets with the Get-CTable algorithm.
//  3. Crowdsourcing — under a task budget B and a latency bound L (rounds),
//     batches of conflict-free tasks are selected by entropy plus one of
//     three strategies (FBS, UBS, HHS), posted, and their answers are
//     folded back into the conditions until the budget is spent. The
//     satisfaction probabilities Pr(φ(o)) that drive selection are
//     computed with the ADPLL weighted model counter.
//
// # Quick start
//
//	incomplete := bayescrowd.SampleMovies()          // 5 movies, 5 raters
//	truth := ...                                     // complete data the
//	                                                 // simulated crowd consults
//	platform := bayescrowd.NewSimulatedCrowd(truth, 1.0, nil)
//	res, err := bayescrowd.Run(incomplete, platform, bayescrowd.Options{
//	    Alpha:    0.01,
//	    Budget:   50,
//	    Latency:  5,
//	    Strategy: bayescrowd.HHS,
//	    M:        15,
//	})
//
// res.Answers holds the indices of the answer objects; res.TasksPosted and
// res.Rounds report the monetary cost and latency actually spent.
//
// Any service satisfying the Platform interface can stand in for the
// simulated crowd to drive a real marketplace.
package bayescrowd

import (
	"io"
	"math/rand"

	"bayescrowd/internal/bayesnet"
	"bayescrowd/internal/core"
	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dae"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/metrics"
	"bayescrowd/internal/obs"
	"bayescrowd/internal/parallel"
	"bayescrowd/internal/prob"
	"bayescrowd/internal/skyline"
)

// Dataset is a collection of objects over discrete-valued attributes in
// which any cell may be missing.
type Dataset = dataset.Dataset

// Attribute describes one column: a name and the size of its discrete
// domain (codes 0..Levels-1, larger is better).
type Attribute = dataset.Attribute

// Object is one row: an identifier and one cell per attribute.
type Object = dataset.Object

// Cell is one attribute value; Missing marks it unknown.
type Cell = dataset.Cell

// NewDataset returns an empty dataset over the given schema.
func NewDataset(attrs []Attribute) *Dataset { return dataset.New(attrs) }

// Known returns a present cell holding v.
func Known(v int) Cell { return dataset.Known(v) }

// Unknown returns a missing cell.
func Unknown() Cell { return dataset.Unknown() }

// ReadCSV parses a dataset from the package's CSV format ("?" marks a
// missing cell; see WriteCSV).
func ReadCSV(r io.Reader) (*Dataset, error) { return dataset.ReadCSV(r) }

// WriteCSV writes a dataset in the package's CSV format.
func WriteCSV(w io.Writer, d *Dataset) error { return dataset.WriteCSV(w, d) }

// SampleMovies returns the paper's running example: five movies rated by
// five audiences with five ratings missing (Table 1).
func SampleMovies() *Dataset { return dataset.SampleMovies() }

// RawTable is a continuous-valued table prior to discretization; NaN
// marks a missing value.
type RawTable = dataset.RawTable

// Discretizer maps raw continuous values to discrete codes; the paper's
// preprocessing partitions continuous domains this way (§3).
type Discretizer = dataset.Discretizer

// EqualWidth returns a discretizer splitting [min, max] into equally wide
// bins.
func EqualWidth(min, max float64, levels int) Discretizer {
	return dataset.EqualWidth(min, max, levels)
}

// EqualFrequency returns a quantile discretizer whose bins hold roughly
// equal shares of the sample.
func EqualFrequency(sample []float64, levels int) Discretizer {
	return dataset.EqualFrequency(sample, levels)
}

// Discretize converts a raw continuous table into a Dataset using one
// discretizer per column; NaN cells become missing cells.
func Discretize(raw *RawTable, discs []Discretizer) (*Dataset, error) {
	return dataset.Discretize(raw, discs)
}

// InvertAttrs returns a copy of the dataset with the named attributes'
// codes flipped, turning smaller-is-better columns into the canonical
// larger-is-better orientation dominance expects. Apply the same
// inversion to the ground truth a simulated crowd consults.
func InvertAttrs(d *Dataset, attrIdx ...int) *Dataset { return d.InvertAttrs(attrIdx...) }

// Strategy selects how the crowdsourcing phase picks the expression to ask
// about for each chosen object.
type Strategy = core.Strategy

// Task-selection strategies (paper §6.2): FBS is fastest, UBS is most
// accurate, HHS trades between them via its parameter M.
const (
	FBS = core.FBS
	UBS = core.UBS
	HHS = core.HHS
)

// Options configures a BayesCrowd run; see the field documentation in the
// core package. Paper defaults: NBA α=0.003, B=50, m=15, L=5; Synthetic
// α=0.01, B=1000, m=50, L=10.
type Options = core.Options

// Result reports the answer set, per-object probabilities, and the cost
// metrics (tasks = money, rounds = latency) of a run.
type Result = core.Result

// CacheStats reports the component probability cache's hit/miss/eviction/
// invalidation counters (Result.Cache); see the prob package for the cache
// itself.
type CacheStats = prob.CacheStats

// Platform is the crowdsourcing marketplace interface: one Post call is
// one latency round. The contract is fallible — Post may deliver a
// partial answer set (dropped tasks) and/or a round-level error (an
// outage); the framework re-queues, retries with backoff, and degrades
// gracefully (see Options.MaxRetries and Result.Degraded).
type Platform = crowd.Platform

// Task is one crowd micro-question (a triple-choice comparison).
type Task = crowd.Task

// Answer is a majority-voted task response.
type Answer = crowd.Answer

// IsTwoVariableTask reports whether the task compares two unknown cells
// with each other rather than one unknown cell against a constant —
// typically the harder (and, with Options.TaskCost, pricier) kind of
// question.
func IsTwoVariableTask(t Task) bool { return t.Expr.Kind == ctable.VarGTVar }

// Rel is the three-way relation a crowd answer asserts between a task's
// two operands.
type Rel = ctable.Rel

// The three possible task answers: the left operand is smaller than,
// equal to, or larger than the right operand.
const (
	LessThan   = ctable.LT
	EqualTo    = ctable.EQ
	LargerThan = ctable.GT
)

// SimulatedCrowd is a Platform that answers from a hidden complete
// dataset with configurable worker accuracy (three workers per task,
// majority voting).
type SimulatedCrowd = crowd.Simulated

// NewSimulatedCrowd returns a simulated platform over the given ground
// truth. accuracy is the per-worker probability of a correct answer; rng
// may be nil when accuracy is 1.
func NewSimulatedCrowd(truth *Dataset, accuracy float64, rng *rand.Rand) *SimulatedCrowd {
	return crowd.NewSimulated(truth, accuracy, rng)
}

// BayesNet is a discrete Bayesian network over the dataset's attributes:
// the preprocessing model that turns observed cells into posteriors for
// the missing ones. Networks serialise with WriteJSON/ReadBayesNet and
// render with WriteDOT.
type BayesNet = bayesnet.Network

// BayesNode is one variable of a BayesNet.
type BayesNode = bayesnet.Node

// LearnBayesNet trains a network on the dataset's complete rows by BIC
// hill climbing (the Banjo-style structure search) and maximum-likelihood
// parameter fitting. Assign the result to Options.Net to reuse it across
// queries. It fails when fewer than 50 complete rows exist.
func LearnBayesNet(d *Dataset) (*BayesNet, error) {
	return core.LearnNetwork(d, bayesnet.LearnOptions{})
}

// ReadBayesNet parses a network serialised with BayesNet.WriteJSON.
func ReadBayesNet(r io.Reader) (*BayesNet, error) { return bayesnet.ReadJSON(r) }

// Imputer supplies missing-value distributions, replacing the Bayesian
// network as the preprocessing model (Options.Imputer).
type Imputer = core.Imputer

// Autoencoder is the denoising-autoencoder imputer — the alternative
// preprocessing model the paper names in §3.
type Autoencoder = dae.Model

// TrainAutoencoder fits a denoising autoencoder on the dataset's complete
// rows with default hyperparameters; assign the result to Options.Imputer.
func TrainAutoencoder(d *Dataset) (*Autoencoder, error) {
	return dae.Train(d, dae.Options{})
}

// UnreliableCrowd wraps any Platform with seeded, deterministic fault
// injection — task drops, round outages, spammer answers — the failure
// modes of a live marketplace. The framework's retry/backoff, re-queue
// and degradation machinery (Options.MaxRetries, Options.ReaskConflicts,
// Result.Degraded) is exercised against it.
type UnreliableCrowd = crowd.Unreliable

// NewUnreliableCrowd wraps inner: each answer is dropped with dropProb,
// each round fails outright with outageProb, and each surviving answer is
// replaced by a random relation with spamProb. rng is required when any
// probability is positive; a fixed seed reproduces the exact fault
// schedule.
func NewUnreliableCrowd(inner Platform, dropProb, outageProb, spamProb float64, rng *rand.Rand) *UnreliableCrowd {
	return crowd.NewUnreliable(inner, dropProb, outageProb, spamProb, rng)
}

// ErrOutage is the round-level error an UnreliableCrowd returns when the
// whole platform is down for a round.
var ErrOutage = crowd.ErrOutage

// CrowdStats is the per-platform ledger of posted tasks, delivered
// answers, and round outcomes (full, partial, failed).
type CrowdStats = crowd.Stats

// WorkerPool is a Platform over a heterogeneous worker population with
// per-worker accuracies and an AMT-style recruitment threshold
// (MinAccuracy).
type WorkerPool = crowd.Pool

// NewWorkerPool builds a pool of n simulated workers whose accuracies are
// drawn uniformly from [minAcc, maxAcc]; three distinct workers vote on
// each task. Set MinAccuracy on the returned pool to recruit selectively.
func NewWorkerPool(truth *Dataset, n int, minAcc, maxAcc float64, rng *rand.Rand) *WorkerPool {
	return crowd.NewPool(truth, n, minAcc, maxAcc, rng)
}

// Run executes the full BayesCrowd pipeline over an incomplete dataset,
// obtaining crowd answers from the platform.
func Run(d *Dataset, platform Platform, opt Options) (*Result, error) {
	return core.Run(d, platform, opt)
}

// Skyline returns the skyline of a complete dataset (the evaluation
// ground truth), as ascending object indices.
func Skyline(d *Dataset) []int { return skyline.BNL(d) }

// Conditions runs only the modeling phase — Get-CTable with the given α
// threshold (≤ 0 disables pruning) — and returns every object's c-table
// condition rendered in the paper's notation ("true", "false", or a CNF
// like "Var(o5,a2) < 2 ∨ Var(o5,a3) < 3"). Useful for inspecting what a
// query would need to ask before spending any budget.
func Conditions(d *Dataset, alpha float64) []string {
	ct := ctable.Build(d, ctable.BuildOptions{Alpha: alpha})
	out := make([]string, len(ct.Conds))
	for i, c := range ct.Conds {
		out[i] = c.String()
	}
	return out
}

// TraceEvent is one typed, deterministic record of a run's trace: what
// happened (Kind), when on the logical clock (Seq, Round), and the
// kind's payload fields. See the obs package for the event taxonomy.
type TraceEvent = obs.Event

// TraceSink consumes trace events; implementations decide persistence
// (JSONL file, in-memory aggregation, nothing).
type TraceSink = obs.Sink

// TraceRecorder stamps trace events with the run's logical clock and
// forwards them to a sink. Assign one to Options.Trace; a nil recorder
// disables tracing at zero cost. One recorder serves one run at a time.
type TraceRecorder = obs.Recorder

// MetricsRegistry collects a run's scheduling-dependent numbers —
// monotonic counters and duration histograms. Assign one to
// Options.Metrics and dump it with WriteJSON, or serve it over HTTP with
// ServeObs.
type MetricsRegistry = obs.Registry

// NewTraceRecorder wraps the sink in a fresh logical clock; a nil sink
// yields the disabled (nil) recorder.
func NewTraceRecorder(s TraceSink) *TraceRecorder { return obs.NewRecorder(s) }

// JSONLTrace is a sink writing one canonical JSON object per event —
// the format behind cmd/bayescrowd's -trace flag.
type JSONLTrace = obs.Trace

// NewJSONLTrace returns a sink writing one JSON object per event to w.
// The encoding is canonical, so a seeded run's trace is byte-identical
// at any Options.Workers setting. Call Flush before closing w.
func NewJSONLTrace(w io.Writer) *JSONLTrace { return obs.NewTrace(w) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// TraceAggregator is a sink that folds events into a MetricsRegistry as
// per-kind counters instead of persisting them.
type TraceAggregator = obs.Aggregator

// NewTraceAggregator returns a sink that folds events into reg as
// per-kind counters ("events.<kind>") instead of persisting them.
func NewTraceAggregator(reg *MetricsRegistry) *TraceAggregator { return obs.NewAggregator(reg) }

// ServeObs starts the opt-in debug HTTP endpoint on addr in the
// background — GET /metrics dumps reg as JSON, /debug/pprof/* exposes
// the standard profiles — and returns the bound address (addr may use
// port 0). The server runs for the remainder of the process; callers
// that need to stop the endpoint use StartObs instead.
func ServeObs(addr string, reg *MetricsRegistry) (string, error) { return obs.Serve(addr, reg) }

// ObsServer is the managed lifecycle of a debug endpoint started with
// StartObs: Addr reports the bound address and Shutdown drains it
// gracefully.
type ObsServer = obs.HTTPServer

// StartObs starts the debug HTTP endpoint like ServeObs but returns
// the managed handle so the caller can drain it — the form
// long-running processes use so the endpoint shuts down with the rest
// of the process (ObsServer.Shutdown).
func StartObs(addr string, reg *MetricsRegistry) (*ObsServer, error) {
	return obs.StartServer(addr, obs.Handler(reg))
}

// SetPoolMetrics points the worker pool's process-wide counters
// (parallel.fanouts / parallel.inline / parallel.items) at reg; nil
// disables them again.
func SetPoolMetrics(reg *MetricsRegistry) { parallel.SetMetrics(reg) }

// F1 scores a result set against the expected one.
func F1(got, want []int) float64 { return metrics.F1(got, want) }

// PRF1 returns precision, recall and F1 of a result set.
func PRF1(got, want []int) (precision, recall, f1 float64) { return metrics.PRF1(got, want) }
