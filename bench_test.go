// bench_test.go exposes one testing.B benchmark per table and figure of
// the paper's evaluation (§7). Each benchmark regenerates its experiment
// at the quick scale via the internal/bench harness; `go run
// ./cmd/benchfig -all -scale paper` reproduces the full-scale tables and
// EXPERIMENTS.md records the measured shapes against the paper's.
package bayescrowd

import (
	"io"
	"testing"

	"bayescrowd/internal/bench"
)

func runExperiment(b *testing.B, name string) {
	b.Helper()
	s := bench.Quick()
	s.Reps = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(io.Discard, name, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2CTableConstruction regenerates Figure 2: Get-CTable vs the
// pairwise Baseline across missing rates on both datasets.
func BenchmarkFig2CTableConstruction(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3ProbabilityComputation regenerates Figure 3: ADPLL vs
// Naive enumeration across missing rates on both datasets.
func BenchmarkFig3ProbabilityComputation(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig3Ablation measures the ADPLL design choices (component
// decomposition, most-frequent-variable branching) beyond the paper.
func BenchmarkFig3Ablation(b *testing.B) { runExperiment(b, "fig3-ablation") }

// BenchmarkFig4CrowdSkyComparison regenerates Figure 4: execution time,
// #tasks and #rounds of BayesCrowd (FBS/UBS/HHS) vs CrowdSky across NBA
// cardinality with two crowd attributes.
func BenchmarkFig4CrowdSkyComparison(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5Budget regenerates Figure 5: time and F1 vs budget.
func BenchmarkFig5Budget(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6MissingRate regenerates Figure 6: time and F1 vs missing
// rate.
func BenchmarkFig6MissingRate(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7ParameterM regenerates Figure 7: the HHS m sweep with FBS
// and UBS as references.
func BenchmarkFig7ParameterM(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Alpha regenerates Figure 8: time and F1 vs the pruning
// threshold α.
func BenchmarkFig8Alpha(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9WorkerAccuracy regenerates Figure 9: time and F1 vs worker
// accuracy.
func BenchmarkFig9WorkerAccuracy(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10Latency regenerates Figure 10: time and F1 vs the number
// of rounds on Synthetic.
func BenchmarkFig10Latency(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Cardinality regenerates Figure 11: time and F1 vs
// Synthetic cardinality.
func BenchmarkFig11Cardinality(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkTable6AMT regenerates Table 6: the simulated live-marketplace
// F1 of the three strategies.
func BenchmarkTable6AMT(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkWorkersScaling measures the parallel speedup of the c-table
// build and the Pr(φ) fan-out across worker counts, verifying
// bit-identical results at every count.
func BenchmarkWorkersScaling(b *testing.B) { runExperiment(b, "workers") }
