package bayescrowd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles the CLI binaries once into a temp dir.
func buildCmds(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI builds skipped in -short mode")
	}
	dir := t.TempDir()
	for _, name := range []string{"bayescrowd", "datagen", "bnlearn", "benchfig"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, name), "./cmd/"+name)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	return dir
}

func TestCLIWorkflowEndToEnd(t *testing.T) {
	bin := buildCmds(t)
	work := t.TempDir()
	holes := filepath.Join(work, "holes.csv")
	full := filepath.Join(work, "full.csv")
	netJSON := filepath.Join(work, "net.json")
	netDOT := filepath.Join(work, "net.dot")

	// 1. Generate a dataset pair.
	out, err := exec.Command(filepath.Join(bin, "datagen"),
		"-kind", "nba", "-n", "300", "-missing", "0.1",
		"-out", holes, "-truth-out", full).CombinedOutput()
	if err != nil {
		t.Fatalf("datagen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "300 objects") {
		t.Fatalf("datagen output: %s", out)
	}

	// 2. Learn and persist a network.
	out, err = exec.Command(filepath.Join(bin, "bnlearn"),
		"-data", full, "-out", netJSON, "-dot", netDOT).CombinedOutput()
	if err != nil {
		t.Fatalf("bnlearn: %v\n%s", err, out)
	}
	if dot, err := os.ReadFile(netDOT); err != nil || !strings.Contains(string(dot), "digraph") {
		t.Fatalf("bnlearn DOT output broken: %v", err)
	}

	// 3. Run the crowd query with the learned network.
	out, err = exec.Command(filepath.Join(bin, "bayescrowd"),
		"-data", holes, "-truth", full, "-net", netJSON,
		"-budget", "20", "-latency", "4", "-alpha", "0.05").CombinedOutput()
	if err != nil {
		t.Fatalf("bayescrowd: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "skyline answers:") ||
		!strings.Contains(string(out), "posted 20 tasks in 4 rounds") {
		t.Fatalf("bayescrowd output: %s", out)
	}

	// 4. benchfig -list works.
	out, err = exec.Command(filepath.Join(bin, "benchfig"), "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("benchfig -list: %v\n%s", err, out)
	}
	for _, want := range []string{"fig2", "table6", "motivation"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("benchfig -list missing %q:\n%s", want, out)
		}
	}
}

func TestCLIFlagValidation(t *testing.T) {
	bin := buildCmds(t)
	cases := []struct {
		name string
		cmd  string
		args []string
	}{
		{"bayescrowd no data", "bayescrowd", nil},
		{"bayescrowd both backends", "bayescrowd", []string{"-data", "x.csv", "-truth", "y.csv", "-interactive"}},
		{"bayescrowd bad strategy", "bayescrowd", []string{"-data", "testdata/movies_incomplete.csv", "-truth", "testdata/movies_truth.csv", "-strategy", "XXX"}},
		{"datagen no out", "datagen", nil},
		{"datagen bad kind", "datagen", []string{"-kind", "weird", "-out", "/tmp/x.csv"}},
		{"bnlearn no args", "bnlearn", nil},
		{"benchfig no mode", "benchfig", nil},
		{"benchfig bad exp", "benchfig", []string{"-exp", "fig99"}},
		{"benchfig bad scale", "benchfig", []string{"-exp", "fig2", "-scale", "huge"}},
	}
	for _, tc := range cases {
		cmd := exec.Command(filepath.Join(bin, tc.cmd), tc.args...)
		cmd.Dir = "." // repo root for the testdata-relative case
		if err := cmd.Run(); err == nil {
			t.Errorf("%s: exited zero on invalid input", tc.name)
		}
	}
}
