package bayescrowd_test

import (
	"bytes"
	"math/rand"
	"testing"

	"bayescrowd"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/metrics"
)

// TestLearnedNetworkPipeline exercises the full production path through
// the public API alone: learn a Bayesian network from the incomplete
// data's complete rows, persist and reload it, then run a budgeted crowd
// skyline query with a heterogeneous recruited worker pool.
func TestLearnedNetworkPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	truth := dataset.GenNBA(rng, 800)
	incomplete := truth.InjectMissing(rng, 0.08)

	// Learn and round-trip the preprocessing model.
	net, err := bayescrowd.LearnBayesNet(incomplete)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := bayescrowd.ReadBayesNet(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// A 100-worker marketplace, recruiting only the ≥0.9 segment.
	pool := bayescrowd.NewWorkerPool(truth, 100, 0.6, 1.0, rand.New(rand.NewSource(302)))
	pool.MinAccuracy = 0.9

	res, err := bayescrowd.Run(incomplete, pool, bayescrowd.Options{
		Alpha:    0.02,
		Budget:   60,
		Latency:  6,
		Strategy: bayescrowd.HHS,
		M:        5,
		Net:      reloaded,
		Rng:      rand.New(rand.NewSource(303)),
	})
	if err != nil {
		t.Fatal(err)
	}

	want := bayescrowd.Skyline(truth)
	f1 := bayescrowd.F1(res.Answers, want)
	if f1 < 0.6 {
		t.Fatalf("F1 = %v; learned-network pipeline underperforms", f1)
	}
	if res.TasksPosted > 60 || res.Rounds > 6 {
		t.Fatalf("constraints violated: %d tasks, %d rounds", res.TasksPosted, res.Rounds)
	}
	if pool.Stats.TasksPosted != res.TasksPosted {
		t.Fatal("pool stats disagree with result stats")
	}
	// Only recruited workers answered.
	for _, w := range pool.Workers {
		if w.Accuracy < 0.9 && w.Answered > 0 {
			t.Fatalf("unrecruited worker %s answered tasks", w.ID)
		}
	}
}

// TestCSVPipelineRoundTrip drives the CSV route: generate, serialise,
// reload, query — the cmd/datagen + cmd/bayescrowd flow as a library test.
func TestCSVPipelineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	truth := dataset.GenAdultSynthetic(rng, 400)
	incomplete := truth.InjectMissing(rng, 0.12)

	var incBuf, truthBuf bytes.Buffer
	if err := bayescrowd.WriteCSV(&incBuf, incomplete); err != nil {
		t.Fatal(err)
	}
	if err := bayescrowd.WriteCSV(&truthBuf, truth); err != nil {
		t.Fatal(err)
	}
	incBack, err := bayescrowd.ReadCSV(&incBuf)
	if err != nil {
		t.Fatal(err)
	}
	truthBack, err := bayescrowd.ReadCSV(&truthBuf)
	if err != nil {
		t.Fatal(err)
	}

	platform := bayescrowd.NewSimulatedCrowd(truthBack, 1.0, nil)
	res, err := bayescrowd.Run(incBack, platform, bayescrowd.Options{
		Alpha:    0.05,
		Budget:   40,
		Latency:  4,
		Strategy: bayescrowd.FBS,
		Rng:      rand.New(rand.NewSource(305)),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := bayescrowd.Skyline(truthBack)
	if f1 := metrics.F1(res.Answers, want); f1 < 0.5 {
		t.Fatalf("F1 = %v after CSV round trip", f1)
	}
}

// TestStrategyOrderingHolds is the paper's headline strategy claim as an
// integration assertion: averaged over several configurations, UBS is at
// least as accurate as FBS under the same budget (HHS in between is
// checked loosely since m trades it either way).
func TestStrategyOrderingHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("strategy-ordering average skipped in -short mode")
	}
	var fbsSum, ubsSum float64
	const trials = 5
	for s := int64(0); s < trials; s++ {
		rng := rand.New(rand.NewSource(310 + s))
		truth := dataset.GenNBA(rng, 400)
		incomplete := truth.InjectMissing(rng, 0.12)
		want := bayescrowd.Skyline(truth)
		for _, strat := range []bayescrowd.Strategy{bayescrowd.FBS, bayescrowd.UBS} {
			platform := bayescrowd.NewSimulatedCrowd(truth, 1.0, nil)
			res, err := bayescrowd.Run(incomplete, platform, bayescrowd.Options{
				Alpha:    0.05,
				Budget:   30,
				Latency:  5,
				Strategy: strat,
				Net:      dataset.NBANet(),
				Rng:      rand.New(rand.NewSource(320 + s)),
			})
			if err != nil {
				t.Fatal(err)
			}
			f1 := bayescrowd.F1(res.Answers, want)
			if strat == bayescrowd.FBS {
				fbsSum += f1
			} else {
				ubsSum += f1
			}
		}
	}
	if ubsSum < fbsSum-0.05*trials {
		t.Fatalf("UBS mean F1 %.3f materially below FBS %.3f", ubsSum/trials, fbsSum/trials)
	}
}
