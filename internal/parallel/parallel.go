// Package parallel provides the bounded worker pool behind the
// framework's data-parallel fan-outs: the c-table dominator scan, the
// per-object Pr(φ) evaluations, and candidate scoring. Every fan-out is
// index-addressed — workers write results to disjoint slots of a
// pre-sized slice and the caller merges in index order — so the output
// is bit-identical to sequential execution at any worker count: no
// floating-point value is ever reassociated across workers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"bayescrowd/internal/obs"
)

// Workers normalises a worker-count option: values <= 0 mean one worker
// per available CPU (runtime.GOMAXPROCS(0)); positive values pass
// through unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// poolCounters caches the resolved counter pointers so the per-For cost
// of enabled metrics is two atomic adds, and of disabled metrics a
// single atomic pointer load.
type poolCounters struct {
	fanouts *obs.Counter // For calls that actually spawned workers
	inline  *obs.Counter // For calls that ran inline (workers or n <= 1)
	items   *obs.Counter // total indices dispatched
}

// metrics is the process-wide observability hook, nil until SetMetrics.
var metrics atomic.Pointer[poolCounters]

// SetMetrics points the pool's counters at the given registry:
// "parallel.fanouts" and "parallel.inline" count For calls (spawning and
// inline respectively) and "parallel.items" the indices dispatched. The
// hook is process-wide — the pool has no per-call configuration surface —
// and passing a nil registry disables it again.
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&poolCounters{
		fanouts: reg.Counter("parallel.fanouts"),
		inline:  reg.Counter("parallel.inline"),
		items:   reg.Counter("parallel.items"),
	})
}

// For invokes f(w, i) exactly once for every i in [0, n), fanning the
// indices out across at most workers goroutines. w identifies the
// executing worker (0 <= w < min(workers, n)), so callers can hand each
// worker its own scratch space. With workers <= 1 or n <= 1 every call
// runs inline on the calling goroutine in ascending index order — the
// exact sequential baseline.
//
// Indices are handed out dynamically through a shared atomic cursor, so
// per-index cost imbalance does not idle workers. For returns only after
// every invocation has finished, which establishes a happens-before edge
// between all f calls and the caller's next statement: writes made by f
// are visible to the caller, and the caller's subsequent writes are
// visible to the next For. A panic inside f is re-raised on the calling
// goroutine once the pool has drained.
func For(workers, n int, f func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		if pc := metrics.Load(); pc != nil {
			pc.inline.Add(1)
			pc.items.Add(int64(n))
		}
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	if pc := metrics.Load(); pc != nil {
		pc.fanouts.Add(1)
		pc.items.Add(int64(n))
	}

	var (
		cursor    atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
