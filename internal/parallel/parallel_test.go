package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalise(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 17} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d, want %d", n, got, n)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(_, i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForSequentialInlineOrder(t *testing.T) {
	var order []int
	For(1, 5, func(w, i int) {
		if w != 0 {
			t.Fatalf("sequential worker id = %d, want 0", w)
		}
		order = append(order, i)
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	const workers, n = 4, 64
	var bad atomic.Int32
	For(workers, n, func(w, _ int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d invocations saw an out-of-range worker id", bad.Load())
	}
}

// TestForMoreWorkItemsThanWorkers hammers the pool with far more items
// than workers while every worker mutates its own scratch slot — the
// per-worker-scratch pattern ctable.Build relies on. Run under -race this
// is the pool's data-race gate.
func TestForMoreWorkItemsThanWorkers(t *testing.T) {
	const workers, n = 8, 10000
	scratch := make([][]int, workers)
	total := make([]int64, n)
	For(workers, n, func(w, i int) {
		scratch[w] = append(scratch[w], i)
		total[i] = int64(i) * 2
	})
	sum := 0
	for _, s := range scratch {
		sum += len(s)
	}
	if sum != n {
		t.Fatalf("workers processed %d items, want %d", sum, n)
	}
	for i, v := range total {
		if v != int64(i)*2 {
			t.Fatalf("total[%d] = %d", i, v)
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			For(workers, 100, func(_, i int) {
				if i == 37 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: For returned instead of panicking", workers)
		}()
	}
}
