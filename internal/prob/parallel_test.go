package prob

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
)

// nbaConditions builds a c-table over a generated NBA dataset and
// uniform per-variable distributions — a realistic clause-set mix of
// shared-variable CNFs for exercising the solver.
func nbaConditions(n int, missing, alpha float64, seed int64) ([]*ctable.Condition, Dists) {
	rng := rand.New(rand.NewSource(seed))
	truth := dataset.GenNBA(rng, n)
	d := truth.InjectMissing(rng, missing)
	ct := ctable.Build(d, ctable.BuildOptions{Alpha: alpha})
	dists := Dists{}
	var conds []*ctable.Condition
	for _, o := range ct.Undecided() {
		c := ct.Conds[o]
		conds = append(conds, c)
		for _, v := range c.Vars() {
			if _, ok := dists[v]; !ok {
				dists[v] = uniform(d.Attrs[v.Attr].Levels)
			}
		}
	}
	return conds, dists
}

// TestProbAllMatchesSequential asserts the parallel fan-out returns the
// exact floats of one-by-one sequential evaluation, at several worker
// counts.
func TestProbAllMatchesSequential(t *testing.T) {
	conds, dists := nbaConditions(250, 0.15, 0.1, 3)
	if len(conds) == 0 {
		t.Fatal("no undecided conditions generated")
	}
	ev := NewEvaluator(dists)
	want := make([]float64, len(conds))
	for i, c := range conds {
		want[i] = ev.Prob(c)
	}
	for _, workers := range []int{1, 2, 8, 33} {
		if got := ev.ProbAll(conds, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("ProbAll(workers=%d) differs from sequential evaluation", workers)
		}
	}
}

// TestSolverScratchReuse interleaves big and small conditions so pooled
// scratch is recycled across evaluations of very different variable
// counts, checking each result against the solver-free Naive enumerator.
// Stale epochs or assignment residue would surface as a wrong float.
func TestSolverScratchReuse(t *testing.T) {
	conds, dists := nbaConditions(120, 0.2, 0.2, 5)
	ev := NewEvaluator(dists)
	checked := 0
	for round := 0; round < 3; round++ {
		for _, c := range conds {
			if ev.StateSpace(c) > 1e5 {
				continue // Naive reference must stay cheap
			}
			got := ev.Prob(c)
			want := ev.Naive(c)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("round %d: Prob = %v, Naive = %v for %v", round, got, want, c)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no conditions small enough for the Naive reference")
	}
}

// TestEvaluatorConcurrentUse hammers one shared evaluator from many
// goroutines — the single-writer contract's read side. `go test -race`
// is the gate: pooled solver scratch must never leak between in-flight
// evaluations.
func TestEvaluatorConcurrentUse(t *testing.T) {
	conds, dists := nbaConditions(250, 0.15, 0.1, 7)
	ev := NewEvaluator(dists)
	want := ev.ProbAll(conds, 1)
	for rep := 0; rep < 5; rep++ {
		if got := ev.ProbAll(conds, 16); !reflect.DeepEqual(got, want) {
			t.Fatalf("rep %d: concurrent ProbAll diverged from sequential", rep)
		}
	}
}

// BenchmarkProbAll measures the Pr(φ) fan-out over the paper-scale NBA
// c-table (10,000 objects, α=0.003, default missing rate) at increasing
// worker counts — the scaling curve behind the tentpole. On multi-core
// hardware Workers=4 should come in at least ~2x over Workers=1; on a
// single-core machine the curve is flat by construction.
func BenchmarkProbAll(b *testing.B) {
	conds, dists := nbaConditions(10000, 0.1, 0.003, 1)
	ev := NewEvaluator(dists)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev.ProbAll(conds, workers)
			}
		})
	}
}
