package prob

import (
	"sync"
	"sync/atomic"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/obs"
)

// DefaultCacheSize bounds the component cache when the caller passes no
// explicit capacity. Entries are small — a float, an epoch stamp, a short
// variable list and the fingerprint string — so the default costs a few
// megabytes at paper scale.
const DefaultCacheSize = 1 << 15

// cacheShardCount must be a power of two; 16 shards keep lock contention
// negligible at any realistic worker count without bloating the struct.
const cacheShardCount = 16

// CacheStats is a point-in-time snapshot of the component cache's
// counters, surfaced through core.Result for observability.
type CacheStats struct {
	// Hits and Misses count fingerprint lookups during Pr(φ) evaluation.
	// A hit replaces one branching model-counting run over the component.
	Hits, Misses uint64
	// Evicted counts entries dropped by the size cap.
	Evicted uint64
	// Invalidated counts variables whose epoch was bumped by Invalidate —
	// one per renormalised distribution, not one per dead entry.
	Invalidated uint64
	// InvalidatedEntries counts the memoized entries Invalidate evicted
	// eagerly because they mentioned a bumped variable. The count is
	// scheduling-dependent (which components were cached depends on the
	// preceding fan-out's schedule), so it surfaces as a metrics counter,
	// never on the trace.
	InvalidatedEntries uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type cacheEntry struct {
	// p is a memoized component probability; vec, when non-nil, a joint
	// marginal sweep vector Pr(comp ∧ x=a) instead. The two entry kinds
	// live in disjoint key spaces (fingerprint domain prefixes), so a key
	// always identifies which field is meaningful.
	p   float64
	vec []float64
	// stamp is the cache epoch when the entry was computed; the entry is
	// stale once any of its variables carries a newer epoch.
	stamp uint64
	vars  []ctable.Var
}

type cacheShard struct {
	mu sync.Mutex
	m  map[string]cacheEntry // guarded by mu
	// fifo holds insertion order for eviction. It may briefly contain
	// keys already deleted by lazy invalidation (the eviction loop skips
	// them) or duplicates from re-insertion after a stale drop; it is
	// compacted when it outgrows the live map.
	fifo []string // guarded by mu
	cap  int
}

// ComponentCache memoizes two things under canonical fingerprints, both
// invalidated per variable: the probability of connected clause
// components, and joint marginal sweep vectors Pr(component ∧ x=a) keyed
// by (component, swept variable) — the quantity that lets the UBS/HHS
// candidate scan price every constant-comparison candidate on x with a
// partial sum instead of a model-counting run. Together they turn
// repeated Pr(φ) work — the candidate scan and the cross-round
// recomputation fan-out — into lookups for everything an answer left
// untouched.
//
// Concurrency follows the Evaluator's single-writer contract: lookups and
// stores are safe from any number of workers during a parallel fan-out
// (shards are mutex-guarded, counters atomic), while Invalidate — like
// the distribution renormalisation it mirrors — must run strictly between
// fan-outs; the pool join publishes its epoch bumps to the next fan-out's
// workers. A cache must not be shared between evaluators holding
// different distributions: validity is tracked per variable, and two
// Dists maps disagreeing about a variable would alias each other's
// entries.
type ComponentCache struct {
	shards [cacheShardCount]cacheShard

	// epoch and varEpoch are written only by Invalidate (single-writer,
	// between fan-outs) and read lock-free during fan-outs.
	epoch              uint64
	varEpoch           map[ctable.Var]uint64
	invalidated        uint64
	invalidatedEntries uint64

	hits, misses, evicted atomic.Uint64

	// Obs, when non-nil, receives the cache's trace events. Only
	// Invalidate emits — it runs in the single-writer gap and its
	// variable count is deterministic; hits, misses and evictions are
	// scheduling-dependent and surface as registry counters instead.
	Obs *obs.Recorder
}

// NewComponentCache returns a cache bounded to at most maxEntries
// memoized components; maxEntries <= 0 selects DefaultCacheSize.
func NewComponentCache(maxEntries int) *ComponentCache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheSize
	}
	perShard := (maxEntries + cacheShardCount - 1) / cacheShardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &ComponentCache{varEpoch: map[ctable.Var]uint64{}}
	for i := range c.shards {
		//lint:ignore lockcheck construction: the cache has not escaped yet, no other goroutine can observe the shards
		c.shards[i].m = make(map[string]cacheEntry)
		c.shards[i].cap = perShard
	}
	return c
}

// shardOf hashes a fingerprint to its shard (FNV-1a).
func shardOf(key []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range key {
		h = (h ^ uint32(b)) * 16777619
	}
	return h & (cacheShardCount - 1)
}

// lookupEntry returns the live entry for the fingerprint, if present and
// not invalidated by a newer variable epoch. Stale entries are deleted on
// sight so their slots free up before FIFO eviction reaches them.
func (c *ComponentCache) lookupEntry(key []byte) (cacheEntry, bool) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	e, ok := sh.m[string(key)]
	sh.mu.Unlock()
	if ok {
		stale := false
		for _, v := range e.vars {
			if c.varEpoch[v] > e.stamp {
				stale = true
				break
			}
		}
		if !stale {
			c.hits.Add(1)
			return e, true
		}
		sh.mu.Lock()
		if cur, live := sh.m[string(key)]; live && cur.stamp == e.stamp {
			delete(sh.m, string(key))
		}
		sh.mu.Unlock()
	}
	c.misses.Add(1)
	return cacheEntry{}, false
}

// lookup returns the memoized probability for a component fingerprint.
func (c *ComponentCache) lookup(key []byte) (float64, bool) {
	e, ok := c.lookupEntry(key)
	return e.p, ok
}

// lookupVec returns the memoized joint marginal sweep vector for a
// (component, swept variable) fingerprint. The returned slice is shared:
// callers must treat it as read-only.
func (c *ComponentCache) lookupVec(key []byte) ([]float64, bool) {
	e, ok := c.lookupEntry(key)
	return e.vec, ok
}

// store memoizes a component probability. key and vars may alias caller
// scratch; both are copied.
func (c *ComponentCache) store(key []byte, vars []ctable.Var, p float64) {
	c.storeEntry(key, cacheEntry{p: p, vars: vars})
}

// storeVec memoizes a joint marginal sweep vector. key and vars may alias
// caller scratch (copied); vec is retained as given and must not be
// mutated afterwards.
func (c *ComponentCache) storeVec(key []byte, vars []ctable.Var, vec []float64) {
	c.storeEntry(key, cacheEntry{vec: vec, vars: vars})
}

func (c *ComponentCache) storeEntry(key []byte, e cacheEntry) {
	sh := &c.shards[shardOf(key)]
	e.stamp = c.epoch
	e.vars = append([]ctable.Var(nil), e.vars...)
	sh.mu.Lock()
	k := string(key)
	if _, exists := sh.m[k]; !exists {
		for len(sh.m) >= sh.cap && len(sh.fifo) > 0 {
			old := sh.fifo[0]
			sh.fifo = sh.fifo[1:]
			if _, live := sh.m[old]; live {
				delete(sh.m, old)
				c.evicted.Add(1)
			}
		}
		sh.fifo = append(sh.fifo, k)
		if len(sh.fifo) > 2*sh.cap+16 {
			sh.compactFIFO()
		}
	}
	sh.m[k] = e
	sh.mu.Unlock()
}

// compactFIFO rebuilds the eviction queue from the keys still live in the
// map, preserving order and dropping duplicates. Called with mu held.
func (sh *cacheShard) compactFIFO() {
	kept := make([]string, 0, len(sh.m))
	//lint:ignore hotalloc compaction is rare and amortized over many stores; the dedup set is not per-evaluation
	seen := make(map[string]bool, len(sh.m))
	for _, k := range sh.fifo {
		if _, live := sh.m[k]; live && !seen[k] {
			seen[k] = true
			kept = append(kept, k)
		}
	}
	sh.fifo = kept
}

// Invalidate marks every memoized component mentioning one of the given
// variables stale and returns how many entries it evicted. The framework
// calls it when a crowd answer renormalises a variable's distribution
// (conditions whose clauses were merely rewritten need no bump — their
// fingerprints change, so the old entries can never be hit again); the
// streaming engine calls it with the variables of evicted objects, whose
// fingerprints can never recur and would otherwise pin dead entries
// until FIFO eviction reached them.
//
// Dead entries are dropped eagerly here — one scan of the shards per
// call, so batch the variables of a round (or a window tick) into one
// Invalidate — and the per-variable epoch bump remains as a backstop.
// The returned count is scheduling-dependent (which components got
// cached depends on the preceding fan-out's schedule): surface it as a
// metrics counter, never on the trace.
//
// Single-writer: Invalidate must not run concurrently with lookups, i.e.
// only between parallel fan-outs, matching when the Evaluator's Dists may
// be mutated.
func (c *ComponentCache) Invalidate(vars ...ctable.Var) int {
	if len(vars) == 0 {
		return 0
	}
	c.epoch++
	bumped := make(map[ctable.Var]bool, len(vars))
	for _, v := range vars {
		c.varEpoch[v] = c.epoch
		bumped[v] = true
	}
	evicted := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for key, e := range sh.m {
			for _, v := range e.vars {
				if bumped[v] {
					delete(sh.m, key)
					evicted++
					break
				}
			}
		}
		sh.mu.Unlock()
	}
	c.invalidated += uint64(len(vars))
	c.invalidatedEntries += uint64(evicted)
	c.Obs.Emit(obs.Event{Kind: obs.KindCacheInvalidate, N: len(vars)})
	return evicted
}

// Stats snapshots the cache counters.
func (c *ComponentCache) Stats() CacheStats {
	return CacheStats{
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Evicted:            c.evicted.Load(),
		Invalidated:        c.invalidated,
		InvalidatedEntries: c.invalidatedEntries,
	}
}

// Len returns the number of live entries across all shards.
func (c *ComponentCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}
