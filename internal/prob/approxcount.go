package prob

import (
	"fmt"
	"math/rand"
	"slices"

	"bayescrowd/internal/ctable"
)

// ApproxCount generalises the weighted ApproxCount model counter of Wei &
// Selman ("A New Approach to Model Counting", SAT 2005) to multi-valued
// variables with non-uniform weights — the approximate comparator the
// paper evaluates against ADPLL in §5 and reports losing on both
// efficiency and accuracy.
//
// The original algorithm estimates a model count as a telescoping product:
// sample satisfying assignments (SampleSat), estimate the marginal of one
// variable among them, fix that variable to its most frequent value,
// multiply the running estimate by the inverse marginal, and recurse on
// the simplified formula. Here the count becomes a probability mass, the
// samples are drawn from the variables' distributions restricted to the
// satisfying region by rejection-plus-local-search (the multi-valued
// stand-in for SampleSat), and the marginal estimate is weighted by the
// branch distribution.
//
// samplesPerLevel controls the per-variable sampling effort; typical
// values are 30–200. The estimator is unbiased only asymptotically and —
// as §5 observes — multi-valued variables make satisfying-sample
// generation expensive, which is exactly why ADPLL wins.
func (ev *Evaluator) ApproxCount(c *ctable.Condition, samplesPerLevel int, rng *rand.Rand) float64 {
	if value, decided := c.Decided(); decided {
		if value {
			return 1
		}
		return 0
	}
	if samplesPerLevel <= 0 {
		panic(fmt.Sprintf("prob: ApproxCount with %d samples per level", samplesPerLevel))
	}
	s, clauses := newSolver(ev, clone2(c.Clauses))
	p := s.approxCount(clauses, samplesPerLevel, rng)
	s.release()
	return p
}

func clone2(clauses [][]ctable.Expr) [][]ctable.Expr {
	out := make([][]ctable.Expr, len(clauses))
	for i, cl := range clauses {
		out[i] = append([]ctable.Expr(nil), cl...)
	}
	return out
}

// approxComponent is the ApproxThreshold fallback of componentProb: one
// telescoping estimate over a connected component too wide for exact
// counting, seeded from the component's canonical cache key. Seeding from
// the fingerprint — never from a shared, schedule-consumed source — is
// what keeps the estimate a pure function of the component, and thus
// identical at any worker count or cache state.
func (s *solver) approxComponent(comp [][]cexpr, key []byte) float64 {
	samples := s.opt.ApproxSamples
	if samples <= 0 {
		samples = DefaultApproxSamples
	}
	// FNV-1a over the canonical key.
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	rng := rand.New(rand.NewSource(int64(h)))
	s.nApprox++
	return s.approxCount(comp, samples, rng)
}

// approxCount runs one telescoping estimate over the solver's interned
// clauses. The assignments it fixes are reverted on return, so it can
// run mid-evaluation (the ApproxThreshold fallback) without corrupting
// sibling components.
func (s *solver) approxCount(clauses [][]cexpr, samplesPerLevel int, rng *rand.Rand) float64 {
	var fixed []int32
	defer func() {
		for _, v := range fixed {
			s.assign[v] = -1
		}
	}()
	estimate := 1.0
	for {
		residual, value, decided := s.simplify(clauses)
		if decided {
			if value {
				return estimate
			}
			return 0
		}
		// Exact finish when the residual is independent — the cheap exit
		// ADPLL also uses; without it the estimator would sample forever
		// on already-trivial formulas.
		if p, ok := s.directProb(residual); ok {
			return estimate * p
		}

		v := s.pickVar(residual)

		// Estimate P(v = a | φ) from satisfying samples.
		counts := make([]float64, len(s.dists[v]))
		got := 0
		for i := 0; i < samplesPerLevel; i++ {
			assignment, ok := s.sampleSat(residual, rng)
			if !ok {
				continue
			}
			counts[assignment[v]]++
			got++
		}
		if got == 0 {
			// Could not find satisfying samples: treat the region as
			// (nearly) unsatisfiable, matching ApproxCount's behaviour of
			// giving up with a zero estimate.
			return 0
		}

		// Fix v to its most frequent satisfying value and discount the
		// estimate by that value's conditional share.
		best, bestCount := 0, counts[0]
		for a, cnt := range counts[1:] {
			if cnt > bestCount {
				best, bestCount = a+1, cnt
			}
		}
		share := bestCount / float64(got)
		// Weight by the prior of the fixed value: Pr(φ) =
		// Pr(φ ∧ v=a) / P(v=a | φ) and Pr(φ ∧ v=a) = p(a)·Pr(φ | v=a).
		estimate *= s.dists[v][best] / share
		s.assign[v] = int32(best)
		fixed = append(fixed, v)
		clauses = residual
	}
}

// sampleSat draws one satisfying assignment of the residual clauses (over
// the unassigned variables) by sampling from the variable distributions
// and repairing violated clauses with a bounded greedy local search —
// the multi-valued analogue of SampleSat's WalkSat phase. ok is false if
// no satisfying assignment was reached within the repair budget. The
// returned assignment is dense solver scratch indexed by var id, valid
// until the next sampleSat call.
func (s *solver) sampleSat(clauses [][]cexpr, rng *rand.Rand) ([]int32, bool) {
	// Collect the variables of the residual in deterministic (sorted)
	// order: drawing the initial assignment in discovery order would tie
	// the seeded rng's consumption to clause layout rather than variable
	// identity. The seen-set rides the solver's epoch-stamped scratch —
	// this runs under the hot loop's no-map-allocation discipline.
	s.epoch++
	varList := s.satVars[:0]
	for _, cl := range clauses {
		for _, e := range cl {
			if s.seenEp[e.x] != s.epoch {
				s.seenEp[e.x] = s.epoch
				varList = append(varList, e.x)
			}
			if e.y >= 0 && s.seenEp[e.y] != s.epoch {
				s.seenEp[e.y] = s.epoch
				varList = append(varList, e.y)
			}
		}
	}
	s.satVars = varList
	slices.Sort(varList)
	assignment := s.satAssign
	for _, v := range varList {
		assignment[v] = int32(sampleDist(rng, s.dists[v]))
	}

	value := func(v int32) int32 { return assignment[v] }
	holdsUnder := func(e cexpr) bool {
		x := value(e.x)
		switch e.kind {
		case ctable.VarLTConst:
			return x < e.c
		case ctable.VarGTConst:
			return x > e.c
		default:
			return x > value(e.y)
		}
	}
	violated := func() []cexpr {
		for _, cl := range clauses {
			sat := false
			for _, e := range cl {
				if holdsUnder(e) {
					sat = true
					break
				}
			}
			if !sat {
				return cl
			}
		}
		return nil
	}

	const maxFlips = 50
	for flip := 0; flip < maxFlips; flip++ {
		cl := violated()
		if cl == nil {
			return assignment, true
		}
		// Repair: pick a random expression of the violated clause and
		// resample one of its variables toward satisfaction, respecting
		// zero-probability values.
		e := cl[rng.Intn(len(cl))]
		target := e.x
		if e.y >= 0 && rng.Intn(2) == 1 {
			target = e.y
		}
		dist := s.dists[target]
		for tries := 0; tries < 4; tries++ {
			a := int32(sampleDist(rng, dist))
			if a != assignment[target] {
				assignment[target] = a
				break
			}
		}
	}
	if violated() == nil {
		return assignment, true
	}
	return nil, false
}
