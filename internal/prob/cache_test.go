package prob

import (
	"math"
	"math/rand"
	"testing"

	"bayescrowd/internal/ctable"
)

// randClauses builds a random CNF over nVars fresh variables, registering
// their distributions in dists. Mirrors the solver stress generator.
func randClauses(rng *rand.Rand, nVars int, dists Dists) [][]ctable.Expr {
	vars := make([]ctable.Var, nVars)
	for i := range vars {
		vars[i] = v(1000+len(dists)+i, rng.Intn(2))
		dists[vars[i]] = randomDist(rng, 2+rng.Intn(7))
	}
	var clauses [][]ctable.Expr
	for c := 0; c < 3+rng.Intn(8); c++ {
		var clause []ctable.Expr
		for k := 0; k < 1+rng.Intn(3); k++ {
			x := vars[rng.Intn(nVars)]
			switch rng.Intn(3) {
			case 0:
				clause = append(clause, ctable.LTConst(x, rng.Intn(len(dists[x])+1)))
			case 1:
				clause = append(clause, ctable.GTConst(x, rng.Intn(len(dists[x]))))
			default:
				y := vars[rng.Intn(nVars)]
				if y != x {
					clause = append(clause, ctable.GTVar(x, y))
				} else {
					clause = append(clause, ctable.GTConst(x, 0))
				}
			}
		}
		clauses = append(clauses, clause)
	}
	return clauses
}

// TestCacheBitIdentical checks the central design property: cached and
// uncached evaluation return bit-identical probabilities, for Prob and for
// the CondProbsWith probe quartet, because both modes solve branched
// components in the same canonical order and the cache only replaces a
// recomputation with a lookup.
func TestCacheBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		dists := Dists{}
		clauses := randClauses(rng, 6+rng.Intn(8), dists)
		cond := ctable.FromClauses(clauses)

		cached := &Evaluator{Dists: dists, Cache: NewComponentCache(0)}
		plain := &Evaluator{Dists: dists, Opt: Options{NoCache: true}, Cache: cached.Cache}

		// Evaluate through the cached evaluator twice — the second run
		// serves branched components from the cache — and through the
		// NoCache evaluator; all three must agree bit for bit.
		p1 := cached.Prob(cond.Clone())
		p2 := cached.Prob(cond.Clone())
		p0 := plain.Prob(cond.Clone())
		if p1 != p0 || p2 != p0 {
			t.Fatalf("trial %d: Prob cached %v / rerun %v vs uncached %v", trial, p1, p2, p0)
		}

		for _, cl := range cond.Clauses {
			for _, e := range cl {
				ae, aPhi, aT, aF := cached.CondProbsWith(cond, e, p1)
				be, bPhi, bT, bF := plain.CondProbsWith(cond, e, p0)
				if ae != be || aPhi != bPhi || aT != bT || aF != bF {
					t.Fatalf("trial %d: CondProbsWith(%v) cached (%v,%v,%v,%v) vs uncached (%v,%v,%v,%v)",
						trial, e, ae, aPhi, aT, aF, be, bPhi, bT, bF)
				}
			}
		}
	}
}

// TestCondScanMatchesCondProbsWith checks that the component-scan probe
// path agrees with the full-formula probe path within 1e-12 for every
// expression of the condition, cache on and off. The conditionals pTrue
// and pFalse are compared through the stable joints Pr(φ∧e) = pe·pTrue
// and Pr(φ∧¬e) = (1−pe)·pFalse: when pe sits within an ulp of 0 or 1 the
// corresponding ratio divides float noise by float noise, and both paths
// return a legitimate-but-arbitrary clamp — the utility formulas multiply
// the same weight straight back, so the joints are what must agree.
func TestCondScanMatchesCondProbsWith(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		dists := Dists{}
		clauses := randClauses(rng, 6+rng.Intn(8), dists)
		cond := ctable.FromClauses(clauses)

		for _, ev := range []*Evaluator{
			{Dists: dists, Cache: NewComponentCache(0)},
			{Dists: dists, Opt: Options{NoCache: true}},
		} {
			pPhi := ev.Prob(cond.Clone())
			scan := ev.NewCondScan(cond, pPhi)
			planned := ev.NewCondScan(cond, pPhi)
			planned.PlanSweeps(cond.Exprs())
			for _, cl := range cond.Clauses {
				for _, e := range cl {
					for _, cs := range []*CondScan{scan, planned} {
						ae, aPhi, aT, aF := cs.CondProbs(e)
						be, bPhi, bT, bF := ev.CondProbsWith(cond, e, pPhi)
						drifts := []float64{
							ae - be, aPhi - bPhi,
							ae*aT - be*bT, (1-ae)*aF - (1-be)*bF,
						}
						for i, d := range drifts {
							if math.Abs(d) > 1e-12 {
								t.Fatalf("trial %d (NoCache=%v, planned=%v): scan vs full for %v: quantity %d drifts %v",
									trial, ev.Opt.NoCache, cs == planned, e, i, d)
							}
						}
					}
				}
			}
		}
	}
}

// twoComponentCondition builds a condition with exactly two branched
// connected components (each has a variable occurring in two clauses, so
// the direct independence rule cannot decide it and the solver must
// branch — and therefore consult the cache).
func twoComponentCondition() (*ctable.Condition, Dists, ctable.Var, ctable.Var) {
	x1, y1 := v(0, 0), v(1, 0)
	x2, y2 := v(2, 0), v(3, 0)
	cond := ctable.FromClauses([][]ctable.Expr{
		{ctable.GTConst(x1, 1)},
		{ctable.GTVar(x1, y1)},
		{ctable.GTConst(x2, 2)},
		{ctable.GTVar(x2, y2)},
	})
	dists := Dists{x1: uniform(5), y1: uniform(5), x2: uniform(6), y2: uniform(6)}
	return cond, dists, x1, x2
}

// TestInvalidatePrecision checks that Invalidate kills exactly the
// components mentioning the bumped variable: after invalidating one of two
// cached components, re-evaluation hits the untouched component and
// recomputes only the stale one — with the correct value under the new
// distribution.
func TestInvalidatePrecision(t *testing.T) {
	cond, dists, x1, _ := twoComponentCondition()
	cache := NewComponentCache(0)
	ev := &Evaluator{Dists: dists, Cache: cache}

	ev.Prob(cond.Clone())
	s := cache.Stats()
	if s.Misses != 2 || s.Hits != 0 {
		t.Fatalf("first evaluation: stats %+v, want 2 misses (one per branched component)", s)
	}

	ev.Prob(cond.Clone())
	s = cache.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("second evaluation: stats %+v, want 2 hits", s)
	}

	// A crowd answer narrows x1's interval: renormalise its distribution
	// and invalidate. Only the x1 component may be recomputed.
	dists[x1] = []float64{0, 0.25, 0.25, 0.25, 0.25}
	cache.Invalidate(x1)

	got := ev.Prob(cond.Clone())
	s = cache.Stats()
	if s.Hits != 3 || s.Misses != 3 {
		t.Fatalf("post-invalidation evaluation: stats %+v, want exactly one new hit and one new miss", s)
	}
	if s.Invalidated != 1 {
		t.Fatalf("Invalidated = %d, want 1", s.Invalidated)
	}

	fresh := NewEvaluator(dists)
	if want := fresh.Prob(cond.Clone()); got != want {
		t.Fatalf("post-invalidation Prob = %v, want %v (fresh evaluation)", got, want)
	}

	// The recomputed entry must be live again: one more evaluation is all
	// hits.
	ev.Prob(cond.Clone())
	if s = cache.Stats(); s.Hits != 5 || s.Misses != 3 {
		t.Fatalf("re-cached evaluation: stats %+v, want two new hits", s)
	}
}

// TestStaleEntryServedNever checks the dangerous direction explicitly: a
// lookup after Invalidate must not return the pre-invalidation value even
// though the fingerprint is unchanged.
func TestStaleEntryServedNever(t *testing.T) {
	cond, dists, x1, x2 := twoComponentCondition()
	cache := NewComponentCache(0)
	ev := &Evaluator{Dists: dists, Cache: cache}

	before := ev.Prob(cond.Clone())
	dists[x1] = []float64{0, 0, 0, 0.5, 0.5}
	dists[x2] = []float64{0, 0, 0, 0, 0.5, 0.5}
	cache.Invalidate(x1, x2)
	after := ev.Prob(cond.Clone())
	if after == before {
		t.Fatalf("Prob unchanged (%v) after renormalising both components", after)
	}
	if want := NewEvaluator(dists).Prob(cond.Clone()); after != want {
		t.Fatalf("post-invalidation Prob = %v, want %v", after, want)
	}
}

// TestCacheEviction checks the size bound: a capped cache never exceeds
// its per-shard budget and reports evictions once distinct components
// outnumber the cap.
func TestCacheEviction(t *testing.T) {
	cache := NewComponentCache(32)
	dists := Dists{}
	ev := &Evaluator{Dists: dists, Cache: cache}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		cond := ctable.FromClauses(randClauses(rng, 4, dists))
		ev.Prob(cond)
	}
	if n := cache.Len(); n > 32 {
		t.Fatalf("cache holds %d entries, cap 32", n)
	}
	if s := cache.Stats(); s.Evicted == 0 {
		t.Fatalf("no evictions after 300 distinct conditions: %+v", s)
	}
}

// TestCacheConcurrentProbAll exercises shared-cache lookups and stores
// from a parallel fan-out (meaningful under -race) and checks the fanned
// results match a sequential NoCache evaluation exactly.
func TestCacheConcurrentProbAll(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dists := Dists{}
	conds := make([]*ctable.Condition, 60)
	for i := range conds {
		conds[i] = ctable.FromClauses(randClauses(rng, 5+rng.Intn(6), dists))
	}
	plain := &Evaluator{Dists: dists, Opt: Options{NoCache: true}}
	want := plain.ProbAll(conds, 1)

	cached := &Evaluator{Dists: dists, Cache: NewComponentCache(0)}
	for round := 0; round < 3; round++ {
		got := cached.ProbAll(conds, 8)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d cond %d: cached %v vs uncached %v", round, i, got[i], want[i])
			}
		}
	}
	if s := cached.Cache.Stats(); s.Hits == 0 {
		t.Fatalf("no cache hits across repeated fan-outs: %+v", s)
	}
}
