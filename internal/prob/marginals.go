package prob

import "bayescrowd/internal/ctable"

// All-variable marginal sweeps. The UBS/HHS candidate scan needs, for a
// connected component and every variable x it holds, the joint vector
//
//	m_x[a] = Pr(component ∧ x=a)
//
// because each constant-comparison candidate on x is then a partial sum
// of m_x — no model counting per candidate at all. Computing the vectors
// one variable at a time would cost a full solve per variable; this file
// computes all of them in a single ADPLL pass instead, by propagating
// per-variable vectors up the same recursion adpll runs: branch nodes mix
// child vectors weighted by the branch distribution, decomposition nodes
// scale each component's vectors by the product of its siblings' values,
// and direct-rule leaves (every variable occurring exactly once) yield
// their vectors in closed form. The pass visits exactly the subproblems
// adpll would and performs the same value arithmetic in the same order,
// so its scalar result is bit-identical to the plain solve; the vector
// bookkeeping rides along at a small constant factor.
//
// Only variables with s.margNeed set get vectors — the scan planner marks
// the variables that actually carry candidates, so var-vs-var-only
// variables don't pay for bookkeeping.

// marginalSet maps interned variable ids to their joint vectors over the
// subformula the set was computed for. A needed variable absent from the
// set was eliminated by simplification before any branch constrained it:
// its joint is the independent product value·p(a), filled in by the
// caller (branch merge or scan planner).
type marginalSet map[int32][]float64

// allMarginals returns Pr(clauses) under the current assignment together
// with the joint vectors of every needed free variable. The scalar result
// mirrors adpll's recursion step for step.
func (s *solver) allMarginals(clauses [][]cexpr) (float64, marginalSet) {
	residual, value, decided := s.simplify(clauses)
	if decided {
		if value {
			return 1, nil
		}
		return 0, nil
	}
	if p, ok := s.directProb(residual); ok {
		return p, s.leafMarginals(residual)
	}
	if s.opt.NoComponents {
		return s.branchMarginals(residual, s.pickVar(residual))
	}

	comps := s.components(residual)
	if len(comps) == 1 {
		return s.branchMarginals(residual, s.pickVar(residual))
	}
	// Mirror adpll's decomposition loop, including the early return that
	// skips the remaining components once the product hits zero (their
	// vectors would all be zero anyway — the nil set says exactly that).
	p := 1.0
	vals := make([]float64, len(comps))
	sets := make([]marginalSet, len(comps))
	for i, comp := range comps {
		if direct, ok := s.directProb(comp); ok {
			vals[i], sets[i] = direct, s.leafMarginals(comp)
			p *= direct
			continue
		}
		vals[i], sets[i] = s.branchMarginals(comp, s.pickVar(comp))
		p *= vals[i]
		if p == 0 {
			return 0, nil
		}
	}
	// Each component's vectors are scaled by the product of the sibling
	// values (prefix × suffix, no division, zero-safe).
	suf := 1.0
	sufs := make([]float64, len(comps))
	for i := len(comps) - 1; i >= 0; i-- {
		sufs[i] = suf
		suf *= vals[i]
	}
	//lint:ignore hotalloc marginal result set handed to the caller, who owns and keeps it
	out := marginalSet{}
	pre := 1.0
	for i, set := range sets {
		outer := pre * sufs[i]
		for x, vec := range set {
			for b := range vec {
				vec[b] *= outer
			}
			out[x] = vec
		}
		pre *= vals[i]
	}
	return p, out
}

// branchMarginals enumerates the branch variable's values like branch,
// mixing the children's vectors weighted by the branch distribution. A
// needed variable a child eliminated before branching on it contributes
// its independent product instead.
func (s *solver) branchMarginals(clauses [][]cexpr, v int32) (float64, marginalSet) {
	// Collect the needed free variables up front: children report vectors
	// for the variables they still see, and the merge must fill defaults
	// for the ones simplification removed — which requires knowing the
	// full set before descending (the epoch marks below are clobbered by
	// the recursion).
	s.epoch++
	var need []int32
	note := func(x int32) {
		if x != v && s.margNeed[x] && s.seenEp[x] != s.epoch {
			s.seenEp[x] = s.epoch
			need = append(need, x)
		}
	}
	for _, cl := range clauses {
		for _, e := range cl {
			note(e.x)
			if e.y >= 0 {
				note(e.y)
			}
		}
	}

	dv := s.dists[v]
	var mv []float64
	if s.margNeed[v] {
		mv = make([]float64, len(dv))
	}
	//lint:ignore hotalloc marginal result set handed to the caller, who owns and keeps it
	out := marginalSet{}
	total := 0.0
	for a, pa := range dv {
		if pa == 0 {
			continue
		}
		s.assign[v] = int32(a)
		cv, cm := s.allMarginals(clauses)
		total += pa * cv
		if mv != nil {
			mv[a] = pa * cv
		}
		for _, x := range need {
			vec := out[x]
			if vec == nil {
				vec = make([]float64, len(s.dists[x]))
				out[x] = vec
			}
			if cvec, ok := cm[x]; ok {
				for b, w := range cvec {
					vec[b] += pa * w
				}
			} else if cv != 0 {
				for b, pb := range s.dists[x] {
					vec[b] += pa * cv * pb
				}
			}
		}
	}
	s.assign[v] = -1
	if mv != nil {
		out[v] = mv
	}
	return total, out
}

// leafMarginals yields the joint vectors of a direct-rule clause set —
// pairwise variable-disjoint clauses, every variable occurring exactly
// once — in closed form: fixing x=a resolves x's literal (for a var-vs-var
// literal, to the conditional CDF of the other side), the rest of its
// clause keeps the exclusion product of the other literals, and the other
// clauses contribute their unconditioned probabilities via a prefix ×
// suffix outer product.
func (s *solver) leafMarginals(clauses [][]cexpr) marginalSet {
	n := len(clauses)
	ps := make([]float64, n)
	anyNeed := false
	for i, cl := range clauses {
		q := 1.0
		for _, e := range cl {
			q *= 1 - s.exprProb(e)
			anyNeed = anyNeed || s.margNeed[e.x] || (e.y >= 0 && s.margNeed[e.y])
		}
		ps[i] = 1 - q
	}
	if !anyNeed {
		return nil
	}
	sufs := make([]float64, n+1)
	sufs[n] = 1
	for i := n - 1; i >= 0; i-- {
		sufs[i] = sufs[i+1] * ps[i]
	}

	//lint:ignore hotalloc marginal result set handed to the caller, who owns and keeps it
	out := marginalSet{}
	pre := 1.0
	var qc []float64 // per-literal complement probabilities, reused
	for i, cl := range clauses {
		outer := pre * sufs[i+1]
		pre *= ps[i]

		qc = qc[:0]
		for _, e := range cl {
			qc = append(qc, 1-s.exprProb(e))
		}
		// qx(k): exclusion product over the clause's other literals.
		qx := func(k int) float64 {
			q := 1.0
			for j, v := range qc {
				if j != k {
					q *= v
				}
			}
			return q
		}
		for k, e := range cl {
			if s.margNeed[e.x] {
				dx := s.dists[e.x]
				vec := make([]float64, len(dx))
				q := qx(k)
				switch {
				case e.y < 0:
					for b, pb := range dx {
						if constLitSat(e, b) {
							vec[b] = outer * pb
						} else {
							vec[b] = outer * pb * (1 - q)
						}
					}
				default:
					// x > y, conditioned on x=b: the literal holds with
					// probability Pr(y < b), the running CDF of y.
					dy := s.dists[e.y]
					cdf := 0.0
					for b, pb := range dx {
						if b-1 >= 0 && b-1 < len(dy) {
							cdf += dy[b-1]
						}
						vec[b] = outer * pb * (1 - (1-cdf)*q)
					}
				}
				out[e.x] = vec
			}
			if e.y >= 0 && s.margNeed[e.y] {
				// x > y, conditioned on y=c: the literal holds with
				// probability Pr(x > c), the tail mass of x above c.
				dx := s.dists[e.x]
				dy := s.dists[e.y]
				vec := make([]float64, len(dy))
				q := qx(k)
				tail := 1.0
				for c, pc := range dy {
					if c < len(dx) {
						tail -= dx[c]
					}
					vec[c] = outer * pc * (1 - (1-tail)*q)
				}
				out[e.y] = vec
			}
		}
	}
	return out
}

// constLitSat reports whether a constant-comparison literal holds at
// value b of its variable.
func constLitSat(e cexpr, b int) bool {
	if e.kind == ctable.VarLTConst {
		return int32(b) < e.c
	}
	return int32(b) > e.c
}
