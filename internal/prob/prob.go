// Package prob computes the satisfaction probability Pr(φ(o)) of c-table
// conditions — the possibility of an object being a skyline answer (paper
// §5).
//
// The problem is weighted model counting over multi-valued variables, at
// least as hard as #SAT. Three solvers are provided:
//
//   - ADPLL (Algorithm 3): the paper's adaptive DPLL — branch on the most
//     frequent variable, and stop branching as soon as the residual
//     conjuncts are independent, where the probability follows directly
//     from the independent-conjunction rule Pr(p∧q) = Pr(p)·Pr(q) and the
//     general-disjunction rule Pr(p∨q) = 1 − Pr(¬p∧¬q). This
//     implementation generalises the independence test to connected
//     components of clauses (clauses sharing no variable are independent
//     groups), a standard #SAT device; an option disables it for the
//     ablation benchmark.
//
//   - Naive: full enumeration of every variable-value combination, the
//     brute-force comparator of Figure 3.
//
//   - MonteCarlo: a sampling estimator standing in for the paper's
//     generalised weighted ApproxCount, which §5 reports losing to ADPLL
//     on both axes.
//
// Variables carry independent discrete distributions (their Bayesian-
// network posteriors, possibly renormalised by crowd answers); following
// the paper, the ADPLL recursion multiplies the branch weights p(v_a)
// independently.
package prob

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/obs"
	"bayescrowd/internal/parallel"
)

// Dists maps every variable appearing in the conditions under evaluation
// to its probability distribution over the attribute's codes. Slices must
// be normalised (they are renormalised posteriors when crowd answers have
// narrowed a variable's interval: impossible values carry probability 0).
type Dists map[ctable.Var][]float64

// Options tunes the ADPLL solver; the zero value is the recommended
// configuration.
type Options struct {
	// NoComponents disables connected-component decomposition, leaving
	// only the paper's literal "all conjuncts pairwise independent" test.
	// Used by the ablation benchmark.
	NoComponents bool
	// BranchFirstVar branches on the first variable encountered instead
	// of the most frequent one. Used by the ablation benchmark.
	BranchFirstVar bool
	// NoCache disables the component memoization cache even when
	// Evaluator.Cache is set. Used by the cache ablation benchmark.
	// Cached and uncached evaluation are bit-identical — both solve
	// branched components in the same canonical order; the cache only
	// decides whether a component's probability is looked up or
	// recomputed.
	NoCache bool
	// LegacyEngine solves branched components with the original
	// clause-rewriting recursion instead of the compiled bitset
	// clause-state engine (state.go). The two engines are bit-identical;
	// the flag exists for the equivalence tests that prove it and for the
	// benchmark that measures the speedup within one process.
	LegacyEngine bool
	// ApproxThreshold, when > 0, caps the exact solver: a connected
	// component with more than ApproxThreshold distinct variables is
	// estimated by the generalised weighted ApproxCount sampler instead
	// of being counted exactly. The estimator is seeded from the
	// component's canonical fingerprint, so both the fallback decision
	// and the estimate are pure functions of the component — identical
	// at any worker count, schedule, and cache state. See
	// Evaluator.ApproxComponents for the documented error bound. Zero
	// (the default) means always exact. The threshold is per component,
	// so it has no effect under NoComponents.
	ApproxThreshold int
	// ApproxSamples is the per-variable sampling effort of the
	// ApproxThreshold fallback; <= 0 means DefaultApproxSamples.
	ApproxSamples int
}

// DefaultApproxSamples is the samples-per-level effort of the
// ApproxThreshold fallback when Options.ApproxSamples is unset.
const DefaultApproxSamples = 200

// Evaluator computes condition probabilities against a fixed set of
// variable distributions.
//
// Concurrency: the evaluator is safe for concurrent use by multiple
// goroutines provided none of them mutates Dists (or the distribution
// slices it holds) while evaluations are in flight — every method only
// reads the map, and solver scratch is per-call (pooled, never shared
// between in-flight evaluations). The framework is single-writer: crowd
// answers renormalise distributions strictly between parallel fan-outs,
// and the pool join inside ProbAll / parallel.For publishes those writes
// to the workers of the next fan-out (a happens-before edge). Callers
// adding their own concurrency must preserve that discipline. The
// component cache follows the same contract: lookups and stores are safe
// during fan-outs, ComponentCache.Invalidate belongs in the single-writer
// gaps, right next to the distribution writes it tracks.
type Evaluator struct {
	Dists Dists
	Opt   Options
	// Cache, when non-nil, memoizes connected-component probabilities
	// across evaluations (see ComponentCache). Whoever mutates Dists must
	// call Cache.Invalidate for every renormalised variable, or cached
	// components will serve probabilities computed under the old
	// distribution.
	Cache *ComponentCache
	// Obs, when non-nil, receives the evaluator's trace events (fan-out
	// and sweep-plan sizes). It is set by the single writer that owns the
	// evaluator, and events are emitted only from sequential entry points
	// (ProbAll's dispatch, CondScan.PlanSweeps) — never from inside a
	// fan-out — so the trace stays deterministic at any worker count.
	Obs *obs.Recorder
	// approxN counts connected components resolved by the ApproxThreshold
	// fallback. Atomic because evaluations run inside parallel fan-outs.
	approxN atomic.Int64
}

// ApproxComponents returns how many connected-component solves fell back
// to the approximate estimator (Options.ApproxThreshold) since the
// evaluator was created. The probability values themselves are
// deterministic (fingerprint-seeded); the invocation count is not when a
// component cache is shared across workers — like cache hit statistics,
// it depends on which worker reaches a component first — so treat it as
// an observability figure, not a traced quantity.
//
// Error bound: the estimator is only asymptotically unbiased and carries
// no worst-case guarantee. Empirically, at the DefaultApproxSamples
// effort, the absolute error on the seeded benchmark components stays
// within 0.05 of the exact probability (asserted by the approx fallback
// tests); treat crossings of the 0.5 answer threshold by less than that
// margin as undecided when ApproxThreshold is enabled.
func (ev *Evaluator) ApproxComponents() int64 { return ev.approxN.Load() }

// NewEvaluator returns an evaluator over the given distributions with
// default options.
func NewEvaluator(dists Dists) *Evaluator { return &Evaluator{Dists: dists} }

func (ev *Evaluator) dist(v ctable.Var) []float64 {
	d, ok := ev.Dists[v]
	if !ok {
		panic(fmt.Sprintf("prob: no distribution for %v", v))
	}
	return d
}

// ExprProb returns Pr(e) under the variable distributions: the mass of
// values satisfying the inequality (independent variables for the
// var-vs-var case).
func (ev *Evaluator) ExprProb(e ctable.Expr) float64 {
	switch e.Kind {
	case ctable.VarLTConst:
		d := ev.dist(e.X)
		p := 0.0
		for v := 0; v < len(d) && v < e.C; v++ {
			p += d[v]
		}
		return p
	case ctable.VarGTConst:
		d := ev.dist(e.X)
		p := 0.0
		// Hoist the v >= 0 clamp out of the loop: a negative constant
		// just starts the scan at 0.
		start := e.C + 1
		if start < 0 {
			start = 0
		}
		for v := start; v < len(d); v++ {
			p += d[v]
		}
		return p
	case ctable.VarGTVar:
		dx, dy := ev.dist(e.X), ev.dist(e.Y)
		// Pr(X > Y) = Σ_a dx[a] · CDF_Y(a-1).
		p, cdf := 0.0, 0.0
		for a := 0; a < len(dx); a++ {
			if a-1 >= 0 && a-1 < len(dy) {
				cdf += dy[a-1]
			}
			p += dx[a] * cdf
		}
		return p
	default:
		panic(fmt.Sprintf("prob: unknown expression kind %d", e.Kind))
	}
}

// Prob returns Pr(φ) via the ADPLL algorithm. Decided conditions return 0
// or 1 directly.
func (ev *Evaluator) Prob(c *ctable.Condition) float64 {
	if value, decided := c.Decided(); decided {
		if value {
			return 1
		}
		return 0
	}
	return ev.probClauses(c.Clauses)
}

// probClauses runs ADPLL over a raw clause set, memoizing connected
// components when the evaluator carries a cache.
func (ev *Evaluator) probClauses(clauses [][]ctable.Expr) float64 {
	s, interned := newSolver(ev, clauses)
	p := s.adpllTop(interned, ev.activeCache())
	ev.drainApprox(s)
	s.release()
	return p
}

// drainApprox moves the solver's approximate-fallback count onto the
// evaluator's atomic counter before the solver returns to the pool.
func (ev *Evaluator) drainApprox(s *solver) {
	if s.nApprox > 0 {
		ev.approxN.Add(int64(s.nApprox))
		s.nApprox = 0
	}
}

// probGroups returns the probability of the conjunction of several clause
// groups plus an optional augmenting unit clause [*unit], without ever
// materialising a combined clause buffer (the unit clause lives in solver
// scratch). It is the engine behind CondProbsWith and the CondScan's
// partial re-solves.
func (ev *Evaluator) probGroups(groups [][][]ctable.Expr, unit *ctable.Expr) float64 {
	s, interned := newSolverGroups(ev, groups, unit)
	p := s.adpllTop(interned, ev.activeCache())
	ev.drainApprox(s)
	s.release()
	return p
}

// activeCache returns the cache adpllTop should consult: nil when caching
// is switched off (Options.NoCache) or structurally meaningless
// (Options.NoComponents — without component decomposition there is
// nothing to memoize).
func (ev *Evaluator) activeCache() *ComponentCache {
	if ev.Opt.NoCache || ev.Opt.NoComponents {
		return nil
	}
	return ev.Cache
}

// ProbAll computes Pr(φ) for every condition, fanning the independent
// evaluations across at most workers goroutines (<= 0 means one per CPU,
// 1 runs inline sequentially). out[i] corresponds to conds[i], so the
// merge order — and therefore every returned float — is bit-identical at
// any worker count: each condition is evaluated wholly by one worker and
// no sum is reassociated across workers.
func (ev *Evaluator) ProbAll(conds []*ctable.Condition, workers int) []float64 {
	// Emitted from the sequential dispatch, before the fan-out — the size
	// of the fan-out is deterministic even though its schedule is not.
	ev.Obs.Emit(obs.Event{Kind: obs.KindProbFanout, N: len(conds)})
	out := make([]float64, len(conds))
	parallel.For(parallel.Workers(workers), len(conds), func(_, i int) {
		out[i] = ev.Prob(conds[i])
	})
	return out
}

// Naive returns Pr(φ) by enumerating every combination of the condition's
// variables — the brute-force comparator of Figure 3, with complexity
// N^|vars|. Use StateSpace to bound the cost before calling.
func (ev *Evaluator) Naive(c *ctable.Condition) float64 {
	if value, decided := c.Decided(); decided {
		if value {
			return 1
		}
		return 0
	}
	vars := c.Vars()
	assign := map[ctable.Var]int{}
	var rec func(i int, weight float64) float64
	rec = func(i int, weight float64) float64 {
		if i == len(vars) {
			value, decided := c.EvalAssign(assign)
			if !decided {
				panic("prob: condition undecided under full assignment")
			}
			if value {
				return weight
			}
			return 0
		}
		v := vars[i]
		total := 0.0
		for a, pa := range ev.dist(v) {
			if pa == 0 {
				continue
			}
			assign[v] = a
			total += rec(i+1, weight*pa)
		}
		delete(assign, v)
		return total
	}
	return rec(0, 1)
}

// StateSpace returns the number of variable-value combinations Naive would
// enumerate for the condition (product of domain sizes), as a float64 to
// avoid overflow.
func (ev *Evaluator) StateSpace(c *ctable.Condition) float64 {
	if _, decided := c.Decided(); decided {
		return 0
	}
	space := 1.0
	for _, v := range c.Vars() {
		space *= float64(len(ev.dist(v)))
	}
	return space
}

// MonteCarlo estimates Pr(φ) by sampling each variable from its
// distribution and reporting the fraction of satisfied draws. It stands in
// for the paper's generalised weighted ApproxCount comparator (§5).
func (ev *Evaluator) MonteCarlo(c *ctable.Condition, samples int, rng *rand.Rand) float64 {
	if value, decided := c.Decided(); decided {
		if value {
			return 1
		}
		return 0
	}
	if samples <= 0 {
		panic(fmt.Sprintf("prob: MonteCarlo with %d samples", samples))
	}
	vars := c.Vars()
	assign := make(map[ctable.Var]int, len(vars))
	hits := 0
	for s := 0; s < samples; s++ {
		for _, v := range vars {
			assign[v] = sampleDist(rng, ev.dist(v))
		}
		if value, _ := c.EvalAssign(assign); value {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

func sampleDist(rng *rand.Rand, dist []float64) int {
	u := rng.Float64()
	acc := 0.0
	for v, p := range dist {
		acc += p
		if u < acc {
			return v
		}
	}
	return len(dist) - 1
}

// CondProbs returns the quantities the marginal-utility function (Eq. 4-5)
// needs for expression e of condition c:
//
//	pe      = Pr(e)
//	pPhi    = Pr(φ)
//	pTrue   = Pr(φ | e true)
//	pFalse  = Pr(φ | e false)
//
// computed exactly via Pr(φ∧e) with one extra ADPLL run over the condition
// augmented by the unit clause [e] (negation-free conditioning:
// Pr(φ|¬e) = (Pr(φ) − Pr(φ∧e)) / (1 − Pr(e))). Degenerate conditionals
// (Pr(e) ∈ {0,1}) return pPhi for the impossible branch.
func (ev *Evaluator) CondProbs(c *ctable.Condition, e ctable.Expr) (pe, pPhi, pTrue, pFalse float64) {
	return ev.CondProbsWith(c, e, ev.Prob(c))
}

// CondProbsWith is CondProbs with Pr(φ) supplied by the caller, saving one
// model-counting run when the same condition is probed for many
// expressions (the UBS/HHS inner loop).
func (ev *Evaluator) CondProbsWith(c *ctable.Condition, e ctable.Expr, pPhiKnown float64) (pe, pPhi, pTrue, pFalse float64) {
	pe = ev.ExprProb(e)
	pPhi = pPhiKnown

	// The unit clause rides in solver scratch (newSolverGroups), so no
	// augmented clause buffer is allocated per probe.
	pBoth := ev.probGroups([][][]ctable.Expr{c.Clauses}, &e)

	if pe > 0 {
		pTrue = clampProb(pBoth / pe)
	} else {
		pTrue = pPhi
	}
	if pe < 1 {
		pFalse = clampProb((pPhi - pBoth) / (1 - pe))
	} else {
		pFalse = pPhi
	}
	return pe, pPhi, pTrue, pFalse
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
