package prob

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/ctable"
)

// The compiled bitset clause-state engine must be indistinguishable from
// the legacy clause-rewriting recursion — not approximately: the seed
// behaviour is the oracle, and every float must match bit for bit. These
// tests run the same evaluations under both Options.LegacyEngine settings
// and compare with Float64bits.

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestStateEngineBitIdenticalRandom sweeps seeded random CNFs.
func TestStateEngineBitIdenticalRandom(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cond, dists := randomCondition(rng)
		legacy := &Evaluator{Dists: dists, Opt: Options{LegacyEngine: true}}
		state := &Evaluator{Dists: dists}
		lp, sp := legacy.Prob(cond), state.Prob(cond)
		if !sameBits(lp, sp) {
			t.Fatalf("seed %d: legacy %v != state %v (condition %s)", seed, lp, sp, cond)
		}
	}
}

// TestStateEngineBitIdenticalNBA compares whole NBA-shaped workloads:
// every undecided condition, with and without the component cache, at
// several worker counts.
func TestStateEngineBitIdenticalNBA(t *testing.T) {
	conds, dists := nbaConditions(250, 0.2, 0.1, 7)
	if len(conds) == 0 {
		t.Fatal("no undecided conditions generated")
	}
	legacy := &Evaluator{Dists: dists, Opt: Options{LegacyEngine: true}}
	want := legacy.ProbAll(conds, 1)
	for _, cached := range []bool{false, true} {
		for _, workers := range []int{1, 3, 8} {
			ev := &Evaluator{Dists: dists}
			if cached {
				ev.Cache = NewComponentCache(DefaultCacheSize)
			}
			if got := ev.ProbAll(conds, workers); !reflect.DeepEqual(got, want) {
				t.Fatalf("cached=%v workers=%d: state engine differs from legacy", cached, workers)
			}
		}
	}
}

// TestStateEngineBitIdenticalCondProbs pins the UBS/HHS probe path: the
// unit-clause augmented re-solves of CondProbsWith and the component-scan
// probes must match the legacy engine exactly, expression by expression.
func TestStateEngineBitIdenticalCondProbs(t *testing.T) {
	conds, dists := nbaConditions(150, 0.25, 0.1, 5)
	legacy := &Evaluator{Dists: dists, Opt: Options{LegacyEngine: true}}
	state := &Evaluator{Dists: dists, Cache: NewComponentCache(DefaultCacheSize)}
	checked := 0
	for _, c := range conds {
		pLegacy, pState := legacy.Prob(c), state.Prob(c)
		if !sameBits(pLegacy, pState) {
			t.Fatalf("Pr(φ) differs: %v vs %v", pLegacy, pState)
		}
		scan := state.NewCondScan(c, pState)
		lscan := legacy.NewCondScan(c, pLegacy)
		exprs := c.Exprs()
		// Sweeps planned on both scans: swept candidates are priced by
		// partial sums, an intentionally different (cheaper) arithmetic
		// than the unit-clause re-solve, so the comparison must hold the
		// pricing path fixed while varying the engine.
		scan.PlanSweeps(exprs)
		lscan.PlanSweeps(exprs)
		for _, e := range exprs {
			le1, _, lt1, lf1 := legacy.CondProbsWith(c, e, pLegacy)
			se1, _, st1, sf1 := state.CondProbsWith(c, e, pState)
			if !sameBits(le1, se1) || !sameBits(lt1, st1) || !sameBits(lf1, sf1) {
				t.Fatalf("CondProbsWith differs for %v: (%v %v %v) vs (%v %v %v)",
					e, le1, lt1, lf1, se1, st1, sf1)
			}
			ge, gp, gt, gf := scan.CondProbs(e)
			we, wp, wt, wf := lscan.CondProbs(e)
			if !sameBits(ge, we) || !sameBits(gp, wp) || !sameBits(gt, wt) || !sameBits(gf, wf) {
				t.Fatalf("CondScan.CondProbs differs for %v", e)
			}
			checked++
			if checked >= 400 {
				return
			}
		}
	}
}

// TestStateEngineAblationModes covers the ablation options: the
// BranchFirstVar branching rule runs through the state engine's
// first-variable path, and NoComponents (which bypasses component
// decomposition entirely) must stay consistent between engine settings.
func TestStateEngineAblationModes(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		cond, dists := randomCondition(rng)
		for _, opt := range []Options{
			{BranchFirstVar: true},
			{NoComponents: true},
			{NoComponents: true, BranchFirstVar: true},
		} {
			optLegacy := opt
			optLegacy.LegacyEngine = true
			legacy := &Evaluator{Dists: dists, Opt: optLegacy}
			state := &Evaluator{Dists: dists, Opt: opt}
			lp, sp := legacy.Prob(cond), state.Prob(cond)
			if !sameBits(lp, sp) {
				t.Fatalf("seed %d opt %+v: legacy %v != state %v", seed, opt, lp, sp)
			}
		}
	}
}

// TestStateEngineDeepChain exercises deep recursion and the undo trail:
// a long var-vs-var chain forces branching depth proportional to the
// chain length, with every literal decided and revived many times.
func TestStateEngineDeepChain(t *testing.T) {
	const n = 12
	vars := make([]ctable.Var, n)
	dists := Dists{}
	rng := rand.New(rand.NewSource(3))
	for i := range vars {
		vars[i] = v(i, 0)
		dists[vars[i]] = randomDist(rng, 4)
	}
	var clauses [][]ctable.Expr
	for i := 0; i+1 < n; i++ {
		clauses = append(clauses, []ctable.Expr{ctable.GTVar(vars[i], vars[i+1])})
	}
	// A second, overlapping chain ensures shared variables across clauses.
	for i := 0; i+2 < n; i += 2 {
		clauses = append(clauses, []ctable.Expr{
			ctable.GTVar(vars[i], vars[i+2]),
			ctable.LTConst(vars[i+1], 3),
		})
	}
	cond := ctable.FromClauses(clauses)
	legacy := &Evaluator{Dists: dists, Opt: Options{LegacyEngine: true}}
	state := &Evaluator{Dists: dists}
	lp, sp := legacy.Prob(cond), state.Prob(cond)
	if !sameBits(lp, sp) {
		t.Fatalf("deep chain: legacy %v != state %v", lp, sp)
	}
	if naive := legacy.Naive(cond); math.Abs(naive-sp) > 1e-9 {
		t.Fatalf("state %v deviates from naive %v", sp, naive)
	}
}
