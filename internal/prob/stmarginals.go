package prob

import "bayescrowd/internal/ctable"

// All-variable marginal sweeps on the compiled clause-state engine
// (state.go). This is marginals.go's recursion — branch nodes mix child
// vectors, decomposition nodes scale by sibling values, direct-rule
// leaves yield vectors in closed form — run over the literal arena
// instead of per-node rewritten clause copies. Every scalar step reuses
// the proven stDirectProb/stComponents/stPickVar mirrors and every
// vector step performs the legacy pass's arithmetic on the same
// effective literal forms in the same order, so both results are
// bit-identical to the legacy pass (state_equiv_test.go pins the
// CondProbs path end to end).

// marginals is the engine dispatch for the all-variable sweep pass: the
// legacy clause-rewriting recursion under Options.LegacyEngine, the
// compiled state engine otherwise. Entered only on a fresh solver (empty
// assignment), like adpllTop.
func (s *solver) marginals(interned [][]cexpr) (float64, marginalSet) {
	if s.opt.LegacyEngine {
		return s.allMarginals(interned)
	}
	s.stCompile(interned)
	s.stTrail = s.stTrail[:0]
	s.stIdx = s.stIdx[:0]
	for c := range interned {
		s.stIdx = append(s.stIdx, int32(c))
	}
	clauses := s.stIdx[:len(interned)]
	p, m := s.stAllMarginals(clauses)
	s.stIdx = s.stIdx[:0]
	return p, m
}

// stEffLit returns the literal as the legacy engine's substitution would
// have rewritten it under the current assignment: a var-vs-var literal
// with one side assigned reads as the constant comparison on the other
// side. A live literal of any other kind has its variable unassigned, so
// it is returned unchanged.
func (s *solver) stEffLit(e cexpr) cexpr {
	if e.kind == ctable.VarGTVar {
		if x := s.assign[e.x]; x >= 0 {
			return cexpr{kind: ctable.VarLTConst, x: e.y, y: -1, c: x}
		}
		if y := s.assign[e.y]; y >= 0 {
			return cexpr{kind: ctable.VarGTConst, x: e.x, y: -1, c: y}
		}
	}
	return e
}

// stLitProb returns a live literal's effective probability through the
// per-literal memos; the memoized floats are bit-identical to the legacy
// engine's exprProb over the rewritten literal.
func (s *solver) stLitProb(ei int32, e cexpr) float64 {
	if e.kind == ctable.VarGTVar {
		if s.assign[e.x] >= 0 {
			return s.stEffHalf(ei, e, true)
		}
		if s.assign[e.y] >= 0 {
			return s.stEffHalf(ei, e, false)
		}
	}
	return s.stProbUn(ei, e)
}

// stAllMarginals mirrors allMarginals over a clause-index list: filter
// the satisfied clauses, then recurse through direct leaves, branch
// nodes and decompositions. The frame's arena carvings are reclaimed on
// exit, like stAdpll.
func (s *solver) stAllMarginals(clauses []int32) (float64, marginalSet) {
	rbase := len(s.stIdx)
	for _, c := range clauses {
		if !s.stClauseSat(c) {
			s.stIdx = append(s.stIdx, c)
		}
	}
	residual := s.stIdx[rbase:len(s.stIdx)]
	if len(residual) == 0 {
		s.stIdx = s.stIdx[:rbase]
		return 1, nil
	}
	p, m := s.stAllMarginalsInner(residual)
	s.stIdx = s.stIdx[:rbase]
	return p, m
}

func (s *solver) stAllMarginalsInner(residual []int32) (float64, marginalSet) {
	if p, ok := s.stDirectProb(residual); ok {
		return p, s.stLeafMarginals(residual)
	}
	if s.opt.NoComponents {
		return s.stBranchMarginals(residual, s.stPickVar(residual))
	}
	// A one-clause residual is trivially a single component; skip the
	// union-find (same branch decision, same arithmetic).
	if len(residual) == 1 {
		return s.stBranchMarginals(residual, s.stPickVar(residual))
	}
	comps, single := s.stComponents(residual)
	if single {
		return s.stBranchMarginals(residual, s.stPickVar(residual))
	}
	// Mirror allMarginals' decomposition loop, including the early return
	// once the product hits zero.
	p := 1.0
	vals := make([]float64, len(comps))
	sets := make([]marginalSet, len(comps))
	for i, comp := range comps {
		if direct, ok := s.stDirectProb(comp); ok {
			vals[i], sets[i] = direct, s.stLeafMarginals(comp)
			p *= direct
			continue
		}
		vals[i], sets[i] = s.stBranchMarginals(comp, s.stPickVar(comp))
		p *= vals[i]
		if p == 0 {
			return 0, nil
		}
	}
	suf := 1.0
	sufs := make([]float64, len(comps))
	for i := len(comps) - 1; i >= 0; i-- {
		sufs[i] = suf
		suf *= vals[i]
	}
	//lint:ignore hotalloc marginal result set handed to the caller, who owns and keeps it
	out := marginalSet{}
	pre := 1.0
	for i, set := range sets {
		outer := pre * sufs[i]
		for x, vec := range set {
			for b := range vec {
				vec[b] *= outer
			}
			out[x] = vec
		}
		pre *= vals[i]
	}
	return p, out
}

// stBranchMarginals mirrors branchMarginals: enumerate the branch
// variable's values through the trail, mixing child vectors weighted by
// the branch distribution, with independent-product defaults for needed
// variables a child eliminated.
func (s *solver) stBranchMarginals(clauses []int32, v int32) (float64, marginalSet) {
	// Collect the needed free variables up front, over the same effective
	// variables the legacy pass sees in its rewritten clauses.
	s.epoch++
	var need []int32
	note := func(x int32) {
		if x != v && s.margNeed[x] && s.seenEp[x] != s.epoch {
			s.seenEp[x] = s.epoch
			need = append(need, x)
		}
	}
	for _, c := range clauses {
		if s.stClauseSat(c) {
			continue
		}
		for ei := s.stClauseOff[c]; ei < s.stClauseOff[c+1]; ei++ {
			if s.stLitDead(ei) {
				continue
			}
			s.stVisitEff(s.stExprs[ei], note)
		}
	}

	dv := s.dists[v]
	var mv []float64
	if s.margNeed[v] {
		mv = make([]float64, len(dv))
	}
	//lint:ignore hotalloc marginal result set handed to the caller, who owns and keeps it
	out := marginalSet{}
	total := 0.0
	for a, pa := range dv {
		if pa == 0 {
			continue
		}
		mark := len(s.stTrail)
		var cv float64
		var cm marginalSet
		// An emptied clause means the child subformula is false: the
		// legacy pass reports it as simplify's decided-false (0, nil).
		if dead := s.stAssign(v, int32(a)); !dead {
			cv, cm = s.stAllMarginals(clauses)
		}
		s.stRewind(mark)
		s.assign[v] = -1
		total += pa * cv
		if mv != nil {
			mv[a] = pa * cv
		}
		for _, x := range need {
			vec := out[x]
			if vec == nil {
				vec = make([]float64, len(s.dists[x]))
				out[x] = vec
			}
			if cvec, ok := cm[x]; ok {
				for b, w := range cvec {
					vec[b] += pa * w
				}
			} else if cv != 0 {
				for b, pb := range s.dists[x] {
					vec[b] += pa * cv * pb
				}
			}
		}
	}
	if mv != nil {
		out[v] = mv
	}
	return total, out
}

// stLeafMarginals mirrors leafMarginals over the live literals of a
// direct-rule residual, reading each literal in its effective form.
func (s *solver) stLeafMarginals(residual []int32) marginalSet {
	n := len(residual)
	ps := make([]float64, n)
	anyNeed := false
	for i, c := range residual {
		q := 1.0
		for ei := s.stClauseOff[c]; ei < s.stClauseOff[c+1]; ei++ {
			if s.stLitDead(ei) {
				continue
			}
			e := s.stExprs[ei]
			q *= 1 - s.stLitProb(ei, e)
			eff := s.stEffLit(e)
			anyNeed = anyNeed || s.margNeed[eff.x] || (eff.y >= 0 && s.margNeed[eff.y])
		}
		ps[i] = 1 - q
	}
	if !anyNeed {
		return nil
	}
	sufs := make([]float64, n+1)
	sufs[n] = 1
	for i := n - 1; i >= 0; i-- {
		sufs[i] = sufs[i+1] * ps[i]
	}

	//lint:ignore hotalloc marginal result set handed to the caller, who owns and keeps it
	out := marginalSet{}
	pre := 1.0
	var qc []float64 // per-literal complement probabilities, reused
	for i, c := range residual {
		outer := pre * sufs[i+1]
		pre *= ps[i]

		qc = qc[:0]
		for ei := s.stClauseOff[c]; ei < s.stClauseOff[c+1]; ei++ {
			if s.stLitDead(ei) {
				continue
			}
			qc = append(qc, 1-s.stLitProb(ei, s.stExprs[ei]))
		}
		// qx(k): exclusion product over the clause's other live literals.
		qx := func(k int) float64 {
			q := 1.0
			for j, v := range qc {
				if j != k {
					q *= v
				}
			}
			return q
		}
		k := 0
		for ei := s.stClauseOff[c]; ei < s.stClauseOff[c+1]; ei++ {
			if s.stLitDead(ei) {
				continue
			}
			e := s.stEffLit(s.stExprs[ei])
			if s.margNeed[e.x] {
				dx := s.dists[e.x]
				vec := make([]float64, len(dx))
				q := qx(k)
				switch {
				case e.y < 0:
					for b, pb := range dx {
						if constLitSat(e, b) {
							vec[b] = outer * pb
						} else {
							vec[b] = outer * pb * (1 - q)
						}
					}
				default:
					// x > y, conditioned on x=b: the literal holds with
					// probability Pr(y < b), the running CDF of y.
					dy := s.dists[e.y]
					cdf := 0.0
					for b, pb := range dx {
						if b-1 >= 0 && b-1 < len(dy) {
							cdf += dy[b-1]
						}
						vec[b] = outer * pb * (1 - (1-cdf)*q)
					}
				}
				out[e.x] = vec
			}
			if e.y >= 0 && s.margNeed[e.y] {
				// x > y, conditioned on y=c: the literal holds with
				// probability Pr(x > c), the tail mass of x above c.
				dx := s.dists[e.x]
				dy := s.dists[e.y]
				vec := make([]float64, len(dy))
				q := qx(k)
				tail := 1.0
				for cc, pc := range dy {
					if cc < len(dx) {
						tail -= dx[cc]
					}
					vec[cc] = outer * pc * (1 - (1-tail)*q)
				}
				out[e.y] = vec
			}
			k++
		}
	}
	return out
}
