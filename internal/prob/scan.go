package prob

import (
	"encoding/binary"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/obs"
)

// CondScan precomputes a condition's connected-component decomposition so
// the UBS/HHS inner loop — probing the same condition with many candidate
// expressions — pays for one component, not the whole formula, per probe.
//
// A candidate expression e drawn from the condition touches exactly the
// component(s) holding its variables. Pr(φ∧e) therefore factors as
//
//	Pr(φ∧e) = Pr(touched ∧ e) · Π Pr(untouched component)
//
// where the untouched factors were computed once at scan construction (and
// usually served from the evaluator's component cache). Only the touched
// component is re-solved per candidate — with the unit clause [e] riding
// in solver scratch — so a condition of k components costs one small
// model-counting run plus a k-term product per candidate, instead of a
// full run over all k components. The rest-product multiplies the
// untouched factors directly rather than dividing the full product by the
// touched one, so zero-probability components need no special casing.
//
// A scan snapshots the evaluator's distributions at construction time:
// build it after crowd answers are absorbed, use it for one selection
// pass, and drop it.
type CondScan struct {
	ev   *Evaluator
	pPhi float64
	// comps[g] is the g-th connected clause group; probs[g] its
	// probability under the distributions at construction time.
	comps [][][]ctable.Expr
	probs []float64
	byVar map[ctable.Var]int
	// sweeps holds the joint vectors Pr(comp ∧ x=a) materialised by
	// PlanSweeps for the variables carrying constant-comparison
	// candidates. Written only by PlanSweeps (before any concurrent
	// probing), read-only afterwards, so the scan stays safe to share
	// across workers.
	sweeps map[ctable.Var][]float64
}

// marginalsThreshold is the minimum number of constant-comparison
// candidates on one component for PlanSweeps to run a fresh all-variable
// marginal pass over it. The pass costs a small constant factor over one
// solve of the component and then prices every one of those candidates
// with a partial sum, while the fallback pays one unit-clause solve per
// candidate — so the pass breaks even at a handful of candidates.
// Already-cached vectors are picked up regardless of the count.
const marginalsThreshold = 3

// NewCondScan decomposes the condition and computes each component's
// probability (through the component cache when the evaluator has one).
// pPhi is the caller's Pr(φ) for the condition — the same value handed to
// CondProbsWith — so utilities computed through the scan and through
// CondProbsWith see identical marginals.
func (ev *Evaluator) NewCondScan(c *ctable.Condition, pPhi float64) *CondScan {
	cs := &CondScan{ev: ev, pPhi: pPhi}
	if _, decided := c.Decided(); decided {
		return cs
	}
	cs.comps, cs.byVar = condComponents(c.Clauses)
	cs.probs = make([]float64, len(cs.comps))
	for g, comp := range cs.comps {
		cs.probs[g] = ev.probClauses(comp)
	}
	return cs
}

// CondProbs is Evaluator.CondProbsWith through the scan: the same four
// marginal-utility quantities, with Pr(φ∧e) assembled from the touched
// component's re-solve and the cached rest-product.
func (cs *CondScan) CondProbs(e ctable.Expr) (pe, pPhi, pTrue, pFalse float64) {
	ev := cs.ev
	pe = ev.ExprProb(e)
	pPhi = cs.pPhi

	// A candidate touches at most two components (one per variable; both
	// variables of an in-condition expression share a clause, hence a
	// component, but expressions from other conditions may bridge two).
	var touched [2]int
	nt := 0
	mark := func(v ctable.Var) {
		g, ok := cs.byVar[v]
		if !ok {
			return
		}
		for i := 0; i < nt; i++ {
			if touched[i] == g {
				return
			}
		}
		touched[nt] = g
		nt++
	}
	mark(e.X)
	if e.Kind == ctable.VarGTVar {
		mark(e.Y)
	}

	rest := 1.0
	for g, p := range cs.probs {
		hit := false
		for i := 0; i < nt; i++ {
			if touched[i] == g {
				hit = true
				break
			}
		}
		if !hit {
			rest *= p
		}
	}

	var pBoth float64
	switch {
	case nt == 0:
		// e shares no variable with φ: independent, Pr(φ∧e) = Pr(φ)·Pr(e).
		pBoth = pPhi * pe
	case e.Kind != ctable.VarGTVar && cs.sweeps[e.X] != nil:
		// Constant-comparison candidate on a swept variable: the planned
		// joint vector prices it with a partial sum,
		// Pr(comp∧e) = Σ_{a satisfying e} Pr(comp ∧ x=a).
		vec := cs.sweeps[e.X]
		sum := 0.0
		if e.Kind == ctable.VarLTConst {
			for a := 0; a < len(vec) && a < e.C; a++ {
				sum += vec[a]
			}
		} else {
			start := e.C + 1
			if start < 0 {
				start = 0
			}
			for a := start; a < len(vec); a++ {
				sum += vec[a]
			}
		}
		pBoth = rest * sum
	default:
		// Unswept candidate: re-solve the touched component(s) with the
		// unit clause [e] riding in solver scratch. Var-vs-var candidates
		// always land here (they couple two variables, possibly bridging
		// two components), as do constant comparisons on variables too
		// lightly loaded for PlanSweeps.
		var groups [2][][]ctable.Expr
		for i := 0; i < nt; i++ {
			groups[i] = cs.comps[touched[i]]
		}
		pBoth = rest * ev.probGroups(groups[:nt], &e)
	}

	if pe > 0 {
		pTrue = clampProb(pBoth / pe)
	} else {
		pTrue = pPhi
	}
	if pe < 1 {
		pFalse = clampProb((pPhi - pBoth) / (1 - pe))
	} else {
		pFalse = pPhi
	}
	return pe, pPhi, pTrue, pFalse
}

// PlanSweeps inspects the candidate set the scan is about to price and
// materialises joint marginal vectors Pr(comp ∧ x=a) for the variables
// carrying constant-comparison candidates. Cached vectors from an earlier
// scan or round are picked up for free; the rest are computed — when the
// component's candidate load clears marginalsThreshold — by one
// all-variable marginal pass per component (allMarginals), which costs a
// small constant factor over a single solve however many variables it
// reports. Call it once, before probing — wholesale scorers like the UBS
// utility fan-out do — and the per-candidate cost on a swept variable
// drops from a model-counting run to a partial sum. Skipping the call is
// always correct: CondProbs falls back to unit-clause re-solves, the
// right profile for lazy early-stopping scorers that may probe only a
// couple of candidates.
func (cs *CondScan) PlanSweeps(exprs []ctable.Expr) {
	if len(cs.comps) == 0 {
		return
	}
	counts := make([]int, len(cs.comps))
	//lint:ignore hotalloc once per sweep plan (per selection pass), not per candidate probe
	needed := make(map[ctable.Var]bool, len(exprs))
	for _, e := range exprs {
		if e.Kind == ctable.VarGTVar {
			continue
		}
		if g, ok := cs.byVar[e.X]; ok {
			counts[g]++
			needed[e.X] = true
		}
	}
	// The candidate and sweep-variable counts are pure functions of the
	// candidate set; what the cache serves versus recomputes below is not,
	// and stays out of the trace.
	cs.ev.Obs.Emit(obs.Event{Kind: obs.KindSweepPlan, N: len(exprs), M: len(needed)})
	for g, n := range counts {
		if n > 0 {
			cs.planComp(g, needed, n)
		}
	}
}

// planComp serves or computes the marginal vectors of one component's
// needed variables: cache lookups first, then — if any are missing and
// the candidate count justifies it — a single allMarginals pass whose
// vectors are stored for later scans and rounds. Vectors are computed on
// the canonically-ordered component, so cache-served and freshly-computed
// values are bit-identical.
func (cs *CondScan) planComp(g int, needed map[ctable.Var]bool, nCand int) {
	ev := cs.ev
	s, interned := newSolverGroups(ev, [][][]ctable.Expr{cs.comps[g]}, nil)
	defer s.release()
	key := s.fingerprint(interned, sweepKeyPrefix)
	base := len(key)
	varKey := func(x ctable.Var) []byte {
		key = key[:base]
		key = binary.AppendUvarint(key, uint64(uint32(x.Obj)))
		key = binary.AppendUvarint(key, uint64(uint32(x.Attr)))
		s.keyBuf = key
		return key
	}

	cache := ev.activeCache()
	var miss []ctable.Var
	for x := range needed {
		if cs.byVar[x] != g {
			continue
		}
		if cache != nil {
			if vec, ok := cache.lookupVec(varKey(x)); ok {
				cs.addSweep(x, vec)
				continue
			}
		}
		//lint:ignore determinism miss feeds a need-set and per-variable map stores; vectors are computed on the canonical component order, so gather order cannot reach a result
		miss = append(miss, x)
	}
	if len(miss) == 0 || nCand < marginalsThreshold {
		return
	}

	for _, x := range miss {
		id, _ := s.varID(x)
		s.margNeed[id] = true
	}
	total, m := s.marginals(interned)
	for _, x := range miss {
		id, _ := s.varID(x)
		vec := m[id]
		if vec == nil {
			// The component collapsed before constraining x (or has zero
			// probability): the joint is the independent product.
			d := ev.dist(x)
			vec = make([]float64, len(d))
			if total != 0 {
				for b, pb := range d {
					vec[b] = total * pb
				}
			}
		}
		cs.addSweep(x, vec)
		if cache != nil {
			cache.storeVec(varKey(x), s.componentVars(interned), vec)
		}
	}
}

// addSweep records a planned vector. The slices may be cache-shared:
// read-only from here on.
func (cs *CondScan) addSweep(x ctable.Var, vec []float64) {
	if cs.sweeps == nil {
		//lint:ignore hotalloc once per scan construction; probes only read it
		cs.sweeps = make(map[ctable.Var][]float64)
	}
	cs.sweeps[x] = vec
}

// condComponents groups a condition's clauses into connected components
// of the clause-variable incidence graph and returns, alongside the
// groups, the variable-to-group index the scan routes candidates through.
func condComponents(clauses [][]ctable.Expr) ([][][]ctable.Expr, map[ctable.Var]int) {
	parent := make([]int, len(clauses))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	owner := make(map[ctable.Var]int, len(clauses))
	claim := func(v ctable.Var, clause int) {
		if prev, ok := owner[v]; ok {
			ra, rb := find(prev), find(clause)
			if ra != rb {
				parent[ra] = rb
			}
			return
		}
		owner[v] = clause
	}
	for i, cl := range clauses {
		for _, e := range cl {
			claim(e.X, i)
			if e.Kind == ctable.VarGTVar {
				claim(e.Y, i)
			}
		}
	}

	groupOf := make([]int, len(clauses))
	nGroups := 0
	for i := range clauses {
		if find(i) == i {
			groupOf[i] = nGroups
			nGroups++
		}
	}
	comps := make([][][]ctable.Expr, nGroups)
	for i, cl := range clauses {
		g := groupOf[find(i)]
		comps[g] = append(comps[g], cl)
	}
	byVar := make(map[ctable.Var]int, len(owner))
	for v, cl := range owner {
		byVar[v] = groupOf[find(cl)]
	}
	return comps, byVar
}
