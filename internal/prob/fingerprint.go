package prob

import (
	"encoding/binary"
	"slices"

	"bayescrowd/internal/ctable"
)

// Component fingerprints. A connected clause component's probability is a
// pure function of its expression structure and the distributions of its
// variables, so it can be memoized under a canonical encoding: sort the
// expressions of each clause, then the clauses themselves, by the stable
// total order of ctable.Expr.Compare, and concatenate the stable binary
// encodings (ctable.Expr.AppendKey) with a per-clause length prefix. The
// sort runs in place, so after fingerprinting the component is in
// canonical order and the solver branches on exactly the clause order the
// key describes — the memoized value is a pure function of the key, bit
// for bit, regardless of the clause order this particular occurrence
// arrived in. Distribution changes are not part of the key; they are
// tracked by the cache's per-variable epochs (ComponentCache.Invalidate).

// realExpr reconstructs the caller-level expression of an interned one,
// using the solver's reverse variable table.
func (s *solver) realExpr(e cexpr) ctable.Expr {
	if e.kind == ctable.VarGTVar {
		return ctable.Expr{Kind: e.kind, X: s.vars[e.x], Y: s.vars[e.y]}
	}
	return ctable.Expr{Kind: e.kind, X: s.vars[e.x], C: int(e.c)}
}

func (s *solver) cmpExpr(a, b cexpr) int {
	return s.realExpr(a).Compare(s.realExpr(b))
}

func (s *solver) cmpClause(a, b []cexpr) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := s.cmpExpr(a[i], b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

// Key domain prefixes: scalar component-probability entries and joint
// marginal sweep-vector entries live in disjoint key spaces, so the
// two kinds can never alias even though sweep keys are a component key
// plus a variable suffix.
const (
	scalarKeyPrefix = 'P'
	sweepKeyPrefix  = 'S'
)

// fingerprint sorts the component into canonical order (in place — the
// clause slices are either simplify's per-evaluation scratch or
// newSolverGroups' fresh interned copies, never caller-owned conditions)
// and returns its cache key under the given domain prefix. The key
// aliases solver scratch: it is valid until the next fingerprint call and
// must be copied to be retained (ComponentCache does so on store).
func (s *solver) fingerprint(comp [][]cexpr, prefix byte) []byte {
	for _, cl := range comp {
		slices.SortFunc(cl, s.cmpExpr)
	}
	slices.SortFunc(comp, s.cmpClause)
	key := append(s.keyBuf[:0], prefix)
	for _, cl := range comp {
		key = binary.AppendUvarint(key, uint64(len(cl)))
		for _, e := range cl {
			key = s.realExpr(e).AppendKey(key)
		}
	}
	s.keyBuf = key
	return key
}

// componentVars returns the distinct variables of the component, in
// scratch reused across calls (ComponentCache.store copies).
func (s *solver) componentVars(comp [][]cexpr) []ctable.Var {
	s.epoch++
	out := s.varsBuf[:0]
	visit := func(id int32) {
		if s.seenEp[id] != s.epoch {
			s.seenEp[id] = s.epoch
			out = append(out, s.vars[id])
		}
	}
	for _, cl := range comp {
		for _, e := range cl {
			visit(e.x)
			if e.y >= 0 {
				visit(e.y)
			}
		}
	}
	s.varsBuf = out
	return out
}
