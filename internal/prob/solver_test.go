package prob

import (
	"math"
	"math/rand"
	"testing"

	"bayescrowd/internal/ctable"
)

func TestVarVarChainExact(t *testing.T) {
	// φ = (x > y) ∧ (y > z) over uniform 3-level variables: the
	// satisfying assignments are exactly x=2,y=1,z=0 → 1/27.
	x, y, z := v(0, 0), v(1, 0), v(2, 0)
	cond := ctable.FromClauses([][]ctable.Expr{
		{ctable.GTVar(x, y)},
		{ctable.GTVar(y, z)},
	})
	ev := NewEvaluator(Dists{x: uniform(3), y: uniform(3), z: uniform(3)})
	want := 1.0 / 27.0
	if got := ev.Prob(cond); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Prob = %v, want %v", got, want)
	}
	if got := ev.Naive(cond); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Naive = %v, want %v", got, want)
	}
}

func TestVarVarSubstitutionRewrite(t *testing.T) {
	// After branching one side of x > y, the solver rewrites the residual
	// into a constant comparison; this exercises both rewrite directions
	// via a formula that forces branching on either x or y first.
	x, y := v(0, 0), v(1, 0)
	cond := ctable.FromClauses([][]ctable.Expr{
		{ctable.GTVar(x, y)},
		{ctable.LTConst(x, 3), ctable.GTConst(y, 0)},
		{ctable.GTConst(x, 0), ctable.LTConst(y, 3)},
	})
	ev := NewEvaluator(Dists{x: {0.25, 0.25, 0.25, 0.25}, y: {0.4, 0.3, 0.2, 0.1}})
	want := ev.Naive(cond)
	if got := ev.Prob(cond); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Prob = %v, Naive = %v", got, want)
	}
}

func TestManyIndependentClausesLinear(t *testing.T) {
	// 200 var-disjoint clauses: ADPLL must solve via the direct rule —
	// effectively instant despite a 6^400 state space.
	var clauses [][]ctable.Expr
	dists := Dists{}
	for i := 0; i < 200; i++ {
		a, b := v(i, 0), v(i, 1)
		dists[a] = uniform(6)
		dists[b] = uniform(6)
		clauses = append(clauses, []ctable.Expr{
			ctable.LTConst(a, 3), ctable.GTVar(b, a),
		})
	}
	// Within each clause a is shared by both expressions, so the clause
	// itself needs branching, but clauses are mutually independent.
	cond := ctable.FromClauses(clauses)
	ev := NewEvaluator(dists)
	got := ev.Prob(cond)

	// Per clause: Pr(a<3 ∨ b>a) = 1 - Pr(a>=3 ∧ b<=a)
	//           = 1 - Σ_{a>=3} (1/6)·(a+1)/6 = 1 - (4+5+6)/36·(1/6)... compute:
	single := 0.0
	for a := 0; a < 6; a++ {
		pa := 1.0 / 6
		pbLEa := float64(a+1) / 6
		if a >= 3 {
			single += pa * pbLEa
		}
	}
	want := math.Pow(1-single, 200)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Prob = %v, want %v", got, want)
	}
}

func TestDeepSharedVariableFormula(t *testing.T) {
	// One variable shared across many clauses: branching on it once must
	// decompose everything (the Figure 4 condition shape).
	shared := v(0, 0)
	dists := Dists{shared: uniform(8)}
	var clauses [][]ctable.Expr
	for i := 1; i <= 30; i++ {
		p := v(i, 0)
		dists[p] = uniform(8)
		clauses = append(clauses, []ctable.Expr{
			ctable.GTVar(shared, p), ctable.LTConst(p, 4),
		})
	}
	cond := ctable.FromClauses(clauses)
	ev := NewEvaluator(dists)
	got := ev.Prob(cond)
	// Per clause given shared=a: Pr(p < a ∨ p < 4) = Pr(p < max(a,4)).
	want := 0.0
	for a := 0; a < 8; a++ {
		m := a
		if m < 4 {
			m = 4
		}
		want += (1.0 / 8) * math.Pow(float64(m)/8, 30)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Prob = %v, want %v", got, want)
	}
	if got < 0 || got > 1 {
		t.Fatalf("Prob outside [0,1]: %v", got)
	}
}

func TestSolverRandomisedStress(t *testing.T) {
	// Larger random formulas than the base property test, ADPLL-only
	// (Naive would be too slow), asserting the [0,1] invariant and
	// agreement between solver configurations.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		nVars := 8 + rng.Intn(8)
		vars := make([]ctable.Var, nVars)
		dists := Dists{}
		for i := range vars {
			vars[i] = v(i, rng.Intn(2))
			dists[vars[i]] = randomDist(rng, 2+rng.Intn(7))
		}
		var clauses [][]ctable.Expr
		for c := 0; c < 4+rng.Intn(10); c++ {
			var clause []ctable.Expr
			for k := 0; k < 1+rng.Intn(3); k++ {
				x := vars[rng.Intn(nVars)]
				switch rng.Intn(3) {
				case 0:
					clause = append(clause, ctable.LTConst(x, rng.Intn(len(dists[x])+1)))
				case 1:
					clause = append(clause, ctable.GTConst(x, rng.Intn(len(dists[x]))))
				default:
					y := vars[rng.Intn(nVars)]
					if y != x {
						clause = append(clause, ctable.GTVar(x, y))
					} else {
						clause = append(clause, ctable.GTConst(x, 0))
					}
				}
			}
			clauses = append(clauses, clause)
		}
		cond := ctable.FromClauses(clauses)
		full := NewEvaluator(dists)
		p := full.Prob(cond)
		if p < -1e-12 || p > 1+1e-12 {
			t.Fatalf("trial %d: Prob = %v outside [0,1]", trial, p)
		}
		noComp := &Evaluator{Dists: dists, Opt: Options{NoComponents: true}}
		if q := noComp.Prob(cond.Clone()); math.Abs(p-q) > 1e-9 {
			t.Fatalf("trial %d: components %v vs no-components %v", trial, p, q)
		}
		mc := full.MonteCarlo(cond.Clone(), 40000, rand.New(rand.NewSource(int64(trial))))
		if math.Abs(p-mc) > 0.02 {
			t.Fatalf("trial %d: ADPLL %v vs MonteCarlo %v", trial, p, mc)
		}
	}
}
