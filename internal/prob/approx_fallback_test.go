package prob

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/ctable"
)

// chainCondition builds one connected component with exactly n distinct
// variables: a var-vs-var chain x0 > x1, x1 > x2, ... Each variable gets
// a seeded random distribution over `levels` values.
func chainCondition(n, levels int, seed int64) (*ctable.Condition, Dists) {
	rng := rand.New(rand.NewSource(seed))
	vars := make([]ctable.Var, n)
	dists := Dists{}
	for i := range vars {
		vars[i] = v(i, 0)
		dists[vars[i]] = randomDist(rng, levels)
	}
	var clauses [][]ctable.Expr
	for i := 0; i+1 < n; i++ {
		clauses = append(clauses, []ctable.Expr{ctable.GTVar(vars[i], vars[i+1])})
	}
	return ctable.FromClauses(clauses), dists
}

// TestApproxFallbackBoundary pins the decision rule at the threshold: a
// component of exactly ApproxThreshold variables stays exact; one more
// variable trips the fallback.
func TestApproxFallbackBoundary(t *testing.T) {
	const k = 5
	atBoundary, dists := chainCondition(k, 4, 1)
	ev := &Evaluator{Dists: dists, Opt: Options{ApproxThreshold: k}}
	exact := (&Evaluator{Dists: dists}).Prob(atBoundary)
	if got := ev.Prob(atBoundary); !sameBits(got, exact) {
		t.Fatalf("component of exactly %d vars was not solved exactly: %v vs %v", k, got, exact)
	}
	if n := ev.ApproxComponents(); n != 0 {
		t.Fatalf("fallback fired %d times at the boundary, want 0", n)
	}

	over, overDists := chainCondition(k+1, 4, 1)
	ev2 := &Evaluator{Dists: overDists, Opt: Options{ApproxThreshold: k}}
	ev2.Prob(over)
	if n := ev2.ApproxComponents(); n != 1 {
		t.Fatalf("fallback fired %d times above the boundary, want 1", n)
	}
}

// TestApproxFallbackAgreement asserts the documented empirical bound: on
// seeded components the approximate estimate stays within 0.05 absolute
// of the exact probability (see Evaluator.ApproxComponents).
func TestApproxFallbackAgreement(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cond, dists := chainCondition(7, 4, seed)
		exact := (&Evaluator{Dists: dists}).Prob(cond)
		approx := (&Evaluator{Dists: dists, Opt: Options{ApproxThreshold: 4}}).Prob(cond)
		if math.Abs(exact-approx) > 0.05 {
			t.Errorf("seed %d: |exact %v - approx %v| exceeds the documented 0.05 bound",
				seed, exact, approx)
		}
	}
}

// TestApproxFallbackDeterminism runs an NBA-shaped workload through the
// fallback at several worker counts: the fingerprint-seeded estimator
// must return identical floats, and — without a shared cache — fire on
// exactly the same components, regardless of scheduling.
func TestApproxFallbackDeterminism(t *testing.T) {
	conds, dists := nbaConditions(200, 0.3, 0.1, 9)
	if len(conds) == 0 {
		t.Fatal("no undecided conditions generated")
	}
	opt := Options{ApproxThreshold: 4, NoCache: true}
	ref := &Evaluator{Dists: dists, Opt: opt}
	want := ref.ProbAll(conds, 1)
	wantN := ref.ApproxComponents()
	if wantN == 0 {
		t.Fatal("workload never tripped the fallback; lower the threshold")
	}
	for _, workers := range []int{2, 5, 16} {
		ev := &Evaluator{Dists: dists, Opt: opt}
		if got := ev.ProbAll(conds, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: approx results differ from sequential", workers)
		}
		if n := ev.ApproxComponents(); n != wantN {
			t.Fatalf("workers=%d: fallback fired %d times, want %d", workers, n, wantN)
		}
	}
	// With a shared cache the values must still be identical (the count
	// may differ: whichever worker misses first computes).
	cached := &Evaluator{Dists: dists, Opt: Options{ApproxThreshold: 4},
		Cache: NewComponentCache(DefaultCacheSize)}
	if got := cached.ProbAll(conds, 8); !reflect.DeepEqual(got, want) {
		t.Fatalf("cached approx results differ from uncached sequential")
	}
}
