package prob

import "bayescrowd/internal/ctable"

// Compiled bitset clause-state engine for the ADPLL hot loop.
//
// The original recursion (solver.go, kept behind Options.LegacyEngine)
// rewrites the clause set at every node: simplify allocates a fresh
// [][]cexpr residual, copies the surviving literals — substituting
// assigned variables into constant forms — and the component split
// allocates again. Those per-node allocations are the dominant cost of
// the selection phase, where the UBS/HHS candidate loop solves tens of
// thousands of small components per round.
//
// This engine compiles a component once per solve into flat, reusable
// solver scratch:
//
//   - a literal arena (stExprs) with per-clause offsets, in the canonical
//     order the fingerprint established;
//   - liveness as bit-words — one bit per clause ("satisfied, drop it")
//     and one per literal ("decided false, skip it") — plus a live-literal
//     counter per clause that detects empty clauses eagerly;
//   - CSR occurrence lists mapping each variable to the literals that
//     mention it, so branching on v touches exactly v's literals instead
//     of rescanning the clause set;
//   - an undo trail: every bit set while descending is recorded and
//     reverted before the next branch value, DPLL-style.
//
// Substitution is evaluated dynamically instead of by rewriting: a
// var-vs-var literal with one side assigned is *read* as the constant
// comparison the legacy engine would have rewritten it to (effExprProb,
// effective-variable visits). Every probability sum runs over the same
// distributions in the same order as the legacy engine's rewritten
// forms, every clause and literal is visited in the same sequence, and
// the branch/decomposition arithmetic is mirrored statement for
// statement — so the two engines return bit-identical floats
// (state_equiv_test.go pins this).
//
// Recursion-local clause-index lists (residuals, component groups) are
// carved from a stack-disciplined int32 arena (stIdx): a frame records
// the arena length on entry and truncates back on exit, so steady-state
// recursion allocates nothing. Slices carved before a reallocation keep
// pointing into the old backing array; that is sound because a carved
// list is append-filled only through its own capped slice and read-only
// afterwards.

// stSolve compiles one connected component — already in canonical
// fingerprint order, under an empty assignment — and solves it. Mirrors
// the legacy componentProb step branch(comp, pickVar(comp)).
func (s *solver) stSolve(comp [][]cexpr) float64 {
	s.stCompile(comp)
	s.stTrail = s.stTrail[:0]
	s.stIdx = s.stIdx[:0]
	for c := range comp {
		s.stIdx = append(s.stIdx, int32(c))
	}
	clauses := s.stIdx[:len(comp)]
	p := s.stBranch(clauses, s.stPickVar(clauses))
	s.stIdx = s.stIdx[:0]
	return p
}

// stCompile loads the component into the arena and resets the liveness
// state. The clause and literal order of comp is preserved exactly.
func (s *solver) stCompile(comp [][]cexpr) {
	s.stExprs = s.stExprs[:0]
	s.stClauseOff = s.stClauseOff[:0]
	s.stClauseOf = s.stClauseOf[:0]
	s.stLive = s.stLive[:0]
	for c, cl := range comp {
		s.stClauseOff = append(s.stClauseOff, int32(len(s.stExprs)))
		for _, e := range cl {
			s.stExprs = append(s.stExprs, e)
			s.stClauseOf = append(s.stClauseOf, int32(c))
		}
		s.stLive = append(s.stLive, int32(len(cl)))
	}
	nLit := len(s.stExprs)
	s.stClauseOff = append(s.stClauseOff, int32(nLit))

	s.stSatW = resizeClearWords(s.stSatW, (len(comp)+63)/64)
	s.stDeadW = resizeClearWords(s.stDeadW, (nLit+63)/64)

	// Literal probability memos: the unassigned form is unset (-1) until
	// first use, the half-assigned slots are invalidated by the version
	// sentinel (stVarVer never reaches ^0). stEffP/stEffX need no clearing
	// — stEffVer gates them.
	s.stProb0 = resizeFillFloats(s.stProb0, nLit, -1)
	s.stEffVer = resizeFillWords(s.stEffVer, nLit, ^uint64(0))
	if cap(s.stEffP) < nLit {
		s.stEffP = make([]float64, nLit)
		s.stEffX = make([]bool, nLit)
	} else {
		s.stEffP = s.stEffP[:nLit]
		s.stEffX = s.stEffX[:nLit]
	}

	// Occurrence lists in CSR form. stOccOff doubles as the counting
	// array during the first pass; the prefix sum then turns counts into
	// range starts, and the fill pass advances stOccEnd to the range ends.
	nv := len(s.dists)
	for v := 0; v < nv; v++ {
		s.stOccOff[v] = 0
	}
	slots := 0
	for _, e := range s.stExprs {
		s.stOccOff[e.x]++
		slots++
		if e.y >= 0 {
			s.stOccOff[e.y]++
			slots++
		}
	}
	if cap(s.stOcc) < slots {
		s.stOcc = make([]int32, slots)
	} else {
		s.stOcc = s.stOcc[:slots]
	}
	off := int32(0)
	for v := 0; v < nv; v++ {
		cnt := s.stOccOff[v]
		s.stOccOff[v] = off
		s.stOccEnd[v] = off
		off += cnt
	}
	for ei, e := range s.stExprs {
		s.stOcc[s.stOccEnd[e.x]] = int32(ei)
		s.stOccEnd[e.x]++
		if e.y >= 0 {
			s.stOcc[s.stOccEnd[e.y]] = int32(ei)
			s.stOccEnd[e.y]++
		}
	}
}

func resizeClearWords(w []uint64, n int) []uint64 {
	if cap(w) < n {
		return make([]uint64, n)
	}
	w = w[:n]
	for i := range w {
		w[i] = 0
	}
	return w
}

func resizeFillWords(w []uint64, n int, v uint64) []uint64 {
	if cap(w) < n {
		w = make([]uint64, n)
	} else {
		w = w[:n]
	}
	for i := range w {
		w[i] = v
	}
	return w
}

func resizeFillFloats(w []float64, n int, v float64) []float64 {
	if cap(w) < n {
		w = make([]float64, n)
	} else {
		w = w[:n]
	}
	for i := range w {
		w[i] = v
	}
	return w
}

func (s *solver) stClauseSat(c int32) bool {
	return s.stSatW[c>>6]&(1<<uint(c&63)) != 0
}

func (s *solver) stLitDead(ei int32) bool {
	return s.stDeadW[ei>>6]&(1<<uint(ei&63)) != 0
}

// stAssign applies v=a to the state: every live literal mentioning v that
// the assignment decides either satisfies its clause (sat bit) or dies
// (dead bit, live counter). dead reports that some clause ran out of live
// literals — the subformula is false under this branch, exactly the case
// the legacy engine detects as an empty clause in simplify. All mutations
// are trailed for stRewind.
func (s *solver) stAssign(v, a int32) (dead bool) {
	s.assign[v] = a
	s.stVarVer[v]++
	for k := s.stOccOff[v]; k < s.stOccEnd[v]; k++ {
		ei := s.stOcc[k]
		c := s.stClauseOf[ei]
		if s.stClauseSat(c) || s.stLitDead(ei) {
			continue
		}
		e := s.stExprs[ei]
		var val, decided bool
		switch e.kind {
		case ctable.VarLTConst:
			val, decided = a < e.c, true
		case ctable.VarGTConst:
			val, decided = a > e.c, true
		default: // VarGTVar: decided once both sides are assigned
			if e.x == v {
				if y := s.assign[e.y]; y >= 0 {
					val, decided = a > y, true
				}
			} else if x := s.assign[e.x]; x >= 0 {
				val, decided = x > a, true
			}
		}
		if !decided {
			continue
		}
		if val {
			s.stSatW[c>>6] |= 1 << uint(c&63)
			s.stTrail = append(s.stTrail, -(c + 1))
		} else {
			s.stDeadW[ei>>6] |= 1 << uint(ei&63)
			s.stTrail = append(s.stTrail, ei+1)
			s.stLive[c]--
			if s.stLive[c] == 0 {
				dead = true
			}
		}
	}
	return dead
}

// stRewind reverts the trail back to mark.
func (s *solver) stRewind(mark int) {
	for i := len(s.stTrail) - 1; i >= mark; i-- {
		u := s.stTrail[i]
		if u > 0 {
			ei := u - 1
			s.stDeadW[ei>>6] &^= 1 << uint(ei&63)
			s.stLive[s.stClauseOf[ei]]++
		} else {
			c := -u - 1
			s.stSatW[c>>6] &^= 1 << uint(c&63)
		}
	}
	s.stTrail = s.stTrail[:mark]
}

// effExprProb reads a live literal as the expression the legacy engine's
// substitution would have rewritten it to, and computes its probability
// with the same summation. A live constant literal always has its
// variable unassigned (assignment would have decided it), and a live
// var-vs-var literal has at most one side assigned.
func (s *solver) effExprProb(e cexpr) float64 {
	if e.kind == ctable.VarGTVar {
		if x := s.assign[e.x]; x >= 0 {
			// Rewritten form: e.y < x (VarLTConst).
			d := s.dists[e.y]
			p := 0.0
			for v := 0; v < len(d) && v < int(x); v++ {
				p += d[v]
			}
			return p
		}
		if y := s.assign[e.y]; y >= 0 {
			// Rewritten form: e.x > y (VarGTConst).
			d := s.dists[e.x]
			p := 0.0
			start := int(y) + 1
			if start < 0 {
				start = 0
			}
			for v := start; v < len(d); v++ {
				p += d[v]
			}
			return p
		}
	}
	return s.exprProb(e)
}

// stVisitEff calls fn for each effective (unassigned) variable of a live
// literal, in the order the legacy engine's rewritten form would expose
// them: the sole unassigned side of a half-assigned var-vs-var literal,
// else x then y.
func (s *solver) stVisitEff(e cexpr, fn func(v int32)) {
	if e.kind == ctable.VarGTVar {
		if s.assign[e.x] >= 0 {
			fn(e.y)
			return
		}
		if s.assign[e.y] >= 0 {
			fn(e.x)
			return
		}
		fn(e.x)
		fn(e.y)
		return
	}
	fn(e.x)
}

// stAdpll mirrors the legacy adpll over a clause-index list, truncating
// the arena allocations of its frame on exit.
func (s *solver) stAdpll(clauses []int32) float64 {
	base := len(s.stIdx)
	p := s.stAdpllInner(clauses)
	s.stIdx = s.stIdx[:base]
	return p
}

func (s *solver) stAdpllInner(clauses []int32) float64 {
	// Residual = the clauses not yet satisfied; an emptied clause was
	// already detected by stAssign, so reaching here means none is empty.
	rbase := len(s.stIdx)
	for _, c := range clauses {
		if !s.stClauseSat(c) {
			s.stIdx = append(s.stIdx, c)
		}
	}
	residual := s.stIdx[rbase:len(s.stIdx)]
	if len(residual) == 0 {
		return 1
	}

	if p, ok := s.stDirectProb(residual); ok {
		return p
	}
	if s.opt.NoComponents {
		return s.stBranch(residual, s.stPickVar(residual))
	}

	// A one-clause residual is trivially a single component; skip the
	// union-find (same branch decision, same arithmetic).
	if len(residual) == 1 {
		return s.stBranch(residual, s.stPickVar(residual))
	}
	comps, single := s.stComponents(residual)
	if single {
		return s.stBranch(residual, s.stPickVar(residual))
	}
	p := 1.0
	for _, comp := range comps {
		if direct, ok := s.stDirectProb(comp); ok {
			p *= direct
			continue
		}
		p *= s.stBranch(comp, s.stPickVar(comp))
		if p == 0 {
			return 0
		}
	}
	return p
}

// stBranch enumerates the values of var id v weighted by its
// distribution, assigning through the trail.
func (s *solver) stBranch(clauses []int32, v int32) float64 {
	total := 0.0
	for a, pa := range s.dists[v] {
		if pa == 0 {
			continue
		}
		mark := len(s.stTrail)
		if dead := s.stAssign(v, int32(a)); !dead {
			total += pa * s.stAdpll(clauses)
		}
		s.stRewind(mark)
		s.assign[v] = -1
	}
	return total
}

// stPickVar mirrors pickVar over live literals and effective variables.
func (s *solver) stPickVar(clauses []int32) int32 {
	s.epoch++
	best, bestCount := int32(-1), 0
	visit := func(v int32) {
		if s.seenEp[v] != s.epoch {
			s.seenEp[v] = s.epoch
			s.counts[v] = 0
		}
		s.counts[v]++
		if s.counts[v] > bestCount {
			best, bestCount = v, s.counts[v]
		}
	}
	for _, c := range clauses {
		for ei := s.stClauseOff[c]; ei < s.stClauseOff[c+1]; ei++ {
			if s.stLitDead(ei) {
				continue
			}
			e := s.stExprs[ei]
			if s.opt.BranchFirstVar {
				// The legacy engine returns the rewritten literal's x:
				// the sole unassigned side of a half-assigned var-vs-var
				// literal, else the literal's own x.
				if e.kind == ctable.VarGTVar && s.assign[e.x] >= 0 {
					return e.y
				}
				return e.x
			}
			s.stVisitEff(e, visit)
		}
	}
	return best
}

// stProbUn returns literal ei's probability in its unassigned form,
// computing exprProb once per compile. exprProb is a pure function of the
// literal and the distributions, so the cached float is the identical
// value a recomputation would produce.
func (s *solver) stProbUn(ei int32, e cexpr) float64 {
	if p := s.stProb0[ei]; p >= 0 {
		return p
	}
	p := s.exprProb(e)
	s.stProb0[ei] = p
	return p
}

// stEffHalf returns the probability of a half-assigned var-vs-var literal,
// memoized under the assigned side's assignment version: while that
// variable keeps its branched value the effective form — and therefore the
// summation effExprProb runs — is unchanged, so the cached float is
// bit-identical to a recomputation. Any re-assignment bumps stVarVer and
// misses the memo.
func (s *solver) stEffHalf(ei int32, e cexpr, xAssigned bool) float64 {
	v := e.x
	if !xAssigned {
		v = e.y
	}
	if s.stEffVer[ei] == s.stVarVer[v] && s.stEffX[ei] == xAssigned {
		return s.stEffP[ei]
	}
	p := s.effExprProb(e)
	s.stEffVer[ei] = s.stVarVer[v]
	s.stEffX[ei] = xAssigned
	s.stEffP[ei] = p
	return p
}

// stDirectProb mirrors directProb: if every effective variable occurs
// exactly once across the live literals, the probability follows from the
// independent-conjunction and general-disjunction rules, computed in the
// same clause and literal order as the legacy engine. The repeated-
// variable check and the product run as one fused pass — the success
// path multiplies the same factors in the same order as the legacy
// two-pass form, and a detected repeat discards the partial product in
// both. Factors come from the per-literal memos (stProbUn, stEffHalf).
func (s *solver) stDirectProb(residual []int32) (float64, bool) {
	s.epoch++
	p := 1.0
	for _, c := range residual {
		qAllFalse := 1.0
		for ei := s.stClauseOff[c]; ei < s.stClauseOff[c+1]; ei++ {
			if s.stLitDead(ei) {
				continue
			}
			e := s.stExprs[ei]
			if e.kind == ctable.VarGTVar {
				if s.assign[e.x] >= 0 {
					if s.seenEp[e.y] == s.epoch {
						return 0, false
					}
					s.seenEp[e.y] = s.epoch
					qAllFalse *= 1 - s.stEffHalf(ei, e, true)
					continue
				}
				if s.assign[e.y] >= 0 {
					if s.seenEp[e.x] == s.epoch {
						return 0, false
					}
					s.seenEp[e.x] = s.epoch
					qAllFalse *= 1 - s.stEffHalf(ei, e, false)
					continue
				}
				if s.seenEp[e.x] == s.epoch || s.seenEp[e.y] == s.epoch {
					return 0, false
				}
				s.seenEp[e.x] = s.epoch
				s.seenEp[e.y] = s.epoch
				qAllFalse *= 1 - s.stProbUn(ei, e)
				continue
			}
			if s.seenEp[e.x] == s.epoch {
				return 0, false
			}
			s.seenEp[e.x] = s.epoch
			qAllFalse *= 1 - s.stProbUn(ei, e)
		}
		p *= 1 - qAllFalse
	}
	return p, true
}

// stComponents mirrors components over a clause-index list: union-find
// over residual positions claimed through effective variables, with the
// single-component fast path reported as (nil, true). Group order is the
// root-appearance order of the residual scan and members keep residual
// order, matching the legacy engine. The parent, group and bucket tables
// are carved from the arena; the caller's stAdpll frame reclaims them.
func (s *solver) stComponents(residual []int32) ([][]int32, bool) {
	n := len(residual)
	pbase := len(s.stIdx)
	for i := 0; i < n; i++ {
		s.stIdx = append(s.stIdx, int32(i))
	}
	parent := s.stIdx[pbase:len(s.stIdx)]
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	s.epoch++
	var pos int32
	claim := func(v int32) {
		if s.ownerEp[v] == s.epoch {
			ra, rb := find(int32(s.owner[v])), find(pos)
			if ra != rb {
				parent[ra] = rb
			}
			return
		}
		s.ownerEp[v] = s.epoch
		s.owner[v] = int(pos)
	}
	for i, c := range residual {
		pos = int32(i)
		for ei := s.stClauseOff[c]; ei < s.stClauseOff[c+1]; ei++ {
			if s.stLitDead(ei) {
				continue
			}
			s.stVisitEff(s.stExprs[ei], claim)
		}
	}

	root := find(0)
	single := true
	for i := int32(1); i < int32(n); i++ {
		if find(i) != root {
			single = false
			break
		}
	}
	if single {
		s.stIdx = s.stIdx[:pbase]
		return nil, true
	}

	gbase := len(s.stIdx)
	for i := 0; i < n; i++ {
		s.stIdx = append(s.stIdx, 0)
	}
	groupOf := s.stIdx[gbase:len(s.stIdx)]
	nG := int32(0)
	for i := int32(0); i < int32(n); i++ {
		if find(i) == i {
			groupOf[i] = nG
			nG++
		}
	}

	szbase := len(s.stIdx)
	for g := int32(0); g < nG; g++ {
		s.stIdx = append(s.stIdx, 0)
	}
	sizes := s.stIdx[szbase:len(s.stIdx)]
	for i := int32(0); i < int32(n); i++ {
		sizes[groupOf[find(i)]]++
	}
	bbase := len(s.stIdx)
	for i := 0; i < n; i++ {
		s.stIdx = append(s.stIdx, 0)
	}
	block := s.stIdx[bbase:len(s.stIdx)]
	groups := make([][]int32, nG)
	off := int32(0)
	for g := range groups {
		end := off + sizes[g]
		groups[g] = block[off:off:end]
		off = end
	}
	for i, c := range residual {
		g := groupOf[find(int32(i))]
		groups[g] = append(groups[g], c)
	}
	return groups, false
}
