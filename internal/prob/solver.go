package prob

import (
	"fmt"
	"sync"

	"bayescrowd/internal/ctable"
)

// The solver is the allocation-lean engine behind ADPLL. Public entry
// points convert a condition's expressions into a dense form first —
// variables interned to small integer ids, clauses to slices of cexpr —
// so the recursion works on array indexing instead of map hashing.

// cexpr is an interned expression. y < 0 marks a constant right operand.
type cexpr struct {
	kind ctable.Kind
	x, y int32
	c    int32
}

type solver struct {
	opt Options
	// Variable interning: an open-addressed, linear-probed hash table
	// mapping packed (Obj,Attr) keys to dense ids. Slots are epoch-stamped
	// so "clearing" the table between evaluations is one integer
	// increment, and probing is a few flat array reads — this replaced a
	// per-call map[ctable.Var]int32 whose hashing and clearing dominated
	// the small-condition profile of the UBS/HHS candidate loop.
	itabKeys  []uint64
	itabIDs   []int32
	itabEp    []uint64
	itabEpoch uint64
	itabLive  int
	// ids is the seed implementation's interning map, kept verbatim for
	// Options.LegacyEngine so the legacy path reproduces the seed's cost
	// profile exactly — the benchmark harness reports the compiled
	// engine's speedup as an in-run ratio against it, which is what makes
	// the CI regression gate portable across machines.
	ids   map[ctable.Var]int32
	dists [][]float64  // per var id
	vars  []ctable.Var // per var id: the real variable, for fingerprints
	// assign[v] is the branched value of var v, or -1.
	assign []int32
	// Scratch epochs avoid clearing per-var arrays on every recursion.
	epoch   int
	seenEp  []int // directProb / pickVar bookkeeping
	counts  []int
	ownerEp []int // components bookkeeping
	owner   []int
	// unitCl backs the augmenting unit clause of Pr(φ∧e) runs, so the
	// UBS/HHS inner loop never materialises an augmented clause buffer.
	unitCl [1]cexpr
	// ceArena and clArena back the interned clause set of one evaluation
	// (default engine): all literals live in one flat buffer and the
	// clause headers in one reused slice, so a Pr(φ∧e) probe interns its
	// condition with zero per-clause allocations. The legacy path keeps
	// the seed's per-clause copies. Carved slices are solver-owned
	// per-evaluation scratch, which is what lets fingerprint sort them
	// in place.
	ceArena []cexpr
	clArena [][]cexpr
	// keyBuf and varsBuf are fingerprint scratch, reused across the
	// components of one evaluation.
	keyBuf  []byte
	varsBuf []ctable.Var
	// margNeed marks the variables the all-marginals pass must report
	// vectors for (set by the scan planner, false everywhere otherwise).
	margNeed []bool
	// satVars and satAssign are sampleSat scratch: the sorted variable
	// list of the residual and the dense working assignment, replacing the
	// per-sample maps the estimator used to allocate.
	satVars   []int32
	satAssign []int32
	// nApprox counts the connected components this evaluation resolved
	// through the approximate estimator (Options.ApproxThreshold); the
	// public entry points drain it into the evaluator's counter.
	nApprox int

	// Bitset clause-state engine scratch (state.go). componentProb
	// compiles the component into a flat literal arena once; the recursion
	// below it then touches only bit-words, counters and the undo trail —
	// no per-node clause rewriting, no per-node allocation.
	stExprs     []cexpr  // literal arena, clause-contiguous
	stClauseOff []int32  // clause c = stExprs[stClauseOff[c]:stClauseOff[c+1]]
	stClauseOf  []int32  // literal index -> owning clause
	stLive      []int32  // undecided-literal count per clause
	stSatW      []uint64 // clause-satisfied bit-words
	stDeadW     []uint64 // literal-decided-false bit-words
	stOcc       []int32  // CSR occurrence lists: literal indices per var
	stOccOff    []int32  // per var id: occurrence range start in stOcc
	stOccEnd    []int32  // per var id: occurrence range end in stOcc
	stTrail     []int32  // undo log: +ei+1 literal-dead, -(c+1) clause-sat
	stIdx       []int32  // stack-discipline arena for clause-index lists
	// Per-literal probability memos (state.go). A live literal's effective
	// probability is a pure function of its own variables' assignments, so
	// the value computed at one recursion node is bit-identical at every
	// other node with the same assignments: stProb0 caches the unassigned
	// form once per compile (-1 = unset), and stEffP caches the
	// half-assigned var-vs-var form keyed by the assigned side and that
	// variable's assignment version (stVarVer, bumped on every stAssign).
	stProb0  []float64 // per literal: probability under no assignment
	stEffP   []float64 // per literal: half-assigned memo value
	stEffVer []uint64  // per literal: stVarVer at memo time (^0 = unset)
	stEffX   []bool    // per literal: memo taken with the x side assigned
	stVarVer []uint64  // per var id: assignment version counter
}

// solverPool recycles solver scratch across evaluations. sync.Pool is
// concurrency-safe, so during a parallel fan-out each in-flight Prob call
// owns a private solver: per-worker scratch without locks, and the hot
// path stays allocation-lean even under contention.
var solverPool = sync.Pool{
	New: func() any { return &solver{} },
}

// newSolver acquires pooled scratch, interns the variables of the clause
// set and captures their distributions. Callers return the solver with
// release once the evaluation is done.
func newSolver(ev *Evaluator, clauses [][]ctable.Expr) (*solver, [][]cexpr) {
	return newSolverGroups(ev, [][][]ctable.Expr{clauses}, nil)
}

// newSolverGroups is newSolver over several clause groups plus an
// optional augmenting unit clause [*unit]. The groups are interned as one
// conjunction without materialising a combined condition — the unit
// clause lives in solver scratch — so Pr(φ∧e) runs (the UBS/HHS inner
// loop) and the component-scan's partial re-solves allocate no augmented
// clause buffer per candidate.
func newSolverGroups(ev *Evaluator, groups [][][]ctable.Expr, unit *ctable.Expr) (*solver, [][]cexpr) {
	s := solverPool.Get().(*solver)
	s.opt = ev.Opt
	s.dists = s.dists[:0]
	s.vars = s.vars[:0]
	s.nApprox = 0
	if s.opt.LegacyEngine {
		// Seed replica: the original map-based interning, cleared per
		// evaluation the way the seed's pooled solver did it.
		if s.ids == nil {
			//lint:ignore hotalloc deliberate seed-replica behavior: the LegacyEngine baseline must allocate the way the seed did
			s.ids = map[ctable.Var]int32{}
		}
		clear(s.ids)
	} else {
		// One increment invalidates every intern slot left over from
		// earlier evaluations; see grow for why epoch stamping makes that
		// sound.
		s.itabEpoch++
		s.itabLive = 0
		if len(s.itabKeys) == 0 {
			const initialSlots = 64
			s.itabKeys = make([]uint64, initialSlots)
			s.itabIDs = make([]int32, initialSlots)
			s.itabEp = make([]uint64, initialSlots)
		}
	}
	n, lits := 0, 0
	for _, g := range groups {
		n += len(g)
		for _, cl := range g {
			lits += len(cl)
		}
	}
	if unit != nil {
		n++
		lits++
	}
	var out [][]cexpr
	if s.opt.LegacyEngine {
		// Seed replica: one fresh slice per clause, as the original did.
		out = make([][]cexpr, 0, n)
		for _, g := range groups {
			for _, cl := range g {
				ce := make([]cexpr, len(cl))
				for k, e := range cl {
					ce[k] = s.intern(ev, e)
				}
				out = append(out, ce)
			}
		}
		if unit != nil {
			s.unitCl[0] = s.intern(ev, *unit)
			out = append(out, s.unitCl[:])
		}
	} else {
		// Arena carve: the buffers are pre-sized before any slice is
		// carved, so no append can reallocate under an aliasing clause.
		if cap(s.ceArena) < lits {
			s.ceArena = make([]cexpr, lits)
		} else {
			s.ceArena = s.ceArena[:lits]
		}
		if cap(s.clArena) < n {
			s.clArena = make([][]cexpr, n)
		} else {
			s.clArena = s.clArena[:n]
		}
		k, ci := 0, 0
		for _, g := range groups {
			for _, cl := range g {
				dst := s.ceArena[k : k+len(cl) : k+len(cl)]
				for j, e := range cl {
					dst[j] = s.intern(ev, e)
				}
				s.clArena[ci] = dst
				ci++
				k += len(cl)
			}
		}
		if unit != nil {
			s.ceArena[k] = s.intern(ev, *unit)
			s.clArena[ci] = s.ceArena[k : k+1 : k+1]
		}
		out = s.clArena
	}
	s.grow(len(s.dists))
	return s, out
}

// intern converts an expression to its dense form, assigning variable ids
// on first sight.
func (s *solver) intern(ev *Evaluator, e ctable.Expr) cexpr {
	switch e.Kind {
	case ctable.VarLTConst, ctable.VarGTConst:
		return cexpr{kind: e.Kind, x: s.internVar(ev, e.X), y: -1, c: int32(e.C)}
	case ctable.VarGTVar:
		return cexpr{kind: e.Kind, x: s.internVar(ev, e.X), y: s.internVar(ev, e.Y)}
	default:
		panic(fmt.Sprintf("prob: unknown expression kind %d", e.Kind))
	}
}

// packVar folds a variable into one intern-table key. Object and
// attribute indices are non-negative ints well inside 32 bits, so the
// packing is injective.
func packVar(v ctable.Var) uint64 {
	return uint64(uint32(v.Obj))<<32 | uint64(uint32(v.Attr))
}

// itabHash spreads a packed key across the table. Fibonacci multiply plus
// a fold of the high bits; the table masks the result to its size.
func itabHash(key uint64) uint64 {
	h := key * 0x9e3779b97f4a7c15
	return h ^ h>>33
}

func (s *solver) internVar(ev *Evaluator, v ctable.Var) int32 {
	if s.opt.LegacyEngine {
		if id, ok := s.ids[v]; ok {
			return id
		}
		id := int32(len(s.dists))
		s.ids[v] = id
		s.dists = append(s.dists, ev.dist(v))
		s.vars = append(s.vars, v)
		return id
	}
	key := packVar(v)
	mask := uint64(len(s.itabKeys) - 1)
	i := itabHash(key) & mask
	for {
		if s.itabEp[i] != s.itabEpoch {
			id := int32(len(s.dists))
			s.itabEp[i] = s.itabEpoch
			s.itabKeys[i] = key
			s.itabIDs[i] = id
			s.itabLive++
			s.dists = append(s.dists, ev.dist(v))
			s.vars = append(s.vars, v)
			if 4*s.itabLive >= 3*len(s.itabKeys) {
				s.itabGrow()
			}
			return id
		}
		if s.itabKeys[i] == key {
			return s.itabIDs[i]
		}
		i = (i + 1) & mask
	}
}

// varID returns the interned id of an already-interned variable.
func (s *solver) varID(v ctable.Var) (int32, bool) {
	if s.opt.LegacyEngine {
		id, ok := s.ids[v]
		return id, ok
	}
	key := packVar(v)
	mask := uint64(len(s.itabKeys) - 1)
	i := itabHash(key) & mask
	for {
		if s.itabEp[i] != s.itabEpoch {
			return 0, false
		}
		if s.itabKeys[i] == key {
			return s.itabIDs[i], true
		}
		i = (i + 1) & mask
	}
}

// itabGrow doubles the intern table and rehashes the live slots. Ids are
// stored in the slots, so growth preserves first-sight id order.
func (s *solver) itabGrow() {
	oldKeys, oldIDs, oldEp := s.itabKeys, s.itabIDs, s.itabEp
	n := 2 * len(oldKeys)
	s.itabKeys = make([]uint64, n)
	s.itabIDs = make([]int32, n)
	s.itabEp = make([]uint64, n)
	mask := uint64(n - 1)
	for j, ep := range oldEp {
		if ep != s.itabEpoch {
			continue
		}
		key := oldKeys[j]
		i := itabHash(key) & mask
		for s.itabEp[i] == s.itabEpoch {
			i = (i + 1) & mask
		}
		s.itabEp[i] = s.itabEpoch
		s.itabKeys[i] = key
		s.itabIDs[i] = oldIDs[j]
	}
}

// grow sizes the per-variable scratch for n interned variables. The epoch
// counter is deliberately preserved across reuse: every epoch-guarded
// lookup first increments s.epoch, so entries left over from earlier
// evaluations (all stamped with strictly older epochs) can never alias a
// fresh one — which is what makes recycling safe without clearing.
func (s *solver) grow(n int) {
	if cap(s.assign) < n {
		s.assign = make([]int32, n)
		s.seenEp = make([]int, n)
		s.counts = make([]int, n)
		s.ownerEp = make([]int, n)
		s.owner = make([]int, n)
		s.margNeed = make([]bool, n)
		s.satAssign = make([]int32, n)
		s.stOccOff = make([]int32, n)
		s.stOccEnd = make([]int32, n)
		s.stVarVer = make([]uint64, n)
	} else {
		s.assign = s.assign[:n]
		s.seenEp = s.seenEp[:n]
		s.counts = s.counts[:n]
		s.ownerEp = s.ownerEp[:n]
		s.owner = s.owner[:n]
		s.margNeed = s.margNeed[:n]
		s.satAssign = s.satAssign[:n]
		s.stOccOff = s.stOccOff[:n]
		s.stOccEnd = s.stOccEnd[:n]
		s.stVarVer = s.stVarVer[:n]
	}
	for i := range s.assign {
		s.assign[i] = -1
		s.margNeed[i] = false
	}
}

// release returns the solver's scratch to the pool, dropping the captured
// distribution references so pooled scratch never pins caller data.
func (s *solver) release() {
	for i := range s.dists {
		s.dists[i] = nil
	}
	solverPool.Put(s)
}

// exprProb is ExprProb over interned expressions and (possibly branched)
// distributions.
func (s *solver) exprProb(e cexpr) float64 {
	dx := s.dists[e.x]
	switch e.kind {
	case ctable.VarLTConst:
		p := 0.0
		for v := 0; v < len(dx) && v < int(e.c); v++ {
			p += dx[v]
		}
		return p
	case ctable.VarGTConst:
		p := 0.0
		// Hoist the v >= 0 clamp out of the loop: negative constants
		// (possible only for never-built degenerate expressions) just
		// start the scan at 0.
		start := int(e.c) + 1
		if start < 0 {
			start = 0
		}
		for v := start; v < len(dx); v++ {
			p += dx[v]
		}
		return p
	default: // VarGTVar
		dy := s.dists[e.y]
		p, cdf := 0.0, 0.0
		for a := 0; a < len(dx); a++ {
			if a-1 >= 0 && a-1 < len(dy) {
				cdf += dy[a-1]
			}
			p += dx[a] * cdf
		}
		return p
	}
}

// substitute applies the current assignment to an expression.
func (s *solver) substitute(e cexpr) (out cexpr, value, decided bool) {
	switch e.kind {
	case ctable.VarLTConst:
		if x := s.assign[e.x]; x >= 0 {
			return e, x < e.c, true
		}
		return e, false, false
	case ctable.VarGTConst:
		if x := s.assign[e.x]; x >= 0 {
			return e, x > e.c, true
		}
		return e, false, false
	default: // VarGTVar
		x, y := s.assign[e.x], s.assign[e.y]
		switch {
		case x >= 0 && y >= 0:
			return e, x > y, true
		case x >= 0:
			return cexpr{kind: ctable.VarLTConst, x: e.y, y: -1, c: x}, false, false
		case y >= 0:
			return cexpr{kind: ctable.VarGTConst, x: e.x, y: -1, c: y}, false, false
		default:
			return e, false, false
		}
	}
}

// simplify rewrites clauses under the assignment into dst (which is
// reused storage); decided reports a collapsed formula.
func (s *solver) simplify(clauses [][]cexpr) (out [][]cexpr, value, decided bool) {
	out = make([][]cexpr, 0, len(clauses))
	for _, cl := range clauses {
		kept := make([]cexpr, 0, len(cl))
		satisfied := false
		for _, e := range cl {
			sub, val, dec := s.substitute(e)
			if dec {
				if val {
					satisfied = true
					break
				}
				continue
			}
			kept = append(kept, sub)
		}
		if satisfied {
			continue
		}
		if len(kept) == 0 {
			return nil, false, true
		}
		out = append(out, kept)
	}
	if len(out) == 0 {
		return nil, true, true
	}
	return out, false, false
}

// adpllTop is the ADPLL entry point: the same mathematics as adpll, but
// connected components are solved in a canonical clause order and, when
// cache is non-nil, memoized under their canonical fingerprint. A nil
// cache keeps the canonical order and skips only the memoization — the
// single difference between cached and uncached evaluation is whether a
// component's probability is looked up or recomputed, never the
// arithmetic order, which is what makes the two modes bit-identical.
func (s *solver) adpllTop(clauses [][]cexpr, cache *ComponentCache) float64 {
	residual := clauses
	if s.opt.LegacyEngine {
		var value, decided bool
		residual, value, decided = s.simplify(clauses)
		if decided {
			if value {
				return 1
			}
			return 0
		}
	} else {
		// adpllTop is only entered on a fresh solver, so the assignment is
		// empty and simplify would copy the clause set unchanged — skip the
		// copy and handle the collapse cases directly. residual then
		// aliases the interned arena, which is per-evaluation solver
		// scratch exactly like simplify's output was.
		if len(clauses) == 0 {
			return 1
		}
		for _, cl := range clauses {
			if len(cl) == 0 {
				return 0
			}
		}
	}
	if p, ok := s.directProb(residual); ok {
		return p
	}
	if s.opt.NoComponents {
		return s.branch(residual, s.pickVar(residual))
	}
	comps := s.components(residual)
	p := 1.0
	for _, comp := range comps {
		p *= s.componentProb(comp, cache)
		if p == 0 {
			return 0
		}
	}
	return p
}

// componentProb returns Pr(comp) for one connected component, consulting
// the cache for components that would need branching. Components decided
// by the direct independence rule are recomputed every time: they cost as
// little as fingerprinting them would, and caching them would crowd out
// entries that save real branching work.
//
// Branched components are solved by the compiled bitset clause-state
// engine (state.go) unless Options.LegacyEngine re-selects the original
// clause-rewriting recursion; the two are bit-identical. When
// Options.ApproxThreshold is set and the component holds more distinct
// variables than the threshold, the exact count is replaced by the
// generalised ApproxCount estimator, seeded from the component's
// canonical fingerprint — the decision and the estimate are pure
// functions of the component, so results stay deterministic at any
// worker count, schedule, and cache state.
func (s *solver) componentProb(comp [][]cexpr, cache *ComponentCache) float64 {
	if p, ok := s.directProb(comp); ok {
		return p
	}
	key := s.fingerprint(comp, scalarKeyPrefix)
	if cache != nil {
		if p, ok := cache.lookup(key); ok {
			return p
		}
	}
	var p float64
	switch {
	case s.opt.ApproxThreshold > 0 && len(s.componentVars(comp)) > s.opt.ApproxThreshold:
		p = s.approxComponent(comp, key)
	case s.opt.LegacyEngine:
		p = s.branch(comp, s.pickVar(comp))
	default:
		p = s.stSolve(comp)
	}
	if cache != nil {
		cache.store(key, s.componentVars(comp), p)
	}
	return p
}

// adpll is Algorithm 3 over interned clauses.
func (s *solver) adpll(clauses [][]cexpr) float64 {
	residual, value, decided := s.simplify(clauses)
	if decided {
		if value {
			return 1
		}
		return 0
	}

	// The direct rule over the whole residual is the common case after
	// branching (clauses become pairwise variable-disjoint), so try it
	// before paying for component analysis.
	if p, ok := s.directProb(residual); ok {
		return p
	}
	if s.opt.NoComponents {
		return s.branch(residual, s.pickVar(residual))
	}

	comps := s.components(residual)
	if len(comps) == 1 {
		return s.branch(residual, s.pickVar(residual))
	}
	p := 1.0
	for _, comp := range comps {
		if direct, ok := s.directProb(comp); ok {
			p *= direct
			continue
		}
		p *= s.branch(comp, s.pickVar(comp))
		if p == 0 {
			return 0
		}
	}
	return p
}

// branch enumerates the values of var id v weighted by its distribution.
func (s *solver) branch(clauses [][]cexpr, v int32) float64 {
	total := 0.0
	for a, pa := range s.dists[v] {
		if pa == 0 {
			continue
		}
		s.assign[v] = int32(a)
		total += pa * s.adpll(clauses)
	}
	s.assign[v] = -1
	return total
}

// pickVar returns the most frequent variable id of the clause set (first
// one under the BranchFirstVar ablation).
func (s *solver) pickVar(clauses [][]cexpr) int32 {
	s.epoch++
	best, bestCount := int32(-1), 0
	visit := func(v int32) {
		if s.seenEp[v] != s.epoch {
			s.seenEp[v] = s.epoch
			s.counts[v] = 0
		}
		s.counts[v]++
		if s.counts[v] > bestCount {
			best, bestCount = v, s.counts[v]
		}
	}
	for _, cl := range clauses {
		for _, e := range cl {
			if s.opt.BranchFirstVar {
				return e.x
			}
			visit(e.x)
			if e.y >= 0 {
				visit(e.y)
			}
		}
	}
	return best
}

// directProb applies the independent-conjunction and general-disjunction
// rules when every variable occurs exactly once across the clause set.
func (s *solver) directProb(clauses [][]cexpr) (p float64, ok bool) {
	s.epoch++
	for _, cl := range clauses {
		for _, e := range cl {
			if s.seenEp[e.x] == s.epoch {
				return 0, false
			}
			s.seenEp[e.x] = s.epoch
			if e.y >= 0 {
				if s.seenEp[e.y] == s.epoch {
					return 0, false
				}
				s.seenEp[e.y] = s.epoch
			}
		}
	}
	p = 1.0
	for _, cl := range clauses {
		qAllFalse := 1.0
		for _, e := range cl {
			qAllFalse *= 1 - s.exprProb(e)
		}
		p *= 1 - qAllFalse
	}
	return p, true
}

// components groups clauses into connected components of the clause-
// variable incidence graph using an epoch-versioned owner table.
func (s *solver) components(clauses [][]cexpr) [][][]cexpr {
	parent := make([]int, len(clauses))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	s.epoch++
	claim := func(v int32, clause int) {
		if s.ownerEp[v] == s.epoch {
			ra, rb := find(s.owner[v]), find(clause)
			if ra != rb {
				parent[ra] = rb
			}
			return
		}
		s.ownerEp[v] = s.epoch
		s.owner[v] = clause
	}
	for i, cl := range clauses {
		for _, e := range cl {
			claim(e.x, i)
			if e.y >= 0 {
				claim(e.y, i)
			}
		}
	}

	// Single component fast path.
	root := find(0)
	single := true
	for i := 1; i < len(clauses); i++ {
		if find(i) != root {
			single = false
			break
		}
	}
	if single {
		return [][][]cexpr{clauses}
	}

	// Compact the root ids into group indices without map hashing.
	groupOf := make([]int, len(clauses))
	nGroups := 0
	for i := range clauses {
		r := find(i)
		if r == i {
			groupOf[i] = nGroups
			nGroups++
		}
	}
	out := make([][][]cexpr, nGroups)
	for i, cl := range clauses {
		g := groupOf[find(i)]
		out[g] = append(out[g], cl)
	}
	return out
}
