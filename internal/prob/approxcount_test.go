package prob

import (
	"math"
	"math/rand"
	"testing"

	"bayescrowd/internal/ctable"
)

func TestApproxCountExample3(t *testing.T) {
	cond, dists := example3()
	ev := NewEvaluator(dists)
	rng := rand.New(rand.NewSource(1))
	// ApproxCount is a noisy, downward-biased estimator: fixing each
	// level's variable to the *empirically* most frequent satisfying
	// value overestimates that value's conditional share (argmax bias),
	// so the telescoped product tends to come in low — Wei & Selman sell
	// the algorithm as a high-confidence lower bound, and this inaccuracy
	// is exactly why §5 reports it losing to ADPLL. Assert the estimate
	// lands in a bracket around the exact 0.823 that admits the known
	// downward bias but rejects nonsense.
	const runs = 60
	sum := 0.0
	for i := 0; i < runs; i++ {
		sum += ev.ApproxCount(cond, 120, rng)
	}
	got := sum / runs
	if got < 0.45 || got > 0.95 {
		t.Fatalf("ApproxCount mean = %v, want a biased-low estimate in [0.45, 0.95] around 0.823", got)
	}
}

func TestApproxCountDecidedAndValidation(t *testing.T) {
	ev := NewEvaluator(Dists{})
	rng := rand.New(rand.NewSource(2))
	if got := ev.ApproxCount(ctable.True(), 10, rng); got != 1 {
		t.Fatalf("ApproxCount(true) = %v", got)
	}
	if got := ev.ApproxCount(ctable.False(), 10, rng); got != 0 {
		t.Fatalf("ApproxCount(false) = %v", got)
	}
	cond, dists := example3()
	defer func() {
		if recover() == nil {
			t.Fatal("ApproxCount with 0 samples did not panic")
		}
	}()
	NewEvaluator(dists).ApproxCount(cond, 0, rng)
}

func TestApproxCountIndependentFormulaExact(t *testing.T) {
	// A fully independent formula short-circuits through the direct rule,
	// so the estimate is exact.
	x, y := v(0, 0), v(1, 0)
	cond := ctable.FromClauses([][]ctable.Expr{
		{ctable.LTConst(x, 2)},
		{ctable.GTConst(y, 1)},
	})
	ev := NewEvaluator(Dists{x: uniform(4), y: uniform(4)})
	want := 0.5 * 0.5
	got := ev.ApproxCount(cond, 10, rand.New(rand.NewSource(3)))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ApproxCount = %v, want exactly %v", got, want)
	}
}

func TestApproxCountUnsatisfiableGoesToZero(t *testing.T) {
	// (x < 2) ∧ (x > 5) over 0..7 is unsatisfiable; the estimator must
	// return 0 (simplification or failed sampling).
	x, y := v(0, 0), v(1, 0)
	cond := ctable.FromClauses([][]ctable.Expr{
		{ctable.LTConst(x, 2), ctable.LTConst(y, 1)},
		{ctable.GTConst(x, 5), ctable.LTConst(y, 1)},
		{ctable.GTConst(y, 0)},
	})
	ev := NewEvaluator(Dists{x: uniform(8), y: uniform(8)})
	if want := ev.Prob(cond.Clone()); want != 0 {
		t.Fatalf("fixture not unsatisfiable: Pr = %v", want)
	}
	got := ev.ApproxCount(cond, 50, rand.New(rand.NewSource(4)))
	if got != 0 {
		t.Fatalf("ApproxCount = %v on unsatisfiable formula", got)
	}
}

func TestApproxCountTracksADPLLOnRandomFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	var worst float64
	for trial := 0; trial < 25; trial++ {
		cond, dists := randomCondition(rng)
		if _, decided := cond.Decided(); decided {
			continue
		}
		ev := NewEvaluator(dists)
		want := ev.Prob(cond.Clone())
		const runs = 40
		sum := 0.0
		for i := 0; i < runs; i++ {
			sum += ev.ApproxCount(cond.Clone(), 80, rng)
		}
		got := sum / runs
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
		if math.Abs(got-want) > 0.25 {
			t.Fatalf("trial %d: ApproxCount mean %v vs exact %v (formula %v)", trial, got, want, cond)
		}
	}
	t.Logf("worst mean absolute deviation: %.3f", worst)
}
