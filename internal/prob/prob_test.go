package prob

import (
	"math"
	"math/rand"
	"testing"

	"bayescrowd/internal/ctable"
)

func v(obj, attr int) ctable.Var { return ctable.Var{Obj: obj, Attr: attr} }

func uniform(n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = 1 / float64(n)
	}
	return d
}

// example3 builds φ(o5) from the paper with the probability distributions
// of Example 3. Hand calculation (inclusion–exclusion over the two shared-
// variable clauses) gives Pr(φ(o5)) = 0.823, the value reported in the
// paper.
func example3() (*ctable.Condition, Dists) {
	x2, x3, x4 := v(4, 1), v(4, 2), v(4, 3) // Var(o5,a2), Var(o5,a3), Var(o5,a4)
	y := v(1, 1)                            // Var(o2,a2)
	cond := ctable.FromClauses([][]ctable.Expr{
		{ctable.GTConst(x2, 2), ctable.GTConst(x3, 3), ctable.GTConst(x4, 4)},
		{ctable.GTVar(x2, y), ctable.GTConst(x3, 2), ctable.GTConst(x4, 2)},
	})
	dists := Dists{
		x2: uniform(10),
		x3: uniform(8),
		x4: {0.1, 0.1, 0.2, 0.2, 0.3, 0.1},
		y:  uniform(10),
	}
	return cond, dists
}

func TestPaperExample3(t *testing.T) {
	cond, dists := example3()
	ev := NewEvaluator(dists)
	const want = 0.823
	if got := ev.Prob(cond); math.Abs(got-want) > 1e-9 {
		t.Errorf("ADPLL Pr(φ(o5)) = %v, want %v", got, want)
	}
	if got := ev.Naive(cond); math.Abs(got-want) > 1e-9 {
		t.Errorf("Naive Pr(φ(o5)) = %v, want %v", got, want)
	}
	mc := ev.MonteCarlo(cond, 200000, rand.New(rand.NewSource(1)))
	if math.Abs(mc-want) > 0.01 {
		t.Errorf("MonteCarlo Pr(φ(o5)) = %v, want ~%v", mc, want)
	}
}

func TestDecidedConditions(t *testing.T) {
	ev := NewEvaluator(Dists{})
	if got := ev.Prob(ctable.True()); got != 1 {
		t.Errorf("Prob(true) = %v", got)
	}
	if got := ev.Prob(ctable.False()); got != 0 {
		t.Errorf("Prob(false) = %v", got)
	}
	if got := ev.Naive(ctable.True()); got != 1 {
		t.Errorf("Naive(true) = %v", got)
	}
	if got := ev.MonteCarlo(ctable.False(), 10, rand.New(rand.NewSource(1))); got != 0 {
		t.Errorf("MonteCarlo(false) = %v", got)
	}
	if got := ev.StateSpace(ctable.True()); got != 0 {
		t.Errorf("StateSpace(true) = %v", got)
	}
}

func TestExprProb(t *testing.T) {
	x, y := v(0, 0), v(1, 0)
	ev := NewEvaluator(Dists{
		x: {0.1, 0.2, 0.3, 0.4},
		y: {0.25, 0.25, 0.25, 0.25},
	})
	cases := []struct {
		e    ctable.Expr
		want float64
	}{
		{ctable.LTConst(x, 2), 0.3},
		{ctable.LTConst(x, 0), 0},
		{ctable.LTConst(x, 4), 1},
		{ctable.GTConst(x, 1), 0.7},
		{ctable.GTConst(x, 3), 0},
		{ctable.GTConst(x, -1), 1},
		// Pr(X>Y) = Σ_a px[a]·CDF_y(a-1) = 0.2·.25 + 0.3·.5 + 0.4·.75 = 0.5.
		{ctable.GTVar(x, y), 0.5},
	}
	for _, tc := range cases {
		if got := ev.ExprProb(tc.e); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ExprProb(%v) = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestExprProbPanicsWithoutDist(t *testing.T) {
	ev := NewEvaluator(Dists{})
	defer func() {
		if recover() == nil {
			t.Fatal("missing distribution did not panic")
		}
	}()
	ev.ExprProb(ctable.LTConst(v(9, 9), 1))
}

// randomDist returns a normalised random distribution of the given size.
func randomDist(rng *rand.Rand, n int) []float64 {
	d := make([]float64, n)
	sum := 0.0
	for i := range d {
		d[i] = rng.Float64() + 0.01
		sum += d[i]
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}

// randomCondition builds a random CNF over a small variable pool, with a
// distribution per variable.
func randomCondition(rng *rand.Rand) (*ctable.Condition, Dists) {
	nVars := 2 + rng.Intn(5)
	vars := make([]ctable.Var, nVars)
	dists := Dists{}
	for i := range vars {
		vars[i] = v(i, rng.Intn(3))
		dists[vars[i]] = randomDist(rng, 2+rng.Intn(6))
	}
	nClauses := 1 + rng.Intn(4)
	clauses := make([][]ctable.Expr, 0, nClauses)
	for c := 0; c < nClauses; c++ {
		nExprs := 1 + rng.Intn(3)
		clause := make([]ctable.Expr, 0, nExprs)
		for k := 0; k < nExprs; k++ {
			x := vars[rng.Intn(nVars)]
			switch rng.Intn(3) {
			case 0:
				clause = append(clause, ctable.LTConst(x, rng.Intn(len(dists[x])+1)))
			case 1:
				clause = append(clause, ctable.GTConst(x, rng.Intn(len(dists[x]))))
			default:
				y := vars[rng.Intn(nVars)]
				if y == x {
					clause = append(clause, ctable.GTConst(x, rng.Intn(len(dists[x]))))
				} else {
					clause = append(clause, ctable.GTVar(x, y))
				}
			}
		}
		clauses = append(clauses, clause)
	}
	return ctable.FromClauses(clauses), dists
}

func TestADPLLMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 300; trial++ {
		cond, dists := randomCondition(rng)
		ev := NewEvaluator(dists)
		want := ev.Naive(cond)
		if got := ev.Prob(cond); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: ADPLL = %v, Naive = %v for %v", trial, got, want, cond)
		}
		// Ablation variants must agree too.
		noComp := &Evaluator{Dists: dists, Opt: Options{NoComponents: true}}
		if got := noComp.Prob(cond.Clone()); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: ADPLL(NoComponents) = %v, Naive = %v", trial, got, want)
		}
		firstVar := &Evaluator{Dists: dists, Opt: Options{BranchFirstVar: true}}
		if got := firstVar.Prob(cond.Clone()); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: ADPLL(BranchFirstVar) = %v, Naive = %v", trial, got, want)
		}
	}
}

func TestProbInUnitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 200; trial++ {
		cond, dists := randomCondition(rng)
		ev := NewEvaluator(dists)
		p := ev.Prob(cond)
		if p < 0 || p > 1+1e-12 {
			t.Fatalf("trial %d: Pr = %v outside [0,1]", trial, p)
		}
	}
}

func TestIndependentClausesDirectRule(t *testing.T) {
	// Two clauses over disjoint variables: Pr = (1-(1-p1)(1-p2)) · p3.
	x, y, z := v(0, 0), v(1, 0), v(2, 0)
	ev := NewEvaluator(Dists{
		x: {0.5, 0.5},
		y: {0.25, 0.75},
		z: {0.1, 0.9},
	})
	cond := ctable.FromClauses([][]ctable.Expr{
		{ctable.GTConst(x, 0), ctable.GTConst(y, 0)}, // 1-(0.5)(0.25) = 0.875
		{ctable.GTConst(z, 0)},                       // 0.9
	})
	want := 0.875 * 0.9
	if got := ev.Prob(cond); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Prob = %v, want %v", got, want)
	}
}

func TestSharedVariableWithinClause(t *testing.T) {
	// (x<1 ∨ x>2) with x uniform over 4: Pr = P(x=0) + P(x=3) = 0.5.
	x := v(0, 0)
	ev := NewEvaluator(Dists{x: uniform(4)})
	cond := ctable.FromClauses([][]ctable.Expr{
		{ctable.LTConst(x, 1), ctable.GTConst(x, 2)},
	})
	if got := ev.Prob(cond); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Prob = %v, want 0.5", got)
	}
}

func TestZeroProbabilityValuesSkipped(t *testing.T) {
	// A variable whose distribution already excludes some values (crowd
	// answer narrowed it): branching must skip them.
	x := v(0, 0)
	ev := NewEvaluator(Dists{x: {0, 0, 0.5, 0.5}})
	cond := ctable.FromClauses([][]ctable.Expr{
		{ctable.LTConst(x, 2)},
		{ctable.GTConst(x, 0)}, // shares x: forces branching
	})
	if got := ev.Prob(cond); got != 0 {
		t.Fatalf("Prob = %v, want 0 (x<2 impossible)", got)
	}
}

func TestStateSpace(t *testing.T) {
	cond, dists := example3()
	ev := NewEvaluator(dists)
	if got := ev.StateSpace(cond); got != 10*8*6*10 {
		t.Fatalf("StateSpace = %v, want 4800", got)
	}
}

func TestCondProbsTotalProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 100; trial++ {
		cond, dists := randomCondition(rng)
		if _, decided := cond.Decided(); decided {
			continue
		}
		ev := NewEvaluator(dists)
		exprs := cond.Exprs()
		e := exprs[rng.Intn(len(exprs))]
		pe, pPhi, pTrue, pFalse := ev.CondProbs(cond, e)
		// Law of total probability.
		if recon := pe*pTrue + (1-pe)*pFalse; pe > 1e-9 && pe < 1-1e-9 && math.Abs(recon-pPhi) > 1e-6 {
			t.Fatalf("trial %d: pe·pT + (1-pe)·pF = %v, want %v (pe=%v)", trial, recon, pPhi, pe)
		}
		for _, p := range []float64{pe, pPhi, pTrue, pFalse} {
			if p < 0 || p > 1 {
				t.Fatalf("trial %d: probability %v outside [0,1]", trial, p)
			}
		}
	}
}

func TestCondProbsExample3(t *testing.T) {
	cond, dists := example3()
	ev := NewEvaluator(dists)
	// Condition on e = Var(o5,a4) > 4 (probability 0.1).
	e := ctable.GTConst(v(4, 3), 4)
	pe, pPhi, pTrue, pFalse := ev.CondProbs(cond, e)
	if math.Abs(pe-0.1) > 1e-12 {
		t.Fatalf("pe = %v, want 0.1", pe)
	}
	if math.Abs(pPhi-0.823) > 1e-9 {
		t.Fatalf("pPhi = %v, want 0.823", pPhi)
	}
	// With x4 = 5 both clauses' x4 disjuncts hold: φ true regardless.
	if math.Abs(pTrue-1) > 1e-9 {
		t.Fatalf("pTrue = %v, want 1", pTrue)
	}
	if recon := pe*pTrue + (1-pe)*pFalse; math.Abs(recon-pPhi) > 1e-9 {
		t.Fatalf("total probability violated: %v vs %v", recon, pPhi)
	}
}

func TestMonteCarloPanicsOnBadSamples(t *testing.T) {
	cond, dists := example3()
	ev := NewEvaluator(dists)
	defer func() {
		if recover() == nil {
			t.Fatal("MonteCarlo(0 samples) did not panic")
		}
	}()
	ev.MonteCarlo(cond, 0, rand.New(rand.NewSource(1)))
}

func BenchmarkADPLLExample3(b *testing.B) {
	cond, dists := example3()
	ev := NewEvaluator(dists)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Prob(cond)
	}
}

func BenchmarkNaiveExample3(b *testing.B) {
	cond, dists := example3()
	ev := NewEvaluator(dists)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Naive(cond)
	}
}
