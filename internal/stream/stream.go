// Package stream answers skyline-probability queries over a sliding
// window of an incomplete data stream. Each Tick absorbs a batch of
// arrivals, retires the objects the window policy expires, and brings
// the per-object skyline probabilities back up to date — incrementally:
// the DynCTable patches only the conditions an edit actually touches,
// the ComponentCache keeps every untouched component's probability, and
// only the dirty conditions re-enter the solver.
//
// The engine also hosts its own correctness anchor. Config.Rebuild
// selects the rebuild-per-tick baseline — a fresh batch c-table and a
// fresh evaluator over the whole window every tick — and the two modes
// produce identical answer sets and probabilities at every tick (the
// equivalence tests assert it across solver engines and worker counts).
// The sustained-throughput benchmark measures the same pair.
//
// Concurrency follows the repo's single-writer contract: Tick mutates
// the table, the distributions and the cache strictly between the
// parallel Pr(φ) fan-outs it launches, so the trace is deterministic
// and the probabilities bit-identical at any worker count.
package stream

import (
	"fmt"
	"sort"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/obs"
	"bayescrowd/internal/parallel"
	"bayescrowd/internal/prob"
)

// DistFunc supplies the prior distribution of one missing cell: a
// normalised slice over the attribute's levels. It must be a pure
// function of (id, attr) — both engine modes call it, at different
// times, and equivalence depends on them seeing the same priors.
type DistFunc func(id, attr, levels int) []float64

// Uniform is the DistFunc assigning every level equal probability — the
// paper's no-preprocessing prior.
func Uniform(_, _, levels int) []float64 {
	u := make([]float64, levels)
	for i := range u {
		u[i] = 1 / float64(levels)
	}
	return u
}

// Window is the eviction policy: an object leaves when the window holds
// more than Count live objects (oldest first) or when its arrival
// timestamp falls Span or more behind the current tick's time. Zero
// disables a bound; both zero means the window only ever grows.
type Window struct {
	// Count is the maximum number of live objects (0 = unbounded).
	Count int
	// Span is the maximum age, in the caller's timestamp units, an
	// object may reach (0 = unbounded). An object inserted at time t is
	// evicted by the first tick with now-t >= Span.
	Span int64
}

// Config assembles a streaming engine.
type Config struct {
	// Attrs is the stream's attribute schema.
	Attrs []dataset.Attribute
	// Window is the eviction policy.
	Window Window
	// TopK bounds TickResult.TopK (0 disables the ranking).
	TopK int
	// Dist supplies missing-cell priors; nil means Uniform.
	Dist DistFunc
	// Workers bounds the Pr(φ) fan-out (<= 0: one per CPU).
	Workers int
	// CacheSize caps the component cache (<= 0: prob.DefaultCacheSize).
	CacheSize int
	// NoCache disables component memoization entirely.
	NoCache bool
	// LegacyEngine selects the original clause-rewriting solver, for the
	// cross-engine equivalence tests.
	LegacyEngine bool
	// Rebuild selects the rebuild-per-tick baseline: a fresh batch
	// c-table, evaluator and cache over the whole window every tick.
	// It is the engine's correctness anchor and the benchmark's
	// denominator, not a production mode.
	Rebuild bool
	// Obs, when non-nil, receives the engine's trace events
	// (stream.insert / stream.evict / stream.tick), stamped with the
	// tick number as the logical round.
	Obs *obs.Recorder
	// Metrics, when non-nil, receives the engine's counters.
	Metrics *obs.Registry
}

// Ranked is one entry of a probability ranking.
type Ranked struct {
	// ID is the object's stream id.
	ID int
	// P is Pr(φ) — the object's skyline probability.
	P float64
}

// TickResult reports what one Tick did.
type TickResult struct {
	// Inserted holds the stream ids assigned to the tick's arrivals, in
	// arrival order.
	Inserted []int
	// Evicted holds the ids the window policy retired, ascending.
	Evicted []int
	// Recomputed counts the conditions whose probability was re-solved
	// this tick (every live condition in Rebuild mode).
	Recomputed int
	// InvalidatedEntries counts the cached components the tick's
	// evictions dropped (0 in Rebuild mode, whose cache is per-tick).
	InvalidatedEntries int
	// Answers holds the live ids with Pr(φ) > 0.5 — the paper's answer
	// threshold — ascending.
	Answers []int
	// TopK holds the Config.TopK highest-probability live objects,
	// descending by probability with ties broken by ascending id.
	TopK []Ranked
}

// entry is one live window object: its stream id, arrival time, and (in
// Rebuild mode, which has no DynCTable to hold them) its cells.
type entry struct {
	id    int
	ts    int64
	cells []dataset.Cell
}

// Engine maintains the window. It is single-writer: Tick and the
// accessors must not be called concurrently.
type Engine struct {
	cfg   Config
	queue []entry // live objects, arrival order = ascending id
	tick  int
	last  int64
	begun bool
	// nextID numbers arrivals in Rebuild mode, mirroring the DynCTable's
	// monotonic ids so both modes name objects alike.
	nextID int
	// probs holds Pr(φ) per live id — maintained across ticks
	// incrementally, rebuilt whole under Config.Rebuild.
	probs map[int]float64

	// Incremental mode state; nil under Config.Rebuild.
	tbl *ctable.DynCTable
	ev  *prob.Evaluator

	cTicks, cInserts, cEvicts, cRecomp, cInvalEntries *obs.Counter
}

// New validates the configuration and returns an empty engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Attrs) == 0 {
		return nil, fmt.Errorf("stream: empty attribute schema")
	}
	if cfg.Window.Count < 0 || cfg.Window.Span < 0 {
		return nil, fmt.Errorf("stream: negative window bound %+v", cfg.Window)
	}
	if cfg.Dist == nil {
		cfg.Dist = Uniform
	}
	e := &Engine{cfg: cfg, probs: map[int]float64{}}
	if reg := cfg.Metrics; reg != nil {
		e.cTicks = reg.Counter("stream.ticks")
		e.cInserts = reg.Counter("stream.inserts")
		e.cEvicts = reg.Counter("stream.evicts")
		e.cRecomp = reg.Counter("stream.recomputed")
		e.cInvalEntries = reg.Counter("cache.invalidated.entries")
	}
	if !cfg.Rebuild {
		capacity := cfg.Window.Count
		if capacity <= 0 {
			capacity = 64
		}
		e.tbl = ctable.NewDynCTable(cfg.Attrs, capacity)
		e.ev = prob.NewEvaluator(prob.Dists{})
		e.ev.Opt.LegacyEngine = cfg.LegacyEngine
		e.ev.Opt.NoCache = cfg.NoCache
		if !cfg.NoCache {
			e.ev.Cache = prob.NewComponentCache(cfg.CacheSize)
		}
	}
	return e, nil
}

// Len returns the number of live window objects.
func (e *Engine) Len() int { return len(e.queue) }

// Tick advances the stream clock to now (non-decreasing across calls),
// absorbs the arrivals in order, retires what the window policy
// expires, and re-evaluates every condition the edits touched. It
// returns the tick's delta and the refreshed answer set.
func (e *Engine) Tick(now int64, arrivals [][]dataset.Cell) TickResult {
	e.beginTick(now)
	var res TickResult
	if e.cfg.Rebuild {
		res = e.tickRebuild(now, arrivals)
	} else {
		res = e.tickIncremental(now, arrivals)
	}
	e.endTick(len(arrivals), &res)
	return res
}

// beginTick advances the logical clock: the monotonicity check, the tick
// counter, and the recorder's round stamp. Shared by the machine-only
// Tick and the crowd loop's, so both stamp events identically.
func (e *Engine) beginTick(now int64) {
	if e.begun && now < e.last {
		panic(fmt.Sprintf("stream: time went backwards (%d after %d)", now, e.last))
	}
	e.begun = true
	e.last = now
	e.tick++
	e.cfg.Obs.SetRound(e.tick)
	e.cTicks.Add(1)
}

// endTick books the tick's counters and closes it on the trace.
func (e *Engine) endTick(arrivals int, res *TickResult) {
	e.cInserts.Add(int64(len(res.Inserted)))
	e.cEvicts.Add(int64(len(res.Evicted)))
	e.cRecomp.Add(int64(res.Recomputed))
	e.cInvalEntries.Add(int64(res.InvalidatedEntries))
	e.cfg.Obs.Emit(obs.Event{Kind: obs.KindStreamTick, N: arrivals, M: res.Recomputed})
}

// expire pops the window's expired prefix (the queue is in arrival
// order, so both policies retire from the front) and returns it.
func (e *Engine) expire(now int64, arriving int) []entry {
	keep := len(e.queue) + arriving
	cut := 0
	for cut < len(e.queue) {
		over := e.cfg.Window.Count > 0 && keep-cut > e.cfg.Window.Count
		aged := e.cfg.Window.Span > 0 && now-e.queue[cut].ts >= e.cfg.Window.Span
		if !over && !aged {
			break
		}
		cut++
	}
	expired := e.queue[:cut:cut]
	e.queue = e.queue[cut:]
	return expired
}

func (e *Engine) tickIncremental(now int64, arrivals [][]dataset.Cell) TickResult {
	var res TickResult
	e.evictStep(now, len(arrivals), &res)
	e.insertStep(now, arrivals, &res, nil)
	e.reevalStep(&res)
	e.finish(&res)
	return res
}

// evictStep retires what the window policy expires: the objects leave
// the table, their distributions and cached probabilities are dropped,
// and their dead cache components are invalidated in one batch. It
// returns the retired variables so the crowd loop can retract the
// knowledge recorded about them.
func (e *Engine) evictStep(now int64, arriving int, res *TickResult) []ctable.Var {
	// Retire first — the policy is applied as if the arrivals were
	// already in, so a count-bound window never transiently exceeds its
	// capacity and both modes expire the same ids.
	var evictedVars []ctable.Var
	for _, en := range e.expire(now, arriving) {
		vars := e.tbl.Evict(en.id)
		for _, v := range vars {
			delete(e.ev.Dists, v)
		}
		evictedVars = append(evictedVars, vars...)
		delete(e.probs, en.id)
		res.Evicted = append(res.Evicted, en.id)
		e.cfg.Obs.Emit(obs.Event{Kind: obs.KindStreamEvict, N: en.id, M: len(vars)})
	}
	// One batched invalidation per tick: the retired variables can never
	// recur (ids are never reused), so their cached components are dead
	// weight the FIFO would otherwise evict one live entry at a time.
	if e.ev.Cache != nil && len(evictedVars) > 0 {
		res.InvalidatedEntries = e.ev.Cache.Invalidate(evictedVars...)
	}
	return evictedVars
}

// insertStep absorbs the tick's arrivals: each one enters the table,
// gets its missing-cell priors, and joins the live queue. onInsert,
// when non-nil, observes each arrival's id and variables right after
// its distributions exist — the crowd loop's hook for snapshotting the
// base priors it renormalises as answers land.
func (e *Engine) insertStep(now int64, arrivals [][]dataset.Cell, res *TickResult, onInsert func(id int, vars []ctable.Var)) {
	for _, cells := range arrivals {
		id, vars := e.tbl.Insert(cells)
		for _, v := range vars {
			e.ev.Dists[v] = e.cfg.Dist(id, v.Attr, e.cfg.Attrs[v.Attr].Levels)
		}
		if onInsert != nil {
			onInsert(id, vars)
		}
		e.queue = append(e.queue, entry{id: id, ts: now})
		res.Inserted = append(res.Inserted, id)
		e.cfg.Obs.Emit(obs.Event{Kind: obs.KindStreamInsert, N: id, M: e.tbl.DomSize(id)})
	}
}

// reevalStep re-solves exactly the conditions the tick's edits touched;
// everything else keeps its probability from earlier ticks.
func (e *Engine) reevalStep(res *TickResult) {
	dirty := e.tbl.DrainDirty()
	conds := make([]*ctable.Condition, len(dirty))
	for i, id := range dirty {
		conds[i] = e.tbl.Cond(id)
	}
	ps := e.ev.ProbAll(conds, parallel.Workers(e.cfg.Workers))
	for i, id := range dirty {
		e.probs[id] = ps[i]
	}
	res.Recomputed = len(dirty)
}

func (e *Engine) tickRebuild(now int64, arrivals [][]dataset.Cell) TickResult {
	var res TickResult
	for _, en := range e.expire(now, len(arrivals)) {
		res.Evicted = append(res.Evicted, en.id)
		e.cfg.Obs.Emit(obs.Event{Kind: obs.KindStreamEvict, N: en.id, M: len(ctable.MissingVars(en.id, en.cells, nil))})
	}
	for _, cells := range arrivals {
		id := e.nextID
		e.nextID++
		e.queue = append(e.queue, entry{id: id, ts: now, cells: append([]dataset.Cell(nil), cells...)})
		res.Inserted = append(res.Inserted, id)
		e.cfg.Obs.Emit(obs.Event{Kind: obs.KindStreamInsert, N: id})
	}

	// The whole window, from scratch: batch c-table, fresh distributions
	// keyed by window index, fresh evaluator and cache.
	w := dataset.New(e.cfg.Attrs)
	dists := prob.Dists{}
	for i, en := range e.queue {
		w.MustAppend(dataset.Object{ID: fmt.Sprintf("s%d", en.id), Cells: en.cells})
		for j, c := range en.cells {
			if c.Missing {
				dists[ctable.Var{Obj: i, Attr: j}] = e.cfg.Dist(en.id, j, e.cfg.Attrs[j].Levels)
			}
		}
	}
	ct := ctable.Build(w, ctable.BuildOptions{Alpha: 0, Workers: e.cfg.Workers})
	ev := prob.NewEvaluator(dists)
	ev.Opt.LegacyEngine = e.cfg.LegacyEngine
	ev.Opt.NoCache = e.cfg.NoCache
	if !e.cfg.NoCache {
		ev.Cache = prob.NewComponentCache(e.cfg.CacheSize)
	}
	ps := ev.ProbAll(ct.Conds, parallel.Workers(e.cfg.Workers))
	res.Recomputed = len(ps)
	e.probs = make(map[int]float64, len(e.queue))
	for i, en := range e.queue {
		e.probs[en.id] = ps[i]
	}

	e.finish(&res)
	return res
}

// finish derives the tick's answer set and ranking from the live
// probabilities.
func (e *Engine) finish(res *TickResult) {
	for _, en := range e.queue {
		if e.probs[en.id] > 0.5 {
			res.Answers = append(res.Answers, en.id)
		}
	}
	if e.cfg.TopK > 0 {
		ranked := make([]Ranked, len(e.queue))
		for i, en := range e.queue {
			ranked[i] = Ranked{ID: en.id, P: e.probs[en.id]}
		}
		sort.Slice(ranked, func(a, b int) bool {
			if ranked[a].P > ranked[b].P {
				return true
			}
			if ranked[a].P < ranked[b].P {
				return false
			}
			return ranked[a].ID < ranked[b].ID
		})
		if len(ranked) > e.cfg.TopK {
			ranked = ranked[:e.cfg.TopK]
		}
		res.TopK = ranked
	}
}

// Snapshot returns the live objects' current probabilities, ascending
// by stream id.
func (e *Engine) Snapshot() []Ranked {
	out := make([]Ranked, len(e.queue))
	for i, en := range e.queue {
		out[i] = Ranked{ID: en.id, P: e.probs[en.id]}
	}
	return out
}

// CacheStats snapshots the incremental evaluator's component-cache
// counters (zero in Rebuild mode, whose caches live one tick).
func (e *Engine) CacheStats() prob.CacheStats {
	if e.ev == nil || e.ev.Cache == nil {
		return prob.CacheStats{}
	}
	return e.ev.Cache.Stats()
}
