package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"bayescrowd/internal/core"
	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/obs"
	"bayescrowd/internal/parallel"
	"bayescrowd/internal/prob"
)

// CrowdConfig assembles a streaming engine with an asynchronous crowd
// loop attached. The embedded Config drives the machine side — window
// policy, priors, solver — exactly as for the machine-only Engine; the
// crowd fields bound how the loop spends its budget against the clock.
type CrowdConfig struct {
	Config

	// Platform receives the loop's task batches. An AsyncPlatform's
	// seeded delays model a straggling crowd; any plain Platform is
	// adapted as a perfectly prompt one (crowd.PostDelayed). Required
	// when Budget is positive.
	Platform crowd.Platform
	// Budget is the total number of unit-priced tasks the run may
	// charge; 0 disables the crowd loop entirely (the engine then ticks
	// identically to the machine-only Engine). The budget is amortised
	// across ticks: each tick posts at most TasksPerTick tasks and
	// reserves a unit per in-flight task, charging only when an answer
	// for a still-live object arrives (charge-on-answer) and refunding
	// reservations for expired tasks and stale answers.
	Budget int
	// TasksPerTick caps the tasks posted per tick (<= 0: 1) — the
	// amortisation grain. A smaller value spreads the budget over more
	// of the stream; a larger one answers questions about the current
	// window faster.
	TasksPerTick int
	// TaskDeadline is how many ticks an unanswered task stays in flight:
	// a task posted at tick T expires at the start of tick
	// T+TaskDeadline+1 and its reservation is refunded (<= 0: 2 ticks).
	// Answers arriving within TaskDeadline ticks are ingested; later
	// ones are dropped as late.
	TaskDeadline int
	// Strategy picks the expression-selection strategy (core.FBS/UBS/
	// HHS); M is the HHS early-stop parameter, required positive for
	// HHS.
	Strategy core.Strategy
	M        int
	// Rng drives selection tie-breaking. Required when Budget is
	// positive; seed it — together with the platform's seed it fully
	// determines the run.
	Rng *rand.Rand
}

// CrowdLedger is the per-tick staleness ledger — what the crowd loop
// did and what the window's churn cost it. Totals accumulates the same
// fields over the run.
type CrowdLedger struct {
	// Posted counts tasks shipped this tick; PostFailed counts
	// round-level Post failures (the batch was not listed — the loop
	// re-selects next tick rather than blocking or retrying in-tick).
	Posted     int
	PostFailed int
	// Arrived counts answers delivered this tick, including the ones
	// discarded below; Absorbed counts answers folded into the
	// knowledge; Conflicts counts answers rejected for contradicting
	// earlier knowledge (charged — the crowd did the work).
	Arrived   int
	Absorbed  int
	Conflicts int
	// Stale counts answers discarded because their object left the
	// window first (refunded); Late counts answers for tasks that had
	// already expired (their expiry already refunded them); Expired
	// counts in-flight tasks retired overdue this tick (refunded).
	Stale   int
	Late    int
	Expired int
	// Charged and Refunded are the tick's budget movements in task
	// units: Charged for ingested answers (absorbed or conflicting),
	// Refunded for expired tasks and stale answers.
	Charged  int
	Refunded int
}

// add folds one tick's ledger into a running total.
func (l *CrowdLedger) add(t CrowdLedger) {
	l.Posted += t.Posted
	l.PostFailed += t.PostFailed
	l.Arrived += t.Arrived
	l.Absorbed += t.Absorbed
	l.Conflicts += t.Conflicts
	l.Stale += t.Stale
	l.Late += t.Late
	l.Expired += t.Expired
	l.Charged += t.Charged
	l.Refunded += t.Refunded
}

// CrowdTickResult is a TickResult plus the tick's crowd ledger and the
// loop's budget position at tick end.
type CrowdTickResult struct {
	TickResult
	// Crowd is this tick's staleness ledger.
	Crowd CrowdLedger
	// InFlight is the number of tasks awaiting an answer at tick end.
	InFlight int
	// BudgetSpent and BudgetReserved are the cumulative charge and the
	// outstanding reservations; Budget-BudgetSpent-BudgetReserved is
	// what the next tick may post.
	BudgetSpent    int
	BudgetReserved int
	// Lagging reports that the crowd fell behind the window this tick —
	// a task expired, an answer arrived stale or late, or a Post failed.
	// The answer set is still served every tick (the machine-only
	// skyline plus whatever answers did land in time); Lagging flags
	// that crowd work was lost to churn.
	Lagging bool
}

// inflightTask is one posted, not-yet-resolved task.
type inflightTask struct {
	task   crowd.Task
	posted int // tick it was posted
	done   bool
}

// scheduledAnswer is an answer in transit: delivered by the platform at
// post time, held until its arrival tick.
type scheduledAnswer struct {
	ans    crowd.Answer
	posted int
}

// CrowdEngine interleaves the budgeted crowd loop with window ticks.
// Each Tick runs evict → expire-overdue-tasks → ingest-arrived-answers
// → insert → select-and-post → re-evaluate: the machine side is the
// incremental Engine unchanged, and the crowd steps in between absorb
// whatever answers the (possibly lagging) crowd has produced. Every
// answer races the eviction of the object it describes; the loop
// detects the losers — by liveness check first, and structurally by
// Knowledge's Absorb-after-Forget tombstones — discards them, and
// refunds their reservation, so a lagging crowd degrades the run to the
// machine-only skyline instead of corrupting it.
//
// A tick never blocks on the crowd: Post failures are booked and
// retried by natural re-selection next tick, and unanswered tasks
// expire at their deadline. Determinism follows the engine's logical
// clock — the platform's delays, the selection tie-breaks and the trace
// are all pure functions of the seeds, byte-identical at any worker
// count. The one worker-sensitive observable is
// TickResult.InvalidatedEntries: UBS/HHS scoring at workers > 1
// precomputes utilities speculatively, warming the component cache with
// entries a sequential run never solves, so invalidation drops a
// different entry count. Probabilities, answers, ledgers and trace
// events are unaffected — the counter reports cache occupancy, not
// results.
//
// CrowdEngine is single-writer like Engine: Tick and the accessors must
// not be called concurrently.
type CrowdEngine struct {
	eng *Engine
	cfg CrowdConfig
	opt core.Options // selection knobs for core.SelectTasks

	know *ctable.Knowledge
	ab   *core.Absorption
	// base snapshots each variable's prior so absorption can renormalise
	// the effective distribution (in eng.ev.Dists) without losing it.
	base prob.Dists
	// conds caches each live object's simplified condition, refreshed at
	// the re-evaluate step; task selection reads it one step earlier, so
	// a tick's selection sees the window as of the previous
	// re-evaluation.
	conds map[int]*ctable.Condition

	inflight     []*inflightTask
	inflightExpr map[ctable.Expr]*inflightTask
	mailbox      map[int][]scheduledAnswer // arrival tick -> answers, post order

	spent    int
	reserved int
	totals   CrowdLedger

	touched     map[ctable.Var]bool
	distChanged map[ctable.Var]bool

	// Per-tick scratch maps, reused across ticks (Tick is a hot-loop
	// root): the in-flight variable set for selection, the answered-task
	// set of a post round, and the re-evaluation's stale-id set.
	busyScratch     map[ctable.Var]bool
	answeredScratch map[ctable.Expr]bool
	staleScratch    map[int]bool

	cPosted, cExpired, cAnswers, cStale *obs.Counter
}

// NewCrowd validates the configuration and returns an empty engine.
// The crowd loop needs the incremental engine's delta c-table, so
// Config.Rebuild is rejected when the budget is positive.
func NewCrowd(cfg CrowdConfig) (*CrowdEngine, error) {
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("stream: negative crowd budget %d", cfg.Budget)
	}
	if cfg.Budget > 0 {
		if cfg.Rebuild {
			return nil, fmt.Errorf("stream: the crowd loop requires the incremental engine (Rebuild is the machine-only baseline)")
		}
		if cfg.Platform == nil {
			return nil, fmt.Errorf("stream: crowd budget %d needs a Platform", cfg.Budget)
		}
		if cfg.Rng == nil {
			return nil, fmt.Errorf("stream: crowd budget %d needs a seeded Rng", cfg.Budget)
		}
		if cfg.Strategy == core.HHS && cfg.M <= 0 {
			return nil, fmt.Errorf("stream: HHS requires a positive M, got %d", cfg.M)
		}
	}
	if cfg.TasksPerTick <= 0 {
		cfg.TasksPerTick = 1
	}
	if cfg.TaskDeadline <= 0 {
		cfg.TaskDeadline = 2
	}
	eng, err := New(cfg.Config)
	if err != nil {
		return nil, err
	}
	c := &CrowdEngine{
		eng:          eng,
		cfg:          cfg,
		know:         ctable.NewKnowledge(dataset.New(cfg.Attrs)),
		base:         prob.Dists{},
		conds:        map[int]*ctable.Condition{},
		inflightExpr: map[ctable.Expr]*inflightTask{},
		mailbox:      map[int][]scheduledAnswer{},
		touched:      map[ctable.Var]bool{},
		distChanged:  map[ctable.Var]bool{},

		busyScratch:     map[ctable.Var]bool{},
		answeredScratch: map[ctable.Expr]bool{},
		staleScratch:    map[int]bool{},
	}
	c.ab = &core.Absorption{
		Know: c.know, Base: c.base, Eff: eng.ev.Dists,
		Touched: c.touched, DistChanged: c.distChanged,
	}
	c.opt = core.Options{
		Strategy: cfg.Strategy,
		M:        cfg.M,
		Workers:  parallel.Workers(cfg.Workers),
		NoCache:  cfg.NoCache,
		Rng:      cfg.Rng,
		Trace:    cfg.Obs,
	}
	if reg := cfg.Metrics; reg != nil {
		c.cPosted = reg.Counter("stream.tasks.posted")
		c.cExpired = reg.Counter("stream.tasks.expired")
		c.cAnswers = reg.Counter("stream.tasks.answered")
		c.cStale = reg.Counter("stream.tasks.stale")
	}
	return c, nil
}

// Len returns the number of live window objects.
func (c *CrowdEngine) Len() int { return c.eng.Len() }

// Snapshot returns the live objects' current probabilities, ascending
// by stream id.
func (c *CrowdEngine) Snapshot() []Ranked { return c.eng.Snapshot() }

// CacheStats snapshots the evaluator's component-cache counters.
func (c *CrowdEngine) CacheStats() prob.CacheStats { return c.eng.CacheStats() }

// Totals returns the run's accumulated crowd ledger.
func (c *CrowdEngine) Totals() CrowdLedger { return c.totals }

// Spent reports the budget units charged for ingested answers so far.
func (c *CrowdEngine) Spent() int { return c.spent }

// Reserved reports the budget units held by in-flight tasks — refunded
// if they expire or their answer arrives stale, charged otherwise.
func (c *CrowdEngine) Reserved() int { return c.reserved }

// InFlight returns the number of tasks awaiting an answer.
func (c *CrowdEngine) InFlight() int { return len(c.inflightExpr) }

// Tick advances the stream clock to now, runs the machine steps and the
// crowd steps interleaved, and returns the tick's delta, answer set and
// crowd ledger. It never blocks on the platform and never returns an
// error: crowd failures degrade the tick (see CrowdTickResult.Lagging),
// they do not stop the window.
func (c *CrowdEngine) Tick(now int64, arrivals [][]dataset.Cell) CrowdTickResult {
	e := c.eng
	e.beginTick(now)
	var res CrowdTickResult
	clear(c.touched)
	clear(c.distChanged)

	// Evict, then retract: the knowledge recorded about the retired
	// variables is tombstoned, so a stale answer racing this eviction
	// cannot be absorbed even if every later check were bypassed.
	evictedVars := e.evictStep(now, len(arrivals), &res.TickResult)
	if len(evictedVars) > 0 {
		c.know.Forget(evictedVars...)
		for _, v := range evictedVars {
			delete(c.base, v)
		}
	}
	for _, id := range res.Evicted {
		delete(c.conds, id)
	}

	c.expireTasks(&res.Crowd)
	c.ingest(&res.Crowd)

	e.insertStep(now, arrivals, &res.TickResult, func(id int, vars []ctable.Var) {
		for _, v := range vars {
			c.base[v] = e.ev.Dists[v]
		}
	})

	c.postStep(&res.Crowd)
	// A prompt crowd (delay 0) answers within the posting tick: drain
	// what just landed so this tick's re-evaluation already reflects it.
	c.ingest(&res.Crowd)

	c.reeval(&res.TickResult)
	e.finish(&res.TickResult)

	res.InFlight = len(c.inflightExpr)
	res.BudgetSpent = c.spent
	res.BudgetReserved = c.reserved
	res.Lagging = res.Crowd.Expired+res.Crowd.Stale+res.Crowd.Late+res.Crowd.PostFailed > 0
	c.totals.add(res.Crowd)
	e.endTick(len(arrivals), &res.TickResult)
	return res
}

// expireTasks retires overdue in-flight tasks and refunds their
// reservations. The slice is in posting order, so the scan and its
// events are deterministic.
func (c *CrowdEngine) expireTasks(led *CrowdLedger) {
	keep := c.inflight[:0]
	for _, p := range c.inflight {
		if p.done {
			continue // resolved earlier; drop from the scan
		}
		if c.eng.tick-p.posted <= c.cfg.TaskDeadline {
			keep = append(keep, p)
			continue
		}
		p.done = true
		delete(c.inflightExpr, p.task.Expr)
		c.reserved--
		led.Expired++
		led.Refunded++
		c.cExpired.Add(1)
		c.eng.cfg.Obs.Emit(obs.Event{Kind: obs.KindStreamTaskExpire, Task: p.task.Expr.String(), N: p.posted, M: 1})
	}
	c.inflight = keep
}

// ingest drains the answers due at the current tick, in the order they
// were scheduled. Each answer resolves its task and is then absorbed,
// discarded as stale (its object was evicted — refunded), or discarded
// as late (its task already expired — the expiry refunded it).
//
// Tasks are keyed by expression, so an answer from an expired posting
// resolves a later re-posting of the identical question: the question
// is the same, the answer is valid for it, and the still-slower second
// answer is then discarded as late. A badly lagging crowd thus salvages
// some work without double-charging.
func (c *CrowdEngine) ingest(led *CrowdLedger) {
	due := c.mailbox[c.eng.tick]
	if len(due) == 0 {
		return
	}
	delete(c.mailbox, c.eng.tick)
	for _, sa := range due {
		led.Arrived++
		expr := sa.ans.Task.Expr
		p, ok := c.inflightExpr[expr]
		if !ok || p.done {
			led.Late++
			c.cStale.Add(1)
			c.eng.cfg.Obs.Emit(obs.Event{Kind: obs.KindStreamTaskStale, Task: expr.String(), Note: "late", N: sa.posted})
			continue
		}
		p.done = true
		delete(c.inflightExpr, expr)
		if !c.liveExpr(expr) {
			c.reserved--
			led.Stale++
			led.Refunded++
			c.cStale.Add(1)
			c.eng.cfg.Obs.Emit(obs.Event{Kind: obs.KindStreamTaskStale, Task: expr.String(), Note: "evicted", N: sa.posted, M: 1})
			continue
		}
		err := c.ab.Absorb(expr, sa.ans.Rel)
		if err != nil && errors.Is(err, ctable.ErrForgotten) {
			// Unreachable behind the liveness check above (ids are never
			// reused), but the tombstone guard is the safety boundary:
			// treat it exactly like a detected stale answer.
			c.reserved--
			led.Stale++
			led.Refunded++
			c.cStale.Add(1)
			c.eng.cfg.Obs.Emit(obs.Event{Kind: obs.KindStreamTaskStale, Task: expr.String(), Note: "evicted", N: sa.posted, M: 1})
			continue
		}
		// Charge-on-answer: the crowd did the work, so conflicting
		// answers cost a unit too — only lost work (expiry, staleness)
		// is refunded.
		c.reserved--
		c.spent++
		led.Charged++
		c.cAnswers.Add(1)
		c.eng.cfg.Obs.Emit(obs.Event{Kind: obs.KindStreamTaskAnswer, Task: expr.String(), Rel: sa.ans.Rel.String(), N: sa.posted})
		if err != nil { // *ConflictError — the only other Absorb failure
			led.Conflicts++
			continue
		}
		led.Absorbed++
	}
}

// liveCond reports whether every variable the condition mentions
// belongs to a live window object.
func (c *CrowdEngine) liveCond(cond *ctable.Condition) bool {
	for _, v := range cond.Vars() {
		if !c.eng.tbl.Live(v.Obj) {
			return false
		}
	}
	return true
}

// liveExpr reports whether every object the expression mentions is
// still in the window.
func (c *CrowdEngine) liveExpr(e ctable.Expr) bool {
	if !c.eng.tbl.Live(e.X.Obj) {
		return false
	}
	if e.Kind == ctable.VarGTVar && !c.eng.tbl.Live(e.Y.Obj) {
		return false
	}
	return true
}

// postStep selects and posts this tick's task batch: at most
// TasksPerTick tasks, bounded by the unreserved budget, conflict-free
// against the in-flight set. Selection reads the conditions and
// probabilities as of the previous re-evaluation — this tick's arrivals
// become candidates next tick, which is the asynchrony doing its job.
func (c *CrowdEngine) postStep(led *CrowdLedger) {
	if c.cfg.Budget <= 0 || c.cfg.Platform == nil {
		return
	}
	k := c.cfg.TasksPerTick
	if spendable := c.cfg.Budget - c.spent - c.reserved; k > spendable {
		k = spendable
	}
	if k <= 0 {
		return
	}
	objs := make([]int, 0, len(c.conds))
	for id, cond := range c.conds {
		if _, decided := cond.Decided(); decided {
			continue
		}
		// The cached conditions date from the previous re-evaluation, so
		// one may still mention an object this tick just evicted. Skip
		// such candidates: scoring would re-solve a condition whose
		// evicted variables no longer have distributions, and any answer
		// bought about them would arrive stale anyway. The survivors
		// re-enter selection next tick, refreshed.
		if !c.liveCond(cond) {
			continue
		}
		objs = append(objs, id)
	}
	if len(objs) == 0 {
		return
	}
	sort.Ints(objs)

	busy := c.busyScratch
	clear(busy)
	var vbuf []ctable.Var
	for _, p := range c.inflight {
		if p.done {
			continue
		}
		vbuf = p.task.Expr.Vars(vbuf[:0])
		for _, v := range vbuf {
			busy[v] = true
		}
	}
	tasks := core.SelectTasks(c.opt, objs, func(id int) *ctable.Condition { return c.conds[id] },
		c.eng.ev, c.eng.probs, k, busy)
	// Selection reads last tick's conditions, which may still reference
	// an object this tick just evicted (they refresh at the re-evaluate
	// step, after posting). Asking about it would only buy a guaranteed
	// stale answer — skip rather than waste the budget.
	posted := tasks[:0]
	for _, t := range tasks {
		if c.liveExpr(t.Expr) {
			posted = append(posted, t)
		}
	}
	if len(posted) == 0 {
		return
	}

	answers, err := crowd.PostDelayed(c.cfg.Platform, posted)
	answered := c.answeredScratch
	clear(answered)
	for _, da := range answers {
		answered[da.Task.Expr] = true
	}
	for _, t := range posted {
		if err != nil && !answered[t.Expr] {
			// Round-level failure: tasks without an answer were never
			// listed — nothing to reserve, nothing in flight. The loop
			// re-selects next tick instead of blocking or retrying now.
			continue
		}
		p := &inflightTask{task: t, posted: c.eng.tick}
		c.inflight = append(c.inflight, p)
		c.inflightExpr[t.Expr] = p
		c.reserved++
		led.Posted++
		c.cPosted.Add(1)
		c.eng.cfg.Obs.Emit(obs.Event{Kind: obs.KindStreamTaskPost, Task: t.Expr.String(), N: c.eng.tick + c.cfg.TaskDeadline, M: 1})
	}
	if err != nil {
		led.PostFailed++
	}
	for _, da := range answers {
		delay := da.Delay
		if delay < 0 {
			delay = 0
		}
		c.mailbox[c.eng.tick+delay] = append(c.mailbox[c.eng.tick+delay],
			scheduledAnswer{ans: da.Answer, posted: c.eng.tick})
	}
}

// reeval refreshes the conditions the tick's edits and answers touched
// and re-solves their probabilities: the table's dirty set (structure
// changes from inserts and evictions) plus every live condition that
// mentions a variable an absorbed answer narrowed. With an empty
// knowledge the step is exactly the machine engine's — same dirty set,
// no simplification — so a zero-budget run is bit-identical to Engine.
func (c *CrowdEngine) reeval(res *TickResult) {
	e := c.eng
	dirty := e.tbl.DrainDirty()
	staleSet := c.staleScratch
	clear(staleSet)
	for _, id := range dirty {
		staleSet[id] = true
	}
	if len(c.touched) > 0 {
		for id, cond := range c.conds {
			if staleSet[id] {
				continue
			}
			for _, v := range cond.Vars() {
				if c.touched[v] {
					staleSet[id] = true
					break
				}
			}
		}
	}
	stale := make([]int, 0, len(staleSet))
	for id := range staleSet {
		stale = append(stale, id)
	}
	sort.Ints(stale)

	// Renormalised distributions stale their cached components; bump the
	// epochs in this single-writer gap, before the fan-out reads them.
	if e.ev.Cache != nil && len(c.distChanged) > 0 {
		vars := make([]ctable.Var, 0, len(c.distChanged))
		for v := range c.distChanged {
			//lint:ignore determinism Invalidate bumps per-variable epochs; the bump set matters, its order does not
			vars = append(vars, v)
		}
		res.InvalidatedEntries += e.ev.Cache.Invalidate(vars...)
	}

	conds := make([]*ctable.Condition, len(stale))
	knowEmpty := c.know.Empty()
	for i, id := range stale {
		cond := e.tbl.Cond(id)
		if !knowEmpty {
			cond.Simplify(c.know)
		}
		c.conds[id] = cond
		conds[i] = cond
	}
	ps := e.ev.ProbAll(conds, parallel.Workers(e.cfg.Workers))
	for i, id := range stale {
		e.probs[id] = ps[i]
	}
	res.Recomputed = len(stale)
}
