package stream

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/dataset"
)

func testAttrs(rng *rand.Rand) []dataset.Attribute {
	n := 2 + rng.Intn(3)
	attrs := make([]dataset.Attribute, n)
	for j := range attrs {
		attrs[j] = dataset.Attribute{Name: fmt.Sprintf("a%d", j+1), Levels: 2 + rng.Intn(5)}
	}
	return attrs
}

func randCells(rng *rand.Rand, attrs []dataset.Attribute, missRate float64) []dataset.Cell {
	cells := make([]dataset.Cell, len(attrs))
	for j, a := range attrs {
		if rng.Float64() < missRate {
			cells[j] = dataset.Unknown()
		} else {
			cells[j] = dataset.Known(rng.Intn(a.Levels))
		}
	}
	return cells
}

// script is a pre-drawn arrival schedule, so every engine under
// comparison consumes the identical stream.
type script struct {
	attrs []dataset.Attribute
	ticks [][][]dataset.Cell
}

func genScript(rng *rand.Rand, nTicks int) script {
	attrs := testAttrs(rng)
	miss := 0.1 + rng.Float64()*0.3
	ticks := make([][][]dataset.Cell, nTicks)
	for t := range ticks {
		batch := make([][]dataset.Cell, 1+rng.Intn(6))
		for i := range batch {
			batch[i] = randCells(rng, attrs, miss)
		}
		ticks[t] = batch
	}
	return script{attrs: attrs, ticks: ticks}
}

// TestIncrementalMatchesRebuildEveryTick is the PR's correctness anchor:
// the incremental engine and the rebuild-per-tick baseline produce the
// same answer sets, rankings and probabilities at every tick, under both
// solver engines and at any worker count.
func TestIncrementalMatchesRebuildEveryTick(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 4; trial++ {
		sc := genScript(rng, 25)
		window := Window{Count: 12 + rng.Intn(10)}
		for _, legacy := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				mk := func(rebuild bool) *Engine {
					e, err := New(Config{
						Attrs:        sc.attrs,
						Window:       window,
						TopK:         5,
						Workers:      workers,
						LegacyEngine: legacy,
						Rebuild:      rebuild,
					})
					if err != nil {
						t.Fatal(err)
					}
					return e
				}
				inc, reb := mk(false), mk(true)
				for tick, batch := range sc.ticks {
					now := int64(tick)
					ri := inc.Tick(now, batch)
					rr := reb.Tick(now, batch)
					tag := fmt.Sprintf("trial %d legacy=%v workers=%d tick %d", trial, legacy, workers, tick)
					if !reflect.DeepEqual(ri.Inserted, rr.Inserted) {
						t.Fatalf("%s: inserted %v vs %v", tag, ri.Inserted, rr.Inserted)
					}
					if !reflect.DeepEqual(ri.Evicted, rr.Evicted) {
						t.Fatalf("%s: evicted %v vs %v", tag, ri.Evicted, rr.Evicted)
					}
					if !reflect.DeepEqual(ri.Answers, rr.Answers) {
						t.Fatalf("%s: answer sets differ\n incremental: %v\n rebuild:     %v", tag, ri.Answers, rr.Answers)
					}
					si, sr := inc.Snapshot(), reb.Snapshot()
					if len(si) != len(sr) {
						t.Fatalf("%s: snapshot sizes %d vs %d", tag, len(si), len(sr))
					}
					for i := range si {
						if si[i].ID != sr[i].ID || math.Abs(si[i].P-sr[i].P) > 1e-9 {
							t.Fatalf("%s: Pr(φ) diverges at %v vs %v", tag, si[i], sr[i])
						}
					}
					if !reflect.DeepEqual(ri.TopK, rr.TopK) {
						t.Fatalf("%s: rankings differ\n incremental: %v\n rebuild:     %v", tag, ri.TopK, rr.TopK)
					}
				}
			}
		}
	}
}

// TestWorkerCountInvariance pins the fan-out determinism contract on the
// incremental engine itself: snapshots are bit-identical at any worker
// count.
func TestWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	sc := genScript(rng, 20)
	mk := func(workers int) *Engine {
		e, err := New(Config{Attrs: sc.attrs, Window: Window{Count: 16}, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	seq, par := mk(1), mk(8)
	for tick, batch := range sc.ticks {
		seq.Tick(int64(tick), batch)
		par.Tick(int64(tick), batch)
		if !reflect.DeepEqual(seq.Snapshot(), par.Snapshot()) {
			t.Fatalf("tick %d: snapshots differ between workers=1 and workers=8", tick)
		}
	}
}

// TestCacheInvarianceAndInvalidation checks that the cache changes no
// probability and that evictions actually drop the dead entries.
func TestCacheInvarianceAndInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	sc := genScript(rng, 20)
	mk := func(noCache bool) *Engine {
		e, err := New(Config{Attrs: sc.attrs, Window: Window{Count: 10}, NoCache: noCache})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	cached, plain := mk(false), mk(true)
	invalidated := 0
	for tick, batch := range sc.ticks {
		rc := cached.Tick(int64(tick), batch)
		plain.Tick(int64(tick), batch)
		if !reflect.DeepEqual(cached.Snapshot(), plain.Snapshot()) {
			t.Fatalf("tick %d: cache changed a probability", tick)
		}
		invalidated += rc.InvalidatedEntries
	}
	stats := cached.CacheStats()
	if stats.InvalidatedEntries != uint64(invalidated) {
		t.Fatalf("per-tick invalidation counts sum to %d, stats say %d", invalidated, stats.InvalidatedEntries)
	}
	if stats.Invalidated == 0 {
		t.Fatal("a sliding window run never invalidated a variable")
	}
}

func TestCountWindowNeverOverflows(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	attrs := testAttrs(rng)
	e, err := New(Config{Attrs: attrs, Window: Window{Count: 7}})
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 30; tick++ {
		batch := make([][]dataset.Cell, 1+rng.Intn(4))
		for i := range batch {
			batch[i] = randCells(rng, attrs, 0.2)
		}
		e.Tick(int64(tick), batch)
		if e.Len() > 7 {
			t.Fatalf("tick %d: window holds %d objects, bound is 7", tick, e.Len())
		}
	}
}

func TestSpanWindowExpiresByAge(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	attrs := testAttrs(rng)
	e, err := New(Config{Attrs: attrs, Window: Window{Span: 5}})
	if err != nil {
		t.Fatal(err)
	}
	var first int
	r := e.Tick(0, [][]dataset.Cell{randCells(rng, attrs, 0.2)})
	first = r.Inserted[0]
	e.Tick(3, [][]dataset.Cell{randCells(rng, attrs, 0.2)})
	r = e.Tick(5, [][]dataset.Cell{randCells(rng, attrs, 0.2)})
	if len(r.Evicted) != 1 || r.Evicted[0] != first {
		t.Fatalf("tick at t=5 evicted %v, want [%d] (the t=0 arrival, span 5)", r.Evicted, first)
	}
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
}

func TestTimeMustNotGoBackwards(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	attrs := testAttrs(rng)
	e, err := New(Config{Attrs: attrs, Window: Window{Count: 4}})
	if err != nil {
		t.Fatal(err)
	}
	e.Tick(10, [][]dataset.Cell{randCells(rng, attrs, 0.2)})
	defer func() {
		if recover() == nil {
			t.Fatal("Tick accepted a timestamp in the past")
		}
	}()
	e.Tick(9, nil)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty schema")
	}
	if _, err := New(Config{Attrs: []dataset.Attribute{{Name: "a", Levels: 2}}, Window: Window{Count: -1}}); err == nil {
		t.Fatal("New accepted a negative window bound")
	}
}
