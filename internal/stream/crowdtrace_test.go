package stream

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"bayescrowd/internal/core"
	"bayescrowd/internal/crowd"
	"bayescrowd/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the checked-in golden trace from the current run")

// goldenCrowdRun executes the fixed-seed streaming-crowd run behind the
// golden trace: a sliding count window with a lagging, lossy crowd —
// answer delays, drops, spam and round outages all enabled — so the
// trace exercises the task lifecycle events (post, answer, expire,
// stale) alongside the machine tick events. Everything that feeds an
// event is seeded, so the bytes must not depend on the worker count.
func goldenCrowdRun(t *testing.T, workers int) ([]byte, CrowdLedger) {
	t.Helper()
	sc := genCrowdScript(rand.New(rand.NewSource(71)), 25, 2, 0.4)

	var buf bytes.Buffer
	sink := obs.NewTrace(&buf)
	rec := obs.NewRecorder(sink)

	sim := crowd.NewSimulated(sc.truth, 0.85, rand.New(rand.NewSource(72)))
	platform := crowd.NewUnreliable(sim, 0.15, 0.1, 0.1, rand.New(rand.NewSource(73)))
	platform.MinDelay, platform.MaxDelay = 0, 3
	platform.Obs = rec

	ce, err := NewCrowd(CrowdConfig{
		Config: Config{
			Attrs:   sc.attrs,
			Window:  Window{Count: 9},
			TopK:    3,
			Workers: workers,
			Obs:     rec,
		},
		Platform:     platform,
		Budget:       40,
		TasksPerTick: 2,
		TaskDeadline: 2,
		Strategy:     core.HHS,
		M:            2,
		Rng:          rand.New(rand.NewSource(74)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick, batch := range sc.ticks {
		ce.Tick(int64(tick), batch)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), ce.Totals()
}

// TestGoldenCrowdTrace pins the tentpole's determinism acceptance
// criterion: the JSONL trace of a seeded streaming-crowd run — delays,
// drops, outages and stale discards included — is byte-identical across
// worker counts and matches the checked-in golden file. Regenerate the
// golden after an intentional event change with
//
//	go test ./internal/stream -run TestGoldenCrowdTrace -update-golden
func TestGoldenCrowdTrace(t *testing.T) {
	got1, tot1 := goldenCrowdRun(t, 1)
	got8, tot8 := goldenCrowdRun(t, 8)
	if !bytes.Equal(got1, got8) {
		t.Errorf("trace differs between 1 and 8 workers:\n%s", firstDiffLine(got1, got8))
	}
	if tot1 != tot8 {
		t.Errorf("run ledgers differ between 1 and 8 workers: %+v vs %+v", tot1, tot8)
	}
	// The run must actually exercise the lifecycle it pins: the ledger
	// has to show lost work, not just a prompt crowd's happy path.
	if tot1.Absorbed == 0 || tot1.Expired+tot1.Stale+tot1.Late == 0 {
		t.Fatalf("golden run does not exercise the task lifecycle: %+v", tot1)
	}
	for _, kind := range []obs.Kind{obs.KindStreamTaskPost, obs.KindStreamTaskAnswer, obs.KindStreamTaskExpire, obs.KindStreamTaskStale} {
		if !bytes.Contains(got1, []byte(`"kind":"`+kind+`"`)) {
			t.Errorf("golden trace has no %q event", kind)
		}
	}

	golden := filepath.Join("testdata", "crowdtrace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got1))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(got1, want) {
		t.Errorf("trace differs from %s (intentional event change? rerun with -update-golden):\n%s",
			golden, firstDiffLine(got1, want))
	}
}

// firstDiffLine renders the first line where two traces diverge, with
// its line number, for a readable failure message.
func firstDiffLine(a, b []byte) string {
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return "line " + strconv.Itoa(i+1) + ":\n  " + string(la[i]) + "\n  " + string(lb[i])
		}
	}
	return "one trace is a prefix of the other (" + strconv.Itoa(len(la)) + " vs " + strconv.Itoa(len(lb)) + " lines)"
}
