package stream

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/core"
	"bayescrowd/internal/crowd"
	"bayescrowd/internal/dataset"
)

// crowdScript is an arrival schedule plus the hidden complete dataset
// behind it: row i of truth is the ground truth for stream id i (ids are
// assigned 0,1,2,... in arrival order and never reused), so a Simulated
// platform over truth answers streaming tasks correctly.
type crowdScript struct {
	attrs []dataset.Attribute
	truth *dataset.Dataset
	ticks [][][]dataset.Cell
}

func genCrowdScript(rng *rand.Rand, nTicks, perTick int, missRate float64) crowdScript {
	attrs := testAttrs(rng)
	var rows [][]int
	ticks := make([][][]dataset.Cell, nTicks)
	for t := range ticks {
		batch := make([][]dataset.Cell, perTick)
		for i := range batch {
			row := make([]int, len(attrs))
			cells := make([]dataset.Cell, len(attrs))
			for j, a := range attrs {
				row[j] = rng.Intn(a.Levels)
				if rng.Float64() < missRate {
					cells[j] = dataset.Unknown()
				} else {
					cells[j] = dataset.Known(row[j])
				}
			}
			rows = append(rows, row)
			batch[i] = cells
		}
		ticks[t] = batch
	}
	return crowdScript{attrs: attrs, truth: dataset.FromRows(attrs, rows), ticks: ticks}
}

// checkLedger asserts the budget-conservation invariants that must hold
// after every tick: every posted unit is charged, refunded or still
// reserved; the reservation count is the in-flight count; charges never
// exceed the budget; and every arrived answer landed in exactly one of
// the four outcome buckets.
func checkLedger(t *testing.T, tag string, c *CrowdEngine, budget int, res CrowdTickResult) {
	t.Helper()
	tot := c.Totals()
	if res.BudgetSpent+res.BudgetReserved > budget {
		t.Fatalf("%s: spent %d + reserved %d exceeds budget %d", tag, res.BudgetSpent, res.BudgetReserved, budget)
	}
	if res.BudgetSpent != tot.Charged {
		t.Fatalf("%s: spent %d != total charged %d", tag, res.BudgetSpent, tot.Charged)
	}
	if res.BudgetReserved != res.InFlight {
		t.Fatalf("%s: reserved %d != in-flight %d", tag, res.BudgetReserved, res.InFlight)
	}
	if tot.Posted != tot.Charged+tot.Refunded+res.BudgetReserved {
		t.Fatalf("%s: posted %d != charged %d + refunded %d + reserved %d",
			tag, tot.Posted, tot.Charged, tot.Refunded, res.BudgetReserved)
	}
	if tot.Refunded != tot.Expired+tot.Stale {
		t.Fatalf("%s: refunded %d != expired %d + stale %d", tag, tot.Refunded, tot.Expired, tot.Stale)
	}
	if tot.Arrived != tot.Absorbed+tot.Conflicts+tot.Stale+tot.Late {
		t.Fatalf("%s: arrived %d != absorbed %d + conflicts %d + stale %d + late %d",
			tag, tot.Arrived, tot.Absorbed, tot.Conflicts, tot.Stale, tot.Late)
	}
	led := res.Crowd
	if want := led.Expired+led.Stale+led.Late+led.PostFailed > 0; res.Lagging != want {
		t.Fatalf("%s: Lagging = %v, ledger says %v (%+v)", tag, res.Lagging, want, led)
	}
}

// TestCrowdBudgetZeroMatchesMachineEngine pins the degradation floor:
// with no budget the crowd engine is the machine engine — every tick's
// full result and snapshot are identical, and the ledger stays zero.
func TestCrowdBudgetZeroMatchesMachineEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 3; trial++ {
		sc := genScript(rng, 20)
		cfg := Config{Attrs: sc.attrs, Window: Window{Count: 10}, TopK: 4}
		ce, err := NewCrowd(CrowdConfig{Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		me, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for tick, batch := range sc.ticks {
			rc := ce.Tick(int64(tick), batch)
			rm := me.Tick(int64(tick), batch)
			if !reflect.DeepEqual(rc.TickResult, rm) {
				t.Fatalf("trial %d tick %d: budget-0 tick diverged\n crowd:   %+v\n machine: %+v", trial, tick, rc.TickResult, rm)
			}
			if !reflect.DeepEqual(ce.Snapshot(), me.Snapshot()) {
				t.Fatalf("trial %d tick %d: budget-0 snapshot diverged", trial, tick)
			}
			if rc.Crowd != (CrowdLedger{}) || rc.InFlight != 0 || rc.BudgetSpent != 0 || rc.BudgetReserved != 0 || rc.Lagging {
				t.Fatalf("trial %d tick %d: budget-0 run moved the ledger: %+v", trial, tick, rc)
			}
		}
	}
}

// TestCrowdAllStaleAnswersAreSafe is the adversarial schedule: the
// window churns faster than the crowd answers, so every posted task's
// objects are evicted before the answer arrives (constant delay above
// the object lifetime) or the task expires first (delay above the
// deadline). Either way no answer may ever be absorbed, every unit must
// be refunded, no tick may error, and the served answers must be
// identical to the machine-only run of the same schedule.
func TestCrowdAllStaleAnswersAreSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	const deadline = 5
	for _, delay := range []int{3, deadline + 2} {
		sc := genCrowdScript(rng, 20, 2, 0.45)
		// Span 2 with unit tick spacing: an object inserted at tick T is
		// evicted at tick T+2, and task selection only sees objects from
		// tick T-1 or older — so a delay of 3+ always loses the race.
		cfg := Config{Attrs: sc.attrs, Window: Window{Span: 2}, TopK: 4}
		platform := crowd.NewUnreliable(crowd.NewSimulated(sc.truth, 1, nil), 0, 0, 0, nil)
		platform.MinDelay, platform.MaxDelay = delay, delay
		const budget = 100
		ce, err := NewCrowd(CrowdConfig{
			Config:       cfg,
			Platform:     platform,
			Budget:       budget,
			TasksPerTick: 2,
			TaskDeadline: deadline,
			Strategy:     core.FBS,
			Rng:          rand.New(rand.NewSource(7)),
		})
		if err != nil {
			t.Fatal(err)
		}
		me, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The arrival schedule plus drain ticks: age evicts the whole
		// window, in-flight tasks resolve or expire, the mailbox empties.
		tick := 0
		step := func(batch [][]dataset.Cell) {
			tag := fmt.Sprintf("delay %d tick %d", delay, tick)
			rc := ce.Tick(int64(tick), batch)
			rm := me.Tick(int64(tick), batch)
			checkLedger(t, tag, ce, budget, rc)
			if !reflect.DeepEqual(rc.TickResult, rm) {
				t.Fatalf("%s: stale answers changed the served result\n crowd:   %+v\n machine: %+v", tag, rc.TickResult, rm)
			}
			if !reflect.DeepEqual(ce.Snapshot(), me.Snapshot()) {
				t.Fatalf("%s: stale answers changed a probability", tag)
			}
			tick++
		}
		for _, batch := range sc.ticks {
			step(batch)
		}
		for i := 0; i < deadline+delay+2; i++ {
			step(nil)
		}

		tot := ce.Totals()
		if tot.Posted == 0 {
			t.Fatalf("delay %d: adversarial run posted no tasks — vacuous", delay)
		}
		if tot.Absorbed != 0 || tot.Conflicts != 0 {
			t.Fatalf("delay %d: a stale answer was absorbed: %+v", delay, tot)
		}
		if ce.Spent() != 0 || tot.Charged != 0 {
			t.Fatalf("delay %d: stale work was charged: spent %d, %+v", delay, ce.Spent(), tot)
		}
		if ce.Reserved() != 0 || ce.InFlight() != 0 {
			t.Fatalf("delay %d: drained run still holds %d reservations, %d in flight", delay, ce.Reserved(), ce.InFlight())
		}
		if tot.Refunded != tot.Posted {
			t.Fatalf("delay %d: refunded %d of %d posted units", delay, tot.Refunded, tot.Posted)
		}
		if len(ce.mailbox) != 0 {
			t.Fatalf("delay %d: mailbox still holds %d arrival slots after drain", delay, len(ce.mailbox))
		}
		if !ce.know.Empty() {
			t.Fatalf("delay %d: knowledge is not empty after an all-stale run", delay)
		}
		if delay <= deadline {
			// On-time answers that lost the eviction race: all stale.
			if tot.Stale != tot.Posted || tot.Expired != 0 || tot.Late != 0 {
				t.Fatalf("delay %d: want all answers stale, got %+v", delay, tot)
			}
		} else {
			// Answers past the deadline: every task expired first, every
			// answer arrived late (already refunded by the expiry).
			if tot.Expired != tot.Posted || tot.Late != tot.Posted || tot.Stale != 0 {
				t.Fatalf("delay %d: want all tasks expired and answers late, got %+v", delay, tot)
			}
		}
	}
}

// TestCrowdLedgerInvariantsUnderFaults runs the full fault gauntlet —
// drops, outages, spam, imperfect workers, a delay range — and checks
// the budget-conservation invariants after every tick. The engine must
// keep serving (never panic, never block) whatever the crowd does.
func TestCrowdLedgerInvariantsUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	sc := genCrowdScript(rng, 40, 3, 0.4)
	sim := crowd.NewSimulated(sc.truth, 0.8, rand.New(rand.NewSource(11)))
	platform := crowd.NewUnreliable(sim, 0.25, 0.25, 0.1, rand.New(rand.NewSource(12)))
	platform.MinDelay, platform.MaxDelay = 0, 3
	const budget = 80
	ce, err := NewCrowd(CrowdConfig{
		Config:       Config{Attrs: sc.attrs, Window: Window{Count: 10}, TopK: 4},
		Platform:     platform,
		Budget:       budget,
		TasksPerTick: 3,
		TaskDeadline: 2,
		Strategy:     core.UBS,
		Rng:          rand.New(rand.NewSource(13)),
	})
	if err != nil {
		t.Fatal(err)
	}
	lastSpent, sawLag := 0, false
	for tick, batch := range sc.ticks {
		res := ce.Tick(int64(tick), batch)
		tag := fmt.Sprintf("tick %d", tick)
		checkLedger(t, tag, ce, budget, res)
		if res.BudgetSpent < lastSpent {
			t.Fatalf("%s: spent went backwards (%d -> %d)", tag, lastSpent, res.BudgetSpent)
		}
		lastSpent = res.BudgetSpent
		sawLag = sawLag || res.Lagging
		// Graceful degradation: the answer set is served every tick.
		if got := ce.Snapshot(); len(got) != ce.Len() {
			t.Fatalf("%s: snapshot covers %d of %d live objects", tag, len(got), ce.Len())
		}
	}
	tot := ce.Totals()
	if tot.Posted == 0 || tot.Absorbed == 0 {
		t.Fatalf("fault run was vacuous: %+v", tot)
	}
	if !sawLag {
		t.Fatal("fault injection at these rates never produced a lagging tick")
	}
	if platform.Dropped == 0 || platform.Outages == 0 {
		t.Fatalf("injector fired no faults: dropped %d, outages %d", platform.Dropped, platform.Outages)
	}
}

// TestCrowdPromptAnswersImprove checks the loop does real work when the
// crowd keeps up: a prompt, accurate platform absorbs answers within
// the posting tick and the probabilities move off the machine-only run.
func TestCrowdPromptAnswersImprove(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	sc := genCrowdScript(rng, 25, 2, 0.5)
	cfg := Config{Attrs: sc.attrs, Window: Window{Count: 12}, TopK: 4}
	const budget = 40
	ce, err := NewCrowd(CrowdConfig{
		Config:       cfg,
		Platform:     crowd.NewSimulated(sc.truth, 1, nil), // plain Platform: adapted, delay 0
		Budget:       budget,
		TasksPerTick: 2,
		TaskDeadline: 2,
		Strategy:     core.FBS,
		Rng:          rand.New(rand.NewSource(21)),
	})
	if err != nil {
		t.Fatal(err)
	}
	me, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for tick, batch := range sc.ticks {
		res := ce.Tick(int64(tick), batch)
		me.Tick(int64(tick), batch)
		checkLedger(t, fmt.Sprintf("tick %d", tick), ce, budget, res)
		if !reflect.DeepEqual(ce.Snapshot(), me.Snapshot()) {
			diverged = true
		}
	}
	tot := ce.Totals()
	if tot.Absorbed == 0 {
		t.Fatalf("prompt crowd absorbed nothing: %+v", tot)
	}
	if tot.Stale != 0 || tot.Late != 0 || tot.Expired != 0 {
		t.Fatalf("prompt crowd still lost work: %+v", tot)
	}
	if tot.Charged != tot.Absorbed+tot.Conflicts {
		t.Fatalf("charge-on-answer violated: %+v", tot)
	}
	if !diverged {
		t.Fatal("absorbed answers never changed a probability — the crowd loop is inert")
	}
}

// TestCrowdWorkerInvariance pins the determinism contract on the full
// crowd loop: with identically seeded platforms, a 1-worker and an
// 8-worker run agree on every tick result, ledger and snapshot.
func TestCrowdWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	sc := genCrowdScript(rng, 30, 2, 0.4)
	mk := func(workers int) *CrowdEngine {
		sim := crowd.NewSimulated(sc.truth, 0.85, rand.New(rand.NewSource(31)))
		platform := crowd.NewUnreliable(sim, 0.15, 0.05, 0.1, rand.New(rand.NewSource(32)))
		platform.MinDelay, platform.MaxDelay = 0, 2
		ce, err := NewCrowd(CrowdConfig{
			Config:       Config{Attrs: sc.attrs, Window: Window{Count: 10}, TopK: 4, Workers: workers},
			Platform:     platform,
			Budget:       50,
			TasksPerTick: 2,
			TaskDeadline: 3,
			Strategy:     core.HHS,
			M:            2,
			Rng:          rand.New(rand.NewSource(33)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return ce
	}
	seq, par := mk(1), mk(8)
	for tick, batch := range sc.ticks {
		rs := seq.Tick(int64(tick), batch)
		rp := par.Tick(int64(tick), batch)
		// Speculative utility scoring at workers > 1 warms the component
		// cache with extra entries, so the cache-occupancy counter is the
		// one documented worker-sensitive observable.
		rs.InvalidatedEntries, rp.InvalidatedEntries = 0, 0
		if !reflect.DeepEqual(rs, rp) {
			t.Fatalf("tick %d: results differ between workers=1 and workers=8\n seq: %+v\n par: %+v", tick, rs, rp)
		}
		if !reflect.DeepEqual(seq.Snapshot(), par.Snapshot()) {
			t.Fatalf("tick %d: snapshots differ between workers=1 and workers=8", tick)
		}
	}
	if seq.Totals() != par.Totals() {
		t.Fatalf("run ledgers differ: %+v vs %+v", seq.Totals(), par.Totals())
	}
}

// TestCrowdConfigValidation exercises NewCrowd's rejection paths.
func TestCrowdConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	attrs := testAttrs(rng)
	base := Config{Attrs: attrs, Window: Window{Count: 4}}
	ok := func(cfg CrowdConfig, want string) {
		t.Helper()
		if _, err := NewCrowd(cfg); err == nil {
			t.Fatalf("NewCrowd accepted %s", want)
		}
	}
	truth := dataset.FromRows(attrs, nil)
	sim := crowd.NewSimulated(truth, 1, nil)
	seeded := rand.New(rand.NewSource(1))
	ok(CrowdConfig{Config: base, Budget: -1}, "a negative budget")
	ok(CrowdConfig{Config: base, Budget: 1, Rng: seeded}, "a budget without a platform")
	ok(CrowdConfig{Config: base, Budget: 1, Platform: sim}, "a budget without an Rng")
	ok(CrowdConfig{Config: base, Budget: 1, Platform: sim, Rng: seeded, Strategy: core.HHS}, "HHS without M")
	reb := base
	reb.Rebuild = true
	ok(CrowdConfig{Config: reb, Budget: 1, Platform: sim, Rng: seeded}, "a crowd budget in Rebuild mode")
	if _, err := NewCrowd(CrowdConfig{Config: base}); err != nil {
		t.Fatalf("budget-0 config rejected: %v", err)
	}
}
