// Package skyline computes skylines over complete data.
//
// BayesCrowd's dominance relationship (paper Definition 1) is the classic
// complete-data one, and the experimental ground truth is "the query result
// derived based on the corresponding complete data" (§7). This package
// provides that ground truth via two classic algorithms — block-nested-loop
// (BNL) and sort-filter-skyline (SFS) — which are cross-checked against
// each other in tests.
package skyline

import (
	"sort"

	"bayescrowd/internal/dataset"
)

// Dominates reports whether object a dominates object b under Definition 1:
// a is not worse than b in every attribute and strictly better in at least
// one. Both objects must be complete; it panics on a missing cell because
// dominance is undefined over incomplete objects.
func Dominates(a, b *dataset.Object) bool {
	better := false
	for j := range a.Cells {
		ca, cb := a.Cells[j], b.Cells[j]
		if ca.Missing || cb.Missing {
			panic("skyline: Dominates over incomplete objects")
		}
		if ca.Value < cb.Value {
			return false
		}
		if ca.Value > cb.Value {
			better = true
		}
	}
	return better
}

// BNL computes the skyline of a complete dataset with the block-nested-loop
// algorithm and returns the indices of skyline objects in ascending order.
func BNL(d *dataset.Dataset) []int {
	var window []int
	for i := range d.Objects {
		o := &d.Objects[i]
		dominated := false
		keep := window[:0]
		for _, w := range window {
			if dominated {
				keep = append(keep, w)
				continue
			}
			switch {
			case Dominates(&d.Objects[w], o):
				dominated = true
				keep = append(keep, w)
			case Dominates(o, &d.Objects[w]):
				// drop w
			default:
				keep = append(keep, w)
			}
		}
		window = keep
		if !dominated {
			window = append(window, i)
		}
	}
	sort.Ints(window)
	return window
}

// SFS computes the skyline with the sort-filter-skyline algorithm: objects
// are visited in non-increasing order of their attribute-value sum, which
// guarantees that no later object can dominate an earlier one, so a single
// filter pass against the accumulated skyline suffices. Indices are
// returned in ascending order.
func SFS(d *dataset.Dataset) []int {
	order := make([]int, d.Len())
	sums := make([]int, d.Len())
	for i := range d.Objects {
		order[i] = i
		s := 0
		for _, c := range d.Objects[i].Cells {
			if c.Missing {
				panic("skyline: SFS over incomplete dataset")
			}
			s += c.Value
		}
		sums[i] = s
	}
	sort.SliceStable(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })

	var sky []int
	for _, i := range order {
		o := &d.Objects[i]
		dominated := false
		for _, s := range sky {
			if Dominates(&d.Objects[s], o) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
		}
	}
	sort.Ints(sky)
	return sky
}

// Layers partitions all object indices into skyline layers: layer 0 is the
// skyline, layer 1 is the skyline of the remainder, and so on. CrowdSky
// (§7.3) uses this partitioning over the observed attributes; attrs selects
// which attributes participate (nil means all). Cells of the selected
// attributes must be present.
func Layers(d *dataset.Dataset, attrs []int) [][]int {
	if attrs == nil {
		attrs = make([]int, d.NumAttrs())
		for j := range attrs {
			attrs[j] = j
		}
	}
	dominatesOn := func(a, b *dataset.Object) bool {
		better := false
		for _, j := range attrs {
			ca, cb := a.Cells[j], b.Cells[j]
			if ca.Missing || cb.Missing {
				panic("skyline: Layers over missing selected attribute")
			}
			if ca.Value < cb.Value {
				return false
			}
			if ca.Value > cb.Value {
				better = true
			}
		}
		return better
	}

	remaining := make([]int, d.Len())
	for i := range remaining {
		remaining[i] = i
	}
	var layers [][]int
	for len(remaining) > 0 {
		var layer, rest []int
		for _, i := range remaining {
			dominated := false
			for _, k := range remaining {
				if k != i && dominatesOn(&d.Objects[k], &d.Objects[i]) {
					dominated = true
					break
				}
			}
			if dominated {
				rest = append(rest, i)
			} else {
				layer = append(layer, i)
			}
		}
		if len(layer) == 0 {
			// All remaining objects are mutually "dominated" — impossible
			// under a strict partial order, but guard against livelock.
			layers = append(layers, rest)
			break
		}
		layers = append(layers, layer)
		remaining = rest
	}
	return layers
}
