package skyline

import (
	"sort"

	"bayescrowd/internal/dataset"
)

// DC computes the skyline with the divide-and-conquer scheme of Börzsönyi
// et al. (the paper's reference [1]): split the objects in half on the
// first attribute's median, recurse, and merge by filtering the
// worse-half skyline against the better half's. Indices return in
// ascending order. It cross-checks BNL and SFS in the tests and wins
// asymptotically on high-cardinality low-dimension data.
func DC(d *dataset.Dataset) []int {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	for _, i := range idx {
		for _, c := range d.Objects[i].Cells {
			if c.Missing {
				panic("skyline: DC over incomplete dataset")
			}
		}
	}
	out := dcRec(d, idx)
	sort.Ints(out)
	return out
}

func dcRec(d *dataset.Dataset, idx []int) []int {
	if len(idx) <= 16 {
		return bnlOver(d, idx)
	}
	// Median split on attribute 0 (ties broken by index so both halves
	// shrink strictly).
	sorted := append([]int(nil), idx...)
	sort.Slice(sorted, func(a, b int) bool {
		va := d.Objects[sorted[a]].Cells[0].Value
		vb := d.Objects[sorted[b]].Cells[0].Value
		if va != vb {
			return va > vb
		}
		return sorted[a] < sorted[b]
	})
	mid := len(sorted) / 2
	better := dcRec(d, sorted[:mid]) // higher attribute-0 values
	worse := dcRec(d, sorted[mid:])

	// An object from the worse half survives only if nothing in the
	// better half's skyline dominates it; the better half's skyline is
	// immune to the worse half except through exact attribute-0 ties,
	// which the strict split ordering already routed correctly: a tie
	// pair can land in different halves, so check both directions.
	merged := append([]int(nil), better...)
	for _, w := range worse {
		dominated := false
		for _, b := range better {
			if Dominates(&d.Objects[b], &d.Objects[w]) {
				dominated = true
				break
			}
		}
		if !dominated {
			merged = append(merged, w)
		}
	}
	// Defensive reverse filter for attribute-0 ties: a worse-half object
	// can dominate a better-half one only when their first attributes are
	// equal. Flags are computed before filtering — an in-place filter
	// would overwrite entries the inner loop still needs to read.
	dominatedFlags := make([]bool, len(merged))
	for mi, m := range merged {
		for _, other := range merged {
			if other != m && Dominates(&d.Objects[other], &d.Objects[m]) {
				dominatedFlags[mi] = true
				break
			}
		}
	}
	final := merged[:0]
	for mi, m := range merged {
		if !dominatedFlags[mi] {
			final = append(final, m)
		}
	}
	return final
}

// bnlOver is BNL restricted to a subset of object indices.
func bnlOver(d *dataset.Dataset, idx []int) []int {
	var window []int
	for _, i := range idx {
		o := &d.Objects[i]
		dominated := false
		keep := window[:0]
		for _, w := range window {
			if dominated {
				keep = append(keep, w)
				continue
			}
			switch {
			case Dominates(&d.Objects[w], o):
				dominated = true
				keep = append(keep, w)
			case Dominates(o, &d.Objects[w]):
				// drop w
			default:
				keep = append(keep, w)
			}
		}
		window = keep
		if !dominated {
			window = append(window, i)
		}
	}
	return window
}
