package skyline

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"bayescrowd/internal/dataset"
)

func obj(vals ...int) dataset.Object {
	cells := make([]dataset.Cell, len(vals))
	for i, v := range vals {
		cells[i] = dataset.Known(v)
	}
	return dataset.Object{Cells: cells}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b dataset.Object
		want bool
	}{
		{obj(4, 2, 3), obj(3, 2, 1), true},  // paper intro: m2 dominates m1
		{obj(3, 2, 1), obj(4, 2, 3), false}, // reverse
		{obj(2, 3, 2), obj(3, 2, 1), false}, // incomparable (m3 vs m1)
		{obj(1, 1), obj(1, 1), false},       // equal: no strict improvement
		{obj(2, 1), obj(1, 1), true},
		{obj(1, 2), obj(1, 1), true},
	}
	for _, tc := range cases {
		if got := Dominates(&tc.a, &tc.b); got != tc.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", tc.a.Cells, tc.b.Cells, got, tc.want)
		}
	}
}

func TestDominatesPanicsOnMissing(t *testing.T) {
	a := dataset.Object{Cells: []dataset.Cell{dataset.Unknown()}}
	b := obj(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Dominates over missing cell did not panic")
		}
	}()
	Dominates(&a, &b)
}

func TestPaperIntroExample(t *testing.T) {
	// m1=(3,2,1), m2=(4,2,3), m3=(2,3,2): skyline = {m2, m3}.
	d := dataset.FromRows(
		[]dataset.Attribute{{Name: "r1", Levels: 5}, {Name: "r2", Levels: 5}, {Name: "r3", Levels: 5}},
		[][]int{{3, 2, 1}, {4, 2, 3}, {2, 3, 2}},
	)
	want := []int{1, 2}
	if got := BNL(d); !reflect.DeepEqual(got, want) {
		t.Errorf("BNL = %v, want %v", got, want)
	}
	if got := SFS(d); !reflect.DeepEqual(got, want) {
		t.Errorf("SFS = %v, want %v", got, want)
	}
}

// naive is the obvious O(n^2) reference skyline.
func naive(d *dataset.Dataset) []int {
	var out []int
	for i := range d.Objects {
		dominated := false
		for k := range d.Objects {
			if k != i && Dominates(&d.Objects[k], &d.Objects[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

func TestBNLAndSFSAgreeWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	gens := map[string]func() *dataset.Dataset{
		"independent": func() *dataset.Dataset { return dataset.GenIndependent(rng, 300, 4, 8) },
		"correlated":  func() *dataset.Dataset { return dataset.GenCorrelated(rng, 300, 4, 8, 0.7) },
		"anticorr":    func() *dataset.Dataset { return dataset.GenAntiCorrelated(rng, 300, 4, 8) },
		"duplicates":  func() *dataset.Dataset { return dataset.GenIndependent(rng, 300, 3, 2) },
	}
	for name, gen := range gens {
		for trial := 0; trial < 5; trial++ {
			d := gen()
			want := naive(d)
			if got := BNL(d); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s trial %d: BNL = %v, want %v", name, trial, got, want)
			}
			if got := SFS(d); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s trial %d: SFS = %v, want %v", name, trial, got, want)
			}
		}
	}
}

func TestSkylineEdgeCases(t *testing.T) {
	empty := dataset.New([]dataset.Attribute{{Name: "a", Levels: 3}})
	if got := BNL(empty); len(got) != 0 {
		t.Errorf("BNL(empty) = %v", got)
	}
	single := dataset.FromRows([]dataset.Attribute{{Name: "a", Levels: 3}}, [][]int{{1}})
	if got := BNL(single); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("BNL(single) = %v", got)
	}
	// All-equal objects: nothing dominates anything, all are skyline.
	dup := dataset.FromRows([]dataset.Attribute{{Name: "a", Levels: 3}, {Name: "b", Levels: 3}},
		[][]int{{1, 1}, {1, 1}, {1, 1}})
	if got := BNL(dup); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("BNL(duplicates) = %v, want all", got)
	}
	if got := SFS(dup); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("SFS(duplicates) = %v, want all", got)
	}
}

func TestLayersPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := dataset.GenIndependent(rng, 200, 3, 6)
	layers := Layers(d, nil)

	// Layer 0 must be the skyline.
	want := naive(d)
	got := append([]int(nil), layers[0]...)
	sort.Ints(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("layer 0 = %v, want skyline %v", got, want)
	}

	// Layers partition all indices.
	seen := map[int]bool{}
	total := 0
	for _, l := range layers {
		for _, i := range l {
			if seen[i] {
				t.Fatalf("index %d in two layers", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != d.Len() {
		t.Fatalf("layers cover %d objects, want %d", total, d.Len())
	}

	// No object in layer k+1 may dominate an object in layer k... but an
	// object in layer k is never dominated by anything in layers >= k.
	for li, l := range layers {
		for _, i := range l {
			for lj := li; lj < len(layers); lj++ {
				for _, k := range layers[lj] {
					if k != i && Dominates(&d.Objects[k], &d.Objects[i]) {
						t.Fatalf("object %d in layer %d dominated by %d in layer %d", i, li, k, lj)
					}
				}
			}
		}
	}
}

func TestLayersSubsetAttrs(t *testing.T) {
	d := dataset.FromRows(
		[]dataset.Attribute{{Name: "a", Levels: 5}, {Name: "b", Levels: 5}},
		[][]int{{4, 0}, {0, 4}, {3, 3}},
	)
	// Over attribute 0 only: object 0 (value 4) is layer 0, then 2, then 1.
	layers := Layers(d, []int{0})
	if len(layers) != 3 || layers[0][0] != 0 || layers[1][0] != 2 || layers[2][0] != 1 {
		t.Fatalf("Layers over a = %v", layers)
	}
}

func BenchmarkBNL(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	d := dataset.GenIndependent(rng, 5000, 6, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BNL(d)
	}
}

func BenchmarkSFS(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	d := dataset.GenIndependent(rng, 5000, 6, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SFS(d)
	}
}

func TestDCAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	gens := []func() *dataset.Dataset{
		func() *dataset.Dataset { return dataset.GenIndependent(rng, 400, 4, 8) },
		func() *dataset.Dataset { return dataset.GenCorrelated(rng, 400, 3, 8, 0.7) },
		func() *dataset.Dataset { return dataset.GenAntiCorrelated(rng, 400, 4, 8) },
		func() *dataset.Dataset { return dataset.GenIndependent(rng, 400, 2, 2) }, // heavy ties
		func() *dataset.Dataset { return dataset.GenIndependent(rng, 10, 3, 4) },  // below leaf size
	}
	for gi, gen := range gens {
		for trial := 0; trial < 4; trial++ {
			d := gen()
			want := naive(d)
			if got := DC(d); !reflect.DeepEqual(got, want) {
				t.Fatalf("generator %d trial %d: DC = %v, want %v", gi, trial, got, want)
			}
		}
	}
}

func TestDCPanicsOnMissing(t *testing.T) {
	d := dataset.New([]dataset.Attribute{{Name: "a", Levels: 3}})
	d.MustAppend(dataset.Object{Cells: []dataset.Cell{dataset.Unknown()}})
	defer func() {
		if recover() == nil {
			t.Fatal("DC over incomplete data did not panic")
		}
	}()
	DC(d)
}

func BenchmarkDC(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	d := dataset.GenIndependent(rng, 5000, 6, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DC(d)
	}
}
