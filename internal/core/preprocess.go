package core

import (
	"fmt"
	"strconv"
	"strings"

	"bayescrowd/internal/bayesnet"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/obs"
	"bayescrowd/internal/prob"
)

// minRowsForStructure is the smallest number of complete rows for which
// structure learning is attempted; below it the preprocessing falls back
// to independent empirical marginals.
const minRowsForStructure = 50

// Imputer supplies a distribution for every missing cell of a dataset —
// the pluggable preprocessing model. The Bayesian-network path is built
// in; internal/dae provides the denoising-autoencoder alternative the
// paper mentions in §3.
type Imputer interface {
	Distributions(d *dataset.Dataset) (prob.Dists, error)
}

// Preprocess performs the paper's preprocessing step (§3): obtain a
// Bayesian network over the data attributes (train one on the dataset's
// complete rows unless one is supplied) and derive, for every missing
// cell, the posterior distribution of its value given the object's
// observed cells.
func Preprocess(d *dataset.Dataset, opt Options) (prob.Dists, error) {
	if opt.Imputer != nil {
		dists, err := opt.Imputer.Distributions(d)
		if err != nil {
			return nil, err
		}
		return emitPreprocess(opt, "imputer", dists), nil
	}
	if opt.MarginalsOnly {
		return emitPreprocess(opt, "marginals", marginalDists(d)), nil
	}
	net := opt.Net
	model := "net"
	if net == nil {
		var err error
		net, err = learnNetwork(d, opt)
		if err != nil {
			return nil, err
		}
		if net == nil {
			// Too few complete rows for structure learning.
			return emitPreprocess(opt, "marginals-fallback", marginalDists(d)), nil
		}
		model = "learned"
	}
	if err := checkNetSchema(d, net); err != nil {
		return nil, err
	}
	return emitPreprocess(opt, model, posteriors(d, net)), nil
}

// emitPreprocess traces which preprocessing model produced the
// missing-value distributions and how many there are, passing the
// distributions through for call-site brevity.
func emitPreprocess(opt Options, model string, dists prob.Dists) prob.Dists {
	opt.Trace.Emit(obs.Event{Kind: obs.KindPreprocess, N: len(dists), Note: model})
	return dists
}

// LearnNetwork trains Bayesian-network structure and parameters on the
// complete rows of the (possibly incomplete) dataset — the preprocessing
// step run standalone, so deployments can persist the network
// (bayesnet.WriteJSON) instead of re-learning per query. It returns an
// error when fewer than 50 complete rows are available.
func LearnNetwork(d *dataset.Dataset, opts bayesnet.LearnOptions) (*bayesnet.Network, error) {
	net, err := learnNetwork(d, Options{LearnOpts: opts})
	if err != nil {
		return nil, err
	}
	if net == nil {
		return nil, fmt.Errorf("core: too few complete rows for structure learning (need %d)", minRowsForStructure)
	}
	return net, nil
}

// learnNetwork trains structure and parameters on the complete rows of
// the (incomplete) dataset, returning nil when there are too few.
func learnNetwork(d *dataset.Dataset, opt Options) (*bayesnet.Network, error) {
	rows := d.CompleteRows()
	if len(rows) < minRowsForStructure {
		return nil, nil
	}
	names, levels := d.Schema()
	return bayesnet.LearnStructure(names, levels, rows, opt.LearnOpts)
}

// checkNetSchema verifies the network's nodes line up with the dataset's
// attributes (same count and levels).
func checkNetSchema(d *dataset.Dataset, net *bayesnet.Network) error {
	if net.NumNodes() != d.NumAttrs() {
		return fmt.Errorf("core: network has %d nodes, dataset has %d attributes", net.NumNodes(), d.NumAttrs())
	}
	for j, a := range d.Attrs {
		if net.Nodes[j].Levels != a.Levels {
			return fmt.Errorf("core: node %q has %d levels, attribute %q has %d",
				net.Nodes[j].Name, net.Nodes[j].Levels, a.Name, a.Levels)
		}
	}
	return nil
}

// posteriors runs exact inference once per distinct (target attribute,
// observed-profile) pair, caching across objects with identical evidence.
func posteriors(d *dataset.Dataset, net *bayesnet.Network) prob.Dists {
	dists := prob.Dists{}
	cache := map[string][]float64{}
	var key strings.Builder
	for i := range d.Objects {
		o := &d.Objects[i]
		var evidence map[int]int
		for j, c := range o.Cells {
			if c.Missing {
				continue
			}
			if evidence == nil {
				evidence = map[int]int{}
			}
			evidence[j] = c.Value
		}
		for j, c := range o.Cells {
			if !c.Missing {
				continue
			}
			key.Reset()
			key.WriteString(strconv.Itoa(j))
			key.WriteByte('|')
			for a := 0; a < len(o.Cells); a++ {
				if v, ok := evidence[a]; ok {
					key.WriteString(strconv.Itoa(a))
					key.WriteByte(':')
					key.WriteString(strconv.Itoa(v))
					key.WriteByte(',')
				}
			}
			k := key.String()
			dist, ok := cache[k]
			if !ok {
				dist = net.Posterior(j, evidence)
				cache[k] = dist
			}
			dists[ctable.Var{Obj: i, Attr: j}] = dist
		}
	}
	return dists
}

// marginalDists models every missing cell by its attribute's empirical
// marginal over the observed values, with add-one smoothing so no code
// has zero prior probability (the paper assumes every missing value can
// take any domain value).
func marginalDists(d *dataset.Dataset) prob.Dists {
	counts := make([][]float64, d.NumAttrs())
	for j, a := range d.Attrs {
		counts[j] = make([]float64, a.Levels)
	}
	for i := range d.Objects {
		for j, c := range d.Objects[i].Cells {
			if !c.Missing {
				counts[j][c.Value]++
			}
		}
	}
	marginals := make([][]float64, d.NumAttrs())
	for j := range counts {
		total := 0.0
		for _, c := range counts[j] {
			total += c + 1
		}
		m := make([]float64, len(counts[j]))
		for v, c := range counts[j] {
			m[v] = (c + 1) / total
		}
		marginals[j] = m
	}
	dists := prob.Dists{}
	for i := range d.Objects {
		for j, c := range d.Objects[i].Cells {
			if c.Missing {
				dists[ctable.Var{Obj: i, Attr: j}] = marginals[j]
			}
		}
	}
	return dists
}

// conditionDist renormalises a base posterior over the interval of values
// the knowledge still allows for the variable; answers outside the
// interval carry probability zero.
func conditionDist(base []float64, lo, hi int) []float64 {
	out := make([]float64, len(base))
	sum := 0.0
	for v := lo; v <= hi && v < len(base); v++ {
		sum += base[v]
	}
	if sum <= 0 {
		// The posterior gave zero mass to every remaining value; fall
		// back to uniform over the interval so the framework can proceed.
		width := hi - lo + 1
		for v := lo; v <= hi && v < len(base); v++ {
			out[v] = 1 / float64(width)
		}
		return out
	}
	for v := lo; v <= hi && v < len(base); v++ {
		out[v] = base[v] / sum
	}
	return out
}
