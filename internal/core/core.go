package core
