package core

import (
	"math/rand"
	"testing"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/dataset"
)

func TestOnRoundHook(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	truth := dataset.GenIndependent(rng, 120, 4, 8)
	incomplete := truth.InjectMissing(rng, 0.15)

	type event struct{ round, tasks, undecided int }
	var events []event
	res, err := Run(incomplete, crowd.NewSimulated(truth, 1.0, nil), Options{
		Alpha: 0.3, Budget: 20, Latency: 4, Strategy: FBS,
		MarginalsOnly: true,
		Rng:           rng,
		OnRound: func(round, tasks, undecided int) {
			events = append(events, event{round, tasks, undecided})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Rounds {
		t.Fatalf("hook fired %d times for %d rounds", len(events), res.Rounds)
	}
	total := 0
	for i, e := range events {
		if e.round != i+1 {
			t.Fatalf("event %d has round %d", i, e.round)
		}
		if e.tasks <= 0 || e.tasks > 5 { // μ = ⌈20/4⌉ = 5
			t.Fatalf("event %d posted %d tasks", i, e.tasks)
		}
		if e.undecided < 0 {
			t.Fatalf("event %d undecided %d", i, e.undecided)
		}
		total += e.tasks
	}
	if total != res.TasksPosted {
		t.Fatalf("hook saw %d tasks, result has %d", total, res.TasksPosted)
	}
	// Undecided counts must be non-increasing with perfect workers.
	for i := 1; i < len(events); i++ {
		if events[i].undecided > events[i-1].undecided {
			t.Fatalf("undecided grew: %v", events)
		}
	}
}
