package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/obs"
	"bayescrowd/internal/prob"
)

// Run executes the full BayesCrowd framework (Algorithm 1) over an
// incomplete dataset: preprocessing (Bayesian-network posteriors),
// modeling (Get-CTable), and the iterative crowdsourcing phase
// (Algorithm 4 for HHS; the same loop with the FBS or UBS selection rule
// otherwise). Crowd answers are obtained from the given platform.
func Run(d *dataset.Dataset, platform crowd.Platform, opt Options) (*Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}

	base, err := Preprocess(d, opt)
	if err != nil {
		return nil, err
	}

	ct := ctable.Build(d, ctable.BuildOptions{Alpha: opt.Alpha, Workers: opt.Workers})
	return crowdPhase(d, ct, base, platform, opt)
}

// RunWithDists runs the modeling and crowdsourcing phases against
// precomputed missing-value posteriors, skipping preprocessing. The
// benchmark harness uses it to time the framework the way the paper does
// — Bayesian-network training and posterior inference happen offline,
// before the modeling phase — and to reuse one preprocessing pass across
// a parameter sweep.
func RunWithDists(d *dataset.Dataset, base prob.Dists, platform crowd.Platform, opt Options) (*Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	ct := ctable.Build(d, ctable.BuildOptions{Alpha: opt.Alpha, Workers: opt.Workers})
	return crowdPhase(d, ct, base, platform, opt)
}

// RunCrowdPhase runs only the crowdsourcing phase against an already-built
// c-table and precomputed posteriors. The benchmark harness uses it to
// time task selection and probability maintenance apart from the c-table
// build (which it re-runs untimed per repetition — crowdPhase simplifies
// the table's conditions in place).
func RunCrowdPhase(d *dataset.Dataset, ct *ctable.CTable, base prob.Dists, platform crowd.Platform, opt Options) (*Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	return crowdPhase(d, ct, base, platform, opt)
}

// crowdPhase runs the crowdsourcing loop against an already-built c-table
// and base posteriors. Exposed within the package so benchmarks can time
// it apart from preprocessing.
func crowdPhase(d *dataset.Dataset, ct *ctable.CTable, base prob.Dists, platform crowd.Platform, opt Options) (*Result, error) {
	// The recorder and registry are the run's two observability channels:
	// deterministic events to rec (single-writer sections only), and
	// scheduling-dependent numbers — durations, cache deltas — to reg.
	// Both are nil-safe no-ops when disabled.
	rec := opt.Trace
	reg := opt.Metrics
	rec.Emit(obs.Event{Kind: obs.KindRunStart, N: opt.Budget, M: opt.Latency, Note: opt.Strategy.String()})
	var (
		hSelect      = reg.Histogram("select.duration")
		hProb        = reg.Histogram("prob.duration")
		hRound       = reg.Histogram("round.duration")
		cRounds      = reg.Counter("rounds")
		cPosted      = reg.Counter("tasks.posted")
		cAnswered    = reg.Counter("tasks.answered")
		cCacheHits   = reg.Counter("cache.hits")
		cCacheMisses = reg.Counter("cache.misses")
		cCacheEvict  = reg.Counter("cache.evicted")
		cCacheInval  = reg.Counter("cache.invalidated")
		cCacheInvalE = reg.Counter("cache.invalidated.entries")
		cApprox      = reg.Counter("prob.approx.components")
	)
	var prevCache prob.CacheStats
	var prevApprox int64

	know := ctable.NewKnowledge(d)
	know.NoInference = opt.NoInference

	// Effective distributions: the base posteriors, renormalised by what
	// the crowd has revealed so far.
	eff := make(prob.Dists, len(base))
	for v, dist := range base {
		eff[v] = dist
	}
	ev := &prob.Evaluator{Dists: eff, Opt: prob.Options{
		NoCache:         opt.NoCache,
		ApproxThreshold: opt.ApproxThreshold,
		LegacyEngine:    opt.LegacyProb,
	}}
	if !opt.NoCache {
		// The component cache persists across every Pr(φ) evaluation of
		// the run — the initial fan-out, the UBS/HHS candidate scans, and
		// the cross-round stale recomputation — and is invalidated
		// per-variable below, right where crowd answers renormalise
		// distributions.
		ev.Cache = prob.NewComponentCache(opt.CacheSize)
	}
	// core is the single writer that owns the evaluator; it hands the
	// recorder down so prob's sequential dispatch points (ProbAll,
	// PlanSweeps, Invalidate) can trace their deterministic sizes.
	ev.Obs = rec
	if ev.Cache != nil {
		ev.Cache.Obs = rec
	}

	result := &Result{}
	remaining := opt.Budget
	mu := (opt.Budget + opt.Latency - 1) / opt.Latency // ⌈B/L⌉ tasks per round

	// Satisfaction probabilities are cached across rounds and recomputed
	// only for conditions that mention a variable an answer touched: a
	// 20-task round changes at most 40 variables, so most conditions keep
	// their probability. The initial fan-out is the framework's single
	// biggest model-counting bill, so it runs on the worker pool; the
	// merge below walks the undecided list in index order, keeping the
	// map contents identical to the sequential build.
	undecided := ct.Undecided()
	conds := make([]*ctable.Condition, len(undecided))
	for i, o := range undecided {
		conds[i] = ct.Conds[o]
	}
	rec.Emit(obs.Event{Kind: obs.KindModel, N: len(ct.Conds), M: len(undecided)})
	//lint:ignore determinism timing observability only: ProbTime reports wall-clock and never feeds a decision
	probStart := time.Now()
	initial := ev.ProbAll(conds, opt.Workers)
	initialDur := time.Since(probStart)
	result.ProbTime += initialDur
	hProb.Observe(initialDur)
	probs := make(map[int]float64, len(undecided))
	varToObjs := map[ctable.Var][]int{}
	for i, o := range undecided {
		probs[o] = initial[i]
		for _, v := range ct.Conds[o].Vars() {
			varToObjs[v] = append(varToObjs[v], o)
		}
	}

	// Per-round scratch, hoisted out of the loop and cleared in place each
	// round instead of reallocated — the round count times the map sizes
	// adds up at paper scale.
	touched := map[ctable.Var]bool{}
	distChanged := map[ctable.Var]bool{}
	seen := map[int]bool{}
	var changedVars []ctable.Var
	var stale []int
	var staleConds []*ctable.Condition

	// The absorption path is shared with the streaming crowd loop:
	// main-round answers and re-ask majorities both fold into the
	// knowledge through it, marking the touched variables and
	// renormalising the narrowed distributions.
	ab := &Absorption{Know: know, Base: base, Eff: eff, Touched: touched, DistChanged: distChanged}
	absorb := ab.Absorb

	// pendingDropped tracks fault-dropped tasks across rounds: an expression
	// goes in when its answer is lost, comes out when a later answer for it
	// arrives, and anything still undecided when the budget runs out marks
	// the result Degraded (the crowd work the faults cost us).
	pendingDropped := map[ctable.Expr]bool{}

	round := 0
	for remaining > 0 {
		if len(probs) == 0 {
			break // every condition decided
		}

		round++
		rec.SetRound(round)
		var roundStart time.Time
		if hRound != nil {
			//lint:ignore determinism timing observability only: the round-duration histogram reports wall-clock and never feeds a decision
			roundStart = time.Now()
		}

		k := mu
		if remaining < k {
			k = remaining
		}
		rec.Emit(obs.Event{Kind: obs.KindRoundStart, N: k, M: remaining})
		//lint:ignore determinism timing observability only: SelectTime reports wall-clock and never feeds a decision
		selectStart := time.Now()
		tasks := selectBatch(opt, ct, ev, probs, k)
		selectDur := time.Since(selectStart)
		result.SelectTime += selectDur
		hSelect.Observe(selectDur)
		if len(tasks) == 0 {
			break // nothing conflict-free left to ask
		}
		batchCost := 0
		for _, t := range tasks {
			batchCost += taskCost(opt, t)
		}
		if rec.On() {
			for _, t := range tasks {
				rec.Emit(obs.Event{Kind: obs.KindTaskPost, Task: t.Expr.String(), N: taskCost(opt, t)})
			}
		}

		// Post the round, retrying outages with capped exponential backoff.
		// Whatever arrived before a terminal failure is still absorbed; the
		// run then degrades instead of erroring (best-effort semantics).
		answers, postErr := postWithRetry(platform, tasks, opt, result)
		result.TasksPosted += len(tasks)
		result.TasksAnswered += len(answers)
		cPosted.Add(int64(len(tasks)))
		cAnswered.Add(int64(len(answers)))
		if postErr == nil {
			result.Rounds++
			cRounds.Add(1)
		}

		clear(touched)
		clear(distChanged)
		var conflicted []crowd.Task
		var conflictSeen map[ctable.Expr]bool
		for _, a := range answers {
			delete(pendingDropped, a.Task.Expr)
			if rec.On() {
				rec.Emit(obs.Event{Kind: obs.KindTaskAnswer, Task: a.Task.Expr.String(), Rel: a.Rel.String()})
			}
			if err := absorb(a.Task.Expr, a.Rel); err != nil {
				if errors.Is(err, ctable.ErrConflict) {
					result.ConflictingAnswers++
					if rec.On() {
						rec.Emit(obs.Event{Kind: obs.KindTaskConflict, Task: a.Task.Expr.String(), Rel: a.Rel.String()})
					}
					if opt.ReaskConflicts > 0 && !conflictSeen[a.Task.Expr] {
						if conflictSeen == nil {
							conflictSeen = map[ctable.Expr]bool{}
						}
						conflictSeen[a.Task.Expr] = true
						conflicted = append(conflicted, a.Task)
					}
					continue
				}
				return nil, err
			}
		}

		// Budget accounting. Charge-on-answer (the default) pays for
		// delivered answers only — a dropped task costs nothing and its
		// budget stays available for re-posting; ChargeOnPost pays for the
		// listing. Either way the round consumes at least the μ allowance
		// of the latency model (Algorithm 4 line 8: the budget shrinks by
		// at least μ per round even when conflicts leave the batch short,
		// which bounds the number of rounds by the latency constraint L;
		// with variable task prices the round is charged its actual
		// accumulated cost when that exceeds the allowance).
		answeredCost := 0
		answeredExpr := make(map[ctable.Expr]bool, len(answers))
		for _, a := range answers {
			answeredCost += taskCost(opt, a.Task)
			answeredExpr[a.Task.Expr] = true
		}
		charged := answeredCost
		if opt.ChargeOnPost {
			charged = batchCost
		}

		// Re-ask conflicting tasks (within the same logical round): k
		// copies re-posted, the strict majority of whatever comes back
		// absorbed in place of the discarded answer. Re-ask posts share
		// the platform's fault model but are not retried themselves.
		if postErr == nil && opt.ReaskConflicts > 0 {
			for _, t := range conflicted {
				if remaining-charged <= 0 {
					break // no budget left to re-ask with
				}
				copies := make([]crowd.Task, opt.ReaskConflicts)
				for i := range copies {
					copies[i] = t
				}
				if rec.On() {
					rec.Emit(obs.Event{Kind: obs.KindTaskReask, Task: t.Expr.String(), N: len(copies)})
				}
				reAnswers, err := platform.Post(copies)
				result.TasksReasked += len(copies)
				if err != nil {
					result.FailedRounds++
				}
				if opt.ChargeOnPost {
					charged += len(copies) * taskCost(opt, t)
				} else {
					charged += len(reAnswers) * taskCost(opt, t)
				}
				maj, ok := majorityRel(reAnswers)
				if !ok {
					continue // nothing arrived, or no strict majority
				}
				if err := absorb(t.Expr, maj); err != nil {
					if errors.Is(err, ctable.ErrConflict) {
						result.ConflictingAnswers++
						continue
					}
					return nil, err
				}
				result.ConflictsResolved++
				if rec.On() {
					rec.Emit(obs.Event{Kind: obs.KindConflictResolved, Task: t.Expr.String(), Rel: maj.String()})
				}
			}
		}

		result.BudgetSpent += charged
		charge := charged
		if charge < mu {
			charge = mu
		}
		remaining -= charge
		if remaining < 0 {
			remaining = 0
		}

		// Unanswered tasks: count the drop, and re-queue whatever this
		// round's absorbed answers did not incidentally decide — their
		// conditions still hold the expressions, so later rounds may
		// select them again.
		for _, t := range tasks {
			if answeredExpr[t.Expr] {
				continue
			}
			result.TasksDropped++
			if rec.On() {
				rec.Emit(obs.Event{Kind: obs.KindTaskDrop, Task: t.Expr.String()})
			}
			if _, decided := know.Eval(t.Expr); !decided {
				result.TasksRequeued++
				pendingDropped[t.Expr] = true
				if rec.On() {
					rec.Emit(obs.Event{Kind: obs.KindTaskRequeue, Task: t.Expr.String()})
				}
			}
		}

		// A renormalised distribution stales every memoized component
		// mentioning its variable. This is the single-writer gap between
		// fan-outs, exactly where the cache's Invalidate contract wants
		// the call; merely-rewritten conditions need no bump — their
		// components' fingerprints change, so stale entries can't be hit.
		if ev.Cache != nil && len(distChanged) > 0 {
			changedVars = changedVars[:0]
			for v := range distChanged {
				//lint:ignore determinism Invalidate bumps per-variable epochs; the bump set matters, its order does not
				changedVars = append(changedVars, v)
			}
			ev.Cache.Invalidate(changedVars...)
		}

		// Re-simplify exactly the conditions that mention a touched
		// variable, and recompute Pr only where the condition actually
		// changed or a referenced distribution did. Simplification and
		// the eff/Knowledge writes above are single-threaded; only the
		// independent Pr recomputations fan out, and the pool join inside
		// ProbAll publishes this round's mutations to every worker before
		// any solver reads them (the Evaluator's single-writer contract).
		clear(seen)
		stale = stale[:0]
		for v := range touched {
			for _, o := range varToObjs[v] {
				if seen[o] {
					continue
				}
				seen[o] = true
				if _, tracked := probs[o]; !tracked {
					continue
				}
				cond := ct.Conds[o]
				before := cond.NumExprs()
				cond.Simplify(know)
				if _, decided := cond.Decided(); decided {
					delete(probs, o)
					continue
				}
				recompute := cond.NumExprs() != before
				if !recompute && len(distChanged) > 0 {
					for _, cv := range cond.Vars() {
						if distChanged[cv] {
							recompute = true
							break
						}
					}
				}
				if recompute {
					stale = append(stale, o)
				}
			}
		}
		// touched is a map, so the gather order above is nondeterministic;
		// sorting fixes the fan-out schedule (the values themselves are
		// order-independent — one object, one worker, one write).
		sort.Ints(stale)
		staleConds = staleConds[:0]
		for _, o := range stale {
			staleConds = append(staleConds, ct.Conds[o])
		}
		//lint:ignore determinism timing observability only: ProbTime reports wall-clock and never feeds a decision
		probStart = time.Now()
		for i, p := range ev.ProbAll(staleConds, opt.Workers) {
			probs[stale[i]] = p
		}
		roundProbDur := time.Since(probStart)
		result.ProbTime += roundProbDur
		hProb.Observe(roundProbDur)

		// Close the round on both channels: the deterministic charge and
		// undecided count to the trace, the scheduling-dependent cache
		// deltas and wall time to the registry.
		rec.Emit(obs.Event{Kind: obs.KindRoundEnd, N: charged, M: len(probs)})
		if reg != nil && ev.Cache != nil {
			s := ev.Cache.Stats()
			cCacheHits.Add(int64(s.Hits - prevCache.Hits))
			cCacheMisses.Add(int64(s.Misses - prevCache.Misses))
			cCacheEvict.Add(int64(s.Evicted - prevCache.Evicted))
			cCacheInval.Add(int64(s.Invalidated - prevCache.Invalidated))
			cCacheInvalE.Add(int64(s.InvalidatedEntries - prevCache.InvalidatedEntries))
			prevCache = s
		}
		if reg != nil {
			n := ev.ApproxComponents()
			cApprox.Add(n - prevApprox)
			prevApprox = n
		}
		if hRound != nil {
			hRound.Observe(time.Since(roundStart))
		}

		if postErr != nil {
			// Retries exhausted mid-phase: keep everything absorbed so far
			// and return the best-effort probabilistic skyline instead of
			// an error or a hang.
			result.Degraded = true
			result.DegradedReason = fmt.Sprintf(
				"crowd round failed after %d retries: %v", opt.MaxRetries, postErr)
			break
		}
		if opt.OnRound != nil {
			opt.OnRound(result.Rounds, len(tasks), len(probs))
		}
	}

	// Budget gone while fault-dropped tasks were still unrecovered and the
	// result still uncertain: the faults consumed crowd work the query
	// needed. Flag it — the answer set below is still the exact inference
	// over everything that did arrive.
	if !result.Degraded && len(probs) > 0 {
		unrecovered := 0
		for e := range pendingDropped {
			if _, decided := know.Eval(e); !decided {
				unrecovered++
			}
		}
		if unrecovered > 0 {
			result.Degraded = true
			result.DegradedReason = fmt.Sprintf(
				"budget exhausted with %d fault-dropped tasks unrecovered", unrecovered)
		}
	}
	if result.Degraded {
		rec.Emit(obs.Event{Kind: obs.KindDegrade, Note: result.DegradedReason})
	}

	// Final inference: decided-true objects plus undecided ones whose
	// satisfaction probability exceeds 0.5 (§7). The cached probabilities
	// are current — every absorbed answer invalidated its conditions.
	result.Probs = map[int]float64{}
	answers := ct.ResultSet()
	for o, p := range probs {
		result.Probs[o] = p
		if p > 0.5 {
			answers = append(answers, o)
		}
	}
	sort.Ints(answers)
	result.Answers = answers
	result.CTable = ct
	if ev.Cache != nil {
		result.Cache = ev.Cache.Stats()
		if reg != nil {
			// Publish whatever accrued since the last per-round delta
			// (e.g. when the loop exited before a round completed).
			cCacheHits.Add(int64(result.Cache.Hits - prevCache.Hits))
			cCacheMisses.Add(int64(result.Cache.Misses - prevCache.Misses))
			cCacheEvict.Add(int64(result.Cache.Evicted - prevCache.Evicted))
			cCacheInval.Add(int64(result.Cache.Invalidated - prevCache.Invalidated))
			cCacheInvalE.Add(int64(result.Cache.InvalidatedEntries - prevCache.InvalidatedEntries))
		}
	}
	result.ApproxComponents = ev.ApproxComponents()
	if reg != nil {
		cApprox.Add(result.ApproxComponents - prevApprox)
	}
	rec.Emit(obs.Event{Kind: obs.KindRunEnd, N: result.TasksPosted, M: result.Rounds})
	return result, nil
}

// postWithRetry posts one round's batch, retrying round-level failures up
// to Options.MaxRetries with capped exponential backoff (base·2^attempt,
// capped at 32·base). Answers that arrived before a failure are kept and
// only the still-unanswered tasks are re-posted — a retry never asks the
// crowd the same question twice. It returns everything that arrived; the
// error is non-nil only when retries are exhausted with tasks still
// unanswered.
func postWithRetry(platform crowd.Platform, tasks []crowd.Task, opt Options, result *Result) ([]crowd.Answer, error) {
	pending := tasks
	var got []crowd.Answer
	for attempt := 0; ; attempt++ {
		answers, err := platform.Post(pending)
		got = append(got, answers...)
		if err == nil {
			return got, nil
		}
		result.FailedRounds++
		if len(answers) > 0 {
			answered := make(map[ctable.Expr]bool, len(answers))
			for _, a := range answers {
				answered[a.Task.Expr] = true
			}
			var rest []crowd.Task
			for _, t := range pending {
				if !answered[t.Expr] {
					rest = append(rest, t)
				}
			}
			pending = rest
			if len(pending) == 0 {
				return got, nil
			}
		}
		if attempt >= opt.MaxRetries {
			return got, err
		}
		result.RoundRetries++
		if opt.Trace.On() {
			opt.Trace.Emit(obs.Event{Kind: obs.KindRoundRetry, N: attempt, Note: err.Error()})
		}
		if opt.RetryBackoff > 0 {
			shift := attempt
			if shift > 5 {
				shift = 5 // cap the delay at 32× the base
			}
			if opt.Trace.On() {
				// The configured delay, not the measured one — the event
				// stays deterministic; the measured sleep is in
				// Result.BackoffTime.
				opt.Trace.Emit(obs.Event{Kind: obs.KindBackoff, N: attempt, Note: (opt.RetryBackoff << uint(shift)).String()})
			}
			start := time.Now() //lint:ignore determinism retry backoff is wall-clock by design; BackoffTime is observability-only
			time.Sleep(opt.RetryBackoff << uint(shift))
			result.BackoffTime += time.Since(start)
		}
	}
}

// majorityRel aggregates re-asked answers: the uniquely most-voted
// relation among the delivered votes, ok=false when nothing arrived or
// the top vote is tied (a tie is no better evidence than the conflict it
// is meant to settle).
func majorityRel(answers []crowd.Answer) (ctable.Rel, bool) {
	if len(answers) == 0 {
		return 0, false
	}
	counts := [3]int{}
	for _, a := range answers {
		counts[a.Rel]++
	}
	best, tie := ctable.LT, false
	for _, r := range []ctable.Rel{ctable.EQ, ctable.GT} {
		if counts[r] > counts[best] {
			best, tie = r, false
		} else if counts[r] == counts[best] {
			tie = true
		}
	}
	return best, !tie
}
