package core

import (
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/prob"
)

// runWithWorkers executes one full pipeline run (empirical-marginal
// preprocessing, so the test exercises modeling + crowdsourcing, not BN
// structure learning) with a fresh deterministic Rng.
func runWithWorkers(t *testing.T, d, truth *dataset.Dataset, strat Strategy, workers int, seed int64) *Result {
	t.Helper()
	res, err := Run(d, crowd.NewSimulated(truth, 1.0, nil), Options{
		Alpha:         0.05,
		Budget:        30,
		Latency:       5,
		Strategy:      strat,
		M:             3,
		MarginalsOnly: true,
		Workers:       workers,
		Rng:           rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return res
}

// TestWorkersEquivalence is the tentpole's determinism gate: the full
// framework must produce byte-for-byte identical Results at Workers=1
// (the exact sequential baseline) and Workers=8, across seeded random
// datasets and all three strategies.
func TestWorkersEquivalence(t *testing.T) {
	for _, strat := range []Strategy{FBS, UBS, HHS} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			truth := dataset.GenNBA(rng, 150)
			d := truth.InjectMissing(rng, 0.15)

			seq := runWithWorkers(t, d, truth, strat, 1, seed*7)
			par := runWithWorkers(t, d, truth, strat, 8, seed*7)

			if !reflect.DeepEqual(seq.Answers, par.Answers) {
				t.Errorf("%v seed %d: answers differ\n workers=1: %v\n workers=8: %v",
					strat, seed, seq.Answers, par.Answers)
			}
			if !reflect.DeepEqual(seq.Probs, par.Probs) {
				t.Errorf("%v seed %d: final probabilities differ\n workers=1: %v\n workers=8: %v",
					strat, seed, seq.Probs, par.Probs)
			}
			if seq.TasksPosted != par.TasksPosted || seq.Rounds != par.Rounds ||
				seq.BudgetSpent != par.BudgetSpent || seq.ConflictingAnswers != par.ConflictingAnswers {
				t.Errorf("%v seed %d: counters differ: workers=1 (%d tasks, %d rounds, %d spent, %d conflicts) vs workers=8 (%d, %d, %d, %d)",
					strat, seed,
					seq.TasksPosted, seq.Rounds, seq.BudgetSpent, seq.ConflictingAnswers,
					par.TasksPosted, par.Rounds, par.BudgetSpent, par.ConflictingAnswers)
			}
		}
	}
}

// TestRunWithDistsWorkersEquivalence covers the benchmark entry point:
// precomputed posteriors shared (not copied) between a sequential and a
// parallel run must still yield identical results, because crowdPhase
// copies base into its own effective-distribution map.
func TestRunWithDistsWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := dataset.GenNBA(rng, 120)
	d := truth.InjectMissing(rng, 0.2)
	base, err := Preprocess(d, Options{MarginalsOnly: true, Budget: 1, Latency: 1})
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) *Result {
		res, err := RunWithDists(d, base, crowd.NewSimulated(truth, 1.0, nil), Options{
			Alpha: 0.05, Budget: 24, Latency: 4, Strategy: HHS, M: 3,
			Workers: workers, Rng: rand.New(rand.NewSource(5)),
		})
		if err != nil {
			t.Fatalf("RunWithDists(workers=%d): %v", workers, err)
		}
		return res
	}
	seq, par := run(1), run(8)
	// Cache hit/miss counters and phase timings are observability, not
	// results: counters vary with scheduling (two workers can both miss a
	// component one worker would hit) and with the HHS lazy-vs-speculative
	// probing split, and wall times are never reproducible. The values
	// they describe are bit-identical — which the rest of the Result
	// checks — so zero them before the comparison.
	seq.Cache, par.Cache = prob.CacheStats{}, prob.CacheStats{}
	seq.SelectTime, par.SelectTime = 0, 0
	seq.ProbTime, par.ProbTime = 0, 0
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("RunWithDists results differ between workers=1 and workers=8:\n seq: %+v\n par: %+v",
			seq.Answers, par.Answers)
	}
}

// TestParallelPoolHammer drives the full pipeline with far more objects
// than workers so every fan-out saturates the pool and the per-round
// single-writer window (answer absorption mutating the effective
// distributions between fan-outs) is crossed many times. Under
// `go test -race` this is the crowdsourcing loop's data-race gate.
func TestParallelPoolHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	truth := dataset.GenNBA(rng, 400)
	d := truth.InjectMissing(rng, 0.2)
	res, err := Run(d, crowd.NewSimulated(truth, 1.0, nil), Options{
		Alpha:         0.05,
		Budget:        40,
		Latency:       8,
		Strategy:      UBS,
		MarginalsOnly: true,
		Workers:       16,
		Rng:           rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 || res.TasksPosted == 0 {
		t.Fatalf("hammer run did no work: %d rounds, %d tasks", res.Rounds, res.TasksPosted)
	}
}
