package core

import (
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/obs"
)

// TestApproxThresholdWiring pins the end-to-end plumbing of the
// ApproxCount fallback: with a low threshold the run estimates some
// components, reports the count on the Result, and mirrors it in the
// metrics registry; with the threshold off the count stays zero; and
// LegacyProb (the clause-rewriting oracle engine) produces the same
// Result as the default compiled engine.
func TestApproxThresholdWiring(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := dataset.GenNBA(rng, 150)
	d := truth.InjectMissing(rng, 0.25)
	opts := func() Options {
		return Options{
			Alpha:    0.05,
			Budget:   20,
			Latency:  4,
			Strategy: FBS,
			Workers:  1,
			Rng:      rand.New(rand.NewSource(5)),
		}
	}

	exactOpt := opts()
	exact, err := Run(d, crowd.NewSimulated(truth, 1.0, nil), exactOpt)
	if err != nil {
		t.Fatal(err)
	}
	if exact.ApproxComponents != 0 {
		t.Fatalf("exact run reports %d approximated components, want 0", exact.ApproxComponents)
	}

	legacyOpt := opts()
	legacyOpt.LegacyProb = true
	legacy, err := Run(d, crowd.NewSimulated(truth, 1.0, nil), legacyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Answers, exact.Answers) || !reflect.DeepEqual(legacy.Probs, exact.Probs) {
		t.Fatal("LegacyProb run differs from the default engine")
	}

	reg := obs.NewRegistry()
	approxOpt := opts()
	approxOpt.ApproxThreshold = 2
	approxOpt.Metrics = reg
	approx, err := Run(d, crowd.NewSimulated(truth, 1.0, nil), approxOpt)
	if err != nil {
		t.Fatal(err)
	}
	if approx.ApproxComponents == 0 {
		t.Fatal("threshold 2 never tripped the fallback on an NBA workload")
	}
	if got := reg.Counter("prob.approx.components").Value(); got != approx.ApproxComponents {
		t.Fatalf("metrics counter %d != Result.ApproxComponents %d", got, approx.ApproxComponents)
	}

	bad := opts()
	bad.ApproxThreshold = -1
	if _, err := Run(d, crowd.NewSimulated(truth, 1.0, nil), bad); err == nil {
		t.Fatal("negative ApproxThreshold was accepted")
	}
}
