package core

import (
	"math"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/parallel"
	"bayescrowd/internal/prob"
)

// Entropy returns the Shannon entropy of an object's answer-membership
// uncertainty (Eq. 3): H = −(p·log₂p + (1−p)·log₂(1−p)), with the usual
// convention 0·log 0 = 0.
func Entropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -(p*math.Log2(p) + (1-p)*math.Log2(1-p))
}

// Utility returns the marginal utility G(o,e) of crowdsourcing expression
// e from the condition (Definition 6, Eq. 4-5): the expected entropy
// reduction of the object's membership after learning e's truth value.
func Utility(ev *prob.Evaluator, cond *ctable.Condition, e ctable.Expr) float64 {
	return UtilityWith(ev, cond, e, ev.Prob(cond))
}

// UtilityWith is Utility with Pr(φ) supplied by the caller, saving one
// model-counting run per expression when scanning a condition.
func UtilityWith(ev *prob.Evaluator, cond *ctable.Condition, e ctable.Expr, pPhi float64) float64 {
	pe, _, pTrue, pFalse := ev.CondProbsWith(cond, e, pPhi)
	expected := pe*Entropy(pTrue) + (1-pe)*Entropy(pFalse)
	return Entropy(pPhi) - expected
}

// UtilitiesWith scores every expression of a candidate scan at once,
// fanning the independent Pr(φ∧e) model-counting runs across at most
// workers goroutines. out[i] pairs with exprs[i], and each score is
// computed wholly by one worker, so the vector is bit-identical to a
// sequential scan at any worker count.
func UtilitiesWith(ev *prob.Evaluator, cond *ctable.Condition, exprs []ctable.Expr, pPhi float64, workers int) []float64 {
	out := make([]float64, len(exprs))
	parallel.For(workers, len(exprs), func(_, i int) {
		out[i] = UtilityWith(ev, cond, exprs[i], pPhi)
	})
	return out
}

// UtilityScan is UtilityWith through a component scan: the condition's
// untouched components contribute a precomputed product instead of being
// re-solved for every candidate. The scan carries its own Pr(φ).
func UtilityScan(scan *prob.CondScan, e ctable.Expr) float64 {
	pe, pPhi, pTrue, pFalse := scan.CondProbs(e)
	expected := pe*Entropy(pTrue) + (1-pe)*Entropy(pFalse)
	return Entropy(pPhi) - expected
}

// UtilitiesScan is UtilitiesWith through a component scan. Scoring the
// whole candidate set at once is what lets the scan plan marginal
// sweeps — one shared model-counting pass per heavily-probed component
// instead of one run per candidate. PlanSweeps runs before the fan-out,
// so the scan is read-only while workers probe it.
func UtilitiesScan(scan *prob.CondScan, exprs []ctable.Expr, workers int) []float64 {
	scan.PlanSweeps(exprs)
	out := make([]float64, len(exprs))
	parallel.For(workers, len(exprs), func(_, i int) {
		out[i] = UtilityScan(scan, exprs[i])
	})
	return out
}
