package core

import (
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/prob"
)

// Absorption is the shared knowledge-absorption path: one crowd answer
// folded into the Knowledge, the variables it touched marked for
// re-simplification, and — for constant comparisons under inference —
// the variable's effective distribution renormalised to its narrowed
// interval. The batch crowd phase and the streaming crowd loop both go
// through it, so an answer means exactly the same thing in either mode.
//
// The caller owns the surrounding single-writer discipline: Absorb
// mutates Know and Eff, so it must only run in the sequential gaps
// between Pr(φ) fan-outs, and any component cache must be invalidated
// for the DistChanged variables before the next fan-out reads Eff.
type Absorption struct {
	// Know accumulates the answers.
	Know *ctable.Knowledge
	// Base holds the immutable prior distributions; Eff receives their
	// renormalised forms (conditionDist allocates a fresh slice, so Base
	// entries are never written through Eff).
	Base prob.Dists
	Eff  prob.Dists
	// Touched collects every variable an absorbed answer mentioned —
	// the conditions to re-simplify. DistChanged collects the subset
	// whose effective distribution was renormalised — the cache epochs
	// to bump and the probabilities to recompute even where the
	// condition's structure did not change.
	Touched     map[ctable.Var]bool
	DistChanged map[ctable.Var]bool

	buf []ctable.Var
}

// Absorb folds one answer into the knowledge and marks the variables it
// touched. Only constant-comparison answers narrow a variable's
// interval (and hence its distribution); var-vs-var answers record a
// pairwise relation and leave distributions untouched. Errors —
// conflicts, forgotten variables — pass through from Knowledge.Absorb
// with nothing marked.
func (ab *Absorption) Absorb(e ctable.Expr, rel ctable.Rel) error {
	if err := ab.Know.Absorb(e, rel); err != nil {
		return err
	}
	ab.buf = e.Vars(ab.buf[:0])
	for _, v := range ab.buf {
		ab.Touched[v] = true
	}
	if e.Kind != ctable.VarGTVar && !ab.Know.NoInference {
		v := e.X
		lo, hi := ab.Know.Bounds(v)
		ab.Eff[v] = conditionDist(ab.Base[v], lo, hi)
		ab.DistChanged[v] = true
	}
	return nil
}
