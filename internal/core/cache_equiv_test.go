package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/prob"
)

// TestCacheEquivalence is the component cache's correctness gate: full
// framework runs with the cache on and off, over identical datasets,
// seeds, and strategies, must produce identical answer sets and final
// probabilities within 1e-12. The cached mode scores UBS/HHS candidates
// through the incremental component scan while NoCache re-solves the full
// formula per candidate (the legacy cost profile the cache experiment
// compares against); the two factor the same product in a different
// order, hence the 1e-12 tolerance rather than exact equality.
func TestCacheEquivalence(t *testing.T) {
	for _, strat := range []Strategy{FBS, UBS, HHS} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			truth := dataset.GenNBA(rng, 150)
			d := truth.InjectMissing(rng, 0.15)
			base, err := Preprocess(d, Options{MarginalsOnly: true, Budget: 1, Latency: 1})
			if err != nil {
				t.Fatal(err)
			}

			run := func(noCache bool) *Result {
				res, err := RunWithDists(d, base, crowd.NewSimulated(truth, 1.0, nil), Options{
					Alpha: 0.05, Budget: 30, Latency: 5, Strategy: strat, M: 3,
					NoCache: noCache, Workers: 1, Rng: rand.New(rand.NewSource(seed * 7)),
				})
				if err != nil {
					t.Fatalf("RunWithDists(NoCache=%v): %v", noCache, err)
				}
				return res
			}

			cached, plain := run(false), run(true)
			if cached.Cache.Hits == 0 {
				t.Errorf("%v seed %d: cached run recorded no cache hits: %+v", strat, seed, cached.Cache)
			}
			if plain.Cache != (prob.CacheStats{}) {
				t.Errorf("%v seed %d: NoCache run reports cache activity: %+v", strat, seed, plain.Cache)
			}
			if !reflect.DeepEqual(cached.Answers, plain.Answers) {
				t.Errorf("%v seed %d: answer sets differ between cache on and off\n on:  %v\n off: %v",
					strat, seed, cached.Answers, plain.Answers)
			}
			if len(cached.Probs) != len(plain.Probs) {
				t.Fatalf("%v seed %d: tracked-object sets differ: %d vs %d objects",
					strat, seed, len(cached.Probs), len(plain.Probs))
			}
			for o, p := range cached.Probs {
				q, ok := plain.Probs[o]
				if !ok {
					t.Fatalf("%v seed %d: object %d tracked only with cache on", strat, seed, o)
				}
				if math.Abs(p-q) > 1e-12 {
					t.Errorf("%v seed %d: Pr(φ(o%d)) drifts: cached %v vs uncached %v", strat, seed, o, p, q)
				}
			}
		}
	}
}

// TestCacheInvalidationWired checks the run loop actually invalidates: a
// run whose crowd answers renormalise distributions must report bumped
// variables, and the final probabilities must match the uncached truth —
// i.e. no stale component survived an answer (the dangerous failure mode
// a cache can introduce).
func TestCacheInvalidationWired(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := dataset.GenNBA(rng, 200)
	d := truth.InjectMissing(rng, 0.25)
	res, err := Run(d, crowd.NewSimulated(truth, 1.0, nil), Options{
		Alpha: 0.05, Budget: 40, Latency: 5, Strategy: UBS,
		MarginalsOnly: true, Workers: 1, Rng: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Invalidated == 0 {
		t.Fatalf("run absorbed %d tasks but invalidated no variables: %+v", res.TasksPosted, res.Cache)
	}
	if res.Cache.Hits == 0 {
		t.Fatalf("run recorded no cache hits: %+v", res.Cache)
	}
}
