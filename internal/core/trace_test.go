package core

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the checked-in golden trace from the current run")

// goldenTraceRun executes the fixed-seed NBA-small run behind the golden
// trace: imperfect workers, answer drops and spam, and conflict re-asking,
// so the trace exercises the fault events as well as the selection loop.
// Everything that feeds an event is seeded, so the bytes must not depend
// on the worker count.
func goldenTraceRun(t *testing.T, workers int) ([]byte, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	truth := dataset.GenNBA(rng, 150)
	incomplete := truth.InjectMissing(rng, 0.15)

	var buf bytes.Buffer
	sink := obs.NewTrace(&buf)
	rec := obs.NewRecorder(sink)

	platform := crowd.NewSimulated(truth, 0.9, rand.New(rand.NewSource(7)))
	u := crowd.NewUnreliable(platform, 0.1, 0, 0.05, rand.New(rand.NewSource(9)))
	u.Obs = rec

	res, err := Run(incomplete, u, Options{
		Alpha:          0.05,
		Budget:         30,
		Latency:        5,
		Strategy:       HHS,
		M:              5,
		Net:            dataset.NBANet(),
		Workers:        workers,
		ReaskConflicts: 2,
		Trace:          rec,
		Rng:            rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res.Answers
}

// TestGoldenTrace pins the acceptance criterion of the observability
// layer: the JSONL trace of a seeded run is byte-identical across worker
// counts and matches the checked-in golden file. Regenerate the golden
// after an intentional event change with
//
//	go test ./internal/core -run TestGoldenTrace -update-golden
func TestGoldenTrace(t *testing.T) {
	got1, ans1 := goldenTraceRun(t, 1)
	got8, ans8 := goldenTraceRun(t, 8)
	if !bytes.Equal(got1, got8) {
		t.Errorf("trace differs between 1 and 8 workers:\n%s", firstDiffLine(got1, got8))
	}
	if !reflect.DeepEqual(ans1, ans8) {
		t.Errorf("answer sets differ between 1 and 8 workers: %v vs %v", ans1, ans8)
	}

	golden := filepath.Join("testdata", "trace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got1))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(got1, want) {
		t.Errorf("trace differs from %s (intentional event change? rerun with -update-golden):\n%s",
			golden, firstDiffLine(got1, want))
	}
}

// firstDiffLine renders the first line where two traces diverge, with its
// line number, for a readable failure message.
func firstDiffLine(a, b []byte) string {
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return "line " + strconv.Itoa(i+1) + ":\n  " + string(la[i]) + "\n  " + string(lb[i])
		}
	}
	return "one trace is a prefix of the other (" + strconv.Itoa(len(la)) + " vs " + strconv.Itoa(len(lb)) + " lines)"
}
