package core

import (
	"math"
	"math/rand"
	"testing"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/prob"
)

// answerLog records everything the platform told the framework so the
// test can rebuild the knowledge state independently.
type answerLog struct {
	inner   crowd.Platform
	answers []crowd.Answer
}

func (l *answerLog) Post(tasks []crowd.Task) ([]crowd.Answer, error) {
	out, err := l.inner.Post(tasks)
	l.answers = append(l.answers, out...)
	return out, err
}

// TestProbabilityCacheFreshness is a differential check on the
// incremental invalidation inside crowdPhase: the probabilities the run
// reports for undecided objects must equal a from-scratch ADPLL
// evaluation under the final knowledge (reconstructed from the recorded
// answers). A stale cache entry — a condition whose invalidation was
// missed — would disagree.
func TestProbabilityCacheFreshness(t *testing.T) {
	for trial := int64(0); trial < 6; trial++ {
		rng := rand.New(rand.NewSource(500 + trial))
		truth := dataset.GenIndependent(rng, 120, 4, 6)
		incomplete := truth.InjectMissing(rng, 0.2)

		base, err := Preprocess(incomplete, Options{MarginalsOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		log := &answerLog{inner: crowd.NewSimulated(truth, 0.9, rand.New(rand.NewSource(600+trial)))}
		res, err := RunWithDists(incomplete, base, log, Options{
			Alpha: 0.3, Budget: 40, Latency: 5, Strategy: FBS,
			MarginalsOnly: true,
			Rng:           rand.New(rand.NewSource(700 + trial)),
		})
		if err != nil {
			t.Fatal(err)
		}

		// Rebuild the final knowledge and effective distributions from
		// the answer log, exactly as crowdPhase absorbs them.
		know := ctable.NewKnowledge(incomplete)
		eff := make(prob.Dists, len(base))
		for v, dist := range base {
			eff[v] = dist
		}
		for _, a := range log.answers {
			if err := know.Absorb(a.Task.Expr, a.Rel); err != nil {
				continue // conflicting answer, discarded by the run too
			}
			if a.Task.Expr.Kind != ctable.VarGTVar {
				v := a.Task.Expr.X
				lo, hi := know.Bounds(v)
				eff[v] = conditionDist(base[v], lo, hi)
			}
		}

		ev := prob.NewEvaluator(eff)
		for o, cached := range res.Probs {
			fresh := ev.Prob(res.CTable.Conds[o])
			if math.Abs(fresh-cached) > 1e-9 {
				t.Fatalf("trial %d: object %d cached Pr=%v, fresh Pr=%v (stale cache)",
					trial, o, cached, fresh)
			}
		}
	}
}
