package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"bayescrowd/internal/bayesnet"
	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/prob"
)

func TestMarginalDists(t *testing.T) {
	d := dataset.New([]dataset.Attribute{{Name: "a", Levels: 3}})
	d.MustAppend(dataset.Object{ID: "o1", Cells: []dataset.Cell{dataset.Known(2)}})
	d.MustAppend(dataset.Object{ID: "o2", Cells: []dataset.Cell{dataset.Known(2)}})
	d.MustAppend(dataset.Object{ID: "o3", Cells: []dataset.Cell{dataset.Unknown()}})

	dists, err := Preprocess(d, Options{MarginalsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	dist, ok := dists[ctable.Var{Obj: 2, Attr: 0}]
	if !ok {
		t.Fatal("missing cell has no distribution")
	}
	// Counts: value 2 observed twice; add-one smoothing over 3 levels:
	// (0+1)/5, (0+1)/5, (2+1)/5.
	want := []float64{0.2, 0.2, 0.6}
	for v := range want {
		if math.Abs(dist[v]-want[v]) > 1e-12 {
			t.Fatalf("marginal = %v, want %v", dist, want)
		}
	}
	// Only missing cells get distributions.
	if len(dists) != 1 {
		t.Fatalf("got %d distributions, want 1", len(dists))
	}
}

func TestPreprocessWithProvidedNet(t *testing.T) {
	// Chain net a1 → a2 with strong coupling: observing a1 must shift the
	// posterior of a missing a2.
	net := bayesnet.MustNew([]bayesnet.Node{
		{Name: "a1", Levels: 2, CPT: []float64{0.5, 0.5}},
		{Name: "a2", Levels: 2, Parents: []int{0}, CPT: []float64{0.9, 0.1, 0.1, 0.9}},
	})
	d := dataset.New([]dataset.Attribute{{Name: "a1", Levels: 2}, {Name: "a2", Levels: 2}})
	d.MustAppend(dataset.Object{ID: "hi", Cells: []dataset.Cell{dataset.Known(1), dataset.Unknown()}})
	d.MustAppend(dataset.Object{ID: "lo", Cells: []dataset.Cell{dataset.Known(0), dataset.Unknown()}})

	dists, err := Preprocess(d, Options{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	hi := dists[ctable.Var{Obj: 0, Attr: 1}]
	lo := dists[ctable.Var{Obj: 1, Attr: 1}]
	if math.Abs(hi[1]-0.9) > 1e-9 || math.Abs(lo[1]-0.1) > 1e-9 {
		t.Fatalf("posteriors hi=%v lo=%v, want P(a2=1) = 0.9 / 0.1", hi, lo)
	}
}

func TestPreprocessSchemaMismatch(t *testing.T) {
	net := bayesnet.MustNew([]bayesnet.Node{
		{Name: "a1", Levels: 2, CPT: []float64{0.5, 0.5}},
	})
	d := dataset.New([]dataset.Attribute{{Name: "a1", Levels: 2}, {Name: "a2", Levels: 2}})
	if _, err := Preprocess(d, Options{Net: net}); err == nil {
		t.Error("Preprocess accepted node-count mismatch")
	}

	net3 := bayesnet.MustNew([]bayesnet.Node{
		{Name: "a1", Levels: 3, CPT: []float64{0.4, 0.3, 0.3}},
		{Name: "a2", Levels: 2, CPT: []float64{0.5, 0.5}},
	})
	if _, err := Preprocess(d, Options{Net: net3}); err == nil {
		t.Error("Preprocess accepted level mismatch")
	}
}

func TestPreprocessLearnsFromCompleteRows(t *testing.T) {
	// Strong a1→a2 dependence in the data: the learned network's
	// posterior for a missing a2 must depend on the object's a1.
	rng := rand.New(rand.NewSource(81))
	truth := bayesnet.MustNew([]bayesnet.Node{
		{Name: "a1", Levels: 2, CPT: []float64{0.5, 0.5}},
		{Name: "a2", Levels: 2, Parents: []int{0}, CPT: []float64{0.95, 0.05, 0.05, 0.95}},
	})
	d := dataset.New([]dataset.Attribute{{Name: "a1", Levels: 2}, {Name: "a2", Levels: 2}})
	for i := 0; i < 400; i++ {
		row := truth.Sample(rng)
		d.MustAppend(dataset.Object{ID: "", Cells: []dataset.Cell{dataset.Known(row[0]), dataset.Known(row[1])}})
	}
	// Two incomplete probe objects.
	d.MustAppend(dataset.Object{ID: "hi", Cells: []dataset.Cell{dataset.Known(1), dataset.Unknown()}})
	d.MustAppend(dataset.Object{ID: "lo", Cells: []dataset.Cell{dataset.Known(0), dataset.Unknown()}})

	dists, err := Preprocess(d, Options{LearnOpts: bayesnet.LearnOptions{Rng: rng}})
	if err != nil {
		t.Fatal(err)
	}
	hi := dists[ctable.Var{Obj: 400, Attr: 1}]
	lo := dists[ctable.Var{Obj: 401, Attr: 1}]
	if hi[1] < 0.8 || lo[1] > 0.2 {
		t.Fatalf("learned posteriors hi=%v lo=%v; dependence not captured", hi, lo)
	}
}

func TestPreprocessFallsBackWithFewCompleteRows(t *testing.T) {
	d := dataset.New([]dataset.Attribute{{Name: "a1", Levels: 2}, {Name: "a2", Levels: 2}})
	for i := 0; i < 10; i++ {
		d.MustAppend(dataset.Object{ID: "", Cells: []dataset.Cell{dataset.Known(1), dataset.Unknown()}})
	}
	dists, err := Preprocess(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != 10 {
		t.Fatalf("got %d distributions, want 10", len(dists))
	}
	for v, dist := range dists {
		sum := 0.0
		for _, p := range dist {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("distribution for %v sums to %v", v, sum)
		}
	}
}

func TestConditionDist(t *testing.T) {
	base := []float64{0.1, 0.2, 0.3, 0.4}
	got := conditionDist(base, 1, 2)
	want := []float64{0, 0.4, 0.6, 0}
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("conditionDist = %v, want %v", got, want)
		}
	}
	// Full interval is a no-op renormalisation.
	full := conditionDist(base, 0, 3)
	for v := range base {
		if math.Abs(full[v]-base[v]) > 1e-12 {
			t.Fatalf("full-interval conditionDist = %v", full)
		}
	}
	// Zero-mass interval falls back to uniform over the interval.
	zero := conditionDist([]float64{0.5, 0.5, 0, 0}, 2, 3)
	if math.Abs(zero[2]-0.5) > 1e-12 || math.Abs(zero[3]-0.5) > 1e-12 {
		t.Fatalf("zero-mass conditionDist = %v", zero)
	}
}

func TestPosteriorCacheConsistency(t *testing.T) {
	// Objects with identical observed profiles must share identical
	// posterior slices (cache hit), and different profiles must differ.
	net := bayesnet.MustNew([]bayesnet.Node{
		{Name: "a1", Levels: 2, CPT: []float64{0.5, 0.5}},
		{Name: "a2", Levels: 2, Parents: []int{0}, CPT: []float64{0.8, 0.2, 0.2, 0.8}},
	})
	d := dataset.New([]dataset.Attribute{{Name: "a1", Levels: 2}, {Name: "a2", Levels: 2}})
	d.MustAppend(dataset.Object{ID: "x", Cells: []dataset.Cell{dataset.Known(1), dataset.Unknown()}})
	d.MustAppend(dataset.Object{ID: "y", Cells: []dataset.Cell{dataset.Known(1), dataset.Unknown()}})
	d.MustAppend(dataset.Object{ID: "z", Cells: []dataset.Cell{dataset.Known(0), dataset.Unknown()}})
	dists := posteriors(d, net)
	x := dists[ctable.Var{Obj: 0, Attr: 1}]
	y := dists[ctable.Var{Obj: 1, Attr: 1}]
	z := dists[ctable.Var{Obj: 2, Attr: 1}]
	if &x[0] != &y[0] {
		t.Error("identical evidence did not share the cached posterior")
	}
	if math.Abs(x[1]-z[1]) < 1e-9 {
		t.Error("different evidence produced identical posteriors")
	}
}

func TestStrategyStringInCore(t *testing.T) {
	if FBS.String() != "FBS" || UBS.String() != "UBS" || HHS.String() != "HHS" {
		t.Fatal("Strategy.String broken")
	}
	if s := Strategy(99).String(); s == "" {
		t.Fatal("unknown strategy produced empty string")
	}
}

func TestLearnNetworkStandalone(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	d := dataset.GenNBA(rng, 200)
	net, err := LearnNetwork(d, bayesnet.LearnOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != d.NumAttrs() {
		t.Fatalf("learned %d nodes for %d attributes", net.NumNodes(), d.NumAttrs())
	}
	// Too few complete rows errors.
	if _, err := LearnNetwork(dataset.SampleMovies(), bayesnet.LearnOptions{}); err == nil {
		t.Fatal("LearnNetwork accepted a 5-row dataset")
	}
}

func TestRunSurfacesPreprocessError(t *testing.T) {
	// Mismatched network schema must surface as an error from Run.
	d := dataset.SampleMovies()
	net := bayesnet.MustNew([]bayesnet.Node{
		{Name: "only", Levels: 2, CPT: []float64{0.5, 0.5}},
	})
	platform := crowd.NewSimulated(d, 1.0, nil)
	if _, err := Run(d, platform, Options{Budget: 1, Latency: 1, Net: net}); err == nil {
		t.Fatal("Run accepted a mismatched network")
	}
}

type failingImputer struct{}

func (failingImputer) Distributions(*dataset.Dataset) (prob.Dists, error) {
	return nil, fmt.Errorf("boom")
}

func TestRunWithDistsValidatesOptions(t *testing.T) {
	d := dataset.SampleMovies()
	platform := crowd.NewSimulated(d, 1.0, nil)
	if _, err := RunWithDists(d, prob.Dists{}, platform, Options{Budget: 0, Latency: 1}); err == nil {
		t.Fatal("RunWithDists accepted zero budget")
	}
}

func TestImputerErrorSurfaces(t *testing.T) {
	d := dataset.SampleMovies()
	platform := crowd.NewSimulated(d, 1.0, nil)
	if _, err := Run(d, platform, Options{Budget: 1, Latency: 1, Imputer: failingImputer{}}); err == nil {
		t.Fatal("Run swallowed the imputer error")
	}
}
