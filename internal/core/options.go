// Package core implements the BayesCrowd framework (paper Algorithm 1):
// the modeling phase builds the c-table, the crowdsourcing phase
// iteratively selects conflict-free task batches under budget and latency
// constraints, posts them, absorbs the answers, and infers the query
// result set.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"bayescrowd/internal/bayesnet"
	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/parallel"
	"bayescrowd/internal/prob"
)

// Strategy selects which expression of a chosen object's condition to
// crowdsource (paper §6.2).
type Strategy int

const (
	// FBS — frequency-based strategy: the most frequent expression among
	// the conditions of the chosen top-k objects.
	FBS Strategy = iota
	// UBS — utility-based strategy: the expression with the highest
	// marginal utility (expected information gain, Eq. 4-5).
	UBS
	// HHS — hybrid heuristic strategy (Algorithm 4): visit expressions in
	// frequency order, keep the best utility seen, and stop after m
	// consecutive non-improving expressions.
	HHS
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case FBS:
		return "FBS"
	case UBS:
		return "UBS"
	case HHS:
		return "HHS"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a BayesCrowd run. The zero value is not usable; use
// the documented defaults from the paper (§7): NBA α=0.003, B=50, m=15,
// L=5; Synthetic α=0.01, B=1000, m=50, L=10.
type Options struct {
	// Alpha is the Get-CTable pruning threshold (Algorithm 2); <= 0
	// disables pruning.
	Alpha float64
	// Budget is B, the total number of affordable tasks. It must be
	// positive.
	Budget int
	// Latency is L, the maximum number of task-selection rounds; the
	// per-round batch size is ⌈B/L⌉. It must be positive.
	Latency int
	// Strategy picks the expression-selection strategy.
	Strategy Strategy
	// M is the HHS early-stop parameter; ignored by FBS and UBS.
	M int

	// TaskCost prices a task in budget units; nil means every task costs
	// one unit, the paper's fixed-price default. §6.1 notes that variable
	// task difficulty is handled by "accumulating the respective crowd
	// cost of the task one by one", which is exactly what a non-nil
	// TaskCost does: a round's batch is filled until its accumulated
	// price reaches the per-round allowance ⌈B/L⌉, and the budget is
	// charged actual prices. Costs must be positive.
	TaskCost func(crowd.Task) int

	// Net is the Bayesian network over the data attributes used to derive
	// missing-value posteriors. When nil, the preprocessing step learns
	// one from the dataset's complete rows (LearnOpts), falling back to
	// independent empirical marginals when there are too few complete
	// rows.
	Net *bayesnet.Network
	// LearnOpts tunes structure learning when Net is nil.
	LearnOpts bayesnet.LearnOptions
	// Imputer, when non-nil, supplies the missing-value distributions
	// directly, replacing the Bayesian network — e.g. the denoising
	// autoencoder of internal/dae, the alternative §3 names.
	Imputer Imputer
	// MarginalsOnly skips the Bayesian network entirely and models every
	// missing value by its attribute's empirical marginal — the
	// "no correlation" ablation.
	MarginalsOnly bool
	// NoInference disables answer propagation: each crowd answer decides
	// only the literally asked expression instead of narrowing the
	// variable for every condition that mentions it — the
	// answer-propagation ablation.
	NoInference bool

	// NoCache disables the connected-component probability cache the
	// crowdsourcing phase keeps across Pr(φ) evaluations (see
	// prob.ComponentCache) — the cache ablation. Cached and uncached runs
	// return bit-identical results; the cache changes only wall-clock
	// time.
	NoCache bool
	// CacheSize bounds the component cache to at most this many memoized
	// components; <= 0 (the zero value) selects prob.DefaultCacheSize.
	// Ignored when NoCache is set.
	CacheSize int

	// Workers bounds the goroutines the framework fans independent work
	// out to: the c-table dominator scan and CNF construction, the
	// per-object Pr(φ) computation and per-round recomputation, and the
	// UBS/HHS utility scoring of candidate expressions. <= 0 (the zero
	// value) means one worker per available CPU (runtime.GOMAXPROCS(0));
	// 1 runs every phase exactly as the sequential implementation did.
	// Results are bit-identical at any setting — each unit of work is
	// computed wholly by one worker and merged in a fixed index order, so
	// parallelism changes only wall-clock time. (The one exception is the
	// Result.Cache hit/miss counters, which depend on scheduling: two
	// workers may both miss a component that one worker would compute
	// once and then hit. The cached values themselves are identical.)
	Workers int

	// Rng drives tie-breaking; defaults to a fixed seed.
	Rng *rand.Rand

	// OnRound, when non-nil, is invoked after each crowdsourcing round
	// with the 1-based round number, the tasks just posted, and the
	// number of still-undecided conditions — a progress hook for CLIs
	// and long-running queries.
	OnRound func(round, tasksPosted, undecided int)
}

func (o Options) withDefaults() (Options, error) {
	if o.Budget <= 0 {
		return o, fmt.Errorf("core: budget %d must be positive", o.Budget)
	}
	if o.Latency <= 0 {
		return o, fmt.Errorf("core: latency %d must be positive", o.Latency)
	}
	if o.Strategy == HHS && o.M <= 0 {
		return o, fmt.Errorf("core: HHS requires a positive m, got %d", o.M)
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	o.Workers = parallel.Workers(o.Workers)
	return o, nil
}

// Result reports the outcome of a BayesCrowd run.
type Result struct {
	// Answers is the query result set: objects whose condition is decided
	// true plus objects whose final satisfaction probability exceeds 0.5
	// (§7).
	Answers []int
	// Probs holds the final Pr(φ(o)) of every object whose condition is
	// still undecided.
	Probs map[int]float64
	// TasksPosted and Rounds are the monetary-cost and latency metrics.
	TasksPosted int
	Rounds      int
	// BudgetSpent is the accumulated task cost in budget units; it equals
	// TasksPosted under the default unit pricing.
	BudgetSpent int
	// ConflictingAnswers counts crowd answers that contradicted earlier
	// knowledge and were discarded (possible with imperfect workers).
	ConflictingAnswers int
	// CTable is the final conditional table after all answers were
	// absorbed, for inspection and reporting.
	CTable *ctable.CTable
	// Cache reports the component cache's hit/miss/eviction/invalidation
	// counters for the run (all zero under Options.NoCache).
	Cache prob.CacheStats
	// SelectTime and ProbTime break the crowdsourcing phase's wall time
	// into its two model-counting bills: cumulative task selection (the
	// UBS/HHS candidate scoring the component cache accelerates) and
	// cumulative Pr(φ) maintenance (the initial fan-out plus the per-round
	// stale recomputation). They are measured around sequential sections
	// of the round loop, so they are safe at any worker count.
	SelectTime time.Duration
	ProbTime   time.Duration
}
