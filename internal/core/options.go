// Package core implements the BayesCrowd framework (paper Algorithm 1):
// the modeling phase builds the c-table, the crowdsourcing phase
// iteratively selects conflict-free task batches under budget and latency
// constraints, posts them, absorbs the answers, and infers the query
// result set.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"bayescrowd/internal/bayesnet"
	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/obs"
	"bayescrowd/internal/parallel"
	"bayescrowd/internal/prob"
)

// Strategy selects which expression of a chosen object's condition to
// crowdsource (paper §6.2).
type Strategy int

const (
	// FBS — frequency-based strategy: the most frequent expression among
	// the conditions of the chosen top-k objects.
	FBS Strategy = iota
	// UBS — utility-based strategy: the expression with the highest
	// marginal utility (expected information gain, Eq. 4-5).
	UBS
	// HHS — hybrid heuristic strategy (Algorithm 4): visit expressions in
	// frequency order, keep the best utility seen, and stop after m
	// consecutive non-improving expressions.
	HHS
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case FBS:
		return "FBS"
	case UBS:
		return "UBS"
	case HHS:
		return "HHS"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a BayesCrowd run. The zero value is not usable; use
// the documented defaults from the paper (§7): NBA α=0.003, B=50, m=15,
// L=5; Synthetic α=0.01, B=1000, m=50, L=10.
type Options struct {
	// Alpha is the Get-CTable pruning threshold (Algorithm 2); <= 0
	// disables pruning.
	Alpha float64
	// Budget is B, the total number of affordable tasks. It must be
	// positive.
	Budget int
	// Latency is L, the maximum number of task-selection rounds; the
	// per-round batch size is ⌈B/L⌉. It must be positive.
	Latency int
	// Strategy picks the expression-selection strategy.
	Strategy Strategy
	// M is the HHS early-stop parameter; ignored by FBS and UBS.
	M int

	// TaskCost prices a task in budget units; nil means every task costs
	// one unit, the paper's fixed-price default. §6.1 notes that variable
	// task difficulty is handled by "accumulating the respective crowd
	// cost of the task one by one", which is exactly what a non-nil
	// TaskCost does: a round's batch is filled until its accumulated
	// price reaches the per-round allowance ⌈B/L⌉, and the budget is
	// charged actual prices. Costs must be positive.
	TaskCost func(crowd.Task) int

	// Net is the Bayesian network over the data attributes used to derive
	// missing-value posteriors. When nil, the preprocessing step learns
	// one from the dataset's complete rows (LearnOpts), falling back to
	// independent empirical marginals when there are too few complete
	// rows.
	Net *bayesnet.Network
	// LearnOpts tunes structure learning when Net is nil.
	LearnOpts bayesnet.LearnOptions
	// Imputer, when non-nil, supplies the missing-value distributions
	// directly, replacing the Bayesian network — e.g. the denoising
	// autoencoder of internal/dae, the alternative §3 names.
	Imputer Imputer
	// MarginalsOnly skips the Bayesian network entirely and models every
	// missing value by its attribute's empirical marginal — the
	// "no correlation" ablation.
	MarginalsOnly bool
	// NoInference disables answer propagation: each crowd answer decides
	// only the literally asked expression instead of narrowing the
	// variable for every condition that mentions it — the
	// answer-propagation ablation.
	NoInference bool

	// ApproxThreshold switches Pr(φ) model counting from exact ADPLL to
	// the ApproxCount estimator for any connected component with more
	// than this many distinct variables (see prob.Options.ApproxThreshold
	// for the determinism and error-bound contract: estimates are seeded
	// from the component fingerprint, so results stay bit-identical at
	// any worker count, and on the seeded benchmark components the
	// estimate stays within 0.05 absolute of the exact probability).
	// 0 — the default — counts every component exactly.
	ApproxThreshold int
	// LegacyProb runs Pr(φ) through the original clause-rewriting
	// recursion instead of the compiled bitset clause-state engine. The
	// two are bit-identical; the switch exists for equivalence tests and
	// the benchmark harness's in-run speedup measurement.
	LegacyProb bool

	// NoCache disables the connected-component probability cache the
	// crowdsourcing phase keeps across Pr(φ) evaluations (see
	// prob.ComponentCache) — the cache ablation. Cached and uncached runs
	// return bit-identical results; the cache changes only wall-clock
	// time.
	NoCache bool
	// CacheSize bounds the component cache to at most this many memoized
	// components; <= 0 (the zero value) selects prob.DefaultCacheSize.
	// Ignored when NoCache is set.
	CacheSize int

	// Workers bounds the goroutines the framework fans independent work
	// out to: the c-table dominator scan and CNF construction, the
	// per-object Pr(φ) computation and per-round recomputation, and the
	// UBS/HHS utility scoring of candidate expressions. <= 0 (the zero
	// value) means one worker per available CPU (runtime.GOMAXPROCS(0));
	// 1 runs every phase exactly as the sequential implementation did.
	// Results are bit-identical at any setting — each unit of work is
	// computed wholly by one worker and merged in a fixed index order, so
	// parallelism changes only wall-clock time. (The one exception is the
	// Result.Cache hit/miss counters, which depend on scheduling: two
	// workers may both miss a component that one worker would compute
	// once and then hit. The cached values themselves are identical.)
	Workers int

	// MaxRetries bounds how many times a round whose Post call failed
	// outright (a platform outage) is re-posted before the run degrades.
	// Answers that arrived before the failure are kept; only the
	// still-unanswered tasks are retried. 0 — the default — retries
	// nothing: the first failed round degrades the run.
	MaxRetries int
	// RetryBackoff is the base delay of the capped exponential backoff
	// between retries: attempt i sleeps base·2^i, capped at 32·base.
	// Zero (the default) retries immediately — simulated platforms have
	// nothing to wait for; give live marketplaces a real base delay.
	RetryBackoff time.Duration
	// ChargeOnPost charges the budget for every posted task whether or
	// not its answer arrives — the marketplace-bills-on-listing model.
	// The default (false) charges on answer: tasks the platform drops
	// cost nothing and their budget is available for re-posting. With a
	// fault-free platform the two modes charge identically.
	ChargeOnPost bool
	// ReaskConflicts re-posts a task whose answer conflicted with
	// earlier knowledge up to this many times within the same round and
	// absorbs the majority relation of the re-asked answers (the unique
	// top vote; ties stay discarded). Re-asks are charged like any other
	// answered task. 0 — the default — keeps the discard-only policy.
	ReaskConflicts int

	// Trace, when non-nil, receives the run's typed trace events (see
	// internal/obs): round boundaries, entropy rankings, strategy picks,
	// task lifecycle, conflicts, cache invalidations, degradation. Events
	// are emitted only from the run's sequential single-writer sections
	// and are stamped by the Recorder's logical clock, so a seeded run
	// traces byte-identically at any Workers setting. The Recorder is
	// single-writer: do not share one across concurrent runs. nil — the
	// default — disables tracing at zero cost.
	Trace *obs.Recorder
	// Metrics, when non-nil, receives the run's scheduling-dependent
	// numbers as monotonic counters and duration histograms (see
	// internal/obs.Registry): per-round select/prob/round wall times,
	// component-cache hit/miss/eviction/invalidation deltas, and task
	// tallies. These are deliberately kept out of the trace — they vary
	// with goroutine scheduling. nil — the default — disables metrics at
	// zero cost.
	Metrics *obs.Registry

	// Rng drives tie-breaking; defaults to a fixed seed.
	Rng *rand.Rand

	// OnRound, when non-nil, is invoked after each crowdsourcing round
	// with the 1-based round number, the tasks just posted, and the
	// number of still-undecided conditions — a progress hook for CLIs
	// and long-running queries.
	OnRound func(round, tasksPosted, undecided int)
}

func (o Options) withDefaults() (Options, error) {
	if o.Budget <= 0 {
		return o, fmt.Errorf("core: budget %d must be positive", o.Budget)
	}
	if o.Latency <= 0 {
		return o, fmt.Errorf("core: latency %d must be positive", o.Latency)
	}
	if o.Strategy == HHS && o.M <= 0 {
		return o, fmt.Errorf("core: HHS requires a positive m, got %d", o.M)
	}
	if o.MaxRetries < 0 {
		return o, fmt.Errorf("core: MaxRetries %d must be non-negative", o.MaxRetries)
	}
	if o.ReaskConflicts < 0 {
		return o, fmt.Errorf("core: ReaskConflicts %d must be non-negative", o.ReaskConflicts)
	}
	if o.ApproxThreshold < 0 {
		return o, fmt.Errorf("core: ApproxThreshold %d must be non-negative", o.ApproxThreshold)
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	o.Workers = parallel.Workers(o.Workers)
	return o, nil
}

// Result reports the outcome of a BayesCrowd run.
type Result struct {
	// Answers is the query result set: objects whose condition is decided
	// true plus objects whose final satisfaction probability exceeds 0.5
	// (§7).
	Answers []int
	// Probs holds the final Pr(φ(o)) of every object whose condition is
	// still undecided.
	Probs map[int]float64
	// TasksPosted and Rounds are the monetary-cost and latency metrics.
	TasksPosted int
	Rounds      int
	// BudgetSpent is the accumulated task cost in budget units. Under the
	// default charge-on-answer accounting it counts only delivered
	// answers (main rounds plus re-asks), so it equals the number of
	// answers absorbed under unit pricing; with Options.ChargeOnPost it
	// counts posted tasks, answered or not. On a fault-free platform the
	// two coincide and it equals TasksPosted under unit pricing.
	BudgetSpent int
	// ConflictingAnswers counts crowd answers that contradicted earlier
	// knowledge and were discarded (possible with imperfect workers).
	// Answers later rescued by the re-ask policy are still counted here;
	// see ConflictsResolved.
	ConflictingAnswers int
	// ConflictsResolved counts conflicting tasks whose re-asked majority
	// (Options.ReaskConflicts) was absorbed successfully.
	ConflictsResolved int
	// TasksAnswered counts answers delivered in main rounds (re-asks are
	// tracked separately in TasksReasked); TasksPosted-TasksAnswered is
	// the number of answers the platform dropped.
	TasksAnswered int
	// TasksDropped counts posted tasks whose answer never arrived.
	TasksDropped int
	// TasksRequeued counts dropped tasks whose expression was still
	// undecided after the round — they return to the candidate pool and
	// later rounds may select them again.
	TasksRequeued int
	// TasksReasked counts re-posted copies of conflicting tasks.
	TasksReasked int
	// RoundRetries counts failed Post attempts that were retried;
	// FailedRounds counts every Post attempt that returned a round-level
	// error, retried or not (re-ask posts included).
	RoundRetries int
	FailedRounds int
	// BackoffTime is the total time slept between retries.
	BackoffTime time.Duration
	// Degraded reports that the run ended early on a best-effort result:
	// a round kept failing past MaxRetries, or the budget ran out while
	// fault-dropped tasks were still unrecovered. The Answers/Probs are
	// still the exact probabilistic skyline of everything absorbed so
	// far; DegradedReason says what was lost.
	Degraded       bool
	DegradedReason string
	// CTable is the final conditional table after all answers were
	// absorbed, for inspection and reporting.
	CTable *ctable.CTable
	// Cache reports the component cache's hit/miss/eviction/invalidation
	// counters for the run (all zero under Options.NoCache).
	Cache prob.CacheStats
	// ApproxComponents counts the connected components whose probability
	// was estimated by the ApproxCount fallback rather than counted
	// exactly (always zero unless Options.ApproxThreshold is set). Like
	// the cache counters, the count depends on scheduling when the
	// component cache is shared — the estimated values themselves do not.
	ApproxComponents int64
	// SelectTime and ProbTime break the crowdsourcing phase's wall time
	// into its two model-counting bills: cumulative task selection (the
	// UBS/HHS candidate scoring the component cache accelerates) and
	// cumulative Pr(φ) maintenance (the initial fan-out plus the per-round
	// stale recomputation). They are measured around sequential sections
	// of the round loop, so they are safe at any worker count.
	SelectTime time.Duration
	ProbTime   time.Duration
}
