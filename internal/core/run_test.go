package core

import (
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/metrics"
	"bayescrowd/internal/skyline"
)

// sampleTruth completes the paper's 5-movie sample with ground-truth
// values consistent with Example 4's assumed crowd answers:
// Var(o2,a2)=4 (>3), Var(o3,a3)=2, Var(o5,a2)=3 (>2), Var(o5,a3)=3 (=3),
// Var(o5,a4)=3 (<4). The complete-data skyline is then {o1, o2, o3, o5}.
func sampleTruth() *dataset.Dataset {
	d := dataset.SampleMovies().Clone()
	d.Objects[1].Cells[1] = dataset.Known(4)
	d.Objects[2].Cells[2] = dataset.Known(2)
	d.Objects[4].Cells[1] = dataset.Known(3)
	d.Objects[4].Cells[2] = dataset.Known(3)
	d.Objects[4].Cells[3] = dataset.Known(3)
	return d
}

func TestSampleTruthSkyline(t *testing.T) {
	want := []int{0, 1, 2, 4}
	if got := skyline.BNL(sampleTruth()); !reflect.DeepEqual(got, want) {
		t.Fatalf("ground-truth skyline = %v, want %v", got, want)
	}
}

// TestPaperExample4EndToEnd drives the full crowdsourcing phase on the
// paper's running example with the Example 3 distributions, budget 6,
// latency 3 and perfect workers, for each strategy. All must recover the
// exact result set {o1, o2, o3, o5}.
func TestPaperExample4EndToEnd(t *testing.T) {
	incomplete := dataset.SampleMovies()
	truth := sampleTruth()
	want := []int{0, 1, 2, 4}

	for _, strat := range []Strategy{FBS, UBS, HHS} {
		opt := Options{
			Alpha:    1,
			Budget:   6,
			Latency:  3,
			Strategy: strat,
			M:        2,
			Rng:      rand.New(rand.NewSource(4)),
		}
		opt, err := opt.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		platform := crowd.NewSimulated(truth, 1.0, nil)
		ct := ctable.Build(incomplete, ctable.BuildOptions{Alpha: opt.Alpha})
		res, err := crowdPhase(incomplete, ct, example3Dists(), platform, opt)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !reflect.DeepEqual(res.Answers, want) {
			t.Errorf("%v: Answers = %v, want %v", strat, res.Answers, want)
		}
		if res.TasksPosted > 6 {
			t.Errorf("%v: posted %d tasks, budget 6", strat, res.TasksPosted)
		}
		if res.Rounds > 3 {
			t.Errorf("%v: used %d rounds, latency 3", strat, res.Rounds)
		}
		if res.TasksPosted != platform.Stats.TasksPosted || res.Rounds != platform.Stats.Rounds {
			t.Errorf("%v: result stats disagree with platform stats", strat)
		}
	}
}

// TestConflictFreeBatches verifies no two tasks in any posted batch share
// a variable (§6.1).
type recordingPlatform struct {
	inner   crowd.Platform
	batches [][]crowd.Task
}

func (r *recordingPlatform) Post(tasks []crowd.Task) ([]crowd.Answer, error) {
	r.batches = append(r.batches, append([]crowd.Task(nil), tasks...))
	return r.inner.Post(tasks)
}

func TestConflictFreeBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	truth := dataset.GenNBA(rng, 300)
	incomplete := truth.InjectMissing(rng, 0.15)

	rec := &recordingPlatform{inner: crowd.NewSimulated(truth, 1.0, nil)}
	_, err := Run(incomplete, rec, Options{
		Alpha:    0.05,
		Budget:   40,
		Latency:  5,
		Strategy: FBS,
		Net:      dataset.NBANet(),
		Rng:      rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.batches) == 0 {
		t.Fatal("no batches posted")
	}
	for bi, batch := range rec.batches {
		seen := map[ctable.Var]bool{}
		var buf []ctable.Var
		for _, task := range batch {
			for _, v := range task.Expr.Vars(buf[:0]) {
				if seen[v] {
					t.Fatalf("batch %d: variable %v in two tasks", bi, v)
				}
				seen[v] = true
			}
		}
	}
}

// TestPerfectRunReachesPerfectF1 gives each strategy ample budget with
// perfect workers on tie-free data: the final result must equal the
// complete-data skyline exactly.
func TestPerfectRunReachesPerfectF1(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	truth := dataset.GenIndependent(rng, 120, 4, 16)
	incomplete := truth.InjectMissing(rng, 0.15)
	want := skyline.BNL(truth)

	for _, strat := range []Strategy{FBS, UBS, HHS} {
		res, err := Run(incomplete, crowd.NewSimulated(truth, 1.0, nil), Options{
			Alpha:    0, // no pruning
			Budget:   100000,
			Latency:  1000,
			Strategy: strat,
			M:        5,
			Rng:      rand.New(rand.NewSource(63)),
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if f1 := metrics.F1(res.Answers, want); f1 != 1 {
			t.Errorf("%v: F1 = %v with unlimited budget and perfect workers", strat, f1)
		}
		if len(res.Probs) != 0 {
			t.Errorf("%v: %d conditions left undecided with unlimited budget", strat, len(res.Probs))
		}
	}
}

// TestBudgetMonotonicity: more budget must not hurt accuracy (same seed,
// perfect workers).
func TestBudgetMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	truth := dataset.GenCorrelated(rng, 200, 5, 10, 0.5)
	incomplete := truth.InjectMissing(rng, 0.15)
	want := skyline.BNL(truth)

	run := func(budget int) float64 {
		res, err := Run(incomplete, crowd.NewSimulated(truth, 1.0, nil), Options{
			Alpha: 0.3, Budget: budget, Latency: 5, Strategy: FBS,
			MarginalsOnly: true,
			Rng:           rand.New(rand.NewSource(65)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.F1(res.Answers, want)
	}
	small, large := run(5), run(500)
	if large < small-1e-9 {
		t.Errorf("F1 dropped from %v to %v with 100x budget", small, large)
	}
}

func TestRunRespectsBudgetAndLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	truth := dataset.GenIndependent(rng, 150, 4, 8)
	incomplete := truth.InjectMissing(rng, 0.2)
	platform := crowd.NewSimulated(truth, 1.0, nil)
	res, err := Run(incomplete, platform, Options{
		Alpha: 0.3, Budget: 17, Latency: 4, Strategy: FBS,
		MarginalsOnly: true,
		Rng:           rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksPosted > 17 {
		t.Errorf("TasksPosted = %d > budget 17", res.TasksPosted)
	}
	if res.Rounds > 4 {
		t.Errorf("Rounds = %d > latency 4", res.Rounds)
	}
	// ⌈17/4⌉ = 5 tasks per round at most.
	if res.Rounds > 0 && res.TasksPosted > res.Rounds*5 {
		t.Errorf("batches exceed μ: %d tasks in %d rounds", res.TasksPosted, res.Rounds)
	}
}

func TestRunOptionValidation(t *testing.T) {
	d := dataset.SampleMovies()
	platform := crowd.NewSimulated(sampleTruth(), 1.0, nil)
	cases := []Options{
		{Budget: 0, Latency: 1},                      // zero budget
		{Budget: 5, Latency: 0},                      // zero latency
		{Budget: 5, Latency: 1, Strategy: HHS, M: 0}, // HHS without m
	}
	for i, opt := range cases {
		if _, err := Run(d, platform, opt); err == nil {
			t.Errorf("case %d: Run accepted invalid options", i)
		}
	}
}

func TestImperfectWorkersStillProduceResult(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	truth := dataset.GenCorrelated(rng, 150, 4, 8, 0.6)
	incomplete := truth.InjectMissing(rng, 0.15)
	platform := crowd.NewSimulated(truth, 0.7, rand.New(rand.NewSource(68)))
	res, err := Run(incomplete, platform, Options{
		Alpha: 0.3, Budget: 120, Latency: 6, Strategy: HHS, M: 3,
		MarginalsOnly: true,
		Rng:           rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := skyline.BNL(truth)
	if f1 := metrics.F1(res.Answers, want); f1 < 0.3 {
		t.Errorf("F1 = %v with 0.7-accuracy workers; suspiciously low", f1)
	}
}

// TestAnswerPropagation: one answer about a shared variable must decide
// expressions in other objects' conditions without extra tasks.
func TestAnswerPropagation(t *testing.T) {
	// Three objects: o1 and o2 complete, o3 missing a2. Both o1 and o2
	// are only threatened by o3's variable.
	d := dataset.New([]dataset.Attribute{{Name: "a1", Levels: 10}, {Name: "a2", Levels: 10}})
	d.MustAppend(dataset.Object{ID: "o1", Cells: []dataset.Cell{dataset.Known(5), dataset.Known(4)}})
	d.MustAppend(dataset.Object{ID: "o2", Cells: []dataset.Cell{dataset.Known(6), dataset.Known(3)}})
	d.MustAppend(dataset.Object{ID: "o3", Cells: []dataset.Cell{dataset.Known(9), dataset.Unknown()}})

	truth := d.Clone()
	truth.Objects[2].Cells[1] = dataset.Known(2)

	platform := crowd.NewSimulated(truth, 1.0, nil)
	res, err := Run(d, platform, Options{
		Alpha: 1, Budget: 100, Latency: 100, Strategy: FBS,
		MarginalsOnly: true,
		Rng:           rand.New(rand.NewSource(69)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Truth: o3=(9,2). o3 dominates o2 (9>6, 2<3? no — 2 < 3, so o3 does
	// NOT dominate o2). Skyline: o1 (4 beats o3's 2 on a2... o3=9>5 on a1,
	// 2<4 on a2 → no domination), o2, o3 all in skyline.
	want := skyline.BNL(truth)
	if f1 := metrics.F1(res.Answers, want); f1 != 1 {
		t.Fatalf("F1 = %v, want 1 (answers %v, want %v)", f1, res.Answers, want)
	}
	// φ(o1) needs Var(o3,a2) < 4 and φ(o2) needs Var(o3,a2) < 3: a single
	// answer "Var(o3,a2) = 2" (or a < comparison) can settle both, so at
	// most 2 tasks — but propagation should settle it in fewer than the
	// 3 tasks a no-inference approach would need (one per expression,
	// including o3's own condition which is decided true statically).
	if res.TasksPosted > 2 {
		t.Errorf("TasksPosted = %d; propagation should need at most 2", res.TasksPosted)
	}
}

func TestDeterministicRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	truth := dataset.GenIndependent(rng, 100, 4, 8)
	incomplete := truth.InjectMissing(rng, 0.15)
	run := func() *Result {
		res, err := Run(incomplete, crowd.NewSimulated(truth, 0.9, rand.New(rand.NewSource(71))), Options{
			Alpha: 0.3, Budget: 30, Latency: 5, Strategy: HHS, M: 3,
			MarginalsOnly: true,
			Rng:           rand.New(rand.NewSource(72)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Answers, b.Answers) || a.TasksPosted != b.TasksPosted || a.Rounds != b.Rounds {
		t.Fatal("same seeds produced different runs")
	}
}
