package core

import (
	"sort"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/obs"
	"bayescrowd/internal/parallel"
	"bayescrowd/internal/prob"
)

// selectBatch implements one iteration of the two-step task selection
// (§6.2) over a batch c-table; see SelectTasks for the mechanics.
func selectBatch(opt Options, ct *ctable.CTable, ev *prob.Evaluator, probs map[int]float64, k int) []crowd.Task {
	return SelectTasks(opt, ct.Undecided(), func(o int) *ctable.Condition { return ct.Conds[o] }, ev, probs, k, nil)
}

// SelectTasks implements one iteration of the two-step task selection
// (§6.2): rank the candidate objects by the entropy of their current
// Pr(φ), then pick one expression per object according to the strategy,
// keeping the batch conflict-free (no two tasks share a variable,
// §6.1). It returns at most k tasks; objects beyond the top-k are
// consulted only when higher-entropy objects cannot contribute a
// conflict-free task.
//
// objs lists the candidate objects (the undecided ones) in a
// deterministic order and cond supplies each one's live condition; the
// split from the batch CTable lets the streaming crowd loop select over
// its window without materialising one. busy, when non-nil, pre-seeds
// the conflict set — the streaming loop passes the variables of its
// in-flight tasks so a question is never posted twice concurrently.
// Only opt's selection knobs are consulted (Strategy, M, Workers, Rng,
// TaskCost, NoCache, Trace); opt.Rng must be non-nil.
func SelectTasks(opt Options, objs []int, cond func(int) *ctable.Condition, ev *prob.Evaluator, probs map[int]float64, k int, busy map[ctable.Var]bool) []crowd.Task {
	type candidate struct {
		obj int
		h   float64
	}
	// Entropy scoring fans out across the pool (concurrent map reads of
	// probs are safe — nothing writes during selection); candidates are
	// then collected sequentially in index order, exactly as before.
	hs := make([]float64, len(objs))
	parallel.For(opt.Workers, len(objs), func(_, i int) {
		hs[i] = Entropy(probs[objs[i]])
	})
	var cands []candidate
	for i, o := range objs {
		if cond(o).NumExprs() == 0 {
			continue
		}
		cands = append(cands, candidate{obj: o, h: hs[i]})
	}
	if len(cands) == 0 || k <= 0 {
		return nil
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].h > cands[b].h })

	// Expression frequencies across the conditions of the chosen top-k
	// objects (the FBS ranking key and the HHS visiting order).
	top := cands
	if len(top) > k {
		top = top[:k]
	}
	freq := map[ctable.Expr]int{}
	for _, c := range top {
		for _, cl := range cond(c.obj).Clauses {
			for _, e := range cl {
				freq[e]++
			}
		}
	}
	if opt.Trace.On() {
		// The entropy ranking is deterministic: scores merge by index and
		// the stable sort fixes tie order, so top is identical at any
		// worker count.
		for _, c := range top {
			opt.Trace.Emit(obs.Event{Kind: obs.KindEntropyTopK, Obj: c.obj, P: c.h})
		}
	}

	used := make(map[ctable.Var]bool, len(busy))
	for v := range busy {
		used[v] = true
	}
	var tasks []crowd.Task
	var varBuf []ctable.Var
	spent := 0
	for _, c := range cands {
		if spent >= k {
			break
		}
		e, ok := pickExpr(opt, ev, cond(c.obj), probs[c.obj], freq, used)
		if !ok {
			continue // every expression conflicts with this batch
		}
		if opt.Trace.On() {
			opt.Trace.Emit(obs.Event{Kind: obs.KindStrategyPick, Obj: c.obj, Task: e.String()})
		}
		task := crowd.Task{Expr: e}
		cost := taskCost(opt, task)
		// A task pricier than the remaining allowance still ships when it
		// is the round's first — otherwise one expensive task could
		// starve the query forever.
		if spent > 0 && spent+cost > k {
			continue
		}
		tasks = append(tasks, task)
		spent += cost
		varBuf = e.Vars(varBuf[:0])
		for _, v := range varBuf {
			used[v] = true
		}
	}
	return tasks
}

// taskCost prices a task: 1 unit unless Options.TaskCost says otherwise.
// Non-positive prices are a caller bug and panic loudly rather than
// silently corrupting the budget ledger.
func taskCost(opt Options, t crowd.Task) int {
	if opt.TaskCost == nil {
		return 1
	}
	c := opt.TaskCost(t)
	if c < 1 {
		panic("core: TaskCost returned a non-positive price")
	}
	return c
}

// pickExpr chooses one expression of the condition per the strategy,
// avoiding variables already used in the batch. ok is false when no
// conflict-free expression exists.
func pickExpr(opt Options, ev *prob.Evaluator, cond *ctable.Condition, pPhi float64, freq map[ctable.Expr]int, used map[ctable.Var]bool) (ctable.Expr, bool) {
	avail := availableExprs(cond, used)
	if len(avail) == 0 {
		return ctable.Expr{}, false
	}

	// Random permutation first, then a stable sort by frequency: ties are
	// broken randomly, as the paper prescribes, but reproducibly via the
	// seeded Rng.
	opt.Rng.Shuffle(len(avail), func(i, j int) { avail[i], avail[j] = avail[j], avail[i] })
	sort.SliceStable(avail, func(a, b int) bool { return freq[avail[a]] > freq[avail[b]] })

	switch opt.Strategy {
	case FBS:
		return avail[0], true

	case UBS:
		// UBS scores every available expression anyway, so the utilities
		// fan out wholesale over a component scan of the condition —
		// each candidate re-solves only the component holding its
		// variables, with the rest of the formula contributing the scan's
		// precomputed (and usually cache-served) product. Under NoCache
		// the legacy path re-solves the whole formula per candidate; the
		// two paths agree within 1e-12 (they factor the same product in a
		// different order), and the cache ablation measures their gap.
		// The argmax scan below visits the scores in the same order as
		// the sequential loop did.
		gains := utilitiesFor(opt, ev, cond, avail, pPhi)
		best, bestG := avail[0], -1.0
		for i, e := range avail {
			if gains[i] > bestG {
				best, bestG = e, gains[i]
			}
		}
		return best, true

	case HHS:
		// Algorithm 4 lines 10-22: visit in frequency order, early-stop
		// after m consecutive expressions without improvement, scoring
		// through the same per-condition component scan as UBS. With more
		// than one worker the utilities are precomputed speculatively —
		// scores past the stop point are wasted work, never a changed
		// decision, because the scan below applies the identical
		// early-stop rule to identical values. One worker keeps the lazy
		// sequential scan and today's exact work profile.
		var gain func(i int) float64
		if opt.Workers > 1 {
			gains := utilitiesFor(opt, ev, cond, avail, pPhi)
			gain = func(i int) float64 { return gains[i] }
		} else if opt.NoCache {
			gain = func(i int) float64 { return UtilityWith(ev, cond, avail[i], pPhi) }
		} else {
			scan := ev.NewCondScan(cond, pPhi)
			scan.PlanSweeps(avail)
			gain = func(i int) float64 { return UtilityScan(scan, avail[i]) }
		}
		best, bestG := avail[0], 0.0
		c := 0
		for i, e := range avail {
			g := gain(i)
			if g > bestG {
				best, bestG = e, g
				c = 0
				continue
			}
			c++
			if c == opt.M {
				break
			}
		}
		return best, true

	default:
		panic("core: unknown strategy")
	}
}

// utilitiesFor scores every candidate expression: through a component
// scan of the condition by default (one small re-solve per candidate),
// or through full-formula probes under the NoCache ablation (the legacy
// cost profile the cache experiment compares against).
func utilitiesFor(opt Options, ev *prob.Evaluator, cond *ctable.Condition, avail []ctable.Expr, pPhi float64) []float64 {
	if opt.NoCache {
		return UtilitiesWith(ev, cond, avail, pPhi, opt.Workers)
	}
	scan := ev.NewCondScan(cond, pPhi)
	return UtilitiesScan(scan, avail, opt.Workers)
}

// availableExprs returns the condition's distinct expressions whose
// variables are all unused in the current batch.
func availableExprs(cond *ctable.Condition, used map[ctable.Var]bool) []ctable.Expr {
	var out []ctable.Expr
	var buf []ctable.Var
	for _, e := range cond.Exprs() {
		conflict := false
		buf = e.Vars(buf[:0])
		for _, v := range buf {
			if used[v] {
				conflict = true
				break
			}
		}
		if !conflict {
			out = append(out, e)
		}
	}
	return out
}
