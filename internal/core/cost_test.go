package core

import (
	"math/rand"
	"testing"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
)

// varVarCost prices variable-vs-variable comparisons (two unknowns) at
// three units and constant comparisons at one — the "variable task
// difficulties" case of §6.1.
func varVarCost(t crowd.Task) int {
	if t.Expr.Kind == ctable.VarGTVar {
		return 3
	}
	return 1
}

func TestVariableTaskCostsRespectBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	truth := dataset.GenIndependent(rng, 150, 4, 8)
	incomplete := truth.InjectMissing(rng, 0.2)

	res, err := Run(incomplete, crowd.NewSimulated(truth, 1.0, nil), Options{
		Alpha: 0.3, Budget: 30, Latency: 5, Strategy: FBS,
		MarginalsOnly: true,
		TaskCost:      varVarCost,
		Rng:           rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 5 {
		t.Fatalf("Rounds = %d > latency 5", res.Rounds)
	}
	// Variable pricing means fewer tasks fit the same budget.
	if res.TasksPosted > res.BudgetSpent {
		t.Fatalf("TasksPosted %d > BudgetSpent %d with costs >= 1", res.TasksPosted, res.BudgetSpent)
	}
	// Overshoot is possible only via a first-task-of-round exception:
	// at most (maxCost-1) per round.
	if res.BudgetSpent > 30+5*2 {
		t.Fatalf("BudgetSpent = %d far beyond budget 30", res.BudgetSpent)
	}
}

func TestUnitCostsMatchTaskCount(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	truth := dataset.GenIndependent(rng, 100, 3, 8)
	incomplete := truth.InjectMissing(rng, 0.15)
	res, err := Run(incomplete, crowd.NewSimulated(truth, 1.0, nil), Options{
		Alpha: 0.3, Budget: 20, Latency: 4, Strategy: FBS,
		MarginalsOnly: true,
		Rng:           rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetSpent != res.TasksPosted {
		t.Fatalf("unit pricing: BudgetSpent %d != TasksPosted %d", res.BudgetSpent, res.TasksPosted)
	}
	if res.BudgetSpent > 20 {
		t.Fatalf("BudgetSpent %d > budget", res.BudgetSpent)
	}
}

func TestExpensiveTasksReduceThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	truth := dataset.GenIndependent(rng, 150, 4, 8)
	incomplete := truth.InjectMissing(rng, 0.2)

	run := func(cost func(crowd.Task) int) int {
		res, err := Run(incomplete, crowd.NewSimulated(truth, 1.0, nil), Options{
			Alpha: 0.3, Budget: 24, Latency: 4, Strategy: FBS,
			MarginalsOnly: true,
			TaskCost:      cost,
			Rng:           rand.New(rand.NewSource(94)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TasksPosted
	}
	cheap := run(nil)
	pricey := run(func(crowd.Task) int { return 4 })
	if pricey >= cheap {
		t.Fatalf("4x task price did not reduce tasks: %d vs %d", pricey, cheap)
	}
}

func TestNonPositiveCostPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	truth := dataset.GenIndependent(rng, 50, 3, 6)
	incomplete := truth.InjectMissing(rng, 0.2)
	defer func() {
		if recover() == nil {
			t.Fatal("zero task cost did not panic")
		}
	}()
	_, _ = Run(incomplete, crowd.NewSimulated(truth, 1.0, nil), Options{
		Alpha: 0.3, Budget: 10, Latency: 2, Strategy: FBS,
		MarginalsOnly: true,
		TaskCost:      func(crowd.Task) int { return 0 },
		Rng:           rng,
	})
}
