package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/prob"
)

// stripVolatile zeroes the Result fields that legitimately differ between
// two otherwise identical runs: wall-clock durations, the scheduling-
// dependent cache counters, and the c-table pointer.
func stripVolatile(r *Result) *Result {
	c := *r
	c.SelectTime, c.ProbTime, c.BackoffTime = 0, 0, 0
	c.Cache = prob.CacheStats{}
	c.CTable = nil
	return &c
}

func robustEnv(seed int64, n int) (truth, incomplete *dataset.Dataset) {
	rng := rand.New(rand.NewSource(seed))
	truth = dataset.GenIndependent(rng, n, 4, 6)
	return truth, truth.InjectMissing(rng, 0.15)
}

func robustOpts(seed int64) Options {
	return Options{
		Alpha: 0.3, Budget: 40, Latency: 5, Strategy: FBS,
		MarginalsOnly: true,
		Rng:           rand.New(rand.NewSource(seed)),
	}
}

// TestFaultFreeEquivalence is the acceptance gate for the fallible
// contract: with fault injection disabled, the crowd phase must be
// bit-identical to a bare platform run — same answers, same
// probabilities, same ledger — even with the robustness options armed,
// and every robustness counter must stay zero.
func TestFaultFreeEquivalence(t *testing.T) {
	truth, incomplete := robustEnv(301, 90)

	run := func(wrap bool) *Result {
		var platform crowd.Platform = crowd.NewSimulated(truth, 1.0, nil)
		if wrap {
			platform = crowd.NewUnreliable(platform, 0, 0, 0, nil)
		}
		opt := robustOpts(302)
		opt.MaxRetries = 3
		opt.RetryBackoff = time.Millisecond
		opt.ReaskConflicts = 3
		res, err := Run(incomplete, platform, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	bare, wrapped := stripVolatile(run(false)), stripVolatile(run(true))
	if !reflect.DeepEqual(bare, wrapped) {
		t.Fatalf("zero-fault wrapper changed the run:\nbare:    %+v\nwrapped: %+v", bare, wrapped)
	}
	if wrapped.Degraded || wrapped.TasksDropped != 0 || wrapped.TasksRequeued != 0 ||
		wrapped.TasksReasked != 0 || wrapped.RoundRetries != 0 || wrapped.FailedRounds != 0 {
		t.Fatalf("fault-free run shows robustness activity: %+v", wrapped)
	}
	if wrapped.TasksAnswered != wrapped.TasksPosted || wrapped.BudgetSpent != wrapped.TasksPosted {
		t.Fatalf("fault-free ledger off: posted %d answered %d spent %d",
			wrapped.TasksPosted, wrapped.TasksAnswered, wrapped.BudgetSpent)
	}
}

// TestFaultedRunsAreDeterministic pins the seeded fault schedule: two
// runs under identical seeds — worker noise, selection tie-breaks, and
// injected drops/outages/spam — must return byte-identical results.
func TestFaultedRunsAreDeterministic(t *testing.T) {
	truth, incomplete := robustEnv(311, 90)

	run := func() *Result {
		inner := crowd.NewSimulated(truth, 0.9, rand.New(rand.NewSource(313)))
		platform := crowd.NewUnreliable(inner, 0.25, 0.15, 0.1, rand.New(rand.NewSource(314)))
		opt := robustOpts(312)
		opt.Workers = 1 // one worker: even cache counters are reproducible
		opt.MaxRetries = 2
		opt.ReaskConflicts = 3
		res, err := Run(incomplete, platform, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a, b := run(), run()
	if !reflect.DeepEqual(stripVolatile(a), stripVolatile(b)) {
		t.Fatalf("same seeds diverged:\na: %+v\nb: %+v", stripVolatile(a), stripVolatile(b))
	}
	if a.TasksDropped == 0 && a.FailedRounds == 0 {
		t.Fatal("fault schedule injected nothing; the determinism check is vacuous")
	}
}

// adversary scripts the platform behavior per Post call, cycling through
// a fixed sequence of failure modes; it tracks every answer actually
// delivered so tests can check exact budget accounting.
type adversary struct {
	inner     crowd.Platform
	modes     []string
	call      int
	delivered int
}

func (a *adversary) Post(tasks []crowd.Task) ([]crowd.Answer, error) {
	mode := a.modes[a.call%len(a.modes)]
	a.call++
	answers, err := a.inner.Post(tasks)
	if err != nil {
		return nil, err
	}
	switch mode {
	case "full":
	case "drop":
		kept := answers[:0]
		for i, ans := range answers {
			if i%2 == 0 {
				kept = append(kept, ans)
			}
		}
		answers = kept
	case "outage":
		return nil, errors.New("scripted outage")
	case "partial+error":
		answers = answers[:len(answers)/2]
		a.delivered += len(answers)
		return answers, errors.New("scripted mid-round failure")
	case "lie":
		// Flip every relation; wrong constant answers are how noisy
		// workers manufacture knowledge conflicts.
		for i := range answers {
			switch answers[i].Rel {
			case ctable.LT:
				answers[i].Rel = ctable.GT
			case ctable.GT:
				answers[i].Rel = ctable.LT
			default:
				answers[i].Rel = ctable.GT
			}
		}
	default:
		panic("unknown mode " + mode)
	}
	a.delivered += len(answers)
	return answers, nil
}

// TestAdversarialPartialAnswerSequences drives the crowd phase through
// every combination of the adversary's failure modes and asserts the
// hard invariants: termination within the latency bound, no error
// (degradation instead), and an exact budget ledger — under
// charge-on-answer the budget units spent equal the answers delivered.
func TestAdversarialPartialAnswerSequences(t *testing.T) {
	modeSets := [][]string{
		{"full"},
		{"drop"},
		{"outage", "full"},
		{"partial+error", "full"},
		{"lie", "full"},
		{"drop", "outage", "full"},
		{"drop", "lie", "partial+error", "full"},
		{"outage", "drop", "lie", "full", "partial+error"},
	}
	for _, chargeOnPost := range []bool{false, true} {
		for _, reask := range []int{0, 3} {
			for i, modes := range modeSets {
				name := fmt.Sprintf("charge=%v/reask=%d/%s", chargeOnPost, reask, strings.Join(modes, ","))
				truth, incomplete := robustEnv(401+int64(i), 70)
				adv := &adversary{inner: crowd.NewSimulated(truth, 1.0, nil), modes: modes}
				opt := robustOpts(402 + int64(i))
				opt.MaxRetries = 2
				opt.ChargeOnPost = chargeOnPost
				opt.ReaskConflicts = reask

				res, err := Run(incomplete, adv, opt)
				if err != nil {
					t.Fatalf("%s: run errored instead of degrading: %v", name, err)
				}
				if res.Rounds > opt.Latency {
					t.Errorf("%s: %d rounds exceed latency bound %d", name, res.Rounds, opt.Latency)
				}
				// Re-ask copies face the same adversary, so of the
				// TasksReasked posted copies anywhere from none to all may
				// actually be delivered on top of the main-batch answers.
				if adv.delivered < res.TasksAnswered || adv.delivered > res.TasksAnswered+res.TasksReasked {
					t.Errorf("%s: delivered %d outside [answered %d, answered+reasked %d]",
						name, adv.delivered, res.TasksAnswered, res.TasksAnswered+res.TasksReasked)
				}
				if res.TasksDropped != res.TasksPosted-res.TasksAnswered {
					t.Errorf("%s: dropped %d != posted %d - answered %d",
						name, res.TasksDropped, res.TasksPosted, res.TasksAnswered)
				}
				if !chargeOnPost && res.BudgetSpent != adv.delivered {
					t.Errorf("%s: charge-on-answer ledger %d != answers delivered %d",
						name, res.BudgetSpent, adv.delivered)
				}
				if chargeOnPost && res.BudgetSpent < res.TasksPosted {
					t.Errorf("%s: charge-on-post ledger %d below posted %d",
						name, res.BudgetSpent, res.TasksPosted)
				}
				onlyOutage := true
				for _, m := range modes {
					if m != "outage" {
						onlyOutage = false
					}
				}
				if onlyOutage && !res.Degraded {
					t.Errorf("%s: permanent outage did not degrade", name)
				}
			}
		}
	}
}

// TestPermanentOutageDegradesGracefully: a platform that never answers
// must not hang or error out — it burns MaxRetries with backoff and
// returns a degraded best-effort result.
func TestPermanentOutageDegradesGracefully(t *testing.T) {
	truth, incomplete := robustEnv(421, 70)
	adv := &adversary{inner: crowd.NewSimulated(truth, 1.0, nil), modes: []string{"outage"}}
	opt := robustOpts(422)
	opt.MaxRetries = 2
	opt.RetryBackoff = time.Millisecond

	res, err := Run(incomplete, adv, opt)
	if err != nil {
		t.Fatalf("permanent outage errored: %v", err)
	}
	if !res.Degraded || !strings.Contains(res.DegradedReason, "after 2 retries") {
		t.Fatalf("Degraded=%v reason=%q", res.Degraded, res.DegradedReason)
	}
	if res.FailedRounds != 3 || res.RoundRetries != 2 {
		t.Fatalf("failed=%d retried=%d, want 3 attempts = 2 retries", res.FailedRounds, res.RoundRetries)
	}
	if res.BackoffTime <= 0 {
		t.Fatalf("BackoffTime = %v, want > 0 with a 1ms base", res.BackoffTime)
	}
	if res.Rounds != 0 || res.BudgetSpent != 0 || res.TasksAnswered != 0 {
		t.Fatalf("nothing was delivered yet rounds=%d spent=%d answered=%d",
			res.Rounds, res.BudgetSpent, res.TasksAnswered)
	}
	if res.Answers == nil {
		t.Fatal("degraded run returned no best-effort answer set")
	}
}

// dropAll delivers nothing, successfully: every HIT expires.
type dropAll struct{ posted int }

func (d *dropAll) Post(tasks []crowd.Task) ([]crowd.Answer, error) {
	d.posted += len(tasks)
	return nil, nil
}

// TestAllDroppedTerminatesAndDegrades: with every answer dropped the μ
// floor still drains the round allowance, so the phase ends within the
// latency bound, charges nothing under charge-on-answer, re-queues
// everything, and flags the degradation.
func TestAllDroppedTerminatesAndDegrades(t *testing.T) {
	_, incomplete := robustEnv(431, 70)
	d := &dropAll{}
	opt := robustOpts(432)

	res, err := Run(incomplete, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > opt.Latency {
		t.Fatalf("%d rounds exceed latency %d", res.Rounds, opt.Latency)
	}
	if res.BudgetSpent != 0 {
		t.Fatalf("BudgetSpent = %d for zero delivered answers", res.BudgetSpent)
	}
	if res.TasksDropped != d.posted || res.TasksDropped == 0 {
		t.Fatalf("dropped %d of %d posted", res.TasksDropped, d.posted)
	}
	if res.TasksRequeued != res.TasksDropped {
		t.Fatalf("requeued %d != dropped %d (nothing else could decide them)",
			res.TasksRequeued, res.TasksDropped)
	}
	if !res.Degraded || !strings.Contains(res.DegradedReason, "unrecovered") {
		t.Fatalf("Degraded=%v reason=%q", res.Degraded, res.DegradedReason)
	}
}

// impossibleLiar answers truthfully except the first time it sees a
// boundary task — (x < max) or (x > 0) — where it asserts the impossible
// relation (x above its domain maximum / below its minimum). That answer
// conflicts with the variable's full interval immediately, so every lie
// is a knowledge conflict; repeat asks (the re-ask copies) get the truth.
type impossibleLiar struct {
	inner  crowd.Platform
	levels int
	seen   map[ctable.Expr]bool
	lies   int
}

func (l *impossibleLiar) Post(tasks []crowd.Task) ([]crowd.Answer, error) {
	answers, err := l.inner.Post(tasks)
	if err != nil {
		return answers, err
	}
	for i := range answers {
		e := answers[i].Task.Expr
		if l.seen[e] {
			continue
		}
		l.seen[e] = true
		switch {
		case e.Kind == ctable.VarLTConst && e.C == l.levels-1:
			answers[i].Rel = ctable.GT // "x exceeds its domain maximum"
			l.lies++
		case e.Kind == ctable.VarGTConst && e.C == 0:
			answers[i].Rel = ctable.LT // "x is below its domain minimum"
			l.lies++
		}
	}
	return answers, nil
}

// TestConflictReaskResolvesLies: conflicting answers are discarded either
// way; with Options.ReaskConflicts the task is re-posted and the truthful
// majority absorbed, turning ConflictingAnswers into ConflictsResolved.
func TestConflictReaskResolvesLies(t *testing.T) {
	const levels = 6
	// Search a few seeds for one whose task mix includes boundary tasks —
	// which seeds do depends on the generated data, not on chance at run
	// time; the loop is deterministic.
	for seed := int64(441); seed < 451; seed++ {
		truth, incomplete := robustEnv(seed, 80)
		run := func(reask int) (*Result, *impossibleLiar) {
			liar := &impossibleLiar{
				inner:  crowd.NewSimulated(truth, 1.0, nil),
				levels: levels, seen: map[ctable.Expr]bool{},
			}
			opt := robustOpts(seed + 100)
			opt.ReaskConflicts = reask
			res, err := Run(incomplete, liar, opt)
			if err != nil {
				t.Fatal(err)
			}
			return res, liar
		}

		discardOnly, liar := run(0)
		if liar.lies == 0 {
			continue // this seed asked no boundary tasks; try the next
		}
		if discardOnly.ConflictingAnswers == 0 {
			t.Fatalf("seed %d: %d impossible lies produced no conflicts", seed, liar.lies)
		}
		if discardOnly.TasksReasked != 0 || discardOnly.ConflictsResolved != 0 {
			t.Fatalf("seed %d: re-ask activity with ReaskConflicts=0: %+v", seed, discardOnly)
		}

		reasked, _ := run(3)
		if reasked.TasksReasked == 0 {
			t.Fatalf("seed %d: conflicts were not re-asked", seed)
		}
		if reasked.ConflictsResolved == 0 {
			t.Fatalf("seed %d: truthful re-ask majority resolved nothing (reasked %d)",
				seed, reasked.TasksReasked)
		}
		return
	}
	t.Fatal("no seed produced boundary tasks; widen the search")
}
