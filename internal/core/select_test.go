package core

import (
	"math/rand"
	"testing"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/prob"
	"bayescrowd/internal/skyline"
)

func uniformDist(n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = 1 / float64(n)
	}
	return d
}

// buildSelectFixture returns a c-table with two undecided conditions that
// share one expression, plus an evaluator over uniform distributions.
func buildSelectFixture() (*ctable.CTable, *prob.Evaluator, map[int]float64) {
	x := ctable.Var{Obj: 0, Attr: 0}
	y := ctable.Var{Obj: 1, Attr: 0}
	z := ctable.Var{Obj: 2, Attr: 0}
	shared := ctable.LTConst(x, 5)

	ct := &ctable.CTable{Conds: []*ctable.Condition{
		ctable.FromClauses([][]ctable.Expr{{shared, ctable.GTConst(y, 3)}}),
		ctable.FromClauses([][]ctable.Expr{{shared, ctable.GTConst(z, 7)}}),
	}}
	ev := prob.NewEvaluator(prob.Dists{
		x: uniformDist(10), y: uniformDist(10), z: uniformDist(10),
	})
	probs := map[int]float64{
		0: ev.Prob(ct.Conds[0]),
		1: ev.Prob(ct.Conds[1]),
	}
	return ct, ev, probs
}

func TestFBSPicksMostFrequentExpression(t *testing.T) {
	ct, ev, probs := buildSelectFixture()
	opt, err := Options{Budget: 10, Latency: 10, Strategy: FBS, Rng: rand.New(rand.NewSource(1))}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	// The shared expression appears twice across the top-k conditions;
	// the first chosen object must pick it.
	tasks := selectBatch(opt, ct, ev, probs, 2)
	if len(tasks) == 0 {
		t.Fatal("no tasks selected")
	}
	want := ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)
	if tasks[0].Expr != want {
		t.Fatalf("first task = %v, want the shared most-frequent expression %v", tasks[0].Expr, want)
	}
}

func TestBatchRespectsConflicts(t *testing.T) {
	ct, ev, probs := buildSelectFixture()
	opt, err := Options{Budget: 10, Latency: 10, Strategy: FBS, Rng: rand.New(rand.NewSource(1))}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	tasks := selectBatch(opt, ct, ev, probs, 2)
	// Both conditions prefer the shared expression on x, but the second
	// task must avoid x and fall back to its private expression.
	if len(tasks) != 2 {
		t.Fatalf("selected %d tasks, want 2", len(tasks))
	}
	seen := map[ctable.Var]bool{}
	var buf []ctable.Var
	for _, task := range tasks {
		for _, v := range task.Expr.Vars(buf[:0]) {
			if seen[v] {
				t.Fatalf("conflicting batch: %v twice", v)
			}
			seen[v] = true
		}
	}
}

func TestUBSPicksHighestUtility(t *testing.T) {
	// Condition: (x < 5) ∨ (y > 8) with uniform 10-level vars. The x
	// expression splits the probability mass nearly in half (utility
	// high); the y expression is lopsided (utility low). UBS must ask x.
	x := ctable.Var{Obj: 0, Attr: 0}
	y := ctable.Var{Obj: 1, Attr: 0}
	cond := ctable.FromClauses([][]ctable.Expr{{ctable.LTConst(x, 5), ctable.GTConst(y, 8)}})
	ev := prob.NewEvaluator(prob.Dists{x: uniformDist(10), y: uniformDist(10)})
	opt, err := Options{Budget: 10, Latency: 10, Strategy: UBS, Rng: rand.New(rand.NewSource(1))}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	e, ok := pickExpr(opt, ev, cond, ev.Prob(cond), map[ctable.Expr]int{}, map[ctable.Var]bool{})
	if !ok {
		t.Fatal("no expression picked")
	}
	if e != ctable.LTConst(x, 5) {
		t.Fatalf("UBS picked %v, want the high-utility x comparison", e)
	}
}

func TestHHSEarlyStopLimitsEvaluations(t *testing.T) {
	// With m=1, HHS stops scanning after the first non-improving
	// expression; the pick must still be valid.
	ct, ev, probs := buildSelectFixture()
	opt, err := Options{Budget: 10, Latency: 10, Strategy: HHS, M: 1, Rng: rand.New(rand.NewSource(1))}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	e, ok := pickExpr(opt, ev, ct.Conds[0], probs[0], map[ctable.Expr]int{}, map[ctable.Var]bool{})
	if !ok {
		t.Fatal("no expression picked")
	}
	found := false
	for _, cand := range ct.Conds[0].Exprs() {
		if cand == e {
			found = true
		}
	}
	if !found {
		t.Fatalf("HHS picked %v, not an expression of the condition", e)
	}
}

func TestPickExprAllConflicting(t *testing.T) {
	ct, ev, probs := buildSelectFixture()
	opt, err := Options{Budget: 10, Latency: 10, Strategy: FBS, Rng: rand.New(rand.NewSource(1))}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	used := map[ctable.Var]bool{
		{Obj: 0, Attr: 0}: true,
		{Obj: 1, Attr: 0}: true,
	}
	if _, ok := pickExpr(opt, ev, ct.Conds[0], probs[0], map[ctable.Expr]int{}, used); ok {
		t.Fatal("picked an expression despite every variable being used")
	}
}

// flakyPlatform drops a fraction of the answers (worker no-shows); the
// framework must still terminate and produce a result.
type flakyPlatform struct {
	inner crowd.Platform
	rng   *rand.Rand
	drop  float64
}

func (f *flakyPlatform) Post(tasks []crowd.Task) ([]crowd.Answer, error) {
	answers, err := f.inner.Post(tasks)
	if err != nil {
		return answers, err
	}
	kept := answers[:0]
	for _, a := range answers {
		if f.rng.Float64() >= f.drop {
			kept = append(kept, a)
		}
	}
	return kept, nil
}

func TestDroppedAnswersDoNotWedgeTheRun(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	truth := dataset.GenIndependent(rng, 100, 4, 8)
	incomplete := truth.InjectMissing(rng, 0.15)
	platform := &flakyPlatform{
		inner: crowd.NewSimulated(truth, 1.0, nil),
		rng:   rand.New(rand.NewSource(74)),
		drop:  0.3,
	}
	res, err := Run(incomplete, platform, Options{
		Alpha: 0.3, Budget: 60, Latency: 6, Strategy: FBS,
		MarginalsOnly: true,
		Rng:           rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 6 || res.TasksPosted > 60 {
		t.Fatalf("constraints violated: %d tasks, %d rounds", res.TasksPosted, res.Rounds)
	}
	want := skyline.BNL(truth)
	if len(res.Answers) == 0 && len(want) > 0 {
		t.Fatal("no answers despite non-empty skyline")
	}
}

func TestNoInferenceNeedsMoreTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	truth := dataset.GenIndependent(rng, 150, 4, 8)
	incomplete := truth.InjectMissing(rng, 0.15)

	resolveAll := func(noInference bool) int {
		res, err := Run(incomplete, crowd.NewSimulated(truth, 1.0, nil), Options{
			Alpha: 0, Budget: 1 << 20, Latency: 1 << 18, Strategy: FBS,
			MarginalsOnly: true,
			NoInference:   noInference,
			Rng:           rand.New(rand.NewSource(76)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Probs) != 0 {
			t.Fatal("conditions left undecided with unlimited budget")
		}
		return res.TasksPosted
	}
	with, without := resolveAll(false), resolveAll(true)
	if with >= without {
		t.Fatalf("propagation on used %d tasks, off used %d; propagation should save tasks", with, without)
	}
}
