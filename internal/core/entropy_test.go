package core

import (
	"math"
	"testing"
	"testing/quick"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/prob"
)

func TestEntropyValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0, 0}, {1, 0}, {0.5, 1},
		{0.8, 0.721928}, {0.153, 0.617297}, {0.823, 0.673470},
	}
	for _, tc := range cases {
		if got := Entropy(tc.p); math.Abs(got-tc.want) > 1e-5 {
			t.Errorf("Entropy(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestEntropyProperties(t *testing.T) {
	f := func(x float64) bool {
		p := math.Mod(math.Abs(x), 1)
		h := Entropy(p)
		if h < 0 || h > 1 {
			return false
		}
		// Symmetry.
		return math.Abs(h-Entropy(1-p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// example3Dists are the distributions assumed by the paper's Examples 3-4.
func example3Dists() prob.Dists {
	uniform := func(n int) []float64 {
		d := make([]float64, n)
		for i := range d {
			d[i] = 1 / float64(n)
		}
		return d
	}
	return prob.Dists{
		{Obj: 4, Attr: 1}: uniform(10),                    // Var(o5,a2)
		{Obj: 4, Attr: 2}: uniform(8),                     // Var(o5,a3)
		{Obj: 4, Attr: 3}: {0.1, 0.1, 0.2, 0.2, 0.3, 0.1}, // Var(o5,a4)
		{Obj: 1, Attr: 1}: uniform(10),                    // Var(o2,a2)
	}
}

// TestPaperExample4Utilities checks the marginal utilities of φ(o1)'s
// three expressions against the values printed in Example 4:
// G(o1,e1)=0.072, G(o1,e2)=0.157, G(o1,e3)=0.322.
func TestPaperExample4Utilities(t *testing.T) {
	ev := prob.NewEvaluator(example3Dists())
	x2 := ctable.Var{Obj: 4, Attr: 1}
	x3 := ctable.Var{Obj: 4, Attr: 2}
	x4 := ctable.Var{Obj: 4, Attr: 3}
	phiO1 := ctable.FromClauses([][]ctable.Expr{{
		ctable.LTConst(x2, 2), ctable.LTConst(x3, 3), ctable.LTConst(x4, 4),
	}})

	cases := []struct {
		e    ctable.Expr
		want float64
	}{
		{ctable.LTConst(x2, 2), 0.072},
		{ctable.LTConst(x3, 3), 0.157},
		{ctable.LTConst(x4, 4), 0.322},
	}
	for _, tc := range cases {
		if got := Utility(ev, phiO1, tc.e); math.Abs(got-tc.want) > 0.002 {
			t.Errorf("G(o1, %v) = %v, want %v", tc.e, got, tc.want)
		}
	}
}

// TestPaperExample4Entropies checks H(o1)=0.72, H(o4)=0.62, H(o5)=0.67.
func TestPaperExample4Entropies(t *testing.T) {
	ev := prob.NewEvaluator(example3Dists())
	x2 := ctable.Var{Obj: 4, Attr: 1}
	x3 := ctable.Var{Obj: 4, Attr: 2}
	x4 := ctable.Var{Obj: 4, Attr: 3}
	y := ctable.Var{Obj: 1, Attr: 1}

	phiO1 := ctable.FromClauses([][]ctable.Expr{{
		ctable.LTConst(x2, 2), ctable.LTConst(x3, 3), ctable.LTConst(x4, 4),
	}})
	phiO4 := ctable.FromClauses([][]ctable.Expr{
		{ctable.LTConst(y, 3)},
		{ctable.LTConst(x2, 3), ctable.LTConst(x3, 1), ctable.LTConst(x4, 2)},
	})
	phiO5 := ctable.FromClauses([][]ctable.Expr{
		{ctable.GTConst(x2, 2), ctable.GTConst(x3, 3), ctable.GTConst(x4, 4)},
		{ctable.GTVar(x2, y), ctable.GTConst(x3, 2), ctable.GTConst(x4, 2)},
	})

	cases := []struct {
		name string
		cond *ctable.Condition
		want float64
	}{
		{"H(o1)", phiO1, 0.72},
		{"H(o4)", phiO4, 0.62},
		{"H(o5)", phiO5, 0.67},
	}
	for _, tc := range cases {
		if got := Entropy(ev.Prob(tc.cond)); math.Abs(got-tc.want) > 0.005 {
			t.Errorf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestUtilityNonNegativeProperty(t *testing.T) {
	// Information gain is non-negative for any expression of a condition.
	ev := prob.NewEvaluator(example3Dists())
	x2 := ctable.Var{Obj: 4, Attr: 1}
	x3 := ctable.Var{Obj: 4, Attr: 2}
	cond := ctable.FromClauses([][]ctable.Expr{
		{ctable.GTConst(x2, 4), ctable.LTConst(x3, 6)},
		{ctable.LTConst(x2, 8)},
	})
	for _, e := range cond.Exprs() {
		if g := Utility(ev, cond, e); g < -1e-9 {
			t.Errorf("Utility(%v) = %v, want >= 0", e, g)
		}
	}
}
