// Package bitset provides a dense, fixed-capacity bit set backed by
// []uint64 words.
//
// It powers the fast dominator-set derivation of Get-CTable (paper §4.1,
// §7.1): per-dimension candidate sets are materialised as bitsets and the
// dominator set D(o) is the bitwise AND of d of them, which is dramatically
// cheaper than pairwise object comparisons.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity zero; use New to create a set that can hold n bits.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty Set with capacity for bits 0..n-1.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i to 1.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is 1.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// SetAll sets every bit in the capacity range.
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// ClearAll resets every bit to 0.
func (s *Set) ClearAll() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim zeroes the unused high bits of the last word so Count and Equal
// stay correct after whole-word operations.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And replaces s with s ∩ other. The sets must have equal capacity.
func (s *Set) And(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// Or replaces s with s ∪ other. The sets must have equal capacity.
func (s *Set) Or(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// AndNot replaces s with s \ other. The sets must have equal capacity.
func (s *Set) AndNot(other *Set) {
	s.sameCap(other)
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

func (s *Set) sameCap(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, other.n))
	}
}

// Grow extends the capacity to n bits, preserving the current contents.
// Bits past the old capacity start at 0. Growing to a smaller or equal n
// is a no-op — Grow never truncates. The streaming dominator index uses
// it to widen every per-dimension set in lock step when the window
// outgrows its slot capacity.
func (s *Set) Grow(n int) {
	if n <= s.n {
		return
	}
	need := (n + wordBits - 1) / wordBits
	if need > len(s.words) {
		words := make([]uint64, need)
		copy(words, s.words)
		s.words = words
	}
	s.n = n
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of other. The sets must have
// equal capacity.
func (s *Set) CopyFrom(other *Set) {
	s.sameCap(other)
	copy(s.words, other.words)
}

// Equal reports whether s and other hold exactly the same bits and
// capacity.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false the iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the indices of all set bits in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as {i, j, ...} for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
