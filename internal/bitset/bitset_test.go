package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			s.Set(i)
		}()
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetAllRespectsCapacity(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.SetAll()
		if got := s.Count(); got != n {
			t.Errorf("New(%d).SetAll().Count() = %d, want %d", n, got, n)
		}
	}
}

func TestClearAll(t *testing.T) {
	s := New(100)
	s.SetAll()
	s.ClearAll()
	if s.Any() {
		t.Fatal("Any() true after ClearAll")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d after ClearAll", s.Count())
	}
}

func TestAndOrAndNot(t *testing.T) {
	a := New(70)
	b := New(70)
	for i := 0; i < 70; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 70; i += 3 {
		b.Set(i)
	}

	and := a.Clone()
	and.And(b)
	for i := 0; i < 70; i++ {
		want := i%2 == 0 && i%3 == 0
		if and.Test(i) != want {
			t.Fatalf("And bit %d = %v, want %v", i, and.Test(i), want)
		}
	}

	or := a.Clone()
	or.Or(b)
	for i := 0; i < 70; i++ {
		want := i%2 == 0 || i%3 == 0
		if or.Test(i) != want {
			t.Fatalf("Or bit %d = %v, want %v", i, or.Test(i), want)
		}
	}

	diff := a.Clone()
	diff.AndNot(b)
	for i := 0; i < 70; i++ {
		want := i%2 == 0 && i%3 != 0
		if diff.Test(i) != want {
			t.Fatalf("AndNot bit %d = %v, want %v", i, diff.Test(i), want)
		}
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(64), New(65)
	defer func() {
		if recover() == nil {
			t.Error("And with mismatched capacity did not panic")
		}
	}()
	a.And(b)
}

func TestCloneIndependence(t *testing.T) {
	a := New(10)
	a.Set(3)
	c := a.Clone()
	c.Set(4)
	if a.Test(4) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Test(3) {
		t.Fatal("clone lost original bit")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(100), New(100)
	b.Set(42)
	b.Set(99)
	a.Set(1)
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatal("CopyFrom did not make sets equal")
	}
	if a.Test(1) {
		t.Fatal("CopyFrom kept stale bit")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(64), New(64)
	if !a.Equal(b) {
		t.Fatal("fresh equal-capacity sets not Equal")
	}
	a.Set(5)
	if a.Equal(b) {
		t.Fatal("different sets reported Equal")
	}
	b.Set(5)
	if !a.Equal(b) {
		t.Fatal("same sets reported unequal")
	}
	if a.Equal(New(63)) {
		t.Fatal("different capacities reported Equal")
	}
}

func TestMembersAndForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{0, 7, 63, 64, 65, 128, 199}
	for _, i := range want {
		s.Set(i)
	}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i++ {
		s.Set(i)
	}
	n := 0
	s.ForEach(func(i int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("ForEach visited %d bits after early stop, want 5", n)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if got := s.String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
	s.Set(1)
	s.Set(9)
	if got := s.String(); got != "{1, 9}" {
		t.Fatalf("String = %q, want {1, 9}", got)
	}
}

// Property: Count equals the number of Test-true positions, and And/Or
// behave like set intersection/union against a reference map
// implementation.
func TestQuickAgainstMapReference(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		ma := map[int]bool{}
		mb := map[int]bool{}
		for _, x := range xs {
			a.Set(int(x))
			ma[int(x)] = true
		}
		for _, y := range ys {
			b.Set(int(y))
			mb[int(y)] = true
		}
		if a.Count() != len(ma) || b.Count() != len(mb) {
			return false
		}
		and := a.Clone()
		and.And(b)
		nInter := 0
		for k := range ma {
			if mb[k] {
				nInter++
			}
		}
		if and.Count() != nInter {
			return false
		}
		or := a.Clone()
		or.Or(b)
		un := map[int]bool{}
		for k := range ma {
			un[k] = true
		}
		for k := range mb {
			un[k] = true
		}
		return or.Count() == len(un)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a, c := New(100000), New(100000)
	for i := 0; i < 5000; i++ {
		a.Set(rng.Intn(100000))
		c.Set(rng.Intn(100000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := a.Clone()
		d.And(c)
	}
}
