package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Trace is a Sink that writes one JSON object per event — JSONL, the
// format every line-oriented tool understands. The encoding is
// hand-rolled and canonical: fields appear in a fixed order (seq, round,
// kind, obj, task, rel, n, m, p, note), zero-valued optional fields are
// omitted, and floats use the shortest round-trip representation
// (strconv 'g', -1). Because the encoding is a pure function of the
// event and events are deterministic, a seeded run's trace file is
// byte-identical at any worker count.
//
// Write errors are sticky: the first one stops further output and is
// reported by Flush and Err (Emit cannot return one — it implements
// Sink). Trace is single-writer, like the Recorder that feeds it.
type Trace struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewTrace returns a Trace writing JSONL to w through an internal
// buffer. Call Flush before closing the underlying writer.
func NewTrace(w io.Writer) *Trace {
	return &Trace{w: w2bufio(w), buf: make([]byte, 0, 256)}
}

// w2bufio reuses an existing *bufio.Writer instead of stacking another
// buffer on top of it.
func w2bufio(w io.Writer) *bufio.Writer {
	if bw, ok := w.(*bufio.Writer); ok {
		return bw
	}
	return bufio.NewWriter(w)
}

// Emit appends the event as one JSON line. After a write error it is a
// no-op; check Flush or Err for the sticky error.
func (t *Trace) Emit(e Event) {
	if t.err != nil {
		return
	}
	b := t.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"round":`...)
	b = strconv.AppendInt(b, int64(e.Round), 10)
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, string(e.Kind))
	if hasObj(e.Kind) {
		b = append(b, `,"obj":`...)
		b = strconv.AppendInt(b, int64(e.Obj), 10)
	}
	if e.Task != "" {
		b = append(b, `,"task":`...)
		b = strconv.AppendQuote(b, e.Task)
	}
	if e.Rel != "" {
		b = append(b, `,"rel":`...)
		b = strconv.AppendQuote(b, e.Rel)
	}
	if e.N != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(e.N), 10)
	}
	if e.M != 0 {
		b = append(b, `,"m":`...)
		b = strconv.AppendInt(b, int64(e.M), 10)
	}
	if e.P != 0 || e.Kind == KindEntropyTopK {
		b = append(b, `,"p":`...)
		b = strconv.AppendFloat(b, e.P, 'g', -1, 64)
	}
	if e.Note != "" {
		b = append(b, `,"note":`...)
		b = strconv.AppendQuote(b, e.Note)
	}
	b = append(b, "}\n"...)
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// hasObj reports whether the kind carries an object index — those kinds
// always encode "obj", even for object 0; every other kind never does.
func hasObj(k Kind) bool {
	return k == KindEntropyTopK || k == KindStrategyPick
}

// Flush drains the internal buffer to the underlying writer and returns
// the sticky error, if any.
func (t *Trace) Flush() error {
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Err returns the first write error encountered, or nil.
func (t *Trace) Err() error {
	return t.err
}
