package obs

import (
	"sync"
	"testing"
)

func TestAggregatorCounts(t *testing.T) {
	g := NewRegistry()
	a := NewAggregator(g)
	r := NewRecorder(a)
	r.Emit(Event{Kind: KindRunStart})
	for i := 0; i < 7; i++ {
		r.Emit(Event{Kind: KindTaskPost})
	}
	r.Emit(Event{Kind: KindRunEnd})
	if v := g.Counter("events.task.post").Value(); v != 7 {
		t.Errorf("events.task.post = %d, want 7", v)
	}
	if v := g.Counter("events.run.start").Value(); v != 1 {
		t.Errorf("events.run.start = %d, want 1", v)
	}
}

// TestAggregatorConcurrent hammers one Aggregator (and its Registry)
// from many goroutines; run under -race it is the layer's concurrency
// proof. The Recorder is deliberately absent — it is single-writer by
// contract — the Aggregator itself is the shared-sink case.
func TestAggregatorConcurrent(t *testing.T) {
	g := NewRegistry()
	a := NewAggregator(g)
	kinds := []Kind{KindTaskPost, KindTaskAnswer, KindTaskDrop, KindRoundStart}
	const (
		goroutines = 8
		perG       = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				a.Emit(Event{Kind: kinds[(w+i)%len(kinds)]})
				g.Counter("shared").Add(1)
				g.Histogram("shared.h").Observe(1000)
			}
		}(w)
	}
	wg.Wait()

	total := int64(0)
	for _, k := range kinds {
		total += g.Counter("events." + string(k)).Value()
	}
	if want := int64(goroutines * perG); total != want {
		t.Errorf("aggregated events = %d, want %d", total, want)
	}
	if v := g.Counter("shared").Value(); v != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", v, goroutines*perG)
	}
	if n := g.Histogram("shared.h").Count(); n != goroutines*perG {
		t.Errorf("shared histogram count = %d, want %d", n, goroutines*perG)
	}
}

func TestAggregatorNilRegistry(t *testing.T) {
	a := NewAggregator(nil)
	a.Emit(Event{Kind: KindRunStart}) // must not panic
	a.Emit(Event{Kind: KindRunStart})
}
