// Package obs is the framework's stdlib-only observability layer: typed
// trace events stamped by a logical clock, monotonic counters and
// duration histograms in an expvar-style registry, and an opt-in HTTP
// debug endpoint (/metrics + net/http/pprof).
//
// The layer is split along the repo's determinism contract. Trace events
// (Event, emitted through a Recorder into a Sink) carry only quantities
// that are a pure function of the inputs and the seed — round numbers,
// batch sizes, selected tasks, absorbed relations, fan-out sizes — and
// are emitted exclusively from single-writer sequential sections, so a
// seeded run produces a byte-identical trace at any worker count.
// Scheduling-dependent quantities — cache hits and misses, pool fan-out
// tallies, wall-clock durations — go to the Registry as counters and
// histograms instead, and never into the trace. Event timestamps are the
// Recorder's logical (Seq, Round) clock, never wall time, which keeps
// the bayeslint determinism analyzer clean by construction.
//
// Everything is allocation-free when disabled: a nil *Recorder, a nil
// *Registry, a nil *Counter and a nil *Histogram are all safe no-op
// receivers, so instrumented code calls them unconditionally.
package obs

// Kind names a trace event type. The values are stable dotted
// identifiers ("round.start", "task.answer", ...) so traces can be
// filtered with ordinary text tools.
type Kind string

// The event taxonomy. Each kind documents which optional Event fields it
// carries; see DESIGN.md §7 for the emitting package and invariants.
const (
	// KindRunStart opens a run: N = budget B, M = latency L,
	// Note = strategy name.
	KindRunStart Kind = "run.start"
	// KindPreprocess reports the preprocessing model: N = number of
	// missing-value distributions, Note = model kind (net, learned,
	// marginals, marginals-fallback, imputer).
	KindPreprocess Kind = "preprocess"
	// KindModel reports the modeling phase: N = conditions in the
	// c-table, M = undecided after the initial simplification.
	KindModel Kind = "model"
	// KindRoundStart opens a crowdsourcing round: N = per-round task
	// allowance, M = remaining budget.
	KindRoundStart Kind = "round.start"
	// KindEntropyTopK reports one of the round's top-k entropy-ranked
	// objects: Obj = object index, P = entropy of Pr(φ).
	KindEntropyTopK Kind = "entropy.topk"
	// KindStrategyPick reports the expression the strategy chose for an
	// object: Obj = object index, Task = expression.
	KindStrategyPick Kind = "strategy.pick"
	// KindTaskPost reports a task shipped to the crowd: Task =
	// expression, N = its price in budget units.
	KindTaskPost Kind = "task.post"
	// KindTaskAnswer reports a delivered answer: Task = expression,
	// Rel = the relation the crowd asserted.
	KindTaskAnswer Kind = "task.answer"
	// KindTaskConflict reports an answer discarded because it
	// contradicted earlier knowledge: Task = expression, Rel = the
	// conflicting relation.
	KindTaskConflict Kind = "task.conflict"
	// KindTaskReask reports a conflicting task re-posted for a majority
	// vote: Task = expression, N = copies posted.
	KindTaskReask Kind = "task.reask"
	// KindConflictResolved reports a re-asked majority absorbed in place
	// of a discarded answer: Task = expression, Rel = the majority.
	KindConflictResolved Kind = "conflict.resolved"
	// KindTaskDrop reports a posted task whose answer never arrived:
	// Task = expression.
	KindTaskDrop Kind = "task.drop"
	// KindTaskRequeue reports a dropped task returned to the candidate
	// pool (its expression is still undecided): Task = expression.
	KindTaskRequeue Kind = "task.requeue"
	// KindRoundRetry reports a failed Post re-attempted: N = attempt
	// number (0-based), Note = the round error.
	KindRoundRetry Kind = "round.retry"
	// KindBackoff reports the configured sleep before a retry: N =
	// attempt number, Note = the configured delay (base·2^attempt,
	// capped) — the configured value, not the measured one, so the
	// event is deterministic.
	KindBackoff Kind = "backoff"
	// KindFaultOutage reports an injected round outage: N = tasks the
	// failed Post carried.
	KindFaultOutage Kind = "fault.outage"
	// KindFaultDrop reports an injected per-task answer drop: Task =
	// expression.
	KindFaultDrop Kind = "fault.drop"
	// KindFaultSpam reports an injected spammer answer: Task =
	// expression, Rel = the random relation substituted.
	KindFaultSpam Kind = "fault.spam"
	// KindCacheInvalidate reports a component-cache invalidation in the
	// single-writer gap: N = variables whose epoch was bumped.
	KindCacheInvalidate Kind = "cache.invalidate"
	// KindProbFanout reports a Pr(φ) evaluation fan-out: N = conditions
	// evaluated.
	KindProbFanout Kind = "prob.fanout"
	// KindSweepPlan reports a marginal-sweep plan during candidate
	// scoring: N = candidate expressions, M = sweep variables planned.
	KindSweepPlan Kind = "sweep.plan"
	// KindRoundEnd closes a round: N = budget units charged, M =
	// conditions still undecided.
	KindRoundEnd Kind = "round.end"
	// KindStreamInsert reports one arrival absorbed into the streaming
	// window: N = its stream id, M = |D(o)| on arrival (0 in the
	// rebuild-per-tick baseline, which derives dominators only at tick
	// end).
	KindStreamInsert Kind = "stream.insert"
	// KindStreamEvict reports one object leaving the streaming window:
	// N = its stream id, M = c-table variables retired with it.
	KindStreamEvict Kind = "stream.evict"
	// KindStreamTick closes one streaming tick: N = arrivals absorbed,
	// M = conditions re-evaluated.
	KindStreamTick Kind = "stream.tick"
	// KindStreamTaskPost reports a crowd task posted from the streaming
	// loop: Task = expression, N = the tick it expires after (its
	// deadline), M = the budget units reserved for it.
	KindStreamTaskPost Kind = "stream.task.post"
	// KindStreamTaskExpire reports an in-flight task retired overdue —
	// its answer never arrived within the deadline: Task = expression,
	// N = the tick it was posted, M = the budget units refunded.
	KindStreamTaskExpire Kind = "stream.task.expire"
	// KindStreamTaskAnswer reports a crowd answer ingested by the
	// streaming loop: Task = expression, Rel = the asserted relation,
	// N = the tick the task was posted.
	KindStreamTaskAnswer Kind = "stream.task.answer"
	// KindStreamTaskStale reports an answer discarded without absorption:
	// Task = expression, Note = why ("evicted": the object left the
	// window first; "late": the task already expired). N = the tick the
	// task was posted, M = the budget units refunded (0 for late answers,
	// whose expiry already refunded them).
	KindStreamTaskStale Kind = "stream.task.stale"
	// KindDegrade reports the run ending early on a best-effort result:
	// Note = the degradation reason.
	KindDegrade Kind = "degrade"
	// KindRunEnd closes a run: N = tasks posted, M = rounds completed.
	KindRunEnd Kind = "run.end"
)

// Event is one trace record. Seq and Round are stamped by the Recorder
// (a logical clock — no wall time anywhere in an event); the remaining
// fields are the emitting site's payload, with unused fields left zero.
// Every payload is deterministic under a fixed seed: an Event never
// carries a duration, a cache statistic, or anything else that depends
// on goroutine scheduling.
type Event struct {
	// Seq is the 1-based position of the event in the run's trace.
	Seq uint64
	// Round is the 1-based crowdsourcing round, 0 before the first.
	Round int
	// Kind says what happened; it determines which fields below apply.
	Kind Kind
	// Obj is the object index for per-object events (entropy.topk,
	// strategy.pick).
	Obj int
	// Task is the compact rendering of the task's expression.
	Task string
	// Rel is the rendering of a crowd-asserted relation.
	Rel string
	// N and M are the kind's primary and secondary counts.
	N int
	M int
	// P is the kind's probability or entropy payload.
	P float64
	// Note is the kind's free-text payload (strategy name, error, ...).
	Note string
}

// Sink consumes trace events. Implementations decide persistence: Nop
// drops them, Trace writes JSONL, Aggregator folds them into a Registry,
// Multi tees. Emit must not retain the event past the call. Sinks used
// with a Recorder are called from a single goroutine at a time (the
// Recorder's single-writer contract); Aggregator is additionally safe
// for concurrent use on its own.
type Sink interface {
	Emit(Event)
}

// Nop is the disabled sink: Emit does nothing and performs no
// allocation. It exists for benchmarks and for composing sink lists; a
// nil *Recorder already short-circuits before reaching any sink.
type Nop struct{}

// Emit discards the event.
func (Nop) Emit(Event) {}

// Multi tees every event to each sink in order.
type Multi []Sink

// Emit forwards the event to every sink in slice order.
func (m Multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}
