package obs

import (
	"bytes"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// collect is a test sink that remembers every event it sees.
type collect struct {
	events []Event
}

func (c *collect) Emit(e Event) { c.events = append(c.events, e) }

func TestRecorderStampsLogicalClock(t *testing.T) {
	c := &collect{}
	r := NewRecorder(c)
	if !r.On() {
		t.Fatal("recorder with sink reports Off")
	}
	r.Emit(Event{Kind: KindRunStart, N: 50})
	r.SetRound(1)
	r.Emit(Event{Kind: KindRoundStart, N: 10})
	r.Emit(Event{Kind: KindTaskPost, Task: "x"})
	r.SetRound(2)
	r.Emit(Event{Kind: KindRoundEnd})

	want := []struct {
		seq   uint64
		round int
		kind  Kind
	}{
		{1, 0, KindRunStart},
		{2, 1, KindRoundStart},
		{3, 1, KindTaskPost},
		{4, 2, KindRoundEnd},
	}
	if len(c.events) != len(want) {
		t.Fatalf("got %d events, want %d", len(c.events), len(want))
	}
	for i, w := range want {
		e := c.events[i]
		if e.Seq != w.seq || e.Round != w.round || e.Kind != w.kind {
			t.Errorf("event %d = {Seq:%d Round:%d Kind:%q}, want {%d %d %q}",
				i, e.Seq, e.Round, e.Kind, w.seq, w.round, w.kind)
		}
	}
	if r.Round() != 2 {
		t.Errorf("Round() = %d, want 2", r.Round())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.On() {
		t.Error("nil recorder reports On")
	}
	r.SetRound(3)
	r.Emit(Event{Kind: KindRunStart})
	if r.Round() != 0 {
		t.Errorf("nil Round() = %d, want 0", r.Round())
	}
	if NewRecorder(nil) != nil {
		t.Error("NewRecorder(nil) should return the nil (disabled) recorder")
	}
}

func TestTraceEncoding(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	r := NewRecorder(tr)
	r.Emit(Event{Kind: KindRunStart, N: 50, M: 5, Note: "HHS"})
	r.SetRound(1)
	r.Emit(Event{Kind: KindEntropyTopK, Obj: 0, P: 0.9182958340544896})
	r.Emit(Event{Kind: KindStrategyPick, Obj: 7, Task: "Var(o7,a2) > 3"})
	r.Emit(Event{Kind: KindTaskAnswer, Task: `say "hi"`, Rel: ">"})
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	want := `{"seq":1,"round":0,"kind":"run.start","n":50,"m":5,"note":"HHS"}
{"seq":2,"round":1,"kind":"entropy.topk","obj":0,"p":0.9182958340544896}
{"seq":3,"round":1,"kind":"strategy.pick","obj":7,"task":"Var(o7,a2) > 3"}
{"seq":4,"round":1,"kind":"task.answer","task":"say \"hi\"","rel":">"}
`
	if got := buf.String(); got != want {
		t.Errorf("trace encoding mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct {
	n int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestTraceStickyError(t *testing.T) {
	tr := NewTrace(&failWriter{n: 8})
	for i := 0; i < 10000; i++ {
		tr.Emit(Event{Seq: uint64(i), Kind: KindTaskPost, Task: strings.Repeat("x", 64)})
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush after failed writes returned nil")
	}
	if tr.Err() == nil {
		t.Fatal("Err after failed writes returned nil")
	}
}

func TestMultiTees(t *testing.T) {
	a, b := &collect{}, &collect{}
	m := Multi{a, Nop{}, b}
	m.Emit(Event{Kind: KindRunEnd})
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Fatalf("tee delivered %d/%d events, want 1/1", len(a.events), len(b.events))
	}
}

func TestRegistryCountersAndHistograms(t *testing.T) {
	g := NewRegistry()
	g.Counter("a.hits").Add(3)
	g.Counter("a.hits").Add(2)
	g.Counter("b.misses").Add(1)
	g.Histogram("phase").Observe(5 * time.Microsecond)
	g.Histogram("phase").Observe(2 * time.Second)
	g.Histogram("phase").Observe(time.Minute)

	if v := g.Counter("a.hits").Value(); v != 5 {
		t.Errorf("a.hits = %d, want 5", v)
	}
	h := g.Histogram("phase")
	if h.Count() != 3 {
		t.Errorf("phase count = %d, want 3", h.Count())
	}
	if want := 5*time.Microsecond + 2*time.Second + time.Minute; h.Sum() != want {
		t.Errorf("phase sum = %v, want %v", h.Sum(), want)
	}

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := buf.String()
	want := `{"counters":{"a.hits":5,"b.misses":1},"histograms":{"phase":{"count":3,"sum_ns":62000005000,"buckets":{"<=1us":0,"<=10us":1,"<=100us":0,"<=1ms":0,"<=10ms":0,"<=100ms":0,"<=1s":0,"<=10s":1,">10s":1}}}}
`
	if out != want {
		t.Errorf("WriteJSON:\ngot:  %s\nwant: %s", out, want)
	}

	// A second call must render the identical bytes (sorted names, no
	// map-order leak).
	var buf2 bytes.Buffer
	if err := g.WriteJSON(&buf2); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if buf2.String() != out {
		t.Error("WriteJSON output not stable across calls")
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var g *Registry
	g.Counter("x").Add(1)
	g.Histogram("y").Observe(time.Second)
	if v := g.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter Value = %d, want 0", v)
	}
	if n := g.Histogram("y").Count(); n != 0 {
		t.Errorf("nil histogram Count = %d, want 0", n)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on nil registry: %v", err)
	}
	if buf.String() != "{}\n" {
		t.Errorf("nil WriteJSON = %q, want {}\\n", buf.String())
	}
}

func TestHandlerServesMetricsAndPprof(t *testing.T) {
	g := NewRegistry()
	g.Counter("events.run.start").Add(1)
	h := Handler(g)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if !strings.Contains(string(body), `"events.run.start":1`) {
		t.Errorf("/metrics body missing counter: %s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status = %d", rec.Code)
	}
}

func TestServeBindsAndAnswers(t *testing.T) {
	g := NewRegistry()
	addr, err := Serve("127.0.0.1:0", g)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if _, _, err := splitHostPort(addr); err != nil {
		t.Fatalf("Serve returned unparseable address %q: %v", addr, err)
	}
}

// splitHostPort wraps net.SplitHostPort without importing net twice in
// the test's mental model; kept trivial on purpose.
func splitHostPort(addr string) (string, string, error) {
	i := strings.LastIndexByte(addr, ':')
	if i < 0 {
		return "", "", errors.New("no port")
	}
	return addr[:i], addr[i+1:], nil
}
