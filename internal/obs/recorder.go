package obs

// Recorder stamps events with the run's logical clock — a monotonically
// increasing sequence number and the current round — and forwards them
// to its Sink. The logical clock is what makes traces reproducible:
// a seeded run emits the same events with the same stamps regardless of
// worker count or wall-clock speed.
//
// A Recorder is single-writer, exactly like the Evaluator it instruments:
// all Emit and SetRound calls for one run happen on the run's sequential
// sections (the round loop between fan-outs), never inside a parallel
// fan-out. Do not share one Recorder across concurrent runs.
//
// The nil *Recorder is the disabled state: every method is a safe no-op
// and Emit performs zero allocations, so instrumented code calls it
// unconditionally. Construction-cost payloads (expression renderings,
// formatted notes) should still be guarded with On so the disabled path
// does not pay for building strings nobody will see.
type Recorder struct {
	sink  Sink
	seq   uint64
	round int
}

// NewRecorder wraps the sink in a fresh logical clock. A nil sink yields
// a nil Recorder — the disabled state.
func NewRecorder(s Sink) *Recorder {
	if s == nil {
		return nil
	}
	return &Recorder{sink: s}
}

// On reports whether events are being recorded. Use it to guard payload
// construction that allocates (e.g. rendering an expression to a string)
// so the disabled path stays allocation-free.
func (r *Recorder) On() bool {
	return r != nil
}

// SetRound sets the round number stamped on subsequent events: 1-based,
// 0 before the first crowdsourcing round.
func (r *Recorder) SetRound(n int) {
	if r == nil {
		return
	}
	r.round = n
}

// Round returns the round number currently stamped on events.
func (r *Recorder) Round() int {
	if r == nil {
		return 0
	}
	return r.round
}

// Emit stamps the event with the next sequence number and the current
// round, then hands it to the sink. On a nil Recorder it does nothing.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.seq++
	e.Seq = r.seq
	e.Round = r.round
	r.sink.Emit(e)
}
