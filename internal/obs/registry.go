package obs

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the expvar-style home of the run's scheduling-dependent
// numbers: monotonic counters and duration histograms, looked up by
// name and created on first use. It is safe for concurrent use, and a
// nil *Registry (and the nil *Counter / *Histogram it hands out) is a
// safe no-op, so instrumented code resolves and updates metrics
// unconditionally.
//
// Counters and histograms live here precisely because they are NOT
// deterministic: cache hit/miss tallies, pool fan-out counts and wall
// durations all depend on goroutine scheduling, so they are kept out of
// the trace (see Event) and reported separately.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named monotonic counter, creating it on first
// use. A nil registry returns a nil counter, whose methods are no-ops —
// resolve once, update unconditionally.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.counters[name]
	if !ok {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Histogram returns the named duration histogram, creating it on first
// use. A nil registry returns a nil histogram, whose methods are no-ops.
func (g *Registry) Histogram(name string) *Histogram {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.hists[name]
	if !ok {
		h = &Histogram{}
		g.hists[name] = h
	}
	return h
}

// WriteJSON writes the registry as one JSON object with "counters" and
// "histograms" members, names sorted, so the output is stable for a
// given set of values. A nil registry writes an empty object.
func (g *Registry) WriteJSON(w io.Writer) error {
	if g == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	g.mu.Lock()
	counters := make(map[string]*Counter, len(g.counters))
	cnames := make([]string, 0, len(g.counters))
	for name, c := range g.counters {
		counters[name] = c
		cnames = append(cnames, name)
	}
	hists := make(map[string]*Histogram, len(g.hists))
	hnames := make([]string, 0, len(g.hists))
	for name, h := range g.hists {
		hists[name] = h
		hnames = append(hnames, name)
	}
	g.mu.Unlock()
	sort.Strings(cnames)
	sort.Strings(hnames)

	b := make([]byte, 0, 512)
	b = append(b, `{"counters":{`...)
	for i, name := range cnames {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, name)
		b = append(b, ':')
		b = strconv.AppendInt(b, counters[name].Value(), 10)
	}
	b = append(b, `},"histograms":{`...)
	for i, name := range hnames {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, name)
		b = append(b, ':')
		b = hists[name].appendJSON(b)
	}
	b = append(b, "}}\n"...)
	_, err := w.Write(b)
	return err
}

// Counter is a monotonic event tally. The nil *Counter is a safe no-op
// receiver; non-nil counters are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. A nil counter does nothing.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current tally; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBounds are the histogram's fixed upper bucket bounds — one per
// decade from 1µs to 10s, wide enough for a per-round phase timing at
// any scale the benchmarks run. Observations above the last bound land
// in the overflow bucket.
var histBounds = [...]time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// histLabels name the buckets in WriteJSON output, in bound order plus
// the overflow bucket.
var histLabels = [...]string{
	"<=1us", "<=10us", "<=100us", "<=1ms", "<=10ms", "<=100ms", "<=1s", "<=10s", ">10s",
}

// Histogram is a fixed-bucket duration histogram (decade buckets from
// 1µs to 10s plus overflow). The nil *Histogram is a safe no-op
// receiver; non-nil histograms are safe for concurrent use.
type Histogram struct {
	buckets [len(histBounds) + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one duration. A nil histogram does nothing.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(histBounds) && d > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations; 0 on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration; 0 on a nil histogram.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// appendJSON appends the histogram as a JSON object with count, the sum
// in nanoseconds, and the per-bucket tallies in bound order.
func (h *Histogram) appendJSON(b []byte) []byte {
	b = append(b, `{"count":`...)
	b = strconv.AppendInt(b, h.count.Load(), 10)
	b = append(b, `,"sum_ns":`...)
	b = strconv.AppendInt(b, h.sum.Load(), 10)
	b = append(b, `,"buckets":{`...)
	for i := range h.buckets {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, histLabels[i])
		b = append(b, ':')
		b = strconv.AppendInt(b, h.buckets[i].Load(), 10)
	}
	b = append(b, "}}"...)
	return b
}
