package obs

import "sync"

// Aggregator is a Sink that folds events into a Registry instead of
// persisting them: each event increments the counter named
// "events.<kind>". It answers "how many of what happened" without the
// cost or volume of a full trace, and it is what the CLI's /metrics
// endpoint shows when tracing to disk is off.
//
// Unlike the Recorder feeding it, an Aggregator is safe for concurrent
// Emit calls on its own — it may be shared across sinks or runs.
type Aggregator struct {
	reg *Registry

	mu     sync.Mutex
	byKind map[Kind]*Counter // guarded by mu
}

// NewAggregator returns an Aggregator counting into reg. A nil reg
// yields an Aggregator that counts into nothing (every Emit is a no-op).
func NewAggregator(reg *Registry) *Aggregator {
	return &Aggregator{reg: reg, byKind: map[Kind]*Counter{}}
}

// Emit increments the event kind's counter. The counter pointer is
// resolved once per kind and cached, so steady-state emission is one
// map lookup and one atomic add.
func (a *Aggregator) Emit(e Event) {
	a.mu.Lock()
	c, ok := a.byKind[e.Kind]
	if !ok {
		c = a.reg.Counter("events." + string(e.Kind))
		a.byKind[e.Kind] = c
	}
	a.mu.Unlock()
	c.Add(1)
}
