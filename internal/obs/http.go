package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// Handler returns the debug endpoint's HTTP handler: GET /metrics dumps
// the registry as JSON, and /debug/pprof/* exposes the standard
// net/http/pprof profiles. The handler is mounted on its own mux — the
// process's DefaultServeMux is left alone — so callers embedding the
// routes in a larger mux (the bayescrowdd daemon) can mount it under
// their own patterns instead.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsHandler returns the /metrics handler alone: a JSON dump of the
// registry. Servers that compose their own mux (internal/service) mount
// it next to their API routes.
func MetricsHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			// The response is already partially written; nothing useful
			// remains to send the client.
			fmt.Fprintf(os.Stderr, "obs: /metrics write: %v\n", err)
		}
	}
}

// HTTPServer is a managed HTTP server lifecycle: a bound listener, a
// background serve loop, and a graceful Shutdown. The obs debug
// endpoint and the bayescrowdd service share it, so "drain the daemon"
// and "stop the debug endpoint" are the same mechanism.
type HTTPServer struct {
	srv  *http.Server
	addr string
	done chan struct{}
	err  error // serve-loop exit error, readable after done closes
}

// StartServer binds addr (which may use port 0), starts serving h in
// the background, and returns the running server. Stop it with
// Shutdown; an HTTPServer that is never shut down serves for the
// remainder of the process, which is all the opt-in debug endpoint
// needs.
func StartServer(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{
		srv:  &http.Server{Handler: h},
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	//lint:ignore goroutine the serve loop runs for the server's lifetime, outside the data-parallel pools, and is joined by Shutdown
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.err = err
			fmt.Fprintf(os.Stderr, "obs: http endpoint: %v\n", err)
		}
	}()
	return s, nil
}

// Addr returns the server's bound address, e.g. "127.0.0.1:6060".
func (s *HTTPServer) Addr() string { return s.addr }

// Shutdown drains the server gracefully: the listener closes
// immediately (no new connections), in-flight requests run to
// completion or until ctx expires, and the serve loop is joined before
// Shutdown returns. It reports the first error from either the drain
// or the serve loop.
func (s *HTTPServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	if err == nil {
		err = s.err
	}
	return err
}

// Serve starts the debug endpoint on addr (e.g. ":6060") in the
// background and returns the bound address, so addr may use port 0.
// The server runs for the remainder of the process — the fire-and-
// forget form for CLIs; long-running daemons use StartServer and hold
// the handle so the endpoint drains with the rest of the process
// (HTTPServer.Shutdown).
func Serve(addr string, reg *Registry) (string, error) {
	s, err := StartServer(addr, Handler(reg))
	if err != nil {
		return "", err
	}
	return s.Addr(), nil
}
