package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// Handler returns the debug endpoint's HTTP handler: GET /metrics dumps
// the registry as JSON, and /debug/pprof/* exposes the standard
// net/http/pprof profiles. The handler is mounted on its own mux — the
// process's DefaultServeMux is left alone.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			// The response is already partially written; nothing useful
			// remains to send the client.
			fmt.Fprintf(os.Stderr, "obs: /metrics write: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug endpoint on addr (e.g. ":6060") in the
// background and returns the bound address, so addr may use port 0. The
// server runs for the remainder of the process; it is an opt-in debug
// aid, not a managed service, so there is no shutdown handle — exiting
// the process is the shutdown.
func Serve(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: Handler(reg)}
	//lint:ignore goroutine the opt-in debug endpoint serves for the process lifetime, outside the data-parallel pools
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "obs: debug endpoint: %v\n", err)
		}
	}()
	return ln.Addr().String(), nil
}
