package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServerShutdown exercises the managed lifecycle: the endpoint
// serves /metrics while up, Shutdown drains it, and afterwards the
// port no longer accepts connections.
func TestServerShutdown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.counter").Add(7)

	s, err := StartServer("127.0.0.1:0", Handler(reg))
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}

	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatalf("close body: %v", cerr)
	}
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "test.counter") {
		t.Fatalf("metrics dump missing counter: %s", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The listener must be closed: a fresh dial fails fast.
	conn, err := net.DialTimeout("tcp", s.Addr(), 500*time.Millisecond)
	if err == nil {
		if cerr := conn.Close(); cerr != nil {
			t.Logf("close probe conn: %v", cerr)
		}
		t.Fatal("dial succeeded after Shutdown")
	}

	// A second Shutdown is harmless (http.Server.Shutdown is idempotent).
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}
