package obs

import (
	"testing"
	"time"
)

// TestDisabledPathAllocationFree is the issue's hard acceptance bound:
// the disabled observability path must not allocate. It covers the three
// disabled states instrumented code actually hits — the nil Recorder,
// a live Recorder draining into the Nop sink, and the nil
// Counter/Histogram a nil Registry hands out.
func TestDisabledPathAllocationFree(t *testing.T) {
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		nilRec.Emit(Event{Kind: KindTaskPost, Task: "t", N: 1})
		nilRec.SetRound(1)
	}); n != 0 {
		t.Errorf("nil Recorder.Emit allocates %v/op, want 0", n)
	}

	rec := NewRecorder(Nop{})
	if n := testing.AllocsPerRun(1000, func() {
		rec.Emit(Event{Kind: KindTaskPost, Task: "t", N: 1})
	}); n != 0 {
		t.Errorf("Nop-sink Recorder.Emit allocates %v/op, want 0", n)
	}

	var g *Registry
	cnt := g.Counter("x")
	hist := g.Histogram("y")
	if n := testing.AllocsPerRun(1000, func() {
		cnt.Add(1)
		hist.Observe(time.Millisecond)
	}); n != 0 {
		t.Errorf("nil Counter/Histogram update allocates %v/op, want 0", n)
	}
}

// TestEnabledCounterAllocationFree pins the hot enabled path too: once a
// counter or histogram pointer is resolved, updates are a single atomic
// op with no allocation.
func TestEnabledCounterAllocationFree(t *testing.T) {
	g := NewRegistry()
	cnt := g.Counter("x")
	hist := g.Histogram("y")
	if n := testing.AllocsPerRun(1000, func() {
		cnt.Add(1)
		hist.Observe(time.Millisecond)
	}); n != 0 {
		t.Errorf("resolved Counter/Histogram update allocates %v/op, want 0", n)
	}
}

func BenchmarkEmitNilRecorder(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(Event{Kind: KindTaskPost, Task: "t", N: 1})
	}
}

func BenchmarkEmitNopSink(b *testing.B) {
	r := NewRecorder(Nop{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(Event{Kind: KindTaskPost, Task: "t", N: 1})
	}
}

func BenchmarkEmitAggregator(b *testing.B) {
	r := NewRecorder(NewAggregator(NewRegistry()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(Event{Kind: KindTaskPost, Task: "t", N: 1})
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
