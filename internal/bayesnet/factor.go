package bayesnet

import (
	"fmt"
	"sort"
)

// factor is a nonnegative function over a subset of network variables,
// used by variable-elimination inference. vars are node indices in
// ascending order; vals is indexed in mixed radix with the LAST variable
// varying fastest.
type factor struct {
	vars []int
	card []int
	vals []float64
}

func newFactor(vars, card []int) *factor {
	size := 1
	for _, c := range card {
		size *= c
	}
	return &factor{vars: vars, card: card, vals: make([]float64, size)}
}

// index returns the flat index of the given per-variable values.
func (f *factor) index(values []int) int {
	idx := 0
	for i := range f.vars {
		idx = idx*f.card[i] + values[i]
	}
	return idx
}

// product multiplies two factors over the union of their variables.
func product(a, b *factor) *factor {
	// Union of vars, ascending.
	varsUnion := make([]int, 0, len(a.vars)+len(b.vars))
	varsUnion = append(varsUnion, a.vars...)
	for _, v := range b.vars {
		if !containsInt(a.vars, v) {
			varsUnion = append(varsUnion, v)
		}
	}
	sort.Ints(varsUnion)

	cardOf := func(v int) int {
		if i := indexOfInt(a.vars, v); i >= 0 {
			return a.card[i]
		}
		return b.card[indexOfInt(b.vars, v)]
	}
	card := make([]int, len(varsUnion))
	for i, v := range varsUnion {
		card[i] = cardOf(v)
	}
	out := newFactor(varsUnion, card)

	// Map union positions to positions in a and b (-1 if absent).
	posA := make([]int, len(varsUnion))
	posB := make([]int, len(varsUnion))
	for i, v := range varsUnion {
		posA[i] = indexOfInt(a.vars, v)
		posB[i] = indexOfInt(b.vars, v)
	}

	values := make([]int, len(varsUnion))
	aVals := make([]int, len(a.vars))
	bVals := make([]int, len(b.vars))
	for flat := range out.vals {
		// Decode flat into values (last var fastest).
		rem := flat
		for i := len(values) - 1; i >= 0; i-- {
			values[i] = rem % card[i]
			rem /= card[i]
		}
		for i, p := range posA {
			if p >= 0 {
				aVals[p] = values[i]
			}
		}
		for i, p := range posB {
			if p >= 0 {
				bVals[p] = values[i]
			}
		}
		out.vals[flat] = a.vals[a.index(aVals)] * b.vals[b.index(bVals)]
	}
	return out
}

// sumOut marginalises variable v out of the factor.
func (f *factor) sumOut(v int) *factor {
	pos := indexOfInt(f.vars, v)
	if pos < 0 {
		return f
	}
	vars := make([]int, 0, len(f.vars)-1)
	card := make([]int, 0, len(f.vars)-1)
	for i, fv := range f.vars {
		if i != pos {
			vars = append(vars, fv)
			card = append(card, f.card[i])
		}
	}
	out := newFactor(vars, card)

	values := make([]int, len(f.vars))
	outVals := make([]int, len(vars))
	for flat, val := range f.vals {
		rem := flat
		for i := len(values) - 1; i >= 0; i-- {
			values[i] = rem % f.card[i]
			rem /= f.card[i]
		}
		k := 0
		for i := range values {
			if i != pos {
				outVals[k] = values[i]
				k++
			}
		}
		out.vals[out.index(outVals)] += val
	}
	return out
}

// restrict fixes variable v to value val, dropping it from the factor.
func (f *factor) restrict(v, val int) *factor {
	pos := indexOfInt(f.vars, v)
	if pos < 0 {
		return f
	}
	vars := make([]int, 0, len(f.vars)-1)
	card := make([]int, 0, len(f.vars)-1)
	for i, fv := range f.vars {
		if i != pos {
			vars = append(vars, fv)
			card = append(card, f.card[i])
		}
	}
	out := newFactor(vars, card)

	values := make([]int, len(f.vars))
	outVals := make([]int, len(vars))
	for flat, fval := range f.vals {
		rem := flat
		for i := len(values) - 1; i >= 0; i-- {
			values[i] = rem % f.card[i]
			rem /= f.card[i]
		}
		if values[pos] != val {
			continue
		}
		k := 0
		for i := range values {
			if i != pos {
				outVals[k] = values[i]
				k++
			}
		}
		out.vals[out.index(outVals)] = fval
	}
	return out
}

func containsInt(s []int, v int) bool { return indexOfInt(s, v) >= 0 }

func indexOfInt(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// cptFactor converts node i's CPT into a factor over {parents..., i}.
func (n *Network) cptFactor(i int) *factor {
	node := &n.Nodes[i]
	vars := append(append([]int(nil), node.Parents...), i)
	sort.Ints(vars)
	card := make([]int, len(vars))
	for k, v := range vars {
		card[k] = n.Nodes[v].Levels
	}
	f := newFactor(vars, card)

	// Enumerate parent configs × node values in CPT order and scatter
	// into the sorted-variable factor layout.
	parentVals := make([]int, len(node.Parents))
	factorVals := make([]int, len(vars))
	cfgs := len(node.CPT) / node.Levels
	for cfg := 0; cfg < cfgs; cfg++ {
		rem := cfg
		for k := len(parentVals) - 1; k >= 0; k-- {
			parentVals[k] = rem % n.Nodes[node.Parents[k]].Levels
			rem /= n.Nodes[node.Parents[k]].Levels
		}
		for v := 0; v < node.Levels; v++ {
			for k, fv := range vars {
				if fv == i {
					factorVals[k] = v
				} else {
					factorVals[k] = parentVals[indexOfInt(node.Parents, fv)]
				}
			}
			f.vals[f.index(factorVals)] = node.CPT[cfg*node.Levels+v]
		}
	}
	return f
}

// Posterior returns P(target | evidence) as a distribution over the
// target's levels, computed exactly by variable elimination. evidence maps
// node index to observed value; the target must not be in the evidence.
// If the evidence has zero probability under the network, the uniform
// distribution is returned (no information).
func (n *Network) Posterior(target int, evidence map[int]int) []float64 {
	if target < 0 || target >= len(n.Nodes) {
		panic(fmt.Sprintf("bayesnet: Posterior target %d outside [0,%d)", target, len(n.Nodes)))
	}
	if _, ok := evidence[target]; ok {
		panic(fmt.Sprintf("bayesnet: Posterior target %d is in the evidence", target))
	}

	// Build CPT factors restricted by evidence, from the per-node cache.
	if n.factors == nil {
		n.factors = make([]*factor, len(n.Nodes))
		for i := range n.Nodes {
			n.factors[i] = n.cptFactor(i)
		}
	}
	factors := make([]*factor, 0, len(n.Nodes))
	for i := range n.Nodes {
		f := n.factors[i]
		for v, val := range evidence {
			f = f.restrict(v, val) // returns f unchanged when v is absent
		}
		factors = append(factors, f)
	}

	// Eliminate every hidden variable except the target, greedily picking
	// the variable whose elimination creates the smallest product factor.
	hidden := map[int]bool{}
	for i := range n.Nodes {
		if i == target {
			continue
		}
		if _, ok := evidence[i]; !ok {
			hidden[i] = true
		}
	}
	for len(hidden) > 0 {
		best, bestCost := -1, 0
		for v := range hidden {
			cost := 1
			seen := map[int]bool{}
			for _, f := range factors {
				if containsInt(f.vars, v) {
					for k, fv := range f.vars {
						if !seen[fv] {
							seen[fv] = true
							cost *= f.card[k]
						}
					}
				}
			}
			if best == -1 || cost < bestCost || (cost == bestCost && v < best) {
				best, bestCost = v, cost
			}
		}
		factors = eliminate(factors, best)
		delete(hidden, best)
	}

	// Multiply the remaining factors (all over {target} or empty).
	result := &factor{vars: nil, card: nil, vals: []float64{1}}
	for _, f := range factors {
		result = product(result, f)
	}

	dist := make([]float64, n.Nodes[target].Levels)
	if len(result.vars) == 0 {
		// Target was fully determined away — cannot happen since we never
		// eliminate it; defensive uniform fallback.
		for v := range dist {
			dist[v] = 1 / float64(len(dist))
		}
		return dist
	}
	copy(dist, result.vals)
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if sum <= 0 {
		for v := range dist {
			dist[v] = 1 / float64(len(dist))
		}
		return dist
	}
	for v := range dist {
		dist[v] /= sum
	}
	return dist
}

// eliminate multiplies all factors mentioning v and sums v out.
func eliminate(factors []*factor, v int) []*factor {
	var keep []*factor
	var prod *factor
	for _, f := range factors {
		if containsInt(f.vars, v) {
			if prod == nil {
				prod = f
			} else {
				prod = product(prod, f)
			}
		} else {
			keep = append(keep, f)
		}
	}
	if prod != nil {
		keep = append(keep, prod.sumOut(v))
	}
	return keep
}
