package bayesnet

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks the network parser never panics and that every
// accepted network is internally consistent (valid topology, normalised
// CPTs — enforced by New) and inference-safe.
func FuzzReadJSON(f *testing.F) {
	var chainJSON bytes.Buffer
	if err := MustNew([]Node{
		{Name: "A", Levels: 2, CPT: []float64{0.3, 0.7}},
		{Name: "B", Levels: 2, Parents: []int{0}, CPT: []float64{0.9, 0.1, 0.2, 0.8}},
	}).WriteJSON(&chainJSON); err != nil {
		f.Fatal(err)
	}
	f.Add(chainJSON.String())
	f.Add(`{"nodes":[]}`)
	f.Add(`{"nodes":[{"name":"A","levels":1,"cpt":[1]}]}`)
	f.Add(`{"nodes":[{"name":"A","levels":2,"parents":[1],"cpt":[0.5,0.5]},{"name":"B","levels":2,"parents":[0],"cpt":[0.5,0.5]}]}`)
	f.Add(`not json at all`)
	f.Add(`{"nodes":[{"name":"A","levels":2,"cpt":[0.5,"x"]}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		n, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		if n.NumNodes() == 0 {
			return
		}
		// Inference over the accepted network must be well-formed.
		dist := n.Posterior(0, nil)
		sum := 0.0
		for _, p := range dist {
			if p < 0 || p > 1+1e-9 {
				t.Fatalf("posterior entry %v outside [0,1]", p)
			}
			sum += p
		}
		if sum < 1-1e-6 || sum > 1+1e-6 {
			t.Fatalf("posterior sums to %v", sum)
		}
	})
}
