package bayesnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// AnnealOptions tunes simulated-annealing structure search.
type AnnealOptions struct {
	// MaxParents caps the in-degree of every node (default 3).
	MaxParents int
	// Steps is the number of annealing proposals (default 5000).
	Steps int
	// StartTemp and EndTemp bracket the geometric cooling schedule
	// (defaults 2.0 → 0.01, in units of BIC score).
	StartTemp, EndTemp float64
	// Alpha is the Laplace smoothing for the final CPT fit (default 1).
	Alpha float64
	// Rng drives proposals; defaults to a fixed seed.
	Rng *rand.Rand
}

func (o AnnealOptions) withDefaults() AnnealOptions {
	if o.MaxParents == 0 {
		o.MaxParents = 3
	}
	if o.Steps == 0 {
		o.Steps = 5000
	}
	if o.StartTemp == 0 {
		o.StartTemp = 2.0
	}
	if o.EndTemp == 0 {
		o.EndTemp = 0.01
	}
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	return o
}

// LearnStructureAnnealed searches DAG space by simulated annealing over
// add/delete/reverse edge moves with the BIC score — the search mode
// Banjo is best known for, complementing the greedy hill climbing of
// LearnStructure. Both find equivalent structures on the small networks
// BayesCrowd uses; the annealed search escapes local optima on harder
// score surfaces at higher cost.
func LearnStructureAnnealed(names []string, levels []int, data [][]int, opt AnnealOptions) (*Network, error) {
	if len(names) != len(levels) {
		return nil, fmt.Errorf("bayesnet: %d names for %d levels", len(names), len(levels))
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("bayesnet: no training data")
	}
	opt = opt.withDefaults()
	n := len(names)
	sc := &scorer{data: data, levels: levels, cache: map[string]float64{}}

	parents := emptyParents(n)
	current := totalScore(sc, parents)
	bestParents := copyParents(parents)
	best := current

	cool := math.Pow(opt.EndTemp/opt.StartTemp, 1/float64(opt.Steps))
	temp := opt.StartTemp

	for step := 0; step < opt.Steps; step++ {
		u := opt.Rng.Intn(n)
		v := opt.Rng.Intn(n)
		if u == v {
			temp *= cool
			continue
		}

		// Propose a random legal move on edge u→v and compute its delta
		// from the decomposable score.
		var apply func()
		var delta float64
		switch {
		case containsInt(parents[v], u):
			if opt.Rng.Intn(2) == 0 {
				// Delete u→v.
				delta = sc.family(v, withoutParent(parents[v], u)) - sc.family(v, parents[v])
				apply = func() { parents[v] = withoutParent(parents[v], u) }
			} else {
				// Reverse to v→u.
				if len(parents[u]) >= opt.MaxParents {
					temp *= cool
					continue
				}
				trial := copyParents(parents)
				trial[v] = withoutParent(trial[v], u)
				if createsCycle(trial, v, u) {
					temp *= cool
					continue
				}
				delta = sc.family(v, withoutParent(parents[v], u)) - sc.family(v, parents[v]) +
					sc.family(u, withParent(parents[u], v)) - sc.family(u, parents[u])
				apply = func() {
					parents[v] = withoutParent(parents[v], u)
					parents[u] = withParent(parents[u], v)
				}
			}
		default:
			// Add u→v.
			if len(parents[v]) >= opt.MaxParents || createsCycle(parents, u, v) {
				temp *= cool
				continue
			}
			delta = sc.family(v, withParent(parents[v], u)) - sc.family(v, parents[v])
			apply = func() { parents[v] = withParent(parents[v], u) }
		}

		// Metropolis acceptance.
		if delta >= 0 || opt.Rng.Float64() < math.Exp(delta/temp) {
			apply()
			current += delta
			if current > best {
				best = current
				bestParents = copyParents(parents)
			}
		}
		temp *= cool
	}

	nodes := make([]Node, n)
	for i := range nodes {
		sort.Ints(bestParents[i])
		nodes[i] = Node{Name: names[i], Levels: levels[i], Parents: bestParents[i]}
	}
	return Fit(nodes, data, opt.Alpha)
}
