package bayesnet

import (
	"math"
	"math/rand"
	"testing"
)

// chain returns the network A → B → C with hand-picked CPTs, used across
// the tests.
func chain(t testing.TB) *Network {
	t.Helper()
	return MustNew([]Node{
		{Name: "A", Levels: 2, CPT: []float64{0.3, 0.7}},
		{Name: "B", Levels: 3, Parents: []int{0}, CPT: []float64{
			0.5, 0.3, 0.2, // A=0
			0.1, 0.2, 0.7, // A=1
		}},
		{Name: "C", Levels: 2, Parents: []int{1}, CPT: []float64{
			0.9, 0.1, // B=0
			0.5, 0.5, // B=1
			0.2, 0.8, // B=2
		}},
	})
}

func TestNewRejectsCycle(t *testing.T) {
	_, err := New([]Node{
		{Name: "A", Levels: 2, Parents: []int{1}, CPT: []float64{0.5, 0.5, 0.5, 0.5}},
		{Name: "B", Levels: 2, Parents: []int{0}, CPT: []float64{0.5, 0.5, 0.5, 0.5}},
	})
	if err == nil {
		t.Fatal("New accepted a cyclic graph")
	}
}

func TestNewRejectsSelfParent(t *testing.T) {
	_, err := New([]Node{
		{Name: "A", Levels: 2, Parents: []int{0}, CPT: []float64{0.5, 0.5, 0.5, 0.5}},
	})
	if err == nil {
		t.Fatal("New accepted a self-parent")
	}
}

func TestNewRejectsBadCPT(t *testing.T) {
	cases := []struct {
		name string
		node Node
	}{
		{"wrong size", Node{Name: "A", Levels: 2, CPT: []float64{1}}},
		{"unnormalised", Node{Name: "A", Levels: 2, CPT: []float64{0.5, 0.6}}},
		{"negative", Node{Name: "A", Levels: 2, CPT: []float64{1.5, -0.5}}},
		{"zero levels", Node{Name: "A", Levels: 0, CPT: nil}},
	}
	for _, tc := range cases {
		if _, err := New([]Node{tc.node}); err == nil {
			t.Errorf("New accepted CPT case %q", tc.name)
		}
	}
}

func TestTopoOrderParentsFirst(t *testing.T) {
	n := chain(t)
	pos := map[int]int{}
	for i, v := range n.TopoOrder() {
		pos[v] = i
	}
	for i, nd := range n.Nodes {
		for _, p := range nd.Parents {
			if pos[p] > pos[i] {
				t.Fatalf("parent %d after child %d in topo order", p, i)
			}
		}
	}
}

func TestJointSumsToOne(t *testing.T) {
	n := chain(t)
	sum := 0.0
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 2; c++ {
				sum += n.JointP([]int{a, b, c})
			}
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("joint sums to %v, want 1", sum)
	}
}

// bruteforcePosterior enumerates the full joint to compute P(target|evidence).
func bruteforcePosterior(n *Network, target int, evidence map[int]int) []float64 {
	dist := make([]float64, n.Nodes[target].Levels)
	assignment := make([]int, len(n.Nodes))
	var rec func(i int)
	rec = func(i int) {
		if i == len(n.Nodes) {
			dist[assignment[target]] += n.JointP(assignment)
			return
		}
		if v, ok := evidence[i]; ok {
			assignment[i] = v
			rec(i + 1)
			return
		}
		for v := 0; v < n.Nodes[i].Levels; v++ {
			assignment[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if sum == 0 {
		for v := range dist {
			dist[v] = 1 / float64(len(dist))
		}
		return dist
	}
	for v := range dist {
		dist[v] /= sum
	}
	return dist
}

func distsClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestPosteriorMatchesBruteForceOnChain(t *testing.T) {
	n := chain(t)
	cases := []struct {
		target   int
		evidence map[int]int
	}{
		{0, nil},
		{0, map[int]int{2: 1}},
		{0, map[int]int{1: 2, 2: 0}},
		{1, map[int]int{0: 1}},
		{1, map[int]int{0: 0, 2: 1}},
		{2, nil},
		{2, map[int]int{0: 1}},
	}
	for _, tc := range cases {
		got := n.Posterior(tc.target, tc.evidence)
		want := bruteforcePosterior(n, tc.target, tc.evidence)
		if !distsClose(got, want, 1e-9) {
			t.Errorf("Posterior(%d, %v) = %v, want %v", tc.target, tc.evidence, got, want)
		}
	}
}

// randomNetwork builds a random DAG with random CPTs for property testing.
func randomNetwork(rng *rand.Rand, nNodes, maxLevels int) *Network {
	nodes := make([]Node, nNodes)
	for i := range nodes {
		levels := 2 + rng.Intn(maxLevels-1)
		var parents []int
		for p := 0; p < i; p++ {
			if len(parents) < 3 && rng.Float64() < 0.4 {
				parents = append(parents, p)
			}
		}
		cfgs := 1
		for _, p := range parents {
			cfgs *= nodes[p].Levels
		}
		cpt := make([]float64, cfgs*levels)
		for c := 0; c < cfgs; c++ {
			sum := 0.0
			for v := 0; v < levels; v++ {
				cpt[c*levels+v] = rng.Float64() + 0.01
				sum += cpt[c*levels+v]
			}
			for v := 0; v < levels; v++ {
				cpt[c*levels+v] /= sum
			}
		}
		nodes[i] = Node{Name: string(rune('A' + i)), Levels: levels, Parents: parents, CPT: cpt}
	}
	return MustNew(nodes)
}

func TestPosteriorMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := randomNetwork(rng, 2+rng.Intn(5), 4)
		target := rng.Intn(n.NumNodes())
		evidence := map[int]int{}
		for i := range n.Nodes {
			if i != target && rng.Float64() < 0.5 {
				evidence[i] = rng.Intn(n.Nodes[i].Levels)
			}
		}
		got := n.Posterior(target, evidence)
		want := bruteforcePosterior(n, target, evidence)
		if !distsClose(got, want, 1e-9) {
			t.Fatalf("trial %d: Posterior(%d, %v) = %v, want %v", trial, target, evidence, got, want)
		}
		sum := 0.0
		for _, p := range got {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: posterior sums to %v", trial, sum)
		}
	}
}

func TestPosteriorPanicsOnEvidenceTarget(t *testing.T) {
	n := chain(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Posterior with target in evidence did not panic")
		}
	}()
	n.Posterior(0, map[int]int{0: 1})
}

func TestSampleMatchesMarginals(t *testing.T) {
	n := chain(t)
	rng := rand.New(rand.NewSource(7))
	const trials = 200000
	counts := make([]int, 3)
	for i := 0; i < trials; i++ {
		row := n.Sample(rng)
		counts[row[1]]++
	}
	want := bruteforcePosterior(n, 1, nil)
	for v := range counts {
		got := float64(counts[v]) / trials
		if math.Abs(got-want[v]) > 0.01 {
			t.Errorf("empirical P(B=%d) = %v, want %v", v, got, want[v])
		}
	}
}

func TestFitRecoversCPT(t *testing.T) {
	truth := chain(t)
	rng := rand.New(rand.NewSource(9))
	data := make([][]int, 50000)
	for i := range data {
		data[i] = truth.Sample(rng)
	}
	skeleton := make([]Node, len(truth.Nodes))
	for i, nd := range truth.Nodes {
		skeleton[i] = Node{Name: nd.Name, Levels: nd.Levels, Parents: nd.Parents}
	}
	fitted, err := Fit(skeleton, data, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Nodes {
		for k := range truth.Nodes[i].CPT {
			if math.Abs(fitted.Nodes[i].CPT[k]-truth.Nodes[i].CPT[k]) > 0.02 {
				t.Errorf("node %d CPT[%d] = %v, want ~%v", i, k, fitted.Nodes[i].CPT[k], truth.Nodes[i].CPT[k])
			}
		}
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	skeleton := []Node{{Name: "A", Levels: 2}}
	if _, err := Fit(skeleton, [][]int{{5}}, 1); err == nil {
		t.Error("Fit accepted out-of-domain value")
	}
	if _, err := Fit(skeleton, [][]int{{0, 1}}, 1); err == nil {
		t.Error("Fit accepted wrong-width row")
	}
	if _, err := Fit(skeleton, nil, -1); err == nil {
		t.Error("Fit accepted negative smoothing")
	}
}

func TestFitEmptyDataIsUniformWithSmoothing(t *testing.T) {
	skeleton := []Node{{Name: "A", Levels: 4}}
	n, err := Fit(skeleton, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if math.Abs(n.Nodes[0].CPT[v]-0.25) > 1e-12 {
			t.Fatalf("CPT = %v, want uniform", n.Nodes[0].CPT)
		}
	}
}

func TestLearnStructureFindsDependence(t *testing.T) {
	// Ground truth: X0 → X1 strongly dependent, X2 independent.
	truth := MustNew([]Node{
		{Name: "X0", Levels: 2, CPT: []float64{0.5, 0.5}},
		{Name: "X1", Levels: 2, Parents: []int{0}, CPT: []float64{0.95, 0.05, 0.05, 0.95}},
		{Name: "X2", Levels: 2, CPT: []float64{0.5, 0.5}},
	})
	rng := rand.New(rand.NewSource(11))
	data := make([][]int, 5000)
	for i := range data {
		data[i] = truth.Sample(rng)
	}
	learned, err := LearnStructure([]string{"X0", "X1", "X2"}, []int{2, 2, 2}, data, LearnOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	// X0 and X1 must be connected (either direction scores identically);
	// X2 must stay isolated.
	connected := containsInt(learned.Nodes[1].Parents, 0) || containsInt(learned.Nodes[0].Parents, 1)
	if !connected {
		t.Error("learned structure misses the X0–X1 dependence")
	}
	if len(learned.Nodes[2].Parents) != 0 {
		t.Errorf("independent X2 learned parents %v", learned.Nodes[2].Parents)
	}
	for i, nd := range learned.Nodes {
		if containsInt(nd.Parents, 2) {
			t.Errorf("node %d has independent X2 as parent", i)
		}
	}
}

func TestLearnStructureErrors(t *testing.T) {
	if _, err := LearnStructure([]string{"A"}, []int{2, 2}, [][]int{{0}}, LearnOptions{}); err == nil {
		t.Error("LearnStructure accepted mismatched names/levels")
	}
	if _, err := LearnStructure([]string{"A"}, []int{2}, nil, LearnOptions{}); err == nil {
		t.Error("LearnStructure accepted empty data")
	}
}

func TestLearnedScoreAtLeastEmptyGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	truth := randomNetwork(rng, 5, 3)
	data := make([][]int, 3000)
	for i := range data {
		data[i] = truth.Sample(rng)
	}
	levels := truth.Levels()
	names := make([]string, len(levels))
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	learned, err := LearnStructure(names, levels, data, LearnOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	sc := &scorer{data: data, levels: levels, cache: map[string]float64{}}
	learnedParents := make([][]int, len(levels))
	for i, nd := range learned.Nodes {
		learnedParents[i] = nd.Parents
	}
	if totalScore(sc, learnedParents) < totalScore(sc, emptyParents(len(levels)))-1e-9 {
		t.Error("learned structure scores worse than the empty graph")
	}
}

func TestCreatesCycle(t *testing.T) {
	// 0 → 1 → 2 exists; adding 2 → 0 must be detected as a cycle,
	// adding 0 → 2 must not.
	parents := [][]int{{}, {0}, {1}}
	if !createsCycle(parents, 2, 0) {
		t.Error("2→0 not flagged as cycle")
	}
	if createsCycle(parents, 0, 2) {
		t.Error("0→2 wrongly flagged as cycle")
	}
}

func BenchmarkPosterior11Nodes(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := randomNetwork(rng, 11, 6)
	evidence := map[int]int{0: 1, 3: 0, 7: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Posterior(5, evidence)
	}
}

func BenchmarkSample(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := randomNetwork(rng, 11, 6)
	out := make([]int, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.SampleInto(rng, out)
	}
}

func TestPosteriorImpossibleEvidenceUniform(t *testing.T) {
	// B = 1 is impossible when A = 0 (zero CPT entry); conditioning a
	// third variable on that evidence must fall back to uniform rather
	// than divide by zero.
	n := MustNew([]Node{
		{Name: "A", Levels: 2, CPT: []float64{1, 0}}, // A is always 0
		{Name: "B", Levels: 2, Parents: []int{0}, CPT: []float64{
			1, 0, // A=0: B always 0
			0, 1, // A=1: B always 1
		}},
		{Name: "C", Levels: 3, CPT: []float64{0.2, 0.3, 0.5}},
	})
	got := n.Posterior(2, map[int]int{1: 1}) // evidence B=1: probability 0
	for v, p := range got {
		if math.Abs(p-1.0/3.0) > 1e-9 {
			t.Fatalf("Posterior under impossible evidence = %v (entry %d), want uniform", got, v)
		}
	}
}

func TestSampleIntoWrongLengthPanics(t *testing.T) {
	n := chain(t)
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInto with wrong-length slice did not panic")
		}
	}()
	n.SampleInto(rand.New(rand.NewSource(1)), make([]int, 1))
}

func TestJointPWrongLengthPanics(t *testing.T) {
	n := chain(t)
	defer func() {
		if recover() == nil {
			t.Fatal("JointP with wrong-length assignment did not panic")
		}
	}()
	n.JointP([]int{0})
}

func TestPosteriorBadTargetPanics(t *testing.T) {
	n := chain(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Posterior with out-of-range target did not panic")
		}
	}()
	n.Posterior(99, nil)
}
