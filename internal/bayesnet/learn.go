package bayesnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Fit estimates the CPT of every node from complete integer-coded rows by
// maximum likelihood with Laplace (add-alpha) smoothing. The structure
// (names, levels, parents) is given by nodes; the returned network shares
// nothing with the input slice.
//
// With alpha = 1 this is the posterior mean under a uniform Dirichlet
// prior — the estimate the paper's Infer.Net step produces for fully
// observed discrete data.
func Fit(nodes []Node, data [][]int, alpha float64) (*Network, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("bayesnet: negative smoothing %v", alpha)
	}
	fitted := make([]Node, len(nodes))
	for i, nd := range nodes {
		cfgs := 1
		for _, p := range nd.Parents {
			cfgs *= nodes[p].Levels
		}
		counts := make([]float64, cfgs*nd.Levels)
		for _, row := range data {
			if len(row) != len(nodes) {
				return nil, fmt.Errorf("bayesnet: row has %d values, want %d", len(row), len(nodes))
			}
			cfg := 0
			for _, p := range nd.Parents {
				if row[p] < 0 || row[p] >= nodes[p].Levels {
					return nil, fmt.Errorf("bayesnet: value %d outside domain of node %q", row[p], nodes[p].Name)
				}
				cfg = cfg*nodes[p].Levels + row[p]
			}
			if row[i] < 0 || row[i] >= nd.Levels {
				return nil, fmt.Errorf("bayesnet: value %d outside domain of node %q", row[i], nd.Name)
			}
			counts[cfg*nd.Levels+row[i]]++
		}
		cpt := make([]float64, len(counts))
		for c := 0; c < cfgs; c++ {
			total := alpha * float64(nd.Levels)
			for v := 0; v < nd.Levels; v++ {
				total += counts[c*nd.Levels+v]
			}
			for v := 0; v < nd.Levels; v++ {
				if total == 0 {
					cpt[c*nd.Levels+v] = 1 / float64(nd.Levels)
				} else {
					cpt[c*nd.Levels+v] = (counts[c*nd.Levels+v] + alpha) / total
				}
			}
		}
		fitted[i] = Node{
			Name:    nd.Name,
			Levels:  nd.Levels,
			Parents: append([]int(nil), nd.Parents...),
			CPT:     cpt,
		}
	}
	return New(fitted)
}

// LearnOptions tunes structure learning.
type LearnOptions struct {
	// MaxParents caps the in-degree of every node (default 3).
	MaxParents int
	// Restarts is the number of random restarts beyond the initial
	// empty-graph climb (default 2).
	Restarts int
	// MaxIters bounds the number of hill-climbing moves per restart
	// (default 200).
	MaxIters int
	// Alpha is the Laplace smoothing used when fitting the final CPTs
	// (default 1).
	Alpha float64
	// Rng seeds restart perturbations; defaults to a fixed seed for
	// reproducibility.
	Rng *rand.Rand
}

func (o LearnOptions) withDefaults() LearnOptions {
	if o.MaxParents == 0 {
		o.MaxParents = 3
	}
	if o.Restarts == 0 {
		o.Restarts = 2
	}
	if o.MaxIters == 0 {
		o.MaxIters = 200
	}
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	return o
}

// LearnStructure searches for a high-BIC DAG over the given variables by
// greedy hill climbing with add/delete/reverse edge moves and random
// restarts, then fits CPT parameters. It is the substitute for the paper's
// Banjo step: Banjo performs the same family of greedy/annealed searches
// over DAG space with a decomposable score.
//
// names and levels describe the variables; data holds complete rows.
func LearnStructure(names []string, levels []int, data [][]int, opt LearnOptions) (*Network, error) {
	if len(names) != len(levels) {
		return nil, fmt.Errorf("bayesnet: %d names for %d levels", len(names), len(levels))
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("bayesnet: no training data")
	}
	opt = opt.withDefaults()
	n := len(names)

	sc := &scorer{data: data, levels: levels, cache: map[string]float64{}}

	bestParents := climb(sc, emptyParents(n), opt)
	bestScore := totalScore(sc, bestParents)

	for r := 0; r < opt.Restarts; r++ {
		start := randomDAG(opt.Rng, n, opt.MaxParents)
		cand := climb(sc, start, opt)
		if s := totalScore(sc, cand); s > bestScore {
			bestScore, bestParents = s, cand
		}
	}

	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Name: names[i], Levels: levels[i], Parents: bestParents[i]}
	}
	return Fit(nodes, data, opt.Alpha)
}

func emptyParents(n int) [][]int { return make([][]int, n) }

func randomDAG(rng *rand.Rand, n, maxParents int) [][]int {
	// Random permutation defines a causal order; sprinkle edges forward.
	perm := rng.Perm(n)
	parents := make([][]int, n)
	for i := 1; i < n; i++ {
		child := perm[i]
		for j := 0; j < i; j++ {
			if len(parents[child]) >= maxParents {
				break
			}
			if rng.Float64() < 0.3 {
				parents[child] = append(parents[child], perm[j])
			}
		}
		sort.Ints(parents[child])
	}
	return parents
}

// scorer computes and caches per-family BIC scores.
type scorer struct {
	data   [][]int
	levels []int
	cache  map[string]float64
}

func familyKey(node int, parents []int) string {
	key := fmt.Sprintf("%d|", node)
	for _, p := range parents {
		key += fmt.Sprintf("%d,", p)
	}
	return key
}

// family returns the BIC score of node given the (sorted) parent set:
// log-likelihood of the column minus the BIC complexity penalty.
func (s *scorer) family(node int, parents []int) float64 {
	key := familyKey(node, parents)
	if v, ok := s.cache[key]; ok {
		return v
	}
	cfgs := 1
	for _, p := range parents {
		cfgs *= s.levels[p]
	}
	lv := s.levels[node]
	counts := make([]float64, cfgs*lv)
	cfgTotals := make([]float64, cfgs)
	for _, row := range s.data {
		cfg := 0
		for _, p := range parents {
			cfg = cfg*s.levels[p] + row[p]
		}
		counts[cfg*lv+row[node]]++
		cfgTotals[cfg]++
	}
	ll := 0.0
	for c := 0; c < cfgs; c++ {
		if cfgTotals[c] == 0 {
			continue
		}
		for v := 0; v < lv; v++ {
			if k := counts[c*lv+v]; k > 0 {
				ll += k * math.Log(k/cfgTotals[c])
			}
		}
	}
	penalty := 0.5 * math.Log(float64(len(s.data))) * float64(cfgs*(lv-1))
	score := ll - penalty
	s.cache[key] = score
	return score
}

func totalScore(s *scorer, parents [][]int) float64 {
	t := 0.0
	for i := range parents {
		t += s.family(i, parents[i])
	}
	return t
}

// climb performs greedy hill climbing from the given parent sets until no
// move improves the score or the iteration cap is reached.
func climb(s *scorer, start [][]int, opt LearnOptions) [][]int {
	n := len(start)
	parents := make([][]int, n)
	for i := range start {
		parents[i] = append([]int(nil), start[i]...)
		sort.Ints(parents[i])
	}

	for iter := 0; iter < opt.MaxIters; iter++ {
		type move struct {
			kind     int // 0 add, 1 delete, 2 reverse
			from, to int
			delta    float64
		}
		var best *move

		consider := func(m move) {
			if best == nil || m.delta > best.delta {
				mm := m
				best = &mm
			}
		}

		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				hasEdge := containsInt(parents[v], u)
				switch {
				case !hasEdge:
					if len(parents[v]) >= opt.MaxParents || createsCycle(parents, u, v) {
						continue
					}
					delta := s.family(v, withParent(parents[v], u)) - s.family(v, parents[v])
					consider(move{kind: 0, from: u, to: v, delta: delta})
				default:
					// Delete u→v.
					delta := s.family(v, withoutParent(parents[v], u)) - s.family(v, parents[v])
					consider(move{kind: 1, from: u, to: v, delta: delta})
					// Reverse to v→u.
					if len(parents[u]) < opt.MaxParents {
						trial := copyParents(parents)
						trial[v] = withoutParent(trial[v], u)
						if !createsCycle(trial, v, u) {
							delta := s.family(v, withoutParent(parents[v], u)) - s.family(v, parents[v]) +
								s.family(u, withParent(parents[u], v)) - s.family(u, parents[u])
							consider(move{kind: 2, from: u, to: v, delta: delta})
						}
					}
				}
			}
		}

		if best == nil || best.delta <= 1e-9 {
			break
		}
		switch best.kind {
		case 0:
			parents[best.to] = withParent(parents[best.to], best.from)
		case 1:
			parents[best.to] = withoutParent(parents[best.to], best.from)
		case 2:
			parents[best.to] = withoutParent(parents[best.to], best.from)
			parents[best.from] = withParent(parents[best.from], best.to)
		}
	}
	return parents
}

func withParent(parents []int, p int) []int {
	out := append(append([]int(nil), parents...), p)
	sort.Ints(out)
	return out
}

func withoutParent(parents []int, p int) []int {
	out := make([]int, 0, len(parents)-1)
	for _, x := range parents {
		if x != p {
			out = append(out, x)
		}
	}
	return out
}

func copyParents(parents [][]int) [][]int {
	out := make([][]int, len(parents))
	for i := range parents {
		out[i] = append([]int(nil), parents[i]...)
	}
	return out
}

// createsCycle reports whether adding edge u→v to the DAG would create a
// cycle, i.e. whether u is reachable from v.
func createsCycle(parents [][]int, u, v int) bool {
	n := len(parents)
	children := make([][]int, n)
	for c, ps := range parents {
		for _, p := range ps {
			children[p] = append(children[p], c)
		}
	}
	seen := make([]bool, n)
	stack := []int{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == u {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, children[x]...)
	}
	return false
}
