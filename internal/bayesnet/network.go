// Package bayesnet implements discrete Bayesian networks: representation,
// exact inference by variable elimination, forward sampling, maximum-
// likelihood parameter estimation, and greedy BIC structure learning.
//
// It is the from-scratch substitute for the two frameworks the paper's
// preprocessing step relies on (§3): Banjo (structure learning) and
// Infer.Net (parameter estimation). BayesCrowd uses it to capture the
// correlation between data attributes and to derive, for every missing
// cell, a posterior distribution conditioned on the object's observed
// cells.
//
// The package is deliberately independent of the dataset package: it
// operates on integer-coded rows ([][]int) so that both dataset generators
// (which sample from a ground-truth network) and the query framework
// (which learns a network from data) can use it without import cycles.
package bayesnet

import (
	"fmt"
	"math"
	"math/rand"
)

// Node is one variable of the network together with its conditional
// probability table.
type Node struct {
	// Name labels the node for reporting.
	Name string
	// Levels is the domain size; values are codes 0..Levels-1.
	Levels int
	// Parents lists the indices of this node's parents in the network.
	Parents []int
	// CPT holds P(node = v | parent configuration) flattened as
	// CPT[cfg*Levels + v], where cfg is the mixed-radix index of the
	// parent values (first parent most significant). For a root node the
	// CPT is simply the marginal distribution of length Levels.
	CPT []float64
}

// Network is a discrete Bayesian network over n nodes.
type Network struct {
	Nodes []Node
	topo  []int // cached topological order
	// factors caches each node's CPT as an inference factor; repeated
	// Posterior calls (one per missing cell during preprocessing) would
	// otherwise rebuild them every time.
	factors []*factor
}

// New validates the node set (acyclicity, CPT shapes, normalised rows) and
// returns a ready-to-use network.
func New(nodes []Node) (*Network, error) {
	n := &Network{Nodes: nodes}
	topo, err := topoSort(nodes)
	if err != nil {
		return nil, err
	}
	n.topo = topo
	for i := range nodes {
		if err := n.validateCPT(i); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// MustNew is New that panics on error, for hand-built ground-truth
// networks in generators and tests.
func MustNew(nodes []Node) *Network {
	n, err := New(nodes)
	if err != nil {
		panic(err)
	}
	return n
}

func (n *Network) validateCPT(i int) error {
	node := &n.Nodes[i]
	if node.Levels < 1 {
		return fmt.Errorf("bayesnet: node %q has %d levels", node.Name, node.Levels)
	}
	cfgs := 1
	for _, p := range node.Parents {
		if p < 0 || p >= len(n.Nodes) {
			return fmt.Errorf("bayesnet: node %q has parent index %d outside [0,%d)", node.Name, p, len(n.Nodes))
		}
		cfgs *= n.Nodes[p].Levels
	}
	if want := cfgs * node.Levels; len(node.CPT) != want {
		return fmt.Errorf("bayesnet: node %q CPT has %d entries, want %d", node.Name, len(node.CPT), want)
	}
	for c := 0; c < cfgs; c++ {
		sum := 0.0
		for v := 0; v < node.Levels; v++ {
			p := node.CPT[c*node.Levels+v]
			if p < 0 || math.IsNaN(p) {
				return fmt.Errorf("bayesnet: node %q CPT config %d has invalid probability %v", node.Name, c, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("bayesnet: node %q CPT config %d sums to %v", node.Name, c, sum)
		}
	}
	return nil
}

// NumNodes returns the number of variables.
func (n *Network) NumNodes() int { return len(n.Nodes) }

// TopoOrder returns a topological ordering of the node indices (parents
// before children). The returned slice must not be modified.
func (n *Network) TopoOrder() []int { return n.topo }

func topoSort(nodes []Node) ([]int, error) {
	indeg := make([]int, len(nodes))
	children := make([][]int, len(nodes))
	for i, nd := range nodes {
		for _, p := range nd.Parents {
			if p < 0 || p >= len(nodes) {
				return nil, fmt.Errorf("bayesnet: node %q has parent index %d outside [0,%d)", nd.Name, p, len(nodes))
			}
			if p == i {
				return nil, fmt.Errorf("bayesnet: node %q is its own parent", nd.Name)
			}
			children[p] = append(children[p], i)
			indeg[i]++
		}
	}
	var queue, order []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, c := range children[u] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(nodes) {
		return nil, fmt.Errorf("bayesnet: graph contains a cycle")
	}
	return order, nil
}

// parentConfig returns the mixed-radix index of node i's parent values in
// the assignment (first parent most significant).
func (n *Network) parentConfig(i int, assignment []int) int {
	cfg := 0
	for _, p := range n.Nodes[i].Parents {
		cfg = cfg*n.Nodes[p].Levels + assignment[p]
	}
	return cfg
}

// JointP returns the joint probability of a full assignment (one value per
// node).
func (n *Network) JointP(assignment []int) float64 {
	if len(assignment) != len(n.Nodes) {
		panic(fmt.Sprintf("bayesnet: JointP assignment has %d values, want %d", len(assignment), len(n.Nodes)))
	}
	p := 1.0
	for i := range n.Nodes {
		node := &n.Nodes[i]
		cfg := n.parentConfig(i, assignment)
		p *= node.CPT[cfg*node.Levels+assignment[i]]
	}
	return p
}

// Sample draws one full assignment by forward sampling in topological
// order.
func (n *Network) Sample(rng *rand.Rand) []int {
	out := make([]int, len(n.Nodes))
	n.SampleInto(rng, out)
	return out
}

// SampleInto is Sample writing into a caller-provided slice to avoid
// per-row allocations in bulk generation.
func (n *Network) SampleInto(rng *rand.Rand, out []int) {
	if len(out) != len(n.Nodes) {
		panic(fmt.Sprintf("bayesnet: SampleInto slice has %d values, want %d", len(out), len(n.Nodes)))
	}
	for _, i := range n.topo {
		node := &n.Nodes[i]
		cfg := n.parentConfig(i, out)
		row := node.CPT[cfg*node.Levels : (cfg+1)*node.Levels]
		out[i] = sampleDist(rng, row)
	}
}

func sampleDist(rng *rand.Rand, dist []float64) int {
	u := rng.Float64()
	acc := 0.0
	for v, p := range dist {
		acc += p
		if u < acc {
			return v
		}
	}
	return len(dist) - 1 // guard against rounding drift
}

// Levels returns the domain sizes of all nodes.
func (n *Network) Levels() []int {
	out := make([]int, len(n.Nodes))
	for i, nd := range n.Nodes {
		out[i] = nd.Levels
	}
	return out
}
