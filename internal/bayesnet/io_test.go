package bayesnet

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := chain(t)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != orig.NumNodes() {
		t.Fatalf("node count %d, want %d", back.NumNodes(), orig.NumNodes())
	}
	for i := range orig.Nodes {
		if back.Nodes[i].Name != orig.Nodes[i].Name || back.Nodes[i].Levels != orig.Nodes[i].Levels {
			t.Fatalf("node %d metadata mismatch", i)
		}
		if !reflect.DeepEqual(back.Nodes[i].Parents, orig.Nodes[i].Parents) {
			t.Fatalf("node %d parents %v, want %v", i, back.Nodes[i].Parents, orig.Nodes[i].Parents)
		}
		for k := range orig.Nodes[i].CPT {
			if math.Abs(back.Nodes[i].CPT[k]-orig.Nodes[i].CPT[k]) > 1e-12 {
				t.Fatalf("node %d CPT mismatch at %d", i, k)
			}
		}
	}
	// Inference must agree after the round trip.
	want := orig.Posterior(1, map[int]int{2: 1})
	got := back.Posterior(1, map[int]int{2: 1})
	if !distsClose(got, want, 1e-12) {
		t.Fatalf("posterior after round trip = %v, want %v", got, want)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		"not json",
		`{"nodes":[{"name":"A","levels":2,"cpt":[0.5]}]}`,                           // wrong CPT size
		`{"nodes":[{"name":"A","levels":2,"parents":[0],"cpt":[0.5,0.5,0.5,0.5]}]}`, // self-parent
		`{"nodes":[{"name":"A","levels":2,"parents":[5],"cpt":[0.5,0.5]}]}`,         // bad parent index
		`{"nodes":[{"name":"A","levels":2,"cpt":[0.7,0.7]}]}`,                       // unnormalised
	}
	for i, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted invalid network", i)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	n := chain(t)
	var buf bytes.Buffer
	if err := n.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph bayesnet", `label="A (2)"`, "n0 -> n1;", "n1 -> n2;"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestEdges(t *testing.T) {
	n := chain(t)
	want := [][2]int{{0, 1}, {1, 2}}
	if got := n.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestAnnealedFindsDependence(t *testing.T) {
	truth := MustNew([]Node{
		{Name: "X0", Levels: 2, CPT: []float64{0.5, 0.5}},
		{Name: "X1", Levels: 2, Parents: []int{0}, CPT: []float64{0.95, 0.05, 0.05, 0.95}},
		{Name: "X2", Levels: 2, CPT: []float64{0.5, 0.5}},
	})
	rng := rand.New(rand.NewSource(21))
	data := make([][]int, 4000)
	for i := range data {
		data[i] = truth.Sample(rng)
	}
	learned, err := LearnStructureAnnealed([]string{"X0", "X1", "X2"}, []int{2, 2, 2}, data, AnnealOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	connected := containsInt(learned.Nodes[1].Parents, 0) || containsInt(learned.Nodes[0].Parents, 1)
	if !connected {
		t.Error("annealed search missed the X0–X1 dependence")
	}
	if len(learned.Nodes[2].Parents) != 0 {
		t.Errorf("independent X2 learned parents %v", learned.Nodes[2].Parents)
	}
}

func TestAnnealedMatchesHillClimbingScore(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	truth := randomNetwork(rng, 5, 3)
	data := make([][]int, 3000)
	for i := range data {
		data[i] = truth.Sample(rng)
	}
	levels := truth.Levels()
	names := make([]string, len(levels))
	for i := range names {
		names[i] = string(rune('A' + i))
	}

	hc, err := LearnStructure(names, levels, data, LearnOptions{Rng: rand.New(rand.NewSource(23))})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := LearnStructureAnnealed(names, levels, data, AnnealOptions{Rng: rand.New(rand.NewSource(24)), Steps: 8000})
	if err != nil {
		t.Fatal(err)
	}

	sc := &scorer{data: data, levels: levels, cache: map[string]float64{}}
	scoreOf := func(n *Network) float64 {
		ps := make([][]int, len(n.Nodes))
		for i, nd := range n.Nodes {
			ps[i] = nd.Parents
		}
		return totalScore(sc, ps)
	}
	hcScore, saScore := scoreOf(hc), scoreOf(sa)
	// SA should land within a small margin of hill climbing on these
	// easy surfaces (either may win slightly).
	if saScore < hcScore-50 {
		t.Errorf("annealed score %v far below hill-climbing %v", saScore, hcScore)
	}
}

func TestAnnealedValidation(t *testing.T) {
	if _, err := LearnStructureAnnealed([]string{"A"}, []int{2, 2}, [][]int{{0}}, AnnealOptions{}); err == nil {
		t.Error("accepted mismatched names/levels")
	}
	if _, err := LearnStructureAnnealed([]string{"A"}, []int{2}, nil, AnnealOptions{}); err == nil {
		t.Error("accepted empty data")
	}
}
