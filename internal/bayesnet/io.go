package bayesnet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// netJSON is the serialised form of a Network.
type netJSON struct {
	Nodes []nodeJSON `json:"nodes"`
}

type nodeJSON struct {
	Name    string    `json:"name"`
	Levels  int       `json:"levels"`
	Parents []int     `json:"parents,omitempty"`
	CPT     []float64 `json:"cpt"`
}

// WriteJSON serialises the network so a learned structure can be stored
// and reloaded across runs (the preprocessing step is the expensive part
// of a deployment).
func (n *Network) WriteJSON(w io.Writer) error {
	out := netJSON{Nodes: make([]nodeJSON, len(n.Nodes))}
	for i, nd := range n.Nodes {
		out.Nodes[i] = nodeJSON{
			Name:    nd.Name,
			Levels:  nd.Levels,
			Parents: nd.Parents,
			CPT:     nd.CPT,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a network written by WriteJSON, re-validating structure
// and CPTs.
func ReadJSON(r io.Reader) (*Network, error) {
	var in netJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("bayesnet: decoding network JSON: %w", err)
	}
	nodes := make([]Node, len(in.Nodes))
	for i, nd := range in.Nodes {
		nodes[i] = Node{
			Name:    nd.Name,
			Levels:  nd.Levels,
			Parents: nd.Parents,
			CPT:     nd.CPT,
		}
	}
	return New(nodes)
}

// WriteDOT renders the network structure in Graphviz DOT format for
// inspection ("which correlations did structure learning find?").
func (n *Network) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph bayesnet {\n  rankdir=LR;\n  node [shape=box];\n")
	for i, nd := range n.Nodes {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, fmt.Sprintf("%s (%d)", nd.Name, nd.Levels))
	}
	for i, nd := range n.Nodes {
		parents := append([]int(nil), nd.Parents...)
		sort.Ints(parents)
		for _, p := range parents {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", p, i)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Edges returns the directed edge list (parent, child) in deterministic
// order, for tests and reporting.
func (n *Network) Edges() [][2]int {
	var out [][2]int
	for i, nd := range n.Nodes {
		parents := append([]int(nil), nd.Parents...)
		sort.Ints(parents)
		for _, p := range parents {
			out = append(out, [2]int{p, i})
		}
	}
	return out
}
