package service

import "sync"

// scheduler is the fair compute-token gate: at most capacity queries
// execute machine work (c-table build, Pr(φ) fan-outs, selection) at
// any moment, and tokens are granted strictly in request order. A
// query holds a token only while computing — the hub platform releases
// it before parking for crowd answers and re-queues at the tail on
// wake-up — so an expensive query can occupy at most one of the
// capacity slots for one compute step at a time and every waiter is
// granted before any later requester: round-robin at compute-step
// granularity, no starvation.
type scheduler struct {
	mu      sync.Mutex
	cap     int
	running int             // guarded by mu
	waiters []chan struct{} // guarded by mu; FIFO
}

// newScheduler returns a gate with the given capacity (minimum 1).
func newScheduler(capacity int) *scheduler {
	if capacity < 1 {
		capacity = 1
	}
	return &scheduler{cap: capacity}
}

// acquire blocks until a compute token is granted. Grants are FIFO:
// a request enqueues behind every earlier waiter even when a token is
// technically free at a later moment.
func (s *scheduler) acquire() {
	s.mu.Lock()
	if s.running < s.cap && len(s.waiters) == 0 {
		s.running++
		s.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	<-ch
}

// release returns a token; if anyone is queued, the token transfers to
// the head waiter without touching the running count.
func (s *scheduler) release() {
	s.mu.Lock()
	if len(s.waiters) > 0 {
		ch := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.mu.Unlock()
		close(ch)
		return
	}
	s.running--
	s.mu.Unlock()
}
