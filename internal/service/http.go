package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/obs"
)

// --- Wire types -------------------------------------------------------
//
// Every request and response body on the /v1 API is one of the structs
// below; docs/SERVICE.md documents them field by field and the
// docscheck route test cross-checks the route table against that file.

// AttrSpec declares one dataset attribute on the wire.
type AttrSpec struct {
	// Name labels the attribute; it must be non-empty.
	Name string `json:"name"`
	// Levels is the attribute's domain size; values are 0..Levels-1 and
	// Levels must be >= 2.
	Levels int `json:"levels"`
}

// DatasetRequest is the body of POST /v1/datasets. A null cell marks a
// missing value.
type DatasetRequest struct {
	// Name is the registry key queries refer to; it must be unique.
	Name string `json:"name"`
	// Attrs declares the schema.
	Attrs []AttrSpec `json:"attrs"`
	// Rows holds the objects, one slice of cells per object, null for a
	// missing cell. Each row must have exactly len(Attrs) cells.
	Rows [][]*int `json:"rows"`
	// MarginalsOnly skips Bayesian-network learning and models every
	// missing value by its attribute's empirical marginal.
	MarginalsOnly bool `json:"marginalsOnly,omitempty"`
}

// DatasetInfo describes a registered dataset.
type DatasetInfo struct {
	// Name is the registry key.
	Name string `json:"name"`
	// Objects and Attrs are the dataset's dimensions; Missing counts
	// missing cells and MissingRate is Missing over total cells.
	Objects     int     `json:"objects"`
	Attrs       int     `json:"attrs"`
	Missing     int     `json:"missing"`
	MissingRate float64 `json:"missingRate"`
}

// QueryRequest is the body of POST /v1/queries.
type QueryRequest struct {
	// Dataset names a registered dataset.
	Dataset string `json:"dataset"`
	// Alpha is the c-table pruning threshold; <= 0 disables pruning.
	Alpha float64 `json:"alpha,omitempty"`
	// Budget is B, the total affordable tasks (required, positive);
	// Latency is L, the maximum crowd rounds (required, positive).
	Budget  int `json:"budget"`
	Latency int `json:"latency"`
	// Strategy picks the task-selection strategy: "FBS", "UBS" or
	// "HHS"; empty selects UBS. M is the HHS early-stop parameter,
	// required positive for HHS and ignored otherwise.
	Strategy string `json:"strategy,omitempty"`
	M        int    `json:"m,omitempty"`
	// Workers overrides the daemon's per-query worker count; <= 0
	// inherits the daemon default.
	Workers int `json:"workers,omitempty"`
	// MaxRetries, ChargeOnPost and ReaskConflicts tune the fault-path
	// exactly as the library options of the same names.
	MaxRetries     int  `json:"maxRetries,omitempty"`
	ChargeOnPost   bool `json:"chargeOnPost,omitempty"`
	ReaskConflicts int  `json:"reaskConflicts,omitempty"`
	// NoCache disables the component probability cache for this query.
	NoCache bool `json:"noCache,omitempty"`
	// Seed seeds the query's tie-breaking RNG; 0 selects the library
	// default (seed 1). Two queries with the same dataset, options, seed
	// and answers return identical results.
	Seed int64 `json:"seed,omitempty"`
	// Trace buffers the query's JSONL trace for GET
	// /v1/queries/{id}/trace.
	Trace bool `json:"trace,omitempty"`
}

// QueryResult is the terminal payload of a finished query — the wire
// rendering of the library's core.Result.
type QueryResult struct {
	// Answers lists the result set's object indices (0-based), sorted.
	Answers []int `json:"answers"`
	// Probs maps still-undecided object indices (rendered as decimal
	// strings, JSON objects cannot key on numbers) to their final
	// satisfaction probability.
	Probs map[string]float64 `json:"probs,omitempty"`
	// TasksPosted, Rounds and BudgetSpent are the run's cost metrics.
	TasksPosted int `json:"tasksPosted"`
	Rounds      int `json:"rounds"`
	BudgetSpent int `json:"budgetSpent"`
	// Degraded reports a best-effort result (drain, outage or expiry
	// starved the run); DegradedReason says what was lost.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
}

// QueryStatus is the body of GET /v1/queries/{id} (and the immediate
// response of POST /v1/queries).
type QueryStatus struct {
	// ID is the query's handle, assigned at admission.
	ID string `json:"id"`
	// Dataset names the dataset the query runs over.
	Dataset string `json:"dataset"`
	// State is the lifecycle position: "pending", "running", "waiting",
	// "done" or "failed".
	State State `json:"state"`
	// Rounds is the crowd rounds completed so far; Undecided is the
	// conditions still open after the last round.
	Rounds    int `json:"rounds"`
	Undecided int `json:"undecided"`
	// Ledger is the query's crowd-cost account; Ledger.Conserved holds
	// after every hub operation.
	Ledger Ledger `json:"ledger"`
	// Result is set once State is "done"; Error once State is "failed".
	Result *QueryResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
	// TraceTruncated reports that the trace buffer hit its cap.
	TraceTruncated bool `json:"traceTruncated,omitempty"`
	// Created and Finished stamp admission and completion.
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
}

// ExprInfo is the machine-readable form of a task's question — what a
// marketplace bridge renders for workers and what the answer asserts a
// relation between. Kind is "x<c", "x>c" or "x>y"; the left operand is
// always object Obj's attribute Attr (0-based indices into the
// dataset). For the constant kinds the right operand is C; for "x>y"
// it is object Obj2's attribute Attr2 (and C is meaningless).
type ExprInfo struct {
	Kind  string `json:"kind"`
	Obj   int    `json:"obj"`
	Attr  int    `json:"attr"`
	Obj2  int    `json:"obj2"`
	Attr2 int    `json:"attr2"`
	C     int    `json:"c"`
}

// TaskInfo describes one open crowd task (GET /v1/tasks).
type TaskInfo struct {
	// ID is the callback handle for POST /v1/answers/{taskid}.
	ID string `json:"id"`
	// Dataset names the dataset the question is about.
	Dataset string `json:"dataset"`
	// Question is the worker-facing text; Expr is its machine-readable
	// form.
	Question string   `json:"question"`
	Expr     ExprInfo `json:"expr"`
	// Queries lists the ids of the queries sharing this task, in join
	// order.
	Queries []string `json:"queries"`
	// PostedAt stamps when the task opened; the task deadline counts
	// from here.
	PostedAt time.Time `json:"postedAt"`
}

// AnswerRequest is the body of POST /v1/answers/{taskid}.
type AnswerRequest struct {
	// Rel is the asserted relation: "<", "=" or ">".
	Rel string `json:"rel"`
}

// AnswerReceipt is the response of POST /v1/answers/{taskid}.
type AnswerReceipt struct {
	// TaskID echoes the resolved task; Queries lists the queries the
	// answer was delivered to.
	TaskID  string   `json:"taskId"`
	Queries []string `json:"queries"`
}

// HealthInfo is the body of GET /v1/healthz.
type HealthInfo struct {
	// Status is "ok" or "draining".
	Status string `json:"status"`
	// Datasets and Queries count registrations and admissions;
	// TasksOpen, TasksPosted, TasksAnswered and TasksExpired are the
	// hub's task tallies.
	Datasets      int `json:"datasets"`
	Queries       int `json:"queries"`
	TasksOpen     int `json:"tasksOpen"`
	TasksPosted   int `json:"tasksPosted"`
	TasksAnswered int `json:"tasksAnswered"`
	TasksExpired  int `json:"tasksExpired"`
}

// ErrorBody is the uniform error envelope: every non-2xx response is
// {"error":{"code":...,"message":...}}.
type ErrorBody struct {
	// Error carries the machine-readable code (the HTTP status text)
	// and the human-readable message.
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// --- Route table ------------------------------------------------------

// Route is one entry of the service's HTTP surface.
type Route struct {
	// Method and Pattern are the Go 1.22 mux pattern halves, e.g.
	// "POST" and "/v1/answers/{taskid}".
	Method  string
	Pattern string
	// Summary is the one-line description docs/SERVICE.md expands on.
	Summary string
}

// Routes returns the service's full HTTP surface — the single source of
// truth the mux is built from and the docscheck route test compares
// docs/SERVICE.md against.
func Routes() []Route {
	return []Route{
		{"POST", "/v1/datasets", "register a dataset (runs preprocessing once)"},
		{"GET", "/v1/datasets", "list registered datasets"},
		{"POST", "/v1/queries", "submit a skyline query"},
		{"GET", "/v1/queries", "list queries in admission order"},
		{"GET", "/v1/queries/{id}", "poll one query's status, ledger and result"},
		{"GET", "/v1/queries/{id}/trace", "download a finished query's JSONL trace"},
		{"GET", "/v1/tasks", "list open crowd tasks awaiting answers"},
		{"POST", "/v1/answers/{taskid}", "deliver a crowd answer callback"},
		{"GET", "/v1/healthz", "liveness, drain state and hub tallies"},
		{"GET", "/metrics", "JSON dump of the metrics registry"},
		{"GET", "/debug/pprof/", "standard net/http/pprof profiles"},
	}
}

// Handler builds the service's HTTP handler from the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handlers := map[string]http.HandlerFunc{
		"POST /v1/datasets":          s.handleRegisterDataset,
		"GET /v1/datasets":           s.handleListDatasets,
		"POST /v1/queries":           s.handleSubmitQuery,
		"GET /v1/queries":            s.handleListQueries,
		"GET /v1/queries/{id}":       s.handleGetQuery,
		"GET /v1/queries/{id}/trace": s.handleGetTrace,
		"GET /v1/tasks":              s.handleListTasks,
		"POST /v1/answers/{taskid}":  s.handleAnswer,
		"GET /v1/healthz":            s.handleHealth,
		"GET /metrics":               obs.MetricsHandler(s.reg),
		"GET /debug/pprof/":          pprof.Index,
	}
	for _, r := range Routes() {
		h, ok := handlers[r.Method+" "+r.Pattern]
		if !ok {
			panic(fmt.Sprintf("service: route %s %s has no handler", r.Method, r.Pattern))
		}
		mux.HandleFunc(r.Method+" "+r.Pattern, h)
	}
	return mux
}

// --- Handlers ---------------------------------------------------------

// writeJSON encodes v with status code; encode errors after the header
// is committed are unrecoverable and dropped deliberately.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already on the wire; nothing to salvage.
		_ = err
	}
}

// writeError emits the uniform error envelope.
func writeError(w http.ResponseWriter, code int, msg string) {
	var body ErrorBody
	body.Error.Code = http.StatusText(code)
	body.Error.Message = msg
	writeJSON(w, code, body)
}

// errorCode maps a service error to its HTTP status.
func errorCode(err error) int {
	if err == ErrDraining {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// handleRegisterDataset serves POST /v1/datasets.
func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	var req DatasetRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode body: %v", err))
		return
	}
	info, err := s.RegisterDataset(req)
	if err != nil {
		code := errorCode(err)
		if code == http.StatusBadRequest && s.hasDataset(req.Name) {
			code = http.StatusConflict
		}
		writeError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// hasDataset reports whether name is registered.
func (s *Server) hasDataset(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.datasets[name]
	return ok
}

// handleListDatasets serves GET /v1/datasets, ascending by name.
func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]DatasetInfo, 0, len(names))
	for _, name := range names {
		infos = append(infos, s.datasets[name].info())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, infos)
}

// handleSubmitQuery serves POST /v1/queries.
func (s *Server) handleSubmitQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode body: %v", err))
		return
	}
	st, err := s.SubmitQuery(req)
	if err != nil {
		writeError(w, errorCode(err), err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleListQueries serves GET /v1/queries.
func (s *Server) handleListQueries(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	qs := make([]*query, 0, len(s.order))
	for _, id := range s.order {
		qs = append(qs, s.queries[id])
	}
	s.mu.Unlock()
	out := make([]QueryStatus, len(qs))
	for i, q := range qs {
		out[i] = s.status(q)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGetQuery serves GET /v1/queries/{id}.
func (s *Server) handleGetQuery(w http.ResponseWriter, r *http.Request) {
	q := s.lookupQuery(r.PathValue("id"))
	if q == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no query %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.status(q))
}

// handleGetTrace serves GET /v1/queries/{id}/trace: the buffered JSONL
// trace of a finished traced query.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	q := s.lookupQuery(r.PathValue("id"))
	if q == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no query %q", r.PathValue("id")))
		return
	}
	if q.trace == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("query %q was not traced (submit with \"trace\": true)", q.id))
		return
	}
	state, _, _ := q.snapshot()
	if state != StateDone && state != StateFailed {
		writeError(w, http.StatusConflict, fmt.Sprintf("query %q is %s; the trace is available once it finishes", q.id, state))
		return
	}
	// The terminal state was observed under q.mu, which orders this read
	// after the runner's final trace write and flush.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(q.trace.Bytes()); err != nil {
		// Client went away mid-body; nothing to salvage.
		_ = err
	}
}

// lookupQuery fetches a query by id.
func (s *Server) lookupQuery(id string) *query {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries[id]
}

// handleListTasks serves GET /v1/tasks.
func (s *Server) handleListTasks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.hub.openTasks())
}

// handleAnswer serves POST /v1/answers/{taskid}: the crowd answer
// callback that drives the event loop.
func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var req AnswerRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode body: %v", err))
		return
	}
	rel, err := parseRel(req.Rel)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	taskID := r.PathValue("taskid")
	ids, err := s.hub.resolve(taskID, rel)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, AnswerReceipt{TaskID: taskID, Queries: ids})
}

// exprInfo renders an expression on the wire.
func exprInfo(e ctable.Expr) ExprInfo {
	info := ExprInfo{Obj: e.X.Obj, Attr: e.X.Attr}
	switch e.Kind {
	case ctable.VarLTConst:
		info.Kind = "x<c"
		info.C = e.C
	case ctable.VarGTConst:
		info.Kind = "x>c"
		info.C = e.C
	case ctable.VarGTVar:
		info.Kind = "x>y"
		info.Obj2 = e.Y.Obj
		info.Attr2 = e.Y.Attr
	}
	return info
}

// parseRel maps the wire relation onto ctable's constants.
func parseRel(s string) (ctable.Rel, error) {
	switch s {
	case "<":
		return ctable.LT, nil
	case "=":
		return ctable.EQ, nil
	case ">":
		return ctable.GT, nil
	default:
		return 0, fmt.Errorf("unknown rel %q (want \"<\", \"=\" or \">\")", s)
	}
}

// handleHealth serves GET /v1/healthz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	posted, answered, expired, open := s.hub.stats()
	s.mu.Lock()
	info := HealthInfo{
		Status:        "ok",
		Datasets:      len(s.datasets),
		Queries:       len(s.queries),
		TasksOpen:     open,
		TasksPosted:   posted,
		TasksAnswered: answered,
		TasksExpired:  expired,
	}
	if s.draining {
		info.Status = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// status renders a query's full wire status.
func (s *Server) status(q *query) QueryStatus {
	led := s.hub.ledgerOf(q)
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QueryStatus{
		ID:             q.id,
		Dataset:        q.ds.name,
		State:          q.state,
		Rounds:         q.roundsSeen,
		Undecided:      q.lastUndecided,
		Ledger:         led,
		TraceTruncated: q.traceTrunc,
		Created:        q.created,
	}
	if !q.finished.IsZero() {
		f := q.finished
		st.Finished = &f
	}
	if q.err != nil {
		st.Error = q.err.Error()
	}
	if q.result != nil {
		res := &QueryResult{
			Answers:        append([]int{}, q.result.Answers...),
			TasksPosted:    q.result.TasksPosted,
			Rounds:         q.result.Rounds,
			BudgetSpent:    q.result.BudgetSpent,
			Degraded:       q.result.Degraded,
			DegradedReason: q.result.DegradedReason,
		}
		sort.Ints(res.Answers)
		if len(q.result.Probs) > 0 {
			res.Probs = make(map[string]float64, len(q.result.Probs))
			for obj, p := range q.result.Probs {
				res.Probs[fmt.Sprintf("%d", obj)] = p
			}
		}
		st.Result = res
	}
	return st
}
