package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"bayescrowd/internal/core"
	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
)

// makeData builds a seeded synthetic truth dataset and its incomplete
// counterpart (30% of cells hidden).
func makeData(seed int64, objects, attrs int) (incomplete, truth *dataset.Dataset) {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]dataset.Attribute, attrs)
	for j := range specs {
		specs[j] = dataset.Attribute{Name: fmt.Sprintf("a%d", j+1), Levels: 5}
	}
	truth = dataset.New(specs)
	for i := 0; i < objects; i++ {
		cells := make([]dataset.Cell, attrs)
		for j := range cells {
			cells[j] = dataset.Known(rng.Intn(5))
		}
		truth.MustAppend(dataset.Object{ID: fmt.Sprintf("o%d", i+1), Cells: cells})
	}
	incomplete = truth.InjectMissing(rng, 0.3)
	return incomplete, truth
}

// datasetReq renders a dataset as the wire registration request.
func datasetReq(name string, d *dataset.Dataset) DatasetRequest {
	req := DatasetRequest{Name: name, MarginalsOnly: true}
	for _, a := range d.Attrs {
		req.Attrs = append(req.Attrs, AttrSpec{Name: a.Name, Levels: a.Levels})
	}
	for _, o := range d.Objects {
		row := make([]*int, len(o.Cells))
		for j, c := range o.Cells {
			if !c.Missing {
				v := c.Value
				row[j] = &v
			}
		}
		req.Rows = append(req.Rows, row)
	}
	return req
}

// postJSON posts v and decodes the response into out (when non-nil),
// failing the test on transport errors and unexpected status.
func postJSON(t *testing.T, url string, v any, wantStatus int, out any) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatalf("close body: %v", cerr)
	}
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d: %s", url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s response: %v: %s", url, err, data)
		}
	}
}

// getJSON fetches url into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatalf("close body: %v", cerr)
	}
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("decode %s: %v: %s", url, err, data)
	}
}

// waitDone polls a query until it reaches a terminal state.
func waitDone(t *testing.T, base, id string) QueryStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st QueryStatus
		getJSON(t, base+"/v1/queries/"+id, &st)
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("query %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// exprOf converts the wire expression back to the ctable value.
func exprOf(t *testing.T, info ExprInfo) ctable.Expr {
	t.Helper()
	x := ctable.Var{Obj: info.Obj, Attr: info.Attr}
	switch info.Kind {
	case "x<c":
		return ctable.LTConst(x, info.C)
	case "x>c":
		return ctable.GTConst(x, info.C)
	case "x>y":
		return ctable.GTVar(x, ctable.Var{Obj: info.Obj2, Attr: info.Attr2})
	default:
		t.Fatalf("unknown expr kind %q", info.Kind)
		return ctable.Expr{}
	}
}

// refRun executes the library reference for a query request: same
// preprocessing, same options, a fault-free synchronous platform.
func refRun(t *testing.T, incomplete, truth *dataset.Dataset, req QueryRequest, workers int) *core.Result {
	t.Helper()
	base, err := core.Preprocess(incomplete, core.Options{MarginalsOnly: true, Workers: workers})
	if err != nil {
		t.Fatalf("reference preprocess: %v", err)
	}
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{
		Alpha:    req.Alpha,
		Budget:   req.Budget,
		Latency:  req.Latency,
		Strategy: strategy,
		M:        req.M,
		Workers:  workers,
	}
	if req.Seed != 0 {
		opt.Rng = rand.New(rand.NewSource(req.Seed))
	}
	res, err := core.RunWithDists(incomplete, base, crowd.NewSimulated(truth, 1.0, nil), opt)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return res
}

// TestServiceEquivalence is the acceptance gate for the event-loop
// architecture: queries served concurrently through the daemon's HTTP
// surface — answers arriving as callbacks from the loopback driver, in
// whatever order the scheduler interleaves the queries — return results
// bit-identical to synchronous library runs, at every worker count and
// concurrency level tried.
func TestServiceEquivalence(t *testing.T) {
	incomplete, truth := makeData(7, 24, 4)
	reqs := []QueryRequest{
		{Dataset: "d", Budget: 30, Latency: 5, Strategy: "UBS", Seed: 11},
		{Dataset: "d", Budget: 30, Latency: 5, Strategy: "FBS", Seed: 12},
		{Dataset: "d", Budget: 30, Latency: 5, Strategy: "HHS", M: 5, Seed: 13},
	}

	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			loop := NewLoopback(crowd.NewSimulated(truth, 1.0, nil), "")
			srv := New(Config{Workers: workers, MaxConcurrent: 2, Sink: loop})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			loop.SetEndpoint(ts.URL)
			loop.Start()
			defer loop.Stop()

			postJSON(t, ts.URL+"/v1/datasets", datasetReq("d", incomplete), http.StatusCreated, nil)

			ids := make([]string, len(reqs))
			for i, req := range reqs {
				req.Workers = workers
				var st QueryStatus
				postJSON(t, ts.URL+"/v1/queries", req, http.StatusAccepted, &st)
				ids[i] = st.ID
			}
			for i, req := range reqs {
				st := waitDone(t, ts.URL, ids[i])
				if st.State != StateDone {
					t.Fatalf("query %s failed: %s", st.ID, st.Error)
				}
				want := refRun(t, incomplete, truth, req, workers)
				got := st.Result
				wantAnswers := append([]int{}, want.Answers...)
				if !reflect.DeepEqual(got.Answers, wantAnswers) {
					t.Errorf("%s: Answers = %v, want %v", req.Strategy, got.Answers, wantAnswers)
				}
				if got.TasksPosted != want.TasksPosted || got.Rounds != want.Rounds || got.BudgetSpent != want.BudgetSpent {
					t.Errorf("%s: cost (%d tasks, %d rounds, %d spent), want (%d, %d, %d)",
						req.Strategy, got.TasksPosted, got.Rounds, got.BudgetSpent,
						want.TasksPosted, want.Rounds, want.BudgetSpent)
				}
				if got.Degraded {
					t.Errorf("%s: unexpectedly degraded: %s", req.Strategy, got.DegradedReason)
				}
				if !st.Ledger.Conserved() {
					t.Errorf("%s: ledger not conserved: %+v", req.Strategy, st.Ledger)
				}
				if st.Ledger.Answered != want.TasksPosted {
					t.Errorf("%s: ledger answered %d, want %d", req.Strategy, st.Ledger.Answered, want.TasksPosted)
				}
			}
		})
	}
}

// TestDedupSharesTasksAndSplitsCharge drives two identical queries in
// lockstep with manual answers: their rounds select the same tasks, the
// hub opens each task once, and the unit price splits exactly between
// the sharers with both ledgers conserving to the last mu.
func TestDedupSharesTasksAndSplitsCharge(t *testing.T) {
	incomplete, truth := makeData(21, 20, 4)
	srv := New(Config{Workers: 1, MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/datasets", datasetReq("d", incomplete), http.StatusCreated, nil)

	req := QueryRequest{Dataset: "d", Budget: 20, Latency: 4, Strategy: "UBS", Seed: 5, Workers: 1}
	var a, b QueryStatus
	postJSON(t, ts.URL+"/v1/queries", req, http.StatusAccepted, &a)
	postJSON(t, ts.URL+"/v1/queries", req, http.StatusAccepted, &b)

	deadline := time.Now().Add(60 * time.Second)
	for {
		var sa, sb QueryStatus
		getJSON(t, ts.URL+"/v1/queries/"+a.ID, &sa)
		getJSON(t, ts.URL+"/v1/queries/"+b.ID, &sb)
		if sa.State == StateDone && sb.State == StateDone {
			break
		}
		if sa.State == StateFailed || sb.State == StateFailed {
			t.Fatalf("query failed: %q / %q", sa.Error, sb.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("queries stuck: %s/%s", sa.State, sb.State)
		}
		var tasks []TaskInfo
		getJSON(t, ts.URL+"/v1/tasks", &tasks)
		// Answer only when both identical queries have joined every open
		// task — they run in lockstep, so waiting keeps them in step.
		ready := len(tasks) > 0
		for _, task := range tasks {
			if len(task.Queries) < 2 {
				ready = false
			}
		}
		if !ready {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		for _, task := range tasks {
			rel := ctable.TrueRel(truth, exprOf(t, task.Expr))
			var receipt AnswerReceipt
			postJSON(t, ts.URL+"/v1/answers/"+task.ID, AnswerRequest{Rel: rel.String()}, http.StatusOK, &receipt)
			if len(receipt.Queries) != 2 {
				t.Fatalf("task %s delivered to %v, want both queries", task.ID, receipt.Queries)
			}
		}
	}

	sa := waitDone(t, ts.URL, a.ID)
	sb := waitDone(t, ts.URL, b.ID)
	var health HealthInfo
	getJSON(t, ts.URL+"/v1/healthz", &health)

	for _, st := range []QueryStatus{sa, sb} {
		if !st.Ledger.Conserved() {
			t.Errorf("%s: ledger not conserved: %+v", st.ID, st.Ledger)
		}
		if st.Ledger.InFlight != 0 {
			t.Errorf("%s: %d requests still in flight after completion", st.ID, st.Ledger.InFlight)
		}
	}
	// Dedup must have shared every task: the second query's requests all
	// joined the first query's (or vice versa per round), so the crowd
	// saw strictly fewer tasks than the queries requested.
	totalRequested := sa.Ledger.Requested + sb.Ledger.Requested
	if health.TasksPosted >= totalRequested {
		t.Errorf("posted %d unique tasks for %d requests — dedup never shared", health.TasksPosted, totalRequested)
	}
	if sa.Ledger.Shared == 0 && sb.Ledger.Shared == 0 {
		t.Error("no request was marked shared")
	}
	// Money conservation across the whole service: every answered unique
	// task was paid for exactly once, split across its sharers.
	totalCharged := sa.Ledger.ChargedMu + sb.Ledger.ChargedMu
	if want := int64(UnitMu) * int64(health.TasksAnswered); totalCharged != want {
		t.Errorf("total charged %d mu, want %d (= %d answered tasks)", totalCharged, want, health.TasksAnswered)
	}
	// Identical queries must return identical results.
	if !reflect.DeepEqual(sa.Result.Answers, sb.Result.Answers) {
		t.Errorf("identical queries diverged: %v vs %v", sa.Result.Answers, sb.Result.Answers)
	}
}

// TestDrainDegradesAndRefunds parks a query on the crowd, drains the
// server, and checks the drain contract: the query completes degraded,
// every reservation is refunded, and new work is refused with 503.
func TestDrainDegradesAndRefunds(t *testing.T) {
	incomplete, _ := makeData(33, 20, 4)
	srv := New(Config{Workers: 1, MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/datasets", datasetReq("d", incomplete), http.StatusCreated, nil)
	req := QueryRequest{Dataset: "d", Budget: 10, Latency: 2, Seed: 3, Workers: 1}
	var st QueryStatus
	postJSON(t, ts.URL+"/v1/queries", req, http.StatusAccepted, &st)

	// Wait until the query parks on the crowd with tasks open.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur QueryStatus
		getJSON(t, ts.URL+"/v1/queries/"+st.ID, &cur)
		var tasks []TaskInfo
		getJSON(t, ts.URL+"/v1/tasks", &tasks)
		if cur.State == StateWaiting && len(tasks) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never parked (state %s)", cur.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("drained query state %s (%s), want done (degraded)", final.State, final.Error)
	}
	if !final.Result.Degraded {
		t.Error("drained query not marked degraded")
	}
	led := final.Ledger
	if !led.Conserved() {
		t.Errorf("ledger not conserved after drain: %+v", led)
	}
	if led.Failed == 0 || led.InFlight != 0 {
		t.Errorf("drain settled nothing: %+v", led)
	}
	if led.ChargedMu != 0 || led.RefundedMu != int64(UnitMu)*int64(led.Requested) {
		t.Errorf("reservations not fully refunded: %+v", led)
	}

	// Admissions are refused while draining.
	postJSON(t, ts.URL+"/v1/queries", req, http.StatusServiceUnavailable, nil)
	postJSON(t, ts.URL+"/v1/datasets", datasetReq("d2", incomplete), http.StatusServiceUnavailable, nil)
	var health HealthInfo
	getJSON(t, ts.URL+"/v1/healthz", &health)
	if health.Status != "draining" {
		t.Errorf("health status %q, want draining", health.Status)
	}
}

// TestExpiryRefundsAndRequeues lets every posted task hit the deadline:
// the query must still terminate (latency bounds the rounds), with all
// requests expired and fully refunded.
func TestExpiryRefundsAndRequeues(t *testing.T) {
	incomplete, _ := makeData(44, 20, 4)
	srv := New(Config{Workers: 1, MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/datasets", datasetReq("d", incomplete), http.StatusCreated, nil)
	req := QueryRequest{Dataset: "d", Budget: 8, Latency: 2, Seed: 9, Workers: 1}
	var st QueryStatus
	postJSON(t, ts.URL+"/v1/queries", req, http.StatusAccepted, &st)

	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur QueryStatus
		getJSON(t, ts.URL+"/v1/queries/"+st.ID, &cur)
		if cur.State == StateDone || cur.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query stuck in %s", cur.State)
		}
		// Expire whatever is open; the round wakes with zero answers and
		// the library treats the tasks as dropped.
		srv.ExpireOverdue(time.Now())
		time.Sleep(2 * time.Millisecond)
	}

	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("state %s (%s), want done", final.State, final.Error)
	}
	led := final.Ledger
	if !led.Conserved() {
		t.Errorf("ledger not conserved: %+v", led)
	}
	if led.Expired == 0 || led.Answered != 0 {
		t.Errorf("expected pure-expiry ledger, got %+v", led)
	}
	if led.ChargedMu != 0 {
		t.Errorf("charged %d mu with no answers delivered", led.ChargedMu)
	}
}

// TestTraceEndpoint runs a traced query to completion and downloads its
// JSONL trace.
func TestTraceEndpoint(t *testing.T) {
	incomplete, truth := makeData(55, 16, 3)
	loop := NewLoopback(crowd.NewSimulated(truth, 1.0, nil), "")
	srv := New(Config{Workers: 1, MaxConcurrent: 1, Sink: loop})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	loop.SetEndpoint(ts.URL)
	loop.Start()
	defer loop.Stop()

	postJSON(t, ts.URL+"/v1/datasets", datasetReq("d", incomplete), http.StatusCreated, nil)
	req := QueryRequest{Dataset: "d", Budget: 10, Latency: 2, Seed: 2, Workers: 1, Trace: true}
	var st QueryStatus
	postJSON(t, ts.URL+"/v1/queries", req, http.StatusAccepted, &st)
	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("query failed: %s", final.Error)
	}

	resp, err := http.Get(ts.URL + "/v1/queries/" + st.ID + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatalf("close body: %v", cerr)
	}
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"kind"`)) {
		t.Fatalf("trace has no events: %q", body)
	}
}

// TestHTTPErrors walks the error envelope: bad bodies, unknown
// resources, duplicate registration.
func TestHTTPErrors(t *testing.T) {
	incomplete, _ := makeData(66, 10, 3)
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	checkError := func(method, url string, body any, wantStatus int) {
		t.Helper()
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				t.Fatalf("encode: %v", err)
			}
		}
		req, err := http.NewRequest(method, url, &buf)
		if err != nil {
			t.Fatalf("new request: %v", err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, url, err)
		}
		data, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); cerr != nil {
			t.Fatalf("close body: %v", cerr)
		}
		if err != nil {
			t.Fatalf("read body: %v", err)
		}
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s %s: status %d, want %d: %s", method, url, resp.StatusCode, wantStatus, data)
		}
		var envelope ErrorBody
		if err := json.Unmarshal(data, &envelope); err != nil || envelope.Error.Message == "" {
			t.Fatalf("%s %s: not the error envelope: %s", method, url, data)
		}
	}

	postJSON(t, ts.URL+"/v1/datasets", datasetReq("d", incomplete), http.StatusCreated, nil)

	checkError("POST", ts.URL+"/v1/datasets", datasetReq("d", incomplete), http.StatusConflict)
	checkError("POST", ts.URL+"/v1/datasets", DatasetRequest{Name: "x"}, http.StatusBadRequest)
	checkError("POST", ts.URL+"/v1/queries", QueryRequest{Dataset: "nope", Budget: 5, Latency: 1}, http.StatusBadRequest)
	checkError("POST", ts.URL+"/v1/queries", QueryRequest{Dataset: "d", Budget: 0, Latency: 1}, http.StatusBadRequest)
	checkError("POST", ts.URL+"/v1/queries", QueryRequest{Dataset: "d", Budget: 5, Latency: 1, Strategy: "XXX"}, http.StatusBadRequest)
	checkError("GET", ts.URL+"/v1/queries/q999", nil, http.StatusNotFound)
	checkError("GET", ts.URL+"/v1/queries/q999/trace", nil, http.StatusNotFound)
	checkError("POST", ts.URL+"/v1/answers/t999", AnswerRequest{Rel: "<"}, http.StatusNotFound)
}
