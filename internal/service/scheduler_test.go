package service

import (
	"testing"
	"time"
)

// waitQueued blocks until the scheduler has n queued waiters.
func waitQueued(t *testing.T, s *scheduler, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		queued := len(s.waiters)
		s.mu.Unlock()
		if queued == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters (at %d)", n, queued)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerFIFO pins the fairness contract: with one token held,
// queued acquirers are granted strictly in arrival order as the token
// is released and re-released.
func TestSchedulerFIFO(t *testing.T) {
	s := newScheduler(1)
	s.acquire() // hold the only token

	const n = 4
	granted := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		//lint:ignore goroutine test helper goroutines; each exits after its single send and the test drains the channel
		go func() {
			s.acquire()
			granted <- i
		}()
		// Enqueue strictly one at a time so arrival order is known.
		waitQueued(t, s, i+1)
	}

	for want := 0; want < n; want++ {
		s.release()
		select {
		case got := <-granted:
			if got != want {
				t.Fatalf("grant %d went to waiter %d, want %d (not FIFO)", want, got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("release %d granted nobody", want)
		}
	}
	s.release() // the last grantee's token; queue is empty
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running != 0 || len(s.waiters) != 0 {
		t.Fatalf("scheduler not quiescent: running=%d waiters=%d", s.running, len(s.waiters))
	}
}

// TestSchedulerLateArrivalQueuesBehind verifies a new acquirer cannot
// overtake an existing waiter even when a token is free at the moment
// it arrives (grants transfer directly to the queue head).
func TestSchedulerLateArrivalQueuesBehind(t *testing.T) {
	s := newScheduler(2)
	s.acquire()
	s.acquire() // both tokens held

	first := make(chan struct{})
	//lint:ignore goroutine test helper goroutine; exits after its single send
	go func() {
		s.acquire()
		close(first)
	}()
	waitQueued(t, s, 1)

	s.release() // transfers straight to the queued waiter
	select {
	case <-first:
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter was not granted the released token")
	}
}
