package service

import "testing"

// TestLedgerConserved walks the conservation laws through the ledger
// states the hub produces.
func TestLedgerConserved(t *testing.T) {
	cases := []struct {
		name string
		l    Ledger
		want bool
	}{
		{"zero", Ledger{}, true},
		{"reserved", Ledger{Requested: 3, InFlight: 3}, true},
		{"answered exact", Ledger{Requested: 2, Answered: 2, ChargedMu: 2 * UnitMu}, true},
		{"split 2 ways", Ledger{Requested: 1, Answered: 1, Shared: 1, ChargedMu: UnitMu / 2, RefundedMu: UnitMu - UnitMu/2}, true},
		{"split 3 ways with remainder", Ledger{Requested: 1, Answered: 1, Shared: 1, ChargedMu: UnitMu/3 + 1, RefundedMu: UnitMu - UnitMu/3 - 1}, true},
		{"expired refund", Ledger{Requested: 1, Expired: 1, RefundedMu: UnitMu}, true},
		{"drain refund", Ledger{Requested: 2, Failed: 2, RefundedMu: 2 * UnitMu}, true},
		{"lost money", Ledger{Requested: 1, Answered: 1, ChargedMu: UnitMu - 1}, false},
		{"lost task", Ledger{Requested: 2, Answered: 1, ChargedMu: 2 * UnitMu}, false},
		{"phantom charge", Ledger{ChargedMu: UnitMu}, false},
	}
	for _, c := range cases {
		if got := c.l.Conserved(); got != c.want {
			t.Errorf("%s: Conserved() = %v, want %v (%+v)", c.name, got, c.want, c.l)
		}
	}
}

// TestHubSplitRemainder checks the exact-split rule directly: UnitMu
// must divide across k sharers with the earliest joiners absorbing the
// remainder, summing back to exactly UnitMu.
func TestHubSplitRemainder(t *testing.T) {
	for k := 1; k <= 7; k++ {
		share := int64(UnitMu / k)
		extra := UnitMu % k
		var sum int64
		for i := 0; i < k; i++ {
			c := share
			if i < extra {
				c++
			}
			sum += c
		}
		if sum != UnitMu {
			t.Errorf("k=%d: shares sum to %d, want %d", k, sum, UnitMu)
		}
	}
}
