package service

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/obs"
)

// taskKey identifies a crowd question across queries: the same missing
// cell asked about over the same dataset is the same task, whoever
// needs it.
type taskKey struct {
	dataset string
	expr    ctable.Expr
}

// PostedTask is the hub's notification of a freshly opened crowd task
// — what a TaskSink (the loopback driver, or a real marketplace
// bridge) needs to list it.
type PostedTask struct {
	// ID is the callback handle: answers return as
	// POST /v1/answers/{ID}.
	ID string
	// Dataset names the registered dataset the task's expression refers
	// to.
	Dataset string
	// Task is the library-level crowd task; Task.String() renders the
	// worker-facing question.
	Task crowd.Task
}

// TaskSink receives batches of freshly opened crowd tasks. Notify runs
// outside the hub lock on a query goroutine, so implementations may
// block briefly (enqueue) but must not call back into the hub
// synchronously.
type TaskSink interface {
	Notify(tasks []PostedTask)
}

// roundWait is one parked crowd round: the tasks a query posted, the
// relations that have arrived for them, and the latch its goroutine
// blocks on until every task is resolved.
type roundWait struct {
	q     *query
	tasks []crowd.Task
	// rels holds the answered relations; all writes happen under the
	// hub mutex before done closes, so the post-wait read is ordered.
	rels    map[ctable.Expr]ctable.Rel
	pending int
	failed  bool // drain resolved part of the round
	done    chan struct{}
}

// collect assembles the round's answers in posted-task order — the
// order a synchronous platform returns them — and reports ErrDraining
// when drain resolved any of the round's tasks.
func (rw *roundWait) collect() ([]crowd.Answer, error) {
	var answers []crowd.Answer
	for _, t := range rw.tasks {
		if rel, ok := rw.rels[t.Expr]; ok {
			answers = append(answers, crowd.Answer{Task: t, Rel: rel})
		}
	}
	if rw.failed {
		return answers, ErrDraining
	}
	return answers, nil
}

// openTask is one outstanding crowd task and the rounds sharing it, in
// join order (the earliest joiners absorb the integer remainder of the
// price split).
type openTask struct {
	id       string
	seq      int // monotone open order; iteration sorts on it
	key      taskKey
	question string
	postedAt time.Time
	waiters  []*roundWait
}

// hub is the service's crowd event loop state: the cross-query dedup
// table of open tasks, every query's ledger, and the resolution paths
// (answer callback, deadline expiry, drain) that wake parked rounds.
// All fields are guarded by mu; ledger mutation happens exclusively in
// the register/resolve/expireOverdue/drain call trees, which is the
// contract the bayeslint ledger analyzer pins down.
type hub struct {
	reg  *obs.Registry
	sink TaskSink

	mu       sync.Mutex
	open     map[taskKey]*openTask // guarded by mu
	byID     map[string]*openTask  // guarded by mu
	nextTask int                   // guarded by mu
	draining bool                  // guarded by mu

	tasksPosted   int // guarded by mu; unique tasks ever opened
	tasksAnswered int // guarded by mu
	tasksExpired  int // guarded by mu

	cPosted, cDeduped, cAnswered, cExpired, cFailed *obs.Counter
	cChargedMu, cRefundedMu                         *obs.Counter
}

// newHub returns an empty hub writing its counters to reg.
func newHub(reg *obs.Registry, sink TaskSink) *hub {
	return &hub{
		reg:  reg,
		sink: sink,
		open: map[taskKey]*openTask{},
		byID: map[string]*openTask{},

		cPosted:     reg.Counter("service.tasks.posted"),
		cDeduped:    reg.Counter("service.tasks.deduped"),
		cAnswered:   reg.Counter("service.tasks.answered"),
		cExpired:    reg.Counter("service.tasks.expired"),
		cFailed:     reg.Counter("service.tasks.failed"),
		cChargedMu:  reg.Counter("service.mu.charged"),
		cRefundedMu: reg.Counter("service.mu.refunded"),
	}
}

// register books one crowd round into the hub: every task reserves a
// full unit on the query's ledger and either joins an already-open task
// (a dedup hit — the crowd is asked once, the price will be split) or
// opens a fresh one. It returns the round's wait latch and the freshly
// opened tasks for the sink; the caller notifies outside the lock.
func (h *hub) register(q *query, tasks []crowd.Task) (*roundWait, []PostedTask, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.draining {
		return nil, nil, ErrDraining
	}
	rw := &roundWait{
		q:       q,
		tasks:   tasks,
		rels:    make(map[ctable.Expr]ctable.Rel, len(tasks)),
		pending: len(tasks),
		done:    make(chan struct{}),
	}
	var fresh []PostedTask
	for _, t := range tasks {
		key := taskKey{dataset: q.ds.name, expr: t.Expr}
		q.ledger.Requested++
		q.ledger.InFlight++
		ot := h.open[key]
		if ot != nil {
			q.ledger.Shared++
			h.cDeduped.Add(1)
			ot.waiters = append(ot.waiters, rw)
			continue
		}
		h.nextTask++
		ot = &openTask{
			id:       fmt.Sprintf("t%d", h.nextTask),
			seq:      h.nextTask,
			key:      key,
			question: t.String(),
			postedAt: time.Now(),
			waiters:  []*roundWait{rw},
		}
		h.open[key] = ot
		h.byID[ot.id] = ot
		h.tasksPosted++
		h.cPosted.Add(1)
		fresh = append(fresh, PostedTask{ID: ot.id, Dataset: key.dataset, Task: t})
	}
	return rw, fresh, nil
}

// notify forwards freshly opened tasks to the sink, outside the hub
// lock.
func (h *hub) notify(fresh []PostedTask) {
	if len(fresh) > 0 && h.sink != nil {
		h.sink.Notify(fresh)
	}
}

// resolve settles one open task with a crowd answer: the unit price
// splits exactly across the sharing requests in join order (earliest
// joiners absorb the remainder), every sharer's reservation beyond its
// share is refunded, and rounds whose last task this was are woken. It
// returns the ids of the queries that shared the task.
func (h *hub) resolve(taskID string, rel ctable.Rel) ([]string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ot := h.byID[taskID]
	if ot == nil {
		return nil, fmt.Errorf("no open task %q", taskID)
	}
	delete(h.byID, taskID)
	delete(h.open, ot.key)
	h.tasksAnswered++
	h.cAnswered.Add(1)

	k := len(ot.waiters)
	share := int64(UnitMu / k)
	extra := UnitMu % k
	ids := make([]string, 0, k)
	for i, rw := range ot.waiters {
		c := share
		if i < extra {
			c++
		}
		led := &rw.q.ledger
		led.Answered++
		led.InFlight--
		led.ChargedMu += c
		led.RefundedMu += int64(UnitMu) - c
		h.cChargedMu.Add(c)
		h.cRefundedMu.Add(int64(UnitMu) - c)
		h.queryCounters(rw.q, c, int64(UnitMu)-c)
		rw.rels[ot.key.expr] = rel
		rw.pending--
		if rw.pending == 0 {
			close(rw.done)
		}
		ids = append(ids, rw.q.id)
	}
	return ids, nil
}

// queryCounters mirrors a query's money movements into the metrics
// registry so per-query ledgers are readable from /metrics.
func (h *hub) queryCounters(q *query, charged, refunded int64) {
	h.reg.Counter("service.query." + q.id + ".charged_mu").Add(charged)
	h.reg.Counter("service.query." + q.id + ".refunded_mu").Add(refunded)
}

// settleLost resolves one task without an answer — expiry or drain —
// refunding every sharer's full reservation. The sharing rounds see the
// task as dropped (expiry) or failed (drain).
func (h *hub) settleLost(ot *openTask, failed bool) {
	for _, rw := range ot.waiters {
		led := &rw.q.ledger
		led.InFlight--
		led.RefundedMu += UnitMu
		h.cRefundedMu.Add(UnitMu)
		h.queryCounters(rw.q, 0, UnitMu)
		if failed {
			led.Failed++
			rw.failed = true
		} else {
			led.Expired++
		}
		rw.pending--
		if rw.pending == 0 {
			close(rw.done)
		}
	}
}

// expireOverdue resolves every open task posted at or before cutoff as
// expired and returns how many it retired. Tasks are processed in open
// order so the ledger movements are reproducible given the same open
// set.
func (h *hub) expireOverdue(cutoff time.Time) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	overdue := h.bySeqOrder(func(ot *openTask) bool { return !ot.postedAt.After(cutoff) })
	for _, ot := range overdue {
		delete(h.byID, ot.id)
		delete(h.open, ot.key)
		h.tasksExpired++
		h.cExpired.Add(1)
		h.settleLost(ot, false)
	}
	return len(overdue)
}

// bySeqOrder gathers the open tasks matching keep, ordered by the
// monotone open sequence (a total order, so results never depend on map
// iteration). Callers hold mu.
func (h *hub) bySeqOrder(keep func(*openTask) bool) []*openTask {
	bySeq := make(map[int]*openTask, len(h.byID))
	seqs := make([]int, 0, len(h.byID))
	for _, ot := range h.byID {
		if keep == nil || keep(ot) {
			bySeq[ot.seq] = ot
			seqs = append(seqs, ot.seq)
		}
	}
	sort.Ints(seqs)
	out := make([]*openTask, len(seqs))
	for i, seq := range seqs {
		out[i] = bySeq[seq]
	}
	return out
}

// drain refuses further rounds and fails every open task, refunding all
// reservations; parked rounds wake with ErrDraining and their queries
// degrade through the library's outage path.
func (h *hub) drain() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.draining = true
	for _, ot := range h.bySeqOrder(nil) {
		delete(h.byID, ot.id)
		delete(h.open, ot.key)
		h.cFailed.Add(1)
		h.settleLost(ot, true)
	}
}

// openTasks snapshots the open-task table for GET /v1/tasks, in open
// order.
func (h *hub) openTasks() []TaskInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]TaskInfo, 0, len(h.byID))
	for _, ot := range h.bySeqOrder(nil) {
		queries := make([]string, len(ot.waiters))
		for i, rw := range ot.waiters {
			queries[i] = rw.q.id
		}
		out = append(out, TaskInfo{
			ID:       ot.id,
			Dataset:  ot.key.dataset,
			Question: ot.question,
			Expr:     exprInfo(ot.key.expr),
			Queries:  queries,
			PostedAt: ot.postedAt,
		})
	}
	return out
}

// stats snapshots the hub's lifetime tallies.
func (h *hub) stats() (posted, answered, expired, open int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tasksPosted, h.tasksAnswered, h.tasksExpired, len(h.byID)
}

// ledgerOf snapshots a query's ledger under the hub lock.
func (h *hub) ledgerOf(q *query) Ledger {
	h.mu.Lock()
	defer h.mu.Unlock()
	return q.ledger
}
