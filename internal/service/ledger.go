package service

// UnitMu is the hub's fixed-point money resolution: one crowd task
// costs exactly UnitMu micro-units (mu). Budget splits across queries
// sharing a deduplicated task are computed in mu so the arithmetic is
// exact — no floating point, no rounding drift — and the per-query
// conservation law below holds to the last unit.
const UnitMu = 1000

// Ledger is one query's crowd-cost account at the hub. Every task
// request reserves a full UnitMu; resolution charges the query its
// exact share of the task's unit price (split across the queries that
// shared the task, earliest joiners absorbing the integer remainder)
// and refunds the rest. Lost work — expiry, drain — refunds the whole
// reservation.
//
// Two conservation laws hold after every hub operation, checked by the
// service test suite and watched by the bayeslint ledger analyzer:
//
//	UnitMu·Requested == ChargedMu + RefundedMu + UnitMu·InFlight   (money)
//	Requested == Answered + Expired + Failed + InFlight            (tasks)
//
// All fields are guarded by the hub's mutex; handlers snapshot the
// struct under it.
type Ledger struct {
	// Requested counts task needs this query issued — every task of
	// every crowd round, whether it opened a fresh hub task or joined an
	// existing one.
	Requested int `json:"requested"`
	// Shared counts the subset of Requested that joined a task another
	// query (or an earlier round) already had open — the dedup hits.
	// Requested-Shared is the number of tasks this query caused to be
	// posted to the crowd.
	Shared int `json:"shared"`
	// Answered counts requests resolved by a crowd answer (charged);
	// Expired counts requests resolved by deadline expiry and Failed
	// counts requests resolved by drain or platform failure (both fully
	// refunded). InFlight counts requests not yet resolved.
	Answered int `json:"answered"`
	Expired  int `json:"expired"`
	Failed   int `json:"failed"`
	InFlight int `json:"inFlight"`
	// ChargedMu and RefundedMu are the money movements in mu: charges
	// are the query's exact shares of answered task prices, refunds are
	// the unreserved remainders plus the full reservations of lost work.
	ChargedMu  int64 `json:"chargedMu"`
	RefundedMu int64 `json:"refundedMu"`
}

// Conserved reports whether both conservation laws hold: every reserved
// mu is charged, refunded, or still reserved, and every request is
// answered, expired, failed, or in flight.
func (l Ledger) Conserved() bool {
	money := int64(UnitMu)*int64(l.Requested) == l.ChargedMu+l.RefundedMu+int64(UnitMu)*int64(l.InFlight)
	tasks := l.Requested == l.Answered+l.Expired+l.Failed+l.InFlight
	return money && tasks
}
