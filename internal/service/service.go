// Package service turns the single-query, batch, synchronous bayescrowd
// library into a long-running multi-query skyline daemon: shared
// datasets are registered once (preprocessing runs once and its
// posteriors are shared read-only by every query), skyline queries are
// accepted over HTTP and executed concurrently, and the crowd phase is
// an event loop over answer arrivals — crowd answers reach the server
// as POST callbacks instead of a blocking marketplace round-trip.
//
// # Architecture
//
// Each query runs the unchanged core pipeline (core.RunWithDists) on
// its own goroutine, so a query served by the daemon returns exactly
// the answer set the library facade would: same options, same seeds,
// same bits. Three service mechanisms wrap that pipeline:
//
//   - The task hub intercepts every crowd round. A posted task joins
//     the cross-query dedup table keyed by (dataset, expression): two
//     queries needing the same missing cell share one outstanding crowd
//     task, and when the answer arrives its unit price is split exactly
//     across the sharers (see Ledger). The posting query parks — the
//     goroutine blocks, holding no compute token — until every task of
//     its round is resolved by an answer callback, a deadline expiry,
//     or drain.
//   - The fair scheduler bounds concurrent machine work to a fixed
//     number of compute tokens granted in strict FIFO order. A query
//     releases its token whenever it parks on the crowd and re-queues
//     at the tail on wake-up, so one expensive query cannot starve the
//     rest: interleaving is round-robin at compute-step granularity.
//   - Graceful drain stops admissions, fails every open crowd task
//     (refunding its reservations), lets in-flight queries finish or
//     degrade through the library's own best-effort machinery, and
//     flushes per-query traces before the HTTP server shuts down.
//
// Determinism ends at the HTTP boundary: which query's round posts
// first, how tasks interleave at the hub, and when answers arrive are
// all wall-clock effects. Inside the boundary each query is as
// deterministic as a library run — its selection RNG, its trace and
// its result depend only on its seed and the answers it received.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bayescrowd/internal/core"
	"bayescrowd/internal/crowd"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/obs"
	"bayescrowd/internal/parallel"
	"bayescrowd/internal/prob"
)

// ErrDraining is the round-level error a parked crowd round resolves
// with when the server drains: the library's postWithRetry treats it
// like a platform outage, keeps every answer that already arrived, and
// degrades the query to its best-effort result.
var ErrDraining = errors.New("service: server draining")

// Config assembles a Server.
type Config struct {
	// Workers is the per-query default worker count for the shared
	// parallel pool (a query request may override it); <= 0 means one
	// worker per CPU.
	Workers int
	// MaxConcurrent is the number of compute tokens: how many queries
	// may execute machine work simultaneously. <= 0 selects 2.
	MaxConcurrent int
	// TaskDeadline is how long a posted crowd task stays open before it
	// expires and refunds its reservations; 0 disables automatic expiry
	// (tasks then resolve only by answer or drain). The daemon's expiry
	// ticker enforces it; tests may call ExpireOverdue directly.
	TaskDeadline time.Duration
	// Metrics receives the service's counters and every query's run
	// metrics; nil creates a private registry (served at /metrics).
	Metrics *obs.Registry
	// Sink, when non-nil, is notified of every freshly opened crowd
	// task — the attachment point for the loopback driver. Joined
	// (deduplicated) requests do not re-notify.
	Sink TaskSink
	// TraceLimit caps a per-query trace buffer in bytes; <= 0 selects
	// 4 MiB. A query whose trace would exceed the cap keeps the prefix
	// and records the truncation.
	TraceLimit int
}

// State is a query's lifecycle position.
type State string

// The query lifecycle: Pending (queued for a compute token), Running
// (executing machine work), Waiting (parked on crowd answers), then
// Done or Failed. Running and Waiting alternate once per crowd round.
const (
	StatePending State = "pending"
	StateRunning State = "running"
	StateWaiting State = "waiting"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// datasetEntry is one registered dataset: the immutable data, its
// preprocessed missing-value posteriors (shared read-only by every
// query over it), and registration metadata.
type datasetEntry struct {
	name    string
	data    *dataset.Dataset
	base    prob.Dists // read-only after registration; shared by every query
	missing int
	created time.Time
}

// query is one accepted skyline query and everything the service knows
// about it.
type query struct {
	id  string
	ds  *datasetEntry
	req QueryRequest
	opt core.Options

	mu       sync.Mutex
	state    State        // guarded by mu
	result   *core.Result // guarded by mu; set once on completion
	err      error        // guarded by mu; set once on failure
	created  time.Time
	finished time.Time // guarded by mu

	// trace buffers the query's JSONL trace (nil when tracing is off).
	// It is written only by the query goroutine; readers must observe a
	// terminal state under mu first, which orders the reads after every
	// write.
	trace         *bytes.Buffer
	traceTrunc    bool
	ledger        Ledger // owned by the hub: read and written only under its mutex
	roundsSeen    int    // guarded by mu; progress from OnRound
	lastUndecided int    // guarded by mu
}

// setState publishes a lifecycle transition.
func (q *query) setState(s State) {
	q.mu.Lock()
	q.state = s
	q.mu.Unlock()
}

// snapshot returns the query's state triple for handlers.
func (q *query) snapshot() (State, *core.Result, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.state, q.result, q.err
}

// Server is the multi-query skyline service: dataset registry, query
// table, task hub, fair scheduler, and the HTTP surface in http.go.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	sched *scheduler
	hub   *hub

	mu         sync.Mutex
	datasets   map[string]*datasetEntry // guarded by mu
	queries    map[string]*query        // guarded by mu
	order      []string                 // guarded by mu; query ids in admission order
	nextQuery  int                      // guarded by mu
	draining   bool                     // guarded by mu
	expiryStop chan struct{}            // guarded by mu; nil until Start

	wg sync.WaitGroup // one unit per admitted query goroutine

	cQueries, cDone, cFailed, cDegraded *obs.Counter
}

// New validates the configuration and returns a ready Server. Call
// Start to enable the expiry ticker (the daemon does); handlers work
// without it.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.TraceLimit <= 0 {
		cfg.TraceLimit = 4 << 20
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		sched:    newScheduler(cfg.MaxConcurrent),
		datasets: map[string]*datasetEntry{},
		queries:  map[string]*query{},

		cQueries:  reg.Counter("service.queries.submitted"),
		cDone:     reg.Counter("service.queries.done"),
		cFailed:   reg.Counter("service.queries.failed"),
		cDegraded: reg.Counter("service.queries.degraded"),
	}
	s.hub = newHub(reg, cfg.Sink)
	return s
}

// Registry returns the metrics registry the server writes to — the one
// /metrics serves.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Start launches the background expiry ticker when Config.TaskDeadline
// is positive. It is idempotent and safe to skip entirely (tests drive
// ExpireOverdue directly).
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.TaskDeadline <= 0 || s.expiryStop != nil || s.draining {
		return
	}
	stop := make(chan struct{})
	s.expiryStop = stop
	interval := s.cfg.TaskDeadline / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	//lint:ignore goroutine the expiry ticker is service-lifetime control flow outside the data-parallel pools; Drain joins it via expiryStop
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				s.ExpireOverdue(now.Add(-s.cfg.TaskDeadline))
			}
		}
	}()
}

// ExpireOverdue resolves every open task posted at or before cutoff as
// expired: each sharing query sees the task as dropped (the library
// re-queues it), and every reservation is refunded. It returns the
// number of tasks expired.
func (s *Server) ExpireOverdue(cutoff time.Time) int {
	return s.hub.expireOverdue(cutoff)
}

// RegisterDataset parses, validates and preprocesses a dataset, then
// publishes it for queries. Preprocessing (Bayesian-network learning
// or the marginals fallback) runs exactly once here; every query over
// the dataset shares the resulting posteriors read-only.
func (s *Server) RegisterDataset(req DatasetRequest) (*DatasetInfo, error) {
	if req.Name == "" {
		return nil, fmt.Errorf("dataset name is required")
	}
	if len(req.Attrs) == 0 {
		return nil, fmt.Errorf("dataset %q has no attributes", req.Name)
	}
	attrs := make([]dataset.Attribute, len(req.Attrs))
	for i, a := range req.Attrs {
		if a.Name == "" || a.Levels < 2 {
			return nil, fmt.Errorf("attribute %d needs a name and >= 2 levels", i)
		}
		attrs[i] = dataset.Attribute{Name: a.Name, Levels: a.Levels}
	}
	d := dataset.New(attrs)
	missing := 0
	for r, row := range req.Rows {
		if len(row) != len(attrs) {
			return nil, fmt.Errorf("row %d has %d cells, want %d", r, len(row), len(attrs))
		}
		cells := make([]dataset.Cell, len(row))
		for c, v := range row {
			if v == nil {
				cells[c] = dataset.Unknown()
				missing++
				continue
			}
			cells[c] = dataset.Known(*v)
		}
		if err := d.Append(dataset.Object{ID: fmt.Sprintf("o%d", r+1), Cells: cells}); err != nil {
			return nil, fmt.Errorf("row %d: %v", r, err)
		}
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("dataset %q has no rows", req.Name)
	}

	base, err := core.Preprocess(d, core.Options{
		MarginalsOnly: req.MarginalsOnly,
		Workers:       parallel.Workers(s.cfg.Workers),
	})
	if err != nil {
		return nil, fmt.Errorf("preprocess: %v", err)
	}

	e := &datasetEntry{name: req.Name, data: d, base: base, missing: missing, created: time.Now()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if _, dup := s.datasets[req.Name]; dup {
		return nil, fmt.Errorf("dataset %q already registered", req.Name)
	}
	s.datasets[req.Name] = e
	info := e.info()
	return &info, nil
}

// info renders the registry entry for handlers.
func (e *datasetEntry) info() DatasetInfo {
	return DatasetInfo{
		Name:        e.name,
		Objects:     e.data.Len(),
		Attrs:       e.data.NumAttrs(),
		Missing:     e.missing,
		MissingRate: e.data.MissingRate(),
	}
}

// SubmitQuery validates and admits a query, spawns its runner
// goroutine, and returns its id immediately; progress is polled via
// QueryStatus (GET /v1/queries/{id}).
func (s *Server) SubmitQuery(req QueryRequest) (*QueryStatus, error) {
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		return nil, err
	}
	if req.Budget <= 0 {
		return nil, fmt.Errorf("budget %d must be positive", req.Budget)
	}
	if req.Latency <= 0 {
		return nil, fmt.Errorf("latency %d must be positive", req.Latency)
	}
	if strategy == core.HHS && req.M <= 0 {
		return nil, fmt.Errorf("strategy HHS requires a positive m, got %d", req.M)
	}
	if req.MaxRetries < 0 || req.ReaskConflicts < 0 {
		return nil, fmt.Errorf("maxRetries and reaskConflicts must be non-negative")
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	ds := s.datasets[req.Dataset]
	if ds == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("dataset %q not registered", req.Dataset)
	}
	s.nextQuery++
	q := &query{
		id:      fmt.Sprintf("q%d", s.nextQuery),
		ds:      ds,
		req:     req,
		state:   StatePending,
		created: time.Now(),
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	q.opt = core.Options{
		Alpha:          req.Alpha,
		Budget:         req.Budget,
		Latency:        req.Latency,
		Strategy:       strategy,
		M:              req.M,
		Workers:        workers,
		MaxRetries:     req.MaxRetries,
		ChargeOnPost:   req.ChargeOnPost,
		ReaskConflicts: req.ReaskConflicts,
		NoCache:        req.NoCache,
		Metrics:        s.reg,
		OnRound: func(round, _, undecided int) {
			q.mu.Lock()
			q.roundsSeen = round
			q.lastUndecided = undecided
			q.mu.Unlock()
		},
	}
	if req.Seed != 0 {
		q.opt.Rng = rand.New(rand.NewSource(req.Seed))
	}
	if req.Trace {
		q.trace = &bytes.Buffer{}
	}
	s.queries[q.id] = q
	s.order = append(s.order, q.id)
	s.wg.Add(1)
	s.mu.Unlock()

	s.cQueries.Add(1)
	//lint:ignore goroutine one runner goroutine per admitted query is the service's unit of concurrency; it is joined by Drain via the WaitGroup added to above
	go s.runQuery(q)
	st := s.status(q)
	return &st, nil
}

// runQuery executes one admitted query end to end: acquire a compute
// token, run the unchanged library pipeline against the hub-backed
// platform, flush the trace, publish the terminal state.
func (s *Server) runQuery(q *query) {
	defer s.wg.Done()
	s.sched.acquire()
	q.setState(StateRunning)
	defer s.sched.release()

	opt := q.opt
	var sink *obs.Trace
	if q.trace != nil {
		sink = obs.NewTrace(&boundedWriter{buf: q.trace, limit: s.cfg.TraceLimit, q: q})
		opt.Trace = obs.NewRecorder(sink)
	}
	res, err := core.RunWithDists(q.ds.data, q.ds.base, &hubPlatform{s: s, q: q}, opt)
	flushFailed := false
	if sink != nil {
		// Flush before the terminal state publishes: readers gate on the
		// state under q.mu, so every trace byte happens-before their read.
		flushFailed = sink.Flush() != nil
	}

	q.mu.Lock()
	if flushFailed {
		q.traceTrunc = true
	}
	q.finished = time.Now()
	if err != nil {
		q.state = StateFailed
		q.err = err
	} else {
		q.state = StateDone
		q.result = res
	}
	q.mu.Unlock()
	if err != nil {
		s.cFailed.Add(1)
		return
	}
	s.cDone.Add(1)
	if res.Degraded {
		s.cDegraded.Add(1)
	}
}

// boundedWriter caps a query's trace buffer: writes beyond the limit
// are dropped and the truncation recorded, so a chatty query cannot
// grow the daemon's memory without bound.
type boundedWriter struct {
	buf   *bytes.Buffer
	limit int
	q     *query
}

// Write appends to the buffer up to the cap.
func (w *boundedWriter) Write(p []byte) (int, error) {
	if w.buf.Len()+len(p) > w.limit {
		w.q.mu.Lock()
		w.q.traceTrunc = true
		w.q.mu.Unlock()
		return len(p), nil // swallow: truncation is recorded, the run goes on
	}
	return w.buf.Write(p)
}

// hubPlatform adapts the task hub to the library's crowd.Platform: one
// Post call is one parked crowd round. It releases the query's compute
// token while parked and re-acquires it (FIFO, at the tail) before
// returning, which is what makes the scheduler fair across rounds.
type hubPlatform struct {
	s *Server
	q *query
}

// Post registers the round's tasks with the hub (deduplicating against
// every other query's open tasks), parks until all of them resolve,
// and returns the answers in posted-task order — exactly the order a
// synchronous simulated platform would have returned them, which keeps
// the query's absorption sequence, and therefore its result, identical
// to a library run.
func (p *hubPlatform) Post(tasks []crowd.Task) ([]crowd.Answer, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	rw, fresh, err := p.s.hub.register(p.q, tasks)
	if err != nil {
		return nil, err
	}
	p.s.hub.notify(fresh)
	p.q.setState(StateWaiting)
	p.s.sched.release()
	<-rw.done
	p.s.sched.acquire()
	p.q.setState(StateRunning)
	return rw.collect()
}

// Drain gracefully winds the service down: admissions stop (new
// datasets and queries are refused with ErrDraining), every open crowd
// task fails over to the sharing queries with ErrDraining (reservations
// refunded — the library keeps the answers that already arrived and
// degrades each query to its best-effort result), the expiry ticker
// stops, and Drain blocks until every query goroutine has finished or
// ctx expires. The HTTP server itself is shut down by the caller after
// Drain returns, so status endpoints stay readable throughout.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	stop := s.expiryStop
	s.expiryStop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}

	s.hub.drain()

	done := make(chan struct{})
	//lint:ignore goroutine bridging WaitGroup.Wait to a select arm; the goroutine exits as soon as the last query finishes
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain timed out with queries still running")
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// parseStrategy maps the wire strategy names onto core's constants.
func parseStrategy(name string) (core.Strategy, error) {
	switch name {
	case "FBS":
		return core.FBS, nil
	case "UBS", "":
		return core.UBS, nil
	case "HHS":
		return core.HHS, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want FBS, UBS or HHS)", name)
	}
}
