package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"bayescrowd/internal/crowd"
)

// Loopback is a TaskSink that closes the service's crowd loop against a
// simulated platform: every task the hub opens is handed to the wrapped
// crowd.Platform (crowd.Simulated for a fault-free crowd,
// crowd.Unreliable for the soak's hostile one) and each answer is
// delivered back to the daemon as a POST /v1/answers/{taskid} callback
// — the same wire path a real marketplace bridge would use, so the
// daemon's event loop is exercised end to end even in a self-contained
// process.
//
// One worker goroutine serializes the platform calls (Simulated and
// Unreliable share an RNG and are not safe for concurrent Post), so a
// Loopback behaves like one marketplace connection. Tasks the platform
// drops are simply never answered; the service's task deadline expires
// them.
type Loopback struct {
	platform crowd.Platform
	endpoint string
	client   *http.Client

	queue chan PostedTask
	stop  chan struct{}
	wg    sync.WaitGroup

	mu       sync.Mutex
	answered int   // guarded by mu
	dropped  int   // guarded by mu
	failed   int   // guarded by mu
	lastErr  error // guarded by mu
}

// NewLoopback wires a Loopback to the simulated platform and the
// daemon's own base URL (e.g. "http://127.0.0.1:8080"). Call Start
// before the first task and Stop when the daemon drains.
func NewLoopback(platform crowd.Platform, endpoint string) *Loopback {
	return &Loopback{
		platform: platform,
		endpoint: endpoint,
		client:   &http.Client{},
		queue:    make(chan PostedTask, 1024),
		stop:     make(chan struct{}),
	}
}

// SetEndpoint replaces the daemon base URL. The daemon uses it to
// break the bootstrap cycle: the Loopback must exist before the server
// config that references it, but the bound address is known only after
// the listener is up. Call it before Start.
func (l *Loopback) SetEndpoint(endpoint string) { l.endpoint = endpoint }

// Start launches the answer worker.
func (l *Loopback) Start() {
	l.wg.Add(1)
	//lint:ignore goroutine the single answer worker is the loopback's marketplace connection; Stop joins it via the WaitGroup
	go l.run()
}

// Stop ends the worker after the queued tasks drain and waits for it.
func (l *Loopback) Stop() {
	close(l.stop)
	l.wg.Wait()
}

// Notify implements TaskSink: freshly opened tasks enqueue for the
// worker. A full queue drops the overflow — the service's deadline
// machinery reclaims those tasks — rather than blocking a query
// goroutine inside the hub's notify path.
func (l *Loopback) Notify(tasks []PostedTask) {
	for _, t := range tasks {
		select {
		case l.queue <- t:
		default:
			l.mu.Lock()
			l.dropped++
			l.mu.Unlock()
		}
	}
}

// Stats reports how many answers were delivered, how many tasks the
// platform or the queue dropped, how many callbacks failed, and the
// last callback error.
func (l *Loopback) Stats() (answered, dropped, failed int, lastErr error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.answered, l.dropped, l.failed, l.lastErr
}

// run is the worker loop: drain the queue, answer through the platform,
// call back. On stop it finishes the already-queued tasks first so a
// drain sees every answer that was going to arrive.
func (l *Loopback) run() {
	defer l.wg.Done()
	for {
		select {
		case t := <-l.queue:
			l.answer(t)
		case <-l.stop:
			for {
				select {
				case t := <-l.queue:
					l.answer(t)
				default:
					return
				}
			}
		}
	}
}

// answer runs one task through the platform and posts each returned
// answer to the daemon. Platform errors behave like an outage: the
// arrived answers are still delivered, the rest of the batch is left to
// expire.
func (l *Loopback) answer(t PostedTask) {
	answers, perr := l.platform.Post([]crowd.Task{t.Task})
	if perr != nil && len(answers) == 0 {
		l.mu.Lock()
		l.dropped++
		l.mu.Unlock()
		return
	}
	for _, a := range answers {
		if err := l.deliver(t.ID, a); err != nil {
			l.mu.Lock()
			l.failed++
			l.lastErr = err
			l.mu.Unlock()
			continue
		}
		l.mu.Lock()
		l.answered++
		l.mu.Unlock()
	}
	if len(answers) == 0 {
		// The platform ate the task (a fault-injected drop).
		l.mu.Lock()
		l.dropped++
		l.mu.Unlock()
	}
}

// deliver posts one answer callback.
func (l *Loopback) deliver(taskID string, a crowd.Answer) error {
	body, err := json.Marshal(AnswerRequest{Rel: a.Rel.String()})
	if err != nil {
		return err
	}
	resp, err := l.client.Post(
		l.endpoint+"/v1/answers/"+taskID, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if resp.StatusCode != http.StatusOK {
		msg, rerr := io.ReadAll(io.LimitReader(resp.Body, 512))
		if rerr != nil {
			msg = []byte(fmt.Sprintf("(unreadable body: %v)", rerr))
		}
		return fmt.Errorf("answer callback for %s: status %d: %s", taskID, resp.StatusCode, msg)
	}
	return err
}
