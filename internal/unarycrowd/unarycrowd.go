// Package unarycrowd reimplements the unary-question crowd skyline of
// Lofi, El Maarry and Balke ("Skyline Queries in Crowd-Enabled Databases",
// EDBT 2013) — reference [22] of the paper and the second existing crowd
// skyline approach §1 discusses.
//
// Instead of BayesCrowd's comparison micro-tasks, this approach asks the
// crowd *unary* questions — "what is the value of this missing cell?" —
// imputes the answers into the table, and computes the skyline of the
// completed data by machine. The paper's critique, which the comparison
// benchmark quantifies, is twofold: every missing cell of every candidate
// must be asked (no task can be saved by inference), and a single wrong
// imputation silently corrupts dominance decisions, so "the returned
// results may be inaccurate".
//
// Dominance-based pruning keeps the task count sane: only cells of
// objects that could still be skyline members (not already dominated on
// their observed values by a complete object) are asked.
package unarycrowd

import (
	"fmt"
	"math/rand"

	"bayescrowd/internal/dataset"
	"bayescrowd/internal/skyline"
)

// Options configures a run.
type Options struct {
	// TasksPerRound bounds the unary questions posted per round.
	TasksPerRound int
	// Accuracy is the probability a worker reports the true value; a
	// wrong worker reports a uniformly random *other* domain value.
	// Unlike ternary comparisons, unary estimation has no natural
	// majority aggregation over a large domain, so one worker answers
	// each cell — the fidelity weakness the paper points out.
	Accuracy float64
	// Rng drives worker errors; required when Accuracy < 1.
	Rng *rand.Rand
}

// Result reports the computed skyline and cost metrics.
type Result struct {
	Skyline     []int
	TasksPosted int
	Rounds      int
}

// Run computes the skyline by crowdsourcing unary value questions against
// the hidden truth and running a machine skyline over the imputed table.
func Run(d *dataset.Dataset, truth *dataset.Dataset, opt Options) (*Result, error) {
	if opt.TasksPerRound <= 0 {
		opt.TasksPerRound = 20
	}
	if opt.Accuracy < 0 || opt.Accuracy > 1 {
		return nil, fmt.Errorf("unarycrowd: accuracy %v outside [0,1]", opt.Accuracy)
	}
	if opt.Accuracy < 1 && opt.Rng == nil {
		return nil, fmt.Errorf("unarycrowd: imperfect workers need an Rng")
	}
	if truth.Len() != d.Len() || truth.NumAttrs() != d.NumAttrs() {
		return nil, fmt.Errorf("unarycrowd: truth shape %dx%d does not match data %dx%d",
			truth.Len(), truth.NumAttrs(), d.Len(), d.NumAttrs())
	}

	imputed := d.Clone()

	// Prune: an object already dominated on complete evidence can never
	// be a skyline member, and its cells need no crowd money — the
	// dominance-pruning refinement of the EDBT'13 approach.
	candidate := make([]bool, d.Len())
	for o := range d.Objects {
		candidate[o] = true
	}
	for o := range d.Objects {
		if !d.Objects[o].IsComplete() {
			continue
		}
		for p := range d.Objects {
			if p == o || !d.Objects[p].IsComplete() {
				continue
			}
			if skyline.Dominates(&d.Objects[p], &d.Objects[o]) {
				candidate[o] = false
				break
			}
		}
	}

	// Collect the unary tasks: every missing cell of every candidate.
	type cell struct{ o, j int }
	var queue []cell
	for o := range d.Objects {
		if !candidate[o] {
			continue
		}
		for j, c := range d.Objects[o].Cells {
			if c.Missing {
				queue = append(queue, cell{o, j})
			}
		}
	}

	res := &Result{}
	for start := 0; start < len(queue); start += opt.TasksPerRound {
		end := start + opt.TasksPerRound
		if end > len(queue) {
			end = len(queue)
		}
		for _, c := range queue[start:end] {
			v := truth.Value(c.o, c.j)
			if opt.Accuracy < 1 && opt.Rng.Float64() >= opt.Accuracy {
				v = wrongValue(opt.Rng, v, d.Attrs[c.j].Levels)
			}
			imputed.Objects[c.o].Cells[c.j] = dataset.Known(v)
		}
		res.TasksPosted += end - start
		res.Rounds++
	}

	// Non-candidates may still hold missing cells; they cannot be skyline
	// members, but their values could wrongly dominate candidates. The
	// EDBT'13 model computes the skyline over the imputed candidates
	// against all complete information, so fill the remaining gaps with
	// the domain minimum (they are dominated anyway and the minimum can
	// never add spurious dominance).
	for o := range imputed.Objects {
		for j := range imputed.Objects[o].Cells {
			if imputed.Objects[o].Cells[j].Missing {
				imputed.Objects[o].Cells[j] = dataset.Known(0)
			}
		}
	}

	for _, o := range skyline.BNL(imputed) {
		if candidate[o] {
			res.Skyline = append(res.Skyline, o)
		}
	}
	return res, nil
}

// wrongValue returns a uniformly random domain value different from v.
func wrongValue(rng *rand.Rand, v, levels int) int {
	if levels <= 1 {
		return v
	}
	w := rng.Intn(levels - 1)
	if w >= v {
		w++
	}
	return w
}
