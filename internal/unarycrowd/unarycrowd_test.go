package unarycrowd

import (
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/dataset"
	"bayescrowd/internal/metrics"
	"bayescrowd/internal/skyline"
)

func TestPerfectWorkersExactSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := dataset.GenIndependent(rng, 150, 4, 8)
	inc := truth.InjectMissing(rng, 0.15)
	res, err := Run(inc, truth, Options{Accuracy: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := skyline.BNL(truth)
	if !reflect.DeepEqual(res.Skyline, want) {
		t.Fatalf("Skyline = %v, want %v", res.Skyline, want)
	}
	if res.TasksPosted == 0 {
		t.Fatal("no unary tasks posted despite missing cells")
	}
}

func TestTaskCountEqualsCandidateMissingCells(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := dataset.GenIndependent(rng, 100, 3, 8)
	inc := truth.InjectMissing(rng, 0.2)
	res, err := Run(inc, truth, Options{Accuracy: 1, TasksPerRound: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Unary questioning cannot skip any candidate cell: tasks must cover
	// every missing cell of every non-pruned object, and rounds must be
	// ⌈tasks/7⌉.
	totalMissing := 0
	for i := range inc.Objects {
		for _, c := range inc.Objects[i].Cells {
			if c.Missing {
				totalMissing++
			}
		}
	}
	if res.TasksPosted > totalMissing {
		t.Fatalf("posted %d tasks for %d missing cells", res.TasksPosted, totalMissing)
	}
	wantRounds := (res.TasksPosted + 6) / 7
	if res.Rounds != wantRounds {
		t.Fatalf("Rounds = %d, want %d", res.Rounds, wantRounds)
	}
}

func TestDominatedObjectsNotAsked(t *testing.T) {
	// o2 is completely dominated by o1 on complete evidence; its missing
	// cell must not cost a task. o3's missing cell must.
	d := dataset.New([]dataset.Attribute{{Name: "a", Levels: 10}, {Name: "b", Levels: 10}, {Name: "c", Levels: 10}})
	d.MustAppend(dataset.Object{ID: "o1", Cells: []dataset.Cell{dataset.Known(9), dataset.Known(9), dataset.Known(9)}})
	d.MustAppend(dataset.Object{ID: "o2", Cells: []dataset.Cell{dataset.Known(1), dataset.Known(1), dataset.Known(1)}})
	d.MustAppend(dataset.Object{ID: "o3", Cells: []dataset.Cell{dataset.Known(8), dataset.Unknown(), dataset.Known(9)}})

	truth := d.Clone()
	truth.Objects[2].Cells[1] = dataset.Known(7)
	// o2 complete and dominated: pruned. But wait — o2 is complete, so
	// it has no missing cell anyway; give the test teeth with o4.
	d.MustAppend(dataset.Object{ID: "o4", Cells: []dataset.Cell{dataset.Known(0), dataset.Unknown(), dataset.Known(0)}})
	truth.MustAppend(dataset.Object{ID: "o4", Cells: []dataset.Cell{dataset.Known(0), dataset.Known(3), dataset.Known(0)}})

	res, err := Run(d, truth, Options{Accuracy: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Hmm: o4 is incomplete, so the complete-evidence pruning cannot
	// remove it (its missing b could be 9). Tasks: o3.b and o4.b → 2.
	if res.TasksPosted != 2 {
		t.Fatalf("TasksPosted = %d, want 2", res.TasksPosted)
	}
	want := skyline.BNL(truth)
	if !reflect.DeepEqual(res.Skyline, want) {
		t.Fatalf("Skyline = %v, want %v", res.Skyline, want)
	}
}

func TestImperfectWorkersDegradeAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := dataset.GenCorrelated(rng, 200, 4, 8, 0.5)
	inc := truth.InjectMissing(rng, 0.2)
	want := skyline.BNL(truth)

	perfect, err := Run(inc, truth, Options{Accuracy: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fPerfect := metrics.F1(perfect.Skyline, want); fPerfect != 1 {
		t.Fatalf("perfect-worker F1 = %v", fPerfect)
	}
	// The paper's critique: unary imputation is brittle under worker
	// error (one answer per cell, no majority). A single seed can get
	// lucky, so average over several worker populations.
	sum := 0.0
	const seeds = 10
	for s := int64(0); s < seeds; s++ {
		sloppy, err := Run(inc, truth, Options{Accuracy: 0.7, Rng: rand.New(rand.NewSource(40 + s))})
		if err != nil {
			t.Fatal(err)
		}
		sum += metrics.F1(sloppy.Skyline, want)
	}
	if mean := sum / seeds; mean >= 0.999 {
		t.Fatalf("mean sloppy-worker F1 = %v; unary imputation should degrade", mean)
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth := dataset.GenIndependent(rng, 10, 2, 4)
	inc := truth.InjectMissing(rng, 0.3)
	if _, err := Run(inc, truth, Options{Accuracy: 1.5}); err == nil {
		t.Error("accepted accuracy > 1")
	}
	if _, err := Run(inc, truth, Options{Accuracy: 0.5}); err == nil {
		t.Error("accepted imperfect workers without Rng")
	}
	other := dataset.GenIndependent(rng, 5, 2, 4)
	if _, err := Run(inc, other, Options{Accuracy: 1}); err == nil {
		t.Error("accepted mismatched truth shape")
	}
}

func TestCompleteDataNeedsNoTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	truth := dataset.GenIndependent(rng, 80, 3, 6)
	res, err := Run(truth, truth, Options{Accuracy: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksPosted != 0 || res.Rounds != 0 {
		t.Fatalf("complete data cost %d tasks in %d rounds", res.TasksPosted, res.Rounds)
	}
	if !reflect.DeepEqual(res.Skyline, skyline.BNL(truth)) {
		t.Fatal("wrong skyline on complete data")
	}
}
