package crowd

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/ctable"
)

func someTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Expr: ctable.LTConst(ctable.Var{Obj: i % 2, Attr: i % 2}, 5)}
	}
	return tasks
}

func TestUnreliableZeroFaultsIsTransparent(t *testing.T) {
	truth := truthTable()
	tasks := someTasks(6)
	direct := mustPost(t, NewSimulated(truth, 1.0, nil), tasks)
	wrapped := mustPost(t, NewUnreliable(NewSimulated(truth, 1.0, nil), 0, 0, 0, nil), tasks)
	if !reflect.DeepEqual(direct, wrapped) {
		t.Fatalf("zero-fault wrapper changed answers:\n%v\n%v", direct, wrapped)
	}
}

func TestUnreliableDropsAreDeterministic(t *testing.T) {
	truth := truthTable()
	tasks := someTasks(8)
	run := func() ([][]Answer, Stats, int) {
		u := NewUnreliable(NewSimulated(truth, 1.0, nil), 0.3, 0, 0, rand.New(rand.NewSource(11)))
		var rounds [][]Answer
		for i := 0; i < 20; i++ {
			rounds = append(rounds, mustPost(t, u, tasks))
		}
		return rounds, u.Stats, u.Dropped
	}
	r1, s1, d1 := run()
	r2, s2, d2 := run()
	if !reflect.DeepEqual(r1, r2) || s1 != s2 || d1 != d2 {
		t.Fatal("same seed produced a different fault schedule")
	}
	if d1 == 0 {
		t.Fatal("drop probability 0.3 dropped nothing in 160 tasks")
	}
	if s1.TasksPosted != 160 || s1.TasksAnswered != 160-d1 {
		t.Fatalf("stats = %+v with %d dropped", s1, d1)
	}
	if s1.Rounds+s1.PartialRounds != 20 || s1.PartialRounds == 0 {
		t.Fatalf("round split = %+v", s1)
	}
}

func TestUnreliableOutage(t *testing.T) {
	truth := truthTable()
	u := NewUnreliable(NewSimulated(truth, 1.0, nil), 0, 0.5, 0, rand.New(rand.NewSource(3)))
	tasks := someTasks(4)
	sawOutage, sawRound := false, false
	for i := 0; i < 40; i++ {
		answers, err := u.Post(tasks)
		if err != nil {
			if !errors.Is(err, ErrOutage) {
				t.Fatalf("outage error = %v", err)
			}
			if len(answers) != 0 {
				t.Fatal("outage round delivered answers")
			}
			sawOutage = true
		} else {
			if len(answers) != len(tasks) {
				t.Fatal("drop-free success round lost answers")
			}
			sawRound = true
		}
	}
	if !sawOutage || !sawRound {
		t.Fatalf("outage=%v success=%v after 40 rounds at p=0.5", sawOutage, sawRound)
	}
	if u.Stats.FailedRounds != u.Outages || u.Stats.FailedRounds+u.Stats.Rounds != 40 {
		t.Fatalf("stats = %+v, outages = %d", u.Stats, u.Outages)
	}
}

func TestUnreliableSpam(t *testing.T) {
	truth := truthTable()
	// Perfect inner workers; any wrong relation must come from the
	// spammer injection.
	u := NewUnreliable(NewSimulated(truth, 1.0, nil), 0, 0, 0.5, rand.New(rand.NewSource(7)))
	task := Task{Expr: ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)} // truth LT
	wrong := 0
	for i := 0; i < 300; i++ {
		if mustPost(t, u, []Task{task})[0].Rel != ctable.LT {
			wrong++
		}
	}
	// A spammed answer is uniform over 3 relations, so ~1/3 of spammed
	// answers still look right: expect ≈ 300·0.5·(2/3) = 100 wrong.
	if wrong < 60 || wrong > 140 {
		t.Fatalf("wrong answers = %d, want ~100", wrong)
	}
	if u.Spammed == 0 || u.Dropped != 0 || u.Outages != 0 {
		t.Fatalf("injections: spam=%d drop=%d outage=%d", u.Spammed, u.Dropped, u.Outages)
	}
}

func TestUnreliableValidation(t *testing.T) {
	inner := NewSimulated(truthTable(), 1.0, nil)
	for _, fn := range []func(){
		func() { NewUnreliable(inner, -0.1, 0, 0, nil) },
		func() { NewUnreliable(inner, 0, 1.0, 0, nil) }, // 1.0 would never terminate
		func() { NewUnreliable(inner, 0.2, 0, 0, nil) }, // faults need an Rng
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewUnreliable did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSimulatedRejectsImperfectWorkersWithoutRng(t *testing.T) {
	// The documented contract says Rng is required when Accuracy < 1;
	// faking perfect workers instead would silently skew experiments.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewSimulated(accuracy<1, nil rng) did not panic")
			}
		}()
		NewSimulated(truthTable(), 0.8, nil)
	}()

	// Struct-literal construction bypasses the constructor; Post must
	// refuse the round rather than answer with the truth.
	p := &Simulated{Truth: truthTable(), Accuracy: 0.8, WorkersPerTask: 3}
	answers, err := p.Post(someTasks(2))
	if err == nil || len(answers) != 0 {
		t.Fatalf("misconfigured Post: answers=%v err=%v", answers, err)
	}
	if p.Stats.FailedRounds != 1 || p.Stats.TasksAnswered != 0 {
		t.Fatalf("stats = %+v", p.Stats)
	}
}

// TestUnreliableDropSpamPrecedence pins the injection schedule's draw
// order by replaying it against an independent Rng with the same seed:
// one drop draw and one spam draw per answer — consumed whether or not
// the drop fires — with the drop winning when both fire. The regression
// it guards: the spam draw used to be skipped for dropped answers, so a
// drop shifted every later task's fault schedule.
func TestUnreliableDropSpamPrecedence(t *testing.T) {
	truth := truthTable()
	tasks := someTasks(40)
	const seed, dropP, spamP = 29, 0.4, 0.4

	u := NewUnreliable(NewSimulated(truth, 1.0, nil), dropP, 0, spamP, rand.New(rand.NewSource(seed)))
	got := mustPost(t, u, tasks)

	// Oracle replay: OutageProb is zero, so no outage draw; then per
	// answer a drop draw, a spam draw, and — only for kept, spammed
	// answers — one relation draw.
	oracle := rand.New(rand.NewSource(seed))
	var want []Answer
	bothFired, dropped, spammed := 0, 0, 0
	for _, task := range tasks {
		drop := oracle.Float64() < dropP
		spam := oracle.Float64() < spamP
		if drop && spam {
			bothFired++
		}
		if drop {
			dropped++
			continue
		}
		rel := ctable.TrueRel(truth, task.Expr)
		if spam {
			spammed++
			rel = []ctable.Rel{ctable.LT, ctable.EQ, ctable.GT}[oracle.Intn(3)]
		}
		want = append(want, Answer{Task: task, Rel: rel})
	}
	if bothFired == 0 {
		t.Fatalf("seed %d no longer triggers drop and spam on the same answer; pick another", seed)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fault schedule diverged from the documented draw order\n got: %v\nwant: %v", got, want)
	}
	if u.Dropped != dropped || u.Spammed != spammed {
		t.Fatalf("counters: dropped=%d spammed=%d, want %d/%d (drop must win when both fire)",
			u.Dropped, u.Spammed, dropped, spammed)
	}
}

// TestUnreliableDelaysDeterministicAndBounded checks the PostAsync
// latency model: every delay lies in [MinDelay, MaxDelay], the schedule
// reproduces under the seed, and a degenerate range is a constant
// delay needing no Rng.
func TestUnreliableDelaysDeterministicAndBounded(t *testing.T) {
	truth := truthTable()
	tasks := someTasks(12)
	run := func() []int {
		u := NewUnreliable(NewSimulated(truth, 1.0, nil), 0, 0, 0, rand.New(rand.NewSource(17)))
		u.MinDelay, u.MaxDelay = 1, 5
		var delays []int
		for round := 0; round < 10; round++ {
			answers, err := u.PostAsync(tasks)
			if err != nil {
				t.Fatalf("PostAsync: %v", err)
			}
			for _, a := range answers {
				if a.Delay < 1 || a.Delay > 5 {
					t.Fatalf("delay %d outside [1,5]", a.Delay)
				}
				delays = append(delays, a.Delay)
			}
		}
		return delays
	}
	d1, d2 := run(), run()
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("same seed produced a different delay schedule")
	}
	spread := map[int]bool{}
	for _, d := range d1 {
		spread[d] = true
	}
	if len(spread) < 2 {
		t.Fatalf("120 draws over [1,5] produced only %v", spread)
	}

	// Constant delay: no Rng required, every answer stamped MinDelay.
	u := NewUnreliable(NewSimulated(truth, 1.0, nil), 0, 0, 0, nil)
	u.MinDelay, u.MaxDelay = 3, 3
	answers, err := u.PostAsync(tasks)
	if err != nil {
		t.Fatalf("PostAsync: %v", err)
	}
	for _, a := range answers {
		if a.Delay != 3 {
			t.Fatalf("constant-delay answer stamped %d, want 3", a.Delay)
		}
	}

	// Misconfigurations panic loudly.
	for _, fn := range []func(){
		func() {
			bad := NewUnreliable(NewSimulated(truth, 1.0, nil), 0, 0, 0, nil)
			bad.MinDelay = -1
			bad.PostAsync(tasks)
		},
		func() {
			bad := NewUnreliable(NewSimulated(truth, 1.0, nil), 0, 0, 0, nil)
			bad.MinDelay, bad.MaxDelay = 0, 4
			bad.PostAsync(tasks)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid PostAsync configuration did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestPostDelayedAdaptsSynchronousPlatforms checks the adapter: a plain
// Platform's answers come back stamped with delay zero, while an
// AsyncPlatform's own latency model is used.
func TestPostDelayedAdaptsSynchronousPlatforms(t *testing.T) {
	truth := truthTable()
	tasks := someTasks(5)

	sync := NewSimulated(truth, 1.0, nil)
	delayed, err := PostDelayed(sync, tasks)
	if err != nil {
		t.Fatalf("PostDelayed: %v", err)
	}
	if len(delayed) != len(tasks) {
		t.Fatalf("adapter returned %d answers for %d tasks", len(delayed), len(tasks))
	}
	for _, a := range delayed {
		if a.Delay != 0 {
			t.Fatalf("synchronous platform answer stamped delay %d, want 0", a.Delay)
		}
	}

	async := NewUnreliable(NewSimulated(truth, 1.0, nil), 0, 0, 0, nil)
	async.MinDelay, async.MaxDelay = 2, 2
	delayed, err = PostDelayed(async, tasks)
	if err != nil {
		t.Fatalf("PostDelayed: %v", err)
	}
	for _, a := range delayed {
		if a.Delay != 2 {
			t.Fatalf("async platform answer stamped delay %d, want 2 (its own model)", a.Delay)
		}
	}
}
