package crowd

import (
	"errors"
	"fmt"
	"math/rand"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/obs"
)

// ErrOutage is the round-level error Unreliable returns when the whole
// platform is down for a round: no tasks were listed and no answers
// arrived. Callers should retry the round (with backoff) or degrade.
var ErrOutage = errors.New("crowd: platform outage: round failed")

// Unreliable wraps any Platform with seeded, deterministic fault
// injection — the failure modes a live marketplace (the paper's §7.5 AMT
// deployment) exhibits and the simulators hide:
//
//   - round outages: with probability OutageProb a Post call fails
//     outright (ErrOutage), delivering nothing;
//   - task drops: each answer is lost with probability DropProb (an
//     expired HIT, a straggler past the deadline) — Post then returns a
//     partial answer set with a nil error;
//   - spammers: each surviving answer is replaced with a uniformly
//     random relation with probability SpamProb (a worker answering
//     without reading the question);
//   - latency: through PostAsync, each delivered answer is stamped with
//     a seeded arrival delay drawn uniformly from [MinDelay, MaxDelay]
//     ticks — the straggling-worker model the streaming crowd loop runs
//     against.
//
// All draws come from the wrapper's own Rng in a fixed order — one
// outage draw per round, then one drop and one spam draw per answer in
// answer order (the spam draw is consumed even when the drop fires, so
// the schedule downstream of a task never depends on that task's fate),
// then one delay draw per delivered answer in delivery order (PostAsync
// only) — independent of the inner platform's randomness, so a fixed
// seed reproduces the exact same fault schedule run after run.
//
// When a drop and a spam fire on the same answer, the drop wins: a
// dropped answer never reaches the requester, spammy or not, so it
// counts in Dropped only and no spam event is emitted.
type Unreliable struct {
	Inner Platform
	// DropProb is the per-task probability the answer never arrives.
	DropProb float64
	// OutageProb is the per-round probability the whole Post call fails.
	OutageProb float64
	// SpamProb is the per-task probability a delivered answer is replaced
	// by a uniformly random relation.
	SpamProb float64
	// MinDelay and MaxDelay bound the per-answer arrival delay PostAsync
	// draws, in logical ticks (inclusive). Both zero — the default —
	// models a prompt crowd: every answer lands within its posting tick.
	// MaxDelay below MinDelay is treated as a constant MinDelay-tick
	// delay.
	MinDelay int
	MaxDelay int
	// Rng drives the injection; required when any probability is
	// positive or the delay range spans more than one value.
	Rng *rand.Rand

	// Stats describes the rounds as the requester observed them through
	// the unreliable channel (the inner platform keeps its own books).
	Stats Stats
	// Dropped, Spammed and Outages count the injected faults.
	Dropped int
	Spammed int
	Outages int

	// Obs, when non-nil, receives a trace event per injected fault
	// (fault.outage, fault.drop, fault.spam). Post runs on the
	// framework's sequential round loop and the injection schedule is a
	// pure function of the wrapper's seed, so the events are
	// deterministic.
	Obs *obs.Recorder
}

// NewUnreliable wraps inner with fault injection. Probabilities must be
// in [0,1); rng is required when any of them is positive.
func NewUnreliable(inner Platform, dropProb, outageProb, spamProb float64, rng *rand.Rand) *Unreliable {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", dropProb}, {"outage", outageProb}, {"spam", spamProb}} {
		if p.v < 0 || p.v >= 1 {
			panic(fmt.Sprintf("crowd: %s probability %v outside [0,1)", p.name, p.v))
		}
	}
	if (dropProb > 0 || outageProb > 0 || spamProb > 0) && rng == nil {
		panic("crowd: fault injection needs an Rng")
	}
	return &Unreliable{Inner: inner, DropProb: dropProb, OutageProb: outageProb, SpamProb: spamProb, Rng: rng}
}

// Post forwards the batch to the inner platform and injects the
// configured faults into the result. With all probabilities zero it is a
// transparent proxy: the inner answers pass through untouched.
func (u *Unreliable) Post(tasks []Task) ([]Answer, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	if u.OutageProb > 0 && u.Rng.Float64() < u.OutageProb {
		u.Outages++
		u.Obs.Emit(obs.Event{Kind: obs.KindFaultOutage, N: len(tasks)})
		u.Stats.record(len(tasks), 0, ErrOutage)
		return nil, ErrOutage
	}
	answers, err := u.Inner.Post(tasks)
	if err != nil {
		u.Stats.record(len(tasks), len(answers), err)
		return answers, err
	}
	kept := answers[:0]
	for _, a := range answers {
		// Both draws are consumed for every answer, dropped or not, so
		// the injection schedule of the answers after this one is a pure
		// function of their position — a drop firing here can never
		// shift a later task's spam draw. When both fire the drop wins
		// (a dropped answer never reaches the requester): the answer
		// counts in Dropped only, and the spam relation is not drawn.
		dropped := u.DropProb > 0 && u.Rng.Float64() < u.DropProb
		spammed := u.SpamProb > 0 && u.Rng.Float64() < u.SpamProb
		if dropped {
			u.Dropped++
			if u.Obs.On() {
				u.Obs.Emit(obs.Event{Kind: obs.KindFaultDrop, Task: a.Task.Expr.String()})
			}
			continue
		}
		if spammed {
			u.Spammed++
			a.Rel = []ctable.Rel{ctable.LT, ctable.EQ, ctable.GT}[u.Rng.Intn(3)]
			if u.Obs.On() {
				u.Obs.Emit(obs.Event{Kind: obs.KindFaultSpam, Task: a.Task.Expr.String(), Rel: a.Rel.String()})
			}
		}
		kept = append(kept, a)
	}
	u.Stats.record(len(tasks), len(kept), nil)
	return kept, nil
}

// PostAsync posts the batch through the same fault pipeline as Post and
// stamps every delivered answer with a seeded arrival delay, drawn
// uniformly from [MinDelay, MaxDelay] in delivery order after the
// round's drop/spam draws. The delay draws consume the same Rng, so a
// synchronous Post and a PostAsync run are different schedules — pick
// one channel per platform instance.
func (u *Unreliable) PostAsync(tasks []Task) ([]DelayedAnswer, error) {
	if u.MinDelay < 0 {
		panic(fmt.Sprintf("crowd: negative MinDelay %d", u.MinDelay))
	}
	if u.MaxDelay > u.MinDelay && u.Rng == nil {
		panic("crowd: a delay range needs an Rng")
	}
	answers, err := u.Post(tasks)
	out := make([]DelayedAnswer, len(answers))
	for i, a := range answers {
		d := u.MinDelay
		if u.MaxDelay > u.MinDelay {
			d += u.Rng.Intn(u.MaxDelay - u.MinDelay + 1)
		}
		out[i] = DelayedAnswer{Answer: a, Delay: d}
	}
	return out, err
}
