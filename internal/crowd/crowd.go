// Package crowd models the crowdsourcing platform of the paper's
// crowdsourcing phase (§6): tasks are triple-choice micro-questions
// ("is the left operand larger than, smaller than, or equal to the right
// operand?"), posted in batches (iterations), each answered by several
// workers whose votes are aggregated by majority.
//
// The live marketplace (AMT in the paper's §7.5) is replaced by a
// simulator that answers from the hidden ground-truth dataset with a
// configurable worker accuracy — exactly the worker model the paper's own
// offline experiments use (accuracy 0.7–1.0, three workers per task,
// majority voting).
//
// Real marketplaces are lossy: HITs expire unanswered, workers straggle,
// and the platform itself has outages. The Platform contract is therefore
// fallible — Post may return a partial answer set and/or a round-level
// error — and the Unreliable wrapper injects exactly those failure modes
// (seeded, deterministic) into any backend for testing and benchmarking.
package crowd

import (
	"fmt"
	"math/rand"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
)

// Task is one crowd micro-question, identified by the expression whose
// operand relation it asks about.
type Task struct {
	Expr ctable.Expr
}

// String renders the task as the question a worker sees.
func (t Task) String() string {
	e := t.Expr
	switch e.Kind {
	case ctable.VarLTConst, ctable.VarGTConst:
		return fmt.Sprintf("Is %v larger than, smaller than, or equal to %d?", e.X, e.C)
	case ctable.VarGTVar:
		return fmt.Sprintf("Is %v larger than, smaller than, or equal to %v?", e.X, e.Y)
	default:
		return fmt.Sprintf("Task(%v)", e)
	}
}

// Answer is the aggregated (majority-voted) response to a task: the
// asserted relation between the expression's left and right operands.
type Answer struct {
	Task Task
	Rel  ctable.Rel
}

// Platform is the interface BayesCrowd posts batches of tasks to. One
// Post call is one iteration/round (or one retry of a round) in the
// paper's latency model.
//
// The contract is fallible, because live marketplaces are:
//
//   - Post may return a partial answer set: every returned Answer must
//     correspond to one of the posted tasks, but tasks may go unanswered
//     (an expired HIT, a straggling worker). Unanswered tasks stay
//     undecided and the caller may re-post them later.
//   - Post may return a round-level error (a platform outage). Any
//     answers returned alongside the error arrived before the failure
//     and are valid; the caller may retry the still-unanswered tasks.
//
// A nil error with a full answer set is the fault-free fast path the
// simulated backends take.
type Platform interface {
	Post(tasks []Task) ([]Answer, error)
}

// DelayedAnswer is an Answer stamped with its crowd latency: the number
// of logical ticks after posting until the answer reaches the
// requester. Zero means the answer is available within the posting tick
// (a crowd that keeps up with the window).
type DelayedAnswer struct {
	Answer
	// Delay is the arrival lag in ticks; never negative.
	Delay int
}

// AsyncPlatform is a Platform that also models crowd latency: PostAsync
// returns the same answer set Post would, each answer stamped with a
// seeded arrival delay. The caller owns the clock — it holds each
// answer until Delay ticks have elapsed — so the platform stays a pure,
// deterministic function of its seed and the engine never blocks
// waiting for the crowd.
//
// PostAsync inherits Post's fallibility contract: a partial answer set
// with a nil error means the missing tasks were dropped, and a
// round-level error means the whole call failed (any answers returned
// alongside it are valid).
type AsyncPlatform interface {
	Platform
	PostAsync(tasks []Task) ([]DelayedAnswer, error)
}

// PostDelayed posts the batch through the platform's latency model when
// it has one, and otherwise adapts a synchronous Platform by stamping
// every answer with delay zero — a perfectly prompt crowd. Streaming
// callers use it so any Platform plugs into the asynchronous loop.
func PostDelayed(p Platform, tasks []Task) ([]DelayedAnswer, error) {
	if ap, ok := p.(AsyncPlatform); ok {
		return ap.PostAsync(tasks)
	}
	answers, err := p.Post(tasks)
	out := make([]DelayedAnswer, len(answers))
	for i, a := range answers {
		out[i] = DelayedAnswer{Answer: a}
	}
	return out, err
}

// Stats tracks the monetary-cost and latency metrics the paper reports —
// total tasks posted (each costs a fixed amount, so #tasks is the
// monetary cost) and rounds used (#rounds is the latency) — split by
// round outcome so that lossy rounds are visible: a round counts in
// exactly one of Rounds (fully answered), PartialRounds (some answers
// lost) or FailedRounds (round-level error).
type Stats struct {
	// TasksPosted counts tasks submitted across all Post calls,
	// including those that were never answered.
	TasksPosted int
	// TasksAnswered counts answers actually delivered; the difference
	// TasksPosted-TasksAnswered is the platform's drop count.
	TasksAnswered int
	// Rounds counts fully answered Post calls (empty batches excluded).
	Rounds int
	// PartialRounds counts Post calls that succeeded but delivered fewer
	// answers than tasks.
	PartialRounds int
	// FailedRounds counts Post calls that returned a round-level error.
	FailedRounds int
}

// record books one Post call's outcome into exactly one round bucket.
// It is a no-op for empty batches (an empty batch is not a round).
func (s *Stats) record(posted, answered int, err error) {
	if posted == 0 && err == nil {
		return
	}
	s.TasksPosted += posted
	s.TasksAnswered += answered
	switch {
	case err != nil:
		s.FailedRounds++
	case answered < posted:
		s.PartialRounds++
	default:
		s.Rounds++
	}
}

// Simulated is a Platform that answers from hidden ground truth with
// imperfect workers.
type Simulated struct {
	// Truth is the complete dataset the workers consult.
	Truth *dataset.Dataset
	// Accuracy is the per-worker probability of answering the true
	// relation; a wrong worker picks one of the two other relations
	// uniformly. The paper's default is 1.0.
	Accuracy float64
	// WorkersPerTask is the number of votes per task (paper default 3).
	WorkersPerTask int
	// Rng drives worker errors; required when Accuracy < 1.
	Rng *rand.Rand

	Stats Stats
}

// NewSimulated returns a simulated platform with the paper's defaults:
// three workers per task, majority voting. Imperfect workers need a
// randomness source: accuracy < 1 with a nil rng is rejected rather than
// silently simulating perfect workers.
func NewSimulated(truth *dataset.Dataset, accuracy float64, rng *rand.Rand) *Simulated {
	if accuracy < 0 || accuracy > 1 {
		panic(fmt.Sprintf("crowd: accuracy %v outside [0,1]", accuracy))
	}
	if accuracy < 1 && rng == nil {
		panic(fmt.Sprintf("crowd: accuracy %v needs an Rng to drive worker errors", accuracy))
	}
	return &Simulated{Truth: truth, Accuracy: accuracy, WorkersPerTask: 3, Rng: rng}
}

// Post answers one batch of tasks: every task is voted on by
// WorkersPerTask simulated workers and the majority relation is returned
// (ties broken by the first vote, mirroring a requester accepting the
// earliest answer). The batch counts as one round. The simulator itself
// never drops answers; it fails only on a misconfigured worker model
// (Accuracy < 1 without an Rng — constructing via NewSimulated rules
// this out).
func (s *Simulated) Post(tasks []Task) ([]Answer, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	if s.Accuracy < 1 && s.Rng == nil {
		err := fmt.Errorf("crowd: accuracy %v needs an Rng to drive worker errors", s.Accuracy)
		s.Stats.record(0, 0, err)
		return nil, err
	}

	answers := make([]Answer, len(tasks))
	for i, task := range tasks {
		truth := ctable.TrueRel(s.Truth, task.Expr)
		answers[i] = Answer{Task: task, Rel: s.vote(truth)}
	}
	s.Stats.record(len(tasks), len(answers), nil)
	return answers, nil
}

// vote simulates WorkersPerTask workers and aggregates by majority.
func (s *Simulated) vote(truth ctable.Rel) ctable.Rel {
	workers := s.WorkersPerTask
	if workers < 1 {
		workers = 1
	}
	counts := [3]int{}
	first := truth
	for w := 0; w < workers; w++ {
		ans := s.workerAnswer(truth)
		if w == 0 {
			first = ans
		}
		counts[ans]++
	}
	best := first
	for _, r := range []ctable.Rel{ctable.LT, ctable.EQ, ctable.GT} {
		if counts[r] > counts[best] {
			best = r
		}
	}
	return best
}

// workerAnswer returns one worker's response: the truth with probability
// Accuracy, otherwise one of the two wrong relations uniformly. Post has
// already rejected the Accuracy < 1 && Rng == nil misconfiguration.
func (s *Simulated) workerAnswer(truth ctable.Rel) ctable.Rel {
	if s.Accuracy >= 1 {
		return truth
	}
	if s.Rng.Float64() < s.Accuracy {
		return truth
	}
	wrong := [2]ctable.Rel{}
	k := 0
	for _, r := range []ctable.Rel{ctable.LT, ctable.EQ, ctable.GT} {
		if r != truth {
			wrong[k] = r
			k++
		}
	}
	return wrong[s.Rng.Intn(2)]
}
