// Package crowd models the crowdsourcing platform of the paper's
// crowdsourcing phase (§6): tasks are triple-choice micro-questions
// ("is the left operand larger than, smaller than, or equal to the right
// operand?"), posted in batches (iterations), each answered by several
// workers whose votes are aggregated by majority.
//
// The live marketplace (AMT in the paper's §7.5) is replaced by a
// simulator that answers from the hidden ground-truth dataset with a
// configurable worker accuracy — exactly the worker model the paper's own
// offline experiments use (accuracy 0.7–1.0, three workers per task,
// majority voting).
package crowd

import (
	"fmt"
	"math/rand"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
)

// Task is one crowd micro-question, identified by the expression whose
// operand relation it asks about.
type Task struct {
	Expr ctable.Expr
}

// String renders the task as the question a worker sees.
func (t Task) String() string {
	e := t.Expr
	switch e.Kind {
	case ctable.VarLTConst, ctable.VarGTConst:
		return fmt.Sprintf("Is %v larger than, smaller than, or equal to %d?", e.X, e.C)
	case ctable.VarGTVar:
		return fmt.Sprintf("Is %v larger than, smaller than, or equal to %v?", e.X, e.Y)
	default:
		return fmt.Sprintf("Task(%v)", e)
	}
}

// Answer is the aggregated (majority-voted) response to a task: the
// asserted relation between the expression's left and right operands.
type Answer struct {
	Task Task
	Rel  ctable.Rel
}

// Platform is the interface BayesCrowd posts batches of tasks to. One
// Post call is one iteration/round in the paper's latency model.
type Platform interface {
	Post(tasks []Task) []Answer
}

// Stats tracks the monetary-cost and latency metrics the paper reports:
// total tasks posted (each costs a fixed amount, so #tasks is the
// monetary cost) and rounds used (#rounds is the latency).
type Stats struct {
	TasksPosted int
	Rounds      int
}

// Simulated is a Platform that answers from hidden ground truth with
// imperfect workers.
type Simulated struct {
	// Truth is the complete dataset the workers consult.
	Truth *dataset.Dataset
	// Accuracy is the per-worker probability of answering the true
	// relation; a wrong worker picks one of the two other relations
	// uniformly. The paper's default is 1.0.
	Accuracy float64
	// WorkersPerTask is the number of votes per task (paper default 3).
	WorkersPerTask int
	// Rng drives worker errors; required when Accuracy < 1.
	Rng *rand.Rand

	Stats Stats
}

// NewSimulated returns a simulated platform with the paper's defaults:
// three workers per task, majority voting.
func NewSimulated(truth *dataset.Dataset, accuracy float64, rng *rand.Rand) *Simulated {
	if accuracy < 0 || accuracy > 1 {
		panic(fmt.Sprintf("crowd: accuracy %v outside [0,1]", accuracy))
	}
	return &Simulated{Truth: truth, Accuracy: accuracy, WorkersPerTask: 3, Rng: rng}
}

// Post answers one batch of tasks: every task is voted on by
// WorkersPerTask simulated workers and the majority relation is returned
// (ties broken by the first vote, mirroring a requester accepting the
// earliest answer). The batch counts as one round.
func (s *Simulated) Post(tasks []Task) []Answer {
	if len(tasks) == 0 {
		return nil
	}
	s.Stats.Rounds++
	s.Stats.TasksPosted += len(tasks)

	answers := make([]Answer, len(tasks))
	for i, task := range tasks {
		truth := ctable.TrueRel(s.Truth, task.Expr)
		answers[i] = Answer{Task: task, Rel: s.vote(truth)}
	}
	return answers
}

// vote simulates WorkersPerTask workers and aggregates by majority.
func (s *Simulated) vote(truth ctable.Rel) ctable.Rel {
	workers := s.WorkersPerTask
	if workers < 1 {
		workers = 1
	}
	counts := [3]int{}
	first := truth
	for w := 0; w < workers; w++ {
		ans := s.workerAnswer(truth)
		if w == 0 {
			first = ans
		}
		counts[ans]++
	}
	best := first
	for _, r := range []ctable.Rel{ctable.LT, ctable.EQ, ctable.GT} {
		if counts[r] > counts[best] {
			best = r
		}
	}
	return best
}

// workerAnswer returns one worker's response: the truth with probability
// Accuracy, otherwise one of the two wrong relations uniformly.
func (s *Simulated) workerAnswer(truth ctable.Rel) ctable.Rel {
	if s.Accuracy >= 1 || s.Rng == nil {
		return truth
	}
	if s.Rng.Float64() < s.Accuracy {
		return truth
	}
	wrong := [2]ctable.Rel{}
	k := 0
	for _, r := range []ctable.Rel{ctable.LT, ctable.EQ, ctable.GT} {
		if r != truth {
			wrong[k] = r
			k++
		}
	}
	return wrong[s.Rng.Intn(2)]
}
