package crowd

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
)

func truthTable() *dataset.Dataset {
	return dataset.FromRows(
		[]dataset.Attribute{{Name: "a", Levels: 10}, {Name: "b", Levels: 10}},
		[][]int{{3, 7}, {5, 7}},
	)
}

// mustPost fails the test on a round-level error — the fault-free
// platforms under test must never produce one.
func mustPost(tb testing.TB, p Platform, tasks []Task) []Answer {
	tb.Helper()
	answers, err := p.Post(tasks)
	if err != nil {
		tb.Fatalf("Post: %v", err)
	}
	return answers
}

func TestPerfectWorkersAnswerTruth(t *testing.T) {
	truth := truthTable()
	p := NewSimulated(truth, 1.0, nil)
	tasks := []Task{
		{Expr: ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)},                         // 3 vs 5 → LT
		{Expr: ctable.GTConst(ctable.Var{Obj: 1, Attr: 0}, 5)},                         // 5 vs 5 → EQ
		{Expr: ctable.GTVar(ctable.Var{Obj: 1, Attr: 0}, ctable.Var{Obj: 0, Attr: 0})}, // 5 vs 3 → GT
	}
	answers := mustPost(t, p, tasks)
	want := []ctable.Rel{ctable.LT, ctable.EQ, ctable.GT}
	for i, a := range answers {
		if a.Rel != want[i] {
			t.Errorf("answer %d = %v, want %v", i, a.Rel, want[i])
		}
		if a.Task != tasks[i] {
			t.Errorf("answer %d task mismatch", i)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	p := NewSimulated(truthTable(), 1.0, nil)
	task := Task{Expr: ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)}
	mustPost(t, p, []Task{task, task})
	mustPost(t, p, []Task{task})
	mustPost(t, p, nil) // empty batch is not a round
	if p.Stats.TasksPosted != 3 {
		t.Errorf("TasksPosted = %d, want 3", p.Stats.TasksPosted)
	}
	if p.Stats.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", p.Stats.Rounds)
	}
}

func TestMajorityVotingBeatsSingleWorker(t *testing.T) {
	truth := truthTable()
	task := Task{Expr: ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)} // truth LT
	const trials = 20000
	const accuracy = 0.8

	count := func(workers int) float64 {
		p := NewSimulated(truth, accuracy, rand.New(rand.NewSource(77)))
		p.WorkersPerTask = workers
		correct := 0
		for i := 0; i < trials; i++ {
			if mustPost(t, p, []Task{task})[0].Rel == ctable.LT {
				correct++
			}
		}
		return float64(correct) / trials
	}

	single := count(1)
	majority := count(3)
	if math.Abs(single-accuracy) > 0.02 {
		t.Errorf("single-worker accuracy = %v, want ~%v", single, accuracy)
	}
	if majority <= single {
		t.Errorf("3-worker majority accuracy %v not better than single %v", majority, single)
	}
	// Analytical check: with w=0.8 and ties broken by the first vote,
	// P(correct) = P(≥2 correct) + P(exactly 1 correct, votes split 1/1/1,
	// first vote correct). P(≥2) = 3·0.8²·0.2 + 0.8³ = 0.896; the 1/1/1
	// split has probability 3!·(0.8·0.1·0.1) = 0.048, first-correct share
	// 1/3 → 0.016. Total 0.912.
	if math.Abs(majority-0.912) > 0.02 {
		t.Errorf("majority accuracy = %v, want ~0.912", majority)
	}
}

func TestZeroAccuracyNeverTruth(t *testing.T) {
	truth := truthTable()
	p := NewSimulated(truth, 0.0, rand.New(rand.NewSource(78)))
	p.WorkersPerTask = 1
	task := Task{Expr: ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)} // truth LT
	for i := 0; i < 200; i++ {
		if mustPost(t, p, []Task{task})[0].Rel == ctable.LT {
			t.Fatal("zero-accuracy worker answered the truth")
		}
	}
}

func TestNewSimulatedValidatesAccuracy(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSimulated(%v) did not panic", bad)
				}
			}()
			NewSimulated(truthTable(), bad, nil)
		}()
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	truth := truthTable()
	task := Task{Expr: ctable.GTConst(ctable.Var{Obj: 1, Attr: 1}, 3)}
	run := func() []ctable.Rel {
		p := NewSimulated(truth, 0.7, rand.New(rand.NewSource(99)))
		var out []ctable.Rel
		for i := 0; i < 50; i++ {
			out = append(out, mustPost(t, p, []Task{task})[0].Rel)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different answers")
		}
	}
}

func TestTaskString(t *testing.T) {
	tk := Task{Expr: ctable.LTConst(ctable.Var{Obj: 4, Attr: 1}, 2)}
	s := tk.String()
	if !strings.Contains(s, "Var(o5,a2)") || !strings.Contains(s, "2") {
		t.Errorf("Task.String = %q", s)
	}
	tv := Task{Expr: ctable.GTVar(ctable.Var{Obj: 4, Attr: 1}, ctable.Var{Obj: 1, Attr: 1})}
	if s := tv.String(); !strings.Contains(s, "Var(o2,a2)") {
		t.Errorf("Task.String = %q", s)
	}
}
