package crowd

import (
	"math"
	"math/rand"
	"testing"

	"bayescrowd/internal/ctable"
)

func TestNewPoolAccuracyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPool(truthTable(), 50, 0.6, 0.9, rng)
	if len(p.Workers) != 50 {
		t.Fatalf("pool size = %d", len(p.Workers))
	}
	for _, w := range p.Workers {
		if w.Accuracy < 0.6 || w.Accuracy > 0.9 {
			t.Fatalf("worker %s accuracy %v outside [0.6,0.9]", w.ID, w.Accuracy)
		}
	}
}

func TestNewPoolValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fn := range []func(){
		func() { NewPool(truthTable(), 0, 0.5, 0.9, rng) },
		func() { NewPool(truthTable(), 5, -0.1, 0.9, rng) },
		func() { NewPool(truthTable(), 5, 0.5, 1.1, rng) },
		func() { NewPool(truthTable(), 5, 0.9, 0.5, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewPool did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRecruitmentThresholdFiltersWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPool(truthTable(), 100, 0.5, 1.0, rng)
	p.MinAccuracy = 0.8
	for _, w := range p.Eligible() {
		if w.Accuracy < 0.8 {
			t.Fatalf("ineligible worker %s recruited", w.ID)
		}
	}
	if m := p.MeanEligibleAccuracy(); m < 0.85 || m > 0.95 {
		t.Fatalf("mean eligible accuracy = %v, want ~0.9", m)
	}
	// Answer a batch; only eligible workers may be used.
	task := Task{Expr: ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)}
	mustPost(t, p, []Task{task, task, task})
	for _, w := range p.Workers {
		if w.Accuracy < 0.8 && w.Answered > 0 {
			t.Fatalf("below-threshold worker %s answered %d tasks", w.ID, w.Answered)
		}
	}
}

func TestRecruitmentImprovesAnswerQuality(t *testing.T) {
	truth := truthTable()
	task := Task{Expr: ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)} // truth LT
	const trials = 8000

	correctRate := func(minAcc float64) float64 {
		p := NewPool(truth, 60, 0.4, 1.0, rand.New(rand.NewSource(3)))
		p.MinAccuracy = minAcc
		correct := 0
		for i := 0; i < trials; i++ {
			if mustPost(t, p, []Task{task})[0].Rel == ctable.LT {
				correct++
			}
		}
		return float64(correct) / trials
	}
	open := correctRate(0)
	selective := correctRate(0.85)
	if selective <= open {
		t.Fatalf("recruitment threshold did not improve accuracy: %v vs %v", selective, open)
	}
	if selective < 0.9 {
		t.Fatalf("selective pool accuracy = %v, want > 0.9", selective)
	}
}

func TestPoolStatsAndNoEligibleFails(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewPool(truthTable(), 10, 0.5, 0.7, rng)
	task := Task{Expr: ctable.GTConst(ctable.Var{Obj: 1, Attr: 0}, 3)}
	mustPost(t, p, []Task{task, task})
	mustPost(t, p, nil)
	if p.Stats.TasksPosted != 2 || p.Stats.TasksAnswered != 2 || p.Stats.Rounds != 1 {
		t.Fatalf("stats = %+v", p.Stats)
	}
	// An over-tight recruitment threshold is a round-level failure, not a
	// crash: no answers, an error, and a failed round on the books.
	p.MinAccuracy = 0.99
	answers, err := p.Post([]Task{task})
	if err == nil || len(answers) != 0 {
		t.Fatalf("empty eligible set: answers=%v err=%v", answers, err)
	}
	if p.Stats.FailedRounds != 1 || p.Stats.TasksPosted != 3 {
		t.Fatalf("stats after failed round = %+v", p.Stats)
	}
}

func TestPoolCyclesWhenVotesExceedWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPool(truthTable(), 2, 1.0, 1.0, rng)
	p.VotesPerTask = 5
	task := Task{Expr: ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)}
	answers := mustPost(t, p, []Task{task})
	if answers[0].Rel != ctable.LT {
		t.Fatalf("perfect pool answered %v", answers[0].Rel)
	}
	total := 0
	for _, w := range p.Workers {
		total += w.Answered
	}
	if total != 5 {
		t.Fatalf("votes = %d, want 5", total)
	}
}

func TestPoolLoadIsSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewPool(truthTable(), 30, 1.0, 1.0, rng)
	task := Task{Expr: ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)}
	for i := 0; i < 300; i++ {
		mustPost(t, p, []Task{task})
	}
	// 900 votes over 30 workers → 30 each on average; nobody should be
	// starved or monopolised under uniform random assignment.
	for _, w := range p.Workers {
		if w.Answered < 10 || w.Answered > 60 {
			t.Fatalf("worker %s answered %d of ~30 expected", w.ID, w.Answered)
		}
	}
	if top := p.TopWorkers(3); len(top) != 3 {
		t.Fatalf("TopWorkers = %v", top)
	}
}

func TestPoolDistinctVotersPerTask(t *testing.T) {
	// With exactly 3 perfect workers and 3 votes, each task must use all
	// three distinct workers.
	rng := rand.New(rand.NewSource(7))
	p := NewPool(truthTable(), 3, 1.0, 1.0, rng)
	task := Task{Expr: ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)}
	mustPost(t, p, []Task{task})
	for _, w := range p.Workers {
		if w.Answered != 1 {
			t.Fatalf("worker %s answered %d times for one 3-vote task", w.ID, w.Answered)
		}
	}
}

func TestMeanEligibleAccuracyEmptyPool(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := NewPool(truthTable(), 5, 0.5, 0.6, rng)
	p.MinAccuracy = 0.99
	if got := p.MeanEligibleAccuracy(); got != 0 {
		t.Fatalf("MeanEligibleAccuracy = %v with empty recruitment", got)
	}
}

// Pool should approach the homogeneous Simulated platform when all worker
// accuracies are equal.
func TestPoolMatchesSimulatedHomogeneous(t *testing.T) {
	truth := truthTable()
	task := Task{Expr: ctable.LTConst(ctable.Var{Obj: 0, Attr: 0}, 5)} // truth LT
	const trials = 20000
	pool := NewPool(truth, 50, 0.8, 0.8, rand.New(rand.NewSource(9)))
	correct := 0
	for i := 0; i < trials; i++ {
		if mustPost(t, pool, []Task{task})[0].Rel == ctable.LT {
			correct++
		}
	}
	got := float64(correct) / trials
	// Analytical 3-vote majority accuracy at w=0.8 (see crowd_test.go).
	if math.Abs(got-0.912) > 0.02 {
		t.Fatalf("pool majority accuracy = %v, want ~0.912", got)
	}
}
