package crowd

import (
	"fmt"
	"math/rand"
	"sort"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
)

// Worker is one simulated crowd worker with an individual accuracy — the
// heterogeneous-marketplace model behind the paper's §7 remark that "in
// practice, we could select the workers whose accuracies being above one
// certain value to answer tasks ... this kind of worker recruitment is
// supported by AMT".
type Worker struct {
	// ID labels the worker for reporting.
	ID string
	// Accuracy is this worker's probability of answering the true
	// relation; a wrong answer picks one of the other two relations
	// uniformly.
	Accuracy float64
	// Answered counts the tasks this worker has voted on.
	Answered int
}

// Pool is a Platform over a heterogeneous worker population: each task is
// assigned to VotesPerTask distinct eligible workers chosen at random, and
// their votes are aggregated by majority. Recruitment mimics AMT's
// qualification filters: only workers at or above MinAccuracy are
// eligible.
type Pool struct {
	Truth        *dataset.Dataset
	Workers      []*Worker
	VotesPerTask int
	// MinAccuracy is the recruitment threshold; workers below it never
	// receive tasks.
	MinAccuracy float64
	Rng         *rand.Rand

	Stats Stats
}

// NewPool builds a pool of n workers whose accuracies are drawn uniformly
// from [minAcc, maxAcc], with the paper's default of three votes per task
// and no recruitment filter.
func NewPool(truth *dataset.Dataset, n int, minAcc, maxAcc float64, rng *rand.Rand) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("crowd: pool of %d workers", n))
	}
	if minAcc < 0 || maxAcc > 1 || minAcc > maxAcc {
		panic(fmt.Sprintf("crowd: accuracy range [%v,%v] invalid", minAcc, maxAcc))
	}
	workers := make([]*Worker, n)
	for i := range workers {
		workers[i] = &Worker{
			ID:       fmt.Sprintf("w%03d", i+1),
			Accuracy: minAcc + rng.Float64()*(maxAcc-minAcc),
		}
	}
	return &Pool{Truth: truth, Workers: workers, VotesPerTask: 3, Rng: rng}
}

// Eligible returns the workers passing the recruitment threshold, in pool
// order.
func (p *Pool) Eligible() []*Worker {
	var out []*Worker
	for _, w := range p.Workers {
		if w.Accuracy >= p.MinAccuracy {
			out = append(out, w)
		}
	}
	return out
}

// Post assigns every task to VotesPerTask distinct eligible workers and
// majority-votes their answers (ties broken by the first vote). It fails
// the round — a recruitment outage, no answers delivered — when the
// recruitment threshold leaves no eligible worker.
func (p *Pool) Post(tasks []Task) ([]Answer, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	eligible := p.Eligible()
	if len(eligible) == 0 {
		err := fmt.Errorf("crowd: recruitment threshold %v leaves no eligible workers", p.MinAccuracy)
		p.Stats.record(len(tasks), 0, err)
		return nil, err
	}

	votes := p.VotesPerTask
	if votes < 1 {
		votes = 1
	}
	// Index scratch for sampling distinct voters per task.
	idx := make([]int, len(eligible))
	for i := range idx {
		idx[i] = i
	}
	answers := make([]Answer, len(tasks))
	for i, task := range tasks {
		truth := ctable.TrueRel(p.Truth, task.Expr)
		counts := [3]int{}
		first := truth
		for v := 0; v < votes; v++ {
			var w *Worker
			if v < len(eligible) {
				// Partial Fisher-Yates: position v gets a uniformly
				// random not-yet-picked worker.
				j := v + p.Rng.Intn(len(eligible)-v)
				idx[v], idx[j] = idx[j], idx[v]
				w = eligible[idx[v]]
			} else {
				// More votes than workers: cycle.
				w = eligible[v%len(eligible)]
			}
			w.Answered++
			ans := p.workerAnswer(w, truth)
			if v == 0 {
				first = ans
			}
			counts[ans]++
		}
		best := first
		for _, r := range []ctable.Rel{ctable.LT, ctable.EQ, ctable.GT} {
			if counts[r] > counts[best] {
				best = r
			}
		}
		answers[i] = Answer{Task: task, Rel: best}
	}
	p.Stats.record(len(tasks), len(answers), nil)
	return answers, nil
}

// workerAnswer mirrors Simulated.workerAnswer for an individual worker.
func (p *Pool) workerAnswer(w *Worker, truth ctable.Rel) ctable.Rel {
	if w.Accuracy >= 1 {
		return truth
	}
	if p.Rng.Float64() < w.Accuracy {
		return truth
	}
	wrong := [2]ctable.Rel{}
	k := 0
	for _, r := range []ctable.Rel{ctable.LT, ctable.EQ, ctable.GT} {
		if r != truth {
			wrong[k] = r
			k++
		}
	}
	return wrong[p.Rng.Intn(2)]
}

// MeanEligibleAccuracy reports the average accuracy of the recruited
// workers — what raising MinAccuracy buys.
func (p *Pool) MeanEligibleAccuracy() float64 {
	eligible := p.Eligible()
	if len(eligible) == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range eligible {
		sum += w.Accuracy
	}
	return sum / float64(len(eligible))
}

// TopWorkers returns the ids of the k workers who answered the most
// tasks, for reporting.
func (p *Pool) TopWorkers(k int) []string {
	ws := append([]*Worker(nil), p.Workers...)
	sort.SliceStable(ws, func(a, b int) bool { return ws[a].Answered > ws[b].Answered })
	if k > len(ws) {
		k = len(ws)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = ws[i].ID
	}
	return out
}
