package iskyline

import (
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/dataset"
	"bayescrowd/internal/metrics"
	"bayescrowd/internal/skyline"
)

func obj(cells ...dataset.Cell) dataset.Object { return dataset.Object{Cells: cells} }

func known(v int) dataset.Cell { return dataset.Known(v) }
func miss() dataset.Cell       { return dataset.Unknown() }

func TestDominatesComparableDimensionsOnly(t *testing.T) {
	cases := []struct {
		name string
		a, b dataset.Object
		want bool
	}{
		{"complete dominance", obj(known(3), known(3)), obj(known(2), known(2)), true},
		{"tie is not dominance", obj(known(2), known(2)), obj(known(2), known(2)), false},
		{"missing dim ignored", obj(known(3), miss()), obj(known(2), known(9)), true},
		{"only shared dim counts", obj(miss(), known(5)), obj(known(9), known(4)), true},
		{"no shared dims incomparable", obj(known(3), miss()), obj(miss(), known(1)), false},
		{"worse on shared dim", obj(known(1), miss()), obj(known(2), known(0)), false},
	}
	for _, tc := range cases {
		if got := Dominates(&tc.a, &tc.b); got != tc.want {
			t.Errorf("%s: Dominates = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCyclicDominanceAllVanish(t *testing.T) {
	// Classic incomplete-data cycle: a ≺ b on dims {1,2}, b ≺ c on
	// {0,1}, c ≺ a on {0,2}; all three are dominated and disappear.
	d := dataset.New([]dataset.Attribute{
		{Name: "x", Levels: 10}, {Name: "y", Levels: 10}, {Name: "z", Levels: 10},
	})
	d.MustAppend(dataset.Object{ID: "a", Cells: []dataset.Cell{miss(), known(5), known(2)}})
	d.MustAppend(dataset.Object{ID: "b", Cells: []dataset.Cell{known(2), known(3), miss()}})
	d.MustAppend(dataset.Object{ID: "c", Cells: []dataset.Cell{known(1), miss(), known(4)}})
	// Check the intended cycle holds.
	if !Dominates(&d.Objects[0], &d.Objects[1]) ||
		!Dominates(&d.Objects[1], &d.Objects[2]) ||
		!Dominates(&d.Objects[2], &d.Objects[0]) {
		t.Fatal("fixture does not form the intended cycle")
	}
	if got := Skyline(d); len(got) != 0 {
		t.Fatalf("Skyline = %v, want empty (cyclic group vanishes)", got)
	}
}

func TestCompleteDataMatchesClassicSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dataset.GenIndependent(rng, 200, 4, 8)
	if got, want := Skyline(d), skyline.BNL(d); !reflect.DeepEqual(got, want) {
		t.Fatalf("complete-data ISkyline = %v, want classic %v", got, want)
	}
}

// TestMachineOnlyIsStructurallyOff quantifies the paper's motivation: the
// incomplete-data definition answers a different question, so even with
// zero worker cost its result diverges badly from the complete-data
// ground truth whenever values are missing. (The divergence is not even
// monotone in the missing rate: ignoring missing dimensions makes
// spurious dominance easy at low rates and incomparability widespread at
// high rates.)
func TestMachineOnlyIsStructurallyOff(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := dataset.GenIndependent(rng, 400, 5, 8)
	want := skyline.BNL(truth)

	f1At := func(rate float64) float64 {
		inc := truth.InjectMissing(rand.New(rand.NewSource(3)), rate)
		return metrics.F1(Skyline(inc), want)
	}
	for _, rate := range []float64{0.05, 0.1, 0.2, 0.3} {
		if f1 := f1At(rate); f1 > 0.5 {
			t.Fatalf("machine-only F1 at %.0f%% missing = %v; expected structural divergence (< 0.5)", rate*100, f1)
		}
	}
}
