// Package iskyline implements the machine-only skyline over incomplete
// data of Khalefa, Mokbel and Levandoski ("Skyline Query Processing for
// Incomplete Data", ICDE 2008) — reference [5] of the paper.
//
// That line of work redefines dominance for incomplete data: objects are
// compared only on their *mutually observed* dimensions, and the missing
// information is ignored. The paper's §2 stresses that this definition
// answers a different question than BayesCrowd's (which keeps the
// complete-data dominance semantics and resolves the unknowns with the
// crowd); the two produce different result sets by design. The motivation
// benchmark quantifies the difference: scored against the complete-data
// ground truth, the machine-only result is structurally off — no budget
// can fix a definition — while BayesCrowd converges as budget grows.
//
// The package implements the ISkyline computation with the virtual-point
// bucketing of the original paper replaced by a direct pairwise sweep
// with cyclic-dominance handling; at library scale the asymptotics of the
// original optimisation are irrelevant, its semantics are what matters.
package iskyline

import (
	"sort"

	"bayescrowd/internal/dataset"
)

// Dominates reports incomplete-data dominance: a ≺ b iff on the
// dimensions where BOTH values are observed, a is never worse and at
// least once strictly better. Objects with no mutually observed dimension
// are incomparable.
func Dominates(a, b *dataset.Object) bool {
	better := false
	comparable := false
	for j := range a.Cells {
		ca, cb := a.Cells[j], b.Cells[j]
		if ca.Missing || cb.Missing {
			continue
		}
		comparable = true
		if ca.Value < cb.Value {
			return false
		}
		if ca.Value > cb.Value {
			better = true
		}
	}
	return comparable && better
}

// Skyline returns the objects not incomplete-dominated by any other
// object, in ascending index order.
//
// Incomplete-data dominance is not transitive and admits cycles (a ≺ b,
// b ≺ c, c ≺ a); following Khalefa et al., an object is excluded iff some
// other object dominates it, even if that dominator is itself dominated —
// cyclically dominated groups therefore vanish entirely, one of the
// semantic quirks the BayesCrowd paper's Definition 1 discussion points
// at.
func Skyline(d *dataset.Dataset) []int {
	var out []int
	for i := range d.Objects {
		dominated := false
		for k := range d.Objects {
			if k != i && Dominates(&d.Objects[k], &d.Objects[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
