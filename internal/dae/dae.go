// Package dae implements a denoising autoencoder for missing-value
// distribution estimation — the alternative preprocessing model the paper
// names in §3 ("one can alternatively employ autoencoder architectures
// [Gondara & Wang, 2017] to capture complex distributions") as a
// replacement for the Bayesian network.
//
// The model is a single-hidden-layer network over one-hot encoded
// attributes: corrupt a complete row by masking random attributes, feed
// the remaining one-hots, and train the per-attribute softmax outputs to
// reconstruct the full row (cross-entropy loss, plain SGD). At query time
// an object's observed cells go in and the softmax block of each missing
// attribute comes out as its value distribution — the same posterior role
// the Bayesian network plays, learned without a structure search.
//
// Everything is stdlib: the network is small (tens of hidden units over
// at most a few hundred input dimensions), so simple per-sample SGD
// converges in seconds.
package dae

import (
	"fmt"
	"math"
	"math/rand"

	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/prob"
)

// Options tunes training; the zero value gets sensible defaults.
type Options struct {
	// Hidden is the hidden-layer width (default 32).
	Hidden int
	// Epochs is the number of passes over the complete rows (default 30).
	Epochs int
	// LearningRate for SGD (default 0.05).
	LearningRate float64
	// MaskProb is the per-attribute corruption probability during
	// training (default 0.25); at least one attribute is always masked.
	MaskProb float64
	// Rng seeds initialisation, shuffling and masking; defaults to a
	// fixed seed.
	Rng *rand.Rand
}

func (o Options) withDefaults() Options {
	if o.Hidden == 0 {
		o.Hidden = 32
	}
	if o.Epochs == 0 {
		o.Epochs = 30
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.05
	}
	if o.MaskProb == 0 {
		o.MaskProb = 0.25
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	return o
}

// Model is a trained denoising autoencoder over a dataset schema.
type Model struct {
	attrs   []dataset.Attribute
	offsets []int // input/output base index per attribute
	inDim   int
	hidden  int
	// w1 is hidden×(inDim+1) (last column bias); w2 is inDim×(hidden+1).
	w1, w2 [][]float64
}

// Train fits the autoencoder on the dataset's complete rows. It fails
// when fewer than 20 complete rows exist.
func Train(d *dataset.Dataset, opt Options) (*Model, error) {
	opt = opt.withDefaults()

	rows := d.CompleteRows()
	if len(rows) < 20 {
		return nil, fmt.Errorf("dae: %d complete rows; need at least 20", len(rows))
	}

	m := &Model{
		attrs:   append([]dataset.Attribute(nil), d.Attrs...),
		offsets: make([]int, d.NumAttrs()),
		hidden:  opt.Hidden,
	}
	for j, a := range d.Attrs {
		m.offsets[j] = m.inDim
		m.inDim += a.Levels
	}
	m.w1 = randMatrix(opt.Rng, m.hidden, m.inDim+1, 1/math.Sqrt(float64(m.inDim)))
	m.w2 = randMatrix(opt.Rng, m.inDim, m.hidden+1, 1/math.Sqrt(float64(m.hidden)))

	x := make([]float64, m.inDim)
	h := make([]float64, m.hidden)
	logits := make([]float64, m.inDim)
	probs := make([]float64, m.inDim)
	dh := make([]float64, m.hidden)
	masked := make([]bool, d.NumAttrs())
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < opt.Epochs; epoch++ {
		opt.Rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, ri := range order {
			row := rows[ri]

			// Corrupt: mask random attributes (at least one).
			any := false
			for j := range masked {
				masked[j] = opt.Rng.Float64() < opt.MaskProb
				any = any || masked[j]
			}
			if !any {
				masked[opt.Rng.Intn(len(masked))] = true
			}

			m.encodeInput(row, masked, x)
			m.forward(x, h, logits, probs)
			m.backward(opt.LearningRate, row, x, h, probs, dh)
		}
	}
	return m, nil
}

func randMatrix(rng *rand.Rand, rows, cols int, scale float64) [][]float64 {
	w := make([][]float64, rows)
	for i := range w {
		w[i] = make([]float64, cols)
		for k := range w[i] {
			w[i][k] = rng.NormFloat64() * scale
		}
	}
	return w
}

// encodeInput writes the one-hot encoding of the row into x, zeroing the
// blocks of masked/missing attributes.
func (m *Model) encodeInput(row []int, masked []bool, x []float64) {
	for i := range x {
		x[i] = 0
	}
	for j := range m.attrs {
		if masked != nil && masked[j] {
			continue
		}
		if row[j] >= 0 {
			x[m.offsets[j]+row[j]] = 1
		}
	}
}

// forward computes h = tanh(w1·[x;1]) and per-attribute softmax outputs.
func (m *Model) forward(x, h, logits, probs []float64) {
	for u := 0; u < m.hidden; u++ {
		sum := m.w1[u][m.inDim] // bias
		wu := m.w1[u]
		for i, xi := range x {
			if xi != 0 {
				sum += wu[i] * xi
			}
		}
		h[u] = math.Tanh(sum)
	}
	for o := 0; o < m.inDim; o++ {
		sum := m.w2[o][m.hidden] // bias
		wo := m.w2[o]
		for u, hu := range h {
			sum += wo[u] * hu
		}
		logits[o] = sum
	}
	// Softmax per attribute block.
	for j, a := range m.attrs {
		base := m.offsets[j]
		maxL := logits[base]
		for v := 1; v < a.Levels; v++ {
			if logits[base+v] > maxL {
				maxL = logits[base+v]
			}
		}
		sum := 0.0
		for v := 0; v < a.Levels; v++ {
			probs[base+v] = math.Exp(logits[base+v] - maxL)
			sum += probs[base+v]
		}
		for v := 0; v < a.Levels; v++ {
			probs[base+v] /= sum
		}
	}
}

// backward applies one SGD step of the cross-entropy reconstruction loss
// (summed over every attribute block; softmax+CE gives the usual
// probs-minus-onehot output gradient).
func (m *Model) backward(lr float64, row []int, x, h, probs, dh []float64) {
	for u := range dh {
		dh[u] = 0
	}
	// Output layer gradients and hidden backprop accumulation.
	for j, a := range m.attrs {
		base := m.offsets[j]
		for v := 0; v < a.Levels; v++ {
			o := base + v
			g := probs[o]
			if v == row[j] {
				g -= 1
			}
			if g == 0 {
				continue
			}
			wo := m.w2[o]
			for u, hu := range h {
				dh[u] += g * wo[u]
				wo[u] -= lr * g * hu
			}
			wo[m.hidden] -= lr * g // bias
		}
	}
	// Hidden layer.
	for u := 0; u < m.hidden; u++ {
		gu := dh[u] * (1 - h[u]*h[u])
		if gu == 0 {
			continue
		}
		wu := m.w1[u]
		for i, xi := range x {
			if xi != 0 {
				wu[i] -= lr * gu * xi
			}
		}
		wu[m.inDim] -= lr * gu // bias
	}
}

// Distributions returns, for every missing cell of the dataset, the
// autoencoder's softmax distribution conditioned on the object's observed
// cells — a drop-in replacement for the Bayesian-network posteriors
// (core.Options.Imputer).
func (m *Model) Distributions(d *dataset.Dataset) (prob.Dists, error) {
	if len(d.Attrs) != len(m.attrs) {
		return nil, fmt.Errorf("dae: dataset has %d attributes, model trained on %d", len(d.Attrs), len(m.attrs))
	}
	for j := range d.Attrs {
		if d.Attrs[j].Levels != m.attrs[j].Levels {
			return nil, fmt.Errorf("dae: attribute %q has %d levels, model trained with %d",
				d.Attrs[j].Name, d.Attrs[j].Levels, m.attrs[j].Levels)
		}
	}

	dists := prob.Dists{}
	x := make([]float64, m.inDim)
	h := make([]float64, m.hidden)
	logits := make([]float64, m.inDim)
	probsBuf := make([]float64, m.inDim)
	row := make([]int, len(m.attrs))

	for i := range d.Objects {
		o := &d.Objects[i]
		anyMissing := false
		for j, c := range o.Cells {
			if c.Missing {
				row[j] = -1
				anyMissing = true
			} else {
				row[j] = c.Value
			}
		}
		if !anyMissing {
			continue
		}
		m.encodeInput(row, nil, x)
		m.forward(x, h, logits, probsBuf)
		for j, c := range o.Cells {
			if !c.Missing {
				continue
			}
			base := m.offsets[j]
			dist := make([]float64, m.attrs[j].Levels)
			copy(dist, probsBuf[base:base+m.attrs[j].Levels])
			dists[ctable.Var{Obj: i, Attr: j}] = dist
		}
	}
	return dists, nil
}
