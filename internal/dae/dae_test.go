package dae

import (
	"math"
	"math/rand"
	"testing"

	"bayescrowd/internal/bayesnet"
	"bayescrowd/internal/core"
	"bayescrowd/internal/crowd"
	"bayescrowd/internal/ctable"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/metrics"
	"bayescrowd/internal/skyline"
)

// correlatedPair builds a dataset from a strongly coupled 2-node network
// plus incomplete probe objects.
func correlatedPair(t *testing.T, coupling float64, n int) *dataset.Dataset {
	t.Helper()
	truth := bayesnet.MustNew([]bayesnet.Node{
		{Name: "a1", Levels: 2, CPT: []float64{0.5, 0.5}},
		{Name: "a2", Levels: 2, Parents: []int{0}, CPT: []float64{coupling, 1 - coupling, 1 - coupling, coupling}},
	})
	rng := rand.New(rand.NewSource(11))
	d := dataset.New([]dataset.Attribute{{Name: "a1", Levels: 2}, {Name: "a2", Levels: 2}})
	for i := 0; i < n; i++ {
		row := truth.Sample(rng)
		d.MustAppend(dataset.Object{Cells: []dataset.Cell{dataset.Known(row[0]), dataset.Known(row[1])}})
	}
	d.MustAppend(dataset.Object{ID: "hi", Cells: []dataset.Cell{dataset.Known(1), dataset.Unknown()}})
	d.MustAppend(dataset.Object{ID: "lo", Cells: []dataset.Cell{dataset.Known(0), dataset.Unknown()}})
	return d
}

func TestLearnsConditionalDependence(t *testing.T) {
	d := correlatedPair(t, 0.9, 600)
	m, err := Train(d, Options{Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	dists, err := m.Distributions(d)
	if err != nil {
		t.Fatal(err)
	}
	hi := dists[ctable.Var{Obj: 600, Attr: 1}]
	lo := dists[ctable.Var{Obj: 601, Attr: 1}]
	// Truth: P(a2=0|a1=1) = 0.1, P(a2=0|a1=0) = 0.9.
	if hi[0] > 0.3 || lo[0] < 0.7 {
		t.Fatalf("conditional dependence not learned: P(a2=0|a1=1)=%v P(a2=0|a1=0)=%v", hi[0], lo[0])
	}
	for _, dist := range dists {
		sum := 0.0
		for _, p := range dist {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("distribution %v does not sum to 1", dist)
		}
	}
}

func TestTrainRequiresCompleteRows(t *testing.T) {
	d := dataset.New([]dataset.Attribute{{Name: "a", Levels: 2}})
	for i := 0; i < 30; i++ {
		d.MustAppend(dataset.Object{Cells: []dataset.Cell{dataset.Unknown()}})
	}
	if _, err := Train(d, Options{}); err == nil {
		t.Fatal("Train accepted a dataset with no complete rows")
	}
}

func TestDistributionsSchemaMismatch(t *testing.T) {
	d := correlatedPair(t, 0.8, 100)
	m, err := Train(d, Options{Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	other := dataset.New([]dataset.Attribute{{Name: "a1", Levels: 2}})
	if _, err := m.Distributions(other); err == nil {
		t.Error("accepted attribute-count mismatch")
	}
	other3 := dataset.New([]dataset.Attribute{{Name: "a1", Levels: 3}, {Name: "a2", Levels: 2}})
	if _, err := m.Distributions(other3); err == nil {
		t.Error("accepted level mismatch")
	}
}

func TestDeterministicTraining(t *testing.T) {
	d := correlatedPair(t, 0.8, 200)
	train := func() []float64 {
		m, err := Train(d, Options{Epochs: 5, Rng: rand.New(rand.NewSource(3))})
		if err != nil {
			t.Fatal(err)
		}
		dists, err := m.Distributions(d)
		if err != nil {
			t.Fatal(err)
		}
		return dists[ctable.Var{Obj: 200, Attr: 1}]
	}
	a, b := train(), train()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different models")
		}
	}
}

// TestImputerPluggedIntoFramework runs the full query with the
// autoencoder as the preprocessing model and checks it performs in the
// same league as the Bayesian network (the paper's point: either model
// can provide the posteriors).
func TestImputerPluggedIntoFramework(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	truth := dataset.GenNBA(rng, 500)
	incomplete := truth.InjectMissing(rng, 0.1)
	want := skyline.BNL(truth)

	m, err := Train(incomplete, Options{Epochs: 15, Rng: rand.New(rand.NewSource(13))})
	if err != nil {
		t.Fatal(err)
	}
	run := func(opt core.Options) float64 {
		opt.Alpha, opt.Budget, opt.Latency, opt.Strategy = 0.05, 40, 5, core.FBS
		opt.Rng = rand.New(rand.NewSource(14))
		res, err := core.Run(incomplete, crowd.NewSimulated(truth, 1.0, nil), opt)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.F1(res.Answers, want)
	}
	daeF1 := run(core.Options{Imputer: m})
	bnF1 := run(core.Options{Net: dataset.NBANet()})
	if daeF1 < bnF1-0.15 {
		t.Fatalf("autoencoder F1 %v far below Bayesian network %v", daeF1, bnF1)
	}
	if daeF1 < 0.5 {
		t.Fatalf("autoencoder F1 %v unusably low", daeF1)
	}
}
