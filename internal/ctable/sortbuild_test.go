package ctable

import (
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/dataset"
)

// assertSameTable fails unless two c-tables are identical in conditions,
// dominator sizes and pruning statistics.
func assertSameTable(t *testing.T, label string, got, want *CTable) {
	t.Helper()
	if !reflect.DeepEqual(got.DomSizes, want.DomSizes) {
		for o := range want.DomSizes {
			if got.DomSizes[o] != want.DomSizes[o] {
				t.Fatalf("%s: DomSizes[%d] = %d, want %d", label, o, got.DomSizes[o], want.DomSizes[o])
			}
		}
	}
	if got.Pruned != want.Pruned || !reflect.DeepEqual(got.PrunedByAlpha, want.PrunedByAlpha) {
		t.Fatalf("%s: pruning stats differ (%d vs %d)", label, got.Pruned, want.Pruned)
	}
	for o := range want.Conds {
		if g, w := got.Conds[o].String(), want.Conds[o].String(); g != w {
			t.Fatalf("%s: φ(o%d) = %q, want %q", label, o, g, w)
		}
	}
}

// TestSortedBuildEquivalence pins the sorted/partitioned build against the
// per-object and pairwise derivations across dataset shapes chosen to
// stress the grouping: heavy duplication (few levels), no duplication
// (distinct rows), all-missing columns, zero and saturating missing rates,
// and both pruning regimes.
func TestSortedBuildEquivalence(t *testing.T) {
	type tc struct {
		name  string
		gen   func(rng *rand.Rand) *dataset.Dataset
		alpha float64
	}
	cases := []tc{
		{"nba", func(rng *rand.Rand) *dataset.Dataset {
			return dataset.GenNBA(rng, 250).InjectMissing(rng, 0.15)
		}, 0.05},
		{"independent-dup-heavy", func(rng *rand.Rand) *dataset.Dataset {
			return dataset.GenIndependent(rng, 400, 3, 2).InjectMissing(rng, 0.2)
		}, 0.2},
		{"correlated", func(rng *rand.Rand) *dataset.Dataset {
			return dataset.GenCorrelated(rng, 300, 5, 6, 0.6).InjectMissing(rng, 0.1)
		}, 0},
		{"anticorrelated-complete", func(rng *rand.Rand) *dataset.Dataset {
			return dataset.GenAntiCorrelated(rng, 200, 4, 8)
		}, 0.1},
		{"mostly-missing", func(rng *rand.Rand) *dataset.Dataset {
			return dataset.GenIndependent(rng, 150, 4, 5).InjectMissing(rng, 0.8)
		}, 0.5},
		{"tiny", func(rng *rand.Rand) *dataset.Dataset {
			return dataset.GenIndependent(rng, 3, 2, 4).InjectMissing(rng, 0.3)
		}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				d := c.gen(rand.New(rand.NewSource(seed)))
				perObject := Build(d, BuildOptions{Alpha: c.alpha, PerObject: true, Workers: 1})
				pairwise := Build(d, BuildOptions{Alpha: c.alpha, Pairwise: true, Workers: 1})
				assertSameTable(t, c.name+"/pairwise-vs-perobject", pairwise, perObject)
				for _, workers := range []int{1, 2, 7, 32} {
					sorted := Build(d, BuildOptions{Alpha: c.alpha, Workers: workers})
					assertSameTable(t, c.name+"/sorted", sorted, perObject)
				}
			}
		})
	}
}

// TestSortedBuildEmpty covers the degenerate cardinalities the group
// partitioning must not trip on.
func TestSortedBuildEmpty(t *testing.T) {
	d := dataset.New([]dataset.Attribute{{Name: "a", Levels: 3}, {Name: "b", Levels: 3}})
	ct := Build(d, BuildOptions{})
	if len(ct.Conds) != 0 || ct.Pruned != 0 {
		t.Fatalf("empty dataset built %d conditions, %d pruned", len(ct.Conds), ct.Pruned)
	}

	d.MustAppend(dataset.Object{ID: "solo", Cells: []dataset.Cell{dataset.Known(1), dataset.Unknown()}})
	ct = Build(d, BuildOptions{})
	if len(ct.Conds) != 1 || !ct.Conds[0].IsTrue() || ct.DomSizes[0] != 0 {
		t.Fatalf("singleton dataset: conds=%d dom=%d", len(ct.Conds), ct.DomSizes[0])
	}
}

// TestSortedBuildVerify re-checks soundness of the sorted path end to end:
// under the ground truth every condition must evaluate to the object's
// skyline membership.
func TestSortedBuildVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := dataset.GenNBA(rng, 300)
	d := truth.InjectMissing(rng, 0.2)
	ct := Build(d, BuildOptions{})
	if bad := ct.Verify(truth); len(bad) != 0 {
		t.Fatalf("sorted build unsound for objects %v", bad)
	}
}
