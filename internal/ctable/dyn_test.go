package ctable

import (
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/bitset"
	"bayescrowd/internal/dataset"
)

// randCells draws one object's cells over the schema with the given
// missing-cell rate.
func randCells(rng *rand.Rand, attrs []dataset.Attribute, missRate float64) []dataset.Cell {
	cells := make([]dataset.Cell, len(attrs))
	for j, a := range attrs {
		if rng.Float64() < missRate {
			cells[j] = dataset.Unknown()
		} else {
			cells[j] = dataset.Known(rng.Intn(a.Levels))
		}
	}
	return cells
}

// renameCond rewrites a dyn condition's variables from stream ids to the
// window indices of a batch rebuild, so the two tables compare literally.
func renameCond(c *Condition, indexOf map[int]int) *Condition {
	if _, decided := c.Decided(); decided {
		return c
	}
	clauses := make([][]Expr, len(c.Clauses))
	for i, cl := range c.Clauses {
		out := make([]Expr, len(cl))
		for k, e := range cl {
			e.X.Obj = indexOf[e.X.Obj]
			if e.Kind == VarGTVar {
				e.Y.Obj = indexOf[e.Y.Obj]
			}
			out[k] = e
		}
		clauses[i] = out
	}
	return FromClauses(clauses)
}

// checkAgainstRebuild asserts that every live condition of the dyn table
// equals the batch Build over the same window, modulo the id↔index
// renaming Window documents.
func checkAgainstRebuild(t *testing.T, dt *DynCTable) {
	t.Helper()
	w, ids := dt.Window()
	ct := Build(w, BuildOptions{Alpha: 0})
	indexOf := make(map[int]int, len(ids))
	for i, id := range ids {
		indexOf[id] = i
	}
	for i, id := range ids {
		got := renameCond(dt.Cond(id), indexOf)
		if got.String() != ct.Conds[i].String() {
			t.Fatalf("id %d (window index %d):\n incremental: %v\n rebuild:     %v",
				id, i, got, ct.Conds[i])
		}
		if dt.DomSize(id) != ct.DomSizes[i] {
			t.Fatalf("id %d: DomSize %d, rebuild says %d", id, dt.DomSize(id), ct.DomSizes[i])
		}
	}
}

func TestDynCTableMatchesRebuildUnderRandomEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		nAttrs := 2 + rng.Intn(4)
		attrs := make([]dataset.Attribute, nAttrs)
		for j := range attrs {
			attrs[j] = dataset.Attribute{Name: "a", Levels: 2 + rng.Intn(7)}
		}
		missRate := 0.05 + rng.Float64()*0.3
		dt := NewDynCTable(attrs, 8) // small capacity: exercise Grow
		var live []int
		for step := 0; step < 120; step++ {
			if len(live) > 0 && rng.Float64() < 0.35 {
				k := rng.Intn(len(live))
				id := live[k]
				live = append(live[:k], live[k+1:]...)
				dt.Evict(id)
			} else {
				id, _ := dt.Insert(randCells(rng, attrs, missRate))
				live = append(live, id)
			}
			if step%10 == 0 || step == 119 {
				checkAgainstRebuild(t, dt)
			}
		}
		if dt.Len() != len(live) {
			t.Fatalf("trial %d: Len %d, tracked %d", trial, dt.Len(), len(live))
		}
	}
}

func TestDynCTableVerifiesAgainstGroundTruth(t *testing.T) {
	// Insert a generated dataset object by object, evict a random third,
	// then check the surviving window's c-table against the ground truth
	// via the batch Verify — sound conditions, not just rebuild-identical.
	rng := rand.New(rand.NewSource(72))
	truth := dataset.GenIndependent(rng, 90, 3, 6)
	inc := truth.InjectMissing(rng, 0.2)
	dt := NewDynCTable(inc.Attrs, 16)
	ids := make([]int, inc.Len())
	for i := range inc.Objects {
		ids[i], _ = dt.Insert(inc.Objects[i].Cells)
	}
	for i := 0; i < inc.Len(); i++ {
		if rng.Float64() < 0.33 {
			dt.Evict(ids[i])
			ids[i] = -1
		}
	}
	// The surviving ground truth, in window order.
	w, wids := dt.Window()
	surviving := dataset.New(truth.Attrs)
	pos := make(map[int]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	for _, id := range wids {
		surviving.MustAppend(truth.Objects[pos[id]])
	}
	ct := Build(w, BuildOptions{Alpha: 0})
	if bad := ct.Verify(surviving); len(bad) != 0 {
		t.Fatalf("window c-table wrong for objects %v", bad)
	}
	checkAgainstRebuild(t, dt)
}

func TestDynCTableDirtyTracking(t *testing.T) {
	attrs := []dataset.Attribute{{Name: "a1", Levels: 4}, {Name: "a2", Levels: 4}}
	dt := NewDynCTable(attrs, 4)

	// o0 strong, o1 weak: o0 possibly dominates o1.
	id0, _ := dt.Insert([]dataset.Cell{dataset.Known(3), dataset.Known(3)})
	if got := dt.DrainDirty(); !reflect.DeepEqual(got, []int{id0}) {
		t.Fatalf("after first insert dirty = %v, want [%d]", got, id0)
	}
	id1, _ := dt.Insert([]dataset.Cell{dataset.Known(1), dataset.Unknown()})
	// The weak newcomer gains a dominator clause; o0's condition is
	// untouched (nothing dominates it), so only id1 is dirty.
	if got := dt.DrainDirty(); !reflect.DeepEqual(got, []int{id1}) {
		t.Fatalf("after weak insert dirty = %v, want [%d]", got, id1)
	}
	if dt.DomSize(id1) != 1 {
		t.Fatalf("DomSize(id1) = %d, want 1", dt.DomSize(id1))
	}
	// Evicting the dominator patches o1's condition: o1 is dirty, the
	// evicted id is not reported.
	dt.Evict(id0)
	if got := dt.DrainDirty(); !reflect.DeepEqual(got, []int{id1}) {
		t.Fatalf("after evict dirty = %v, want [%d]", got, id1)
	}
	if !dt.Cond(id1).IsTrue() {
		t.Fatalf("φ(id1) = %v after dominator left, want true", dt.Cond(id1))
	}
	// Drain is destructive: a second call reports nothing.
	if got := dt.DrainDirty(); got != nil {
		t.Fatalf("second drain = %v, want nil", got)
	}
}

func TestDynCTableEvictReturnsVars(t *testing.T) {
	attrs := []dataset.Attribute{{Name: "a1", Levels: 5}, {Name: "a2", Levels: 5}, {Name: "a3", Levels: 5}}
	dt := NewDynCTable(attrs, 4)
	id, vars := dt.Insert([]dataset.Cell{dataset.Known(2), dataset.Unknown(), dataset.Unknown()})
	want := []Var{{Obj: id, Attr: 1}, {Obj: id, Attr: 2}}
	if !reflect.DeepEqual(vars, want) {
		t.Fatalf("Insert vars = %v, want %v", vars, want)
	}
	if got := dt.Evict(id); !reflect.DeepEqual(got, want) {
		t.Fatalf("Evict vars = %v, want %v", got, want)
	}
	if dt.Len() != 0 {
		t.Fatalf("Len = %d after evicting the only object", dt.Len())
	}
}

func TestDynCTableIDsNeverReused(t *testing.T) {
	attrs := []dataset.Attribute{{Name: "a1", Levels: 3}}
	dt := NewDynCTable(attrs, 2)
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		id, _ := dt.Insert([]dataset.Cell{dataset.Known(i % 3)})
		if seen[id] {
			t.Fatalf("stream id %d reused", id)
		}
		seen[id] = true
		dt.Evict(id) // slot recycles, the id must not
	}
}

func TestDynDomIndexMatchesPairwisePredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	attrs := []dataset.Attribute{{Name: "a1", Levels: 4}, {Name: "a2", Levels: 5}, {Name: "a3", Levels: 3}}
	ix := NewDynDomIndex(attrs, 8)
	type obj struct {
		slot  int
		cells []dataset.Cell
	}
	var liveObjs []obj
	nextSlot := 0
	dom := bitset.New(ix.Cap())
	rev := bitset.New(ix.Cap())

	// possiblyDominates reports p ≻? o: p observed-and-≥ or missing on
	// every attribute o observes (Definition 5's candidate test).
	possiblyDominates := func(p, o []dataset.Cell) bool {
		for j := range attrs {
			if o[j].Missing || p[j].Missing {
				continue
			}
			if p[j].Value < o[j].Value {
				return false
			}
		}
		return true
	}

	for step := 0; step < 200; step++ {
		if len(liveObjs) > 0 && rng.Float64() < 0.4 {
			k := rng.Intn(len(liveObjs))
			ix.Evict(liveObjs[k].slot, liveObjs[k].cells)
			liveObjs = append(liveObjs[:k], liveObjs[k+1:]...)
			continue
		}
		cells := randCells(rng, attrs, 0.3)
		slot := nextSlot
		nextSlot++
		if slot >= ix.Cap() {
			ix.Grow(2 * ix.Cap())
			dom.Grow(ix.Cap())
			rev.Grow(ix.Cap())
		}
		// Query before inserting, like DynCTable does.
		ix.Dominators(cells, dom)
		ix.Dominatees(cells, rev)
		for _, q := range liveObjs {
			if want := possiblyDominates(q.cells, cells); dom.Test(q.slot) != want {
				t.Fatalf("step %d: Dominators disagrees with pairwise for slot %d (want %v)", step, q.slot, want)
			}
			if want := possiblyDominates(cells, q.cells); rev.Test(q.slot) != want {
				t.Fatalf("step %d: Dominatees disagrees with pairwise for slot %d (want %v)", step, q.slot, want)
			}
		}
		ix.Insert(slot, cells)
		liveObjs = append(liveObjs, obj{slot: slot, cells: cells})
	}
}

func TestKnowledgeForget(t *testing.T) {
	d := dataset.SampleMovies()
	k := NewKnowledge(d)
	// Narrow two variables and relate a third pair.
	if err := k.Absorb(LTConst(v(4, 1), 2), LT); err != nil {
		t.Fatal(err)
	}
	if err := k.Absorb(GTConst(v(4, 2), 1), GT); err != nil {
		t.Fatal(err)
	}
	if err := k.Absorb(GTVar(v(4, 3), v(1, 1)), GT); err != nil {
		t.Fatal(err)
	}
	// Forget everything about object 4. Intervals and the relation go;
	// other objects keep theirs.
	k.Forget(v(4, 1), v(4, 2), v(4, 3))
	if lo, hi := k.Bounds(v(4, 1)); lo != 0 || hi != d.Attrs[1].Levels-1 {
		t.Fatalf("Bounds after Forget = [%d,%d], want full domain", lo, hi)
	}
	if _, decided := k.Eval(GTVar(v(4, 3), v(1, 1))); decided {
		t.Fatal("relation mentioning a forgotten variable still decided")
	}
}

func TestKnowledgeForgetAfterAbsorbConsistency(t *testing.T) {
	// Satellite: Absorb answers, evict the object, and check that pinned
	// values for surviving variables and the conflict count stay
	// consistent — Forget must not erase history or neighbours.
	d := dataset.SampleMovies()
	k := NewKnowledge(d)

	// Pin Var(o5,a2) to exactly 1 and record a conflict against it.
	if err := k.Absorb(LTConst(v(4, 1), 2), LT); err != nil {
		t.Fatal(err)
	}
	if err := k.Absorb(GTConst(v(4, 1), 0), GT); err != nil {
		t.Fatal(err)
	}
	if val, ok := k.Pinned(v(4, 1)); !ok || val != 1 {
		t.Fatalf("Pinned(o5,a2) = %d,%v; want 1,true", val, ok)
	}
	if err := k.Absorb(GTConst(v(4, 1), 3), GT); err == nil {
		t.Fatal("conflicting answer accepted")
	}
	if k.Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", k.Conflicts)
	}
	// Pin a surviving variable too.
	if err := k.Absorb(LTConst(v(1, 1), 1), LT); err != nil {
		t.Fatal(err)
	}

	// Evict object 4: its variables are forgotten.
	k.Forget(v(4, 0), v(4, 1), v(4, 2), v(4, 3))

	// The survivor's pinned value is untouched…
	if val, ok := k.Pinned(v(1, 1)); !ok || val != 0 {
		t.Fatalf("surviving Pinned(o2,a2) = %d,%v; want 0,true", val, ok)
	}
	// …the forgotten variable is wide open again…
	if _, ok := k.Pinned(v(4, 1)); ok {
		t.Fatal("forgotten variable still pinned")
	}
	// …and conflicts already charged remain historical fact.
	if k.Conflicts != 1 {
		t.Fatalf("Conflicts after Forget = %d, want 1", k.Conflicts)
	}

	// Fresh answers about a re-used attribute slot of a *new* object id
	// start from the full domain (no aliasing with the departed object).
	if err := k.Absorb(GTConst(v(9, 1), 2), GT); err != nil {
		t.Fatalf("fresh object absorbed with error: %v", err)
	}
}

func TestKnowledgeForgetNoInference(t *testing.T) {
	d := dataset.SampleMovies()
	k := NewKnowledge(d)
	k.NoInference = true
	if err := k.Absorb(LTConst(v(4, 1), 2), LT); err != nil {
		t.Fatal(err)
	}
	if err := k.Absorb(GTVar(v(0, 1), v(4, 2)), GT); err != nil {
		t.Fatal(err)
	}
	if err := k.Absorb(LTConst(v(1, 1), 3), LT); err != nil {
		t.Fatal(err)
	}
	k.Forget(v(4, 1), v(4, 2))
	if _, decided := k.Eval(LTConst(v(4, 1), 2)); decided {
		t.Fatal("answered expression on forgotten variable still decided")
	}
	if _, decided := k.Eval(GTVar(v(0, 1), v(4, 2))); decided {
		t.Fatal("var-var expression whose right operand was forgotten still decided")
	}
	if val, decided := k.Eval(LTConst(v(1, 1), 3)); !decided || !val {
		t.Fatal("unrelated answered expression lost by Forget")
	}
}
