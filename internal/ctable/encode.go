package ctable

import "encoding/binary"

// AppendKey appends a compact, self-delimiting binary encoding of the
// expression to dst and returns the extended slice. The encoding is
// injective (distinct expressions yield distinct bytes) and stable across
// processes — it depends only on the expression's fields, never on map
// iteration order or pointer identity — which is what makes it usable as
// a building block for cache fingerprints (internal/prob's component
// cache keys concatenate these encodings in canonical order).
//
// Layout: one kind byte, then the left variable as two uvarints, then
// either the right variable (VarGTVar) or the constant as uvarints. The
// kind byte determines the field count, so concatenated encodings parse
// unambiguously without separators.
func (e Expr) AppendKey(dst []byte) []byte {
	dst = append(dst, byte(e.Kind))
	dst = binary.AppendUvarint(dst, uint64(uint32(e.X.Obj)))
	dst = binary.AppendUvarint(dst, uint64(uint32(e.X.Attr)))
	if e.Kind == VarGTVar {
		dst = binary.AppendUvarint(dst, uint64(uint32(e.Y.Obj)))
		dst = binary.AppendUvarint(dst, uint64(uint32(e.Y.Attr)))
		return dst
	}
	return binary.AppendUvarint(dst, uint64(uint32(e.C)))
}

// Compare totally orders expressions by (kind, left variable, right
// operand); Compare(o) == 0 exactly when the expressions are equal. It is
// the canonical order internal/prob sorts component clauses into before
// fingerprinting, so that structurally equal components produce equal
// keys regardless of the clause order they arrived in.
func (e Expr) Compare(o Expr) int {
	if e.Kind != o.Kind {
		return int(e.Kind) - int(o.Kind)
	}
	if e.X.Obj != o.X.Obj {
		return e.X.Obj - o.X.Obj
	}
	if e.X.Attr != o.X.Attr {
		return e.X.Attr - o.X.Attr
	}
	if e.Kind == VarGTVar {
		if e.Y.Obj != o.Y.Obj {
			return e.Y.Obj - o.Y.Obj
		}
		return e.Y.Attr - o.Y.Attr
	}
	return e.C - o.C
}
