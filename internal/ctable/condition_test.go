package ctable

import (
	"reflect"
	"testing"

	"bayescrowd/internal/dataset"
)

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{LTConst(v(4, 1), 2), "Var(o5,a2) < 2"},
		{GTConst(v(4, 2), 3), "Var(o5,a3) > 3"},
		{GTVar(v(4, 1), v(1, 1)), "Var(o5,a2) > Var(o2,a2)"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestExprHolds(t *testing.T) {
	cases := []struct {
		e    Expr
		x, y int
		want bool
	}{
		{LTConst(v(0, 0), 3), 2, 0, true},
		{LTConst(v(0, 0), 3), 3, 0, false},
		{GTConst(v(0, 0), 3), 4, 0, true},
		{GTConst(v(0, 0), 3), 3, 0, false},
		{GTVar(v(0, 0), v(1, 0)), 4, 3, true},
		{GTVar(v(0, 0), v(1, 0)), 3, 3, false},
		{GTVar(v(0, 0), v(1, 0)), 2, 3, false},
	}
	for _, tc := range cases {
		if got := tc.e.Holds(tc.x, tc.y); got != tc.want {
			t.Errorf("%v.Holds(%d,%d) = %v, want %v", tc.e, tc.x, tc.y, got, tc.want)
		}
	}
}

func TestExprEvalAssign(t *testing.T) {
	e := GTVar(v(0, 0), v(1, 0))
	if _, decided := e.EvalAssign(map[Var]int{v(0, 0): 3}); decided {
		t.Fatal("half-assigned var-var expression decided")
	}
	if val, decided := e.EvalAssign(map[Var]int{v(0, 0): 3, v(1, 0): 1}); !decided || !val {
		t.Fatalf("EvalAssign = %v,%v", val, decided)
	}
	c := LTConst(v(0, 0), 2)
	if _, decided := c.EvalAssign(nil); decided {
		t.Fatal("unassigned var-const expression decided")
	}
}

func TestConditionConstructorsAndDecided(t *testing.T) {
	if !True().IsTrue() || True().IsFalse() {
		t.Fatal("True() broken")
	}
	if !False().IsFalse() || False().IsTrue() {
		t.Fatal("False() broken")
	}
	if c := FromClauses(nil); !c.IsTrue() {
		t.Fatal("FromClauses(nil) should be true")
	}
	if c := FromClauses([][]Expr{{}}); !c.IsFalse() {
		t.Fatal("FromClauses with empty clause should be false")
	}
	c := FromClauses([][]Expr{{LTConst(v(0, 0), 1)}})
	if _, decided := c.Decided(); decided {
		t.Fatal("non-trivial condition decided at construction")
	}
}

func TestConditionVarsAndExprs(t *testing.T) {
	c := FromClauses([][]Expr{
		{LTConst(v(4, 1), 2), GTVar(v(4, 1), v(1, 1))},
		{GTConst(v(4, 2), 3), LTConst(v(4, 1), 2)}, // duplicate expression
	})
	vars := c.Vars()
	if len(vars) != 3 {
		t.Fatalf("Vars = %v, want 3 distinct", vars)
	}
	if c.NumExprs() != 4 {
		t.Fatalf("NumExprs = %d, want 4", c.NumExprs())
	}
	if got := len(c.Exprs()); got != 3 {
		t.Fatalf("Exprs returned %d, want 3 distinct", got)
	}
}

func TestConditionClone(t *testing.T) {
	c := FromClauses([][]Expr{{LTConst(v(0, 0), 2)}})
	cl := c.Clone()
	cl.Clauses[0][0] = GTConst(v(9, 9), 1)
	if c.Clauses[0][0] != LTConst(v(0, 0), 2) {
		t.Fatal("Clone shares clause storage")
	}
}

func knowledgeOver(levels ...int) *Knowledge {
	attrs := make([]dataset.Attribute, len(levels))
	for i, l := range levels {
		attrs[i] = dataset.Attribute{Name: "a", Levels: l}
	}
	return NewKnowledge(dataset.New(attrs))
}

func TestSimplifyDecidesTrue(t *testing.T) {
	k := knowledgeOver(10)
	if err := k.Absorb(LTConst(v(0, 0), 3), LT); err != nil {
		t.Fatal(err)
	}
	c := FromClauses([][]Expr{{LTConst(v(0, 0), 5), GTConst(v(1, 0), 7)}})
	c.Simplify(k)
	if !c.IsTrue() {
		t.Fatalf("condition = %v, want true (x<3 implies x<5)", c)
	}
}

func TestSimplifyDecidesFalse(t *testing.T) {
	k := knowledgeOver(10)
	if err := k.Absorb(GTConst(v(0, 0), 6), GT); err != nil {
		t.Fatal(err)
	}
	c := FromClauses([][]Expr{{LTConst(v(0, 0), 5)}})
	c.Simplify(k)
	if !c.IsFalse() {
		t.Fatalf("condition = %v, want false (x>6 contradicts x<5)", c)
	}
}

func TestSimplifyDropsOnlyDecidedExprs(t *testing.T) {
	k := knowledgeOver(10)
	if err := k.Absorb(GTConst(v(0, 0), 6), GT); err != nil { // x in [7,9]
		t.Fatal(err)
	}
	c := FromClauses([][]Expr{
		{LTConst(v(0, 0), 5), GTConst(v(1, 0), 2)}, // first expr now false
		{LTConst(v(2, 0), 4)},                      // untouched
	})
	c.Simplify(k)
	if _, decided := c.Decided(); decided {
		t.Fatalf("condition decided prematurely: %v", c)
	}
	want := [][]Expr{{GTConst(v(1, 0), 2)}, {LTConst(v(2, 0), 4)}}
	if !reflect.DeepEqual(c.Clauses, want) {
		t.Fatalf("Clauses = %v, want %v", c.Clauses, want)
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	k := knowledgeOver(10)
	c := FromClauses([][]Expr{{LTConst(v(0, 0), 5)}, {GTConst(v(1, 0), 2)}})
	c.Simplify(k)
	before := c.String()
	c.Simplify(k)
	if c.String() != before {
		t.Fatalf("Simplify not idempotent: %q vs %q", before, c.String())
	}
}

func TestConditionEvalAssign(t *testing.T) {
	c := FromClauses([][]Expr{
		{LTConst(v(0, 0), 3), GTConst(v(1, 0), 5)},
		{GTVar(v(0, 0), v(1, 0))},
	})
	// x=2 (first clause true via x<3), x>y needs 2>y.
	val, decided := c.EvalAssign(map[Var]int{v(0, 0): 2, v(1, 0): 1})
	if !decided || !val {
		t.Fatalf("EvalAssign = %v,%v, want true,true", val, decided)
	}
	val, decided = c.EvalAssign(map[Var]int{v(0, 0): 2, v(1, 0): 4})
	if !decided || val {
		t.Fatalf("EvalAssign = %v,%v, want false,true", val, decided)
	}
	if _, decided = c.EvalAssign(map[Var]int{v(0, 0): 2}); decided {
		t.Fatal("partial assignment decided")
	}
	if val, _ := True().EvalAssign(nil); !val {
		t.Fatal("True().EvalAssign broken")
	}
}

func TestConditionString(t *testing.T) {
	c := FromClauses([][]Expr{
		{LTConst(v(1, 1), 3)},
		{LTConst(v(4, 1), 3), LTConst(v(4, 2), 1)},
	})
	want := "Var(o2,a2) < 3 ∧ [Var(o5,a2) < 3 ∨ Var(o5,a3) < 1]"
	if got := c.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
