package ctable

import (
	"math/rand"
	"testing"

	"bayescrowd/internal/bitset"
	"bayescrowd/internal/dataset"
)

func TestBuildSingleObject(t *testing.T) {
	d := dataset.New([]dataset.Attribute{{Name: "a", Levels: 3}})
	d.MustAppend(dataset.Object{ID: "only", Cells: []dataset.Cell{dataset.Unknown()}})
	ct := Build(d, BuildOptions{Alpha: 1})
	if !ct.Conds[0].IsTrue() {
		t.Fatalf("lone object condition = %v, want true (empty dominator set)", ct.Conds[0])
	}
}

func TestBuildEmptyDataset(t *testing.T) {
	d := dataset.New([]dataset.Attribute{{Name: "a", Levels: 3}})
	ct := Build(d, BuildOptions{Alpha: 1})
	if len(ct.Conds) != 0 {
		t.Fatalf("empty dataset produced %d conditions", len(ct.Conds))
	}
}

func TestBuildAllMissing(t *testing.T) {
	// Every cell missing: every pair could dominate either way, so every
	// condition is a pure var-vs-var CNF and nothing is decided.
	d := dataset.New([]dataset.Attribute{{Name: "a", Levels: 4}, {Name: "b", Levels: 4}})
	for i := 0; i < 4; i++ {
		d.MustAppend(dataset.Object{ID: "", Cells: []dataset.Cell{dataset.Unknown(), dataset.Unknown()}})
	}
	ct := Build(d, BuildOptions{Alpha: 1})
	for o, c := range ct.Conds {
		if _, decided := c.Decided(); decided {
			t.Fatalf("φ(o%d) decided (%v) despite total uncertainty", o+1, c)
		}
		// 3 dominators × 2 var-var expressions each.
		if got := c.NumExprs(); got != 6 {
			t.Fatalf("φ(o%d) has %d expressions, want 6", o+1, got)
		}
		for _, e := range c.Exprs() {
			if e.Kind != VarGTVar {
				t.Fatalf("unexpected expression kind in %v", e)
			}
		}
	}
}

func TestBuildFullTieForcesFalse(t *testing.T) {
	// Documented strict-inequality semantics: an exact duplicate pair is
	// mutually "dominated" in the c-table even though Definition 1 says
	// neither dominates.
	d := dataset.FromRows(
		[]dataset.Attribute{{Name: "a", Levels: 4}, {Name: "b", Levels: 4}},
		[][]int{{2, 2}, {2, 2}},
	)
	ct := Build(d, BuildOptions{Alpha: 1})
	if !ct.Conds[0].IsFalse() || !ct.Conds[1].IsFalse() {
		t.Fatalf("tied duplicates: φ(o1)=%v φ(o2)=%v, want false/false", ct.Conds[0], ct.Conds[1])
	}
	// And Verify excuses exactly this case.
	if bad := ct.Verify(d); len(bad) != 0 {
		t.Fatalf("Verify flagged the documented tie semantics: %v", bad)
	}
}

func TestBuildCrowdSkySetup(t *testing.T) {
	// HideAttrs setup (Figure 4): conditions must verify against truth.
	rng := rand.New(rand.NewSource(36))
	truth := dataset.GenIndependent(rng, 120, 5, 8)
	inc := truth.HideAttrs(1, 3)
	ct := Build(inc, BuildOptions{Alpha: 0})
	if bad := ct.Verify(truth); len(bad) != 0 {
		t.Fatalf("c-table wrong for objects %v", bad)
	}
}

func TestDomIndexReuseAcrossObjects(t *testing.T) {
	// The same output bitset must be reusable across calls.
	d := dataset.SampleMovies()
	ix := NewDomIndex(d)
	out := bitset.New(d.Len())
	ix.Dominators(d, 3, out)
	first := out.String()
	ix.Dominators(d, 0, out)
	ix.Dominators(d, 3, out)
	if out.String() != first {
		t.Fatalf("Dominators not idempotent across reuse: %s vs %s", out.String(), first)
	}
}

func TestVerifyCatchesCorruptedCTable(t *testing.T) {
	// Negative test: Verify must actually detect a wrong condition.
	rng := rand.New(rand.NewSource(37))
	truth := dataset.GenIndependent(rng, 60, 3, 8)
	inc := truth.InjectMissing(rng, 0.2)
	ct := Build(inc, BuildOptions{Alpha: 0})
	// Corrupt: flip a decided condition.
	flipped := -1
	for o, c := range ct.Conds {
		if c.IsTrue() {
			ct.Conds[o] = False()
			flipped = o
			break
		}
	}
	if flipped == -1 {
		t.Skip("no decided-true condition to corrupt")
	}
	bad := ct.Verify(truth)
	found := false
	for _, o := range bad {
		if o == flipped {
			found = true
		}
	}
	if !found {
		t.Fatalf("Verify missed corrupted object %d (bad=%v)", flipped, bad)
	}
}

func TestKnowledgeNoInference(t *testing.T) {
	k := knowledgeOver(10)
	k.NoInference = true
	x := v(0, 0)
	// Answer "x vs 6" = LT decides exactly that expression...
	if err := k.Absorb(LTConst(x, 6), LT); err != nil {
		t.Fatal(err)
	}
	if val, decided := k.Eval(LTConst(x, 6)); !decided || !val {
		t.Fatalf("asked expression not decided: %v,%v", val, decided)
	}
	// ...but implies nothing about x < 8, which interval reasoning would
	// have decided.
	if _, decided := k.Eval(LTConst(x, 8)); decided {
		t.Fatal("NoInference leaked interval reasoning")
	}
	// And bounds stay at the full domain.
	if lo, hi := k.Bounds(x); lo != 0 || hi != 9 {
		t.Fatalf("Bounds = [%d,%d], want untouched [0,9]", lo, hi)
	}
}

func TestKnowledgeNoInferenceVarVar(t *testing.T) {
	k := knowledgeOver(10)
	k.NoInference = true
	x, y := v(0, 0), v(1, 0)
	if err := k.Absorb(GTVar(x, y), GT); err != nil {
		t.Fatal(err)
	}
	if val, decided := k.Eval(GTVar(x, y)); !decided || !val {
		t.Fatalf("asked var-var expression undecided: %v,%v", val, decided)
	}
	// The flipped orientation was not asked, so it stays open.
	if _, decided := k.Eval(GTVar(y, x)); decided {
		t.Fatal("NoInference decided the flipped expression")
	}
}
