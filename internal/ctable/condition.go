package ctable

import (
	"strings"
)

// Condition is an object's c-table condition φ(o): either the constant
// true/false or a CNF formula — a conjunction of clauses, each clause a
// disjunction of expressions (paper §4.1).
type Condition struct {
	decided bool
	value   bool
	// Clauses is the CNF body when the condition is undecided. Every
	// clause is non-empty; an empty clause collapses the condition to
	// false and an empty clause list to true during construction and
	// simplification.
	Clauses [][]Expr
}

// True returns the decided-true condition (o is certainly a skyline
// answer).
func True() *Condition { return &Condition{decided: true, value: true} }

// False returns the decided-false condition.
func False() *Condition { return &Condition{decided: true, value: false} }

// FromClauses builds a condition from CNF clauses, collapsing trivial
// cases: an empty clause yields false, no clauses yields true.
func FromClauses(clauses [][]Expr) *Condition {
	for _, cl := range clauses {
		if len(cl) == 0 {
			return False()
		}
	}
	if len(clauses) == 0 {
		return True()
	}
	return &Condition{Clauses: clauses}
}

// Decided reports whether the condition is settled, and its value.
func (c *Condition) Decided() (value, decided bool) { return c.value, c.decided }

// IsTrue reports whether the condition is decided true.
func (c *Condition) IsTrue() bool { return c.decided && c.value }

// IsFalse reports whether the condition is decided false.
func (c *Condition) IsFalse() bool { return c.decided && !c.value }

// Clone returns a deep copy.
func (c *Condition) Clone() *Condition {
	out := &Condition{decided: c.decided, value: c.value}
	if c.Clauses != nil {
		out.Clauses = make([][]Expr, len(c.Clauses))
		for i, cl := range c.Clauses {
			out.Clauses[i] = append([]Expr(nil), cl...)
		}
	}
	return out
}

// Vars returns the distinct variables mentioned by the condition.
func (c *Condition) Vars() []Var {
	seen := map[Var]bool{}
	var out []Var
	var buf []Var
	for _, cl := range c.Clauses {
		for _, e := range cl {
			buf = e.Vars(buf[:0])
			for _, v := range buf {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// NumExprs returns the total number of expressions across clauses.
func (c *Condition) NumExprs() int {
	n := 0
	for _, cl := range c.Clauses {
		n += len(cl)
	}
	return n
}

// Exprs returns the distinct expressions of the condition in clause order.
func (c *Condition) Exprs() []Expr {
	seen := map[Expr]bool{}
	var out []Expr
	for _, cl := range c.Clauses {
		for _, e := range cl {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// Simplify rewrites the condition in place under the given knowledge:
// expressions decided false are dropped from their clause, a clause with a
// decided-true expression is satisfied and removed, an emptied clause
// decides the condition false, and an emptied clause list decides it true.
// Decided conditions are left untouched.
func (c *Condition) Simplify(k *Knowledge) {
	if c.decided {
		return
	}
	outClauses := c.Clauses[:0]
	for _, cl := range c.Clauses {
		satisfied := false
		kept := cl[:0]
		for _, e := range cl {
			v, decided := k.Eval(e)
			switch {
			case decided && v:
				satisfied = true
			case decided && !v:
				// drop
			default:
				kept = append(kept, e)
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			continue
		}
		if len(kept) == 0 {
			*c = *False()
			return
		}
		outClauses = append(outClauses, kept)
	}
	if len(outClauses) == 0 {
		*c = *True()
		return
	}
	c.Clauses = outClauses
}

// EvalAssign evaluates the condition under a complete assignment of its
// variables. It panics via Expr.EvalAssign semantics being undecided only
// if a referenced variable is unassigned, in which case decided is false.
func (c *Condition) EvalAssign(assign map[Var]int) (value, decided bool) {
	if c.decided {
		return c.value, true
	}
	for _, cl := range c.Clauses {
		clauseVal := false
		for _, e := range cl {
			v, ok := e.EvalAssign(assign)
			if !ok {
				return false, false
			}
			if v {
				clauseVal = true
				break
			}
		}
		if !clauseVal {
			return false, true
		}
	}
	return true, true
}

// String renders the condition in the paper's Table 3 style.
func (c *Condition) String() string {
	if c.decided {
		if c.value {
			return "true"
		}
		return "false"
	}
	var parts []string
	for _, cl := range c.Clauses {
		var exprs []string
		for _, e := range cl {
			exprs = append(exprs, e.String())
		}
		s := strings.Join(exprs, " ∨ ")
		if len(c.Clauses) > 1 && len(cl) > 1 {
			s = "[" + s + "]"
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " ∧ ")
}
