package ctable

import (
	"math/rand"
	"testing"

	"bayescrowd/internal/bitset"
	"bayescrowd/internal/dataset"
)

func benchData(b *testing.B, n int) *dataset.Dataset {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return dataset.GenNBA(rng, n).InjectMissing(rng, 0.1)
}

func BenchmarkBuildFast2000(b *testing.B) {
	d := benchData(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(d, BuildOptions{Alpha: 0.01})
	}
}

func BenchmarkBuildPairwise2000(b *testing.B) {
	d := benchData(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(d, BuildOptions{Alpha: 0.01, Pairwise: true})
	}
}

func BenchmarkDominatorsFast(b *testing.B) {
	d := benchData(b, 5000)
	ix := NewDomIndex(d)
	out := bitset.New(d.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Dominators(d, i%d.Len(), out)
	}
}

func BenchmarkSimplify(b *testing.B) {
	d := benchData(b, 1000)
	ct := Build(d, BuildOptions{Alpha: 0.05})
	know := NewKnowledge(d)
	// Narrow a handful of variables so Simplify has work to do.
	narrowed := 0
	for _, o := range ct.Undecided() {
		for _, v := range ct.Conds[o].Vars() {
			if narrowed >= 10 {
				break
			}
			if err := know.Absorb(LTConst(v, d.Attrs[v.Attr].Levels/2), LT); err == nil {
				narrowed++
			}
		}
		if narrowed >= 10 {
			break
		}
	}
	conds := make([]*Condition, 0)
	for _, o := range ct.Undecided() {
		conds = append(conds, ct.Conds[o])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := conds[i%len(conds)].Clone()
		c.Simplify(know)
	}
}
