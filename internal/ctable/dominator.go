package ctable

import (
	"bayescrowd/internal/bitset"
	"bayescrowd/internal/dataset"
)

// DomIndex supports fast derivation of dominator sets (Definition 5): it
// precomputes, per attribute i and level v, the bitset of objects whose
// value in i is observed-and-≥-v or missing. D(o) is then the AND of d
// such bitsets — the "fast bitwise operations" that make Get-CTable beat
// the pairwise Baseline in Figure 2.
type DomIndex struct {
	n int
	// geqm[i][v] = { p : p.[i] missing or p.[i] >= v }.
	geqm [][]*bitset.Set
	all  *bitset.Set
}

// NewDomIndex builds the index in O(d · levels · n/64) words of memory and
// O(d · n) time plus the suffix unions.
func NewDomIndex(d *dataset.Dataset) *DomIndex {
	n := d.Len()
	ix := &DomIndex{n: n, geqm: make([][]*bitset.Set, d.NumAttrs()), all: bitset.New(n)}
	ix.all.SetAll()
	for j, attr := range d.Attrs {
		// eq[v]: objects with observed value v; miss: objects missing j.
		eq := make([]*bitset.Set, attr.Levels)
		for v := range eq {
			eq[v] = bitset.New(n)
		}
		miss := bitset.New(n)
		for i := range d.Objects {
			c := d.Objects[i].Cells[j]
			if c.Missing {
				miss.Set(i)
			} else {
				eq[c.Value].Set(i)
			}
		}
		// Suffix-union into geq-or-missing sets.
		ix.geqm[j] = make([]*bitset.Set, attr.Levels)
		acc := miss.Clone()
		for v := attr.Levels - 1; v >= 0; v-- {
			acc.Or(eq[v])
			ix.geqm[j][v] = acc.Clone()
		}
	}
	return ix
}

// Dominators writes D(o) — the objects that possibly dominate object o —
// into out, which must have capacity for the dataset cardinality.
func (ix *DomIndex) Dominators(d *dataset.Dataset, o int, out *bitset.Set) {
	out.CopyFrom(ix.all)
	for j := range d.Attrs {
		c := d.Objects[o].Cells[j]
		if c.Missing {
			continue // D_j(o) is the full set
		}
		out.And(ix.geqm[j][c.Value])
	}
	out.Clear(o)
}

// DominatorsPairwise derives D(o) by comparing o against every other
// object directly — the Baseline of Figure 2. The result equals
// DomIndex.Dominators.
func DominatorsPairwise(d *dataset.Dataset, o int, out *bitset.Set) {
	out.ClearAll()
	oc := d.Objects[o].Cells
	for p := range d.Objects {
		if p == o {
			continue
		}
		pc := d.Objects[p].Cells
		possible := true
		for j := range oc {
			if oc[j].Missing || pc[j].Missing {
				continue
			}
			if pc[j].Value < oc[j].Value {
				possible = false
				break
			}
		}
		if possible {
			out.Set(p)
		}
	}
}
