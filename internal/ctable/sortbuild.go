package ctable

import (
	"sort"

	"bayescrowd/internal/bitset"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/parallel"
)

// Sort/partition-based c-table build. The per-object derivation pays one
// d-way bitset intersection per object — O(n · d · n/64) for the whole
// table, the quadratic term that caps the build well below the
// million-object scale the ROADMAP asks for. This file removes the n
// factor from the object loop by exploiting two facts:
//
//  1. D(o) depends on o only through its cell signature — the vector of
//     (observed?, value) pairs — because the intersection
//     ∩_j geqm[j][o.[j]] reads nothing else of o. Objects sharing a
//     signature share a candidate set, so the intersection is computed
//     once per distinct signature (group), not once per object.
//
//  2. Sorting the groups lexicographically by signature makes groups
//     with a common signature prefix adjacent, so the partial
//     intersections ∩_{j<k} geqm[j][·] can be shared across neighbours:
//     the number of AND operations drops from (groups · d) to the number
//     of distinct signature prefixes, which for the discrete, few-level
//     attributes of the paper's datasets is close to the group count
//     itself.
//
// On the paper's discrete domains the distinct-signature count is capped
// by Π_j (levels_j + 1) regardless of n, so the build cost becomes
// O(n·d + n log n) for the grouping plus O(prefixes · n/64) bitset work —
// near-linearithmic in n, against quadratic for the per-object scan.
//
// The derived table is bit-identical to the per-object path: a group's
// intersection always contains every member (each member's observed cells
// satisfy "≥ value or missing" against its own signature), so |D(o)| is
// the group count minus one for the object itself, and condition clauses
// are emitted in the same ascending-dominator order ForEach used before,
// with the self bit skipped instead of cleared. Equivalence tests in
// sortbuild_test.go pin this against both the per-object and pairwise
// paths.

// sigOf writes object o's cell signature into dst: the observed value per
// attribute, or sigMissing for a missing cell.
const sigMissing = int32(-1)

func sigOf(d *dataset.Dataset, o int, dst []int32) {
	for j := range d.Attrs {
		c := d.Objects[o].Cells[j]
		if c.Missing {
			dst[j] = sigMissing
		} else {
			dst[j] = int32(c.Value)
		}
	}
}

// buildSorted derives every object's dominator set via signature groups
// and writes conditions into ct. ix must be the dataset's DomIndex.
func buildSorted(d *dataset.Dataset, ix *DomIndex, opt BuildOptions, ct *CTable, limit int) {
	n := d.Len()
	if n == 0 {
		return
	}
	na := d.NumAttrs()

	// Flat signature matrix: sigs[o*na : (o+1)*na].
	sigs := make([]int32, n*na)
	for o := 0; o < n; o++ {
		sigOf(d, o, sigs[o*na:(o+1)*na])
	}
	sig := func(o int) []int32 { return sigs[o*na : o*na+na] }

	// Sort object indices lexicographically by signature; equal rows form
	// the groups.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := sig(order[a]), sig(order[b])
		for j := 0; j < na; j++ {
			if sa[j] != sb[j] {
				return sa[j] < sb[j]
			}
		}
		return false
	})

	// Group boundaries: starts[g] indexes into order; group g spans
	// order[starts[g]:starts[g+1]].
	starts := []int{0}
	for i := 1; i < n; i++ {
		sa, sb := sig(order[i-1]), sig(order[i])
		for j := 0; j < na; j++ {
			if sa[j] != sb[j] {
				starts = append(starts, i)
				break
			}
		}
	}
	starts = append(starts, n)
	nGroups := len(starts) - 1

	// Each worker owns a stack of partial intersections
	// levels[k] = all ∩ geqm[0][s_0] ∩ … ∩ geqm[k-1][s_{k-1}]
	// (missing attributes alias the previous level: their candidate set is
	// the full set, no AND needed). Workers pull group indices from an
	// atomic cursor in roughly ascending order, so consecutive pulls
	// usually share long signature prefixes and the stack recomputes only
	// the suffix past the first differing attribute. Sharing is a pure
	// optimisation: every group's intersection is a function of its
	// signature alone, so the table is identical at any worker count or
	// interleaving.
	workers := parallel.Workers(opt.Workers)
	type groupScratch struct {
		levels  []*bitset.Set // levels[k], k in 0..na; levels[0] aliases ix.all
		own     []*bitset.Set // backing sets for non-aliased levels
		lastSig []int32       // signature the stack is valid for, nil if none
	}
	scratch := make([]*groupScratch, workers)
	for w := range scratch {
		gs := &groupScratch{
			levels:  make([]*bitset.Set, na+1),
			own:     make([]*bitset.Set, na+1),
			lastSig: nil,
		}
		gs.levels[0] = ix.all
		for k := 1; k <= na; k++ {
			gs.own[k] = bitset.New(n)
		}
		scratch[w] = gs
	}

	parallel.For(workers, nGroups, func(w, g int) {
		gs := scratch[w]
		s := sig(order[starts[g]])

		// Longest prefix the worker's stack already covers.
		lcp := 0
		if gs.lastSig != nil {
			for lcp < na && gs.lastSig[lcp] == s[lcp] {
				lcp++
			}
		}
		for k := lcp; k < na; k++ {
			prev := gs.levels[k]
			if s[k] == sigMissing {
				gs.levels[k+1] = prev // full candidate set on attribute k
				continue
			}
			cur := gs.own[k+1]
			cur.CopyFrom(prev)
			cur.And(ix.geqm[k][s[k]])
			gs.levels[k+1] = cur
		}
		if gs.lastSig == nil {
			gs.lastSig = make([]int32, na)
		}
		copy(gs.lastSig, s)

		cand := gs.levels[na]
		// The candidate set contains every group member (see file comment),
		// so |D(o)| is its cardinality minus the object itself.
		size := cand.Count() - 1
		for i := starts[g]; i < starts[g+1]; i++ {
			o := order[i]
			ct.DomSizes[o] = size
			switch {
			case size == 0:
				ct.Conds[o] = True()
			case limit >= 0 && size > limit:
				ct.Conds[o] = False()
				ct.PrunedByAlpha[o] = true
			default:
				ct.Conds[o] = buildConditionSkip(d, o, cand)
			}
		}
	})
}

// buildConditionSkip is buildCondition over a candidate set that still
// contains the object itself: the self bit is skipped during iteration
// instead of being cleared from the (group-shared, read-only) set.
func buildConditionSkip(d *dataset.Dataset, o int, cand *bitset.Set) *Condition {
	var clauses [][]Expr
	result := (*Condition)(nil)
	cand.ForEach(func(p int) bool {
		if p == o {
			return true
		}
		clause := buildClause(d, o, p)
		if clause == nil {
			result = False()
			return false
		}
		clauses = append(clauses, clause)
		return true
	})
	if result != nil {
		return result
	}
	return FromClauses(clauses)
}
