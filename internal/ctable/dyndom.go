package ctable

import (
	"bayescrowd/internal/bitset"
	"bayescrowd/internal/dataset"
)

// DynDomIndex is the updatable form of the per-dimension candidate index
// behind Get-CTable (DomIndex / the sort-partition build): for every
// attribute j and level v it maintains, over the *live* slots of a
// sliding window, both directions of the possible-dominance predicate —
//
//	geqm[j][v] = { live q : q.[j] missing or q.[j] >= v }
//	leqm[j][v] = { live q : q.[j] missing or q.[j] <= v }
//
// so that one d-way AND answers either "who possibly dominates o"
// (Dominators, the batch index's query) or the reverse "whom does o
// possibly dominate" (Dominatees, the query eviction patching needs).
// Insert and Evict cost O(d · levels) bit operations; both queries cost
// O(d · cap/64) words, independent of how many objects have ever passed
// through the window.
//
// Slots are positions in a fixed-capacity bit universe; the DynCTable
// that owns the index recycles the slot of an evicted object for a later
// arrival, and Grow widens every set in lock step when the window
// outgrows the capacity.
type DynDomIndex struct {
	attrs []dataset.Attribute
	cap   int
	live  *bitset.Set
	geqm  [][]*bitset.Set
	leqm  [][]*bitset.Set
}

// NewDynDomIndex returns an empty index over the attribute schema with
// capacity for the given number of slots (grown on demand; a capacity
// hint of 0 starts at a small default).
func NewDynDomIndex(attrs []dataset.Attribute, capacity int) *DynDomIndex {
	if capacity <= 0 {
		capacity = 64
	}
	ix := &DynDomIndex{
		attrs: attrs,
		cap:   capacity,
		live:  bitset.New(capacity),
		geqm:  make([][]*bitset.Set, len(attrs)),
		leqm:  make([][]*bitset.Set, len(attrs)),
	}
	for j, a := range attrs {
		ix.geqm[j] = make([]*bitset.Set, a.Levels)
		ix.leqm[j] = make([]*bitset.Set, a.Levels)
		for v := 0; v < a.Levels; v++ {
			ix.geqm[j][v] = bitset.New(capacity)
			ix.leqm[j][v] = bitset.New(capacity)
		}
	}
	return ix
}

// Cap returns the current slot capacity.
func (ix *DynDomIndex) Cap() int { return ix.cap }

// Grow widens every per-dimension set to hold at least n slots.
func (ix *DynDomIndex) Grow(n int) {
	if n <= ix.cap {
		return
	}
	ix.cap = n
	ix.live.Grow(n)
	for j := range ix.attrs {
		for v := range ix.geqm[j] {
			ix.geqm[j][v].Grow(n)
			ix.leqm[j][v].Grow(n)
		}
	}
}

// Insert adds the object occupying slot with the given cells to every
// per-dimension set: a missing cell joins all levels of its attribute
// (it could take any value), an observed value v joins geqm[j][0..v] and
// leqm[j][v..L-1].
func (ix *DynDomIndex) Insert(slot int, cells []dataset.Cell) {
	ix.live.Set(slot)
	for j := range ix.attrs {
		c := cells[j]
		for v := 0; v < ix.attrs[j].Levels; v++ {
			if c.Missing || c.Value >= v {
				ix.geqm[j][v].Set(slot)
			}
			if c.Missing || c.Value <= v {
				ix.leqm[j][v].Set(slot)
			}
		}
	}
}

// Evict removes the slot from every per-dimension set.
func (ix *DynDomIndex) Evict(slot int, cells []dataset.Cell) {
	ix.live.Clear(slot)
	for j := range ix.attrs {
		c := cells[j]
		for v := 0; v < ix.attrs[j].Levels; v++ {
			if c.Missing || c.Value >= v {
				ix.geqm[j][v].Clear(slot)
			}
			if c.Missing || c.Value <= v {
				ix.leqm[j][v].Clear(slot)
			}
		}
	}
}

// Dominators writes into out the live slots that possibly dominate an
// object with the given cells (Definition 5): candidates must be
// observed-and-≥ or missing on every attribute the object observes. The
// querying object's own slot, if live, is excluded by the caller; out
// must have the index's capacity.
func (ix *DynDomIndex) Dominators(cells []dataset.Cell, out *bitset.Set) {
	out.CopyFrom(ix.live)
	for j := range ix.attrs {
		if c := cells[j]; !c.Missing {
			out.And(ix.geqm[j][c.Value])
		}
	}
}

// Dominatees writes into out the live slots that an object with the
// given cells possibly dominates — the reverse query: candidates must be
// observed-and-≤ or missing wherever the object observes a value. It is
// the set of objects whose conditions carry (or must gain) a clause for
// this object.
func (ix *DynDomIndex) Dominatees(cells []dataset.Cell, out *bitset.Set) {
	out.CopyFrom(ix.live)
	for j := range ix.attrs {
		if c := cells[j]; !c.Missing {
			out.And(ix.leqm[j][c.Value])
		}
	}
}
