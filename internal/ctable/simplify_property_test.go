package ctable

import (
	"math/rand"
	"testing"

	"bayescrowd/internal/dataset"
)

// TestSimplifyPreservesSemantics is the soundness property of condition
// simplification: for every full variable assignment *consistent with the
// accumulated knowledge*, the simplified condition evaluates exactly like
// the original. Knowledge here is produced the way the framework produces
// it — by absorbing answers that are true under a hidden ground
// assignment — so consistency is guaranteed by construction.
func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 200; trial++ {
		const levels = 4
		nVars := 2 + rng.Intn(4)
		attrs := make([]dataset.Attribute, 1)
		attrs[0] = dataset.Attribute{Name: "a", Levels: levels}
		schema := dataset.New(attrs)

		vars := make([]Var, nVars)
		for i := range vars {
			vars[i] = Var{Obj: i, Attr: 0}
		}

		// Hidden ground assignment the "crowd" answers from.
		ground := map[Var]int{}
		for _, v := range vars {
			ground[v] = rng.Intn(levels)
		}

		// Random CNF over the variables.
		nClauses := 1 + rng.Intn(4)
		clauses := make([][]Expr, 0, nClauses)
		for c := 0; c < nClauses; c++ {
			var clause []Expr
			for k := 0; k < 1+rng.Intn(3); k++ {
				x := vars[rng.Intn(nVars)]
				switch rng.Intn(3) {
				case 0:
					clause = append(clause, LTConst(x, 1+rng.Intn(levels)))
				case 1:
					clause = append(clause, GTConst(x, rng.Intn(levels-1)))
				default:
					y := vars[rng.Intn(nVars)]
					if y != x {
						clause = append(clause, GTVar(x, y))
					} else {
						clause = append(clause, GTConst(x, 0))
					}
				}
			}
			clauses = append(clauses, clause)
		}
		orig := FromClauses(clauses)
		if _, decided := orig.Decided(); decided {
			continue
		}

		// Absorb a few truthful answers about random expressions.
		know := NewKnowledge(schema)
		exprs := orig.Exprs()
		for k := 0; k < 1+rng.Intn(3); k++ {
			e := exprs[rng.Intn(len(exprs))]
			if err := know.Absorb(e, relUnder(ground, e)); err != nil {
				t.Fatalf("trial %d: truthful answer conflicted: %v", trial, err)
			}
		}

		simplified := orig.Clone()
		simplified.Simplify(know)

		// Check every assignment consistent with the knowledge.
		assign := map[Var]int{}
		var rec func(i int)
		rec = func(i int) {
			if i == nVars {
				if !consistent(know, orig, assign) {
					return
				}
				wantV, wantD := orig.EvalAssign(assign)
				gotV, gotD := simplified.EvalAssign(assign)
				if !wantD || !gotD {
					t.Fatalf("trial %d: undecided under full assignment", trial)
				}
				if gotV != wantV {
					t.Fatalf("trial %d: assignment %v: original=%v simplified=%v\norig: %v\nsimp: %v",
						trial, assign, wantV, gotV, orig, simplified)
				}
				return
			}
			for val := 0; val < levels; val++ {
				assign[vars[i]] = val
				rec(i + 1)
			}
			delete(assign, vars[i])
		}
		rec(0)
	}
}

// relUnder returns the true relation of e's operands under the ground
// assignment.
func relUnder(ground map[Var]int, e Expr) Rel {
	x := ground[e.X]
	y := e.C
	if e.Kind == VarGTVar {
		y = ground[e.Y]
	}
	switch {
	case x < y:
		return LT
	case x > y:
		return GT
	default:
		return EQ
	}
}

// consistent reports whether the assignment agrees with everything the
// knowledge asserts about the variables of the condition.
func consistent(k *Knowledge, c *Condition, assign map[Var]int) bool {
	for _, v := range c.Vars() {
		lo, hi := k.Bounds(v)
		if assign[v] < lo || assign[v] > hi {
			return false
		}
	}
	// Pairwise relations: evaluate each stored relation as an expression
	// against the assignment.
	for key, rel := range k.rel {
		x, ok1 := assign[key[0]]
		y, ok2 := assign[key[1]]
		if !ok1 || !ok2 {
			continue
		}
		switch rel {
		case LT:
			if !(x < y) {
				return false
			}
		case GT:
			if !(x > y) {
				return false
			}
		default:
			if x != y {
				return false
			}
		}
	}
	return true
}
