// Package ctable implements the conditional-table (c-table) model of the
// paper's modeling phase (§4): every object o of an incomplete dataset is
// paired with a propositional condition φ(o) in CNF such that o is a
// skyline answer iff φ(o) is satisfied.
//
// Clauses of φ(o) come from the dominator set D(o) — the objects that could
// possibly dominate o (Definition 5) — derived either by the paper's fast
// per-dimension-sort + bitwise method (Get-CTable, Algorithm 2) or by the
// pairwise Baseline it is compared against in Figure 2. Expressions (the
// disjuncts of a clause) are inequalities between a variable Var(o, a) —
// a missing cell — and a constant or a second variable; each expression is
// also a crowd task.
package ctable

import "fmt"

// Var identifies the missing cell of object Obj in attribute Attr — the
// paper's Var(o_i, a_j).
type Var struct {
	Obj, Attr int
}

// String renders the variable in the paper's notation with 1-based indices,
// e.g. "Var(o5,a2)".
func (v Var) String() string { return fmt.Sprintf("Var(o%d,a%d)", v.Obj+1, v.Attr+1) }

// Rel is the three-way relation a crowd worker can assert between the two
// operands of an expression: smaller than, equal to, or larger than.
type Rel int8

// Relation values. The zero value is LT so that Rel is safe to compare but
// callers should always set it explicitly.
const (
	LT Rel = iota
	EQ
	GT
)

// String returns <, =, or >.
func (r Rel) String() string {
	switch r {
	case LT:
		return "<"
	case EQ:
		return "="
	case GT:
		return ">"
	default:
		return fmt.Sprintf("Rel(%d)", int8(r))
	}
}

// Kind discriminates the three expression shapes that occur in skyline
// conditions.
type Kind int8

const (
	// VarLTConst is "X < C".
	VarLTConst Kind = iota
	// VarGTConst is "X > C".
	VarGTConst
	// VarGTVar is "X > Y".
	VarGTVar
)

// Expr is one expression (disjunct) of a condition clause and equally one
// crowd task: an inequality whose left operand is always a variable. Expr
// is a comparable value type so it can key maps (frequency counting, task
// dedup).
type Expr struct {
	Kind Kind
	X    Var
	// Y is the right operand for VarGTVar.
	Y Var
	// C is the right operand for VarLTConst / VarGTConst.
	C int
}

// LTConst returns the expression "x < c".
func LTConst(x Var, c int) Expr { return Expr{Kind: VarLTConst, X: x, C: c} }

// GTConst returns the expression "x > c".
func GTConst(x Var, c int) Expr { return Expr{Kind: VarGTConst, X: x, C: c} }

// GTVar returns the expression "x > y".
func GTVar(x, y Var) Expr { return Expr{Kind: VarGTVar, X: x, Y: y} }

// Vars appends the variables referenced by the expression to dst and
// returns it.
func (e Expr) Vars(dst []Var) []Var {
	dst = append(dst, e.X)
	if e.Kind == VarGTVar {
		dst = append(dst, e.Y)
	}
	return dst
}

// EvalAssign evaluates the expression under a (possibly partial) variable
// assignment. decided is false when a referenced variable is unassigned.
func (e Expr) EvalAssign(assign map[Var]int) (value, decided bool) {
	x, okX := assign[e.X]
	if !okX {
		return false, false
	}
	switch e.Kind {
	case VarLTConst:
		return x < e.C, true
	case VarGTConst:
		return x > e.C, true
	case VarGTVar:
		y, okY := assign[e.Y]
		if !okY {
			return false, false
		}
		return x > y, true
	default:
		panic(fmt.Sprintf("ctable: unknown expression kind %d", e.Kind))
	}
}

// Holds reports whether the expression is satisfied when its left operand
// takes value x and (for VarGTVar) its right operand takes value y; y is
// ignored for constant comparisons.
func (e Expr) Holds(x, y int) bool {
	switch e.Kind {
	case VarLTConst:
		return x < e.C
	case VarGTConst:
		return x > e.C
	case VarGTVar:
		return x > y
	default:
		panic(fmt.Sprintf("ctable: unknown expression kind %d", e.Kind))
	}
}

// String renders the expression in the paper's notation, e.g.
// "Var(o5,a2) < 2".
func (e Expr) String() string {
	switch e.Kind {
	case VarLTConst:
		return fmt.Sprintf("%v < %d", e.X, e.C)
	case VarGTConst:
		return fmt.Sprintf("%v > %d", e.X, e.C)
	case VarGTVar:
		return fmt.Sprintf("%v > %v", e.X, e.Y)
	default:
		return fmt.Sprintf("Expr(kind=%d)", e.Kind)
	}
}
