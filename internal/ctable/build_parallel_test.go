package ctable

import (
	"math/rand"
	"reflect"
	"testing"

	"bayescrowd/internal/dataset"
)

// TestBuildWorkersEquivalence asserts the parallel dominator scan and CNF
// construction reproduce the sequential c-table exactly — conditions,
// dominator-set sizes and α-pruning statistics — for both derivation
// paths, across seeded random datasets.
func TestBuildWorkersEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		truth := dataset.GenNBA(rng, 300)
		d := truth.InjectMissing(rng, 0.15)
		for _, pairwise := range []bool{false, true} {
			seq := Build(d, BuildOptions{Alpha: 0.05, Pairwise: pairwise, Workers: 1})
			for _, workers := range []int{2, 7, 32} {
				par := Build(d, BuildOptions{Alpha: 0.05, Pairwise: pairwise, Workers: workers})
				if !reflect.DeepEqual(par.DomSizes, seq.DomSizes) {
					t.Fatalf("seed %d pairwise=%v workers=%d: DomSizes differ", seed, pairwise, workers)
				}
				if par.Pruned != seq.Pruned || !reflect.DeepEqual(par.PrunedByAlpha, seq.PrunedByAlpha) {
					t.Fatalf("seed %d pairwise=%v workers=%d: pruning stats differ (%d vs %d)",
						seed, pairwise, workers, par.Pruned, seq.Pruned)
				}
				for o := range seq.Conds {
					if got, want := par.Conds[o].String(), seq.Conds[o].String(); got != want {
						t.Fatalf("seed %d pairwise=%v workers=%d: φ(o%d) = %q, want %q",
							seed, pairwise, workers, o, got, want)
					}
				}
			}
		}
	}
}

// TestBuildParallelRace hammers the parallel build with more objects than
// workers; `go test -race` is the gate here — per-worker dominator
// bitsets must never be shared across in-flight objects.
func TestBuildParallelRace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := dataset.GenNBA(rng, 1000)
	d := truth.InjectMissing(rng, 0.1)
	ct := Build(d, BuildOptions{Alpha: 0.01, Workers: 8})
	if len(ct.Conds) != d.Len() {
		t.Fatalf("built %d conditions for %d objects", len(ct.Conds), d.Len())
	}
}
