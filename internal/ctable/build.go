package ctable

import (
	"fmt"

	"bayescrowd/internal/bitset"
	"bayescrowd/internal/dataset"
	"bayescrowd/internal/parallel"
	"bayescrowd/internal/skyline"
)

// CTable pairs every object of an incomplete dataset with its condition
// (Definition 3).
type CTable struct {
	// Conds[i] is φ(o_i).
	Conds []*Condition
	// DomSizes[i] is |D(o_i)|, kept for diagnostics and for the α-pruning
	// statistics reported by the benchmarks.
	DomSizes []int
	// PrunedByAlpha[i] marks objects whose condition was forced false by
	// the α threshold rather than by an empty clause.
	PrunedByAlpha []bool
	// Pruned counts the marks in PrunedByAlpha.
	Pruned int
}

// BuildOptions tunes Get-CTable.
type BuildOptions struct {
	// Alpha is the pruning threshold of Algorithm 2: an object whose
	// dominator set exceeds Alpha·|O| is deemed a non-answer and its
	// condition set to false. Alpha <= 0 disables pruning (every
	// candidate keeps its full condition).
	Alpha float64
	// Pairwise switches the dominator-set derivation to the pairwise
	// Baseline (Figure 2's comparator) instead of the sorted/bitwise
	// index. The resulting c-table is identical.
	Pairwise bool
	// PerObject switches off the signature-group partitioning (see
	// sortbuild.go) and derives every object's dominator set with its own
	// DomIndex intersection — the pre-partitioning behaviour, kept
	// selectable for equivalence tests and the build benchmark. The
	// resulting c-table is identical.
	PerObject bool
	// Workers bounds the goroutines the dominator derivation and CNF
	// construction fan out across: <= 0 means one per available CPU,
	// 1 keeps the build fully sequential. Groups (objects, under
	// PerObject or Pairwise) are independent and every result lands in
	// its own slot, so the c-table is identical at any setting.
	Workers int
}

// Build constructs the c-table for a skyline query over the incomplete
// dataset (Algorithm 2, Get-CTable).
func Build(d *dataset.Dataset, opt BuildOptions) *CTable {
	n := d.Len()
	ct := &CTable{Conds: make([]*Condition, n), DomSizes: make([]int, n), PrunedByAlpha: make([]bool, n)}

	var ix *DomIndex
	if !opt.Pairwise {
		ix = NewDomIndex(d)
	}
	limit := -1
	if opt.Alpha > 0 {
		limit = int(opt.Alpha * float64(n))
	}

	// Default path: partition objects into signature groups and derive one
	// dominator set per group (sortbuild.go) — near-linearithmic where the
	// per-object scan below is quadratic. The per-object and pairwise
	// paths remain selectable and produce identical tables.
	if !opt.Pairwise && !opt.PerObject {
		buildSorted(d, ix, opt, ct, limit)
		for _, pruned := range ct.PrunedByAlpha {
			if pruned {
				ct.Pruned++
			}
		}
		return ct
	}

	// Objects partition across the pool; each worker owns one dominator
	// bitset as scratch and writes only the slots of the objects it was
	// handed, so the table is identical at any worker count.
	workers := parallel.Workers(opt.Workers)
	doms := make([]*bitset.Set, workers)
	for w := range doms {
		doms[w] = bitset.New(n)
	}
	parallel.For(workers, n, func(w, o int) {
		dom := doms[w]
		if opt.Pairwise {
			DominatorsPairwise(d, o, dom)
		} else {
			ix.Dominators(d, o, dom)
		}
		size := dom.Count()
		ct.DomSizes[o] = size

		switch {
		case size == 0:
			ct.Conds[o] = True() // o is certainly a skyline object
		case limit >= 0 && size > limit:
			ct.Conds[o] = False() // deemed dominated (α pruning)
			ct.PrunedByAlpha[o] = true
		default:
			ct.Conds[o] = buildCondition(d, o, dom)
		}
	})
	for _, pruned := range ct.PrunedByAlpha {
		if pruned {
			ct.Pruned++
		}
	}
	return ct
}

// buildCondition emits the CNF condition of object o given its dominator
// set: one clause [p ⊀ o] per dominator p, holding one expression per
// attribute where o could still beat p. An empty clause (p dominates o on
// every attribute already, with no variable able to break it) forces the
// condition to false — this subsumes Algorithm 2's explicit
// complete-object dominance check (lines 8-9).
func buildCondition(d *dataset.Dataset, o int, dom *bitset.Set) *Condition {
	var clauses [][]Expr
	result := (*Condition)(nil)
	dom.ForEach(func(p int) bool {
		clause := buildClause(d, o, p)
		if clause == nil {
			result = False()
			return false
		}
		clauses = append(clauses, clause)
		return true
	})
	if result != nil {
		return result
	}
	return FromClauses(clauses)
}

// buildClause returns the disjuncts of [p ⊀ o]: for every attribute, the
// expression asserting that o strictly beats p there, when that is still
// possible. nil means the clause is empty (p certainly dominates o).
func buildClause(d *dataset.Dataset, o, p int) []Expr {
	return ClauseBetween(d.Attrs, o, d.Objects[o].Cells, p, d.Objects[p].Cells)
}

// ClauseBetween builds the clause [p ⊀ o] from raw cells: for every
// attribute, the expression asserting that object o (with cells oCells,
// variables numbered Var{o, j}) strictly beats its possible dominator p
// (pCells, Var{p, j}) there, when that is still possible. nil means the
// clause is empty — p certainly dominates o. It is the cell-level core of
// the batch build, exported for the incremental c-table (DynCTable),
// whose objects are numbered by stream identity rather than by dataset
// index.
//
// Statically unsatisfiable expressions — "x < 0" and "x > Levels-1" — are
// dropped at construction, so every emitted expression is a meaningful
// crowd task.
func ClauseBetween(attrs []dataset.Attribute, o int, oCells []dataset.Cell, p int, pCells []dataset.Cell) []Expr {
	var clause []Expr
	for j := range attrs {
		oc := oCells[j]
		pc := pCells[j]
		switch {
		case !oc.Missing && !pc.Missing:
			if oc.Value > pc.Value {
				// o already beats p here; p can never dominate o, the
				// clause is trivially satisfied, and by Definition 5 such
				// a p is not in D(o) at all. Reaching this square means
				// the dominator derivation is broken.
				panic(fmt.Sprintf("ctable: object %d in D(%d) despite losing attribute %d", p, o, j))
			}
			// o.[j] <= p.[j]: o cannot beat p here, no expression.
		case !oc.Missing && pc.Missing:
			// o beats p iff Var(p,j) < o.[j]; impossible when o.[j] = 0.
			if oc.Value > 0 {
				clause = append(clause, LTConst(Var{Obj: p, Attr: j}, oc.Value))
			}
		case oc.Missing && !pc.Missing:
			// o beats p iff Var(o,j) > p.[j]; impossible when p.[j] is max.
			if pc.Value < attrs[j].Levels-1 {
				clause = append(clause, GTConst(Var{Obj: o, Attr: j}, pc.Value))
			}
		default:
			clause = append(clause, GTVar(Var{Obj: o, Attr: j}, Var{Obj: p, Attr: j}))
		}
	}
	return clause
}

// ResultSet returns the indices of objects whose condition is decided
// true. During the crowdsourcing phase the framework widens this with
// objects whose satisfaction probability exceeds 0.5 (§7).
func (ct *CTable) ResultSet() []int {
	var out []int
	for i, c := range ct.Conds {
		if c.IsTrue() {
			out = append(out, i)
		}
	}
	return out
}

// Undecided returns the indices of objects whose condition is still open.
func (ct *CTable) Undecided() []int {
	var out []int
	for i, c := range ct.Conds {
		if _, decided := c.Decided(); !decided {
			out = append(out, i)
		}
	}
	return out
}

// SimplifyAll re-simplifies every undecided condition under the given
// knowledge, returning how many conditions became decided.
func (ct *CTable) SimplifyAll(k *Knowledge) int {
	settled := 0
	for _, c := range ct.Conds {
		if _, decided := c.Decided(); decided {
			continue
		}
		c.Simplify(k)
		if _, decided := c.Decided(); decided {
			settled++
		}
	}
	return settled
}

// Verify checks the c-table against a complete ground-truth dataset: with
// every variable assigned its true value, each condition must evaluate to
// the truth of "o is a skyline object". Two deviations are by design and
// excused: objects pruned by the α threshold (conservatively false), and
// objects with a full-tie twin — the paper's clauses use strict
// inequalities (Table 3), so an object equalled on every attribute is
// treated as dominated even though Definition 1 says it is not. Verify
// returns the object indices where the c-table is otherwise wrong (empty
// for a sound table); integration tests assert emptiness.
func (ct *CTable) Verify(truth *dataset.Dataset) []int {
	sky := map[int]bool{}
	for _, i := range skyline.BNL(truth) {
		sky[i] = true
	}
	var bad []int
	for o, c := range ct.Conds {
		if ct.PrunedByAlpha != nil && ct.PrunedByAlpha[o] {
			continue
		}
		assign := map[Var]int{}
		for _, v := range c.Vars() {
			assign[v] = truth.Value(v.Obj, v.Attr)
		}
		got, decided := c.EvalAssign(assign)
		if !decided {
			bad = append(bad, o)
			continue
		}
		if got == sky[o] {
			continue
		}
		if !got && sky[o] && hasFullTie(truth, o) {
			continue
		}
		bad = append(bad, o)
	}
	return bad
}

// hasFullTie reports whether some other object equals o on every attribute
// in the ground truth.
func hasFullTie(truth *dataset.Dataset, o int) bool {
	oc := truth.Objects[o].Cells
	for p := range truth.Objects {
		if p == o {
			continue
		}
		tie := true
		for j := range oc {
			if truth.Objects[p].Cells[j].Value != oc[j].Value {
				tie = false
				break
			}
		}
		if tie {
			return true
		}
	}
	return false
}
