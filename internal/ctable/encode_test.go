package ctable

import (
	"bytes"
	"math/rand"
	"testing"
)

func randExpr(rng *rand.Rand) Expr {
	x := Var{Obj: rng.Intn(50), Attr: rng.Intn(8)}
	switch rng.Intn(3) {
	case 0:
		return LTConst(x, rng.Intn(10))
	case 1:
		return GTConst(x, rng.Intn(10))
	default:
		return GTVar(x, Var{Obj: rng.Intn(50), Attr: rng.Intn(8)})
	}
}

// TestAppendKeyInjective checks the fingerprint encoding's contract:
// equal expressions encode equally, distinct expressions distinctly, and
// the result is independent of the destination buffer's prior contents.
func TestAppendKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[string]Expr{}
	for i := 0; i < 5000; i++ {
		e := randExpr(rng)
		key := string(e.AppendKey(nil))
		if prev, ok := seen[key]; ok && prev != e {
			t.Fatalf("key collision: %v and %v both encode to %x", prev, e, key)
		}
		seen[key] = e

		// Re-encoding is deterministic and append-only.
		withPrefix := e.AppendKey([]byte("prefix"))
		if !bytes.HasPrefix(withPrefix, []byte("prefix")) || string(withPrefix[6:]) != key {
			t.Fatalf("AppendKey not append-only for %v", e)
		}
	}
}

// TestAppendKeySelfDelimiting concatenates encodings and checks the kind
// byte fully determines each record's length, so sequences parse back
// unambiguously.
func TestAppendKeySelfDelimiting(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		a, b := randExpr(rng), randExpr(rng)
		ab := b.AppendKey(a.AppendKey(nil))
		ba := a.AppendKey(b.AppendKey(nil))
		if a != b && bytes.Equal(ab, ba) {
			t.Fatalf("concatenation ambiguous for %v / %v", a, b)
		}
	}
}

// TestCompareIsTotalOrder checks Compare agrees with itself reversed and
// that equality means equal expressions.
func TestCompareIsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5000; trial++ {
		a, b := randExpr(rng), randExpr(rng)
		ab, ba := a.Compare(b), b.Compare(a)
		switch {
		case ab == 0:
			if a != b {
				t.Fatalf("Compare says equal for distinct %v / %v", a, b)
			}
			if ba != 0 {
				t.Fatalf("Compare asymmetric at equality: %v / %v", a, b)
			}
		case ab < 0:
			if ba <= 0 {
				t.Fatalf("Compare not antisymmetric: %v / %v", a, b)
			}
		default:
			if ba >= 0 {
				t.Fatalf("Compare not antisymmetric: %v / %v", a, b)
			}
		}
	}
}
