package ctable

import (
	"fmt"

	"bayescrowd/internal/dataset"
)

// Knowledge accumulates what crowd answers have revealed about the
// variables: an interval of still-possible values per variable (answers
// against constants only ever shrink an interval) and the known relation
// between variable pairs that were compared directly.
//
// It is the machinery behind the paper's observation (§7.3) that
// BayesCrowd "is able to infer some preference information in tasks using
// returned answers": one answer narrows a variable for every condition
// that mentions it, and interval reasoning can decide var-vs-var
// expressions that were never asked.
type Knowledge struct {
	levels []int // per attribute
	lo, hi map[Var]int
	rel    map[[2]Var]Rel // key ordered by variable identity; value oriented as key[0] REL key[1]

	// NoInference disables all cross-expression reasoning: an answer
	// decides only the literally asked expression, the way a system
	// without the c-table/interval machinery (e.g. CrowdSky) consumes
	// answers. It exists for the answer-propagation ablation benchmark.
	NoInference bool
	exprTruth   map[Expr]bool

	// forgotten is the tombstone set: every variable Forget has ever
	// retracted. Absorb rejects answers mentioning a forgotten variable
	// (ErrForgotten) — stream ids are never reused, so a forgotten
	// variable can only belong to an evicted object, and resurrecting an
	// interval for it would corrupt every later inference. The set grows
	// with evictions, not with answers: callers with unbounded streams
	// pay O(#vars ever forgotten) memory for the structural guarantee
	// that stale answers cannot be absorbed.
	forgotten map[Var]bool

	// Conflicts counts answers Absorb rejected for contradicting earlier
	// knowledge. Discarded answers used to be invisible; the counter (and
	// the ConflictError detail Absorb returns) makes noisy-worker damage
	// observable and drives the crowd phase's re-ask policy.
	Conflicts int
}

// NewKnowledge returns empty knowledge over the dataset's attribute
// domains.
func NewKnowledge(d *dataset.Dataset) *Knowledge {
	levels := make([]int, d.NumAttrs())
	for j, a := range d.Attrs {
		levels[j] = a.Levels
	}
	return &Knowledge{
		levels: levels,
		lo:     map[Var]int{}, hi: map[Var]int{},
		rel:       map[[2]Var]Rel{},
		exprTruth: map[Expr]bool{},
		forgotten: map[Var]bool{},
	}
}

// Empty reports whether the knowledge currently records nothing: no
// interval was ever narrowed (or everything narrowed has since been
// forgotten), no pairwise relation is stored, and no expression was
// answered. The tombstone set does not count — forgotten variables are
// an absence of knowledge, not a presence. Streaming callers use it to
// skip condition simplification entirely until the first answer lands,
// keeping the no-crowd path bit-identical to the machine-only engine.
func (k *Knowledge) Empty() bool {
	return len(k.lo) == 0 && len(k.hi) == 0 && len(k.rel) == 0 && len(k.exprTruth) == 0
}

// Bounds returns the inclusive interval of values still possible for x.
func (k *Knowledge) Bounds(x Var) (lo, hi int) {
	lo, hi = 0, k.levels[x.Attr]-1
	if l, ok := k.lo[x]; ok && l > lo {
		lo = l
	}
	if h, ok := k.hi[x]; ok && h < hi {
		hi = h
	}
	return lo, hi
}

// Pinned reports whether x is known exactly, and its value.
func (k *Knowledge) Pinned(x Var) (int, bool) {
	lo, hi := k.Bounds(x)
	if lo == hi {
		return lo, true
	}
	return 0, false
}

// ErrConflict is returned when an answer contradicts earlier knowledge
// (possible with imperfect workers); the conflicting answer is discarded
// and the previous state kept. Match with errors.Is — the concrete value
// Absorb returns is a *ConflictError carrying the rejected answer.
var ErrConflict = fmt.Errorf("ctable: answer conflicts with existing knowledge")

// ConflictError details one rejected answer: which expression was
// answered, what relation the crowd asserted, and the surviving interval
// it would have emptied (constant comparisons) or the stored relation it
// contradicts (variable pairs). errors.Is(err, ErrConflict) matches it.
type ConflictError struct {
	Expr Expr
	Rel  Rel
	// Lo, Hi is the variable's surviving interval (constant comparisons).
	Lo, Hi int
	// Stored is the previously recorded relation (variable pairs).
	Stored Rel
}

// Error renders the conflict with the stored fact it contradicts.
func (e *ConflictError) Error() string {
	if e.Expr.Kind == VarGTVar {
		return fmt.Sprintf("ctable: answer %v %v %v conflicts with stored relation %v",
			e.Expr.X, e.Rel, e.Expr.Y, e.Stored)
	}
	return fmt.Sprintf("ctable: answer %v %v %d conflicts with interval [%d,%d]",
		e.Expr.X, e.Rel, e.Expr.C, e.Lo, e.Hi)
}

// Is makes errors.Is(err, ErrConflict) succeed for ConflictError values.
func (e *ConflictError) Is(target error) bool { return target == ErrConflict }

// ErrForgotten is returned when an answer mentions a variable Forget has
// retracted — an answer for an object that already left the streaming
// window. The answer is discarded and nothing is recorded: absorbing it
// would silently resurrect an interval for a variable no live condition
// can mention. Match with errors.Is — the concrete value Absorb returns
// is a *ForgottenError naming the stale variable.
var ErrForgotten = fmt.Errorf("ctable: answer mentions a forgotten variable")

// ForgottenError details one stale answer rejected by the
// Absorb-after-Forget guard: the answered expression, the asserted
// relation, and the first forgotten variable it mentions.
// errors.Is(err, ErrForgotten) matches it.
type ForgottenError struct {
	Expr Expr
	Rel  Rel
	// Var is the forgotten variable the expression mentions.
	Var Var
}

// Error renders the rejection with the stale variable.
func (e *ForgottenError) Error() string {
	return fmt.Sprintf("ctable: answer %v (%v) mentions forgotten variable %v", e.Expr, e.Rel, e.Var)
}

// Is makes errors.Is(err, ErrForgotten) succeed for ForgottenError values.
func (e *ForgottenError) Is(target error) bool { return target == ErrForgotten }

// forgottenVar returns the first forgotten variable the expression
// mentions, if any. nil-map safe for zero-value Knowledge literals.
func (k *Knowledge) forgottenVar(e Expr) (Var, bool) {
	if len(k.forgotten) == 0 {
		return Var{}, false
	}
	if k.forgotten[e.X] {
		return e.X, true
	}
	if e.Kind == VarGTVar && k.forgotten[e.Y] {
		return e.Y, true
	}
	return Var{}, false
}

// Absorb records the crowd's answer rel for the expression's comparison
// (left operand REL right operand). For constant comparisons the
// variable's interval shrinks; for variable pairs the relation is stored.
// It returns a *ConflictError (matching ErrConflict) — leaving the
// knowledge unchanged and incrementing Conflicts — if the answer would
// empty the variable's domain or contradict a stored relation, and a
// *ForgottenError (matching ErrForgotten) if the expression mentions a
// variable Forget has retracted; the guard applies under NoInference
// too, so stale answers cannot resurrect state on any path.
func (k *Knowledge) Absorb(e Expr, rel Rel) error {
	if v, gone := k.forgottenVar(e); gone {
		return &ForgottenError{Expr: e, Rel: rel, Var: v}
	}
	if k.NoInference {
		k.exprTruth[e] = exprTruthFromRel(e, rel)
		return nil
	}
	switch e.Kind {
	case VarLTConst, VarGTConst:
		lo, hi := k.Bounds(e.X)
		nlo, nhi := lo, hi
		switch rel {
		case LT:
			if e.C-1 < nhi {
				nhi = e.C - 1
			}
		case EQ:
			nlo, nhi = max(nlo, e.C), min(nhi, e.C)
		case GT:
			if e.C+1 > nlo {
				nlo = e.C + 1
			}
		}
		if nlo > nhi {
			k.Conflicts++
			return &ConflictError{Expr: e, Rel: rel, Lo: lo, Hi: hi}
		}
		k.lo[e.X], k.hi[e.X] = nlo, nhi
		return nil
	case VarGTVar:
		key, oriented := pairKey(e.X, e.Y, rel)
		if old, ok := k.rel[key]; ok && old != oriented {
			k.Conflicts++
			stored, _ := k.relation(e.X, e.Y)
			return &ConflictError{Expr: e, Rel: rel, Stored: stored}
		}
		k.rel[key] = oriented
		return nil
	default:
		panic(fmt.Sprintf("ctable: unknown expression kind %d", e.Kind))
	}
}

// pairKey canonicalises an ordered pair (x REL y) so that the map key is
// identity-ordered and the relation is flipped when the operands swap.
func pairKey(x, y Var, rel Rel) (key [2]Var, oriented Rel) {
	if varLess(x, y) {
		return [2]Var{x, y}, rel
	}
	switch rel {
	case LT:
		rel = GT
	case GT:
		rel = LT
	}
	return [2]Var{y, x}, rel
}

func varLess(a, b Var) bool {
	if a.Obj != b.Obj {
		return a.Obj < b.Obj
	}
	return a.Attr < b.Attr
}

// Forget erases everything recorded about the given variables: their
// intervals, every stored relation mentioning one of them, and (under
// NoInference) every answered expression touching them. Knowledge about
// every other variable is untouched, as is the Conflicts counter —
// conflicts already charged against departed objects remain historical
// fact. The streaming engine calls it when an object is evicted, so a
// long-running window does not accumulate intervals for variables that
// can never be asked about again.
//
// Forget is also a tombstone: the variables join the forgotten set and
// any later Absorb mentioning one of them is rejected with ErrForgotten
// rather than silently resurrecting state — the retraction is permanent,
// which is what makes absorbing a stale crowd answer impossible rather
// than merely unlikely.
//
// Cost is O(len(vars)) for the intervals plus one scan of the stored
// relations and answered expressions; crowd knowledge is small (bounded
// by answers absorbed), so eviction-time scans stay cheap.
func (k *Knowledge) Forget(vars ...Var) {
	if len(vars) == 0 {
		return
	}
	gone := make(map[Var]bool, len(vars))
	if k.forgotten == nil {
		k.forgotten = map[Var]bool{}
	}
	for _, v := range vars {
		gone[v] = true
		k.forgotten[v] = true
		delete(k.lo, v)
		delete(k.hi, v)
	}
	for key := range k.rel {
		if gone[key[0]] || gone[key[1]] {
			delete(k.rel, key)
		}
	}
	for e := range k.exprTruth {
		if gone[e.X] || (e.Kind == VarGTVar && gone[e.Y]) {
			delete(k.exprTruth, e)
		}
	}
}

// relation returns the stored relation x REL y, if any.
func (k *Knowledge) relation(x, y Var) (Rel, bool) {
	key, _ := pairKey(x, y, EQ)
	r, ok := k.rel[key]
	if !ok {
		return 0, false
	}
	if !varLess(x, y) {
		switch r {
		case LT:
			r = GT
		case GT:
			r = LT
		}
	}
	return r, true
}

// exprTruthFromRel converts a crowd answer (left REL right) into the truth
// value of the asked expression.
func exprTruthFromRel(e Expr, rel Rel) bool {
	switch e.Kind {
	case VarLTConst:
		return rel == LT
	case VarGTConst, VarGTVar:
		return rel == GT
	default:
		panic(fmt.Sprintf("ctable: unknown expression kind %d", e.Kind))
	}
}

// Eval decides the expression if current knowledge suffices: interval
// reasoning for constant comparisons and both stored relations and
// disjoint intervals for variable pairs. Under NoInference only exactly
// answered expressions are decided.
func (k *Knowledge) Eval(e Expr) (value, decided bool) {
	if k.NoInference {
		v, ok := k.exprTruth[e]
		return v, ok
	}
	switch e.Kind {
	case VarLTConst:
		lo, hi := k.Bounds(e.X)
		if hi < e.C {
			return true, true
		}
		if lo >= e.C {
			return false, true
		}
		return false, false
	case VarGTConst:
		lo, hi := k.Bounds(e.X)
		if lo > e.C {
			return true, true
		}
		if hi <= e.C {
			return false, true
		}
		return false, false
	case VarGTVar:
		if r, ok := k.relation(e.X, e.Y); ok {
			return r == GT, true
		}
		loX, hiX := k.Bounds(e.X)
		loY, hiY := k.Bounds(e.Y)
		if loX > hiY {
			return true, true
		}
		if hiX <= loY {
			return false, true
		}
		return false, false
	default:
		panic(fmt.Sprintf("ctable: unknown expression kind %d", e.Kind))
	}
}

// TrueRel returns the ground-truth relation between the expression's
// operands given the complete dataset — what a perfectly accurate worker
// answers (left operand REL right operand).
func TrueRel(truth *dataset.Dataset, e Expr) Rel {
	x := truth.Value(e.X.Obj, e.X.Attr)
	var y int
	switch e.Kind {
	case VarLTConst, VarGTConst:
		y = e.C
	case VarGTVar:
		y = truth.Value(e.Y.Obj, e.Y.Attr)
	}
	switch {
	case x < y:
		return LT
	case x > y:
		return GT
	default:
		return EQ
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
