package ctable

import (
	"errors"
	"math/rand"
	"testing"

	"bayescrowd/internal/dataset"
)

func TestKnowledgeBoundsDefault(t *testing.T) {
	k := knowledgeOver(10, 5)
	lo, hi := k.Bounds(v(0, 0))
	if lo != 0 || hi != 9 {
		t.Fatalf("Bounds = [%d,%d], want [0,9]", lo, hi)
	}
	lo, hi = k.Bounds(v(3, 1))
	if lo != 0 || hi != 4 {
		t.Fatalf("Bounds = [%d,%d], want [0,4]", lo, hi)
	}
}

func TestAbsorbConstAnswers(t *testing.T) {
	k := knowledgeOver(10)
	x := v(0, 0)
	// Task "x vs 6" answered LT: x in [0,5].
	if err := k.Absorb(LTConst(x, 6), LT); err != nil {
		t.Fatal(err)
	}
	if lo, hi := k.Bounds(x); lo != 0 || hi != 5 {
		t.Fatalf("Bounds = [%d,%d], want [0,5]", lo, hi)
	}
	// Task "x vs 2" answered GT: x in [3,5].
	if err := k.Absorb(GTConst(x, 2), GT); err != nil {
		t.Fatal(err)
	}
	if lo, hi := k.Bounds(x); lo != 3 || hi != 5 {
		t.Fatalf("Bounds = [%d,%d], want [3,5]", lo, hi)
	}
	// Equality pins it.
	if err := k.Absorb(LTConst(x, 4), EQ); err != nil {
		t.Fatal(err)
	}
	if val, ok := k.Pinned(x); !ok || val != 4 {
		t.Fatalf("Pinned = %d,%v, want 4,true", val, ok)
	}
}

func TestAbsorbConflictKeepsState(t *testing.T) {
	k := knowledgeOver(10)
	x := v(0, 0)
	if err := k.Absorb(LTConst(x, 3), LT); err != nil { // x in [0,2]
		t.Fatal(err)
	}
	err := k.Absorb(GTConst(x, 5), GT)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting answer returned %v, want ErrConflict", err)
	}
	var ce *ConflictError
	if !errors.As(err, &ce) || ce.Expr != GTConst(x, 5) || ce.Rel != GT || ce.Lo != 0 || ce.Hi != 2 {
		t.Fatalf("conflict detail = %+v, want expr/rel and surviving interval [0,2]", ce)
	}
	if k.Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", k.Conflicts)
	}
	if lo, hi := k.Bounds(x); lo != 0 || hi != 2 {
		t.Fatalf("Bounds after conflict = [%d,%d], want unchanged [0,2]", lo, hi)
	}
}

func TestAbsorbVarVarAndFlip(t *testing.T) {
	k := knowledgeOver(10)
	x, y := v(0, 0), v(1, 0)
	// Answer: x > y.
	if err := k.Absorb(GTVar(x, y), GT); err != nil {
		t.Fatal(err)
	}
	if val, decided := k.Eval(GTVar(x, y)); !decided || !val {
		t.Fatalf("Eval(x>y) = %v,%v", val, decided)
	}
	// The flipped expression y > x must be decided false.
	if val, decided := k.Eval(GTVar(y, x)); !decided || val {
		t.Fatalf("Eval(y>x) = %v,%v, want false,true", val, decided)
	}
	// Contradicting relation is rejected.
	if err := k.Absorb(GTVar(y, x), GT); !errors.Is(err, ErrConflict) {
		t.Fatalf("contradicting relation returned %v", err)
	}
	if k.Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", k.Conflicts)
	}
	// Re-asserting the same fact in flipped orientation is fine.
	if err := k.Absorb(GTVar(y, x), LT); err != nil {
		t.Fatalf("consistent flipped relation rejected: %v", err)
	}
}

func TestEvalConstExpr(t *testing.T) {
	k := knowledgeOver(10)
	x := v(0, 0)
	if err := k.Absorb(LTConst(x, 4), LT); err != nil { // x in [0,3]
		t.Fatal(err)
	}
	cases := []struct {
		e            Expr
		val, decided bool
	}{
		{LTConst(x, 4), true, true},
		{LTConst(x, 5), true, true},
		{LTConst(x, 3), false, false}, // x could be 0..3
		{GTConst(x, 3), false, true},
		{GTConst(x, 2), false, false},
		{LTConst(v(5, 0), 4), false, false}, // unconstrained var
	}
	for _, tc := range cases {
		val, decided := k.Eval(tc.e)
		if val != tc.val || decided != tc.decided {
			t.Errorf("Eval(%v) = %v,%v, want %v,%v", tc.e, val, decided, tc.val, tc.decided)
		}
	}
}

func TestEvalVarVarByIntervals(t *testing.T) {
	k := knowledgeOver(10)
	x, y := v(0, 0), v(1, 0)
	if err := k.Absorb(GTConst(x, 6), GT); err != nil { // x in [7,9]
		t.Fatal(err)
	}
	if err := k.Absorb(LTConst(y, 5), LT); err != nil { // y in [0,4]
		t.Fatal(err)
	}
	// Disjoint intervals decide x > y without a direct comparison task —
	// the "inference" that saves BayesCrowd crowd tasks.
	if val, decided := k.Eval(GTVar(x, y)); !decided || !val {
		t.Fatalf("Eval(x>y) = %v,%v, want true,true", val, decided)
	}
	// And y > x is decided false: hi(y)=4 <= lo(x)=7.
	if val, decided := k.Eval(GTVar(y, x)); !decided || val {
		t.Fatalf("Eval(y>x) = %v,%v, want false,true", val, decided)
	}
}

func TestEvalVarVarTouchingIntervals(t *testing.T) {
	k := knowledgeOver(10)
	x, y := v(0, 0), v(1, 0)
	// x in [0,4], y in [4,9]: x > y impossible (x <= 4 <= y), decided false.
	if err := k.Absorb(LTConst(x, 5), LT); err != nil {
		t.Fatal(err)
	}
	if err := k.Absorb(GTConst(y, 3), GT); err != nil {
		t.Fatal(err)
	}
	if val, decided := k.Eval(GTVar(x, y)); !decided || val {
		t.Fatalf("Eval(x>y) = %v,%v, want false,true", val, decided)
	}
	// y > x is NOT decided: both could be 4.
	if _, decided := k.Eval(GTVar(y, x)); decided {
		t.Fatal("Eval(y>x) decided despite possible tie")
	}
}

func TestTrueRel(t *testing.T) {
	truth := dataset.FromRows(
		[]dataset.Attribute{{Name: "a", Levels: 10}, {Name: "b", Levels: 10}},
		[][]int{{3, 7}, {5, 7}},
	)
	cases := []struct {
		e    Expr
		want Rel
	}{
		{LTConst(v(0, 0), 5), LT}, // 3 vs 5
		{LTConst(v(0, 0), 3), EQ},
		{GTConst(v(1, 0), 4), GT},         // 5 vs 4
		{GTVar(v(0, 0), v(1, 0)), LT},     // 3 vs 5
		{GTVar(v(0, 1), v(1, 1)), EQ},     // 7 vs 7
		{GTVar(Var{1, 0}, Var{0, 0}), GT}, // 5 vs 3
	}
	for _, tc := range cases {
		if got := TrueRel(truth, tc.e); got != tc.want {
			t.Errorf("TrueRel(%v) = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestRelString(t *testing.T) {
	if LT.String() != "<" || EQ.String() != "=" || GT.String() != ">" {
		t.Fatal("Rel.String broken")
	}
}

func TestAbsorbAfterForgetReturnsTypedError(t *testing.T) {
	k := knowledgeOver(10, 10)
	x, y := v(0, 0), v(1, 0)
	if err := k.Absorb(LTConst(x, 6), LT); err != nil {
		t.Fatal(err)
	}
	k.Forget(x)

	// The retraction is permanent: any answer mentioning x — on either
	// side of the expression — is rejected with the typed error, not
	// silently resurrected.
	for _, e := range []Expr{LTConst(x, 3), GTConst(x, 2), GTVar(x, y), GTVar(y, x)} {
		err := k.Absorb(e, GT)
		if err == nil {
			t.Fatalf("Absorb(%v) after Forget succeeded", e)
		}
		if !errors.Is(err, ErrForgotten) {
			t.Fatalf("Absorb(%v) = %v, want ErrForgotten", e, err)
		}
		var fe *ForgottenError
		if !errors.As(err, &fe) || fe.Var != x {
			t.Fatalf("Absorb(%v) error names %+v, want variable %v", e, fe, x)
		}
	}
	if lo, hi := k.Bounds(x); lo != 0 || hi != 9 {
		t.Fatalf("rejected answers narrowed the forgotten interval to [%d,%d]", lo, hi)
	}
	if k.Conflicts != 0 {
		t.Fatalf("stale answers counted as conflicts: %d", k.Conflicts)
	}

	// Unrelated variables absorb normally.
	if err := k.Absorb(LTConst(y, 5), LT); err != nil {
		t.Fatalf("Absorb on a live variable after Forget: %v", err)
	}

	// The guard holds under NoInference too.
	ni := knowledgeOver(10)
	ni.NoInference = true
	if err := ni.Absorb(LTConst(v(0, 0), 5), LT); err != nil {
		t.Fatal(err)
	}
	ni.Forget(v(0, 0))
	if err := ni.Absorb(LTConst(v(0, 0), 5), LT); !errors.Is(err, ErrForgotten) {
		t.Fatalf("NoInference Absorb after Forget = %v, want ErrForgotten", err)
	}
}

func TestKnowledgeEmpty(t *testing.T) {
	k := knowledgeOver(10, 10)
	if !k.Empty() {
		t.Fatal("fresh knowledge is not Empty")
	}
	if err := k.Absorb(LTConst(v(0, 0), 6), LT); err != nil {
		t.Fatal(err)
	}
	if k.Empty() {
		t.Fatal("Empty after an absorbed interval")
	}
	k.Forget(v(0, 0))
	if !k.Empty() {
		t.Fatal("tombstones alone must not make knowledge non-Empty")
	}
	if err := k.Absorb(GTVar(v(1, 0), v(2, 0)), GT); err != nil {
		t.Fatal(err)
	}
	if k.Empty() {
		t.Fatal("Empty after a stored relation")
	}
}

// TestForgetAbsorbForgetProperty drives random Forget→Absorb→Forget
// sequences and checks the guard's invariants throughout: an absorb
// mentioning any ever-forgotten variable always fails with ErrForgotten
// and changes nothing, while absorbs over live variables keep working,
// whatever interleaving of forgets and answers came before.
func TestForgetAbsorbForgetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		k := knowledgeOver(8, 8)
		forgotten := map[Var]bool{}
		vars := []Var{v(0, 0), v(0, 1), v(1, 0), v(1, 1), v(2, 0), v(2, 1)}
		for step := 0; step < 40; step++ {
			if rng.Intn(4) == 0 { // forget a random variable
				fv := vars[rng.Intn(len(vars))]
				k.Forget(fv)
				forgotten[fv] = true
				continue
			}
			x := vars[rng.Intn(len(vars))]
			var e Expr
			if rng.Intn(2) == 0 {
				e = GTConst(x, 1+rng.Intn(5))
			} else {
				y := vars[rng.Intn(len(vars))]
				if y == x {
					continue
				}
				e = GTVar(x, y)
			}
			rel := []Rel{LT, EQ, GT}[rng.Intn(3)]
			err := k.Absorb(e, rel)
			stale := forgotten[e.X] || (e.Kind == VarGTVar && forgotten[e.Y])
			if stale {
				if !errors.Is(err, ErrForgotten) {
					t.Fatalf("trial %d step %d: Absorb(%v) on forgotten var = %v, want ErrForgotten", trial, step, e, err)
				}
				continue
			}
			if errors.Is(err, ErrForgotten) {
				t.Fatalf("trial %d step %d: Absorb(%v) rejected but no variable was forgotten", trial, step, e)
			}
			// Live-variable absorbs keep working: the only acceptable
			// failure is a genuine conflict with earlier live knowledge.
			if err != nil && !errors.Is(err, ErrConflict) {
				t.Fatalf("trial %d step %d: Absorb(%v,%v) on live vars = %v", trial, step, e, rel, err)
			}
		}
		// Post-condition: every forgotten variable reads as a full
		// domain, and the tombstone survives any interleaving.
		for fv := range forgotten {
			if lo, hi := k.Bounds(fv); lo != 0 || hi != 7 {
				t.Fatalf("trial %d: forgotten %v has bounds [%d,%d]", trial, fv, lo, hi)
			}
			if err := k.Absorb(GTConst(fv, 3), GT); !errors.Is(err, ErrForgotten) {
				t.Fatalf("trial %d: final Absorb on forgotten %v = %v", trial, fv, err)
			}
		}
	}
}
