package ctable

import (
	"math/rand"
	"testing"

	"bayescrowd/internal/dataset"
	"bayescrowd/internal/skyline"
)

// TestPossibleWorldsEquivalence is the deepest validation of the modeling
// phase: for small incomplete datasets it enumerates every possible world
// (every joint assignment of the missing cells) and checks that the
// c-table condition φ(o), evaluated under that world, agrees with actual
// skyline membership of o in the completed world — the defining property
// of the c-table representation (Definition 3).
//
// Worlds where some object acquires an exact duplicate are skipped: under
// the paper's strict-inequality clauses such ties read as dominance
// (documented deviation, see Build).
func TestPossibleWorldsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		// Small enough for full world enumeration: ≤ 6 missing cells over
		// ≤ 4-level domains → ≤ 4096 worlds.
		n := 4 + rng.Intn(4)
		dAttrs := 2 + rng.Intn(2)
		levels := 2 + rng.Intn(3)
		truth := dataset.GenIndependent(rng, n, dAttrs, levels)
		inc := truth.InjectMissing(rng, 0.25)

		var vars []Var
		for i := range inc.Objects {
			for j, c := range inc.Objects[i].Cells {
				if c.Missing {
					vars = append(vars, Var{Obj: i, Attr: j})
				}
			}
		}
		if len(vars) > 7 {
			continue // keep enumeration small
		}

		ct := Build(inc, BuildOptions{Alpha: 0})

		world := inc.Clone()
		assign := map[Var]int{}
		var rec func(k int)
		rec = func(k int) {
			if k == len(vars) {
				checkWorld(t, trial, ct, world, assign)
				return
			}
			v := vars[k]
			for val := 0; val < inc.Attrs[v.Attr].Levels; val++ {
				assign[v] = val
				world.Objects[v.Obj].Cells[v.Attr] = dataset.Known(val)
				rec(k + 1)
			}
			delete(assign, v)
			world.Objects[v.Obj].Cells[v.Attr] = dataset.Unknown()
		}
		rec(0)
	}
}

func checkWorld(t *testing.T, trial int, ct *CTable, world *dataset.Dataset, assign map[Var]int) {
	t.Helper()
	sky := map[int]bool{}
	for _, i := range skyline.BNL(world) {
		sky[i] = true
	}
	for o, cond := range ct.Conds {
		got, decided := cond.EvalAssign(assign)
		if !decided {
			t.Fatalf("trial %d: φ(o%d) undecided under a full world", trial, o+1)
		}
		if got == sky[o] {
			continue
		}
		// Tie escape hatch: strict clauses read a full tie as dominance.
		if !got && sky[o] && hasFullTie(world, o) {
			continue
		}
		t.Fatalf("trial %d: world %v: φ(o%d)=%v but skyline membership=%v",
			trial, assign, o+1, got, sky[o])
	}
}
