package ctable

import (
	"fmt"
	"sort"

	"bayescrowd/internal/bitset"
	"bayescrowd/internal/dataset"
)

// DynCTable maintains the c-table of a changing object set — the
// incremental counterpart of Build for streaming workloads: objects are
// inserted and evicted one at a time, and only the clauses the change
// actually touches are added or retracted, never a full O(n²)-flavoured
// rebuild.
//
// Identity: every inserted object receives a monotonically increasing
// stream id, and its c-table variables are numbered Var{id, attr}. Ids
// are never reused, so a variable's identity survives any interleaving
// of inserts and evictions — which is what lets a prob.ComponentCache's
// per-variable epochs and a Knowledge's intervals ride across edits
// without aliasing. Internally objects occupy recycled *slots* of a
// DynDomIndex bit universe; slots are invisible to callers.
//
// Maintenance: Insert(cells) derives the new object's dominator set with
// one d-way AND over the live per-dimension index (the updatable form of
// the sort-partition build's index) and emits its clauses; the reverse
// query (Dominatees) finds every live object the newcomer possibly
// dominates, and each of those conditions gains exactly one clause.
// Evict(id) runs the reverse query once more and retracts the departed
// object's clause from each affected condition. Both directions rely on
// the possible-dominance predicate being a pure function of the two
// objects' (immutable) cells, so membership never needs to be stored —
// the clause lists themselves are the materialised dominator sets.
//
// Per-object clause lists are kept sorted by dominator id; since a new
// dominator always carries the largest id yet, insertion is an append
// and retraction a binary search. Conditions materialised by Cond list
// clauses in ascending dominator-id order — the same order the batch
// build emits (ascending dataset index) — so a window rebuilt from
// scratch yields literally the same CNF modulo the id↔index renaming.
//
// DynCTable is not safe for concurrent mutation; like the batch build's
// caller it is single-writer, with reads (Cond, IDs) safe between
// mutations.
type DynCTable struct {
	attrs  []dataset.Attribute
	idx    *DynDomIndex
	slots  []dynSlot
	free   []int
	slotOf map[int]int
	nextID int
	live   int

	// dirty accumulates the ids whose condition changed since the last
	// DrainDirty — the delta a streaming evaluator needs to re-solve.
	dirty map[int]struct{}

	// query scratch, reused across Insert/Evict calls.
	dom, rev *bitset.Set
}

// dynSlot is the per-slot state of one live object.
type dynSlot struct {
	live  bool
	id    int
	cells []dataset.Cell
	// clauses is the object's condition body, one entry per possible
	// dominator, ascending by dominator id. A nil exprs slice is an empty
	// clause — that dominator certainly dominates the object.
	clauses []dynClause
	// empty counts the nil-exprs entries; the condition is decided false
	// while empty > 0.
	empty int
}

// dynClause is one clause [p ⊀ o] keyed by the dominator's stream id.
type dynClause struct {
	dom   int
	exprs []Expr
}

// NewDynCTable returns an empty incremental c-table over the attribute
// schema. capacity hints the expected window size (slots grow on
// demand).
func NewDynCTable(attrs []dataset.Attribute, capacity int) *DynCTable {
	idx := NewDynDomIndex(attrs, capacity)
	return &DynCTable{
		attrs:  attrs,
		idx:    idx,
		slotOf: map[int]int{},
		dirty:  map[int]struct{}{},
		dom:    bitset.New(idx.Cap()),
		rev:    bitset.New(idx.Cap()),
	}
}

// Len returns the number of live objects.
func (t *DynCTable) Len() int { return t.live }

// IDs returns the live stream ids in ascending order — arrival order,
// since ids are monotonic.
func (t *DynCTable) IDs() []int {
	out := make([]int, 0, t.live)
	for s := range t.slots {
		if t.slots[s].live {
			out = append(out, t.slots[s].id)
		}
	}
	sort.Ints(out)
	return out
}

// Live reports whether the id currently names a live window object. Ids
// are monotonic and never reused, so false means the object was evicted
// (or never existed) — the check the streaming crowd loop runs before
// absorbing an answer, since every answer races the eviction of the
// object it describes.
func (t *DynCTable) Live(id int) bool {
	_, ok := t.slotOf[id]
	return ok
}

// Cells returns the stored cells of a live object. The returned slice is
// the table's own storage: callers must not mutate it.
func (t *DynCTable) Cells(id int) []dataset.Cell {
	return t.slots[t.mustSlot(id)].cells
}

// DomSize returns |D(o)| for the live object — the number of clauses its
// condition currently carries.
func (t *DynCTable) DomSize(id int) int {
	return len(t.slots[t.mustSlot(id)].clauses)
}

// MissingVars appends Var{id, j} for every missing cell of the given
// cells to dst and returns it — the variables an object contributes to
// the c-table.
func MissingVars(id int, cells []dataset.Cell, dst []Var) []Var {
	for j, c := range cells {
		if c.Missing {
			dst = append(dst, Var{Obj: id, Attr: j})
		}
	}
	return dst
}

// Insert adds an object, assigns it the next stream id, derives its
// dominator clauses from the live index, and adds one clause to every
// live object it possibly dominates. It returns the new id and the
// object's c-table variables (one per missing cell). The new object and
// every patched one are marked dirty.
func (t *DynCTable) Insert(cells []dataset.Cell) (id int, vars []Var) {
	if len(cells) != len(t.attrs) {
		panic(fmt.Sprintf("ctable: Insert with %d cells, schema has %d attributes", len(cells), len(t.attrs)))
	}
	for j, c := range cells {
		if !c.Missing && (c.Value < 0 || c.Value >= t.attrs[j].Levels) {
			panic(fmt.Sprintf("ctable: Insert value %d outside [0,%d) in attribute %d", c.Value, t.attrs[j].Levels, j))
		}
	}
	id = t.nextID
	t.nextID++

	slot := t.allocSlot()

	// Both directions are answered before the newcomer joins the index,
	// so neither set can contain its own slot.
	t.idx.Dominators(cells, t.dom)
	t.idx.Dominatees(cells, t.rev)

	// The newcomer's condition: one clause per possible dominator,
	// gathered in ascending slot order then sorted by id (slot recycling
	// makes the two orders diverge).
	s := &t.slots[slot]
	s.live = true
	s.id = id
	s.cells = append(s.cells[:0], cells...)
	s.clauses = s.clauses[:0]
	s.empty = 0
	t.dom.ForEach(func(p int) bool {
		ps := &t.slots[p]
		exprs := ClauseBetween(t.attrs, id, cells, ps.id, ps.cells)
		if exprs == nil {
			s.empty++
		}
		s.clauses = append(s.clauses, dynClause{dom: ps.id, exprs: exprs})
		return true
	})
	sort.Slice(s.clauses, func(a, b int) bool { return s.clauses[a].dom < s.clauses[b].dom })

	// Every object the newcomer possibly dominates gains one clause;
	// the new id is the largest yet, so the append keeps the list sorted.
	t.rev.ForEach(func(q int) bool {
		qs := &t.slots[q]
		wasFalse := qs.empty > 0
		exprs := ClauseBetween(t.attrs, qs.id, qs.cells, id, cells)
		if exprs == nil {
			qs.empty++
		}
		qs.clauses = append(qs.clauses, dynClause{dom: id, exprs: exprs})
		// A condition that was decided false and stays decided false kept
		// its probability (0): no need to re-solve it. On correlated data
		// most of a newcomer's dominatees are certainly dominated already,
		// so this skip is the difference between patching a handful of
		// live conditions and re-solving half the window.
		if !wasFalse || qs.empty == 0 {
			t.dirty[qs.id] = struct{}{}
		}
		return true
	})

	t.idx.Insert(slot, s.cells)
	t.slotOf[id] = slot
	t.live++
	t.dirty[id] = struct{}{}
	return id, MissingVars(id, cells, nil)
}

// Evict removes a live object: its condition is dropped and its clause
// is retracted from every live object it possibly dominated (patching
// their expressions back to what a fresh build over the remaining window
// would emit). It returns the evicted object's c-table variables so the
// caller can invalidate cached components and forget crowd knowledge
// about them; every patched object is marked dirty.
func (t *DynCTable) Evict(id int) (vars []Var) {
	slot := t.mustSlot(id)
	s := &t.slots[slot]

	t.idx.Dominatees(s.cells, t.rev)
	t.rev.Clear(slot) // the reverse query still sees the departing object
	t.rev.ForEach(func(q int) bool {
		qs := &t.slots[q]
		wasFalse := qs.empty > 0
		i := sort.Search(len(qs.clauses), func(i int) bool { return qs.clauses[i].dom >= id })
		if i == len(qs.clauses) || qs.clauses[i].dom != id {
			panic(fmt.Sprintf("ctable: evict %d: object %d lacks the clause to retract", id, qs.id))
		}
		if qs.clauses[i].exprs == nil {
			qs.empty--
		}
		qs.clauses = append(qs.clauses[:i], qs.clauses[i+1:]...)
		// Same still-false skip as Insert: losing one clause cannot revive
		// a condition still pinned false by another empty clause.
		if !wasFalse || qs.empty == 0 {
			t.dirty[qs.id] = struct{}{}
		}
		return true
	})

	vars = MissingVars(id, s.cells, nil)
	t.idx.Evict(slot, s.cells)
	s.live = false
	s.clauses = s.clauses[:0]
	s.empty = 0
	delete(t.slotOf, id)
	delete(t.dirty, id)
	t.free = append(t.free, slot)
	t.live--
	return vars
}

// Cond materialises the current condition φ(o) of a live object: decided
// false while any clause is empty, decided true with no dominators, CNF
// otherwise. Clauses appear in ascending dominator-id order and the
// expression slices are copies, so callers may Simplify the result under
// a Knowledge without corrupting the table.
func (t *DynCTable) Cond(id int) *Condition {
	s := &t.slots[t.mustSlot(id)]
	if s.empty > 0 {
		return False()
	}
	if len(s.clauses) == 0 {
		return True()
	}
	clauses := make([][]Expr, len(s.clauses))
	for i := range s.clauses {
		clauses[i] = append([]Expr(nil), s.clauses[i].exprs...)
	}
	return FromClauses(clauses)
}

// DrainDirty returns the ids whose condition changed since the last
// drain, ascending, and resets the dirty set. Evicted ids never appear —
// an eviction removes the id from the set along with the object.
func (t *DynCTable) DrainDirty() []int {
	if len(t.dirty) == 0 {
		return nil
	}
	out := make([]int, 0, len(t.dirty))
	for id := range t.dirty {
		out = append(out, id)
	}
	sort.Ints(out)
	clear(t.dirty)
	return out
}

// Window assembles the live objects, ascending by id, into a fresh
// dataset — the input a batch rebuild of the current window would see.
// ids[i] is the stream id of window object i, the renaming under which
// Build's table equals this one (the equivalence tests' anchor).
func (t *DynCTable) Window() (d *dataset.Dataset, ids []int) {
	ids = t.IDs()
	d = dataset.New(t.attrs)
	for _, id := range ids {
		cells := t.slots[t.slotOf[id]].cells
		d.MustAppend(dataset.Object{
			ID:    fmt.Sprintf("s%d", id),
			Cells: append([]dataset.Cell(nil), cells...),
		})
	}
	return d, ids
}

// mustSlot resolves a live id's slot or panics — callers own the id
// lifecycle, so an unknown id is a programming error, not input.
func (t *DynCTable) mustSlot(id int) int {
	slot, ok := t.slotOf[id]
	if !ok {
		panic(fmt.Sprintf("ctable: unknown or evicted stream id %d", id))
	}
	return slot
}

// allocSlot pops a recycled slot or extends the slot table, growing the
// index (doubling) when the bit universe is full.
func (t *DynCTable) allocSlot() int {
	if n := len(t.free); n > 0 {
		slot := t.free[n-1]
		t.free = t.free[:n-1]
		return slot
	}
	slot := len(t.slots)
	t.slots = append(t.slots, dynSlot{})
	if slot >= t.idx.Cap() {
		t.idx.Grow(2 * t.idx.Cap())
		t.dom.Grow(t.idx.Cap())
		t.rev.Grow(t.idx.Cap())
	}
	return slot
}
