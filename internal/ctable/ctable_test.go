package ctable

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"bayescrowd/internal/bitset"
	"bayescrowd/internal/dataset"
)

// v is shorthand for a variable with 0-based indices.
func v(obj, attr int) Var { return Var{Obj: obj, Attr: attr} }

func TestPaperTable4DominatorSets(t *testing.T) {
	d := dataset.SampleMovies()
	ix := NewDomIndex(d)
	want := [][]int{
		{4},    // D(o1) = {o5}
		{},     // D(o2) = ∅
		{},     // D(o3) = ∅
		{1, 4}, // D(o4) = {o2, o5}
		{0, 1}, // D(o5) = {o1, o2}
	}
	out := bitset.New(d.Len())
	for o, wantSet := range want {
		ix.Dominators(d, o, out)
		if got := out.Members(); !reflect.DeepEqual(got, wantSet) {
			t.Errorf("D(o%d) = %v, want %v", o+1, got, wantSet)
		}
		DominatorsPairwise(d, o, out)
		if got := out.Members(); !reflect.DeepEqual(got, wantSet) {
			t.Errorf("pairwise D(o%d) = %v, want %v", o+1, got, wantSet)
		}
	}
}

func TestPaperTable3Conditions(t *testing.T) {
	d := dataset.SampleMovies()
	ct := Build(d, BuildOptions{Alpha: 1}) // no pruning at this scale

	// o2 and o3 are certain skyline objects.
	if !ct.Conds[1].IsTrue() || !ct.Conds[2].IsTrue() {
		t.Fatalf("φ(o2)=%v φ(o3)=%v, want true/true", ct.Conds[1], ct.Conds[2])
	}

	// φ(o1) = Var(o5,a2)<2 ∨ Var(o5,a3)<3 ∨ Var(o5,a4)<4.
	wantO1 := [][]Expr{{
		LTConst(v(4, 1), 2), LTConst(v(4, 2), 3), LTConst(v(4, 3), 4),
	}}
	if !reflect.DeepEqual(ct.Conds[0].Clauses, wantO1) {
		t.Errorf("φ(o1) = %v", ct.Conds[0])
	}

	// φ(o4) = (Var(o2,a2)<3) ∧ [Var(o5,a2)<3 ∨ Var(o5,a3)<1 ∨ Var(o5,a4)<2].
	wantO4 := [][]Expr{
		{LTConst(v(1, 1), 3)},
		{LTConst(v(4, 1), 3), LTConst(v(4, 2), 1), LTConst(v(4, 3), 2)},
	}
	if !reflect.DeepEqual(ct.Conds[3].Clauses, wantO4) {
		t.Errorf("φ(o4) = %v", ct.Conds[3])
	}

	// φ(o5) = [Var(o5,a2)>2 ∨ Var(o5,a3)>3 ∨ Var(o5,a4)>4]
	//       ∧ [Var(o5,a2)>Var(o2,a2) ∨ Var(o5,a3)>2 ∨ Var(o5,a4)>2].
	wantO5 := [][]Expr{
		{GTConst(v(4, 1), 2), GTConst(v(4, 2), 3), GTConst(v(4, 3), 4)},
		{GTVar(v(4, 1), v(1, 1)), GTConst(v(4, 2), 2), GTConst(v(4, 3), 2)},
	}
	if !reflect.DeepEqual(ct.Conds[4].Clauses, wantO5) {
		t.Errorf("φ(o5) = %v", ct.Conds[4])
	}
}

func TestFastEqualsPairwiseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(120)
		d := rng.Intn(6) + 2
		levels := rng.Intn(8) + 2
		ds := dataset.GenIndependent(rng, n, d, levels).InjectMissing(rng, 0.05+rng.Float64()*0.25)
		ix := NewDomIndex(ds)
		fast := bitset.New(n)
		slow := bitset.New(n)
		for o := 0; o < n; o++ {
			ix.Dominators(ds, o, fast)
			DominatorsPairwise(ds, o, slow)
			if !fast.Equal(slow) {
				t.Fatalf("trial %d object %d: fast %v != pairwise %v", trial, o, fast, slow)
			}
			if fast.Test(o) {
				t.Fatalf("trial %d: object %d in its own dominator set", trial, o)
			}
		}
	}
}

func TestBuildPairwiseMatchesFast(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	ds := dataset.GenCorrelated(rng, 150, 4, 6, 0.5).InjectMissing(rng, 0.15)
	a := Build(ds, BuildOptions{Alpha: 0.2})
	b := Build(ds, BuildOptions{Alpha: 0.2, Pairwise: true})
	for o := range a.Conds {
		if a.Conds[o].String() != b.Conds[o].String() {
			t.Fatalf("object %d: fast %v != pairwise %v", o, a.Conds[o], b.Conds[o])
		}
	}
	if a.Pruned != b.Pruned {
		t.Fatalf("pruned %d vs %d", a.Pruned, b.Pruned)
	}
}

func TestBuildVerifiesAgainstGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 15; trial++ {
		truth := dataset.GenIndependent(rng, 80+rng.Intn(80), 3+rng.Intn(3), 4+rng.Intn(6))
		inc := truth.InjectMissing(rng, 0.1+rng.Float64()*0.15)
		ct := Build(inc, BuildOptions{Alpha: 0}) // Alpha <= 0: no pruning
		if bad := ct.Verify(truth); len(bad) != 0 {
			t.Fatalf("trial %d: c-table wrong for objects %v", trial, bad)
		}
	}
}

func TestBuildAlphaPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	truth := dataset.GenIndependent(rng, 300, 4, 8)
	inc := truth.InjectMissing(rng, 0.2)
	loose := Build(inc, BuildOptions{Alpha: 1})
	tight := Build(inc, BuildOptions{Alpha: 0.02})
	if tight.Pruned <= loose.Pruned {
		t.Fatalf("tight α pruned %d, loose pruned %d; want strictly more", tight.Pruned, loose.Pruned)
	}
	// Pruning must only ever flip conditions to false.
	for o := range tight.Conds {
		if tight.PrunedByAlpha[o] && !tight.Conds[o].IsFalse() {
			t.Fatalf("pruned object %d has condition %v", o, tight.Conds[o])
		}
	}
	// And Verify must still pass (pruned objects are excused).
	if bad := tight.Verify(truth); len(bad) != 0 {
		t.Fatalf("pruned c-table wrong for objects %v", bad)
	}
}

func TestBuildCompleteDataMatchesSkyline(t *testing.T) {
	// With no missing cells the c-table must be exactly the skyline
	// membership function (modulo full ties, absent in this workload).
	rng := rand.New(rand.NewSource(35))
	truth := dataset.GenIndependent(rng, 200, 5, 32)
	ct := Build(truth, BuildOptions{Alpha: 0})
	if bad := ct.Verify(truth); len(bad) != 0 {
		t.Fatalf("complete-data c-table wrong for %v", bad)
	}
	for o, c := range ct.Conds {
		if _, decided := c.Decided(); !decided {
			t.Fatalf("complete data left φ(o%d) undecided: %v", o, c)
		}
	}
}

func TestResultSetAndUndecided(t *testing.T) {
	d := dataset.SampleMovies()
	ct := Build(d, BuildOptions{Alpha: 1})
	if got := ct.ResultSet(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("ResultSet = %v, want [1 2]", got)
	}
	if got := ct.Undecided(); !reflect.DeepEqual(got, []int{0, 3, 4}) {
		t.Fatalf("Undecided = %v, want [0 3 4]", got)
	}
}

func TestStaticallyUnsatisfiableExprsDropped(t *testing.T) {
	// o1 = (0, 2) with a2 missing for o2; o2 = (0, missing).
	// Clause [o2 ⊀ o1]: attr1 both 0 → no expr; attr2: Var(o2,a2) < 2.
	// Reversed roles: [o1 ⊀ o2] for o2: attr2: Var(o2,a2) > 2.
	d := dataset.New([]dataset.Attribute{{Name: "a1", Levels: 3}, {Name: "a2", Levels: 3}})
	d.MustAppend(dataset.Object{ID: "o1", Cells: []dataset.Cell{dataset.Known(0), dataset.Known(2)}})
	d.MustAppend(dataset.Object{ID: "o2", Cells: []dataset.Cell{dataset.Known(0), dataset.Unknown()}})
	ct := Build(d, BuildOptions{Alpha: 1})
	// For o1: Var(o2,a2) < 2 is satisfiable, kept.
	if ct.Conds[0].String() != "Var(o2,a2) < 2" {
		t.Errorf("φ(o1) = %v", ct.Conds[0])
	}
	// For o2: the only potential expression is Var(o2,a2) > 2 — statically
	// impossible with Levels=3 — so the clause is empty and φ(o2) false.
	if !ct.Conds[1].IsFalse() {
		t.Errorf("φ(o2) = %v, want false", ct.Conds[1])
	}
}

func sortedInts(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

func TestSimplifyAllCountsSettled(t *testing.T) {
	d := dataset.SampleMovies()
	ct := Build(d, BuildOptions{Alpha: 1})
	k := NewKnowledge(d)
	// Answer: Var(o5,a4) < 4 — satisfies φ(o1) immediately.
	if err := k.Absorb(LTConst(v(4, 3), 4), LT); err != nil {
		t.Fatal(err)
	}
	settled := ct.SimplifyAll(k)
	if settled != 1 {
		t.Fatalf("settled = %d, want 1", settled)
	}
	if !ct.Conds[0].IsTrue() {
		t.Fatalf("φ(o1) = %v, want true", ct.Conds[0])
	}
	if got := sortedInts(ct.ResultSet()); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("ResultSet = %v, want [0 1 2]", got)
	}
}
