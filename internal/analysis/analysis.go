// Package analysis is bayeslint's engine: a from-scratch, stdlib-only
// (go/parser, go/ast, go/types, go/importer — no golang.org/x/tools)
// multi-analyzer lint driver that mechanically enforces the repo's
// load-bearing contracts:
//
//   - determinism: the solver/crowd packages must produce bit-identical
//     results across runs and worker counts, so wall-clock reads, global
//     (OS-seeded) math/rand, time-derived seeds, and map-iteration-order
//     leaks into outputs are forbidden there (PR 1's worker-pool
//     guarantee, PR 3's reproducible-faults guarantee).
//   - singlewriter: prob.Evaluator and prob.ComponentCache mutation is
//     single-writer-only; only the documented owners may write their
//     fields or call their mutating methods (PR 2's cache contract).
//   - errdrop: discarded error results, with crowd.Platform.Post and
//     ctable.Knowledge.Absorb as must-check even when a partial result
//     is also returned (PR 3's fallible-platform contract).
//   - goroutine: goroutine hygiene — wg.Add inside the spawned
//     goroutine, shared solver scratch captured by closures submitted to
//     internal/parallel, and naked go statements outside the pool.
//   - floatcmp: ==/!= on probability/entropy float64s outside approved
//     epsilon helpers and exact 0/1 sentinel tests.
//   - doccomment: exported declarations without a doc comment in the
//     configured packages — the repo's exports are its paper-to-code
//     map, so each must state the contract it exports.
//   - lockcheck: fields annotated `// guarded by <mu>` may only be
//     accessed where the interprocedural summary proves the mutex held;
//     inconsistent lock-acquisition order is a finding too.
//   - lockcopy: copies of mutex-containing values (by-value receivers,
//     parameters, dereference copies, by-value ranges) fork the lock
//     state and are flagged.
//   - ledger: the crowd accounting counters (stream.CrowdLedger,
//     crowd.Stats) may only be mutated inside the accounting helpers
//     and the configured accounting call trees.
//
// Since PR 9 the driver computes an interprocedural facts layer before
// the per-package passes run: a whole-module static call graph (static,
// interface, closure, method-value and pool-thunk edges, resolved with
// go/types only), per-function summaries (locks held at each call site,
// errors forwarded, ledger reachability) and fixpoint propagation over
// the graph. lockcheck, ledger, and the interprocedural errdrop and
// hotalloc tiers all read from that shared store; see callgraph.go and
// facts.go.
//
// Diagnostics are suppressed per site with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. The gate is exact
// in both directions: an unused or malformed directive is itself a
// diagnostic, so the clean-repo check cannot be tuned down silently.
package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// Analyzer is one named invariant check run over every loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description for `bayeslint -list`.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries everything one analyzer needs to inspect one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	Cfg      *Config

	// Facts is the interprocedural summary store (call graph, lock
	// fixpoints, error-wrapper closure, ledger reachability), computed
	// once per run before passes execute and read-only afterwards.
	Facts *facts

	// restricted is the effective determinism scope: the configured
	// deterministic packages plus every module package they transitively
	// import (an import makes its callees reachable from the restricted
	// code). Computed once per run by the driver.
	restricted map[string]bool

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, addressed by file:line:col.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic the way the CLI prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzers returns the full analyzer suite in presentation order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		SingleWriterAnalyzer,
		ErrDropAnalyzer,
		GoroutineAnalyzer,
		FloatCmpAnalyzer,
		DocCommentAnalyzer,
		HotAllocAnalyzer,
		LockCheckAnalyzer,
		LockCopyAnalyzer,
		LedgerAnalyzer,
	}
}

// Select filters the suite down to the comma-separated analyzer names
// in sel ("" keeps everything). Unknown names error so a typo in
// `-analyzer` cannot silently run nothing.
func Select(all []*Analyzer, sel string) ([]*Analyzer, error) {
	if sel == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run with -list to see the suite)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
