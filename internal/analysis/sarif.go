package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF output (Static Analysis Results Interchange Format, version
// 2.1.0): the subset GitHub code scanning consumes, so the CI lint job
// can upload bayeslint findings via codeql-action/upload-sarif and have
// them annotate pull requests inline. The encoding is deterministic —
// rules sorted by id, results in the driver's position order, no
// timestamps — so two runs over the same tree produce byte-identical
// files and the artifact diffs cleanly.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes the diagnostics as a SARIF 2.1.0 log. root is the
// module root; file paths are rewritten relative to it (with forward
// slashes) so the upload maps onto the repository checkout regardless
// of where the linter ran. analyzers provides the rule metadata; the
// synthetic "bayeslint" rule (directive hygiene findings) is always
// present.
func WriteSARIF(w io.Writer, root string, diags []Diagnostic, analyzers []*Analyzer) error {
	rules := []sarifRule{{ID: "bayeslint", ShortDescription: sarifMessage{Text: "suppression-directive hygiene: malformed or unused //lint:ignore"}}}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: sarifURI(root, d.Pos.Filename), URIBaseID: "SRCROOT"},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "bayeslint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI renders a diagnostic's file path relative to the module root
// with forward slashes, falling back to the absolute path when the file
// lies outside the root.
func sarifURI(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
