package analysis

import (
	"sort"
	"strings"
	"testing"
)

// loadGolden loads the named testdata packages and builds the call
// graph with the golden config.
func loadGolden(t *testing.T, dirs ...string) (*Program, *callGraph) {
	t.Helper()
	root := moduleRoot(t)
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./internal/analysis/testdata/src/" + d
	}
	prog, err := Load(root, patterns, false)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return prog, buildCallGraph(prog, goldenConfig(prog.ModulePath))
}

// edgesBetween collects the edges from the caller (by display name) to
// the callee (by display name).
func edgesBetween(g *callGraph, caller, callee string) []*cgEdge {
	var out []*cgEdge
	for _, n := range g.Nodes {
		if n.Name != caller {
			continue
		}
		for _, e := range n.Out {
			if e.Callee.Name == callee {
				out = append(out, e)
			}
		}
	}
	return out
}

// TestCallGraphStaticEdge pins direct method-call resolution.
func TestCallGraphStaticEdge(t *testing.T) {
	_, g := loadGolden(t, "hotalloc", "pool")
	edges := edgesBetween(g, "Score", "solve")
	if len(edges) != 1 {
		t.Fatalf("Score->solve: got %d edges, want 1", len(edges))
	}
	if e := edges[0]; e.Kind != edgeStatic || e.Async {
		t.Errorf("Score->solve: kind=%v async=%v, want static sync", e.Kind, e.Async)
	}
}

// TestCallGraphMethodValueEdge pins resolution through a method value
// bound to a variable.
func TestCallGraphMethodValueEdge(t *testing.T) {
	_, g := loadGolden(t, "hotalloc", "pool")
	edges := edgesBetween(g, "indirect", "alloc")
	if len(edges) != 1 {
		t.Fatalf("indirect->alloc: got %d edges, want 1", len(edges))
	}
	if e := edges[0]; e.Kind != edgeClosure || e.Async {
		t.Errorf("indirect->alloc: kind=%v async=%v, want closure sync", e.Kind, e.Async)
	}
}

// TestCallGraphPoolThunkEdge pins the async thunk edge for a literal
// submitted to the configured pool package.
func TestCallGraphPoolThunkEdge(t *testing.T) {
	_, g := loadGolden(t, "hotalloc", "pool")
	edges := edgesBetween(g, "sweep", "function literal in sweep")
	if len(edges) != 1 {
		t.Fatalf("sweep->literal: got %d edges, want 1", len(edges))
	}
	if e := edges[0]; e.Kind != edgeThunk || !e.Async {
		t.Errorf("sweep->literal: kind=%v async=%v, want thunk async", e.Kind, e.Async)
	}
}

// TestCallGraphIfaceEdge pins interface-call resolution to the
// module-declared implementations.
func TestCallGraphIfaceEdge(t *testing.T) {
	_, g := loadGolden(t, "errdrop", "guarded", "pool")
	edges := edgesBetween(g, "mustCheck", "Post")
	if len(edges) == 0 {
		t.Fatal("mustCheck->Post: no edges resolved through the Platform interface")
	}
	sawIface := false
	for _, e := range edges {
		if e.Kind == edgeIface {
			sawIface = true
		}
	}
	if !sawIface {
		t.Error("mustCheck->Post: no iface-kind edge")
	}
}

// TestCallGraphByRef pins the "pkgpath.Type.Method" resolution grammar
// the config roots use.
func TestCallGraphByRef(t *testing.T) {
	prog, g := loadGolden(t, "hotalloc", "pool")
	ref := prog.ModulePath + "/internal/analysis/testdata/src/hotalloc.Scanner.Score"
	n := g.byRef[ref]
	if n == nil {
		keys := make([]string, 0, len(g.byRef))
		for k := range g.byRef {
			if strings.Contains(k, "Score") {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		t.Fatalf("byRef[%q] = nil (candidates: %v)", ref, keys)
	}
	if n.Name != "Score" {
		t.Errorf("byRef resolved to %q, want Score", n.Name)
	}
}

// TestCallGraphReachableSamePkg pins the package-confined reachability
// hotalloc uses: the pool package is traversed through but its nodes
// are not part of the hot region.
func TestCallGraphReachableSamePkg(t *testing.T) {
	prog, g := loadGolden(t, "hotalloc", "pool")
	ref := prog.ModulePath + "/internal/analysis/testdata/src/hotalloc.Scanner.Score"
	root := g.byRef[ref]
	if root == nil {
		t.Fatal("root not resolved")
	}
	reached := g.reachableFrom([]*cgNode{root}, root.Pkg)
	names := map[string]bool{}
	for n := range reached {
		names[n.Name] = true
	}
	for _, want := range []string{"Score", "solve", "leaf", "sweep", "indirect", "alloc", "function literal in sweep"} {
		if !names[want] {
			t.Errorf("hot region misses %q (got %v)", want, names)
		}
	}
	for _, not := range []string{"cold", "Reuse", "For"} {
		if names[not] {
			t.Errorf("hot region wrongly includes %q", not)
		}
	}
}
