package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDropAnalyzer flags discarded error results. Two tiers:
//
//   - Any call whose error result is dropped on the floor as a bare
//     expression statement is flagged (the fmt print family excepted —
//     its errors surface through the writer). Deferred calls are
//     exempt, matching the `defer f.Close()` idiom on read paths.
//   - Must-check calls (crowd.Platform.Post and every implementation,
//     ctable.Knowledge.Absorb) are flagged even when the error is
//     explicitly blanked with `_`: their contract returns valid partial
//     results *alongside* the error (partial answer sets, conflict
//     errors), so discarding the error silently drops round failures
//     and knowledge conflicts the caller is required to book.
//
// The must-check tier is interprocedural: the facts layer computes the
// closure of functions whose returned error derives from a must-check
// call (direct forwards, local error variables, named results with
// naked returns, fmt.Errorf %w re-wraps), so blanking the error of
// `postOnce(...)` is flagged exactly like blanking Platform.Post itself
// — including when the wrapper is reached through a method value, a
// bound closure variable, or an interface.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded error results; Platform.Post/Knowledge.Absorb errors are must-check even via _",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				errs := resultErrorIndexes(info, call)
				if len(errs) == 0 {
					return true
				}
				fn := calleeFunc(info, call)
				if isPrintCall(fn) || neverFails(fn) {
					return true
				}
				if must, name := mustCheckCall(pass, info, call); must {
					pass.Reportf(call.Pos(),
						"error from must-check %s discarded: it returns valid partial results alongside errors (round failures, knowledge conflicts) that the caller must book", name)
				} else if wname, via := wrappedMustCheck(pass, call); wname != "" {
					pass.Reportf(call.Pos(),
						"error from must-check %s discarded (call resolves to %s through the call graph): the callee forwards the error, so dropping it here drops the round failure", wname, via)
				} else {
					pass.Reportf(call.Pos(),
						"result of %s contains an error that is silently discarded; handle it or discard explicitly with _ =", calleeName(fn, call))
				}
			case *ast.AssignStmt:
				checkBlankedMustCheck(pass, info, stmt)
			}
			return true
		})
	}
}

// checkBlankedMustCheck flags `res, _ := p.Post(...)`-style blanking of
// a must-check call's error result.
func checkBlankedMustCheck(pass *Pass, info *types.Info, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	must, name := mustCheckCall(pass, info, call)
	via := ""
	if !must {
		name, via = wrappedMustCheck(pass, call)
		if name == "" {
			return
		}
	}
	for _, i := range resultErrorIndexes(info, call) {
		if i < len(stmt.Lhs) {
			if id, ok := ast.Unparen(stmt.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
				if via != "" {
					pass.Reportf(id.Pos(),
						"error from must-check %s blanked with _ (call resolves to %s through the call graph): the error must be inspected here", name, via)
				} else {
					pass.Reportf(id.Pos(),
						"error from must-check %s blanked with _: partial results arrive alongside errors, so the error must be inspected", name)
				}
			}
		}
	}
}

// wrappedMustCheck resolves the call through the call graph and reports
// the must-check method whose error the callee forwards: the callee may
// be a wrapper from the fixpoint closure, or a must-check method
// reached through a binding (method value, bound closure) that
// calleeFunc cannot see. The second result names the resolved callee
// for the message.
func wrappedMustCheck(pass *Pass, call *ast.CallExpr) (name, via string) {
	f := pass.Facts
	if f == nil {
		return "", ""
	}
	for _, e := range f.graph.bySite[call] {
		if e.Async {
			continue // the error surfaces on the submitting goroutine's future, not here
		}
		if e.Callee.Fn != nil {
			if must, n := mustCheckFunc(pass.Prog, pass.Cfg, e.Callee.Fn); must {
				return n, e.Callee.Name
			}
		}
		if n, ok := f.wrappers[e.Callee]; ok {
			return n, e.Callee.Name
		}
	}
	return "", ""
}

// mustCheckCall reports whether the call resolves to a configured
// must-check method — directly, or through any type implementing a
// configured interface method (so *Simulated.Post matches
// Platform.Post).
func mustCheckCall(pass *Pass, info *types.Info, call *ast.CallExpr) (bool, string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false, ""
	}
	named := recvNamed(fn)
	var recvType types.Type
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recvType = sig.Recv().Type()
	}
	for _, ref := range pass.Cfg.MustCheck {
		pkgPath, typeName, method := splitMethodRef(ref)
		if fn.Name() != method {
			continue
		}
		display := typeName + "." + method
		// Direct match on the declaring type.
		if named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == typeName {
			return true, display
		}
		// Interface contract: the receiver implements the configured
		// interface (and the method is that interface's).
		obj := pass.Prog.LookupType(pkgPath, typeName)
		if obj == nil {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok || recvType == nil {
			continue
		}
		if types.Implements(recvType, iface) || types.Implements(types.NewPointer(recvType), iface) {
			return true, display
		}
	}
	return false, ""
}

// neverFails reports whether the callee is a method on a type whose
// error results are documented to always be nil (strings.Builder and
// bytes.Buffer write methods), so dropping them is idiomatic, not a bug.
func neverFails(fn *types.Func) bool {
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// calleeName renders the callee for a message.
func calleeName(fn *types.Func, call *ast.CallExpr) string {
	if fn == nil {
		return "call"
	}
	if named := recvNamed(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
