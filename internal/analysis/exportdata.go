package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
)

// Fast stdlib importing. The profile of a full-repo lint run is
// dominated not by the analyzers but by type-checking the standard
// library from source: importer.ForCompiler(fset, "source", nil)
// re-parses and re-checks fmt, sync, net/http and their transitive
// closure on every invocation (~70% of wall time on this repo). The gc
// toolchain already has compiled export data for all of it in the build
// cache, so the loader asks `go list -export` for the export file of
// each dependency once, then imports from those files via the "gc"
// importer — the same data the compiler itself consumes. The source
// importer stays as the fallback: if the go tool is unavailable or the
// cache has no export file for a path (first run on a cold cache misses
// a few), that path quietly falls through, keeping the linter
// self-contained.

// exportDataImporter resolves non-module imports from compiler export
// data, falling back to the source importer per path.
type exportDataImporter struct {
	mu sync.Mutex
	// exports maps import path -> export file path ("" = known absent).
	exports map[string]string
	gc      types.Importer
	src     types.Importer
	// mode records what actually served the imports, for -v.
	usedSrc bool
}

// newStdImporter builds the stdlib importer for a program load: export
// data when `go list` can enumerate it, pure source importing
// otherwise.
func newStdImporter(fset *token.FileSet, moduleRoot string) *exportDataImporter {
	imp := &exportDataImporter{
		exports: listExportData(moduleRoot),
		src:     newSourceImporter(fset),
	}
	imp.gc = newGcImporter(fset, func(path string) (string, error) {
		imp.mu.Lock()
		defer imp.mu.Unlock()
		if f, ok := imp.exports[path]; ok && f != "" {
			return f, nil
		}
		return "", fmt.Errorf("no export data for %s", path)
	})
	return imp
}

// listExportData asks the go tool for the export files of the standard
// library (std covers every stdlib package; deps of the module arrive
// through the same cache the builds already warmed). Returns nil when
// the tool is unavailable — the caller then runs source-only.
func listExportData(moduleRoot string) map[string]string {
	out, err := runGoList(moduleRoot, "std")
	if err != nil {
		return nil
	}
	exports := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		path, file, ok := strings.Cut(sc.Text(), "\t")
		if !ok {
			continue
		}
		exports[path] = file // file may be empty: recorded as absent
	}
	if len(exports) == 0 {
		return nil
	}
	return exports
}

// runGoList invokes `go list -export` with the path/export-file format.
func runGoList(dir string, patterns ...string) ([]byte, error) {
	args := append([]string{"list", "-export", "-f", "{{.ImportPath}}\t{{.Export}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	return cmd.Output()
}

// Import serves one non-module import: export data when available for
// the path, source fallback otherwise.
func (imp *exportDataImporter) Import(path string) (*types.Package, error) {
	imp.mu.Lock()
	file, ok := imp.exports[path]
	imp.mu.Unlock()
	if imp.exports != nil && ok && file != "" {
		if pkg, err := imp.gc.Import(path); err == nil {
			return pkg, nil
		}
		// Export data unreadable (toolchain mismatch): fall through.
	}
	imp.mu.Lock()
	imp.usedSrc = true
	imp.mu.Unlock()
	return imp.src.Import(path)
}

// newGcImporter wraps the compiler ("gc") importer with a lookup that
// opens the export file found for each path.
func newGcImporter(fset *token.FileSet, find func(string) (string, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := find(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
}

// newSourceImporter is the stdlib-from-source fallback (the original
// loader's importer).
func newSourceImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// Mode describes what served the stdlib, for `bayeslint -v`.
func (imp *exportDataImporter) Mode() string {
	if imp.exports == nil {
		return "source"
	}
	imp.mu.Lock()
	defer imp.mu.Unlock()
	if imp.usedSrc {
		return "export data + source fallback"
	}
	return "export data"
}
