package analysis

import (
	"bufio"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// goldenDirs are the testdata packages TestGolden loads as roots. The
// guarded and pool packages carry no want comments: they are the owner
// and pool stand-ins and must come out clean.
var goldenDirs = []string{
	"determinism", "guarded", "singlewriter", "errdrop",
	"pool", "goroutine", "floatcmp", "ignore", "doccomment", "hotalloc",
	"lockcheck", "lockcopy", "ledger",
}

// goldenConfig mirrors RepoConfig with every contract pointed at the
// testdata packages instead of the real module internals.
func goldenConfig(modulePath string) *Config {
	td := modulePath + "/internal/analysis/testdata/src"
	return &Config{
		ModulePath:           modulePath,
		DeterminismPkgs:      []string{td + "/determinism", td + "/ignore"},
		SingleWriterOwners:   []string{td + "/guarded"},
		GuardedTypes:         []string{td + "/guarded.Evaluator", td + "/guarded.Cache"},
		MutatingMethods:      []string{td + "/guarded.Cache.Invalidate"},
		MustCheck:            []string{td + "/guarded.Platform.Post"},
		PoolPkg:              td + "/pool",
		ScratchTypePattern:   regexp.MustCompile(`(?i)(solver|scratch)`),
		EpsilonHelperPattern: regexp.MustCompile(`(?i)(approx|almost|close|within|eps)`),
		HotPathRoots:         []string{td + "/hotalloc.Scanner.Score"},
		DocPkgs:              []string{td + "/doccomment"},
		LedgerTypes:          []string{td + "/ledger.Ledger", td + "/ledger.Stats"},
		LedgerRoots:          []string{td + "/ledger.Engine.Tick"},
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// want is one expected diagnostic, parsed from a // want `regex`
// comment (several backquoted regexes may share one line).
type want struct {
	re      *regexp.Regexp
	matched bool
}

var (
	wantLineRe    = regexp.MustCompile(`// want (.*)$`)
	wantPatternRe = regexp.MustCompile("`([^`]*)`")
)

// parseWants scans the golden sources for want comments, keyed by
// "basename:line".
func parseWants(t *testing.T, root string) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, dir := range goldenDirs {
		pattern := filepath.Join(root, "internal", "analysis", "testdata", "src", dir, "*.go")
		files, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no golden sources match %s", pattern)
		}
		for _, file := range files {
			f, err := os.Open(file)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for line := 1; sc.Scan(); line++ {
				m := wantLineRe.FindStringSubmatch(sc.Text())
				if m == nil {
					continue
				}
				key := filepath.Base(file) + ":" + strconv.Itoa(line)
				pats := wantPatternRe.FindAllStringSubmatch(m[1], -1)
				if len(pats) == 0 {
					t.Errorf("%s: want comment without a backquoted pattern", key)
				}
				for _, p := range pats {
					wants[key] = append(wants[key], &want{re: regexp.MustCompile(p[1])})
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			_ = f.Close()
		}
	}
	return wants
}

// TestGolden runs every analyzer (and the directive machinery) over the
// testdata packages and matches the diagnostics against the // want
// comments in both directions: no unexpected findings, no missed ones.
func TestGolden(t *testing.T) {
	root := moduleRoot(t)
	patterns := make([]string, len(goldenDirs))
	for i, dir := range goldenDirs {
		patterns[i] = "./internal/analysis/testdata/src/" + dir
	}
	prog, err := Load(root, patterns, false)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := Run(prog, goldenConfig(prog.ModulePath), Analyzers(), 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	wants := parseWants(t, root)
	for _, d := range diags {
		key := filepath.Base(d.Pos.Filename) + ":" + strconv.Itoa(d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q was not reported", key, w.re)
			}
		}
	}
}

// TestRepoClean is the meta-gate: the analyzers with the real repo
// config must report nothing on the module itself — exactly what
// `bayeslint ./...` asserts in CI.
func TestRepoClean(t *testing.T) {
	root := moduleRoot(t)
	prog, err := Load(root, []string{"./..."}, false)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := Run(prog, RepoConfig(prog.ModulePath), Analyzers(), 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestMissingReasonDirective pins the one malformed-directive shape the
// golden files cannot carry: a reason-less directive would swallow the
// want comment as its reason, so it is exercised directly.
func TestMissingReasonDirective(t *testing.T) {
	fset := token.NewFileSet()
	const src = "package x\n\n//lint:ignore determinism\nfunc f() {}\n"
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{Fset: fset}
	pkg := &Package{Files: []*ast.File{f}}
	dirs := parseDirectives(prog, pkg, map[string]bool{"determinism": true})
	diags := applyDirectives(nil, dirs, map[string]bool{"determinism": true})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "bayeslint" || !strings.Contains(d.Message, "missing reason") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if d.Pos.Line != 3 {
		t.Errorf("diagnostic at line %d, want 3", d.Pos.Line)
	}
}

// TestDiagnosticString pins the file:line:col rendering the CI log and
// editors parse.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "a/b.go", Line: 7, Column: 3},
		Analyzer: "determinism",
		Message:  "boom",
	}
	if got, wantStr := d.String(), "a/b.go:7:3: boom (determinism)"; got != wantStr {
		t.Errorf("String() = %q, want %q", got, wantStr)
	}
}
