package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineAnalyzer enforces the repo's concurrency topology: all
// fan-out goes through internal/parallel's index-addressed pool.
//
//   - Naked `go` statements outside the pool package are flagged —
//     ad-hoc goroutines bypass the pool's happens-before join, the
//     panic replay, and the bit-identical merge order.
//   - `wg.Add` inside the goroutine it accounts for is flagged: the
//     spawned goroutine may not have run when Wait executes, so Wait
//     can return early (the Add must happen-before the go statement).
//   - Closures submitted to the pool must not capture solver scratch
//     declared outside: scratch is per-call or per-worker (handed out
//     via the worker index); a shared captured scratch is a write-write
//     race at any worker count above one.
var GoroutineAnalyzer = &Analyzer{
	Name: "goroutine",
	Doc:  "flag naked go statements outside the pool, wg.Add inside the spawned goroutine, and pool closures capturing shared scratch",
	Run:  runGoroutine,
}

func runGoroutine(pass *Pass) {
	info := pass.Pkg.Info
	inPool := pass.Pkg.Path == pass.Cfg.PoolPkg
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.GoStmt:
				if !inPool {
					pass.Reportf(stmt.Pos(),
						"naked go statement outside the worker pool (%s): fan out through parallel.For so joins, panics and merge order stay deterministic", pass.Cfg.PoolPkg)
				}
				checkAddInsideGoroutine(pass, info, stmt)
			case *ast.CallExpr:
				checkPoolClosure(pass, info, stmt)
			}
			return true
		})
	}
}

// checkAddInsideGoroutine flags sync.WaitGroup.Add calls inside the
// function the go statement spawns.
func checkAddInsideGoroutine(pass *Pass, info *types.Info, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Name() != "Add" {
			return true
		}
		if named := recvNamed(fn); named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
			pass.Reportf(call.Pos(),
				"wg.Add inside the spawned goroutine: Wait can return before this goroutine runs; call Add before the go statement")
		}
		return true
	})
}

// checkPoolClosure flags function literals passed to the pool package's
// fan-out functions when they capture a variable of a scratch type from
// the enclosing scope instead of taking per-worker scratch by index.
func checkPoolClosure(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Cfg.PoolPkg {
		return
	}
	if pass.Pkg.Path == pass.Cfg.PoolPkg {
		return // the pool's own internals and tests manage their scratch
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		for _, id := range freeIdents(info, lit) {
			obj := info.Uses[id]
			named := namedOf(obj.Type())
			if named == nil {
				continue
			}
			if pass.Cfg.ScratchTypePattern != nil && pass.Cfg.ScratchTypePattern.MatchString(named.Obj().Name()) {
				pass.Reportf(id.Pos(),
					"closure submitted to %s.%s captures shared scratch %q (type %s): every worker would share one mutable scratch — index per-worker scratch by the worker argument instead",
					fn.Pkg().Name(), fn.Name(), id.Name, named.Obj().Name())
			}
		}
	}
}
