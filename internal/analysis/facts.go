package analysis

import (
	"go/ast"
	"go/types"
)

// facts is the interprocedural summary store shared by every analyzer
// of one run: the whole-module call graph, the lock-discipline facts
// (guard annotations, per-site held sets, the entry-held fixpoint), the
// errdrop wrapper closure, and the ledger-conservation reachability.
// It is computed once, before the per-package passes fan out, and is
// read-only afterwards — which is what makes the passes safe to run in
// parallel.
type facts struct {
	graph *callGraph

	// Lock discipline (lockcheck).
	guards       map[*types.Var]*guardInfo
	lockNames    map[*types.Var]string
	entryHeld    map[*cgNode]lockSet
	accesses     []guardedAccess
	acquisitions []acquisition
	lockDiags    []factDiag

	// wrappers maps a node whose returned error derives from a
	// must-check call (directly or through further wrappers) to the
	// display name of the underlying must-check method. errdrop uses it
	// to flag drops of wrapped errors.
	wrappers map[*cgNode]string

	// Ledger conservation (ledger analyzer).
	ledgerTypes   []*types.Named
	ledgerAllowed map[*cgNode]*cgNode // node -> root that admits it

	// hotRoots are the resolved HotPathRoots nodes (hotalloc).
	hotRoots []*cgNode
}

// computeFacts builds every interprocedural summary for one program
// load. It must run before passes execute concurrently: it is the only
// phase that may trigger lazy package loading in prog.
func computeFacts(prog *Program, cfg *Config) *facts {
	prewarmConfigTypes(prog, cfg)
	f := &facts{
		graph:         buildCallGraph(prog, cfg),
		guards:        map[*types.Var]*guardInfo{},
		lockNames:     map[*types.Var]string{},
		entryHeld:     map[*cgNode]lockSet{},
		wrappers:      map[*cgNode]string{},
		ledgerAllowed: map[*cgNode]*cgNode{},
	}
	parseGuardAnnotations(prog, f)
	computeLockFacts(prog, f)
	computeWrappers(prog, cfg, f)
	computeLedgerFacts(prog, cfg, f)
	for _, ref := range cfg.HotPathRoots {
		if n := f.graph.byRef[ref]; n != nil {
			f.hotRoots = append(f.hotRoots, n)
		}
	}
	return f
}

// prewarmConfigTypes forces every config-referenced package through the
// lazy loader while the run is still single-threaded. Program.LookupType
// loads packages on demand and is not safe to call concurrently; after
// this warm-up the parallel passes only ever hit its cache.
func prewarmConfigTypes(prog *Program, cfg *Config) {
	warm := func(pkgPath, name string) {
		if pkgPath != "" {
			prog.LookupType(pkgPath, name)
		}
	}
	for _, ref := range cfg.GuardedTypes {
		warm(splitTypeRef(ref))
	}
	for _, ref := range cfg.LedgerTypes {
		warm(splitTypeRef(ref))
	}
	for _, ref := range cfg.MustCheck {
		pkgPath, typeName, _ := splitMethodRef(ref)
		warm(pkgPath, typeName)
	}
	for _, ref := range cfg.MutatingMethods {
		pkgPath, typeName, _ := splitMethodRef(ref)
		warm(pkgPath, typeName)
	}
}

// nodeSig returns the node's function signature.
func nodeSig(n *cgNode) *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	if tv, ok := n.Pkg.Info.Types[n.Lit]; ok {
		sig, _ := tv.Type.(*types.Signature)
		return sig
	}
	return nil
}

// nodeReturnsError reports whether the node's signature includes an
// error result.
func nodeReturnsError(n *cgNode) bool {
	sig := nodeSig(n)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// computeWrappers runs the errdrop wrapper fixpoint: a node is a
// wrapper when its returned error derives from a must-check call or
// from another wrapper — through a direct `return post(...)`, a local
// error variable, a named error result with a naked return, or an
// fmt.Errorf %w re-wrap of such a variable. The set only grows, so the
// iteration terminates.
func computeWrappers(prog *Program, cfg *Config, f *facts) {
	for changed := true; changed; {
		changed = false
		for _, n := range f.graph.Nodes {
			if _, done := f.wrappers[n]; done {
				continue
			}
			if !nodeReturnsError(n) {
				continue
			}
			if name := forwardedMustCheck(prog, cfg, f, n); name != "" {
				f.wrappers[n] = name
				changed = true
			}
		}
	}
}

// forwardedMustCheck returns the display name of the must-check method
// whose error the node forwards, "" when the node's error does not
// derive from one.
func forwardedMustCheck(prog *Program, cfg *Config, f *facts, n *cgNode) string {
	info := n.Pkg.Info

	// interesting reports whether the call's error originates in a
	// must-check method (directly or via an already-known wrapper).
	interesting := func(call *ast.CallExpr) string {
		if must, name := mustCheckCallCfg(prog, cfg, info, call); must {
			return name
		}
		for _, e := range f.graph.bySite[call] {
			if e.Async {
				continue // the error surfaces on another goroutine
			}
			if name, ok := f.wrappers[e.Callee]; ok {
				return name
			}
		}
		return ""
	}

	// Pass 1 (flow-insensitive): local variables whose value derives
	// from an interesting call — `err := post(...)` and
	// `err = fmt.Errorf("...: %w", tainted)`.
	tainted := map[*types.Var]string{}
	taintLHS := func(lhs []ast.Expr, idx []int, name string) {
		for _, i := range idx {
			if i >= len(lhs) {
				continue
			}
			if id, ok := ast.Unparen(lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				if v, ok := varOf(info, id); ok {
					tainted[v] = name
				}
			}
		}
	}
	for again := true; again; { // two-level rewraps: iterate locally too
		again = false
		before := len(tainted)
		forEachOwnNode(n.Body, func(an ast.Node) {
			st, ok := an.(*ast.AssignStmt)
			if !ok || len(st.Rhs) != 1 {
				return
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return
			}
			if name := interesting(call); name != "" {
				taintLHS(st.Lhs, resultErrorIndexes(info, call), name)
				return
			}
			if name := errorfRewrap(info, call, tainted); name != "" {
				taintLHS(st.Lhs, []int{0}, name)
			}
		})
		if len(tainted) != before {
			again = true
		}
	}

	// Pass 2: does any return hand a tainted value (or an interesting
	// call's result) back to the caller?
	sig := nodeSig(n)
	found := ""
	forEachOwnNode(n.Body, func(an ast.Node) {
		if found != "" {
			return
		}
		ret, ok := an.(*ast.ReturnStmt)
		if !ok {
			return
		}
		if len(ret.Results) == 0 {
			// Naked return: named error results carry their current
			// value out; a tainted named result makes this a wrapper.
			found = taintedNamedResult(info, sig, tainted)
			return
		}
		for _, r := range ret.Results {
			switch ex := ast.Unparen(r).(type) {
			case *ast.CallExpr:
				if name := interesting(ex); name != "" {
					found = name
				} else if name := errorfRewrap(info, ex, tainted); name != "" {
					found = name
				}
			case *ast.Ident:
				if v, ok := varOf(info, ex); ok {
					if name, ok := tainted[v]; ok {
						found = name
					}
				}
			}
		}
	})
	return found
}

// errorfRewrap reports the taint carried through fmt.Errorf when any
// argument is a tainted variable (the %w / %v re-wrap idiom).
func errorfRewrap(info *types.Info, call *ast.CallExpr, tainted map[*types.Var]string) string {
	fn := calleeFunc(info, call)
	if !isPkgFunc(fn, "fmt", "Errorf") {
		return ""
	}
	for _, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok {
			if v, ok := varOf(info, id); ok {
				if name, ok := tainted[v]; ok {
					return name
				}
			}
		}
	}
	return ""
}

// taintedNamedResult returns the taint of any named error result, for
// naked returns.
func taintedNamedResult(info *types.Info, sig *types.Signature, tainted map[*types.Var]string) string {
	if sig == nil {
		return ""
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		v := res.At(i)
		if v.Name() == "" || !types.Identical(v.Type(), errorType) {
			continue
		}
		for tv, name := range tainted {
			if tv.Name() == v.Name() && tv.Pos() == v.Pos() {
				return name
			}
		}
	}
	return ""
}

// varOf resolves an identifier to the variable it uses or defines.
func varOf(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v, true
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v, true
	}
	return nil, false
}

// mustCheckCallCfg is mustCheckCall without a Pass (usable during the
// facts phase): does the call resolve to a configured must-check
// method, directly or through an implementing type?
func mustCheckCallCfg(prog *Program, cfg *Config, info *types.Info, call *ast.CallExpr) (bool, string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false, ""
	}
	return mustCheckFunc(prog, cfg, fn)
}

// mustCheckFunc reports whether fn is a configured must-check method —
// the configured declaration itself or a method of a type implementing
// the configured interface.
func mustCheckFunc(prog *Program, cfg *Config, fn *types.Func) (bool, string) {
	named := recvNamed(fn)
	var recv types.Type
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = sig.Recv().Type()
	}
	for _, ref := range cfg.MustCheck {
		pkgPath, typeName, method := splitMethodRef(ref)
		if fn.Name() != method {
			continue
		}
		display := typeName + "." + method
		if named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == typeName {
			return true, display
		}
		obj := prog.LookupType(pkgPath, typeName)
		if obj == nil {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok || recv == nil {
			continue
		}
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			return true, display
		}
	}
	return false, ""
}

// computeLedgerFacts resolves the configured ledger types and computes
// the call-tree closure of the configured accounting roots. A node in
// the closure may mutate ledger counters; everything else may not.
// Methods declared on the ledger types themselves (the accounting
// helpers) are additional roots: they exist to centralize mutation.
func computeLedgerFacts(prog *Program, cfg *Config, f *facts) {
	for _, ref := range cfg.LedgerTypes {
		pkgPath, name := splitTypeRef(ref)
		if obj := prog.LookupType(pkgPath, name); obj != nil {
			if named, ok := obj.Type().(*types.Named); ok {
				f.ledgerTypes = append(f.ledgerTypes, named)
			}
		}
	}
	var roots []*cgNode
	for _, ref := range cfg.LedgerRoots {
		if n := f.graph.byRef[ref]; n != nil {
			roots = append(roots, n)
		}
	}
	for _, n := range f.graph.Nodes {
		if n.Fn != nil && f.isLedgerMethod(n.Fn) {
			roots = append(roots, n)
		}
	}
	f.ledgerAllowed = f.graph.reachableFrom(roots, nil)
}

// isLedgerMethod reports whether fn is declared on one of the ledger
// types.
func (f *facts) isLedgerMethod(fn *types.Func) bool {
	named := recvNamed(fn)
	if named == nil {
		return false
	}
	for _, lt := range f.ledgerTypes {
		if named.Obj() == lt.Obj() {
			return true
		}
	}
	return false
}

// isLedgerType reports whether t (pointers stripped) is a configured
// ledger type.
func (f *facts) isLedgerType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	for _, lt := range f.ledgerTypes {
		if named.Obj() == lt.Obj() {
			return true
		}
	}
	return false
}

// ledgerNodeAllowed reports whether the node may mutate ledger state:
// it is in the accounting call-tree closure, or it is lexically nested
// in a node that is (a literal defined inside Tick runs as part of
// Tick even when the graph cannot see its invocation).
func (f *facts) ledgerNodeAllowed(n *cgNode) bool {
	for ; n != nil; n = n.Parent {
		if f.ledgerAllowed[n] != nil {
			return true
		}
	}
	return false
}
