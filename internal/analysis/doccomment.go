package analysis

import (
	"go/ast"
	"strings"
)

// DocCommentAnalyzer flags exported top-level declarations without a doc
// comment in the configured packages. The repo's API surface is its
// paper-to-code map — every exported identifier names a concept from the
// paper or an operational contract (determinism, single-writer, nil
// no-ops), and an undocumented export is a contract the next reader has
// to reverse-engineer. A grouped declaration's doc covers all its specs,
// as does a spec's own doc comment, so idiomatic
//
//	// Strategies of §6.2.
//	const (
//		FBS Strategy = iota
//		...
//	)
//
// blocks stay clean. Trailing line comments do not count: they annotate
// a value, they don't document a contract.
var DocCommentAnalyzer = &Analyzer{
	Name: "doccomment",
	Doc:  "flag exported declarations without a doc comment in the configured packages",
	Run:  runDocComment,
}

func runDocComment(pass *Pass) {
	if !docScoped(pass.Cfg, pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				if d.Doc != nil {
					continue // the group doc covers every spec
				}
				for _, spec := range d.Specs {
					checkSpecDoc(pass, spec)
				}
			}
		}
	}
}

// docScoped reports whether the package's import path falls under one of
// the configured DocPkgs prefixes.
func docScoped(cfg *Config, path string) bool {
	for _, p := range cfg.DocPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// checkFuncDoc flags an undocumented exported function or an
// undocumented exported method on an exported receiver type (methods on
// unexported types are internal detail; their contract lives on the
// interface or constructor that exposes them).
func checkFuncDoc(pass *Pass, fd *ast.FuncDecl) {
	if fd.Doc != nil || !fd.Name.IsExported() {
		return
	}
	kind := "function"
	if fd.Recv != nil {
		recv := receiverTypeName(fd.Recv)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		kind = "method " + recv + "."
	} else {
		kind += " "
	}
	pass.Reportf(fd.Name.Pos(),
		"exported %s%s has no doc comment; document the contract (inputs, nil behavior, concurrency) the export promises", kind, fd.Name.Name)
}

// checkSpecDoc flags undocumented exported names inside an undocumented
// declaration group: the spec's own doc comment counts.
func checkSpecDoc(pass *Pass, spec ast.Spec) {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		if s.Doc == nil && s.Name.IsExported() {
			pass.Reportf(s.Name.Pos(),
				"exported type %s has no doc comment; document the contract (inputs, nil behavior, concurrency) the export promises", s.Name.Name)
		}
	case *ast.ValueSpec:
		if s.Doc != nil {
			return
		}
		for _, name := range s.Names {
			if name.IsExported() {
				pass.Reportf(name.Pos(),
					"exported %s has no doc comment; document the contract (inputs, nil behavior, concurrency) the export promises", name.Name)
			}
		}
	}
}

// receiverTypeName unwraps a method receiver to its base type name
// ("*Foo[T]" and "Foo" both yield "Foo").
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr:
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.Ident:
			return u.Name
		default:
			return ""
		}
	}
}
