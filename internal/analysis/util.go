package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function or method a call expression invokes,
// nil for calls through function-typed variables, built-ins, and
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call: pkg.Func.
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether f is the package-level function pkgPath.name.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name &&
		f.Type().(*types.Signature).Recv() == nil
}

// recvNamed returns the named type of a method's receiver (pointers
// stripped), nil for package-level functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// resultErrorIndexes returns the positions of error-typed results in a
// call's result tuple (empty when none).
func resultErrorIndexes(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	var idx []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				idx = append(idx, i)
			}
		}
	default:
		if types.Identical(tv.Type, errorType) {
			idx = append(idx, 0)
		}
	}
	return idx
}

// enclosingFuncs walks the file and calls fn for every function
// declaration and function literal with its body.
func enclosingFuncs(f *ast.File, fn func(name string, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Name.Name, d.Body)
			}
		case *ast.FuncLit:
			fn("", d.Body)
		}
		return true
	})
}

// freeIdents reports every identifier used inside the function literal
// that resolves to a variable declared outside it (a captured, free
// variable). Parameters and locals of nested literals are excluded.
func freeIdents(info *types.Info, lit *ast.FuncLit) []*ast.Ident {
	var free []*ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			free = append(free, id)
		}
		return true
	})
	return free
}
