package analysis

import (
	"fmt"
	"go/types"
	"sort"

	"bayescrowd/internal/parallel"
)

// Run executes the analyzers over every root package of the program and
// returns the surviving diagnostics (after //lint:ignore filtering),
// sorted by position. Packages with type errors fail loudly: linting an
// uncompilable package would silently skip its invariants.
//
// The run has two phases. The serial facts phase type-checks everything
// the config references, builds the call graph and runs the
// interprocedural fixpoints (the only phase allowed to trigger lazy
// package loading). The per-package analyzer passes then fan out over
// internal/parallel with the given worker count: each package's
// diagnostics land in its own slot of a pre-sized slice and are merged
// in index order, so the output is bit-identical to a sequential run at
// any worker count.
func Run(prog *Program, cfg *Config, analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	// known holds the full suite for the unknown-name check; ran holds
	// what this invocation executes, so a directive naming a real but
	// filtered-out analyzer is neither unknown nor unused.
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true // test-only analyzers outside the suite
		ran[a.Name] = true
	}
	for _, pkg := range prog.Roots {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("package %s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
		}
	}
	restricted := restrictedClosure(prog, cfg)
	fcts := computeFacts(prog, cfg)

	perPkg := make([][]Diagnostic, len(prog.Roots))
	parallel.For(parallel.Workers(workers), len(prog.Roots), func(_, i int) {
		pkg := prog.Roots[i]
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Prog:       prog,
				Pkg:        pkg,
				Cfg:        cfg,
				Facts:      fcts,
				restricted: restricted,
				diags:      &diags,
			}
			a.Run(pass)
		}
		dirs := parseDirectives(prog, pkg, known)
		perPkg[i] = applyDirectives(diags, dirs, ran)
	})
	var all []Diagnostic
	for _, d := range perPkg {
		all = append(all, d...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// One finding can arrive through two rule paths (nested seeded rand
	// constructors share one time.Now argument); identical entries
	// collapse so each defect reads once.
	deduped := all[:0]
	for i, d := range all {
		if i > 0 && d == all[i-1] {
			continue
		}
		deduped = append(deduped, d)
	}
	return deduped, nil
}

// restrictedClosure computes the effective determinism scope: the
// configured packages plus every module package they transitively
// import. Code in an imported package runs on behalf of the restricted
// callers, so its clock and randomness reads are just as reachable.
func restrictedClosure(prog *Program, cfg *Config) map[string]bool {
	restricted := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		if restricted[path] {
			return
		}
		restricted[path] = true
		pkg, _ := prog.load(path)
		if pkg == nil || pkg.Types == nil {
			return
		}
		for _, imp := range pkg.Types.Imports() {
			if isModulePath(prog, imp.Path()) {
				visit(imp.Path())
			}
		}
	}
	for _, path := range cfg.DeterminismPkgs {
		visit(path)
	}
	return restricted
}

func isModulePath(prog *Program, path string) bool {
	return path == prog.ModulePath || len(path) > len(prog.ModulePath) && path[:len(prog.ModulePath)+1] == prog.ModulePath+"/"
}

// guardedNamed reports whether t (after stripping pointers) is one of
// the configured single-writer guarded types; it returns the matched
// "pkg.Type" display name.
func (p *Pass) guardedNamed(t types.Type) (string, bool) {
	named := namedOf(t)
	if named == nil {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	ref := obj.Pkg().Path() + "." + obj.Name()
	for _, g := range p.Cfg.GuardedTypes {
		if g == ref {
			return obj.Pkg().Name() + "." + obj.Name(), true
		}
	}
	return "", false
}

// namedOf unwraps pointers and aliases down to a named type, nil when
// the type is unnamed.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}
