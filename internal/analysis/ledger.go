package analysis

import (
	"go/ast"
	"go/types"
)

// LedgerAnalyzer enforces conservation of the crowdsourcing accounting
// state. The configured ledger types (stream.CrowdLedger, crowd.Stats)
// hold the counters behind the paper's budget guarantee — Posted must
// equal Charged + Refunded + reserved at every quiescent point — and
// that identity only survives review if the set of mutation sites stays
// auditable. The analyzer therefore restricts every counter write and
// every mutating (pointer-receiver) method call on a ledger type to:
//
//   - the accounting helpers: methods declared on the ledger types
//     themselves (CrowdLedger.add, Stats.record), and their call trees;
//   - the configured accounting roots' call trees (CrowdEngine.Tick,
//     core.crowdPhase), resolved interprocedurally over the call graph —
//     including closures, method values, and pool-submitted thunks;
//   - function literals lexically nested inside an allowed node (they
//     execute as part of it even when no call edge is visible).
//
// A new call site that bumps TasksPosted from, say, a CLI command or a
// test helper is a finding: route it through the engine or a helper so
// the conservation check keeps meaning something.
var LedgerAnalyzer = &Analyzer{
	Name: "ledger",
	Doc:  "ledger counters (CrowdLedger, Stats) may only be mutated inside accounting helpers and the configured accounting call trees",
	Run:  runLedger,
}

func runLedger(pass *Pass) {
	f := pass.Facts
	if f == nil || len(f.ledgerTypes) == 0 {
		return
	}
	info := pass.Pkg.Info
	for _, n := range f.graph.Nodes {
		if n.Pkg != pass.Pkg || f.ledgerNodeAllowed(n) {
			continue
		}
		forEachOwnNode(n.Body, func(an ast.Node) {
			switch st := an.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkLedgerWrite(pass, f, n, lhs)
				}
			case *ast.IncDecStmt:
				checkLedgerWrite(pass, f, n, st.X)
			case *ast.CallExpr:
				fn := calleeFunc(info, st)
				if fn == nil || !f.isLedgerMethod(fn) {
					return
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return
				}
				if _, ptr := sig.Recv().Type().(*types.Pointer); !ptr {
					return // value-receiver methods are reads
				}
				pass.Reportf(st.Pos(),
					"accounting helper %s called outside the accounting call trees (from %s): ledger mutations must flow through the configured roots so counter conservation stays auditable",
					calleeName(fn, st), n.rootName())
			}
		})
	}
}

// checkLedgerWrite flags an assignment target that stores into a field
// of a ledger-typed value. Index and slice chains are unwrapped so
// element stores into ledger-held maps count too.
func checkLedgerWrite(pass *Pass, f *facts, n *cgNode, lhs ast.Expr) {
	info := pass.Pkg.Info
	e := ast.Unparen(lhs)
	for {
		switch ex := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(ex.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(ex.X)
			continue
		case *ast.SliceExpr:
			e = ast.Unparen(ex.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := info.Types[sel.X]
	if !ok || !f.isLedgerType(tv.Type) {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"write to ledger counter %s outside the accounting call trees (in %s): mutate it through an accounting helper or a function reachable from the configured roots",
		ledgerFieldDisplay(f, info, sel), n.rootName())
}

// ledgerFieldDisplay renders "Type.Field" for a ledger counter write.
func ledgerFieldDisplay(f *facts, info *types.Info, sel *ast.SelectorExpr) string {
	if tv, ok := info.Types[sel.X]; ok {
		if named := namedOf(tv.Type); named != nil {
			return named.Obj().Name() + "." + sel.Sel.Name
		}
	}
	return sel.Sel.Name
}
