package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// LockCheckAnalyzer enforces annotated mutex discipline. A struct field
// carrying a
//
//	// guarded by <mu>
//
// comment (trailing the field or in its doc block, where <mu> names a
// sibling sync.Mutex or sync.RWMutex field) may only be read or written
// on paths where the analysis proves the mutex is held. The proof is
// interprocedural: a per-function walk tracks the locks held through
// each statement (Lock/Unlock pairs, defer Unlock, branch
// intersection), and a fixpoint over the call graph computes the locks
// held on entry of every function as the intersection over its call
// sites — so a helper only ever called with the shard mutex held (the
// cache's compactFIFO pattern) needs no annotation of its own, while a
// new lock-free call site of that helper immediately turns every
// guarded access inside it into a finding. Thunks handed to the worker
// pool, go statements and deferred calls enter with no locks held: a
// guarded access inside a pool closure is flagged even when the
// submitter held the lock, because the worker goroutine does not.
//
// The same walk also records the order in which locks nest; a pair of
// mutexes acquired in both orders anywhere in the module is reported at
// both acquisition sites (inconsistent order is a deadlock one
// schedule away). Writes under a read lock are findings, reads under
// either mode pass.
var LockCheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "prove '// guarded by <mu>' fields are only accessed with the mutex held; flag lock-order inversions",
	Run:  runLockCheck,
}

func runLockCheck(pass *Pass) {
	f := pass.Facts
	if f == nil {
		return
	}
	for _, d := range f.lockDiags {
		if d.pkg == pass.Pkg {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
	for _, acc := range f.accesses {
		if acc.pkg != pass.Pkg {
			continue
		}
		g := f.guards[acc.field]
		eff := acc.held.union(f.entryHeldOf(acc.node))
		mode, held := eff[g.mu]
		switch {
		case !held:
			pass.Reportf(acc.pos,
				"%s %s (guarded by %s) without holding the mutex: no path into %s proves it locked — lock it, or route the access through a helper whose call sites all hold it",
				acc.verb(), g.dispField, g.dispMu, acc.node.rootName())
		case acc.write && mode&lockWrite == 0:
			pass.Reportf(acc.pos,
				"write to %s (guarded by %s) under a read lock: RLock only licenses reads — take the write lock",
				acc.dispVerbTarget(g), g.dispMu)
		}
	}
}

// lockMode distinguishes read-locked from write-locked mutexes.
type lockMode uint8

const (
	lockRead  lockMode = 1 << iota // RLock held
	lockWrite                      // Lock held (implies read license)
)

// lockSet maps a mutex field to the strongest mode proved held. Keys
// are the field objects themselves, so two instances of the same struct
// share one key: the discipline is per-field, not per-instance (the
// standard annotation-checker approximation).
type lockSet map[*types.Var]lockMode

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s lockSet) union(t lockSet) lockSet {
	if len(t) == 0 {
		return s
	}
	out := s.clone()
	for k, v := range t {
		out[k] |= v
	}
	return out
}

// intersect keeps the keys present in both sets with the weaker mode.
func (s lockSet) intersect(t lockSet) lockSet {
	out := lockSet{}
	for k, v := range s {
		if w, ok := t[k]; ok {
			out[k] = v & w
		}
	}
	return out
}

func (s lockSet) equal(t lockSet) bool {
	if len(s) != len(t) {
		return false
	}
	for k, v := range s {
		if t[k] != v {
			return false
		}
	}
	return true
}

// guardInfo records one annotated field's contract.
type guardInfo struct {
	mu        *types.Var // the sibling mutex field
	dispField string     // "Type.field" for messages
	dispMu    string     // "Type.mu" for messages
}

// guardedAccess is one read or write of an annotated field, with the
// locks the intra-function walk proved held locally at the site.
type guardedAccess struct {
	pos   token.Pos
	pkg   *Package
	node  *cgNode
	field *types.Var
	write bool
	held  lockSet
}

func (a *guardedAccess) verb() string {
	if a.write {
		return "write to"
	}
	return "read of"
}

func (a *guardedAccess) dispVerbTarget(g *guardInfo) string { return g.dispField }

// factDiag is a pre-positioned finding computed during the facts phase,
// reported by the owning package's pass.
type factDiag struct {
	pkg *Package
	pos token.Pos
	msg string
}

// guardedByRe matches the annotation inside a field comment.
var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// parseGuardAnnotations collects every "// guarded by <mu>" field
// annotation across the root packages, validating that <mu> names a
// sibling mutex field. Malformed annotations become findings — a typo'd
// guard must not silently disable the check.
func parseGuardAnnotations(prog *Program, f *facts) {
	for _, pkg := range prog.Roots {
		info := pkg.Info
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					parseStructGuards(pkg, info, ts.Name.Name, st, f)
				}
			}
		}
	}
}

// parseStructGuards processes one struct declaration's annotations.
func parseStructGuards(pkg *Package, info *types.Info, typeName string, st *ast.StructType, f *facts) {
	// Index the sibling fields by name for guard resolution.
	fieldByName := map[string]*ast.Field{}
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			fieldByName[name.Name] = fld
		}
	}
	for _, fld := range st.Fields.List {
		text := ""
		if fld.Doc != nil {
			text += fld.Doc.Text()
		}
		if fld.Comment != nil {
			text += fld.Comment.Text()
		}
		m := guardedByRe.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		muName := m[1]
		muField, ok := fieldByName[muName]
		if !ok {
			f.lockDiags = append(f.lockDiags, factDiag{pkg: pkg, pos: fld.Pos(),
				msg: fmt.Sprintf("guarded-by annotation names %q, which is not a field of %s", muName, typeName)})
			continue
		}
		var muVar *types.Var
		for _, name := range muField.Names {
			if name.Name == muName {
				muVar, _ = info.Defs[name].(*types.Var)
			}
		}
		if muVar == nil || !isMutexVar(muVar) {
			f.lockDiags = append(f.lockDiags, factDiag{pkg: pkg, pos: fld.Pos(),
				msg: fmt.Sprintf("guarded-by annotation names %s.%s, which is not a sync.Mutex or sync.RWMutex", typeName, muName)})
			continue
		}
		f.lockNames[muVar] = typeName + "." + muName
		for _, name := range fld.Names {
			if fv, ok := info.Defs[name].(*types.Var); ok {
				f.guards[fv] = &guardInfo{
					mu:        muVar,
					dispField: typeName + "." + name.Name,
					dispMu:    typeName + "." + muName,
				}
			}
		}
		if len(fld.Names) == 0 {
			f.lockDiags = append(f.lockDiags, factDiag{pkg: pkg, pos: fld.Pos(),
				msg: fmt.Sprintf("guarded-by annotation on an embedded field of %s is not supported: name the field", typeName)})
		}
	}
}

// isMutexVar reports whether the field's type is sync.Mutex or
// sync.RWMutex (directly or behind one pointer).
func isMutexVar(v *types.Var) bool {
	return mutexKind(v.Type()) != ""
}

// mutexKind returns "Mutex" / "RWMutex" for sync mutex types (pointers
// stripped), "" otherwise.
func mutexKind(t types.Type) string {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return ""
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return named.Obj().Name()
	}
	return ""
}

// lockWalker tracks, statement by statement, which mutex fields are
// held inside one function body. It records three kinds of facts: the
// held set at every call site (feeding the entry-held fixpoint), every
// guarded-field access with its local held set, and every nested
// acquisition (feeding the lock-order check).
type lockWalker struct {
	f    *facts
	pkg  *Package
	node *cgNode
	held lockSet
	// order is the acquisition stack mirroring held's keys in the order
	// they were taken on the walked path; it keeps the order-inversion
	// pairs deterministic (held is a map, whose iteration order is not).
	order []*types.Var
}

// computeLockFacts walks every node, then runs the entry-held fixpoint
// and the lock-order inversion scan.
func computeLockFacts(prog *Program, f *facts) {
	for _, n := range f.graph.Nodes {
		w := &lockWalker{f: f, pkg: n.Pkg, node: n, held: lockSet{}}
		w.stmts(n.Body.List)
	}
	fixpointEntryHeld(f)
	reportOrderInversions(prog, f)
}

// fixpointEntryHeld computes, per node, the locks held at every call
// site of the node — the intersection over all in-edges of the locks
// held at the site plus the caller's own entry set. Async edges
// contribute the empty set (the callee runs on another goroutine or
// after unwind). Nodes with no in-edges are entry points and start
// empty; everything else starts at "unknown" (nil, the top element) and
// only shrinks, so the iteration terminates.
func fixpointEntryHeld(f *facts) {
	for _, n := range f.graph.Nodes {
		if len(n.In) == 0 {
			f.entryHeld[n] = lockSet{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range f.graph.Nodes {
			if len(n.In) == 0 {
				continue
			}
			var acc lockSet // nil = top (no known in-edge yet)
			for _, e := range n.In {
				var eff lockSet
				if e.Async {
					eff = lockSet{}
				} else {
					callerEntry, ok := f.entryHeld[e.Caller]
					if !ok {
						continue // caller still unknown: contributes top
					}
					eff = e.held.union(callerEntry)
				}
				if acc == nil {
					acc = eff.clone()
				} else {
					acc = acc.intersect(eff)
				}
			}
			if acc == nil {
				continue
			}
			if cur, ok := f.entryHeld[n]; !ok || !cur.equal(acc) {
				f.entryHeld[n] = acc
				changed = true
			}
		}
	}
}

// entryHeldOf returns the locks proved held on entry to the node; nodes
// the fixpoint never reached (no known callers) are treated as entered
// lock-free, the conservative direction.
func (f *facts) entryHeldOf(n *cgNode) lockSet {
	if s, ok := f.entryHeld[n]; ok {
		return s
	}
	return nil
}

// reportOrderInversions scans the recorded nested acquisitions for
// pairs taken in both orders. Acquisitions are iterated in recording
// order (node order × statement order), which keeps the diagnostics
// deterministic without a sort.
func reportOrderInversions(prog *Program, f *facts) {
	type pair struct{ outer, inner *types.Var }
	seen := map[pair]bool{}
	for _, acq := range f.acquisitions {
		seen[pair{acq.outer, acq.inner}] = true
	}
	for _, acq := range f.acquisitions {
		if acq.outer == acq.inner || !seen[pair{acq.inner, acq.outer}] {
			continue
		}
		f.lockDiags = append(f.lockDiags, factDiag{
			pkg: f.pkgOfPos(prog, acq.pos),
			pos: acq.pos,
			msg: fmt.Sprintf("lock %s acquired while holding %s, but the opposite order also occurs: inconsistent acquisition order deadlocks the first schedule that interleaves them",
				f.lockName(acq.inner), f.lockName(acq.outer)),
		})
	}
}

// acquisition records one lock taken while another was held.
type acquisition struct {
	outer, inner *types.Var
	pos          token.Pos
}

// lockName renders a mutex field for messages.
func (f *facts) lockName(v *types.Var) string {
	if n, ok := f.lockNames[v]; ok {
		return n
	}
	return v.Name()
}

// pkgOfPos finds the root package owning a position.
func (f *facts) pkgOfPos(prog *Program, pos token.Pos) *Package {
	file := prog.Fset.Position(pos).Filename
	for _, pkg := range prog.Roots {
		for _, astf := range pkg.Files {
			if prog.Fset.Position(astf.Pos()).Filename == file {
				return pkg
			}
		}
	}
	return nil
}

// stmts walks a statement list sequentially; the returned flag reports
// that control cannot fall out of the list (a return/branch on every
// path).
func (w *lockWalker) stmts(list []ast.Stmt) bool {
	diverges := false
	for _, s := range list {
		if w.stmt(s) {
			diverges = true
		}
	}
	return diverges
}

// stmt walks one statement, updating the held set.
func (w *lockWalker) stmt(s ast.Stmt) bool {
	switch st := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		w.expr(st.X, false)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.expr(r, false)
		}
		for _, l := range st.Lhs {
			w.expr(l, true)
		}
	case *ast.IncDecStmt:
		w.expr(st.X, true)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, false)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r, false)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.stmts(st.List)
	case *ast.IfStmt:
		w.stmt(st.Init)
		w.expr(st.Cond, false)
		entry := w.held.clone()
		thenDiv := w.stmt(st.Body)
		thenHeld := w.held
		w.held = entry.clone()
		elseDiv := false
		elseHeld := entry
		if st.Else != nil {
			elseDiv = w.stmt(st.Else)
			elseHeld = w.held
		}
		switch {
		case thenDiv && elseDiv:
			w.held = entry
			return st.Else != nil
		case thenDiv:
			w.held = elseHeld
		case elseDiv:
			w.held = thenHeld
		default:
			w.held = thenHeld.intersect(elseHeld)
		}
	case *ast.ForStmt:
		w.stmt(st.Init)
		w.expr(st.Cond, false)
		entry := w.held.clone()
		w.stmt(st.Body)
		w.stmt(st.Post)
		w.held = entry // the body may run zero times
	case *ast.RangeStmt:
		w.expr(st.X, false)
		entry := w.held.clone()
		w.stmt(st.Body)
		w.held = entry
	case *ast.SwitchStmt:
		w.stmt(st.Init)
		w.expr(st.Tag, false)
		w.walkClauses(st.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init)
		w.stmt(st.Assign)
		w.walkClauses(st.Body)
	case *ast.SelectStmt:
		w.walkClauses(st.Body)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to every return: no-op
		// on the held set. Any other deferred call runs after unwind
		// (its edges are async); its arguments are evaluated now.
		if w.lockOp(st.Call, true) {
			return false
		}
		for _, a := range st.Call.Args {
			w.expr(a, false)
		}
		w.recordCall(st.Call)
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			w.expr(a, false)
		}
		w.recordCall(st.Call)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt)
	case *ast.SendStmt:
		w.expr(st.Chan, false)
		w.expr(st.Value, false)
	}
	return false
}

// walkClauses runs each case/comm clause from the entry held set and
// restores it afterwards (conservative merge: a clause's acquisitions
// do not survive the switch).
func (w *lockWalker) walkClauses(body *ast.BlockStmt) {
	entry := w.held.clone()
	for _, c := range body.List {
		w.held = entry.clone()
		switch cl := c.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.expr(e, false)
			}
			w.stmts(cl.Body)
		case *ast.CommClause:
			w.stmt(cl.Comm)
			w.stmts(cl.Body)
		}
	}
	w.held = entry
}

// expr walks one expression. write marks the outermost position of an
// assignment target: a selector there (or behind index chains) is a
// write access to the field.
func (w *lockWalker) expr(e ast.Expr, write bool) {
	switch ex := e.(type) {
	case nil:
		return
	case *ast.ParenExpr:
		w.expr(ex.X, write)
	case *ast.Ident:
		return
	case *ast.SelectorExpr:
		w.checkAccess(ex, write)
		w.expr(ex.X, false)
	case *ast.IndexExpr:
		w.expr(ex.X, write) // storing into a guarded map/slice mutates the field
		w.expr(ex.Index, false)
	case *ast.IndexListExpr:
		w.expr(ex.X, write)
		for _, i := range ex.Indices {
			w.expr(i, false)
		}
	case *ast.StarExpr:
		w.expr(ex.X, false)
	case *ast.UnaryExpr:
		w.expr(ex.X, false)
	case *ast.BinaryExpr:
		w.expr(ex.X, false)
		w.expr(ex.Y, false)
	case *ast.CallExpr:
		if w.lockOp(ex, false) {
			return
		}
		w.expr(ex.Fun, false)
		for _, a := range ex.Args {
			w.expr(a, false)
		}
		w.recordCall(ex)
	case *ast.FuncLit:
		return // its body is a separate node; entry locks come from the fixpoint
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			w.expr(el, false)
		}
	case *ast.KeyValueExpr:
		w.expr(ex.Value, false)
	case *ast.TypeAssertExpr:
		w.expr(ex.X, false)
	case *ast.SliceExpr:
		w.expr(ex.X, write)
		w.expr(ex.Low, false)
		w.expr(ex.High, false)
		w.expr(ex.Max, false)
	case *ast.Ellipsis:
		w.expr(ex.Elt, false)
	}
}

// recordCall snapshots the held set onto the call's resolved edges for
// the entry-held fixpoint.
func (w *lockWalker) recordCall(call *ast.CallExpr) {
	for _, e := range w.f.graph.bySite[call] {
		e.held = w.held.clone()
	}
}

// lockOp recognises mutex-field Lock/RLock/Unlock/RUnlock calls and
// applies their effect. deferred Unlocks leave the set untouched (held
// to function end). Returns true when the call was a lock operation.
func (w *lockWalker) lockOp(call *ast.CallExpr, deferred bool) bool {
	fn := calleeFunc(w.pkg.Info, call)
	if fn == nil || mutexKind(recvType(fn)) == "" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	muField := w.fieldVar(ast.Unparen(sel.X))
	if muField == nil {
		return false
	}
	if _, named := w.f.lockNames[muField]; !named {
		// Remember a display name even for mutexes nobody annotated
		// against, so order-inversion messages can name them.
		disp := muField.Name()
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if tv, ok := w.pkg.Info.Types[inner.X]; ok {
				if nm := namedOf(tv.Type); nm != nil {
					disp = nm.Obj().Name() + "." + muField.Name()
				}
			}
		}
		w.f.lockNames[muField] = disp
	}
	switch fn.Name() {
	case "Lock":
		if !deferred {
			w.acquire(muField, call.Pos())
			w.held[muField] = lockRead | lockWrite
		}
	case "RLock":
		if !deferred {
			w.acquire(muField, call.Pos())
			w.held[muField] |= lockRead
		}
	case "Unlock", "RUnlock":
		if !deferred {
			delete(w.held, muField)
			for i, v := range w.order {
				if v == muField {
					w.order = append(w.order[:i], w.order[i+1:]...)
					break
				}
			}
		}
	default:
		return false // TryLock etc.: effect unknown, treated as a plain call
	}
	return true
}

// acquire records the order pairs for taking mu while others are held,
// walking the deterministic acquisition stack rather than the held map.
func (w *lockWalker) acquire(mu *types.Var, pos token.Pos) {
	for _, held := range w.order {
		if _, still := w.held[held]; still {
			w.f.acquisitions = append(w.f.acquisitions, acquisition{outer: held, inner: mu, pos: pos})
		}
	}
	for _, v := range w.order {
		if v == mu {
			return
		}
	}
	w.order = append(w.order, mu)
}

// fieldVar resolves an expression of the form base.field to the field
// object, nil for anything else (local mutex variables cannot guard
// struct fields, so only field mutexes carry lock keys).
func (w *lockWalker) fieldVar(e ast.Expr) *types.Var {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := w.pkg.Info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := w.pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// checkAccess records guarded-field reads and writes with the local
// held set.
func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, write bool) {
	v := w.fieldVar(sel)
	if v == nil {
		return
	}
	if _, guarded := w.f.guards[v]; !guarded {
		return
	}
	w.f.accesses = append(w.f.accesses, guardedAccess{
		pos:   sel.Sel.Pos(),
		pkg:   w.pkg,
		node:  w.node,
		field: v,
		write: write,
		held:  w.held.clone(),
	})
}

// recvType returns a method's receiver type, nil for functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}
