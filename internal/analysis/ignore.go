package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix starts a suppression directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive suppresses matching diagnostics on its own line or on
// the line directly below it (so it can trail the flagged statement or
// sit on its own line above it). The reason is mandatory: a suppression
// without a recorded justification is a diagnostic itself.
const ignorePrefix = "//lint:ignore "

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos       token.Position
	analyzers []string
	reason    string
	used      bool
	malformed string // non-empty: why the directive is invalid
}

// parseDirectives extracts every //lint:ignore directive from a
// package's comments, keyed by file name.
func parseDirectives(prog *Program, pkg *Package, known map[string]bool) map[string][]*directive {
	out := map[string][]*directive{}
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, strings.TrimSuffix(ignorePrefix, " "))
				if !ok {
					continue
				}
				d := &directive{pos: prog.Fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.malformed = "missing analyzer name and reason"
				case len(fields) == 1:
					d.malformed = "missing reason (write //lint:ignore <analyzer> <reason>)"
				default:
					d.analyzers = strings.Split(fields[0], ",")
					d.reason = strings.Join(fields[1:], " ")
					for _, a := range d.analyzers {
						if !known[a] {
							d.malformed = "unknown analyzer " + quote(a)
						}
					}
				}
				out[d.pos.Filename] = append(out[d.pos.Filename], d)
			}
		}
	}
	return out
}

func quote(s string) string { return `"` + s + `"` }

// matches reports whether the directive suppresses a diagnostic from
// the named analyzer at the given position.
func (d *directive) matches(diag Diagnostic) bool {
	if d.malformed != "" || diag.Pos.Filename != d.pos.Filename {
		return false
	}
	if diag.Pos.Line != d.pos.Line && diag.Pos.Line != d.pos.Line+1 {
		return false
	}
	for _, a := range d.analyzers {
		if a == diag.Analyzer {
			return true
		}
	}
	return false
}

// applyDirectives filters diags through the package's directives and
// appends one diagnostic per malformed or unused directive, keeping the
// suppression set exact: every directive must justify a live finding.
// ran names the analyzers this invocation actually executed; a
// directive is only held to the unused check when at least one of its
// analyzers ran (so `-analyzer` filtering cannot make every other
// directive fail).
func applyDirectives(diags []Diagnostic, dirs map[string][]*directive, ran map[string]bool) []Diagnostic {
	var kept []Diagnostic
	for _, diag := range diags {
		suppressed := false
		for _, d := range dirs[diag.Pos.Filename] {
			if d.matches(diag) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	files := make([]string, 0, len(dirs))
	for f := range dirs {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, d := range dirs[f] {
			switch {
			case d.malformed != "":
				kept = append(kept, Diagnostic{
					Pos:      d.pos,
					Analyzer: "bayeslint",
					Message:  "malformed lint:ignore directive: " + d.malformed,
				})
			case !d.used && anyRan(d.analyzers, ran):
				kept = append(kept, Diagnostic{
					Pos:      d.pos,
					Analyzer: "bayeslint",
					Message:  "unused lint:ignore directive (" + strings.Join(d.analyzers, ",") + "): delete it or it will mask a future regression",
				})
			}
		}
	}
	return kept
}

// anyRan reports whether any of the named analyzers executed this run.
func anyRan(names []string, ran map[string]bool) bool {
	for _, n := range names {
		if ran[n] {
			return true
		}
	}
	return false
}
