// Package lockcheck is golden input for the lock-discipline analyzer:
// fields annotated `guarded by <mu>` may only be accessed where the
// interprocedural summary proves the mutex held.
package lockcheck

import (
	"sync"

	pool "bayescrowd/internal/analysis/testdata/src/pool"
)

// Shard mirrors the component cache's sharded map.
type Shard struct {
	mu sync.Mutex
	// guarded by mu
	m map[string]int
	// guarded by missing
	bad int // want `guarded-by annotation names "missing", which is not a field of Shard`
	// guarded by m
	worse int // want `guarded-by annotation names Shard\.m, which is not a sync\.Mutex or sync\.RWMutex`
}

// Get accesses the map with the lock held: clean.
func (s *Shard) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

// Bare reads the guarded map without any lock.
func (s *Shard) Bare(k string) int {
	return s.m[k] // want `read of Shard\.m \(guarded by Shard\.mu\) without holding the mutex`
}

// Put shows the early-unlock-return shape the branch merge must get
// right: the then-branch diverges after unlocking, so the fallthrough
// path still holds the lock.
func (s *Shard) Put(k string, v int) {
	s.mu.Lock()
	if v < 0 {
		s.mu.Unlock()
		return
	}
	s.m[k] = v // clean: the negative path returned above
	s.mu.Unlock()
}

// Racy only locks on one branch; the access below the merge is not
// proved on both paths.
func (s *Shard) Racy(cond bool, k string) {
	if cond {
		s.mu.Lock()
	}
	s.m[k] = 1 // want `write to Shard\.m \(guarded by Shard\.mu\) without holding the mutex`
	if cond {
		s.mu.Unlock()
	}
}

// compact is never locked locally: every call site holds the mutex, so
// the entry-held fixpoint proves its accesses. This is the cache's
// "called with mu held" helper pattern, now machine-checked.
func (s *Shard) compact(k string) {
	delete(s.m, k)
	s.m[k] = 0
}

// Trim calls compact with the lock held.
func (s *Shard) Trim(k string) {
	s.mu.Lock()
	s.compact(k)
	s.mu.Unlock()
}

// Drop also calls compact with the lock held, so the intersection over
// both call sites keeps the proof.
func (s *Shard) Drop(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compact(k)
}

// leak is called once with the lock and once without: the intersection
// over its call sites is empty, so its access is a finding.
func (s *Shard) leak(k string) {
	s.m[k]++ // want `write to Shard\.m \(guarded by Shard\.mu\) without holding the mutex`
}

// Mixed provides the lock-free call site that breaks leak's proof.
func (s *Shard) Mixed(k string) {
	s.mu.Lock()
	s.leak(k)
	s.mu.Unlock()
	s.leak(k)
}

// Fanout submits a thunk to the pool while holding the lock. The thunk
// runs on a worker goroutine, so the submitter's lock does not protect
// the access inside it.
func (s *Shard) Fanout(keys []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pool.For(2, len(keys), func(w, i int) {
		s.m[keys[i]] = i // want `write to Shard\.m \(guarded by Shard\.mu\) without holding the mutex`
	})
}

// Table exercises the read/write lock modes.
type Table struct {
	rw sync.RWMutex
	// guarded by rw
	idx map[string]int
}

// ReadOK reads under the read lock: clean.
func (t *Table) ReadOK(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.idx[k]
}

// WriteUnderRead mutates under RLock: the read lock only licenses
// reads.
func (t *Table) WriteUnderRead(k string) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.idx[k] = 1 // want `write to Table\.idx \(guarded by Table\.rw\) under a read lock`
}

// WriteOK takes the write lock: clean.
func (t *Table) WriteOK(k string) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.idx[k] = 1
}

// Pair nests its two mutexes in both orders across the two methods
// below: each inner acquisition is a deadlock finding.
type Pair struct {
	muA sync.Mutex
	muB sync.Mutex
	n   int
}

// AB locks muA then muB.
func (p *Pair) AB() {
	p.muA.Lock()
	p.muB.Lock() // want `lock Pair\.muB acquired while holding Pair\.muA, but the opposite order also occurs`
	p.n++
	p.muB.Unlock()
	p.muA.Unlock()
}

// BA locks muB then muA.
func (p *Pair) BA() {
	p.muB.Lock()
	p.muA.Lock() // want `lock Pair\.muA acquired while holding Pair\.muB, but the opposite order also occurs`
	p.n++
	p.muA.Unlock()
	p.muB.Unlock()
}
