// Package singlewriter is golden input for the singlewriter analyzer:
// it is not an owner of the guarded types it touches.
package singlewriter

import guarded "bayescrowd/internal/analysis/testdata/src/guarded"

func mutate(ev *guarded.Evaluator, c *guarded.Cache) {
	ev.Cache = nil        // want `write to guarded\.Evaluator\.Cache outside its single-writer owners`
	ev.Dists[3] = nil     // want `write to guarded\.Evaluator\.Dists outside its single-writer owners`
	c.N++                 // want `write to guarded\.Cache\.N outside its single-writer owners`
	c.Invalidate(1, 2)    // want `call to mutating method guarded\.Cache\.Invalidate outside its single-writer owners`
	ev.Cache.Invalidate() // want `call to mutating method guarded\.Cache\.Invalidate outside its single-writer owners`
}

func read(ev *guarded.Evaluator) int {
	if ev.Cache != nil { // ok: reads are unrestricted
		return len(ev.Dists)
	}
	return 0
}
