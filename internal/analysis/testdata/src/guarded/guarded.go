// Package guarded supplies the shared types the singlewriter and
// errdrop golden packages exercise: it plays the role internal/prob and
// internal/crowd play in the real module, and it is configured as the
// single-writer owner, so its own mutations are never flagged.
package guarded

// Cache is a configured guarded type; Invalidate is its configured
// mutating method.
type Cache struct {
	N int
}

func (c *Cache) Invalidate(vars ...int) { c.N += len(vars) }

// Evaluator is a configured guarded type.
type Evaluator struct {
	Cache *Cache
	Dists map[int][]float64
}

// Reset mutates from inside the owner package: legal.
func (ev *Evaluator) Reset() {
	ev.Cache = &Cache{}
	ev.Cache.Invalidate(1)
}

// Platform is the configured must-check interface: Post returns valid
// partial results alongside its error.
type Platform interface {
	Post(tasks []int) ([]int, error)
}

// Sim implements Platform, so its Post inherits the must-check rule.
type Sim struct{}

func (Sim) Post(tasks []int) ([]int, error) { return tasks, nil }
