// Package hotalloc is golden input for the hot-path map-allocation
// analyzer. The configured root is Scanner.Score; everything it reaches
// over the call graph — direct calls, closures, method values, and
// pool-submitted thunks — is hot, the rest of the package is not.
package hotalloc

import pool "bayescrowd/internal/analysis/testdata/src/pool"

// Scanner is the stand-in for the evaluator whose entry points the
// selection loop calls per candidate.
type Scanner struct {
	scratch map[string]int
}

// Score is the configured hot-loop root.
func (s *Scanner) Score(keys []string) int {
	m := make(map[string]int, len(keys)) // want `per-call map allocation in Score`
	for _, k := range keys {
		m[k]++
	}
	s.sweep(keys)
	return s.solve(keys) + s.indirect(keys) + len(m)
}

// sweep fans out over the pool: the submitted thunk allocates once per
// index, the hottest placement of all, and is reached through the
// thunk edge.
func (s *Scanner) sweep(keys []string) {
	pool.For(2, len(keys), func(w, i int) {
		m := make(map[string]int) // want `per-call map allocation in function literal in sweep`
		m[keys[i]]++
	})
}

// indirect reaches alloc through a method value bound to a variable.
func (s *Scanner) indirect(keys []string) int {
	f := s.alloc
	return f(keys)
}

// alloc is only reachable through the binding above; the closure edge
// still puts it in the hot region.
func (s *Scanner) alloc(keys []string) int {
	seen := map[string]bool{} // want `per-call map literal in alloc`
	for _, k := range keys {
		seen[k] = true
	}
	return len(seen)
}

// solve is reachable from the root through a direct call.
func (s *Scanner) solve(keys []string) int {
	seen := map[string]bool{} // want `per-call map literal in solve`
	for _, k := range keys {
		seen[k] = true
	}
	return s.leaf(len(seen))
}

// leaf is reachable transitively; the directive documents a deliberate
// allocation and suppresses the finding.
func (s *Scanner) leaf(n int) int {
	//lint:ignore hotalloc result handed to the caller, who owns and keeps it
	out := map[int]bool{n: true}
	return len(out)
}

// Reuse allocates into long-lived scratch outside the hot path: not
// reachable from the root, so not flagged.
func (s *Scanner) Reuse() {
	s.scratch = make(map[string]int)
}

// cold is never called from the root; its allocation is fine.
func cold(keys []string) map[string]int {
	m := make(map[string]int)
	for _, k := range keys {
		m[k] = len(k)
	}
	return m
}

var _ = cold
