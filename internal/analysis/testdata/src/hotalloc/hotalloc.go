// Package hotalloc is golden input for the hot-path map-allocation
// analyzer. The configured root is Scanner.Score; everything it reaches
// by direct calls is hot, the rest of the package is not.
package hotalloc

// Scanner is the stand-in for the evaluator whose entry points the
// selection loop calls per candidate.
type Scanner struct {
	scratch map[string]int
}

// Score is the configured hot-loop root.
func (s *Scanner) Score(keys []string) int {
	m := make(map[string]int, len(keys)) // want `per-call map allocation in Score`
	for _, k := range keys {
		m[k]++
	}
	return s.solve(keys) + len(m)
}

// solve is reachable from the root through a direct call.
func (s *Scanner) solve(keys []string) int {
	seen := map[string]bool{} // want `per-call map literal in solve`
	for _, k := range keys {
		seen[k] = true
	}
	return s.leaf(len(seen))
}

// leaf is reachable transitively; the directive documents a deliberate
// allocation and suppresses the finding.
func (s *Scanner) leaf(n int) int {
	//lint:ignore hotalloc result handed to the caller, who owns and keeps it
	out := map[int]bool{n: true}
	return len(out)
}

// Reuse allocates into long-lived scratch outside the hot path: not
// reachable from the root, so not flagged.
func (s *Scanner) Reuse() {
	s.scratch = make(map[string]int)
}

// cold is never called from the root; its allocation is fine.
func cold(keys []string) map[string]int {
	m := make(map[string]int)
	for _, k := range keys {
		m[k] = len(k)
	}
	return m
}

var _ = cold
