// Package ledger is golden input for the ledger-conservation analyzer:
// counter mutations are legal only inside the accounting helpers
// (methods on the ledger types) and the configured root call trees.
package ledger

// Ledger is a configured conservation type.
type Ledger struct {
	Posted  int
	Charged int
}

// add is the accounting helper: mutation inside a ledger-type method is
// always legal.
func (l *Ledger) add(d Ledger) {
	l.Posted += d.Posted
	l.Charged += d.Charged
}

// Stats is the second configured conservation type.
type Stats struct {
	Rounds int
}

// record is its accounting helper.
func (s *Stats) record(n int) { s.Rounds += n }

// Engine owns the accounting; Tick is the configured root.
type Engine struct {
	led   Ledger
	stats Stats
}

// Tick mutates directly, through a helper in its call tree, and through
// a nested literal: all legal.
func (e *Engine) Tick() {
	e.led.Posted++
	e.step()
	func() {
		e.led.Charged++
	}()
}

// step is reachable from the root, so its mutations are in the tree.
func (e *Engine) step() {
	e.led.add(Ledger{Posted: 1, Charged: 1})
	e.stats.record(1)
}

// Rogue mutates from outside the accounting tree: every site is a
// finding.
func Rogue(l *Ledger, s *Stats) {
	l.Posted++        // want `write to ledger counter Ledger\.Posted outside the accounting call trees`
	l.add(Ledger{})   // want `accounting helper Ledger\.add called outside the accounting call trees`
	s.Rounds = 7      // want `write to ledger counter Stats\.Rounds outside the accounting call trees`
	s.record(2)       // want `accounting helper Stats\.record called outside the accounting call trees`
	n := l.Posted + 1 // clean: reads are unrestricted
	_ = n
}

// Snapshot reads only: value receiver, no mutation, clean anywhere.
func (l Ledger) Snapshot() Ledger { return l }
