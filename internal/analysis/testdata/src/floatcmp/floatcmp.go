// Package floatcmp is golden input for the float-comparison analyzer.
package floatcmp

func bad(a, b float64) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	return a != b // want `floating-point != comparison`
}

func sentinels(p float64) bool {
	if p == 0 { // ok: exact zero sentinel
		return false
	}
	return p == 1 // ok: exact one sentinel
}

func halfCmp(p float64) bool {
	return p == 0.5 // want `floating-point == comparison`
}

func approxEqual(a, b float64) bool {
	return a == b // ok: inside an approved epsilon helper
}

func ints(a, b int) bool {
	return a == b // ok: integers compare exactly
}

func narrow(x, y float32) bool {
	return x == y // want `floating-point == comparison`
}
