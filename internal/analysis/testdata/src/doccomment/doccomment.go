// Package doccomment is golden input for the doc-comment analyzer.
package doccomment

// Documented carries a doc comment and is clean.
type Documented struct{}

type Bare struct{} // want `exported type Bare has no doc comment`

type (
	Grouped int // want `exported type Grouped has no doc comment`

	// Specced has its own spec doc and is clean.
	Specced int

	documented int
)

// Kinds groups the constants below; the group doc covers every spec.
const (
	KindA = "a"
	KindB = "b"
)

const Loose = 3 // want `exported Loose has no doc comment`

var (
	Exported   int // want `exported Exported has no doc comment`
	unexported int
)

// Run is documented and clean.
func Run() {}

func Orphan() {} // want `exported function Orphan has no doc comment`

func helper() {}

// Method is documented and clean.
func (Documented) Method() {}

func (*Documented) Undoc() {} // want `exported method Documented.Undoc has no doc comment`

func (Documented) private() {}

func (Bare) OnBare() {} // want `exported method Bare.OnBare has no doc comment`

type hidden struct{}

// Exported methods on unexported receiver types are internal detail and
// stay clean even without a doc comment.
func (hidden) Visible() {}

func Suppressed() {} //lint:ignore doccomment the suppression machinery must cover this analyzer too
