// Package pool stands in for internal/parallel in the goroutine golden
// config; the tests only need its fan-out signature.
package pool

// For runs f sequentially as worker 0.
func For(workers, n int, f func(worker, i int)) {
	for i := 0; i < n; i++ {
		f(0, i)
	}
}
