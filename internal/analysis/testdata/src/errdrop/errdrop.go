// Package errdrop is golden input for the errdrop analyzer.
package errdrop

import (
	"errors"
	"fmt"
	"strings"

	guarded "bayescrowd/internal/analysis/testdata/src/guarded"
)

func work() error { return errors.New("boom") }

func drops() {
	work()            // want `result of errdrop\.work contains an error that is silently discarded`
	_ = work()        // ok: explicit discard of an ordinary error
	fmt.Println("hi") // ok: the print family is exempt
	var b strings.Builder
	b.WriteString("x") // ok: Builder writes are documented to never fail
	_ = b.String()
}

type closer struct{}

func (closer) Close() error { return nil }

func deferred() {
	var c closer
	defer c.Close() // ok: deferred closes follow the read-path idiom
}

func mustCheck(p guarded.Platform, s guarded.Sim) {
	p.Post(nil)                // want `error from must-check Platform\.Post discarded`
	s.Post(nil)                // want `error from must-check Platform\.Post discarded`
	res, _ := s.Post([]int{1}) // want `error from must-check Platform\.Post blanked with _`
	_ = res
	if got, err := p.Post(nil); err == nil { // ok: the error is inspected
		_ = got
	}
}
