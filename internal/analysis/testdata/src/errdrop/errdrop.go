// Package errdrop is golden input for the errdrop analyzer.
package errdrop

import (
	"errors"
	"fmt"
	"strings"

	guarded "bayescrowd/internal/analysis/testdata/src/guarded"
	pool "bayescrowd/internal/analysis/testdata/src/pool"
)

func work() error { return errors.New("boom") }

func drops() {
	work()            // want `result of errdrop\.work contains an error that is silently discarded`
	_ = work()        // ok: explicit discard of an ordinary error
	fmt.Println("hi") // ok: the print family is exempt
	var b strings.Builder
	b.WriteString("x") // ok: Builder writes are documented to never fail
	_ = b.String()
}

type closer struct{}

func (closer) Close() error { return nil }

func deferred() {
	var c closer
	defer c.Close() // ok: deferred closes follow the read-path idiom
}

func mustCheck(p guarded.Platform, s guarded.Sim) {
	p.Post(nil)                // want `error from must-check Platform\.Post discarded`
	s.Post(nil)                // want `error from must-check Platform\.Post discarded`
	res, _ := s.Post([]int{1}) // want `error from must-check Platform\.Post blanked with _`
	_ = res
	if got, err := p.Post(nil); err == nil { // ok: the error is inspected
		_ = got
	}
}

// postOnce wraps the must-check call and forwards its error: the
// wrapper fixpoint makes it must-check too.
func postOnce(p guarded.Platform) error {
	res, err := p.Post([]int{1})
	_ = res
	return err
}

// rewrap forwards the error through fmt.Errorf and a named result,
// still a wrapper.
func rewrap(p guarded.Platform) (err error) {
	_, e := p.Post(nil)
	if e != nil {
		err = fmt.Errorf("posting: %w", e)
	}
	return
}

func viaWrapper(p guarded.Platform, s guarded.Sim) {
	_ = postOnce(p)                     // want `error from must-check Platform\.Post blanked with _ \(call resolves to postOnce through the call graph\)`
	_ = rewrap(p)                       // want `error from must-check Platform\.Post blanked with _ \(call resolves to rewrap through the call graph\)`
	if err := postOnce(p); err != nil { // ok: inspected
		return
	}
	post := s.Post // method value: the call below resolves through the binding
	if _, err := post(nil); err != nil {
		return
	}
	res, _ := post([]int{2}) // want `error from must-check Platform\.Post blanked with _ \(call resolves to Post through the call graph\)`
	_ = res
}

// inPool drops the error inside a pool-submitted thunk: the literal's
// body is ordinary code, so the tier-1 rule still fires there.
func inPool(p guarded.Platform) {
	pool.For(1, 1, func(w, i int) {
		p.Post(nil) // want `error from must-check Platform\.Post discarded`
	})
}
