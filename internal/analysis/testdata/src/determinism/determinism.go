// Package determinism is golden input for the determinism analyzer; the
// test config lists it as a deterministic package. `// want` comments
// carry the expected diagnostics.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func clocks() {
	_ = time.Now()               // want `call to time\.Now in deterministic package determinism`
	time.Sleep(time.Millisecond) // want `call to time\.Sleep in deterministic package determinism`
	_ = time.Since(time.Time{})  // ok: a duration from an explicit instant is not a clock read
}

func globalRand() int {
	return rand.Intn(5) // want `call to global math/rand Intn in deterministic package determinism`
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: explicit, reproducible seed
}

func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `call to time\.Now in deterministic package determinism` `rand seed derived from time\.Now`
}

func gatherNoSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `slice keys is gathered in nondeterministic map-iteration order and never sorted`
	}
	return keys
}

func gatherTotalSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // ok: a total-order sort follows
	}
	sort.Ints(keys)
	return keys
}

func gatherComparatorSort(m map[int]string) []string {
	var vals []string
	for _, v := range m {
		vals = append(vals, v) // want `slice vals is gathered in map-iteration order and sorted with sort\.Slice`
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func printInLoop(m map[int]string) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration writes output in nondeterministic map order`
	}
}

func countOnly(m map[int]string) int {
	n := 0
	for range m {
		n++ // ok: a count is order-independent
	}
	return n
}
