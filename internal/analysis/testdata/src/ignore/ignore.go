// Package ignore is golden input for the //lint:ignore directive
// machinery; the test config lists it as a deterministic package so
// time.Now trips the determinism analyzer.
package ignore

import "time"

func suppressedAbove() {
	//lint:ignore determinism golden test pins the line-above suppression path
	_ = time.Now() // ok: suppressed by the directive above
}

func suppressedTrailing() {
	_ = time.Now() //lint:ignore determinism golden test pins the same-line suppression path
}

//lint:ignore determinism nothing below trips this analyzer // want `unused lint:ignore directive`
func unusedDirective() {}

//lint:ignore nosuchanalyzer bogus suppression target // want `malformed lint:ignore directive: unknown analyzer "nosuchanalyzer"`
func unknownAnalyzer() {}
