// Package goroutine is golden input for the goroutine-hygiene analyzer;
// the test config points PoolPkg at the sibling pool package.
package goroutine

import (
	"sync"

	pool "bayescrowd/internal/analysis/testdata/src/pool"
)

// Solver matches the configured scratch-type pattern.
type Solver struct{ buf []int }

func (s *Solver) Use(i int) { s.buf = append(s.buf, i) }

func naked() {
	var wg sync.WaitGroup
	go func() { // want `naked go statement outside the worker pool`
		wg.Add(1) // want `wg\.Add inside the spawned goroutine`
		defer wg.Done()
	}()
	wg.Wait()
}

func sharedScratch(s *Solver) {
	pool.For(2, 10, func(w, i int) {
		s.Use(i) // want `captures shared scratch "s" \(type Solver\)`
	})
}

func perWorkerScratch(scratch []*Solver) {
	pool.For(2, 10, func(w, i int) {
		scratch[w].Use(i) // ok: per-worker scratch handed out by worker index
	})
}
