// Package lockcopy is golden input for the lock-copy analyzer: values
// containing a mutex must move by pointer, because a copied mutex forks
// the lock state.
package lockcopy

import "sync"

// Box holds a mutex by value.
type Box struct {
	Mu sync.Mutex
	N  int
}

// Inc uses a pointer receiver: clean.
func (b *Box) Inc() {
	b.Mu.Lock()
	b.N++
	b.Mu.Unlock()
}

// Read copies the box into the receiver on every call.
func (b Box) Read() int { // want `receiver of type Box is passed by value but contains a mutex`
	return b.N
}

func value(b Box) int { // want `parameter of type Box is passed by value but contains a mutex`
	return b.N
}

func produce() Box { // want `result of type Box is passed by value but contains a mutex`
	return Box{}
}

func copyOut(p *Box) int {
	cp := *p // want `copying a value of type Box forks the mutex it contains`
	return cp.N
}

func rangeCopy(boxes []Box) int {
	total := 0
	for _, b := range boxes { // want `ranging by value over elements of type Box copies the mutex`
		total += b.N
	}
	for i := range boxes { // clean: indexing addresses the element in place
		total += boxes[i].N
	}
	return total
}

// Nested embeds the mutex two levels down; containment still holds.
type Nested struct {
	inner Box
}

func nestedCopy(n *Nested) int {
	cp := *n // want `copying a value of type Nested forks the mutex it contains`
	return cp.inner.N
}

// Handle keeps the mutex behind a pointer: copying the handle shares
// the lock instead of forking it, so everything here is clean.
type Handle struct {
	mu *sync.Mutex
	n  int
}

func handleCopy(h Handle) Handle {
	cp := h
	return cp
}

var (
	_ = value
	_ = produce
	_ = copyOut
	_ = rangeCopy
	_ = nestedCopy
	_ = handleCopy
)
