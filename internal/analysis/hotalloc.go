package analysis

import (
	"go/ast"
	"go/types"
)

// HotAllocAnalyzer guards the Pr(φ) kernel's allocation discipline: the
// compiled clause-state engine got its speedup over the seed by hoisting
// every per-call map into solver scratch reused across evaluations, and
// a map allocated inside the hot loop quietly gives that back (interning
// maps alone were worth tens of percent). The analyzer flags every
// `make(map...)` and map composite literal in functions reachable from
// the configured hot-path roots over the interprocedural call graph —
// including closures defined in hot functions, method values handed
// around, and thunks submitted to the worker pool (a map allocated
// inside a parallel.For body allocates once per index, the hottest
// placement of all). Reachability stays confined to the root's own
// package: the hot loop is self-contained by design, and cross-package
// callees (obs counters, stdlib) own their allocation policy.
//
// Deliberate allocations stay, visibly: the seed-replica interning map
// (the LegacyEngine baseline must allocate the way the seed did), the
// marginal-sweep result sets (the caller owns them), and per-scan —
// not per-probe — setup each carry a //lint:ignore hotalloc with the
// reason, so every exception is a reviewed decision rather than drift.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag per-call map allocations in functions reachable from the Pr(phi) hot-loop roots",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	f := pass.Facts
	if f == nil || len(f.hotRoots) == 0 {
		return
	}
	info := pass.Pkg.Info

	reached := f.graph.reachableFrom(f.hotRoots, pass.Pkg)
	for fn, root := range reached {
		if fn.Pkg != pass.Pkg {
			continue
		}
		forEachOwnNode(fn.Body, func(n ast.Node) {
			switch expr := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(expr.Fun).(*ast.Ident); ok && id.Name == "make" &&
					info.Uses[id] == types.Universe.Lookup("make") && isMapType(info.TypeOf(expr)) {
					pass.Reportf(expr.Pos(),
						"per-call map allocation in %s, reachable from hot-loop root %s: hoist it into solver scratch reused across evaluations",
						fn.Name, root.Name)
				}
			case *ast.CompositeLit:
				if isMapType(info.TypeOf(expr)) {
					pass.Reportf(expr.Pos(),
						"per-call map literal in %s, reachable from hot-loop root %s: hoist it into solver scratch reused across evaluations",
						fn.Name, root.Name)
				}
			}
		})
	}
}

// funcRef renders a function the way Config.HotPathRoots names it:
// "pkgpath.TypeName.Method" for methods (pointer receivers stripped),
// "pkgpath.FuncName" for package-level functions.
func funcRef(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if named := recvNamed(fn); named != nil {
		return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
