package analysis

import (
	"go/ast"
	"go/types"
)

// HotAllocAnalyzer guards the Pr(φ) kernel's allocation discipline: the
// compiled clause-state engine got its speedup over the seed by hoisting
// every per-call map into solver scratch reused across evaluations, and
// a map allocated inside the hot loop quietly gives that back (interning
// maps alone were worth tens of percent). The analyzer computes the set
// of functions statically reachable — direct calls within the package —
// from the configured hot-path roots (the evaluator entry points the
// UBS/HHS selection loop calls per candidate) and flags every
// `make(map...)` and map composite literal inside them.
//
// Deliberate allocations stay, visibly: the seed-replica interning map
// (the LegacyEngine baseline must allocate the way the seed did), the
// marginal-sweep result sets (the caller owns them), and per-scan —
// not per-probe — setup each carry a //lint:ignore hotalloc with the
// reason, so every exception is a reviewed decision rather than drift.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag per-call map allocations in functions reachable from the Pr(phi) hot-loop roots",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	info := pass.Pkg.Info

	// Collect this package's function declarations, keyed by their
	// types.Func, and find which configured roots live here.
	decls := map[*types.Func]*ast.FuncDecl{}
	byRef := map[string]*types.Func{}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			byRef[funcRef(fn)] = fn
		}
	}
	var roots []*types.Func
	for _, ref := range pass.Cfg.HotPathRoots {
		if fn, ok := byRef[ref]; ok {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return
	}

	// Breadth-first reachability over direct static calls, staying inside
	// the package (the hot loop is self-contained; calls through function
	// variables and interfaces are out of this approximation's reach).
	// reached maps each function to the first root that reaches it, for
	// the diagnostic.
	reached := map[*types.Func]*types.Func{}
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		reached[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		if fd == nil {
			continue
		}
		root := reached[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil || reached[callee] != nil {
				return true
			}
			if _, local := decls[callee]; local {
				reached[callee] = root
				queue = append(queue, callee)
			}
			return true
		})
	}

	for fn, root := range reached {
		fd := decls[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch expr := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(expr.Fun).(*ast.Ident); ok && id.Name == "make" &&
					info.Uses[id] == types.Universe.Lookup("make") && isMapType(info.TypeOf(expr)) {
					pass.Reportf(expr.Pos(),
						"per-call map allocation in %s, reachable from hot-loop root %s: hoist it into solver scratch reused across evaluations",
						fn.Name(), root.Name())
				}
			case *ast.CompositeLit:
				if isMapType(info.TypeOf(expr)) {
					pass.Reportf(expr.Pos(),
						"per-call map literal in %s, reachable from hot-loop root %s: hoist it into solver scratch reused across evaluations",
						fn.Name(), root.Name())
				}
			}
			return true
		})
	}
}

// funcRef renders a function the way Config.HotPathRoots names it:
// "pkgpath.TypeName.Method" for methods (pointer receivers stripped),
// "pkgpath.FuncName" for package-level functions.
func funcRef(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if named := recvNamed(fn); named != nil {
		return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
