package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismAnalyzer enforces the repo's reproducibility contract:
// worker-pool runs are bit-identical across worker counts and every
// faulty run replays from its seed. Inside the deterministic packages
// (and every module package they import) wall-clock reads and the
// global, OS-seeded math/rand are forbidden; everywhere in the module,
// rand seeds derived from the clock are forbidden and map iteration
// must not leak its nondeterministic order into slices or output.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock/global-rand in deterministic packages and map-order leaks into outputs",
	Run:  runDeterminism,
}

// seededConstructors are the math/rand entry points that take an
// explicit seed or source and therefore stay reproducible.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	inRestricted := pass.restricted[pass.Pkg.Path]
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			if inRestricted {
				if isPkgFunc(fn, "time", "Now") || isPkgFunc(fn, "time", "Sleep") {
					pass.Reportf(call.Pos(),
						"call to time.%s in deterministic package %s: results must be bit-identical across runs (keep wall-clock out, or justify with lint:ignore)",
						fn.Name(), pass.Pkg.Types.Name())
				}
				if isGlobalRand(fn) {
					pass.Reportf(call.Pos(),
						"call to global math/rand %s in deterministic package %s: the global generator is OS-seeded; thread a seeded *rand.Rand instead",
						fn.Name(), pass.Pkg.Types.Name())
				}
			}
			if fn.Pkg() != nil && (fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") &&
				seededConstructors[fn.Name()] {
				for _, arg := range call.Args {
					if pos, found := findTimeCall(info, arg); found {
						pass.Reportf(pos,
							"rand seed derived from time.Now: runs cannot be reproduced; seed from configuration (a flag or constant) instead")
					}
				}
			}
			return true
		})
		enclosingFuncs(file, func(_ string, body *ast.BlockStmt) {
			checkMapRanges(pass, body)
		})
	}
}

// isGlobalRand reports whether fn is a package-level math/rand function
// using the implicit global generator (everything except the seeded
// constructors and pure helpers like Int63nForTest).
func isGlobalRand(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false // methods on *rand.Rand are caller-seeded
	}
	return !seededConstructors[fn.Name()]
}

// findTimeCall reports the position of a time.Now call anywhere inside
// the expression (e.g. rand.NewSource(time.Now().UnixNano())).
func findTimeCall(info *types.Info, e ast.Expr) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); isPkgFunc(fn, "time", "Now") {
			pos, found = call.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}

// checkMapRanges flags range statements over maps whose body leaks the
// iteration order: printing inside the loop, or appending to a slice
// that is never brought into a provably total order afterwards. Nested
// function literals are handled by their own enclosingFuncs visit.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var ranges []*ast.RangeStmt
	shallowInspect(body, func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok {
			if tv, ok := info.Types[rng.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rng)
				}
			}
		}
		return true
	})
	reported := map[token.Pos]bool{}
	for _, rng := range ranges {
		checkMapRange(pass, body, rng, reported)
	}
}

// checkMapRange reports order leaks of one map range; reported dedups
// sites shared between nested map ranges.
func checkMapRange(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, reported map[token.Pos]bool) {
	info := pass.Pkg.Info
	type appendTarget struct {
		obj  types.Object
		name string
		pos  token.Pos
	}
	var appends []appendTarget
	seen := map[types.Object]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "append") || i >= len(stmt.Lhs) {
					continue
				}
				obj := lhsObject(info, stmt.Lhs[i])
				if obj == nil || seen[obj] {
					continue
				}
				seen[obj] = true
				appends = append(appends, appendTarget{obj: obj, name: obj.Name(), pos: call.Pos()})
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, stmt); isPrintCall(fn) && !reported[stmt.Pos()] {
				reported[stmt.Pos()] = true
				pass.Reportf(stmt.Pos(),
					"map iteration writes output in nondeterministic map order; gather and sort first")
				return false
			}
		}
		return true
	})
	for _, tgt := range appends {
		if reported[tgt.pos] {
			continue
		}
		sortName, ok := subsequentSort(info, body, rng.End(), tgt.obj)
		switch {
		case !ok:
			reported[tgt.pos] = true
			pass.Reportf(tgt.pos,
				"slice %s is gathered in nondeterministic map-iteration order and never sorted afterwards", tgt.name)
		case sortName != "":
			reported[tgt.pos] = true
			pass.Reportf(tgt.pos,
				"slice %s is gathered in map-iteration order and sorted with %s, whose comparator the linter cannot prove total — ties keep map order; use a total-order sort (sort.Ints/Strings/Float64s, slices.Sort) or gather in a deterministic order",
				tgt.name, sortName)
		}
	}
}

// subsequentSort looks for a sort call after pos that mentions obj.
// ok=false means no sort at all; a non-empty name means the sort found
// cannot be proven a total order (comparator-based).
func subsequentSort(info *types.Info, body *ast.BlockStmt, pos token.Pos, obj types.Object) (nonTotal string, ok bool) {
	totalSorts := map[string]bool{
		"sort.Ints": true, "sort.Strings": true, "sort.Float64s": true,
		"slices.Sort": true,
	}
	comparatorSorts := map[string]bool{
		"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
		"slices.SortFunc": true, "slices.SortStableFunc": true,
	}
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		call, okCall := n.(*ast.CallExpr)
		if !okCall || call.Pos() < pos {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		key := fn.Pkg().Name() + "." + fn.Name()
		if !totalSorts[key] && !comparatorSorts[key] {
			return true
		}
		if !mentionsObject(info, call, obj) {
			return true
		}
		if totalSorts[key] {
			found, ok = "", true
			return false
		}
		if !ok {
			found, ok = key, true
		}
		return true
	})
	return found, ok
}

// mentionsObject reports whether any identifier in the call's arguments
// resolves to obj.
func mentionsObject(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, arg := range call.Args {
		hit := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				hit = true
				return false
			}
			return true
		})
		if hit {
			return true
		}
	}
	return false
}

// lhsObject resolves the variable an assignment writes (identifier or
// field selector).
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	switch lhs := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[lhs]; obj != nil {
			return obj
		}
		return info.Defs[lhs]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[lhs]; ok {
			return sel.Obj()
		}
		return info.Uses[lhs.Sel]
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// isPrintCall reports whether fn writes program output (the fmt print
// family, io.WriteString, or the print/println builtins are handled by
// the caller via isBuiltin — builtins have no *types.Func).
func isPrintCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	case "io":
		return fn.Name() == "WriteString"
	}
	return false
}

// shallowInspect walks the node without descending into nested function
// literals (their bodies are separate analysis scopes).
func shallowInspect(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != root {
			return false
		}
		return fn(n)
	})
}
