package analysis

import (
	"regexp"
	"strings"
)

// Config names the project-specific contracts the analyzers enforce.
// Every entry refers to packages and types by import path so the same
// analyzers can be pointed at the golden-file testdata packages.
type Config struct {
	// ModulePath is the module being linted (from go.mod).
	ModulePath string

	// DeterminismPkgs are the import paths whose code must be
	// reproducible bit-for-bit: wall-clock reads and global math/rand
	// are forbidden in them and in every module package they import.
	DeterminismPkgs []string

	// SingleWriterOwners are the packages allowed to mutate the guarded
	// types (field writes, element stores, mutating methods).
	SingleWriterOwners []string
	// GuardedTypes are "pkgpath.TypeName" references whose mutation is
	// single-writer-only.
	GuardedTypes []string
	// MutatingMethods are "pkgpath.TypeName.Method" references that
	// mutate a guarded type and therefore may only be called by owners.
	MutatingMethods []string

	// MustCheck are "pkgpath.TypeName.Method" references whose error
	// result must be handled explicitly — discarding it via the blank
	// identifier is flagged too, because these calls return valid
	// partial results alongside errors. Interface references cover every
	// implementation (matched via types.Implements).
	MustCheck []string

	// PoolPkg is the worker-pool package: the only place naked go
	// statements are allowed, and whose fan-out functions have their
	// closure arguments checked for captured scratch.
	PoolPkg string

	// ScratchTypePattern matches named types that are per-call solver
	// scratch; a pool closure capturing a value of such a type (rather
	// than receiving per-worker scratch via the worker index) is flagged.
	ScratchTypePattern *regexp.Regexp

	// EpsilonHelperPattern matches function names inside which exact
	// float comparison is the point (approximate-equality helpers).
	EpsilonHelperPattern *regexp.Regexp

	// HotPathRoots are "pkgpath.TypeName.Method" (or "pkgpath.Func")
	// references naming the Pr(φ) hot-loop entry points; every map
	// allocation in a function statically reachable from them within
	// their package is flagged by the hotalloc analyzer.
	HotPathRoots []string

	// DocPkgs are import-path prefixes whose exported declarations must
	// carry doc comments (the doccomment analyzer's scope). The module
	// path itself makes the whole repo in scope.
	DocPkgs []string

	// LedgerTypes are "pkgpath.TypeName" references to the crowd
	// accounting structures whose counters must stay conserved; the
	// ledger analyzer restricts their mutation sites.
	LedgerTypes []string
	// LedgerRoots are "pkgpath.TypeName.Method" (or "pkgpath.Func")
	// references naming the accounting entry points; ledger mutations
	// are legal only in their interprocedural call trees and in methods
	// declared on the ledger types themselves.
	LedgerRoots []string
}

// RepoConfig is the bayescrowd contract set: the invariants PRs 1-3
// introduced, in machine-checkable form (see DESIGN.md "Enforced
// invariants" for the mapping).
func RepoConfig(modulePath string) *Config {
	p := func(rel string) string { return modulePath + "/" + rel }
	return &Config{
		ModulePath: modulePath,
		DeterminismPkgs: []string{
			p("internal/core"),
			p("internal/prob"),
			p("internal/ctable"),
			p("internal/crowd"),
			p("internal/parallel"),
			p("internal/stream"),
		},
		SingleWriterOwners: []string{
			p("internal/core"),
			p("internal/prob"),
			p("internal/ctable"),
			p("internal/stream"),
		},
		GuardedTypes: []string{
			p("internal/prob") + ".Evaluator",
			p("internal/prob") + ".ComponentCache",
			p("internal/ctable") + ".DynCTable",
			// Knowledge is mutated only between fan-outs (Absorb after a
			// crowd round, Forget on eviction); it has no mutex by design,
			// so the single-writer gate is its whole concurrency story.
			p("internal/ctable") + ".Knowledge",
		},
		MutatingMethods: []string{
			p("internal/prob") + ".ComponentCache.Invalidate",
			p("internal/ctable") + ".Knowledge.Absorb",
			p("internal/ctable") + ".Knowledge.Forget",
		},
		MustCheck: []string{
			p("internal/crowd") + ".Platform.Post",
			p("internal/crowd") + ".AsyncPlatform.PostAsync",
			p("internal/ctable") + ".Knowledge.Absorb",
		},
		PoolPkg:              p("internal/parallel"),
		ScratchTypePattern:   regexp.MustCompile(`(?i)(solver|scratch)`),
		EpsilonHelperPattern: regexp.MustCompile(`(?i)(approx|almost|close|within|eps)`),
		HotPathRoots: []string{
			p("internal/prob") + ".Evaluator.Prob",
			p("internal/prob") + ".Evaluator.ExprProb",
			p("internal/prob") + ".Evaluator.CondProbsWith",
			p("internal/prob") + ".CondScan.CondProbs",
			p("internal/prob") + ".CondScan.PlanSweeps",
			p("internal/ctable") + ".DynCTable.Insert",
			p("internal/ctable") + ".DynCTable.Evict",
			p("internal/ctable") + ".DynCTable.Cond",
			p("internal/stream") + ".CrowdEngine.Tick",
		},
		DocPkgs: []string{modulePath},
		LedgerTypes: []string{
			p("internal/stream") + ".CrowdLedger",
			p("internal/crowd") + ".Stats",
			p("internal/service") + ".Ledger",
		},
		LedgerRoots: []string{
			p("internal/stream") + ".CrowdEngine.Tick",
			p("internal/core") + ".crowdPhase",
			// The service hub's settlement paths are the only legal
			// mutation sites of the per-query crowd-cost ledgers; every
			// reserve/charge/refund happens inside these call trees, which
			// is what keeps Ledger.Conserved a theorem rather than a hope.
			p("internal/service") + ".hub.register",
			p("internal/service") + ".hub.resolve",
			p("internal/service") + ".hub.expireOverdue",
			p("internal/service") + ".hub.drain",
		},
	}
}

// splitTypeRef splits "pkgpath.TypeName" into its package path and type
// name (the last dot separates them; package paths may contain dots in
// their host part but never after the final slash).
func splitTypeRef(ref string) (pkgPath, name string) {
	i := strings.LastIndex(ref, ".")
	if i < 0 {
		return "", ref
	}
	return ref[:i], ref[i+1:]
}

// splitMethodRef splits "pkgpath.TypeName.Method" into package path,
// type name and method name.
func splitMethodRef(ref string) (pkgPath, typeName, method string) {
	i := strings.LastIndex(ref, ".")
	if i < 0 {
		return "", "", ref
	}
	pkgPath, typeName = splitTypeRef(ref[:i])
	return pkgPath, typeName, ref[i+1:]
}
