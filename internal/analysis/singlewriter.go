package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SingleWriterAnalyzer enforces the Evaluator/ComponentCache mutation
// contract (prob.go, cache.go): distributions are renormalised and the
// cache invalidated only in the single-writer gaps between parallel
// fan-outs, and only by the documented owners — internal/core's crowd
// phase and internal/prob itself. Any other package writing a guarded
// type's fields, storing into its maps, or calling its mutating methods
// is one refactor away from a data race the race detector only catches
// when the schedule cooperates, so the linter catches it always.
var SingleWriterAnalyzer = &Analyzer{
	Name: "singlewriter",
	Doc:  "flag mutation of prob.Evaluator/ComponentCache outside their documented owner packages",
	Run:  runSingleWriter,
}

func runSingleWriter(pass *Pass) {
	for _, owner := range pass.Cfg.SingleWriterOwners {
		if pass.Pkg.Path == owner {
			return // the owner may mutate
		}
	}
	info := pass.Pkg.Info
	owners := strings.Join(trimOwnerNames(pass.Cfg), ", ")
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					checkGuardedWrite(pass, info, lhs, owners)
				}
			case *ast.IncDecStmt:
				checkGuardedWrite(pass, info, stmt.X, owners)
			case *ast.CallExpr:
				checkMutatingCall(pass, info, stmt, owners)
			}
			return true
		})
	}
}

// checkGuardedWrite flags assignments whose target reaches through a
// guarded type: a field write (ev.Cache = …) or a store into a guarded
// type's map/slice field (ev.Dists[v] = …).
func checkGuardedWrite(pass *Pass, info *types.Info, lhs ast.Expr, owners string) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if name, ok := pass.guardedNamed(typeOf(info, e.X)); ok {
				pass.Reportf(lhs.Pos(),
					"write to %s.%s outside its single-writer owners (%s): mutation must happen in the gaps between parallel fan-outs, in the owning package",
					name, e.Sel.Name, owners)
				return
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return
		}
	}
}

// checkMutatingCall flags calls to configured mutating methods of
// guarded types (e.g. ComponentCache.Invalidate) from non-owners.
func checkMutatingCall(pass *Pass, info *types.Info, call *ast.CallExpr, owners string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	ref := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	for _, m := range pass.Cfg.MutatingMethods {
		if m == ref {
			pass.Reportf(call.Pos(),
				"call to mutating method %s.%s.%s outside its single-writer owners (%s): invalidation belongs next to the distribution writes it tracks",
				named.Obj().Pkg().Name(), named.Obj().Name(), fn.Name(), owners)
			return
		}
	}
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// trimOwnerNames shortens owner import paths for messages.
func trimOwnerNames(cfg *Config) []string {
	out := make([]string, len(cfg.SingleWriterOwners))
	for i, o := range cfg.SingleWriterOwners {
		out[i] = strings.TrimPrefix(o, cfg.ModulePath+"/")
	}
	return out
}
