package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked module package.
type Package struct {
	// Path is the import path; Dir the directory it was loaded from.
	Path string
	Dir  string
	// Files are the parsed sources (comments retained for directives).
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects every type-checking error; analyzers only run
	// on error-free packages.
	TypeErrors []error
	// Imports lists the module-internal packages this one imports.
	Imports []*Package
}

// Program is one load of module packages sharing a FileSet and a type
// universe, so type identities compare across packages.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleRoot string
	// Roots are the packages named by the load patterns — the ones
	// analyzers run on. Dependencies are loaded (and type-checked) but
	// not linted.
	Roots []*Package

	byPath       map[string]*Package
	loading      map[string]bool
	std          *exportDataImporter
	includeTests bool
}

// StdlibImportMode reports how standard-library imports were served
// ("export data", "export data + source fallback", or "source"), for
// `bayeslint -v`.
func (p *Program) StdlibImportMode() string { return p.std.Mode() }

// Load parses and type-checks the packages matched by patterns under the
// module rooted at root. Patterns follow the go tool's shape: "./..."
// for every package (testdata and hidden directories excluded), or a
// directory path like "./internal/prob". Directories under testdata can
// be named explicitly (the golden tests do), they are only skipped
// during "..." expansion.
func Load(root string, patterns []string, includeTests bool) (*Program, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{
		Fset:         fset,
		ModulePath:   modPath,
		ModuleRoot:   absRoot,
		byPath:       map[string]*Package{},
		loading:      map[string]bool{},
		std:          newStdImporter(fset, absRoot),
		includeTests: includeTests,
	}

	dirs, err := prog.expandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}
	for _, dir := range dirs {
		pkg, err := prog.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Roots = append(prog.Roots, pkg)
		}
	}
	return prog, nil
}

// modulePath reads the module declaration from go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module declaration in %s/go.mod", root)
}

// expandPatterns resolves load patterns to package directories.
func (p *Program) expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := p.walkPackages()
			if err != nil {
				return nil, err
			}
			for _, d := range all {
				add(d)
			}
		default:
			dir := pat
			if rest, ok := strings.CutPrefix(pat, p.ModulePath); ok {
				dir = "." + rest
			}
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(p.ModuleRoot, dir)
			}
			st, err := os.Stat(dir)
			if err != nil || !st.IsDir() {
				return nil, fmt.Errorf("pattern %q: not a package directory", pat)
			}
			add(dir)
		}
	}
	return dirs, nil
}

// walkPackages finds every directory under the module root holding Go
// sources, skipping testdata, hidden, and underscore-prefixed
// directories (matching the go tool's "..." expansion).
func (p *Program) walkPackages() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(p.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != p.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// WalkDir visits files of one directory contiguously, but guard
	// against duplicates anyway.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// loadDir loads the package in dir (nil if the directory holds no
// eligible Go files).
func (p *Program) loadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(p.ModuleRoot, dir)
	if err != nil {
		return nil, err
	}
	path := p.ModulePath
	if rel != "." {
		path = p.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return p.load(path)
}

// load returns the package for an import path inside the module,
// parsing and type-checking it (and its module dependencies,
// recursively) on first use.
func (p *Program) load(path string) (*Package, error) {
	if pkg, ok := p.byPath[path]; ok {
		return pkg, nil
	}
	if p.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	p.loading[path] = true
	defer delete(p.loading, path)

	dir := p.ModuleRoot
	if rest, ok := strings.CutPrefix(path, p.ModulePath+"/"); ok {
		dir = filepath.Join(p.ModuleRoot, filepath.FromSlash(rest))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("package %s: %w", path, err)
	}

	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !p.includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("package %s: %w", path, err)
		}
		if ignoredByBuildTag(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// External test packages (package foo_test) cannot be type-checked
	// together with the package under test; keep the in-package files.
	base := ""
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			base = f.Name.Name
			break
		}
	}
	if base == "" {
		return nil, nil // external-test-only directory
	}
	inPkg := files[:0]
	for _, f := range files {
		if f.Name.Name == base {
			inPkg = append(inPkg, f)
		}
	}
	files = inPkg

	pkg := &Package{Path: path, Dir: dir, Files: files}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: (*progImporter)(p),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, p.Fset, files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	for _, imp := range tpkg.Imports() {
		if dep, ok := p.byPath[imp.Path()]; ok {
			pkg.Imports = append(pkg.Imports, dep)
		}
	}
	p.byPath[path] = pkg
	return pkg, nil
}

// progImporter adapts Program to types.Importer: module-internal paths
// load recursively, everything else falls through to the compiler's
// source importer (stdlib).
type progImporter Program

func (pi *progImporter) Import(path string) (*types.Package, error) {
	p := (*Program)(pi)
	if path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/") {
		pkg, err := p.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("no Go files in %s", path)
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("package %s has type errors: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return p.std.Import(path)
}

// ignoredByBuildTag reports whether the file opts out of the build via a
// constraint mentioning "ignore" (the go tool's convention for helper
// programs).
func ignoredByBuildTag(f *ast.File) bool {
	for _, g := range f.Comments {
		if g.Pos() > f.Package {
			break
		}
		for _, c := range g.List {
			if strings.HasPrefix(c.Text, "//go:build") && strings.Contains(c.Text, "ignore") {
				return true
			}
		}
	}
	return false
}

// PackageByPath returns a loaded package (nil when absent); analyzers
// use it to resolve contract types from other packages.
func (p *Program) PackageByPath(path string) *Package { return p.byPath[path] }

// LookupType resolves pkgpath.TypeName to its types.Object within the
// program's universe, loading the package on demand so contract types
// resolve even when no root imports them. Returns nil when unknown.
func (p *Program) LookupType(pkgPath, name string) types.Object {
	pkg, ok := p.byPath[pkgPath]
	if !ok && (pkgPath == p.ModulePath || strings.HasPrefix(pkgPath, p.ModulePath+"/")) {
		pkg, _ = p.load(pkgPath)
	}
	if pkg == nil || pkg.Types == nil {
		return nil
	}
	return pkg.Types.Scope().Lookup(name)
}
