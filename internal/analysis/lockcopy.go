package analysis

import (
	"go/ast"
	"go/types"
)

// LockCopyAnalyzer flags copies of values containing sync.Mutex or
// sync.RWMutex (directly or through nested fields and arrays). A copied
// mutex is a fork of the lock state: both copies unlock independently,
// so the discipline lockcheck proves for the original silently stops
// applying to the copy. Flagged shapes:
//
//   - value (non-pointer) receivers on types containing a mutex;
//   - mutex-containing parameter and result types passed by value;
//   - assignments and short declarations whose right-hand side
//     dereferences or re-reads a mutex-containing value (`s := *shard`,
//     `cp := c.shards[i]`);
//   - range over a slice/array of mutex-containing values by value.
//
// Taking a pointer, indexing in place (`&c.shards[i]`), or copying a
// struct whose mutexes are behind pointers are all fine.
var LockCopyAnalyzer = &Analyzer{
	Name: "lockcopy",
	Doc:  "flag copies of mutex-containing values: a copied lock forks the lock state",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				checkFuncSigLocks(pass, info, d.Recv, d.Type)
			case *ast.FuncLit:
				checkFuncSigLocks(pass, info, nil, d.Type)
			case *ast.AssignStmt:
				for _, rhs := range d.Rhs {
					checkValueCopy(pass, info, rhs)
				}
			case *ast.RangeStmt:
				checkRangeCopy(pass, info, d)
			}
			return true
		})
	}
}

// checkFuncSigLocks flags by-value mutex-containing receivers,
// parameters and results in a function signature.
func checkFuncSigLocks(pass *Pass, info *types.Info, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, role string) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			tv, ok := info.Types[fld.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			if containsMutex(tv.Type) {
				pass.Reportf(fld.Type.Pos(),
					"%s of type %s is passed by value but contains a mutex: the copy forks the lock state — use a pointer",
					role, types.TypeString(tv.Type, relativeTo(pass.Pkg)))
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// checkValueCopy flags RHS expressions that copy a mutex-containing
// value out of a dereference, field read, or element read.
func checkValueCopy(pass *Pass, info *types.Info, rhs ast.Expr) {
	e := ast.Unparen(rhs)
	switch e.(type) {
	case *ast.StarExpr, *ast.IndexExpr, *ast.SelectorExpr:
	default:
		return // literals, calls, plain idents: not a re-read copy
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return
	}
	if containsMutex(tv.Type) {
		pass.Reportf(e.Pos(),
			"copying a value of type %s forks the mutex it contains: take its address instead",
			types.TypeString(tv.Type, relativeTo(pass.Pkg)))
	}
}

// checkRangeCopy flags by-value iteration over mutex-containing
// elements.
func checkRangeCopy(pass *Pass, info *types.Info, r *ast.RangeStmt) {
	if r.Value == nil {
		return
	}
	// The `:=` form defines the value ident, so its type lives in Defs,
	// not Types; the `=` form is an ordinary expression.
	var t types.Type
	if tv, ok := info.Types[r.Value]; ok && tv.Type != nil {
		t = tv.Type
	} else if id, ok := r.Value.(*ast.Ident); ok {
		if v, ok := info.Defs[id].(*types.Var); ok {
			t = v.Type()
		}
	}
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if containsMutex(t) {
		pass.Reportf(r.Value.Pos(),
			"ranging by value over elements of type %s copies the mutex each element contains: range over indexes and address the element",
			types.TypeString(t, relativeTo(pass.Pkg)))
	}
}

// containsMutex reports whether the type embeds a sync mutex by value —
// directly, in a struct field, or in an array element. Pointers, maps,
// slices and channels break containment (no copy of the pointee).
func containsMutex(t types.Type) bool {
	return containsMutexRec(t, map[types.Type]bool{})
}

func containsMutexRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if mutexKind(t) != "" {
		// mutexKind strips pointers; re-check that this level is not a
		// pointer (a *sync.Mutex field copies the pointer, not the lock).
		if _, isPtr := t.(*types.Pointer); !isPtr {
			return true
		}
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutexRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutexRec(u.Elem(), seen)
	}
	return false
}

// relativeTo renders type names unqualified inside their own package.
func relativeTo(pkg *Package) types.Qualifier {
	if pkg.Types == nil {
		return nil
	}
	return types.RelativeTo(pkg.Types)
}
