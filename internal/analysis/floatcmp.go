package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer flags == and != between floating-point values.
// Probabilities and entropies accumulate rounding differently along
// different (but mathematically equivalent) evaluation paths, so exact
// equality silently encodes "these two code paths are bit-identical" —
// a claim only the equivalence tests may make. Two escapes remain:
//
//   - comparison against the exact literals 0 and 1 (probability-mass
//     sentinels: distributions store exact zeros for impossible values
//     and decided conditions return exact 0/1), and
//   - approved epsilon helpers (function names matching the configured
//     pattern, e.g. approxEqual), where exact comparison is the point.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= on float64s outside epsilon helpers and exact 0/1 sentinel tests",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Cfg.EpsilonHelperPattern != nil && pass.Cfg.EpsilonHelperPattern.MatchString(fd.Name.Name) {
				continue // the helper is where exact comparison lives
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(info, be.X) || !isFloat(info, be.Y) {
					return true
				}
				if isSentinelConst(info, be.X) || isSentinelConst(info, be.Y) {
					return true
				}
				pass.Reportf(be.OpPos,
					"floating-point %s comparison: rounding makes exact equality fragile for probabilities/entropies; compare through an epsilon helper (or against the exact sentinels 0/1)", be.Op)
				return true
			})
		}
	}
}

// isFloat reports whether the expression's type is a floating-point
// kind (after unwrapping named types).
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isSentinelConst reports whether the expression is a compile-time
// constant exactly equal to 0 or 1 — the probability-mass sentinels.
func isSentinelConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float && v.Kind() != constant.Int {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0 || f == 1
}
