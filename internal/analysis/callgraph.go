package analysis

import (
	"go/ast"
	"go/types"
)

// This file builds bayeslint's whole-module static call graph — the
// substrate the interprocedural analyzers (lockcheck, ledger, and the
// summary-based errdrop/hotalloc upgrades) share. Nodes are function
// bodies: declared functions and methods plus every function literal.
// Edges are resolved with go/types only (no x/tools):
//
//   - static: direct calls of declared functions and methods;
//   - iface: calls through an interface method, resolved to every
//     module-declared type implementing the interface (types.Implements),
//     the way errdrop already resolves must-check implementations;
//   - closure: calls through a variable bound — flow-insensitively, per
//     package — to a function literal, a method value, or a declared
//     function, plus immediately-invoked literals;
//   - thunk: a function value passed as a call argument. The callee may
//     invoke it, so the thunk is treated as called by the submitter.
//     Thunks handed to the worker-pool package, spawned by go statements
//     or run by defer are marked async: they execute outside the
//     submitting frame, so locks held at the submission site are NOT
//     held on entry (the lockcheck fixpoint relies on this).
//
// The approximation is deliberately sound-for-this-repo rather than
// general: function values stored in struct fields or returned from
// factories are not tracked (the goroutine analyzer independently
// guarantees that the only asynchronous execution paths are the pool and
// go statements, so a synchronous-call assumption for other
// higher-order callees is safe).

// edgeKind classifies how a call-graph edge was resolved.
type edgeKind uint8

const (
	edgeStatic edgeKind = iota
	edgeIface
	edgeClosure
	edgeThunk
)

// String names the edge kind for diagnostics and tests.
func (k edgeKind) String() string {
	switch k {
	case edgeStatic:
		return "static"
	case edgeIface:
		return "iface"
	case edgeClosure:
		return "closure"
	case edgeThunk:
		return "thunk"
	}
	return "unknown"
}

// cgNode is one function body in the call graph.
type cgNode struct {
	// Fn is non-nil for declared functions and methods; Lit for
	// function literals. Exactly one is set.
	Fn  *types.Func
	Lit *ast.FuncLit
	// Body is the function's body (never nil; bodyless declarations get
	// no node).
	Body *ast.BlockStmt
	// Pkg is the package the body lives in.
	Pkg *Package
	// Parent is the lexically enclosing node for function literals, nil
	// for declarations.
	Parent *cgNode
	// Name is a display name: the declared name, or "function literal
	// in F" for literals.
	Name string

	Out []*cgEdge
	In  []*cgEdge
}

// cgEdge is one resolved call from Caller to Callee.
type cgEdge struct {
	Caller, Callee *cgNode
	// Site is the call expression the edge was resolved at (for thunk
	// edges, the call the function value was passed to).
	Site *ast.CallExpr
	Kind edgeKind
	// Async marks edges whose callee runs outside the submitting frame:
	// pool submissions, go statements, and deferred calls. Locks held at
	// Site are not held on the callee's entry.
	Async bool
	// held is the lock set the lockcheck walker observed at Site,
	// filled in by computeLockFacts.
	held lockSet
}

// callGraph indexes the nodes and edges of one program load.
type callGraph struct {
	Nodes  []*cgNode
	byFunc map[*types.Func]*cgNode
	byLit  map[*ast.FuncLit]*cgNode
	// bySite indexes a call expression's out-edges, for the walkers.
	bySite map[*ast.CallExpr][]*cgEdge
	// byRef resolves "pkgpath.Type.Method" / "pkgpath.Func" references
	// (the Config root grammar) to nodes.
	byRef map[string]*cgNode
}

// nodeFor returns the graph node of a declared function, nil when the
// function has no body in the loaded roots.
func (g *callGraph) nodeFor(fn *types.Func) *cgNode { return g.byFunc[fn] }

// buildCallGraph constructs the call graph over every root package.
func buildCallGraph(prog *Program, cfg *Config) *callGraph {
	g := &callGraph{
		byFunc: map[*types.Func]*cgNode{},
		byLit:  map[*ast.FuncLit]*cgNode{},
		bySite: map[*ast.CallExpr][]*cgEdge{},
		byRef:  map[string]*cgNode{},
	}
	b := &graphBuilder{g: g, cfg: cfg, bindings: map[*types.Var][]*cgNode{}, implCache: map[*types.Func][]*cgNode{}}

	// Pass 1: nodes for every declaration and literal, plus the
	// flow-insensitive variable→callable bindings.
	for _, pkg := range prog.Roots {
		b.collectNodes(pkg)
	}
	// Candidate types for interface resolution: every named type
	// declared in a root package.
	for _, pkg := range prog.Roots {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					if _, isIface := named.Underlying().(*types.Interface); !isIface {
						b.namedTypes = append(b.namedTypes, named)
					}
				}
			}
		}
	}
	// Pass 2: bindings (assignments of function values to variables).
	for _, pkg := range prog.Roots {
		b.collectBindings(pkg)
	}
	// Pass 3: edges.
	for _, n := range g.Nodes {
		b.addEdges(n)
	}
	return g
}

// graphBuilder carries the intermediate state of one graph build.
type graphBuilder struct {
	g   *callGraph
	cfg *Config
	// bindings maps a variable to the callables assigned to it anywhere
	// in its package (flow-insensitive).
	bindings map[*types.Var][]*cgNode
	// namedTypes are the interface-implementation candidates.
	namedTypes []*types.Named
	// implCache memoizes interface-method resolution.
	implCache map[*types.Func][]*cgNode
}

// collectNodes creates one node per function declaration and literal in
// the package, wiring literals to their lexical parents.
func (b *graphBuilder) collectNodes(pkg *Package) {
	info := pkg.Info
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &cgNode{Fn: fn, Body: fd.Body, Pkg: pkg, Name: fd.Name.Name}
			b.g.Nodes = append(b.g.Nodes, n)
			b.g.byFunc[fn] = n
			b.g.byRef[funcRef(fn)] = n
			b.collectLits(pkg, n, fd.Body)
		}
	}
}

// collectLits creates nodes for every function literal inside body,
// excluding literals nested in deeper literals (they get their own pass
// when their parent node is visited).
func (b *graphBuilder) collectLits(pkg *Package, parent *cgNode, body *ast.BlockStmt) {
	forEachOwnNode(body, func(n ast.Node) {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return
		}
		ln := &cgNode{Lit: lit, Body: lit.Body, Pkg: pkg, Parent: parent, Name: "function literal in " + parent.rootName()}
		b.g.Nodes = append(b.g.Nodes, ln)
		b.g.byLit[lit] = ln
		b.collectLits(pkg, ln, lit.Body)
	})
}

// rootName is the name of the outermost enclosing declaration.
func (n *cgNode) rootName() string {
	for n.Parent != nil {
		n = n.Parent
	}
	return n.Name
}

// forEachOwnNode visits every AST node inside body that belongs to the
// enclosing function itself, without descending into nested function
// literals (their contents belong to their own graph node).
func forEachOwnNode(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			f(lit)
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// collectBindings records, per variable, the function literals, method
// values and declared functions assigned to it.
func (b *graphBuilder) collectBindings(pkg *Package) {
	info := pkg.Info
	record := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj, ok := info.Defs[id].(*types.Var)
		if !ok {
			obj, ok = info.Uses[id].(*types.Var)
		}
		if !ok || obj == nil {
			return
		}
		if n := b.callableNode(info, rhs); n != nil {
			b.bindings[obj] = append(b.bindings[obj], n)
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						record(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						record(st.Names[i], st.Values[i])
					}
				}
			}
			return true
		})
	}
}

// callableNode resolves an expression to the graph node it denotes when
// it is a function literal, a declared function, or a method value.
func (b *graphBuilder) callableNode(info *types.Info, e ast.Expr) *cgNode {
	switch ex := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return b.g.byLit[ex]
	case *ast.Ident:
		if fn, ok := info.Uses[ex].(*types.Func); ok {
			return b.g.byFunc[fn]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[ex]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return b.g.byFunc[fn]
			}
			return nil
		}
		if fn, ok := info.Uses[ex.Sel].(*types.Func); ok {
			return b.g.byFunc[fn]
		}
	}
	return nil
}

// addEdges resolves every call inside one node's body.
func (b *graphBuilder) addEdges(n *cgNode) {
	info := n.Pkg.Info
	// Calls spawned by go statements or run by defer execute outside
	// the frame: their edges are async.
	async := map[*ast.CallExpr]bool{}
	forEachOwnNode(n.Body, func(an ast.Node) {
		switch st := an.(type) {
		case *ast.GoStmt:
			async[st.Call] = true
		case *ast.DeferStmt:
			async[st.Call] = true
		}
	})
	forEachOwnNode(n.Body, func(an ast.Node) {
		call, ok := an.(*ast.CallExpr)
		if !ok {
			return
		}
		b.resolveCall(n, info, call, async[call])
	})
}

// resolveCall adds the edges for one call expression.
func (b *graphBuilder) resolveCall(n *cgNode, info *types.Info, call *ast.CallExpr, async bool) {
	add := func(callee *cgNode, kind edgeKind, isAsync bool) {
		if callee == nil {
			return
		}
		e := &cgEdge{Caller: n, Callee: callee, Site: call, Kind: kind, Async: isAsync}
		n.Out = append(n.Out, e)
		callee.In = append(callee.In, e)
		b.g.bySite[call] = append(b.g.bySite[call], e)
	}

	fun := ast.Unparen(call.Fun)
	fn := calleeFunc(info, call)
	switch {
	case fn != nil:
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				for _, impl := range b.impls(fn) {
					add(impl, edgeIface, async)
				}
				break
			}
		}
		add(b.g.byFunc[fn], edgeStatic, async)
	default:
		if lit, ok := fun.(*ast.FuncLit); ok {
			add(b.g.byLit[lit], edgeClosure, async)
			break
		}
		// Call through a function-typed variable: follow its bindings.
		if id, ok := fun.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				for _, bound := range b.bindings[v] {
					add(bound, edgeClosure, async)
				}
			}
		}
	}

	// Function values passed as arguments: the callee may invoke them.
	// Pool submissions run on worker goroutines, so they are async like
	// go statements; other higher-order callees are assumed synchronous
	// (the goroutine analyzer bans every other async path).
	thunkAsync := async || b.isPoolFunc(fn)
	for _, arg := range call.Args {
		if callee := b.callableNode(info, arg); callee != nil {
			add(callee, edgeThunk, thunkAsync)
			continue
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				for _, bound := range b.bindings[v] {
					add(bound, edgeThunk, thunkAsync)
				}
			}
		}
	}
}

// isPoolFunc reports whether fn belongs to the configured worker-pool
// package.
func (b *graphBuilder) isPoolFunc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == b.cfg.PoolPkg
}

// impls resolves an interface method to the matching method of every
// module-declared type implementing the interface.
func (b *graphBuilder) impls(fn *types.Func) []*cgNode {
	if cached, ok := b.implCache[fn]; ok {
		return cached
	}
	var out []*cgNode
	sig := fn.Type().(*types.Signature)
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface != nil {
		for _, named := range b.namedTypes {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), fn.Name())
			if m, ok := obj.(*types.Func); ok {
				if node := b.g.byFunc[m]; node != nil {
					out = append(out, node)
				}
			}
		}
	}
	b.implCache[fn] = out
	return out
}

// reachableFrom computes the nodes reachable from the given roots over
// every edge kind. When samePkg is non-nil, traversal is confined to
// nodes of that package (hotalloc's per-package hot regions). The
// returned map carries, per reached node, the root that first reached
// it (for diagnostics).
func (g *callGraph) reachableFrom(roots []*cgNode, samePkg *Package) map[*cgNode]*cgNode {
	reached := map[*cgNode]*cgNode{}
	var queue []*cgNode
	for _, r := range roots {
		if samePkg != nil && r.Pkg != samePkg {
			continue
		}
		if reached[r] == nil {
			reached[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			c := e.Callee
			if reached[c] != nil || (samePkg != nil && c.Pkg != samePkg) {
				continue
			}
			reached[c] = reached[n]
			queue = append(queue, c)
		}
	}
	return reached
}
