// Package docscheck gates the repository's documentation in CI. Its
// tests (run by `make docs-check` and the CI docs job) keep the prose
// honest against the code:
//
//   - the README "Repository layout" table names exactly the packages
//     that exist under internal/ and cmd/ — a new package without a
//     table row, or a row for a deleted package, fails;
//   - every relative markdown link in README.md, DESIGN.md,
//     EXPERIMENTS.md, and docs/ resolves to an existing file (external
//     URLs, pure fragments, and repo-escaping badge paths are skipped);
//   - every ```go fenced snippet in those files is gofmt-clean, checked
//     by re-formatting the snippet as a file, a package-prefixed file,
//     or a function-wrapped fragment (snippets that parse under none of
//     those — e.g. mixed import-and-statement elisions — are skipped).
//
// The package itself carries no runtime code; everything lives in the
// test files so the gate costs nothing at build time.
package docscheck
