package docscheck

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"bayescrowd/internal/service"
)

// routeTokenRe matches a backticked route token in docs/SERVICE.md:
// `METHOD /path`. Concrete request examples live in fenced code blocks
// (stripped before scanning), so every inline token is a route claim.
var routeTokenRe = regexp.MustCompile("`(GET|POST|PUT|DELETE|PATCH|HEAD) (/[^`]*)`")

// anyFenceRe matches every fenced code block, whatever the language —
// unlike fenceRe, which captures only ```go snippets for the gofmt
// gate.
var anyFenceRe = regexp.MustCompile("(?s)```.*?```")

// TestServiceDocRoutes cross-checks docs/SERVICE.md against
// service.Routes(), the single source of truth the daemon's mux is
// built from: every served route must be documented as a backticked
// `METHOD /path` token, and every such token in the document must name
// a served route. A route cannot be added, renamed or removed without
// the API reference changing in the same commit.
func TestServiceDocRoutes(t *testing.T) {
	root := repoRoot(t)
	data, err := os.ReadFile(filepath.Join(root, "docs", "SERVICE.md"))
	if err != nil {
		t.Fatalf("docs/SERVICE.md must exist and document the service API: %v", err)
	}
	text := anyFenceRe.ReplaceAllString(string(data), "")

	documented := map[string]bool{}
	for _, m := range routeTokenRe.FindAllStringSubmatch(text, -1) {
		documented[m[1]+" "+m[2]] = true
	}

	served := map[string]bool{}
	for _, r := range service.Routes() {
		served[r.Method+" "+r.Pattern] = true
	}

	var missing, stale []string
	for route := range served {
		if !documented[route] {
			missing = append(missing, route)
		}
	}
	for route := range documented {
		if !served[route] {
			stale = append(stale, route)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("routes served but not documented in docs/SERVICE.md:\n  %s",
			strings.Join(missing, "\n  "))
	}
	if len(stale) > 0 {
		t.Errorf("routes documented in docs/SERVICE.md but not served (renamed or removed?):\n  %s",
			strings.Join(stale, "\n  "))
	}
}
