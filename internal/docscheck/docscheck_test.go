package docscheck

import (
	"bytes"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// docFiles are the markdown files the link and snippet gates cover,
// relative to the module root. docs/ is globbed in addition.
var docFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"}

func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// markdownFiles returns the covered files that exist, plus every
// markdown file under docs/.
func markdownFiles(t *testing.T, root string) []string {
	t.Helper()
	var files []string
	for _, f := range docFiles {
		p := filepath.Join(root, f)
		if _, err := os.Stat(p); err == nil {
			files = append(files, p)
		}
	}
	more, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, more...)
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	return files
}

// layoutRowRe matches the first cell of a "Repository layout" table row:
// a backquoted path at the start of a table line.
var layoutRowRe = regexp.MustCompile("^\\| `([^`]+)` \\|")

// TestReadmeLayoutTable cross-checks the README "Repository layout"
// table against the filesystem: every package directory under internal/
// and cmd/ must have a row, and every internal/cmd row must name an
// existing directory.
func TestReadmeLayoutTable(t *testing.T) {
	root := repoRoot(t)
	readme, err := os.ReadFile(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatal(err)
	}

	inTable := false
	rows := map[string]bool{}
	for _, line := range strings.Split(string(readme), "\n") {
		if strings.HasPrefix(line, "## ") {
			inTable = strings.Contains(line, "Repository layout")
			continue
		}
		if !inTable {
			continue
		}
		if m := layoutRowRe.FindStringSubmatch(line); m != nil {
			rows[strings.TrimSuffix(m[1], "/")] = true
		}
	}
	if len(rows) == 0 {
		t.Fatal("no rows parsed from the README Repository layout table")
	}

	for _, parent := range []string{"internal", "cmd"} {
		entries, err := os.ReadDir(filepath.Join(root, parent))
		if err != nil {
			t.Fatal(err)
		}
		onDisk := map[string]bool{}
		for _, e := range entries {
			if e.IsDir() {
				onDisk[parent+"/"+e.Name()] = true
			}
		}
		for name := range onDisk {
			if !rows[name] {
				t.Errorf("package %s exists but has no row in the README Repository layout table", name)
			}
		}
		var stale []string
		for row := range rows {
			if strings.HasPrefix(row, parent+"/") && !onDisk[row] {
				stale = append(stale, row)
			}
		}
		sort.Strings(stale)
		for _, row := range stale {
			t.Errorf("README Repository layout row %q names a package that does not exist", row)
		}
	}
}

// linkRe matches inline markdown links [text](target); images reuse the
// same tail so they are covered too.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks verifies every relative link in the covered
// markdown files points at an existing file or directory. External
// URLs, pure fragments, and paths that escape the repository (GitHub
// badge URLs are relative to the repo page, not the tree) are skipped.
func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	for _, file := range markdownFiles(t, root) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := filepath.Rel(root, file)
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if rp, err := filepath.Rel(root, resolved); err != nil || strings.HasPrefix(rp, "..") {
				continue // escapes the repo: a page-relative GitHub path
			}
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%v)", rel, m[1], err)
			}
		}
	}
}

// fenceRe captures ```go fenced code blocks.
var fenceRe = regexp.MustCompile("(?s)```go\n(.*?)```")

// TestGoSnippetsGofmt re-formats every ```go snippet in the covered
// markdown files and requires the bytes to come back unchanged. A
// snippet is tried as a complete file, as a package-prefixed file, and
// as a tab-indented function body; snippets that parse under none of
// those shapes (elided fragments mixing imports and statements) are
// skipped rather than guessed at.
func TestGoSnippetsGofmt(t *testing.T) {
	root := repoRoot(t)
	for _, file := range markdownFiles(t, root) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := filepath.Rel(root, file)
		for i, m := range fenceRe.FindAllStringSubmatch(string(data), -1) {
			snippet := m[1]
			if ok, diff := snippetFormatted(snippet); !ok {
				if diff == "" {
					t.Logf("%s: go snippet %d does not parse standalone; skipped", rel, i+1)
					continue
				}
				t.Errorf("%s: go snippet %d is not gofmt-clean:\n%s", rel, i+1, diff)
			}
		}
	}
}

// snippetFormatted reports whether the snippet survives gofmt
// unchanged under one of the three candidate framings. ok=false with
// an empty diff means no framing parsed.
func snippetFormatted(snippet string) (ok bool, diff string) {
	candidates := []string{
		snippet,
		"package p\n\n" + snippet,
		wrapInFunc(snippet),
	}
	for _, c := range candidates {
		out, err := format.Source([]byte(c))
		if err != nil {
			continue
		}
		if bytes.Equal(out, []byte(c)) {
			return true, ""
		}
		return false, firstDiff(c, string(out))
	}
	return false, ""
}

// wrapInFunc frames a statement-level fragment as a function body,
// indenting each non-blank line by one tab the way gofmt would.
func wrapInFunc(snippet string) string {
	var b strings.Builder
	b.WriteString("package p\n\nfunc _() {\n")
	for _, line := range strings.Split(strings.TrimRight(snippet, "\n"), "\n") {
		if line != "" {
			b.WriteByte('\t')
			b.WriteString(line)
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String()
}

// firstDiff renders the first differing line between the candidate and
// its gofmt output.
func firstDiff(got, want string) string {
	gl := strings.Split(got, "\n")
	wl := strings.Split(want, "\n")
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if gl[i] != wl[i] {
			return "line " + strings.TrimSpace(gl[i]) + "\n  gofmt: " + strings.TrimSpace(wl[i])
		}
	}
	return "trailing lines differ"
}
