package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"bayescrowd/internal/bayesnet"
)

// This file provides the workload generators behind the paper's two
// evaluation datasets (§7):
//
//   - NBA: a real 10,000-row, 11-attribute table of player-season stats.
//     We cannot redistribute nba.com data, so GenNBA samples an equivalent
//     table from a hand-built ground-truth Bayesian network whose structure
//     mirrors basketball box-score causality (playing time drives volume
//     stats, scoring drives made shots, ...). Cardinality, dimensionality
//     and strong positive correlation — the properties the experiments
//     depend on — are preserved. See DESIGN.md §2.
//
//   - Synthetic: the paper samples 100,000 rows × 9 attributes from the
//     Bayesian network of the UCI Adult dataset. GenAdultSynthetic does the
//     same from our own 9-node Adult-like network.
//
// The classic independent / correlated / anti-correlated skyline workloads
// are included for tests and ablations.

// FromRows builds a dataset from integer-coded rows with the given schema.
func FromRows(attrs []Attribute, rows [][]int) *Dataset {
	d := New(attrs)
	for i, row := range rows {
		o := Object{ID: fmt.Sprintf("o%d", i+1), Cells: make([]Cell, len(attrs))}
		for j, v := range row {
			o.Cells[j] = Known(v)
		}
		d.MustAppend(o)
	}
	return d
}

// sampleBN draws n complete rows from net into a dataset.
func sampleBN(rng *rand.Rand, net *bayesnet.Network, n int) *Dataset {
	attrs := make([]Attribute, net.NumNodes())
	for i, nd := range net.Nodes {
		attrs[i] = Attribute{Name: nd.Name, Levels: nd.Levels}
	}
	d := New(attrs)
	row := make([]int, net.NumNodes())
	cells := func() []Cell {
		cs := make([]Cell, len(row))
		for j, v := range row {
			cs[j] = Known(v)
		}
		return cs
	}
	for i := 0; i < n; i++ {
		net.SampleInto(rng, row)
		d.MustAppend(Object{ID: fmt.Sprintf("o%d", i+1), Cells: cells()})
	}
	return d
}

// noisyMeanCPT builds a CPT in which the child concentrates around a
// weighted mean of its parents' (level-normalised) values, with
// temperature tau controlling the spread. weight w < 0 makes the child
// anti-correlated with that parent. It is the device used to give the
// hand-built ground-truth networks realistic correlation.
func noisyMeanCPT(parentLevels []int, weights []float64, levels int, tau float64) []float64 {
	if len(parentLevels) != len(weights) {
		panic("dataset: noisyMeanCPT weights/parents mismatch")
	}
	cfgs := 1
	for _, l := range parentLevels {
		cfgs *= l
	}
	cpt := make([]float64, cfgs*levels)
	parentVals := make([]int, len(parentLevels))
	for cfg := 0; cfg < cfgs; cfg++ {
		rem := cfg
		for k := len(parentVals) - 1; k >= 0; k-- {
			parentVals[k] = rem % parentLevels[k]
			rem /= parentLevels[k]
		}
		// Target position in [0,1]: weighted mean of normalised parents
		// (anti-correlated parents contribute 1-x).
		target, wsum := 0.0, 0.0
		for k, w := range weights {
			x := 0.5
			if parentLevels[k] > 1 {
				x = float64(parentVals[k]) / float64(parentLevels[k]-1)
			}
			if w < 0 {
				x = 1 - x
				w = -w
			}
			target += w * x
			wsum += w
		}
		if wsum > 0 {
			target /= wsum
		}
		sum := 0.0
		for v := 0; v < levels; v++ {
			x := 0.5
			if levels > 1 {
				x = float64(v) / float64(levels-1)
			}
			p := math.Exp(-math.Abs(x-target) / tau)
			cpt[cfg*levels+v] = p
			sum += p
		}
		for v := 0; v < levels; v++ {
			cpt[cfg*levels+v] /= sum
		}
	}
	return cpt
}

func uniformCPT(levels int) []float64 {
	cpt := make([]float64, levels)
	for v := range cpt {
		cpt[v] = 1 / float64(levels)
	}
	return cpt
}

// NBANet returns the ground-truth Bayesian network behind GenNBA: 11
// box-score attributes with playing time as the root driver.
func NBANet() *bayesnet.Network {
	const lv = 8
	mk := func(parents []int, weights []float64, tau float64) []float64 {
		pl := make([]int, len(parents))
		for i := range parents {
			pl[i] = lv
		}
		return noisyMeanCPT(pl, weights, lv, tau)
	}
	return bayesnet.MustNew([]bayesnet.Node{
		/* 0 */ {Name: "games", Levels: lv, CPT: uniformCPT(lv)},
		/* 1 */ {Name: "minutes", Levels: lv, Parents: []int{0}, CPT: mk([]int{0}, []float64{1}, 0.25)},
		/* 2 */ {Name: "points", Levels: lv, Parents: []int{1}, CPT: mk([]int{1}, []float64{1}, 0.2)},
		/* 3 */ {Name: "rebounds", Levels: lv, Parents: []int{1}, CPT: mk([]int{1}, []float64{1}, 0.3)},
		/* 4 */ {Name: "assists", Levels: lv, Parents: []int{1, 2}, CPT: mk([]int{1, 2}, []float64{1, 0.5}, 0.3)},
		/* 5 */ {Name: "steals", Levels: lv, Parents: []int{1}, CPT: mk([]int{1}, []float64{1}, 0.35)},
		/* 6 */ {Name: "blocks", Levels: lv, Parents: []int{3}, CPT: mk([]int{3}, []float64{1}, 0.35)},
		/* 7 */ {Name: "turnovers", Levels: lv, Parents: []int{1, 2}, CPT: mk([]int{1, 2}, []float64{-1, -0.5}, 0.35)},
		/* 8 */ {Name: "fouls", Levels: lv, Parents: []int{1}, CPT: mk([]int{1}, []float64{-1}, 0.4)},
		/* 9 */ {Name: "fg_made", Levels: lv, Parents: []int{2}, CPT: mk([]int{2}, []float64{1}, 0.15)},
		/* 10 */ {Name: "ft_made", Levels: lv, Parents: []int{2}, CPT: mk([]int{2}, []float64{1}, 0.25)},
	})
}

// GenNBA samples an NBA-like complete dataset of n player-season rows from
// NBANet. The paper uses n = 10,000 and 11 attributes.
func GenNBA(rng *rand.Rand, n int) *Dataset {
	return sampleBN(rng, NBANet(), n)
}

// AdultNet returns the ground-truth 9-node network behind GenAdultSynthetic,
// mirroring the dependency structure of the UCI Adult dataset (age drives
// education and marital status; education and occupation drive income and
// hours; capital gain follows income, ...).
func AdultNet() *bayesnet.Network {
	mk := func(parentLevels []int, weights []float64, levels int, tau float64) []float64 {
		return noisyMeanCPT(parentLevels, weights, levels, tau)
	}
	// Couplings are deliberately moderate (large tau) and partly negative:
	// the real Adult table mixes weakly correlated and anti-correlated
	// attributes, which keeps the skyline non-trivial. A uniformly
	// strongly-correlated table collapses the skyline to a handful of
	// objects and leaves the crowd nothing to resolve.
	return bayesnet.MustNew([]bayesnet.Node{
		/* 0 age         */ {Name: "age", Levels: 8, CPT: uniformCPT(8)},
		/* 1 education   */ {Name: "education", Levels: 6, Parents: []int{0}, CPT: mk([]int{8}, []float64{0.4}, 6, 0.9)},
		/* 2 workclass   */ {Name: "workclass", Levels: 5, Parents: []int{1}, CPT: mk([]int{6}, []float64{0.5}, 5, 1.0)},
		/* 3 occupation  */ {Name: "occupation", Levels: 7, Parents: []int{1, 2}, CPT: mk([]int{6, 5}, []float64{1, -0.4}, 7, 0.8)},
		/* 4 marital     */ {Name: "marital", Levels: 4, Parents: []int{0}, CPT: mk([]int{8}, []float64{-0.6}, 4, 0.9)},
		/* 5 hours       */ {Name: "hours", Levels: 6, Parents: []int{2, 3}, CPT: mk([]int{5, 7}, []float64{-0.5, 1}, 6, 0.7)},
		/* 6 income      */ {Name: "income", Levels: 6, Parents: []int{1, 3, 5}, CPT: mk([]int{6, 7, 6}, []float64{1, 0.6, 0.5}, 6, 0.6)},
		/* 7 capgain     */ {Name: "capgain", Levels: 5, Parents: []int{6}, CPT: mk([]int{6}, []float64{0.8}, 5, 0.7)},
		/* 8 caploss     */ {Name: "caploss", Levels: 5, Parents: []int{6}, CPT: mk([]int{6}, []float64{-0.7}, 5, 0.8)},
	})
}

// GenAdultSynthetic samples the paper's Synthetic dataset: n rows × 9
// attributes drawn from the Adult-like Bayesian network. The paper uses
// n = 100,000.
func GenAdultSynthetic(rng *rand.Rand, n int) *Dataset {
	return sampleBN(rng, AdultNet(), n)
}

// GenIndependent generates n rows of d attributes with the given number of
// levels, every cell i.i.d. uniform — the classic "independent" skyline
// workload.
func GenIndependent(rng *rand.Rand, n, d, levels int) *Dataset {
	attrs := make([]Attribute, d)
	for j := range attrs {
		attrs[j] = Attribute{Name: fmt.Sprintf("a%d", j+1), Levels: levels}
	}
	ds := New(attrs)
	for i := 0; i < n; i++ {
		o := Object{ID: fmt.Sprintf("o%d", i+1), Cells: make([]Cell, d)}
		for j := range o.Cells {
			o.Cells[j] = Known(rng.Intn(levels))
		}
		ds.MustAppend(o)
	}
	return ds
}

// GenCorrelated generates the classic correlated workload: a latent
// quality u per object plus per-attribute noise; corr in (0,1] sets the
// latent share (1 = perfectly correlated attributes).
func GenCorrelated(rng *rand.Rand, n, d, levels int, corr float64) *Dataset {
	if corr <= 0 || corr > 1 {
		panic(fmt.Sprintf("dataset: GenCorrelated corr %v outside (0,1]", corr))
	}
	attrs := make([]Attribute, d)
	for j := range attrs {
		attrs[j] = Attribute{Name: fmt.Sprintf("a%d", j+1), Levels: levels}
	}
	ds := New(attrs)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		o := Object{ID: fmt.Sprintf("o%d", i+1), Cells: make([]Cell, d)}
		for j := range o.Cells {
			x := corr*u + (1-corr)*rng.Float64()
			v := int(x * float64(levels))
			if v >= levels {
				v = levels - 1
			}
			o.Cells[j] = Known(v)
		}
		ds.MustAppend(o)
	}
	return ds
}

// GenAntiCorrelated generates the classic anti-correlated workload: cells
// are drawn uniformly on a simplex-like band so good values in one
// attribute come with bad values in others, which maximises skyline size.
func GenAntiCorrelated(rng *rand.Rand, n, d, levels int) *Dataset {
	attrs := make([]Attribute, d)
	for j := range attrs {
		attrs[j] = Attribute{Name: fmt.Sprintf("a%d", j+1), Levels: levels}
	}
	ds := New(attrs)
	for i := 0; i < n; i++ {
		// Total "budget" near the middle; distribute across attributes.
		total := 0.5 + 0.1*(rng.Float64()-0.5)
		weights := make([]float64, d)
		sum := 0.0
		for j := range weights {
			weights[j] = rng.ExpFloat64()
			sum += weights[j]
		}
		o := Object{ID: fmt.Sprintf("o%d", i+1), Cells: make([]Cell, d)}
		for j := range o.Cells {
			x := total * weights[j] / sum * float64(d)
			if x > 1 {
				x = 1
			}
			v := int(x * float64(levels))
			if v >= levels {
				v = levels - 1
			}
			o.Cells[j] = Known(v)
		}
		ds.MustAppend(o)
	}
	return ds
}
